// Wear leveling demo: composes Tetris Write with Start-Gap wear leveling
// (Qureshi et al., MICRO'09). The write scheme reduces how many cells a
// write programs; the leveler spreads where writes land. A hot line is
// hammered through the remapper and the physical wear distribution is
// compared against the unleveled run.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"tetriswrite/internal/memctrl"
	"tetriswrite/internal/pcm"
	"tetriswrite/internal/sim"
	"tetriswrite/internal/tetris"
	"tetriswrite/internal/units"
	"tetriswrite/internal/wearlevel"
)

const (
	regionLines = 64
	totalWrites = 20000
	hotLine     = pcm.LineAddr(7)
)

func run(withLeveling bool) pcm.WearSummary {
	par := pcm.DefaultParams()
	eng := &sim.Engine{}
	dev := pcm.MustNewDevice(par)
	ctrl := memctrl.New(eng, dev, tetris.New, memctrl.Config{OpportunisticWrites: true})
	wear := pcm.NewWearTracker()

	var port wearlevel.Mem = ctrl
	var reg *wearlevel.Region
	if withLeveling {
		var err error
		reg, err = wearlevel.NewRegion(0, regionLines, 100) // psi=100 as recommended
		if err != nil {
			log.Fatal(err)
		}
		port = wearlevel.NewRemapper(ctrl, reg, par.LineBytes, ctrl.Snoop)
	}

	rng := rand.New(rand.NewSource(1))
	data := make([]byte, par.LineBytes)
	n := 0
	var step func()
	step = func() {
		if n >= totalWrites {
			ctrl.WhenIdle(func() {})
			return
		}
		n++
		// 60% of writes hammer one hot line; the rest spread uniformly.
		addr := hotLine
		if rng.Intn(10) >= 6 {
			addr = pcm.LineAddr(rng.Intn(regionLines))
		}
		rng.Read(data[:8]) // mutate one data unit per write
		phys := addr
		if reg != nil {
			phys = reg.Translate(addr)
		}
		if port.SubmitWrite(addr, data, nil) {
			wear.Record(phys, 1)
		}
		eng.After(units.Duration(500+rng.Intn(500))*units.Nanosecond, step)
	}
	eng.At(0, step)
	eng.Run()
	return wear.Summary()
}

func main() {
	plain := run(false)
	leveled := run(true)

	fmt.Printf("hammering line %d with %d%% of %d writes over a %d-line region\n\n",
		hotLine, 60, totalWrites, regionLines)
	fmt.Printf("%-22s %-16s %-16s\n", "", "no leveling", "start-gap (psi=100)")
	fmt.Printf("%-22s %-16d %-16d\n", "hottest slot writes", plain.MaxLineWear, leveled.MaxLineWear)
	fmt.Printf("%-22s %-16.1f %-16.1f\n", "mean slot writes", plain.MeanLineWear, leveled.MeanLineWear)
	fmt.Printf("%-22s %-16.1f %-16.1f\n", "max/mean ratio",
		float64(plain.MaxLineWear)/plain.MeanLineWear,
		float64(leveled.MaxLineWear)/leveled.MeanLineWear)
	fmt.Printf("%-22s %-16d %-16d\n", "slots touched", plain.TouchedLines, leveled.TouchedLines)
	fmt.Println("\nLifetime scales with the inverse of the hottest slot's share: Start-Gap")
	fmt.Println("turns a single-line hotspot into near-uniform wear at ~1% write overhead.")
}
