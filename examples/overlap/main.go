// Overlap techniques: the two bank-level mechanisms from the paper's
// related work that hide long PCM writes from reads — write pausing
// (a read interrupts an in-flight write at a sub-write-unit boundary)
// and subarray-level parallelism (a read proceeds in a different
// subarray of the busy bank) — composed with the baseline and with
// Tetris Write.
//
// The point the numbers make: the shorter Tetris writes leave much less
// to hide, so the overlap machinery helps the baseline most; the
// techniques are complementary, not competing.
package main

import (
	"fmt"
	"log"

	"tetriswrite"
	"tetriswrite/internal/memctrl"
)

func main() {
	type variant struct {
		name string
		cfg  memctrl.Config
	}
	variants := []variant{
		{"plain", memctrl.Config{}},
		{"pausing", memctrl.Config{WritePausing: true}},
		{"subarrays-4", memctrl.Config{Subarrays: 4}},
		{"both", memctrl.Config{WritePausing: true, Subarrays: 4}},
	}

	fmt.Println("mean read latency (ns) on vips, by scheme and overlap mechanism")
	fmt.Printf("%-12s", "scheme")
	for _, v := range variants {
		fmt.Printf("  %-12s", v.name)
	}
	fmt.Println()

	for _, scheme := range []string{"dcw", "threestage", "tetris"} {
		fmt.Printf("%-12s", scheme)
		for _, v := range variants {
			res, err := tetriswrite.RunSystem("vips", scheme, tetriswrite.SystemConfig{
				InstrBudget: 200_000,
				Ctrl:        v.cfg,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-12.1f", res.ReadLatency.Nanoseconds())
		}
		fmt.Println()
	}
	fmt.Println("\n(write pausing and subarrays shrink the baseline's read latency toward")
	fmt.Println("Tetris Write's, but cannot recover the write bandwidth Tetris frees.)")
}
