// Timing diagram: regenerates the paper's Figure 4 — the chip-level
// schedule of one cache-line write under every scheme, on the worked
// example of Section III (write-1 counts 8,7,7,6,6,6,5,3 and write-0
// counts 0,1,1,2,3,2,2,5 against a budget of 32 SET-currents per chip).
package main

import (
	"fmt"

	"tetriswrite"
)

func main() {
	fmt.Print(tetriswrite.Figure4(tetriswrite.DefaultParams()))
}
