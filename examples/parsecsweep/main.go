// PARSEC sweep: a reduced-scale run of the paper's whole evaluation —
// all 8 workloads under all 5 schemes — printing Figures 10 through 14.
// cmd/tetrisbench does the same at full scale with knobs.
package main

import (
	"fmt"
	"log"

	"tetriswrite"
)

func main() {
	opt := tetriswrite.EvalOptions{
		Writes:      2000,
		InstrBudget: 300_000,
		Seed:        1,
	}

	fmt.Println(tetriswrite.Table3(opt))
	fmt.Println(tetriswrite.Figure3(opt))
	fmt.Println(tetriswrite.Figure10(opt))

	fmt.Println("running the full-system sweep (8 workloads x 5 schemes)...")
	fmt.Println()
	fr, err := tetriswrite.RunEvaluation(opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(fr.Figure11())
	fmt.Println(fr.Figure12())
	fmt.Println(fr.Figure13())
	fmt.Println(fr.Figure14())
	fmt.Println(fr.EnergyTable())
}
