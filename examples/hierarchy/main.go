// Cache hierarchy demo: runs one core's access stream through the full
// Table II cache stack (L1 32K / L2 2M / L3 32M) in front of the PCM
// controller, printing per-level hit rates and the memory-level traffic
// that actually reaches PCM — the long path a cache-line write travels
// in the paper's platform.
//
// The headline experiments drive the controller with memory-level
// traffic directly (Table III's RPKI/WPKI are memory-level counters);
// this example shows the substrate those counters abstract away.
package main

import (
	"fmt"
	"log"

	"tetriswrite/internal/cache"
	"tetriswrite/internal/cpu"
	"tetriswrite/internal/memctrl"
	"tetriswrite/internal/pcm"
	"tetriswrite/internal/sim"
	"tetriswrite/internal/tetris"
	"tetriswrite/internal/units"
	"tetriswrite/internal/workload"
)

func main() {
	par := pcm.DefaultParams()
	eng := &sim.Engine{}
	dev := pcm.MustNewDevice(par)
	ctrl := memctrl.New(eng, dev, tetris.New, memctrl.Config{})
	clock := units.NewClock(2e9)

	// The Table II stack is 32K/2M/32M (cache.DefaultLevels); the demo
	// scales L2/L3 down so the workload's working set spills all the way
	// to PCM within a few million instructions.
	levels := []cache.LevelConfig{
		{Name: "L1", SizeBytes: 32 << 10, LineBytes: 64, Ways: 8, Latency: clock.Cycles(2)},
		{Name: "L2", SizeBytes: 256 << 10, LineBytes: 64, Ways: 8, Latency: clock.Cycles(20)},
		{Name: "L3", SizeBytes: 1 << 20, LineBytes: 64, Ways: 16, Latency: clock.Cycles(50)},
	}
	hier, err := cache.New(eng, ctrl, levels)
	if err != nil {
		log.Fatal(err)
	}

	// Interpret the ferret profile as the CPU-level stream of one core,
	// over a working set several times the L3 size.
	prof, err := workload.ProfileByName("ferret")
	if err != nil {
		log.Fatal(err)
	}
	prof.RPKI *= 40 // CPU-level intensity: most of it will hit in cache
	prof.WPKI *= 40
	prof.PrivateLines = 1 << 17 // 8 MB
	prof.SharedLines = 1 << 17
	prog := workload.NewProgram(prof, 1, 3, par)

	const budget = 2_000_000
	core := cpu.New(eng, clock, prog.Generator(0), hier, budget, func() {
		ctrl.WhenIdle(func() {})
	})
	core.Start()
	eng.Run()

	cs := core.Stats()
	fmt.Printf("core: %d instructions, %d loads, %d stores, finished at %v (IPC %.3f)\n",
		cs.Retired, cs.Reads, cs.Writes, cs.FinishedAt, cs.IPC(clock, eng.Now()))
	for i, st := range hier.LevelStats() {
		name := []string{"L1", "L2", "L3"}[i]
		fmt.Printf("%s: %7d hits  %7d misses  (%.1f%% hit rate)  %d write-backs\n",
			name, st.Hits, st.Misses, st.HitRate()*100, st.WriteBacks)
	}
	ms := ctrl.Stats()
	fmt.Printf("PCM: %d reads, %d line writes reached memory (%.2f write units each)\n",
		ms.Reads, ms.Writes, ms.WriteUnits/float64(max64(1, ms.WriteLatency.Count())))
	fmt.Printf("     mean PCM read latency %v, write latency %v\n",
		ms.ReadLatency.Mean(), ms.WriteLatency.Mean())
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
