// Quickstart: plan one cache-line write under every scheme and inspect
// the resulting pulse schedules — the smallest possible use of the
// library.
package main

import (
	"fmt"
	"log"

	"tetriswrite"
)

func main() {
	par := tetriswrite.DefaultParams()

	// A 64-byte cache line with a realistic sparse update: the stored
	// data, and a new version with a handful of changed bits (a counter
	// bumped, a pointer rewritten).
	old := make([]byte, par.LineBytes)
	copy(old, []byte("the quick brown fox jumps over the lazy dog, twice over again!!"))
	new := append([]byte(nil), old...)
	new[8] ^= 0x01  // one bit
	new[24] ^= 0x13 // three bits
	new[52] ^= 0x80 // one bit

	fmt.Printf("planning a %d-byte line write, %d data units of %d bytes\n\n",
		par.LineBytes, par.DataUnits(), par.WriteUnitBytes())
	fmt.Printf("%-14s %-12s %-12s %-10s %-8s %s\n",
		"scheme", "service", "write-phase", "units", "pulses", "notes")

	for _, name := range tetriswrite.SchemeNames() {
		s, err := tetriswrite.NewScheme(name, par)
		if err != nil {
			log.Fatal(err)
		}
		plan := s.PlanWrite(0x2A, old, new)
		sets, resets := plan.Counts()
		note := ""
		if plan.Read > 0 {
			note = "read-before-write"
		}
		if plan.Analysis > 0 {
			note += " + analysis"
		}
		fmt.Printf("%-14s %-12v %-12v %-10.3f %2d+%-5d %s\n",
			s.Name(), plan.ServiceTime(), plan.Write, plan.WriteUnits(), sets, resets, note)
	}

	fmt.Println("\nTetris Write packs the five changed bits into a single write unit;")
	fmt.Println("the static schemes pay their worst-case slot reservations regardless.")
}
