// Mobile power scenario: the paper's introduction notes that on mobile
// systems the available write current shrinks, cutting the number of
// concurrently writable cells from 16 down to 4 or 2 per chip. This
// example sweeps the per-chip power budget and shows how each scheme's
// write service time degrades — and that Tetris Write, which packs by
// *actual* current need, degrades most gracefully.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"tetriswrite"
)

func main() {
	budgets := []int{32, 16, 8, 4} // SET-currents per chip
	rng := rand.New(rand.NewSource(7))

	// A sparse-update working line, re-planned under every budget.
	old := make([]byte, 64)
	rng.Read(old)
	new := append([]byte(nil), old...)
	for i := 0; i < 10; i++ {
		b := rng.Intn(512)
		new[b/8] ^= 1 << (b % 8)
	}

	fmt.Println("write service time (ns) for one 64 B line, 10 changed bits, by per-chip budget")
	fmt.Printf("%-14s", "scheme")
	for _, b := range budgets {
		fmt.Printf("  budget=%-6d", b)
	}
	fmt.Println()

	for _, name := range tetriswrite.SchemeNames() {
		fmt.Printf("%-14s", name)
		for _, b := range budgets {
			par := tetriswrite.DefaultParams()
			par.ChipBudget = b
			s, err := tetriswrite.NewScheme(name, par)
			if err != nil {
				log.Fatal(err)
			}
			plan := s.PlanWrite(1, old, new)
			fmt.Printf("  %-13.1f", plan.ServiceTime().Nanoseconds())
		}
		fmt.Println()
	}

	fmt.Println()
	fmt.Println("full-system check at budget 8 (vips, most write-intensive workload):")
	for _, name := range []string{"dcw", "threestage", "tetris"} {
		par := tetriswrite.DefaultParams()
		par.ChipBudget = 8
		res, err := tetriswrite.RunSystem("vips", name, tetriswrite.SystemConfig{
			Params:      par,
			InstrBudget: 150_000,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-12s running time %-12v read latency %-12v write units %.2f\n",
			name, res.RunningTime, res.ReadLatency, res.WriteUnits)
	}
}
