package tetriswrite

import (
	"strings"
	"testing"
)

func TestNewSchemeNames(t *testing.T) {
	par := DefaultParams()
	for _, name := range SchemeNames() {
		s, err := NewScheme(name, par)
		if err != nil {
			t.Errorf("NewScheme(%q): %v", name, err)
			continue
		}
		if s == nil {
			t.Errorf("NewScheme(%q) returned nil", name)
		}
	}
	// Aliases.
	for alias, canonical := range map[string]string{
		"baseline": "dcw", "2stage": "twostage", "3stage": "threestage", "flip-n-write": "fnw",
	} {
		a, err := NewScheme(alias, par)
		if err != nil {
			t.Fatalf("alias %q: %v", alias, err)
		}
		c, _ := NewScheme(canonical, par)
		if a.Name() != c.Name() {
			t.Errorf("alias %q resolves to %q, want %q", alias, a.Name(), c.Name())
		}
	}
	if _, err := NewScheme("nope", par); err == nil {
		t.Error("unknown scheme accepted")
	}
	bad := par
	bad.LineBytes = 0
	if _, err := NewScheme("tetris", bad); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestPlanWriteThroughPublicAPI(t *testing.T) {
	par := DefaultParams()
	s, err := NewScheme("tetris", par)
	if err != nil {
		t.Fatal(err)
	}
	old := make([]byte, 64)
	new := make([]byte, 64)
	new[0] = 0x0F
	plan := s.PlanWrite(0, old, new)
	if plan.ServiceTime() <= 0 {
		t.Error("empty service time")
	}
	sets, resets := plan.Counts()
	if sets != 4 || resets != 0 {
		t.Errorf("counts = %d/%d, want 4 sets", sets, resets)
	}
}

func TestNewTetrisOptions(t *testing.T) {
	par := DefaultParams()
	s, err := NewTetris(par, TetrisOptions{AnalysisCycles: -1, ArrivalOrder: true})
	if err != nil {
		t.Fatal(err)
	}
	old := make([]byte, 64)
	new := make([]byte, 64)
	new[1] = 1
	if plan := s.PlanWrite(0, old, new); plan.Analysis != 0 {
		t.Errorf("analysis overhead %v with AnalysisCycles=-1", plan.Analysis)
	}
}

func TestWorkloadsPublic(t *testing.T) {
	if len(Workloads()) != 8 {
		t.Errorf("Workloads() = %d profiles, want 8", len(Workloads()))
	}
	if _, err := WorkloadByName("vips"); err != nil {
		t.Error(err)
	}
	if _, err := WorkloadByName("doom"); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestRunSystemPublic(t *testing.T) {
	res, err := RunSystem("canneal", "tetris", SystemConfig{InstrBudget: 50_000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Scheme != "tetris" || res.Workload != "canneal" {
		t.Errorf("labels: %s/%s", res.Scheme, res.Workload)
	}
	if res.IPC <= 0 {
		t.Error("no IPC measured")
	}
	if _, err := RunSystem("canneal", "nope", SystemConfig{}); err == nil {
		t.Error("unknown scheme accepted")
	}
	if _, err := RunSystem("nope", "tetris", SystemConfig{}); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestFigureHelpersRender(t *testing.T) {
	opt := EvalOptions{Writes: 100, InstrBudget: 20_000}
	if out := Figure3(opt); !strings.Contains(out, "Figure 3") {
		t.Error("Figure3 render broken")
	}
	if out := Table3(opt); !strings.Contains(out, "Table III") {
		t.Error("Table3 render broken")
	}
	if out := Figure10(opt); !strings.Contains(out, "Figure 10") {
		t.Error("Figure10 render broken")
	}
	if out := Figure4(DefaultParams()); !strings.Contains(out, "Figure 4") {
		t.Error("Figure4 render broken")
	}
}

func TestPublicSweepsAndChecks(t *testing.T) {
	opt := EvalOptions{Writes: 60, InstrBudget: 20_000}
	if out := LineSizeSweep(opt); !strings.Contains(out, "Line-size sweep") {
		t.Error("LineSizeSweep render broken")
	}
	if out := BudgetSweep(opt); !strings.Contains(out, "Power-budget sweep") {
		t.Error("BudgetSweep render broken")
	}
	out, err := Endurance(EvalOptions{Writes: 60, InstrBudget: 60_000})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Endurance") {
		t.Error("Endurance render broken")
	}
	results, err := Check(EvalOptions{Writes: 200, InstrBudget: 40_000})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) == 0 {
		t.Error("Check returned no results")
	}
}

// TestX8ChipConfiguration: the paper mentions X8 parts as a common write
// division; the whole scheme stack must work with 8-bit chips.
func TestX8ChipConfiguration(t *testing.T) {
	par := DefaultParams()
	par.ChipWidthBits = 8
	par.NumChips = 8 // keep the 8-byte bank write unit
	par.ChipBudget = 16
	if err := par.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, name := range SchemeNames() {
		s, err := NewScheme(name, par)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		old := make([]byte, 64)
		new := make([]byte, 64)
		for i := range new {
			new[i] = byte(i)
		}
		plan := s.PlanWrite(0, old, new)
		if plan.ServiceTime() <= 0 {
			t.Errorf("%s: empty plan on x8 config", name)
		}
		if err := plan.Validate(par); err != nil {
			t.Errorf("%s: invalid plan on x8 config: %v", name, err)
		}
	}
}
