package tetriswrite

// Ablation benchmarks for the design choices DESIGN.md calls out. Each
// reports the Figure 10 metric (mean write units per cache-line write,
// lower is better) under one knob, so `go test -bench Ablation` quantifies
// what every ingredient of Tetris Write buys.

import (
	"math/rand"
	"testing"

	"tetriswrite/internal/exp"
	"tetriswrite/internal/memctrl"
	"tetriswrite/internal/tetris"
	"tetriswrite/internal/units"
	"tetriswrite/internal/workload"
)

func ablationOpts() exp.Options {
	return exp.Options{Writes: 500, Seed: 2}
}

func ablationWorkload(b *testing.B) workload.Profile {
	prof, err := workload.ProfileByName("dedup") // dense enough to stress packing
	if err != nil {
		b.Fatal(err)
	}
	return prof
}

// BenchmarkAblationFlipCoding: the read stage's inversion coding on vs
// off. Without it, dense writes cost many more cells and pack worse.
func BenchmarkAblationFlipCoding(b *testing.B) {
	prof := ablationWorkload(b)
	for _, tc := range []struct {
		name string
		opt  tetris.Options
	}{
		{"flip-on", tetris.Options{}},
		{"flip-off", tetris.Options{DisableFlip: true}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			par := DefaultParams()
			var wu float64
			for i := 0; i < b.N; i++ {
				wu = exp.MeasureWriteUnits(prof, tetris.NewWithOptions(par, tc.opt), ablationOpts())
			}
			b.ReportMetric(wu, "writeunits")
		})
	}
}

// BenchmarkAblationPackOrder: first-fit-decreasing (the paper's sort) vs
// plain arrival-order first-fit.
func BenchmarkAblationPackOrder(b *testing.B) {
	prof := ablationWorkload(b)
	for _, tc := range []struct {
		name string
		opt  tetris.Options
	}{
		{"ffd", tetris.Options{}},
		{"arrival", tetris.Options{ArrivalOrder: true}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			par := DefaultParams()
			var wu float64
			for i := 0; i < b.N; i++ {
				wu = exp.MeasureWriteUnits(prof, tetris.NewWithOptions(par, tc.opt), ablationOpts())
			}
			b.ReportMetric(wu, "writeunits")
		})
	}
}

// BenchmarkAblationGCP: bank-wide budget sharing (Global Charge Pump) vs
// per-chip pumps. Without sharing, the chip with the densest slice of a
// data unit gates the schedule.
func BenchmarkAblationGCP(b *testing.B) {
	prof := ablationWorkload(b)
	for _, gcp := range []bool{true, false} {
		name := "gcp-on"
		if !gcp {
			name = "gcp-off"
		}
		b.Run(name, func(b *testing.B) {
			par := DefaultParams()
			par.GlobalChargePump = gcp
			var wu float64
			for i := 0; i < b.N; i++ {
				wu = exp.MeasureWriteUnits(prof, tetris.New(par), ablationOpts())
			}
			b.ReportMetric(wu, "writeunits")
		})
	}
}

// BenchmarkAblationBudget: the mobile power sweep — per-chip budget from
// the paper's 32 down to 4 SET-currents.
func BenchmarkAblationBudget(b *testing.B) {
	prof := ablationWorkload(b)
	for _, budget := range []int{32, 16, 8, 4} {
		b.Run(map[int]string{32: "budget-32", 16: "budget-16", 8: "budget-08", 4: "budget-04"}[budget], func(b *testing.B) {
			par := DefaultParams()
			par.ChipBudget = budget
			var wu float64
			for i := 0; i < b.N; i++ {
				wu = exp.MeasureWriteUnits(prof, tetris.New(par), ablationOpts())
			}
			b.ReportMetric(wu, "writeunits")
		})
	}
}

// BenchmarkAblationK: sensitivity to the time-asymmetry ratio K =
// Tset/Treset, swept by scaling Treset (K = 2, 4, 8, 16). Larger K means
// finer sub-write-units and more gaps to hide write-0s in.
func BenchmarkAblationK(b *testing.B) {
	prof := ablationWorkload(b)
	for _, k := range []int{2, 4, 8, 16} {
		b.Run(map[int]string{2: "K-02", 4: "K-04", 8: "K-08", 16: "K-16"}[k], func(b *testing.B) {
			par := DefaultParams()
			par.TReset = par.TSet / units.Duration(k)
			if par.K() != k {
				b.Fatalf("K = %d, want %d", par.K(), k)
			}
			var wu float64
			for i := 0; i < b.N; i++ {
				wu = exp.MeasureWriteUnits(prof, tetris.New(par), ablationOpts())
			}
			b.ReportMetric(wu, "writeunits")
		})
	}
}

// BenchmarkAblationAnalysisOverhead: service-time impact of the analysis
// stage (none, the paper's 41 cycles, a pessimistic 164).
func BenchmarkAblationAnalysisOverhead(b *testing.B) {
	prof := ablationWorkload(b)
	for _, tc := range []struct {
		name   string
		cycles int
	}{
		{"cycles-0", -1},
		{"cycles-41", 41},
		{"cycles-164", 164},
	} {
		b.Run(tc.name, func(b *testing.B) {
			par := DefaultParams()
			s := tetris.NewWithOptions(par, tetris.Options{AnalysisCycles: tc.cycles})
			old := make([]byte, 64)
			new := make([]byte, 64)
			new[0] = 0xFF
			var svc float64
			for i := 0; i < b.N; i++ {
				plan := s.PlanWrite(LineAddr(i%64), old, new)
				svc = plan.ServiceTime().Nanoseconds()
			}
			b.ReportMetric(svc, "service-ns")
		})
	}
	_ = prof
}

// BenchmarkAblationWritePausing: full-system effect of letting reads
// pause in-flight writes (Qureshi et al., HPCA'10) on the baseline and on
// Tetris Write. The shorter Tetris writes leave less to pause, so the
// technique helps the baseline more — i.e. the two are partially
// complementary.
func BenchmarkAblationWritePausing(b *testing.B) {
	prof, err := workload.ProfileByName("vips")
	if err != nil {
		b.Fatal(err)
	}
	for _, tc := range []struct {
		name    string
		scheme  string
		pausing bool
	}{
		{"baseline-nopause", "dcw", false},
		{"baseline-pause", "dcw", true},
		{"tetris-nopause", "tetris", false},
		{"tetris-pause", "tetris", true},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var readNS float64
			for i := 0; i < b.N; i++ {
				res, err := RunSystem(prof.Name, tc.scheme, SystemConfig{
					InstrBudget: 50_000,
					Ctrl:        memctrl.Config{WritePausing: tc.pausing},
				})
				if err != nil {
					b.Fatal(err)
				}
				readNS = res.ReadLatency.Nanoseconds()
			}
			b.ReportMetric(readNS, "readlat-ns")
		})
	}
}

// BenchmarkAblationTimeAwareFlip: the Hamming-minimizing flip rule vs the
// time-aware rule, on a post-preset write pattern (data over all-ones)
// where the two diverge most.
func BenchmarkAblationTimeAwareFlip(b *testing.B) {
	for _, tc := range []struct {
		name string
		opt  tetris.Options
	}{
		{"hamming", tetris.Options{}},
		{"time-aware", tetris.Options{TimeAwareFlip: true}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			par := DefaultParams()
			s := tetris.NewWithOptions(par, tc.opt)
			ones := make([]byte, 64)
			for i := range ones {
				ones[i] = 0xFF
			}
			rng := rand.New(rand.NewSource(4))
			data := make([]byte, 64)
			var wu float64
			for i := 0; i < b.N; i++ {
				wu = 0
				for j := 0; j < 64; j++ {
					rng.Read(data)
					plan := s.PlanWrite(LineAddr(j), ones, data)
					wu += plan.WriteUnits()
				}
				wu /= 64
			}
			b.ReportMetric(wu, "writeunits")
		})
	}
}

// BenchmarkAblationSubarrays: read latency with 1/2/4/8 subarrays per
// bank on a write-heavy workload — the bank-internal parallelism of the
// paper's references [13][15], orthogonal to the write scheme.
func BenchmarkAblationSubarrays(b *testing.B) {
	for _, sub := range []int{1, 2, 4, 8} {
		b.Run(map[int]string{1: "sub-1", 2: "sub-2", 4: "sub-4", 8: "sub-8"}[sub], func(b *testing.B) {
			var readNS float64
			for i := 0; i < b.N; i++ {
				res, err := RunSystem("vips", "dcw", SystemConfig{
					InstrBudget: 50_000,
					Ctrl:        memctrl.Config{Subarrays: sub},
				})
				if err != nil {
					b.Fatal(err)
				}
				readNS = res.ReadLatency.Nanoseconds()
			}
			b.ReportMetric(readNS, "readlat-ns")
		})
	}
}

// BenchmarkAblationCancellation: the adaptive cancel-or-pause policy vs
// pause-only, on the baseline (long writes, most to gain).
func BenchmarkAblationCancellation(b *testing.B) {
	for _, tc := range []struct {
		name string
		cfg  memctrl.Config
	}{
		{"pause-only", memctrl.Config{WritePausing: true}},
		{"cancel+pause", memctrl.Config{WritePausing: true, WriteCancellation: true}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var readNS float64
			var cancels int64
			for i := 0; i < b.N; i++ {
				res, err := RunSystem("vips", "dcw", SystemConfig{
					InstrBudget: 50_000,
					Ctrl:        tc.cfg,
				})
				if err != nil {
					b.Fatal(err)
				}
				readNS = res.ReadLatency.Nanoseconds()
				cancels = res.Ctrl.Cancellations
			}
			b.ReportMetric(readNS, "readlat-ns")
			b.ReportMetric(float64(cancels), "cancels")
		})
	}
}
