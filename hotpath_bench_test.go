package tetriswrite

// Micro-benchmarks for the three layers the structure-of-arrays rewrite
// targets (see DESIGN.md, Performance): the word-parallel cell store,
// the batched pulse emission and the flat cache hit path. They are part
// of the gated set (Makefile BENCHFILTER, ci.yml bench-gate) so the
// fast paths cannot silently fall back to the scalar code — a fallback
// shows up as an ns/op and allocs/op cliff.

import (
	"math/bits"
	"math/rand"
	"testing"

	"tetriswrite/internal/cache"
	"tetriswrite/internal/memctrl"
	"tetriswrite/internal/pcm"
	"tetriswrite/internal/schemes"
	"tetriswrite/internal/sim"
	"tetriswrite/internal/units"
)

// BenchmarkArrayFlipCount measures the SoA cell store's read surface:
// one full-line decode into a scratch buffer plus a flip-tag popcount,
// the operation the crash-recovery classifiers and the deep-check guard
// run per inspected line. On the default x16 geometry this is the
// word-parallel path — 4 cells per XOR — and must stay at 0 allocs/op.
func BenchmarkArrayFlipCount(b *testing.B) {
	par := pcm.DefaultParams()
	arr := schemes.NewArray(par)
	rng := rand.New(rand.NewSource(3))
	const lines = 64
	line := make([]byte, par.LineBytes)
	for a := 0; a < lines; a++ {
		rng.Read(line)
		arr.SyncLogical(pcm.LineAddr(a), line)
	}
	// Set some flip tags the way they arise in practice: replay FNW
	// plans whose dense updates cross the inversion threshold.
	s := schemes.NewFlipNWrite(par)
	old := make([]byte, par.LineBytes)
	for a := 0; a < lines; a++ {
		arr.LogicalInto(old, pcm.LineAddr(a))
		rng.Read(line)
		arr.Apply(pcm.LineAddr(a), s.PlanWrite(pcm.LineAddr(a), old, line))
	}
	scratch := make([]byte, par.LineBytes)
	var flips int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr := pcm.LineAddr(i % lines)
		arr.LogicalInto(scratch, addr)
		flips += bits.OnesCount64(arr.FlipTags(addr))
	}
	if flips == 0 {
		b.Fatal("no flip tags set: the benchmark is not exercising the tag path")
	}
}

// BenchmarkSchemePlanWriteDense is the batched-emission stress: every
// cell of the line changes, so unlike the sparse BenchmarkSchemePlanWrite
// the cost is dominated by emitting pulse records for all 32 units —
// the mask-walk in emitStreams and the cursor refill in the Tetris
// domain emitter. Steady-state (freelist-warm), so 0 allocs/op.
func BenchmarkSchemePlanWriteDense(b *testing.B) {
	for _, name := range []string{"dcw", "fnw", "tetris"} {
		b.Run(name, func(b *testing.B) {
			s, err := NewScheme(name, DefaultParams())
			if err != nil {
				b.Fatal(err)
			}
			rec, _ := s.(schemes.PlanRecycler)
			rng := rand.New(rand.NewSource(9))
			old := make([]byte, 64)
			new := make([]byte, 64)
			rng.Read(old)
			for i := range new {
				new[i] = ^old[i] // every bit changes: worst-case emission
			}
			cycle := func(i int) {
				plan := s.PlanWrite(LineAddr(i%256), old, new)
				_ = plan.ServiceTime()
				if rec != nil {
					rec.RecyclePlan(plan)
				}
			}
			for i := 0; i < 256; i++ {
				cycle(i)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cycle(i)
			}
		})
	}
}

// BenchmarkCacheHit measures the L1 hit path of the cache hierarchy:
// one set-indexed probe of the flat tag array plus the LRU promotion
// shuffle and the data copy-out. One op is one whole read transaction
// through the simulation engine, so the number includes the event
// scheduling the hit rides on.
func BenchmarkCacheHit(b *testing.B) {
	eng := &sim.Engine{}
	dev := pcm.MustNewDevice(pcm.DefaultParams())
	ctrl := memctrl.New(eng, dev, schemes.NewDCW, memctrl.Config{OpportunisticWrites: true})
	h, err := cache.New(eng, ctrl, cache.DefaultLevels(units.NewClock(2e9)))
	if err != nil {
		b.Fatal(err)
	}
	data := make([]byte, 64)
	eng.At(0, func() { h.SubmitWrite(5, data, nil) })
	eng.Run()
	hits := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.SubmitRead(5, func(units.Time, []byte) { hits++ })
		eng.Run()
	}
	b.StopTimer()
	if hits != b.N {
		b.Fatalf("%d of %d reads completed", hits, b.N)
	}
}
