package tetriswrite

// One benchmark per table and figure of the paper's evaluation section.
// Each benchmark regenerates its experiment at a reduced scale and
// reports the experiment's headline numbers as custom metrics alongside
// the usual ns/op, so `go test -bench=.` doubles as a quick smoke run of
// the whole evaluation. Use cmd/tetrisbench for full-scale tables.

import (
	"strconv"
	"strings"
	"testing"
	"time"

	"tetriswrite/internal/exp"
	"tetriswrite/internal/schemes"
	"tetriswrite/internal/sim"
	"tetriswrite/internal/system"
	"tetriswrite/internal/tetris"
	"tetriswrite/internal/units"
	"tetriswrite/internal/workload"
)

func benchEvalOptions() EvalOptions {
	return EvalOptions{Writes: 500, InstrBudget: 50_000, Seed: 1}
}

// geomeanRow extracts the labelled row's numeric cells from a rendered
// table.
func rowOf(out, label string) []float64 {
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) < 2 || fields[0] != label {
			continue
		}
		var vals []float64
		for _, f := range fields[1:] {
			if v, err := strconv.ParseFloat(f, 64); err == nil {
				vals = append(vals, v)
			}
		}
		return vals
	}
	return nil
}

// BenchmarkTable3Workloads measures workload-generator throughput: the
// substrate behind every experiment's Table III characteristics.
func BenchmarkTable3Workloads(b *testing.B) {
	for _, prof := range workload.Profiles() {
		b.Run(prof.Name, func(b *testing.B) {
			prog := workload.NewProgram(prof, 4, 1, DefaultParams())
			g := prog.Generator(0)
			var instr int64
			writes := 0
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				op := g.Next()
				instr += op.Think
				if op.Write {
					writes++
				}
			}
			if instr > 0 {
				b.ReportMetric(float64(b.N)/float64(instr)*1000, "apki")
			}
		})
	}
}

// BenchmarkFig3BitStats regenerates Figure 3 (bit-change statistics) and
// reports the suite-average SET/RESET counts per 64-bit unit.
func BenchmarkFig3BitStats(b *testing.B) {
	opt := benchEvalOptions()
	opt.Writes = 200
	var avg []float64
	for i := 0; i < b.N; i++ {
		avg = rowOf(exp.Figure3(opt).String(), "average")
	}
	if len(avg) >= 3 {
		b.ReportMetric(avg[0], "resets/unit")
		b.ReportMetric(avg[1], "sets/unit")
	}
}

// BenchmarkFig4Sample plans the Figure 4 worked example.
func BenchmarkFig4Sample(b *testing.B) {
	par := DefaultParams()
	var out string
	for i := 0; i < b.N; i++ {
		out = Figure4(par)
	}
	_ = out
}

// BenchmarkFig10WriteUnits regenerates Figure 10 and reports the
// suite-average write units of the baseline and of Tetris Write.
func BenchmarkFig10WriteUnits(b *testing.B) {
	opt := benchEvalOptions()
	opt.Writes = 200
	var avg []float64
	for i := 0; i < b.N; i++ {
		avg = rowOf(exp.Figure10(opt).String(), "average")
	}
	if len(avg) == 5 {
		b.ReportMetric(avg[0], "wu-baseline")
		b.ReportMetric(avg[3], "wu-3stage")
		b.ReportMetric(avg[4], "wu-tetris")
	}
}

// fullSystemBench runs the 8x5 sweep once per iteration and reports the
// requested figure's geomean row.
func fullSystemBench(b *testing.B, figure string) {
	opt := benchEvalOptions()
	var fr *exp.FullResults
	var err error
	for i := 0; i < b.N; i++ {
		fr, err = exp.RunFullSystem(opt)
		if err != nil {
			b.Fatal(err)
		}
	}
	var out string
	switch figure {
	case "fig11":
		out = fr.Figure11().String()
	case "fig12":
		out = fr.Figure12().String()
	case "fig13":
		out = fr.Figure13().String()
	case "fig14":
		out = fr.Figure14().String()
	}
	g := rowOf(out, "geomean")
	if len(g) == 5 {
		b.ReportMetric(g[1], "fnw")
		b.ReportMetric(g[2], "2stage")
		b.ReportMetric(g[3], "3stage")
		b.ReportMetric(g[4], "tetris")
	}
}

// BenchmarkFig11ReadLatency regenerates Figure 11 (read latency
// normalized to the DCW baseline; lower is better).
func BenchmarkFig11ReadLatency(b *testing.B) { fullSystemBench(b, "fig11") }

// BenchmarkFig12WriteLatency regenerates Figure 12 (write latency
// normalized to the baseline).
func BenchmarkFig12WriteLatency(b *testing.B) { fullSystemBench(b, "fig12") }

// BenchmarkFig13IPC regenerates Figure 13 (IPC improvement over the
// baseline; higher is better).
func BenchmarkFig13IPC(b *testing.B) { fullSystemBench(b, "fig13") }

// BenchmarkFig14RunningTime regenerates Figure 14 (running time
// normalized to the baseline).
func BenchmarkFig14RunningTime(b *testing.B) { fullSystemBench(b, "fig14") }

// BenchmarkSchemePlanWrite measures per-scheme planning cost on a sparse
// write: the per-write work a memory controller would add. Plans are
// recycled back to the scheme after use, exactly as the memory
// controller does, so this measures the steady-state (freelist-warm)
// path — 0 allocs/op is the gated expectation, and any allocation here
// is a hot-path regression.
func BenchmarkSchemePlanWrite(b *testing.B) {
	for _, name := range SchemeNames() {
		b.Run(name, func(b *testing.B) { benchPlanWrite(b, name) })
	}
}

// BenchmarkComposedSchemePlanWrite measures the decorator overhead of
// registry-composed schemes on the same steady-state path: the flipmin
// re-encoding pass, the remap density/wear ledger and the mlc P&V bill
// all sit on the per-write hot path and are expected to stay at
// 0 allocs/op like the bases they wrap.
func BenchmarkComposedSchemePlanWrite(b *testing.B) {
	for _, name := range []string{
		"dcw+flipmin", "dcw+remap", "tetris+remap", "dcw+mlc", "dcw+flipmin+remap",
	} {
		b.Run(name, func(b *testing.B) { benchPlanWrite(b, name) })
	}
}

func benchPlanWrite(b *testing.B, name string) {
	s, err := NewScheme(name, DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	rec, _ := s.(schemes.PlanRecycler)
	old := make([]byte, 64)
	new := make([]byte, 64)
	for i := 0; i < 10; i++ {
		new[i*6%64] ^= 1 << (i % 8)
	}
	cycle := func(i int) {
		plan := s.PlanWrite(LineAddr(i%256), old, new)
		_ = plan.ServiceTime()
		if rec != nil {
			rec.RecyclePlan(plan)
		}
	}
	// Warm the pulse freelist, scratch arenas and (for Tetris)
	// the schedule memo-cache before measuring.
	for i := 0; i < 256; i++ {
		cycle(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cycle(i)
	}
}

// benchEngineLongTrace drives the bare event engine through the steady
// state of a long trace replay: a large in-flight event population where
// every popped event reschedules itself with a delay drawn from the
// memory system's mix (same-cycle follow-ups, device-timing delays in
// the tens of ns to tens of us, rare far-future maintenance work). One
// op is one event, so the default 1 s bench time processes well over
// 10M events — the scale at which the seed engine's O(log n) heap and
// its pointer-chasing comparisons dominate, and the regime the ROADMAP's
// million-user traces live in.
func benchEngineLongTrace(b *testing.B, kind sim.QueueKind, population int) {
	// The delay stream is precomputed so the measured loop is queue cost,
	// not random-number generation; both variants replay the same table.
	delays := longTraceDelays(1 << 16)
	eng := sim.NewEngine(kind)
	pos := 0
	var fn func()
	fn = func() {
		eng.After(delays[pos&(len(delays)-1)], fn)
		pos++
	}
	for i := 0; i < population; i++ {
		fn()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Step()
	}
}

// longTraceDelays builds a deterministic delay table modelling a memory
// system's event mix: 10% same-cycle follow-ups (queue drains, callback
// chains), 75% device-timing delays (tRead up to a long write), 14%
// scheduling-horizon delays up to 100 us, and 1% far-future maintenance
// work beyond the wheel span (exercising the overflow heap).
func longTraceDelays(n int) []units.Duration {
	rng := uint64(1)
	next := func() uint64 {
		rng += 0x9e3779b97f4a7c15
		z := rng
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	out := make([]units.Duration, n)
	for i := range out {
		r := next()
		switch c := r % 100; {
		case c < 10:
			out[i] = 0
		case c < 85:
			out[i] = 60*units.Nanosecond + units.Duration(r>>8)%(4*units.Microsecond)
		case c < 99:
			out[i] = units.Duration(r>>8) % (100 * units.Microsecond)
		default:
			out[i] = 2 * units.Second
		}
	}
	return out
}

// BenchmarkEngineLongTrace compares the timing-wheel engine (the
// default) against the seed binary heap on the long-trace event pattern,
// across pending-population sizes: 4Ki ≈ a loaded single-rank
// configuration, 32Ki ≈ a deep multi-bank write queue plus every
// outstanding read and wear-leveling timer, 128Ki ≈ the ROADMAP's
// million-user trace regime. The two variants replay the identical
// deterministic schedule; the ns/op gap is pure data-structure cost, and
// the heap's O(log n) comparisons widen it as the population grows.
func BenchmarkEngineLongTrace(b *testing.B) {
	for _, pop := range []struct {
		name string
		n    int
	}{{"4Ki", 1 << 12}, {"32Ki", 1 << 15}, {"128Ki", 1 << 17}} {
		b.Run("wheel-"+pop.name, func(b *testing.B) { benchEngineLongTrace(b, sim.QueueWheel, pop.n) })
		b.Run("heap-"+pop.name, func(b *testing.B) { benchEngineLongTrace(b, sim.QueueHeap, pop.n) })
	}
}

// BenchmarkFullSystemSingle measures one full-system simulation
// (canneal under Tetris) end to end.
func BenchmarkFullSystemSingle(b *testing.B) {
	prof, _ := workload.ProfileByName("canneal")
	cfg := system.Config{Params: DefaultParams(), InstrBudget: 50_000}
	for i := 0; i < b.N; i++ {
		_, err := system.Run(prof, tetris.New, cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFullSystemParallel compares the serial engine against the
// deterministic per-bank parallel engine on a planning-heavy
// configuration: write-heavy vips under DCW at 256-byte lines, where
// per-write plan construction is the dominant per-event cost and the
// scheme's content-independent service floor lets every completion
// resolve inline (maximum lookahead). The two modes produce
// bit-identical Results (the engine-mode cross-check sweep proves it);
// the ratio reported as the speedup-x metric is pure wall-clock win
// from overlapping plan computation across banks. The full gain needs
// GOMAXPROCS >= banks; single-CPU hosts still see a modest win from
// the workers' batched planning locality.
func BenchmarkFullSystemParallel(b *testing.B) {
	prof, _ := workload.ProfileByName("vips")
	for _, banks := range []int{2, 4, 8} {
		serial := make(map[int]float64)
		for _, mode := range []sim.EngineMode{sim.EngineSerial, sim.EngineParallel} {
			b.Run(string(mode)+"-"+strconv.Itoa(banks)+"bank", func(b *testing.B) {
				par := DefaultParams()
				par.LineBytes = 256
				par.NumBanks = banks
				par.CapacityBytes = 16 << 30
				cfg := system.Config{Params: par, Cores: 8, InstrBudget: 50_000, EngineMode: mode}
				start := time.Now()
				for i := 0; i < b.N; i++ {
					_, err := system.Run(prof, schemes.NewDCW, cfg)
					if err != nil {
						b.Fatal(err)
					}
				}
				perOp := float64(time.Since(start)) / float64(b.N)
				if mode == sim.EngineSerial {
					serial[banks] = perOp
				} else if perOp > 0 && serial[banks] > 0 {
					b.ReportMetric(serial[banks]/perOp, "speedup-x")
				}
			})
		}
	}
}
