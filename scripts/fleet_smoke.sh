#!/usr/bin/env bash
# End-to-end fleet smoke test: start a pcmsimd broker and two pcmsimw
# workers on loopback, submit a figure-13 sweep, SIGKILL one worker
# mid-run, and require (a) the job still completes via lease expiry +
# retry and (b) the rendered table is byte-identical to a serial
# tetrisbench run. CI runs this via `make fleet-smoke`; it is also safe
# to run locally (ports are non-default to avoid colliding with a real
# deployment).
set -euo pipefail

BIN=${BIN:-bin}
RPC=${RPC:-127.0.0.1:7177}
HTTP=${HTTP:-127.0.0.1:7170}
INSTR=${INSTR:-20000}
WORK=$(mktemp -d)
export FLEET_SMOKE_JOURNAL="$WORK/journal.jsonl"

cleanup() {
    # shellcheck disable=SC2046
    kill $(jobs -p) 2>/dev/null || true
    wait 2>/dev/null || true
    # Keep the journal for CI artifact upload when requested.
    if [ -n "${FLEET_SMOKE_KEEP:-}" ]; then
        cp "$WORK/journal.jsonl" "${FLEET_SMOKE_KEEP}" 2>/dev/null || true
    fi
    rm -rf "$WORK"
}
trap cleanup EXIT

echo "== broker"
"$BIN/pcmsimd" -rpc "$RPC" -http "$HTTP" -journal "$WORK/journal.jsonl" \
    -lease 2s -poll 50ms -backoff 100ms -max-backoff 1s &
BROKER=$!

for i in $(seq 1 100); do
    if curl -fsS "http://$HTTP/healthz" >/dev/null 2>&1; then
        break
    fi
    [ "$i" = 100 ] && { echo "broker never became healthy" >&2; exit 1; }
    sleep 0.1
done
"$BIN/pcmsimd" -version

echo "== workers"
"$BIN/pcmsimw" -broker "$RPC" -name smoke-w1 -slots 2 &
"$BIN/pcmsimw" -broker "$RPC" -name smoke-w2 -slots 2 &
W2=$!

echo "== submit"
JOB=$(curl -fsS -XPOST "http://$HTTP/jobs" -d "{\"figs\":[13],\"instr\":$INSTR}" |
    sed -n 's/.*"job": *"\([^"]*\)".*/\1/p')
[ -n "$JOB" ] || { echo "job submit failed" >&2; exit 1; }
echo "job: $JOB"

# Let the sweep get going, then kill one worker the hard way: no
# deregistration, no goodbye — the broker must notice the silence and
# retry its leased shards on the survivor.
sleep 2
echo "== SIGKILL worker w2 (pid $W2)"
kill -9 "$W2"

echo "== wait"
STATUS=$(curl -fsS --max-time 600 "http://$HTTP/jobs/$JOB/wait")
echo "$STATUS"
echo "$STATUS" | grep -q '"state": *"completed"' ||
    { echo "job did not complete" >&2; exit 1; }

echo "== compare against serial tetrisbench"
curl -fsS "http://$HTTP/jobs/$JOB/result" >"$WORK/fleet.txt"
"$BIN/tetrisbench" -fig 13 -instr "$INSTR" -parallel 1 >"$WORK/serial.txt"
if ! diff -u "$WORK/serial.txt" "$WORK/fleet.txt"; then
    echo "fleet result differs from serial reference" >&2
    exit 1
fi

# Journal replay: kill the broker, restart it from the same journal
# (which now carries per-record checksums), and require the replayed
# broker to serve the identical result for the completed job. The diff
# is piped through tee for the CI log; pipefail + `if !` ensure a
# mid-pipeline diff failure exits this script nonzero instead of being
# masked by tee's exit status.
echo "== restart broker from journal"
kill "$BROKER" 2>/dev/null || true
wait "$BROKER" 2>/dev/null || true
"$BIN/pcmsimd" -rpc "$RPC" -http "$HTTP" -journal "$WORK/journal.jsonl" \
    -lease 2s -poll 50ms -backoff 100ms -max-backoff 1s &
for i in $(seq 1 100); do
    if curl -fsS "http://$HTTP/healthz" >/dev/null 2>&1; then
        break
    fi
    [ "$i" = 100 ] && { echo "replayed broker never became healthy" >&2; exit 1; }
    sleep 0.1
done
curl -fsS "http://$HTTP/jobs/$JOB/result" >"$WORK/replay.txt"
if ! diff -u "$WORK/fleet.txt" "$WORK/replay.txt" | tee "$WORK/replay.diff"; then
    echo "journal replay served a different result for job $JOB" >&2
    exit 1
fi

echo "== fleet smoke OK (job $JOB byte-identical to serial; journal replay identical)"
