package tetriswrite_test

import (
	"fmt"

	"tetriswrite"
)

// The smallest use of the library: plan one cache-line write under
// Tetris Write and inspect its cost.
func Example_planWrite() {
	par := tetriswrite.DefaultParams()
	s, err := tetriswrite.NewScheme("tetris", par)
	if err != nil {
		panic(err)
	}
	old := make([]byte, 64)
	new := make([]byte, 64)
	new[0] = 0x0F // four bits change

	plan := s.PlanWrite(0, old, new)
	sets, resets := plan.Counts()
	fmt.Printf("pulses: %d SET, %d RESET\n", sets, resets)
	fmt.Printf("write units: %.2f (baseline needs %d)\n", plan.WriteUnits(), par.DataUnits())
	// Output:
	// pulses: 4 SET, 0 RESET
	// write units: 1.00 (baseline needs 8)
}

// Comparing the service time of every scheme on the same write.
func Example_compareSchemes() {
	par := tetriswrite.DefaultParams()
	old := make([]byte, 64)
	new := make([]byte, 64)
	new[10] = 0x81

	for _, name := range []string{"dcw", "fnw", "threestage", "tetris"} {
		s, err := tetriswrite.NewScheme(name, par)
		if err != nil {
			panic(err)
		}
		plan := s.PlanWrite(0, old, new)
		fmt.Printf("%-11s %v\n", name, plan.ServiceTime())
	}
	// Output:
	// dcw         3.490us
	// fnw         1.770us
	// threestage  1.122us
	// tetris      582.500ns
}

// Running a full-system simulation: one workload, one scheme, the
// paper's 4-core platform.
func Example_runSystem() {
	res, err := tetriswrite.RunSystem("canneal", "tetris", tetriswrite.SystemConfig{
		InstrBudget: 100_000,
		Seed:        1,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("workload=%s scheme=%s\n", res.Workload, res.Scheme)
	fmt.Printf("memory traffic: %d reads, %d writes\n", res.Ctrl.Reads, res.Ctrl.Writes)
	fmt.Printf("write units per line: %.3f\n", res.WriteUnits)
	// Output:
	// workload=canneal scheme=tetris
	// memory traffic: 1143 reads, 73 writes
	// write units per line: 1.000
}

// Ablations: Tetris Write with the analysis overhead removed and
// arrival-order packing.
func Example_tetrisOptions() {
	par := tetriswrite.DefaultParams()
	s, err := tetriswrite.NewTetris(par, tetriswrite.TetrisOptions{
		AnalysisCycles: -1, // idealized ASIC: no analysis overhead
		ArrivalOrder:   true,
	})
	if err != nil {
		panic(err)
	}
	old := make([]byte, 64)
	new := make([]byte, 64)
	new[3] = 0xFF
	plan := s.PlanWrite(0, old, new)
	fmt.Printf("service: %v (read %v + write %v)\n", plan.ServiceTime(), plan.Read, plan.Write)
	// Output:
	// service: 480.000ns (read 50.000ns + write 430.000ns)
}
