# Developer conveniences; CI runs the same targets.

GO ?= go
FUZZTIME ?= 10s

.PHONY: build test race fuzz-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short-budget fuzz smoke: each target gets $(FUZZTIME) of coverage-guided
# input generation on top of its seed corpus. Catches parser and codec
# regressions that fixed test vectors miss, cheap enough for every CI run.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzFlipCoding -fuzztime=$(FUZZTIME) ./internal/bitutil
	$(GO) test -run='^$$' -fuzz=FuzzReader -fuzztime=$(FUZZTIME) ./internal/trace
	$(GO) test -run='^$$' -fuzz=FuzzParseTrace -fuzztime=$(FUZZTIME) ./internal/trace
