# Developer conveniences; CI runs the same targets.

GO ?= go
FUZZTIME ?= 10s
# The gated hot-path benchmarks: per-write planning cost (base and
# registry-composed schemes), one full system simulation end to end,
# the serial-vs-parallel engine-mode comparison across bank counts, and
# the long-trace event-engine sweep (timing wheel vs the seed binary
# heap across pending populations).
BENCHFILTER ?= BenchmarkSchemePlanWrite|BenchmarkComposedSchemePlanWrite|BenchmarkSchemePlanWriteDense|BenchmarkArrayFlipCount|BenchmarkCacheHit|BenchmarkFullSystemSingle|BenchmarkFullSystemParallel|BenchmarkEngineLongTrace
BENCHCOUNT ?= 3

# Build stamping for `<binary> -version`: ldflags override the
# internal/version defaults with the exact commit and build date. Falls
# back to "unknown" outside a git checkout (internal/version then tries
# debug.ReadBuildInfo at runtime).
COMMIT ?= $(shell git rev-parse --short HEAD 2>/dev/null || echo unknown)
DATE ?= $(shell date -u +%Y-%m-%dT%H:%M:%SZ)
LDFLAGS = -X tetriswrite/internal/version.Commit=$(COMMIT) -X tetriswrite/internal/version.Date=$(DATE)

.PHONY: build test race fuzz-smoke bench bench-baseline bench-gate fleet-smoke crash-smoke

build:
	$(GO) build -ldflags '$(LDFLAGS)' ./...

# Install the stamped binaries into ./bin for service deployments and
# the CI fleet smoke test.
bin: FORCE
	$(GO) build -ldflags '$(LDFLAGS)' -o bin/ ./cmd/...

FORCE:

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short-budget fuzz smoke: each target gets $(FUZZTIME) of coverage-guided
# input generation on top of its seed corpus. Catches parser and codec
# regressions that fixed test vectors miss, cheap enough for every CI run.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzFlipCoding -fuzztime=$(FUZZTIME) ./internal/bitutil
	$(GO) test -run='^$$' -fuzz=FuzzReader -fuzztime=$(FUZZTIME) ./internal/trace
	$(GO) test -run='^$$' -fuzz=FuzzParseTrace -fuzztime=$(FUZZTIME) ./internal/trace
	$(GO) test -run='^$$' -fuzz=FuzzPack -fuzztime=$(FUZZTIME) ./internal/tetris

# Run the gated benchmarks and leave the output in bench_new.txt for
# benchgate. -count=$(BENCHCOUNT): benchgate takes the best run per
# benchmark, discarding scheduler noise. Also refreshes the
# BENCH_<date>.json perf-trajectory artifact in the repo root, so the
# local tree carries the same history CI uploads.
bench:
	$(GO) test -run='^$$' -bench='$(BENCHFILTER)' -benchmem -count=$(BENCHCOUNT) . | tee bench_new.txt
	$(GO) run ./cmd/tetrisbench -bench-json -writes 200

# Refresh the committed baseline. Run on a quiet machine after an
# intentional performance change; the diff is part of the review.
bench-baseline:
	$(GO) test -run='^$$' -bench='$(BENCHFILTER)' -benchmem -count=$(BENCHCOUNT) . | tee results/bench_baseline.txt

# Gate the working tree against the committed baseline. ns/op is gated
# with a 10% budget — only meaningful when the baseline was produced on
# this machine; use BENCHGATE_FLAGS=-skip-ns to gate allocs/op alone
# (deterministic, hence portable across machines, and the stricter of
# the two checks: any increase fails).
bench-gate: bench
	$(GO) run ./cmd/benchgate -old results/bench_baseline.txt -new bench_new.txt $(BENCHGATE_FLAGS)

# Crash-consistency smoke: the seeded power-failure sweep under the race
# detector (every cut recovered, resumed and diffed against the
# crash-free oracle inside the test), then a slightly larger sweep via
# the CLI whose per-scheme classification table lands in
# crash_table.txt — the artifact CI uploads.
crash-smoke: bin
	$(GO) test -race -run TestCrashSweepContract ./internal/exp
	bin/tetrisbench -crash-every 64 -crash-cuts 4 -writes 80 | tee crash_table.txt

# End-to-end sweep-service smoke: broker + two workers on loopback, one
# worker SIGKILLed mid-sweep, final table diffed against a serial
# tetrisbench run. Exercises the whole fault path for real: processes,
# TCP, lease expiry, retry, journal.
fleet-smoke: bin
	./scripts/fleet_smoke.sh
