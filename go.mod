module tetriswrite

go 1.22
