// Package runner is the experiment supervisor: a bounded worker pool
// that fans independent jobs (full-system simulation cells, benchmark
// points) across CPUs with the failure handling a long unattended sweep
// needs — per-job panic isolation, retry with backoff, per-attempt
// wall-clock timeouts, and graceful partial-result aggregation when the
// caller cancels.
//
// Results are positionally aligned with the submitted jobs, so a sweep
// filled in parallel is indistinguishable from one filled serially:
// every job owns its inputs (seeds, configs) and the pool imposes no
// ordering of its own. That is what lets tetrisbench promise bit-
// identical tables for -parallel 1 and -parallel N.
package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"
)

// ErrSkipped marks a job that never ran because the supervisor was
// cancelled first. Its Result.Value is the zero value.
var ErrSkipped = errors.New("runner: job skipped")

// Job is one unit of work. Run receives a context derived from the
// supervisor's (with the per-job timeout applied, when configured) and
// should return promptly once it is cancelled.
type Job[T any] struct {
	Name string
	Run  func(ctx context.Context) (T, error)
}

// Result is one job's outcome, at the same index as its job.
type Result[T any] struct {
	Name     string
	Value    T     // also set on failure when Run returned a partial value
	Err      error // nil on success; ErrSkipped if the job never ran
	Attempts int   // 1 + retries consumed (0 when skipped)
}

// PanicError is a panic recovered from a job's Run — the pool converts
// it to an error so one crashing cell cannot take down the sweep.
type PanicError struct {
	Job   string
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("runner: job %s panicked: %v", e.Job, e.Value)
}

// Options configure a pool.
type Options struct {
	// Workers is the number of concurrent jobs; <= 0 means GOMAXPROCS.
	Workers int
	// JobTimeout bounds each attempt's wall-clock time; 0 means none.
	JobTimeout time.Duration
	// Retries is how many extra attempts a failed job gets (default 0).
	// Context cancellation is never retried.
	Retries int
	// Backoff is the wait before the first retry, doubling per attempt;
	// 0 with Retries > 0 defaults to 100ms. The wait aborts immediately
	// on cancellation.
	Backoff time.Duration
	// OnDone, when non-nil, is called after each job settles (from
	// worker goroutines; the callback must be safe for concurrent use).
	OnDone func(done, total int, name string, err error)
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (o Options) backoff() time.Duration {
	if o.Backoff > 0 {
		return o.Backoff
	}
	return 100 * time.Millisecond
}

// All runs every job and returns their results, index-aligned with
// jobs. It blocks until each job has either settled or been marked
// skipped; when ctx is cancelled, running jobs see it through their
// derived contexts and unstarted jobs settle as ErrSkipped, so the
// caller always gets back whatever completed — partial results instead
// of nothing.
func All[T any](ctx context.Context, jobs []Job[T], opt Options) []Result[T] {
	results := make([]Result[T], len(jobs))
	idx := make(chan int)
	var wg sync.WaitGroup
	var mu sync.Mutex
	done := 0
	settle := func(i int, r Result[T]) {
		results[i] = r
		if opt.OnDone != nil {
			mu.Lock()
			done++
			d := done
			mu.Unlock()
			opt.OnDone(d, len(jobs), r.Name, r.Err)
		}
	}
	for w := 0; w < opt.workers(); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if err := ctx.Err(); err != nil {
					settle(i, Result[T]{Name: jobs[i].Name,
						Err: fmt.Errorf("%w: %w", ErrSkipped, err)})
					continue
				}
				settle(i, runJob(ctx, jobs[i], opt))
			}
		}()
	}
	for i := range jobs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return results
}

// runJob drives one job through its attempts.
func runJob[T any](ctx context.Context, job Job[T], opt Options) Result[T] {
	res := Result[T]{Name: job.Name}
	backoff := opt.backoff()
	for attempt := 0; ; attempt++ {
		res.Attempts = attempt + 1
		res.Value, res.Err = runAttempt(ctx, job, opt.JobTimeout)
		if res.Err == nil || attempt >= opt.Retries || ctx.Err() != nil {
			return res
		}
		t := time.NewTimer(backoff)
		select {
		case <-ctx.Done():
			t.Stop()
			return res
		case <-t.C:
		}
		backoff *= 2
	}
}

// runAttempt executes one attempt with the timeout applied and panics
// converted to errors.
func runAttempt[T any](ctx context.Context, job Job[T], timeout time.Duration) (v T, err error) {
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	defer func() {
		if p := recover(); p != nil {
			err = &PanicError{Job: job.Name, Value: p, Stack: debug.Stack()}
		}
	}()
	return job.Run(ctx)
}

// FirstErr returns the first failed result's error (with the job name
// attached), or nil when every job succeeded.
func FirstErr[T any](results []Result[T]) error {
	for _, r := range results {
		if r.Err != nil {
			return fmt.Errorf("%s: %w", r.Name, r.Err)
		}
	}
	return nil
}

// Failed counts the results that carry an error.
func Failed[T any](results []Result[T]) int {
	n := 0
	for _, r := range results {
		if r.Err != nil {
			n++
		}
	}
	return n
}
