// Package runner is the experiment supervisor: a bounded worker pool
// that fans independent jobs (full-system simulation cells, benchmark
// points) across CPUs with the failure handling a long unattended sweep
// needs — per-job panic isolation, retry with backoff, per-attempt
// wall-clock timeouts, and graceful partial-result aggregation when the
// caller cancels.
//
// Results are positionally aligned with the submitted jobs, so a sweep
// filled in parallel is indistinguishable from one filled serially:
// every job owns its inputs (seeds, configs) and the pool imposes no
// ordering of its own. That is what lets tetrisbench promise bit-
// identical tables for -parallel 1 and -parallel N. Concretely, worker
// goroutines write only results[i] for the job index they leased off the
// shared channel — disjoint slots, no shared accumulator — so the only
// cross-goroutine edges are the channel handoff and the final WaitGroup
// join, and positional determinism needs no locking (pinned by
// TestAllRunsEveryJobPositionally under the race detector in CI).
package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"
)

// ErrSkipped marks a job that never ran because the supervisor was
// cancelled first. Its Result.Value is the zero value.
var ErrSkipped = errors.New("runner: job skipped")

// Job is one unit of work. Run receives a context derived from the
// supervisor's (with the per-job timeout applied, when configured) and
// should return promptly once it is cancelled.
type Job[T any] struct {
	Name string
	Run  func(ctx context.Context) (T, error)
}

// Result is one job's outcome, at the same index as its job.
type Result[T any] struct {
	Name     string
	Value    T     // also set on failure when Run returned a partial value
	Err      error // nil on success; ErrSkipped if the job never ran
	Attempts int   // 1 + retries consumed (0 when skipped)
}

// PanicError is a panic recovered from a job's Run — the pool converts
// it to an error so one crashing cell cannot take down the sweep.
type PanicError struct {
	Job   string
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("runner: job %s panicked: %v", e.Job, e.Value)
}

// Options configure a pool.
type Options struct {
	// Workers is the number of concurrent jobs; <= 0 means GOMAXPROCS.
	Workers int
	// JobTimeout bounds each attempt's wall-clock time; 0 means none.
	JobTimeout time.Duration
	// Retries is how many extra attempts a failed job gets (default 0).
	// Context cancellation is never retried.
	Retries int
	// Backoff is the wait before the first retry, doubling per attempt;
	// 0 with Retries > 0 defaults to 100ms. The wait aborts immediately
	// on cancellation.
	Backoff time.Duration
	// OnDone, when non-nil, is called after each job settles (from
	// worker goroutines; the callback must be safe for concurrent use).
	OnDone func(done, total int, name string, err error)
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (o Options) backoff() time.Duration {
	if o.Backoff > 0 {
		return o.Backoff
	}
	return 100 * time.Millisecond
}

// All runs every job and returns their results, index-aligned with
// jobs. It blocks until each job has either settled or been marked
// skipped; when ctx is cancelled, running jobs see it through their
// derived contexts and unstarted jobs settle as ErrSkipped, so the
// caller always gets back whatever completed — partial results instead
// of nothing.
func All[T any](ctx context.Context, jobs []Job[T], opt Options) []Result[T] {
	results := make([]Result[T], len(jobs))
	idx := make(chan int)
	var wg sync.WaitGroup
	var mu sync.Mutex
	done := 0
	settle := func(i int, r Result[T]) {
		results[i] = r
		if opt.OnDone != nil {
			mu.Lock()
			done++
			d := done
			mu.Unlock()
			opt.OnDone(d, len(jobs), r.Name, r.Err)
		}
	}
	for w := 0; w < opt.workers(); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if err := ctx.Err(); err != nil {
					settle(i, Result[T]{Name: jobs[i].Name,
						Err: fmt.Errorf("%w: %w", ErrSkipped, err)})
					continue
				}
				settle(i, runJob(ctx, jobs[i], opt))
			}
		}()
	}
	for i := range jobs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return results
}

// Backoff computes the delay before retry attempt n (1-based) as an
// exponential series with an optional cap and optional deterministic
// jitter. It is the shared retry-pacing policy: the pool uses it
// between local attempts and the fleet broker uses it to space shard
// re-issues across surviving workers, so both layers wait the same way.
type Backoff struct {
	// Base is the delay before the first retry; <= 0 means 100ms.
	Base time.Duration
	// Max caps the grown delay; 0 means uncapped.
	Max time.Duration
	// Jitter spreads each delay uniformly over ±Jitter fraction of
	// itself (0..1), decorrelating retry storms when many shards fail
	// at once (a worker death fails its whole lease set together).
	Jitter float64
	// Seed makes the jitter deterministic per consumer: the same
	// (Seed, attempt) always yields the same delay, so tests and
	// journal replays see reproducible schedules. A zero Seed is a
	// valid seed.
	Seed uint64
}

// Delay returns the wait before retry attempt n (n >= 1).
func (b Backoff) Delay(attempt int) time.Duration {
	if attempt < 1 {
		attempt = 1
	}
	d := b.Base
	if d <= 0 {
		d = 100 * time.Millisecond
	}
	for i := 1; i < attempt; i++ {
		d *= 2
		if b.Max > 0 && d >= b.Max {
			d = b.Max
			break
		}
	}
	if b.Max > 0 && d > b.Max {
		d = b.Max
	}
	if b.Jitter > 0 {
		// splitmix64 finalizer over (Seed, attempt): uniform in
		// [1-Jitter, 1+Jitter) without any shared RNG state.
		z := b.Seed + 0x9e3779b97f4a7c15*uint64(attempt+1)
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		u := float64(z>>11) / (1 << 53) // [0,1)
		d = time.Duration(float64(d) * (1 - b.Jitter + 2*b.Jitter*u))
		if d < time.Millisecond {
			d = time.Millisecond
		}
	}
	return d
}

// runJob drives one job through its attempts. The backoff timer is
// created once and reused across retries with the documented
// Stop-then-drain dance, so a sweep of thousands of retrying jobs does
// not leak a timer per attempt and a cancelled wait frees its timer
// immediately instead of at expiry.
func runJob[T any](ctx context.Context, job Job[T], opt Options) Result[T] {
	res := Result[T]{Name: job.Name}
	bo := Backoff{Base: opt.backoff()}
	var t *time.Timer
	defer func() {
		if t != nil {
			t.Stop()
		}
	}()
	for attempt := 0; ; attempt++ {
		res.Attempts = attempt + 1
		res.Value, res.Err = Attempt(ctx, job.Name, opt.JobTimeout, job.Run)
		if res.Err == nil || attempt >= opt.Retries || ctx.Err() != nil {
			return res
		}
		d := bo.Delay(attempt + 1)
		if t == nil {
			t = time.NewTimer(d)
		} else {
			// The timer has always fired by the time we get here (the
			// cancellation arm returns), so the channel is empty and
			// Reset is race-free without a drain.
			t.Reset(d)
		}
		select {
		case <-ctx.Done():
			return res
		case <-t.C:
		}
	}
}

// Attempt executes fn once under the pool's per-attempt semantics: the
// timeout (when positive) bounds its wall-clock time through a derived
// context, and a panic is converted to a *PanicError instead of
// unwinding the caller. Exported so single-shot supervised work — a
// fleet worker running one leased shard — shares the exact failure
// envelope of a pooled job.
func Attempt[T any](ctx context.Context, name string, timeout time.Duration, fn func(context.Context) (T, error)) (v T, err error) {
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	defer func() {
		if p := recover(); p != nil {
			err = &PanicError{Job: name, Value: p, Stack: debug.Stack()}
		}
	}()
	return fn(ctx)
}

// FirstErr returns the first failed result's error (with the job name
// attached), or nil when every job succeeded.
func FirstErr[T any](results []Result[T]) error {
	for _, r := range results {
		if r.Err != nil {
			return fmt.Errorf("%s: %w", r.Name, r.Err)
		}
	}
	return nil
}

// Failed counts the results that carry an error.
func Failed[T any](results []Result[T]) int {
	n := 0
	for _, r := range results {
		if r.Err != nil {
			n++
		}
	}
	return n
}
