package runner

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

func TestAllRunsEveryJobPositionally(t *testing.T) {
	jobs := make([]Job[int], 20)
	for i := range jobs {
		i := i
		jobs[i] = Job[int]{
			Name: fmt.Sprintf("job-%d", i),
			Run:  func(context.Context) (int, error) { return i * i, nil },
		}
	}
	results := All(context.Background(), jobs, Options{Workers: 4})
	if len(results) != len(jobs) {
		t.Fatalf("%d results for %d jobs", len(results), len(jobs))
	}
	for i, r := range results {
		if r.Err != nil || r.Value != i*i || r.Name != jobs[i].Name || r.Attempts != 1 {
			t.Errorf("result %d = %+v", i, r)
		}
	}
	if err := FirstErr(results); err != nil {
		t.Errorf("FirstErr = %v", err)
	}
	if Failed(results) != 0 {
		t.Error("spurious failures counted")
	}
}

func TestPanicIsolation(t *testing.T) {
	jobs := []Job[string]{
		{Name: "ok", Run: func(context.Context) (string, error) { return "fine", nil }},
		{Name: "boom", Run: func(context.Context) (string, error) { panic("kaboom") }},
		{Name: "also-ok", Run: func(context.Context) (string, error) { return "fine too", nil }},
	}
	results := All(context.Background(), jobs, Options{Workers: 2})
	if results[0].Err != nil || results[2].Err != nil {
		t.Fatal("healthy jobs infected by the panicking one")
	}
	var pe *PanicError
	if !errors.As(results[1].Err, &pe) {
		t.Fatalf("err = %T %v, want *PanicError", results[1].Err, results[1].Err)
	}
	if pe.Job != "boom" || pe.Value != "kaboom" || len(pe.Stack) == 0 {
		t.Errorf("panic error incomplete: %+v", pe)
	}
	if Failed(results) != 1 {
		t.Errorf("Failed = %d, want 1", Failed(results))
	}
}

func TestRetryWithBackoff(t *testing.T) {
	var calls atomic.Int32
	jobs := []Job[int]{{
		Name: "flaky",
		Run: func(context.Context) (int, error) {
			if calls.Add(1) < 3 {
				return 0, errors.New("transient")
			}
			return 7, nil
		},
	}}
	results := All(context.Background(), jobs, Options{Retries: 3, Backoff: time.Millisecond})
	if results[0].Err != nil || results[0].Value != 7 {
		t.Fatalf("flaky job did not recover: %+v", results[0])
	}
	if results[0].Attempts != 3 {
		t.Errorf("Attempts = %d, want 3", results[0].Attempts)
	}
}

func TestRetriesExhausted(t *testing.T) {
	sentinel := errors.New("permanent")
	jobs := []Job[int]{{Name: "dead", Run: func(context.Context) (int, error) { return 0, sentinel }}}
	results := All(context.Background(), jobs, Options{Retries: 2, Backoff: time.Millisecond})
	if !errors.Is(results[0].Err, sentinel) || results[0].Attempts != 3 {
		t.Fatalf("result = %+v, want sentinel after 3 attempts", results[0])
	}
}

// TestCancelSkipsPendingKeepsDone: with one worker and a cancel fired by
// the second job, the jobs after it settle as ErrSkipped while the
// completed first job's result survives — partial aggregation.
func TestCancelSkipsPendingKeepsDone(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	jobs := []Job[int]{
		{Name: "first", Run: func(context.Context) (int, error) { return 1, nil }},
		{Name: "trigger", Run: func(context.Context) (int, error) { cancel(); return 2, nil }},
		{Name: "late", Run: func(context.Context) (int, error) { return 3, nil }},
		{Name: "later", Run: func(context.Context) (int, error) { return 4, nil }},
	}
	results := All(ctx, jobs, Options{Workers: 1})
	if results[0].Err != nil || results[0].Value != 1 {
		t.Errorf("completed result lost: %+v", results[0])
	}
	for _, r := range results[2:] {
		if !errors.Is(r.Err, ErrSkipped) || !errors.Is(r.Err, context.Canceled) {
			t.Errorf("pending job not skipped: %+v", r)
		}
		if r.Attempts != 0 {
			t.Errorf("skipped job ran: %+v", r)
		}
	}
}

// TestCancellationNotRetried: a job failing because the supervisor was
// cancelled is not retried.
func TestCancellationNotRetried(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var calls atomic.Int32
	jobs := []Job[int]{{
		Name: "cancelled",
		Run: func(ctx context.Context) (int, error) {
			calls.Add(1)
			cancel()
			return 0, ctx.Err()
		},
	}}
	results := All(ctx, jobs, Options{Retries: 5, Backoff: time.Millisecond})
	if calls.Load() != 1 {
		t.Errorf("cancelled job attempted %d times, want 1", calls.Load())
	}
	if !errors.Is(results[0].Err, context.Canceled) {
		t.Errorf("err = %v", results[0].Err)
	}
}

func TestJobTimeout(t *testing.T) {
	jobs := []Job[int]{{
		Name: "slow",
		Run: func(ctx context.Context) (int, error) {
			select {
			case <-ctx.Done():
				return 0, ctx.Err()
			case <-time.After(10 * time.Second):
				return 1, nil
			}
		},
	}}
	start := time.Now()
	results := All(context.Background(), jobs, Options{JobTimeout: 20 * time.Millisecond})
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("timeout did not bound the job (%v elapsed)", elapsed)
	}
	if !errors.Is(results[0].Err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want deadline exceeded", results[0].Err)
	}
}

func TestOnDoneProgress(t *testing.T) {
	var done atomic.Int32
	jobs := make([]Job[int], 8)
	for i := range jobs {
		jobs[i] = Job[int]{Name: "j", Run: func(context.Context) (int, error) { return 0, nil }}
	}
	All(context.Background(), jobs, Options{Workers: 3, OnDone: func(d, total int, name string, err error) {
		done.Add(1)
		if total != 8 {
			t.Errorf("total = %d", total)
		}
	}})
	if done.Load() != 8 {
		t.Errorf("OnDone fired %d times, want 8", done.Load())
	}
}

// TestBackoffDelayDeterministic: the same (Seed, attempt) pair always
// yields the same delay — the property the fleet broker's journal
// replay and these very tests rely on.
func TestBackoffDelayDeterministic(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Max: 10 * time.Second, Jitter: 0.2, Seed: 42}
	for attempt := 1; attempt <= 8; attempt++ {
		d1 := b.Delay(attempt)
		d2 := b.Delay(attempt)
		if d1 != d2 {
			t.Fatalf("Delay(%d) nondeterministic: %v vs %v", attempt, d1, d2)
		}
	}
	other := Backoff{Base: 100 * time.Millisecond, Max: 10 * time.Second, Jitter: 0.2, Seed: 43}
	same := 0
	for attempt := 1; attempt <= 8; attempt++ {
		if b.Delay(attempt) == other.Delay(attempt) {
			same++
		}
	}
	if same == 8 {
		t.Error("different seeds produced identical schedules — jitter is not seed-dependent")
	}
}

// TestBackoffDelayGrowthAndCap: delays double from Base and saturate at
// Max; jitter keeps every delay within ±Jitter of the nominal value.
func TestBackoffDelayGrowthAndCap(t *testing.T) {
	plain := Backoff{Base: 10 * time.Millisecond, Max: 80 * time.Millisecond}
	want := []time.Duration{
		10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond,
		80 * time.Millisecond, 80 * time.Millisecond, 80 * time.Millisecond,
	}
	for i, w := range want {
		if got := plain.Delay(i + 1); got != w {
			t.Errorf("Delay(%d) = %v, want %v", i+1, got, w)
		}
	}
	if got := plain.Delay(0); got != plain.Delay(1) {
		t.Errorf("Delay(0) = %v, want clamp to Delay(1) = %v", got, plain.Delay(1))
	}
	if got := (Backoff{}).Delay(1); got != 100*time.Millisecond {
		t.Errorf("zero-value Base: Delay(1) = %v, want 100ms default", got)
	}
	jit := Backoff{Base: 10 * time.Millisecond, Max: 80 * time.Millisecond, Jitter: 0.2, Seed: 7}
	for i, w := range want {
		got := jit.Delay(i + 1)
		lo := time.Duration(float64(w) * 0.8)
		hi := time.Duration(float64(w) * 1.2)
		if got < lo || got > hi {
			t.Errorf("jittered Delay(%d) = %v outside [%v, %v]", i+1, got, lo, hi)
		}
	}
}

// TestCancelDuringBackoffWait: cancelling the supervisor while a job is
// waiting out its retry backoff returns promptly with the attempt's
// original error — the wait must not run to completion.
func TestCancelDuringBackoffWait(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sentinel := errors.New("transient")
	attempted := make(chan struct{}, 1)
	jobs := []Job[int]{{
		Name: "waiting",
		Run: func(context.Context) (int, error) {
			select {
			case attempted <- struct{}{}:
			default:
			}
			return 0, sentinel
		},
	}}
	go func() {
		<-attempted // first attempt has failed; the pool is now in backoff
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	results := All(ctx, jobs, Options{Retries: 3, Backoff: time.Hour})
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancel did not interrupt the backoff wait (%v elapsed)", elapsed)
	}
	if !errors.Is(results[0].Err, sentinel) {
		t.Errorf("err = %v, want the attempt's original error", results[0].Err)
	}
	if results[0].Attempts != 1 {
		t.Errorf("Attempts = %d, want 1 (cancelled before the retry ran)", results[0].Attempts)
	}
}

// TestJobTimeoutRacesCompletion: a job that finishes just inside its
// timeout wins cleanly, and one that finishes concurrently with firing
// settles as exactly one of the two outcomes — never a torn result.
func TestJobTimeoutRacesCompletion(t *testing.T) {
	fast := []Job[int]{{
		Name: "fast",
		Run:  func(context.Context) (int, error) { return 42, nil },
	}}
	results := All(context.Background(), fast, Options{JobTimeout: 10 * time.Second})
	if results[0].Err != nil || results[0].Value != 42 {
		t.Fatalf("fast job lost its race with a distant timeout: %+v", results[0])
	}
	// Race the two endings for real: many jobs sleeping right at the
	// timeout boundary. Each must settle as either a clean success or a
	// clean deadline error.
	n := 32
	jobs := make([]Job[int], n)
	for i := range jobs {
		jobs[i] = Job[int]{
			Name: fmt.Sprintf("edge-%d", i),
			Run: func(ctx context.Context) (int, error) {
				select {
				case <-ctx.Done():
					return 0, ctx.Err()
				case <-time.After(5 * time.Millisecond):
					return 1, nil
				}
			},
		}
	}
	for i, r := range All(context.Background(), jobs, Options{JobTimeout: 5 * time.Millisecond, Workers: 8}) {
		ok := r.Err == nil && r.Value == 1
		timedOut := errors.Is(r.Err, context.DeadlineExceeded) && r.Value == 0
		if !ok && !timedOut {
			t.Errorf("job %d settled as neither outcome: %+v", i, r)
		}
	}
}

// TestAttemptStandalone: the exported single-shot path applies the
// timeout and converts panics the same way pooled jobs do.
func TestAttemptStandalone(t *testing.T) {
	v, err := Attempt(context.Background(), "ok", 0, func(context.Context) (int, error) { return 9, nil })
	if err != nil || v != 9 {
		t.Fatalf("Attempt = %d, %v", v, err)
	}
	_, err = Attempt(context.Background(), "slow", 10*time.Millisecond, func(ctx context.Context) (int, error) {
		<-ctx.Done()
		return 0, ctx.Err()
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("timeout err = %v", err)
	}
	_, err = Attempt(context.Background(), "boom", 0, func(context.Context) (int, error) { panic("pow") })
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Job != "boom" {
		t.Errorf("panic err = %v, want *PanicError for job boom", err)
	}
}
