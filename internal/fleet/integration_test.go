package fleet

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"net/rpc"
	"path/filepath"
	"testing"
	"time"

	"tetriswrite/internal/exp"
	"tetriswrite/internal/runner"
)

// The integration tests run the real service stack — broker behind a
// TCP net/rpc server, Worker goroutines dialing it, RunShard executing
// real simulations — at chaos-drill cadence: leases expire in hundreds
// of milliseconds so a killed worker's shards bounce within the test's
// patience.

// testCadence is the broker config for chaos drills.
func testCadence(journal string) Config {
	return Config{
		LeaseTTL:       400 * time.Millisecond,
		HeartbeatEvery: 50 * time.Millisecond,
		Poll:           10 * time.Millisecond,
		Retry:          runner.Backoff{Base: 10 * time.Millisecond, Max: 50 * time.Millisecond, Jitter: 0.2},
		JournalPath:    journal,
	}
}

// serveBroker exposes a broker over a real TCP RPC listener, returning
// its dial address and a stop function.
func serveBroker(t *testing.T, b *Broker) (addr string, stop func()) {
	t.Helper()
	srv := rpc.NewServer()
	if err := srv.RegisterName(RPCService, b.RPC()); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go srv.ServeConn(conn)
		}
	}()
	return ln.Addr().String(), func() { ln.Close() }
}

// startWorker runs a Worker against addr until ctx ends.
func startWorker(ctx context.Context, t *testing.T, addr, name string, slots int) *Worker {
	t.Helper()
	w := NewWorker(WorkerConfig{
		Broker:    addr,
		Name:      name,
		Slots:     slots,
		DialRetry: runner.Backoff{Base: 20 * time.Millisecond, Max: 200 * time.Millisecond, Jitter: 0.2},
	})
	go w.Run(ctx)
	return w
}

// waitShardsDone polls until the job has at least n done shards.
func waitShardsDone(t *testing.T, b *Broker, id string, n int) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		st, ok := b.Status(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		if st.Shards.Done >= n {
			return
		}
		if st.State != string(JobRunning) && st.State != string(JobCompleted) {
			t.Fatalf("job %s reached %s while waiting for progress: %+v", id, st.State, st)
		}
		time.Sleep(10 * time.Millisecond)
	}
	st, _ := b.Status(id)
	t.Fatalf("job %s never reached %d done shards: %+v", id, n, st)
}

// serialReference renders the same grid with the in-process serial
// harness, exactly as `tetrisbench -fig 13` would print it.
func serialReference(t *testing.T, spec SweepSpec) string {
	t.Helper()
	fr, err := exp.RunFullSystem(exp.Options{InstrBudget: spec.Instr, Cores: spec.Cores, Seed: spec.Seeds[0]})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	fmt.Fprintln(&buf, fr.Figure13())
	return buf.String()
}

// TestChaosWorkerKillMidSweep is the headline acceptance test: two
// workers share a full 40-shard sweep, one is killed mid-run with no
// goodbye (the in-process SIGKILL), and the job must still complete —
// with the rendered table byte-identical to a serial sweep of the same
// grid.
func TestChaosWorkerKillMidSweep(t *testing.T) {
	b, err := New(testCadence(""))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	addr, stop := serveBroker(t, b)
	defer stop()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	w1 := startWorker(ctx, t, addr, "chaos-w1", 2)
	w2 := startWorker(ctx, t, addr, "chaos-w2", 2)

	spec := SweepSpec{Instr: 5_000, Figs: []int{13}}
	if err := spec.Normalize(); err != nil {
		t.Fatal(err)
	}
	id, err := b.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}

	// Kill w2 once the sweep is demonstrably in flight: both workers
	// have completed shards and more are leased.
	waitShardsDone(t, b, id, 4)
	killBy := time.Now().Add(60 * time.Second)
	for (w1.Runs.Load() == 0 || w2.Runs.Load() == 0) && time.Now().Before(killBy) {
		time.Sleep(5 * time.Millisecond)
	}
	w2.Kill()
	t.Logf("killed w2 after %d runs; w1 has %d", w2.Runs.Load(), w1.Runs.Load())

	wctx, wcancel := context.WithTimeout(ctx, 120*time.Second)
	defer wcancel()
	if err := b.Wait(wctx, id); err != nil {
		st, _ := b.Status(id)
		t.Fatalf("job never finished after worker kill: %v (%+v)", err, st)
	}
	st, _ := b.Status(id)
	if st.State != string(JobCompleted) {
		t.Fatalf("job state = %s (%+v)", st.State, st)
	}
	if w1.Runs.Load() == 0 || w2.Runs.Load() == 0 {
		t.Fatalf("work was not actually shared: w1=%d w2=%d", w1.Runs.Load(), w2.Runs.Load())
	}

	var got bytes.Buffer
	if err := b.WriteResult(&got, id, false); err != nil {
		t.Fatal(err)
	}
	want := serialReference(t, spec)
	if got.String() != want {
		t.Errorf("fleet table differs from serial reference:\n--- serial ---\n%s--- fleet ---\n%s", want, got.String())
	}
}

// TestBrokerRestartResumesFromJournal kills the broker (not the
// workers) mid-sweep and restarts it on the same journal: the resumed
// job must re-run exactly the unfinished shards, and the final table
// must still match the serial reference.
func TestBrokerRestartResumesFromJournal(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "broker.jsonl")
	spec := SweepSpec{Instr: 5_000, Figs: []int{13}}
	if err := spec.Normalize(); err != nil {
		t.Fatal(err)
	}

	// Phase 1: run the sweep partway, then stop everything. The worker
	// is stopped gracefully *first* so no completion is in flight when
	// the broker goes down — making the resume arithmetic exact.
	b1, err := New(testCadence(journal))
	if err != nil {
		t.Fatal(err)
	}
	addr1, stop1 := serveBroker(t, b1)
	wctx1, wcancel1 := context.WithCancel(context.Background())
	w1 := startWorker(wctx1, t, addr1, "phase1", 2)

	id, err := b1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	total := 40 // 8 workloads x 5 schemes x 1 seed
	waitShardsDone(t, b1, id, 8)
	wcancel1()
	// Worker Run deregisters on its way out; give that goodbye a moment,
	// then take the broker down hard (no drain — this is the crash).
	time.Sleep(100 * time.Millisecond)
	stop1()
	b1.Close()
	phase1Runs := int(w1.Runs.Load())
	if phase1Runs == 0 || phase1Runs >= total {
		t.Fatalf("phase 1 ran %d shards; need a strict partial sweep", phase1Runs)
	}

	// Phase 2: fresh broker, same journal; fresh worker.
	b2, err := New(testCadence(journal))
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Close()
	st, ok := b2.Status(id)
	if !ok {
		t.Fatalf("job %s not restored from journal", id)
	}
	if st.State != string(JobRunning) || st.Shards.Restored == 0 || st.Shards.Done != st.Shards.Restored {
		t.Fatalf("restored status = %+v", st)
	}
	restored := st.Shards.Restored

	addr2, stop2 := serveBroker(t, b2)
	defer stop2()
	wctx2, wcancel2 := context.WithCancel(context.Background())
	defer wcancel2()
	w2 := startWorker(wctx2, t, addr2, "phase2", 2)

	dctx, dcancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer dcancel()
	if err := b2.Wait(dctx, id); err != nil {
		st, _ := b2.Status(id)
		t.Fatalf("resumed job never finished: %v (%+v)", err, st)
	}
	if st, _ := b2.Status(id); st.State != string(JobCompleted) {
		t.Fatalf("resumed job state: %+v", st)
	}
	// The resume contract: phase 2 re-runs exactly the shards the
	// journal did not already answer for.
	if got := int(w2.Runs.Load()); got != total-restored {
		t.Errorf("phase 2 ran %d shards, want %d (total %d - %d restored)", got, total-restored, total, restored)
	}

	var got bytes.Buffer
	if err := b2.WriteResult(&got, id, false); err != nil {
		t.Fatal(err)
	}
	want := serialReference(t, spec)
	if got.String() != want {
		t.Errorf("resumed fleet table differs from serial reference:\n--- serial ---\n%s--- fleet ---\n%s", want, got.String())
	}

	// And the journal doubles as a response cache across the restart:
	// an identical submission completes with zero new work.
	id2, err := b2.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if st, _ := b2.Status(id2); st.State != string(JobCompleted) || st.Shards.Cached != total {
		t.Errorf("cross-restart cache miss: %+v", st)
	}
}

// TestWorkerGracefulShutdownDeregisters: cancelling a worker's context
// must deregister it so its leases requeue without burning attempts.
func TestWorkerGracefulShutdownDeregisters(t *testing.T) {
	b, err := New(testCadence(""))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	addr, stop := serveBroker(t, b)
	defer stop()

	ctx, cancel := context.WithCancel(context.Background())
	startWorker(ctx, t, addr, "graceful", 1)
	deadline := time.Now().Add(10 * time.Second)
	for len(b.Workers()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker never registered")
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	deadline = time.Now().Add(10 * time.Second)
	for len(b.Workers()) != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("worker still registered after graceful shutdown: %+v", b.Workers())
		}
		time.Sleep(5 * time.Millisecond)
	}
}
