package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"tetriswrite/internal/telemetry"
	"tetriswrite/internal/version"
)

// Handler returns the broker's HTTP API:
//
//	POST /jobs               submit a SweepSpec (JSON body), returns {"job": id}
//	GET  /jobs               list job statuses
//	GET  /jobs/{id}          one job's status
//	POST /jobs/{id}/cancel   cancel a job
//	GET  /jobs/{id}/result   rendered figure tables (text); ?partial=1 renders incomplete jobs
//	GET  /jobs/{id}/wait     block until the job is terminal, then return its status
//	GET  /jobs/{id}/events   JSON-lines event stream: full history, then live until terminal
//	GET  /workers            registered workers
//	GET  /metrics            Prometheus exposition of the fleet registry
//	GET  /metrics/stream     JSON-lines stream of periodic registry snapshots (?every=1s)
//	GET  /healthz            liveness + drain state
//	GET  /version            build identity (workers must match)
func (b *Broker) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", b.handleSubmit)
	mux.HandleFunc("GET /jobs", b.handleJobs)
	mux.HandleFunc("GET /jobs/{id}", b.handleStatus)
	mux.HandleFunc("POST /jobs/{id}/cancel", b.handleCancel)
	mux.HandleFunc("GET /jobs/{id}/result", b.handleResult)
	mux.HandleFunc("GET /jobs/{id}/wait", b.handleWait)
	mux.HandleFunc("GET /jobs/{id}/events", b.handleEvents)
	mux.HandleFunc("GET /workers", b.handleWorkers)
	mux.HandleFunc("GET /metrics", b.handleMetrics)
	mux.HandleFunc("GET /metrics/stream", b.handleMetricsStream)
	mux.HandleFunc("GET /healthz", b.handleHealthz)
	mux.HandleFunc("GET /version", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, version.String("pcmsimd"))
	})
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (b *Broker) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec SweepSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		httpError(w, http.StatusBadRequest, "bad sweep spec: %v", err)
		return
	}
	id, err := b.Submit(spec)
	switch {
	case errors.Is(err, ErrDraining):
		httpError(w, http.StatusServiceUnavailable, "%v", err)
	case err != nil:
		httpError(w, http.StatusBadRequest, "%v", err)
	default:
		writeJSON(w, http.StatusAccepted, map[string]string{"job": id})
	}
}

func (b *Broker) handleJobs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, b.Jobs())
}

func (b *Broker) handleStatus(w http.ResponseWriter, r *http.Request) {
	st, ok := b.Status(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "unknown job %s", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (b *Broker) handleCancel(w http.ResponseWriter, r *http.Request) {
	if err := b.Cancel(r.PathValue("id")); err != nil {
		httpError(w, http.StatusNotFound, "%v", err)
		return
	}
	st, _ := b.Status(r.PathValue("id"))
	writeJSON(w, http.StatusOK, st)
}

func (b *Broker) handleResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	partial := r.URL.Query().Get("partial") != ""
	st, ok := b.Status(id)
	if !ok {
		httpError(w, http.StatusNotFound, "unknown job %s", id)
		return
	}
	if st.State != string(JobCompleted) && !partial {
		httpError(w, http.StatusConflict, "job %s is %s; pass ?partial=1 for a partial table", id, st.State)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if err := b.WriteResult(w, id, partial); err != nil {
		// Headers are out; nothing better to do than note it inline.
		fmt.Fprintf(w, "\nrender error: %v\n", err)
	}
}

func (b *Broker) handleWait(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := b.Wait(r.Context(), id); err != nil {
		if r.Context().Err() != nil {
			return // client went away; the job keeps running regardless
		}
		httpError(w, http.StatusNotFound, "%v", err)
		return
	}
	st, _ := b.Status(id)
	writeJSON(w, http.StatusOK, st)
}

// handleEvents streams the job's event history and then live events as
// JSON lines until the job is terminal or the client disconnects.
func (b *Broker) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	b.mu.Lock()
	j, ok := b.jobs[id]
	b.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, "unknown job %s", id)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	history, live, done := j.events.subscribe()
	for _, e := range history {
		enc.Encode(e)
	}
	if flusher != nil {
		flusher.Flush()
	}
	if done || r.URL.Query().Get("follow") == "0" {
		if live != nil {
			j.events.unsubscribe(live)
		}
		return
	}
	defer j.events.unsubscribe(live)
	for {
		select {
		case e, ok := <-live:
			if !ok {
				return // job terminal: stream complete
			}
			enc.Encode(e)
			if flusher != nil {
				flusher.Flush()
			}
		case <-r.Context().Done():
			return
		}
	}
}

func (b *Broker) handleWorkers(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, b.Workers())
}

func (b *Broker) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	telemetry.WritePrometheus(w, b.reg)
}

// handleMetricsStream emits telemetry.EpochRecord JSON lines from live
// registry snapshots — the service-side analogue of a simulation run's
// epochs.jsonl, consumable by the same tooling.
func (b *Broker) handleMetricsStream(w http.ResponseWriter, r *http.Request) {
	every := time.Second
	if s := r.URL.Query().Get("every"); s != "" {
		d, err := time.ParseDuration(s)
		if err != nil || d <= 0 {
			httpError(w, http.StatusBadRequest, "bad every=%q", s)
			return
		}
		every = d
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	t := time.NewTicker(every)
	defer t.Stop()
	start := time.Now()
	for epoch := 0; ; epoch++ {
		enc.Encode(telemetry.SnapshotRecord(b.reg, epoch, time.Since(start).Nanoseconds()*1000))
		if flusher != nil {
			flusher.Flush()
		}
		select {
		case <-t.C:
		case <-r.Context().Done():
			return
		case <-b.stop:
			return
		}
	}
}

func (b *Broker) handleHealthz(w http.ResponseWriter, r *http.Request) {
	b.mu.Lock()
	draining := b.draining
	workers := len(b.workers)
	jobs := len(b.jobs)
	b.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"ok": true, "draining": draining, "workers": workers, "jobs": jobs,
	})
}
