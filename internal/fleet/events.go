package fleet

import (
	"sync"
	"time"
)

// Event is one entry in a job's live event stream: every lease, retry,
// completion, worker expiry and state change, as JSON lines. The stream
// is the operator's flight recorder — `curl .../events` during a chaos
// drill shows exactly which worker died, which shards bounced and where
// they landed.
type Event struct {
	Seq     int    `json:"seq"`
	Time    string `json:"time"` // wall clock, RFC3339Nano
	Type    string `json:"type"`
	Job     string `json:"job"`
	Shard   int    `json:"shard"` // -1 for job-level events
	Worker  string `json:"worker,omitempty"`
	Attempt int    `json:"attempt,omitempty"`
	Fp      string `json:"fp,omitempty"`
	Err     string `json:"err,omitempty"`
	Detail  string `json:"detail,omitempty"`
}

// eventLog retains a job's full event history and fans live appends out
// to subscribers. Slow subscribers are not allowed to stall the broker:
// a subscriber whose buffer is full misses events (it still has the
// history snapshot; the stream is diagnostics, not a ledger).
type eventLog struct {
	// now stamps appended events. It is the broker's injected clock, not
	// the wall clock, so a journal replay under a fake clock produces a
	// byte-identical event stream — timestamps included.
	now func() time.Time

	mu     sync.Mutex
	events []Event
	subs   map[chan Event]struct{}
	closed bool
}

func newEventLog(now func() time.Time) *eventLog {
	if now == nil {
		now = time.Now
	}
	return &eventLog{now: now, subs: make(map[chan Event]struct{})}
}

// append records the event, stamping sequence and time.
func (l *eventLog) append(e Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	e.Seq = len(l.events)
	e.Time = l.now().UTC().Format(time.RFC3339Nano)
	l.events = append(l.events, e)
	for ch := range l.subs {
		select {
		case ch <- e:
		default: // slow subscriber: drop, history still has it
		}
	}
}

// subscribe returns the history so far and a channel of subsequent
// events; the channel is closed when the job reaches a terminal state.
// done=true means the log is already closed and no channel is returned.
func (l *eventLog) subscribe() (history []Event, ch chan Event, done bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	history = append([]Event(nil), l.events...)
	if l.closed {
		return history, nil, true
	}
	ch = make(chan Event, 256)
	l.subs[ch] = struct{}{}
	return history, ch, false
}

// unsubscribe detaches a live subscriber.
func (l *eventLog) unsubscribe(ch chan Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, ok := l.subs[ch]; ok {
		delete(l.subs, ch)
		close(ch)
	}
}

// close ends the stream: all subscribers' channels close after the
// final event they can drain.
func (l *eventLog) close() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	l.closed = true
	for ch := range l.subs {
		delete(l.subs, ch)
		close(ch)
	}
}
