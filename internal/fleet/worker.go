package fleet

import (
	"context"
	"fmt"
	"net/rpc"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"tetriswrite/internal/runner"
	"tetriswrite/internal/system"
)

// WorkerConfig configures one worker process.
type WorkerConfig struct {
	// Broker is the broker's RPC address (host:port).
	Broker string
	// Name is the operator-facing label; default "pcmsimw".
	Name string
	// Slots is the number of shards run concurrently; <= 0 means
	// GOMAXPROCS.
	Slots int
	// Version is the build identity reported at registration.
	Version string
	// DialRetry paces reconnection attempts when the broker is away.
	// Defaults: Base 200ms, Max 5s, Jitter 0.2.
	DialRetry runner.Backoff
	// Logf, when non-nil, receives operational log lines.
	Logf func(format string, args ...any)
}

func (c *WorkerConfig) normalize() {
	if c.Name == "" {
		c.Name = "pcmsimw"
	}
	if c.Slots <= 0 {
		c.Slots = runtime.GOMAXPROCS(0)
	}
	if c.DialRetry.Base <= 0 {
		c.DialRetry.Base = 200 * time.Millisecond
	}
	if c.DialRetry.Max <= 0 {
		c.DialRetry.Max = 5 * time.Second
	}
	if c.DialRetry.Jitter == 0 {
		c.DialRetry.Jitter = 0.2
	}
}

// Worker pulls shard leases from a broker, runs them through
// system.RunCtx under the runner's per-attempt envelope (timeout +
// panic isolation), and reports results. It survives broker restarts by
// redialing and re-registering, and honors job cancellations delivered
// on heartbeats.
type Worker struct {
	cfg WorkerConfig

	// Runs counts shards this worker actually executed (not counting
	// attempts cancelled before completion) — chaos tests use it to
	// prove resumed sweeps re-run only unfinished shards.
	Runs atomic.Int64

	kill     chan struct{}
	killOnce sync.Once

	mu      sync.Mutex
	cancels map[string]map[int]context.CancelFunc // job → shard → cancel
}

// NewWorker builds a worker; call Run to start it.
func NewWorker(cfg WorkerConfig) *Worker {
	cfg.normalize()
	return &Worker{
		cfg:     cfg,
		kill:    make(chan struct{}),
		cancels: make(map[string]map[int]context.CancelFunc),
	}
}

// Kill simulates a crash: the worker abandons its registration, its
// heartbeats and its running shards immediately, with no goodbye to the
// broker — the in-process equivalent of SIGKILL, which is exactly what
// the chaos tests need to exercise lease-expiry recovery.
func (w *Worker) Kill() {
	w.killOnce.Do(func() { close(w.kill) })
}

func (w *Worker) logf(format string, args ...any) {
	if w.cfg.Logf != nil {
		w.cfg.Logf(format, args...)
	}
}

// Run drives the worker until ctx is cancelled (graceful: running
// shards are cancelled and the broker gets a Deregister so its leases
// requeue immediately) or Kill is called (abandon everything). The
// outer loop redials and re-registers after any RPC failure, so a
// broker restart is a pause, not an outage.
func (w *Worker) Run(ctx context.Context) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	go func() {
		select {
		case <-w.kill:
			cancel()
		case <-ctx.Done():
		}
	}()
	for attempt := 1; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		client, err := rpc.Dial("tcp", w.cfg.Broker)
		if err != nil {
			w.logf("dial %s: %v (retrying)", w.cfg.Broker, err)
			if !sleepCtx(ctx, w.cfg.DialRetry.Delay(attempt)) {
				return ctx.Err()
			}
			continue
		}
		var reg RegisterReply
		err = client.Call(RPCService+".Register", &RegisterArgs{
			Name: w.cfg.Name, Version: w.cfg.Version, Slots: w.cfg.Slots,
		}, &reg)
		if err != nil {
			client.Close()
			w.logf("register: %v (retrying)", err)
			if !sleepCtx(ctx, w.cfg.DialRetry.Delay(attempt)) {
				return ctx.Err()
			}
			continue
		}
		attempt = 0 // connected: future backoffs restart from the base
		w.logf("registered as %s at %s (lease %v, heartbeat %v, %d slots)",
			reg.WorkerID, w.cfg.Broker, reg.LeaseTTL, reg.HeartbeatEvery, w.cfg.Slots)
		serveErr := w.serve(ctx, client, reg)
		if ctx.Err() != nil {
			// Graceful exit: say goodbye unless we were Killed.
			select {
			case <-w.kill:
			default:
				client.Call(RPCService+".Deregister", &DeregisterArgs{WorkerID: reg.WorkerID}, &DeregisterReply{})
				w.logf("deregistered %s", reg.WorkerID)
			}
			client.Close()
			return ctx.Err()
		}
		client.Close()
		w.logf("broker session ended: %v (reconnecting)", serveErr)
	}
}

// serve runs one registered session: a heartbeat loop plus Slots
// concurrent lease-run-report loops. It returns the first RPC failure;
// the caller redials.
func (w *Worker) serve(ctx context.Context, client *rpc.Client, reg RegisterReply) error {
	sctx, cancel := context.WithCancelCause(context.Background())
	defer cancel(nil)
	go func() { // propagate the outer cancellation into the session
		select {
		case <-ctx.Done():
			cancel(ctx.Err())
		case <-sctx.Done():
		}
	}()

	var wg sync.WaitGroup
	fail := func(err error) { cancel(err) }

	wg.Add(1)
	go func() { // heartbeats
		defer wg.Done()
		t := time.NewTicker(reg.HeartbeatEvery)
		defer t.Stop()
		for {
			select {
			case <-sctx.Done():
				return
			case <-t.C:
			}
			var hb HeartbeatReply
			if err := client.Call(RPCService+".Heartbeat", &HeartbeatArgs{WorkerID: reg.WorkerID}, &hb); err != nil {
				fail(fmt.Errorf("heartbeat: %w", err))
				return
			}
			if !hb.OK {
				w.cancelAll()
				fail(fmt.Errorf("broker forgot worker %s (lease expired or broker restart)", reg.WorkerID))
				return
			}
			for _, job := range hb.CancelJobs {
				w.cancelJob(job)
			}
		}
	}()

	for s := 0; s < w.cfg.Slots; s++ {
		wg.Add(1)
		go func() { // one lease-run-report loop per slot
			defer wg.Done()
			for {
				if sctx.Err() != nil {
					return
				}
				var next NextReply
				if err := client.Call(RPCService+".Next", &NextArgs{WorkerID: reg.WorkerID}, &next); err != nil {
					fail(fmt.Errorf("next: %w", err))
					return
				}
				if !next.Found {
					if !sleepCtx(sctx, reg.Poll) {
						return
					}
					continue
				}
				w.runAssignment(sctx, client, reg.WorkerID, next.A)
			}
		}()
	}

	wg.Wait()
	w.cancelAll()
	return context.Cause(sctx)
}

// runAssignment executes one leased shard and reports the outcome.
func (w *Worker) runAssignment(sctx context.Context, client *rpc.Client, workerID string, a Assignment) {
	shardCtx, cancel := context.WithCancel(sctx)
	w.track(a.Job, a.Shard, cancel)
	defer w.untrack(a.Job, a.Shard)
	defer cancel()

	w.logf("shard %s/%d (%s) attempt %d", a.Job, a.Shard, a.Spec, a.Attempt)
	sum, err := runner.Attempt(shardCtx, a.Spec.String(), a.Timeout,
		func(ctx context.Context) (system.Summary, error) { return RunShard(ctx, a.Spec) })
	if sctx.Err() != nil {
		// Session is gone (broker away, worker stopping, or killed):
		// no Complete. The broker's lease machinery owns recovery.
		return
	}
	args := &CompleteArgs{WorkerID: workerID, Job: a.Job, Shard: a.Shard, Attempt: a.Attempt}
	if err != nil {
		args.Err = err.Error()
	} else {
		w.Runs.Add(1)
		args.OK = true
		args.Result = ShardResult{Fp: a.Spec.Fingerprint(), Summary: sum}
	}
	if cerr := client.Call(RPCService+".Complete", args, &CompleteReply{}); cerr != nil {
		w.logf("complete %s/%d: %v", a.Job, a.Shard, cerr)
	}
}

func (w *Worker) track(job string, shard int, cancel context.CancelFunc) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.cancels[job] == nil {
		w.cancels[job] = make(map[int]context.CancelFunc)
	}
	w.cancels[job][shard] = cancel
}

func (w *Worker) untrack(job string, shard int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	delete(w.cancels[job], shard)
	if len(w.cancels[job]) == 0 {
		delete(w.cancels, job)
	}
}

// cancelJob aborts this worker's running shards of one job.
func (w *Worker) cancelJob(job string) {
	w.mu.Lock()
	cancels := make([]context.CancelFunc, 0, len(w.cancels[job]))
	for _, c := range w.cancels[job] {
		cancels = append(cancels, c)
	}
	w.mu.Unlock()
	if len(cancels) > 0 {
		w.logf("cancelling %d running shards of %s", len(cancels), job)
	}
	for _, c := range cancels {
		c()
	}
}

func (w *Worker) cancelAll() {
	w.mu.Lock()
	var cancels []context.CancelFunc
	for _, m := range w.cancels {
		for _, c := range m {
			cancels = append(cancels, c)
		}
	}
	w.mu.Unlock()
	for _, c := range cancels {
		c()
	}
}

// sleepCtx waits d or until ctx is done; reports whether the full wait
// elapsed. Timer-hygienic: the timer is stopped on early exit.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
