package fleet

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"testing"
	"time"
)

// TestJournalReplayEventLogDeterministic is the regression test for the
// event log's clock: append used to stamp events with the wall clock
// directly, bypassing the broker's injected Config.Now, so two replays
// of the same journal produced event streams differing in their Time
// fields. With the clock threaded through, two brokers resuming the
// same journal under identical fake clocks emit byte-identical event
// logs — timestamps included.
func TestJournalReplayEventLogDeterministic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal")
	var id string

	// Seed the journal: a 4-shard job with 2 shards completed, then a
	// "crash" (Close without finishing the job).
	{
		clk := newFakeClock()
		b, err := New(Config{JournalPath: path, LeaseTTL: time.Second, Now: clk.Now})
		if err != nil {
			t.Fatal(err)
		}
		spec := SweepSpec{Workloads: []string{"vips", "canneal"},
			Schemes: []string{"baseline", "tetris"}, Instr: 1000}
		if id, err = b.Submit(spec); err != nil {
			t.Fatal(err)
		}
		wid := register(t, b, "seed-worker")
		for i := 0; i < 2; i++ {
			a, found := lease(t, b, wid)
			if !found {
				t.Fatalf("no shard to lease on iteration %d", i)
			}
			completeOK(t, b, wid, a)
		}
		if err := b.Close(); err != nil {
			t.Fatal(err)
		}
	}

	replay := func() []Event {
		clk := newFakeClock()
		b, err := New(Config{JournalPath: path, LeaseTTL: time.Second, Now: clk.Now})
		if err != nil {
			t.Fatal(err)
		}
		defer b.Close()
		b.mu.Lock()
		j := b.jobs[id]
		b.mu.Unlock()
		if j == nil {
			t.Fatalf("job %s not restored from journal", id)
		}
		history, live, _ := j.events.subscribe()
		if live != nil {
			j.events.unsubscribe(live)
		}
		return history
	}

	first, second := replay(), replay()
	if len(first) == 0 {
		t.Fatal("replayed job emitted no events (want at least the resume event)")
	}
	a, err := json.Marshal(first)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(second)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Errorf("replayed event logs diverged:\nfirst:  %s\nsecond: %s", a, b)
	}
	// The stamps must come from the injected clock, not the host's.
	wantTime := newFakeClock().Now().UTC().Format(time.RFC3339Nano)
	for i, e := range first {
		if e.Time != wantTime {
			t.Errorf("event %d stamped %q, want the fake clock's %q", i, e.Time, wantTime)
		}
	}
}
