package fleet

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"time"

	"tetriswrite/internal/exp"
	"tetriswrite/internal/runner"
	"tetriswrite/internal/telemetry"
)

// Config tunes a broker. The zero value is production-usable; tests
// shrink the intervals to milliseconds.
type Config struct {
	// LeaseTTL is how long a worker may go silent before it is
	// deregistered and its leased shards requeued. Default 5s.
	LeaseTTL time.Duration
	// HeartbeatEvery is the beat interval dictated to workers.
	// Default LeaseTTL/3.
	HeartbeatEvery time.Duration
	// Poll is the idle wait dictated to workers between empty Next
	// calls. Default 200ms.
	Poll time.Duration
	// Retry paces shard re-issues after a failure or lease expiry.
	// Defaults: Base 500ms, Max 10s, Jitter 0.2. The per-shard seed is
	// derived from the shard fingerprint, so schedules are reproducible
	// yet decorrelated across the shards a dead worker returns at once.
	Retry runner.Backoff
	// JournalPath enables the durable shard-completion journal (and
	// with it crash resume and the cross-restart response cache).
	// Empty disables journaling: the broker is then memory-only.
	JournalPath string
	// Registry receives the fleet.* metrics; nil creates a private one.
	Registry *telemetry.Registry
	// Logf, when non-nil, receives operational log lines.
	Logf func(format string, args ...any)
	// Now is the clock; nil means time.Now. Tests inject a fake to
	// exercise lease expiry without sleeping.
	Now func() time.Time
}

func (c *Config) normalize() {
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 5 * time.Second
	}
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = c.LeaseTTL / 3
	}
	if c.Poll <= 0 {
		c.Poll = 200 * time.Millisecond
	}
	if c.Retry.Base <= 0 {
		c.Retry.Base = 500 * time.Millisecond
	}
	if c.Retry.Max <= 0 {
		c.Retry.Max = 10 * time.Second
	}
	if c.Retry.Jitter == 0 {
		c.Retry.Jitter = 0.2
	}
	if c.Now == nil {
		c.Now = time.Now
	}
}

// ErrDraining rejects submissions while the broker drains for shutdown.
var ErrDraining = errors.New("fleet: broker is draining, not accepting jobs")

// ErrUnknownWorker tells a worker its registration is gone (lease
// expiry or broker restart); the worker re-registers and starts over.
var ErrUnknownWorker = errors.New("fleet: unknown worker, re-register")

type jobState string

const (
	JobRunning   jobState = "running"
	JobCompleted jobState = "completed"
	JobFailed    jobState = "failed"
	JobCancelled jobState = "cancelled"
)

type shardState int

const (
	shardPending shardState = iota
	shardLeased
	shardDone
	shardFailed
)

type shard struct {
	idx        int
	spec       ShardSpec
	fp         string
	state      shardState
	attempts   int // leases granted so far (1-based attempt numbers)
	worker     string
	eligibleAt time.Time
	result     ShardResult
	lastErr    string
}

type job struct {
	id       string
	spec     SweepSpec
	shards   []*shard
	state    jobState
	err      string
	created  time.Time
	deadline time.Time // zero = none
	done     chan struct{}
	events   *eventLog
	restored int // shards satisfied from the journal at resume
	cached   int // shards satisfied from the fingerprint cache
	retried  int // extra attempts consumed by failures/expiries
}

type shardKey struct {
	job string
	idx int
}

type workerState struct {
	id       string
	name     string
	version  string
	slots    int
	lastBeat time.Time
	leased   map[shardKey]struct{}
}

type metrics struct {
	jobsSubmitted, jobsCompleted, jobsFailed, jobsCancelled *telemetry.Counter
	shardsDispatched, shardsCompleted, shardsRetried        *telemetry.Counter
	shardsFailed, shardsCached, shardsRestored              *telemetry.Counter
	workersRegistered, workersExpired, determinismViol      *telemetry.Counter
}

// Broker owns the job table, the worker lease table and the journal.
// All public methods are goroutine-safe.
type Broker struct {
	cfg     Config
	reg     *telemetry.Registry
	journal *Journal
	m       metrics

	mu         sync.Mutex
	jobs       map[string]*job
	order      []string
	workers    map[string]*workerState
	cache      map[string]ShardResult // fingerprint → completed result
	nextJob    int
	nextWorker int
	draining   bool

	stop        chan struct{}
	stopOnce    sync.Once
	janitorDone chan struct{}
}

// New builds a broker, replays its journal (when configured) and starts
// the background janitor that expires leases and enforces deadlines.
func New(cfg Config) (*Broker, error) {
	cfg.normalize()
	reg := cfg.Registry
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	b := &Broker{
		cfg:         cfg,
		reg:         reg,
		jobs:        make(map[string]*job),
		workers:     make(map[string]*workerState),
		cache:       make(map[string]ShardResult),
		stop:        make(chan struct{}),
		janitorDone: make(chan struct{}),
	}
	b.m = metrics{
		jobsSubmitted:     reg.Counter("fleet.jobs_submitted", "sweep jobs accepted"),
		jobsCompleted:     reg.Counter("fleet.jobs_completed", "sweep jobs finished with every shard done"),
		jobsFailed:        reg.Counter("fleet.jobs_failed", "sweep jobs failed (retries exhausted or deadline)"),
		jobsCancelled:     reg.Counter("fleet.jobs_cancelled", "sweep jobs cancelled by clients"),
		shardsDispatched:  reg.Counter("fleet.shards_dispatched", "shard leases granted to workers"),
		shardsCompleted:   reg.Counter("fleet.shards_completed", "shards completed by workers"),
		shardsRetried:     reg.Counter("fleet.shards_retried", "shard attempts requeued after failure or lease expiry"),
		shardsFailed:      reg.Counter("fleet.shards_failed", "shards that exhausted their retry budget"),
		shardsCached:      reg.Counter("fleet.shards_cached", "shards satisfied from the fingerprint cache"),
		shardsRestored:    reg.Counter("fleet.shards_restored", "shards restored from the journal at resume"),
		workersRegistered: reg.Counter("fleet.workers_registered", "worker registrations accepted"),
		workersExpired:    reg.Counter("fleet.workers_expired", "workers deregistered on missed heartbeats"),
		determinismViol:   reg.Counter("fleet.determinism_violations", "duplicated shard completions that disagreed byte-wise"),
	}
	reg.GaugeFunc("fleet.workers_live", "currently registered workers", func() float64 {
		b.mu.Lock()
		defer b.mu.Unlock()
		return float64(len(b.workers))
	})
	reg.GaugeFunc("fleet.jobs_running", "jobs not yet terminal", func() float64 {
		b.mu.Lock()
		defer b.mu.Unlock()
		n := 0
		for _, j := range b.jobs {
			if j.state == JobRunning {
				n++
			}
		}
		return float64(n)
	})
	reg.GaugeFunc("fleet.shards_leased", "shards currently leased to workers", func() float64 {
		b.mu.Lock()
		defer b.mu.Unlock()
		n := 0
		for _, w := range b.workers {
			n += len(w.leased)
		}
		return float64(n)
	})

	if cfg.JournalPath != "" {
		j, recs, err := OpenJournal(cfg.JournalPath)
		if err != nil {
			return nil, err
		}
		b.journal = j
		b.mu.Lock()
		b.replayLocked(recs)
		b.mu.Unlock()
	}

	go b.janitor()
	return b, nil
}

func (b *Broker) logf(format string, args ...any) {
	if b.cfg.Logf != nil {
		b.cfg.Logf(format, args...)
	}
}

// Registry returns the registry carrying the fleet.* metrics.
func (b *Broker) Registry() *telemetry.Registry { return b.reg }

// JournalPath returns the journal file path ("" when disabled).
func (b *Broker) JournalPath() string { return b.journal.Path() }

// ---- job lifecycle ----------------------------------------------------

// Submit normalizes and accepts a sweep job, returning its ID. Shards
// whose fingerprints are already in the completed-shard cache are
// satisfied immediately without touching a worker.
func (b *Broker) Submit(spec SweepSpec) (string, error) {
	if err := spec.Normalize(); err != nil {
		return "", err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.draining {
		return "", ErrDraining
	}
	id := fmt.Sprintf("j%04d", b.nextJob)
	b.nextJob++
	j := b.newJobLocked(id, spec)
	b.jobs[id] = j
	b.order = append(b.order, id)
	b.appendJournalLocked(Record{Type: "job", Job: id, Spec: &spec})
	b.m.jobsSubmitted.Inc()
	j.events.append(Event{Type: "submitted", Job: id, Shard: -1,
		Detail: fmt.Sprintf("%d shards", len(j.shards))})
	b.logf("job %s submitted: %d shards across %d seeds", id, len(j.shards), len(spec.Seeds))
	b.applyCacheLocked(j)
	b.checkJobDoneLocked(j)
	return id, nil
}

func (b *Broker) newJobLocked(id string, spec SweepSpec) *job {
	now := b.cfg.Now()
	j := &job{
		id:      id,
		spec:    spec,
		state:   JobRunning,
		created: now,
		done:    make(chan struct{}),
		events:  newEventLog(b.cfg.Now),
	}
	if d := spec.deadline(); d > 0 {
		j.deadline = now.Add(d)
	}
	for i, sp := range spec.Shards() {
		j.shards = append(j.shards, &shard{idx: i, spec: sp, fp: sp.Fingerprint()})
	}
	return j
}

// applyCacheLocked completes every pending shard whose fingerprint the
// cache already answers — the response-cache path for resubmitted or
// overlapping sweeps.
func (b *Broker) applyCacheLocked(j *job) {
	if j.state != JobRunning {
		return
	}
	for _, sh := range j.shards {
		if sh.state != shardPending {
			continue
		}
		if res, ok := b.cache[sh.fp]; ok {
			j.cached++
			b.m.shardsCached.Inc()
			b.finishShardLocked(j, sh, res, "", 0, "cached")
		}
	}
}

// Cancel moves a running job to cancelled; its running shards are
// cancelled on the owning workers at their next heartbeat.
func (b *Broker) Cancel(id string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	j, ok := b.jobs[id]
	if !ok {
		return fmt.Errorf("fleet: unknown job %s", id)
	}
	if j.state != JobRunning {
		return nil // already terminal: cancelling is idempotent
	}
	j.state = JobCancelled
	b.appendJournalLocked(Record{Type: "cancel", Job: id})
	b.m.jobsCancelled.Inc()
	j.events.append(Event{Type: "cancelled", Job: id, Shard: -1})
	b.logf("job %s cancelled", id)
	close(j.done)
	j.events.close()
	return nil
}

// Wait blocks until the job is terminal or ctx is cancelled.
func (b *Broker) Wait(ctx context.Context, id string) error {
	b.mu.Lock()
	j, ok := b.jobs[id]
	b.mu.Unlock()
	if !ok {
		return fmt.Errorf("fleet: unknown job %s", id)
	}
	select {
	case <-j.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// finishShardLocked marks one shard done with its result and releases
// any lease bookkeeping. via labels the event ("worker", "cached",
// "restored").
func (b *Broker) finishShardLocked(j *job, sh *shard, res ShardResult, workerID string, attempt int, via string) {
	if sh.state == shardLeased && sh.worker != "" {
		if w, ok := b.workers[sh.worker]; ok {
			delete(w.leased, shardKey{j.id, sh.idx})
		}
	}
	sh.state = shardDone
	sh.result = res
	sh.worker = ""
	b.cache[sh.fp] = res
	b.appendJournalLocked(Record{Type: "shard", Job: j.id, Shard: sh.idx, Attempt: attempt, Result: &res})
	j.events.append(Event{Type: via, Job: j.id, Shard: sh.idx, Worker: workerID,
		Attempt: attempt, Fp: sh.fp, Detail: sh.spec.String()})
	b.checkJobDoneLocked(j)
}

// retryShardLocked requeues a failed or expired shard attempt, or fails
// the job when the retry budget is gone.
func (b *Broker) retryShardLocked(j *job, sh *shard, errMsg, kind string) {
	if w, ok := b.workers[sh.worker]; ok {
		delete(w.leased, shardKey{j.id, sh.idx})
	}
	sh.worker = ""
	sh.lastErr = errMsg
	if j.state != JobRunning {
		sh.state = shardPending
		return
	}
	if sh.attempts > j.spec.Retries {
		sh.state = shardFailed
		b.m.shardsFailed.Inc()
		j.events.append(Event{Type: "shard_failed", Job: j.id, Shard: sh.idx,
			Attempt: sh.attempts, Fp: sh.fp, Err: errMsg})
		b.failJobLocked(j, fmt.Sprintf("shard %d (%s) failed after %d attempts: %s",
			sh.idx, sh.spec, sh.attempts, errMsg))
		return
	}
	bo := b.cfg.Retry
	bo.Seed = fpSeed(sh.fp)
	delay := bo.Delay(sh.attempts)
	sh.state = shardPending
	sh.eligibleAt = b.cfg.Now().Add(delay)
	j.retried++
	b.m.shardsRetried.Inc()
	j.events.append(Event{Type: kind, Job: j.id, Shard: sh.idx, Attempt: sh.attempts,
		Fp: sh.fp, Err: errMsg, Detail: fmt.Sprintf("retry in %v", delay.Round(time.Millisecond))})
	b.logf("job %s shard %d (%s): %s (attempt %d, retry in %v)",
		j.id, sh.idx, sh.spec, kind, sh.attempts, delay.Round(time.Millisecond))
}

func fpSeed(fp string) uint64 {
	v, _ := strconv.ParseUint(fp, 16, 64)
	return v
}

func (b *Broker) failJobLocked(j *job, msg string) {
	if j.state != JobRunning {
		return
	}
	j.state = JobFailed
	j.err = msg
	b.appendJournalLocked(Record{Type: "done", Job: j.id, State: string(JobFailed), Err: msg})
	b.m.jobsFailed.Inc()
	j.events.append(Event{Type: "failed", Job: j.id, Shard: -1, Err: msg})
	b.logf("job %s failed: %s", j.id, msg)
	close(j.done)
	j.events.close()
}

func (b *Broker) checkJobDoneLocked(j *job) {
	if j.state != JobRunning {
		return
	}
	for _, sh := range j.shards {
		if sh.state != shardDone {
			return
		}
	}
	j.state = JobCompleted
	b.appendJournalLocked(Record{Type: "done", Job: j.id, State: string(JobCompleted)})
	b.m.jobsCompleted.Inc()
	j.events.append(Event{Type: "completed", Job: j.id, Shard: -1})
	b.logf("job %s completed (%d shards: %d cached, %d restored, %d retried attempts)",
		j.id, len(j.shards), j.cached, j.restored, j.retried)
	close(j.done)
	j.events.close()
}

func (b *Broker) appendJournalLocked(rec Record) {
	if err := b.journal.Append(rec); err != nil {
		// Journal loss degrades durability, not correctness; surface it
		// loudly and carry on serving from memory.
		b.logf("journal append failed (type=%s job=%s): %v", rec.Type, rec.Job, err)
	}
}

// ---- worker RPC -------------------------------------------------------

// RPC returns the receiver to register with an rpc.Server under
// RPCService.
func (b *Broker) RPC() *RPC { return &RPC{b: b} }

// RPC is the net/rpc receiver fronting a Broker; its methods are the
// wire protocol and hold no state of their own.
type RPC struct{ b *Broker }

// Register admits a worker and dictates its cadence.
func (r *RPC) Register(args *RegisterArgs, reply *RegisterReply) error {
	b := r.b
	b.mu.Lock()
	defer b.mu.Unlock()
	id := fmt.Sprintf("w%03d", b.nextWorker)
	b.nextWorker++
	slots := args.Slots
	if slots <= 0 {
		slots = 1
	}
	b.workers[id] = &workerState{
		id: id, name: args.Name, version: args.Version, slots: slots,
		lastBeat: b.cfg.Now(), leased: make(map[shardKey]struct{}),
	}
	b.m.workersRegistered.Inc()
	reply.WorkerID = id
	reply.LeaseTTL = b.cfg.LeaseTTL
	reply.HeartbeatEvery = b.cfg.HeartbeatEvery
	reply.Poll = b.cfg.Poll
	b.logf("worker %s registered: %s (%s, %d slots)", id, args.Name, args.Version, slots)
	return nil
}

// Heartbeat renews the worker's lease and reports jobs to stop running.
func (r *RPC) Heartbeat(args *HeartbeatArgs, reply *HeartbeatReply) error {
	b := r.b
	b.mu.Lock()
	defer b.mu.Unlock()
	w, ok := b.workers[args.WorkerID]
	if !ok {
		reply.OK = false
		return nil
	}
	w.lastBeat = b.cfg.Now()
	reply.OK = true
	seen := map[string]bool{}
	for k := range w.leased {
		j, ok := b.jobs[k.job]
		if !ok || j.state == JobRunning {
			continue
		}
		if !seen[k.job] {
			seen[k.job] = true
			reply.CancelJobs = append(reply.CancelJobs, k.job)
		}
		delete(w.leased, k)
	}
	return nil
}

// Next leases one eligible shard to the worker, scanning jobs in
// submission order and shards in grid order.
func (r *RPC) Next(args *NextArgs, reply *NextReply) error {
	b := r.b
	b.mu.Lock()
	defer b.mu.Unlock()
	w, ok := b.workers[args.WorkerID]
	if !ok {
		return ErrUnknownWorker
	}
	now := b.cfg.Now()
	w.lastBeat = now
	for _, id := range b.order {
		j := b.jobs[id]
		if j.state != JobRunning {
			continue
		}
		for _, sh := range j.shards {
			if sh.state != shardPending || sh.eligibleAt.After(now) {
				continue
			}
			sh.state = shardLeased
			sh.worker = w.id
			sh.attempts++
			w.leased[shardKey{j.id, sh.idx}] = struct{}{}
			b.m.shardsDispatched.Inc()
			j.events.append(Event{Type: "lease", Job: j.id, Shard: sh.idx,
				Worker: w.id, Attempt: sh.attempts, Fp: sh.fp, Detail: sh.spec.String()})
			reply.Found = true
			reply.A = Assignment{
				Job: j.id, Shard: sh.idx, Attempt: sh.attempts,
				Timeout: j.spec.shardTimeout(), Spec: sh.spec,
			}
			return nil
		}
	}
	return nil
}

// Complete records one attempt's outcome. Reports for unknown jobs or
// already-settled shards are tolerated — with settled shards
// cross-checked for byte-identity, because two completions of the same
// fingerprint disagreeing means the determinism contract broke.
func (r *RPC) Complete(args *CompleteArgs, reply *CompleteReply) error {
	b := r.b
	b.mu.Lock()
	defer b.mu.Unlock()
	if w, ok := b.workers[args.WorkerID]; ok {
		w.lastBeat = b.cfg.Now()
		delete(w.leased, shardKey{args.Job, args.Shard})
	}
	j, ok := b.jobs[args.Job]
	if !ok || args.Shard < 0 || args.Shard >= len(j.shards) {
		return nil // stale report for a job this broker no longer has
	}
	sh := j.shards[args.Shard]
	if !args.OK {
		if sh.state == shardLeased {
			b.retryShardLocked(j, sh, args.Err, "retry")
		}
		return nil
	}
	if args.Result.Fp != sh.fp {
		b.logf("job %s shard %d: completion fingerprint %s != expected %s; dropped",
			j.id, sh.idx, args.Result.Fp, sh.fp)
		return nil
	}
	if sh.state == shardDone {
		if args.Result != sh.result {
			b.m.determinismViol.Inc()
			msg := fmt.Sprintf("determinism violation: shard %d (%s) fp %s: duplicate completion from %s disagrees with recorded result",
				sh.idx, sh.spec, sh.fp, args.WorkerID)
			j.events.append(Event{Type: "determinism_violation", Job: j.id,
				Shard: sh.idx, Worker: args.WorkerID, Fp: sh.fp, Err: msg})
			b.logf("%s", msg)
			b.failJobLocked(j, msg)
		}
		return nil
	}
	b.cache[sh.fp] = args.Result
	if j.state != JobRunning {
		return nil // result cached; the job itself is already settled
	}
	b.m.shardsCompleted.Inc()
	b.finishShardLocked(j, sh, args.Result, args.WorkerID, args.Attempt, "complete")
	return nil
}

// Deregister is the clean goodbye: leased shards requeue immediately
// and without consuming a retry attempt, since nothing failed.
func (r *RPC) Deregister(args *DeregisterArgs, reply *DeregisterReply) error {
	b := r.b
	b.mu.Lock()
	defer b.mu.Unlock()
	w, ok := b.workers[args.WorkerID]
	if !ok {
		return nil
	}
	for k := range w.leased {
		if j, ok := b.jobs[k.job]; ok {
			sh := j.shards[k.idx]
			if sh.state == shardLeased {
				sh.state = shardPending
				sh.worker = ""
				sh.attempts-- // the lease never ran to failure; hand the attempt back
				sh.eligibleAt = time.Time{}
				j.events.append(Event{Type: "requeued", Job: j.id, Shard: sh.idx,
					Worker: w.id, Fp: sh.fp, Detail: "worker deregistered"})
			}
		}
	}
	delete(b.workers, args.WorkerID)
	b.logf("worker %s deregistered (%s)", w.id, w.name)
	return nil
}

// ---- janitor ----------------------------------------------------------

func (b *Broker) janitor() {
	defer close(b.janitorDone)
	period := b.cfg.LeaseTTL / 4
	if period < 10*time.Millisecond {
		period = 10 * time.Millisecond
	}
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-b.stop:
			return
		case <-t.C:
			b.mu.Lock()
			b.sweepLocked(b.cfg.Now())
			b.mu.Unlock()
		}
	}
}

// sweepLocked expires silent workers (requeueing their shards as failed
// attempts) and enforces job deadlines.
func (b *Broker) sweepLocked(now time.Time) {
	for id, w := range b.workers {
		if now.Sub(w.lastBeat) <= b.cfg.LeaseTTL {
			continue
		}
		b.m.workersExpired.Inc()
		b.logf("worker %s (%s) lease expired after %v silence; requeueing %d shards",
			id, w.name, now.Sub(w.lastBeat).Round(time.Millisecond), len(w.leased))
		for k := range w.leased {
			if j, ok := b.jobs[k.job]; ok {
				sh := j.shards[k.idx]
				if sh.state == shardLeased && sh.worker == id {
					j.events.append(Event{Type: "worker_expired", Job: j.id,
						Shard: sh.idx, Worker: id, Fp: sh.fp})
					b.retryShardLocked(j, sh, fmt.Sprintf("worker %s lease expired", id), "retry")
				}
			}
		}
		delete(b.workers, id)
	}
	for _, id := range b.order {
		j := b.jobs[id]
		if j.state == JobRunning && !j.deadline.IsZero() && now.After(j.deadline) {
			b.failJobLocked(j, fmt.Sprintf("job deadline %s exceeded", j.spec.Deadline))
		}
	}
}

// ---- resume -----------------------------------------------------------

// replayLocked rebuilds broker state from journal records.
func (b *Broker) replayLocked(recs []Record) {
	for _, rec := range recs {
		switch rec.Type {
		case "job":
			if rec.Spec == nil {
				continue
			}
			spec := *rec.Spec
			if err := spec.Normalize(); err != nil {
				b.logf("journal: job %s spec no longer valid, dropped: %v", rec.Job, err)
				continue
			}
			j := b.newJobLocked(rec.Job, spec)
			b.jobs[rec.Job] = j
			b.order = append(b.order, rec.Job)
			if n, err := strconv.Atoi(rec.Job[1:]); err == nil && n >= b.nextJob {
				b.nextJob = n + 1
			}
		case "shard":
			if rec.Result == nil {
				continue
			}
			b.cache[rec.Result.Fp] = *rec.Result
			j, ok := b.jobs[rec.Job]
			if !ok || rec.Shard < 0 || rec.Shard >= len(j.shards) {
				continue
			}
			sh := j.shards[rec.Shard]
			if sh.fp != rec.Result.Fp || sh.state == shardDone {
				continue
			}
			sh.state = shardDone
			sh.result = *rec.Result
			j.restored++
		case "done":
			if j, ok := b.jobs[rec.Job]; ok && j.state == JobRunning {
				j.state = jobState(rec.State)
				j.err = rec.Err
				close(j.done)
				j.events.close()
			}
		case "cancel":
			if j, ok := b.jobs[rec.Job]; ok && j.state == JobRunning {
				j.state = JobCancelled
				close(j.done)
				j.events.close()
			}
		}
	}
	// Resumed running jobs: count restorations, fill remaining shards
	// from the cache (results journaled by other jobs still count), and
	// finish jobs whose last shard landed just before the crash.
	for _, id := range b.order {
		j := b.jobs[id]
		if j.state != JobRunning {
			continue
		}
		if j.restored > 0 {
			b.m.shardsRestored.Add(int64(j.restored))
			j.events.append(Event{Type: "resumed", Job: j.id, Shard: -1,
				Detail: fmt.Sprintf("%d of %d shards restored from journal", j.restored, len(j.shards))})
			b.logf("job %s resumed: %d of %d shards restored from journal", j.id, j.restored, len(j.shards))
		}
		b.applyCacheLocked(j)
		b.checkJobDoneLocked(j)
	}
}

// ---- status, results, shutdown ---------------------------------------

// ShardCounts summarizes a job's shard states.
type ShardCounts struct {
	Total    int `json:"total"`
	Pending  int `json:"pending"`
	Leased   int `json:"leased"`
	Done     int `json:"done"`
	Failed   int `json:"failed"`
	Cached   int `json:"cached"`
	Restored int `json:"restored"`
	Retried  int `json:"retried"`
}

// JobStatus is the client-facing view of one job.
type JobStatus struct {
	ID      string      `json:"id"`
	State   string      `json:"state"`
	Created string      `json:"created"`
	Error   string      `json:"error,omitempty"`
	Spec    SweepSpec   `json:"spec"`
	Shards  ShardCounts `json:"shards"`
}

func (b *Broker) statusLocked(j *job) JobStatus {
	st := JobStatus{
		ID: j.id, State: string(j.state), Error: j.err, Spec: j.spec,
		Created: j.created.UTC().Format(time.RFC3339Nano),
	}
	st.Shards.Total = len(j.shards)
	st.Shards.Cached = j.cached
	st.Shards.Restored = j.restored
	st.Shards.Retried = j.retried
	for _, sh := range j.shards {
		switch sh.state {
		case shardPending:
			st.Shards.Pending++
		case shardLeased:
			st.Shards.Leased++
		case shardDone:
			st.Shards.Done++
		case shardFailed:
			st.Shards.Failed++
		}
	}
	return st
}

// Status reports one job.
func (b *Broker) Status(id string) (JobStatus, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	j, ok := b.jobs[id]
	if !ok {
		return JobStatus{}, false
	}
	return b.statusLocked(j), true
}

// Jobs lists every job in submission order.
func (b *Broker) Jobs() []JobStatus {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]JobStatus, 0, len(b.order))
	for _, id := range b.order {
		out = append(out, b.statusLocked(b.jobs[id]))
	}
	return out
}

// WorkerStatus is the operator-facing view of one registered worker.
type WorkerStatus struct {
	ID       string `json:"id"`
	Name     string `json:"name"`
	Version  string `json:"version"`
	Slots    int    `json:"slots"`
	LastBeat string `json:"last_beat"`
	Leased   int    `json:"leased"`
}

// Workers lists the registered workers sorted by ID.
func (b *Broker) Workers() []WorkerStatus {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]WorkerStatus, 0, len(b.workers))
	for _, id := range sortedKeys(b.workers) {
		w := b.workers[id]
		out = append(out, WorkerStatus{
			ID: w.id, Name: w.name, Version: w.version, Slots: w.slots,
			LastBeat: w.lastBeat.UTC().Format(time.RFC3339Nano), Leased: len(w.leased),
		})
	}
	return out
}

func sortedKeys(m map[string]*workerState) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// WriteResult renders the job's requested figure tables — exactly the
// bytes a serial tetrisbench run of the same grid would print. Partial
// jobs (cancelled, failed, or still running) render only with
// partial=true, zero-filled on the missing cells.
func (b *Broker) WriteResult(w io.Writer, id string, partial bool) error {
	b.mu.Lock()
	j, ok := b.jobs[id]
	if !ok {
		b.mu.Unlock()
		return fmt.Errorf("fleet: unknown job %s", id)
	}
	if j.state != JobCompleted && !partial {
		b.mu.Unlock()
		return fmt.Errorf("fleet: job %s is %s, not completed (pass partial to render anyway)", id, j.state)
	}
	// Snapshot the completed cells so rendering happens off-lock.
	spec := j.spec
	type cell struct {
		seed     int64
		workload string
		scheme   string
		res      ShardResult
	}
	var cells []cell
	for _, sh := range j.shards {
		if sh.state == shardDone {
			cells = append(cells, cell{sh.spec.Seed, sh.spec.Workload, sh.spec.Scheme, sh.result})
		}
	}
	b.mu.Unlock()

	profiles, err := exp.ResolveProfiles(spec.Workloads)
	if err != nil {
		return err
	}
	schemes, err := exp.ResolveSchemes(spec.Schemes)
	if err != nil {
		return err
	}
	for _, seed := range spec.Seeds {
		if len(spec.Seeds) > 1 {
			fmt.Fprintf(w, "== seed %d ==\n\n", seed)
		}
		opt := exp.Options{InstrBudget: spec.Instr, Cores: spec.Cores, Seed: seed}
		fr := exp.NewFullResults(opt, profiles, schemes)
		for _, c := range cells {
			if c.seed != seed {
				continue
			}
			if wi, si, ok := fr.CellIndex(c.workload, c.scheme); ok {
				fr.SetCell(wi, si, c.res.Summary.Result(), nil)
			}
		}
		for _, fig := range spec.Figs {
			switch fig {
			case 11:
				fmt.Fprintln(w, fr.Figure11())
			case 12:
				fmt.Fprintln(w, fr.Figure12())
			case 13:
				fmt.Fprintln(w, fr.Figure13())
			case 14:
				fmt.Fprintln(w, fr.Figure14())
			}
		}
		if spec.Energy {
			fmt.Fprintln(w, fr.EnergyTable())
		}
	}
	return nil
}

// Drain stops accepting new jobs and waits until every accepted job is
// terminal or ctx expires — the SIGTERM path. Workers keep receiving
// leases for in-flight jobs throughout; the journal makes whatever
// remains resumable by the next broker.
func (b *Broker) Drain(ctx context.Context) error {
	b.mu.Lock()
	b.draining = true
	b.mu.Unlock()
	t := time.NewTicker(50 * time.Millisecond)
	defer t.Stop()
	for {
		b.mu.Lock()
		busy := 0
		for _, j := range b.jobs {
			if j.state == JobRunning {
				busy++
			}
		}
		b.mu.Unlock()
		if busy == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("fleet: drain interrupted with %d jobs still running (journal has the rest): %w", busy, ctx.Err())
		case <-t.C:
		}
	}
}

// Close stops the janitor and closes the journal. In-memory job state
// remains readable; RPC and HTTP serving are the caller's to stop.
func (b *Broker) Close() error {
	b.stopOnce.Do(func() { close(b.stop) })
	<-b.janitorDone
	return b.journal.Close()
}
