package fleet

import (
	"bufio"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
)

// The journal is the broker's only durable state: an append-only
// JSON-lines file recording job submissions, shard completions and job
// terminations. A restarted broker replays it to rebuild every job —
// terminal jobs stay queryable (their results still render), running
// jobs resume with exactly their unfinished shards re-issued — and the
// union of all journaled shard results seeds the fingerprint cache, so
// the journal doubles as the response cache across restarts.
//
// Records are self-describing and order matters only per job. A crash
// mid-append can truncate the final line; replay tolerates exactly one
// trailing partial record (anything worse is reported as corruption).

// Record is one journal entry. Type selects which fields are set:
//
//	"job"    — Job, Spec: a submission, spec pre-normalized
//	"shard"  — Job, Shard, Attempt, Result: a completion
//	"done"   — Job, State ("completed"/"failed"), Err: a termination
//	"cancel" — Job: a client cancellation
type Record struct {
	V       int          `json:"v"`
	Type    string       `json:"type"`
	Job     string       `json:"job,omitempty"`
	State   string       `json:"state,omitempty"`
	Err     string       `json:"err,omitempty"`
	Spec    *SweepSpec   `json:"spec,omitempty"`
	Shard   int          `json:"shard,omitempty"`
	Attempt int          `json:"attempt,omitempty"`
	Result  *ShardResult `json:"result,omitempty"`

	// CRC is the IEEE CRC32 of the record serialized with CRC zero,
	// stamped by Append and verified on replay. 0 means unchecked — the
	// pre-checksum journal format, still accepted. A record whose stored
	// checksum does not match is corruption: fatal mid-file, tolerated as
	// a torn append only on the final line.
	CRC uint32 `json:"crc,omitempty"`
}

// Checksum returns the IEEE CRC32 an intact record must carry: the
// checksum of the record serialized with the CRC field zeroed.
func (r Record) Checksum() (uint32, error) {
	r.CRC = 0
	b, err := json.Marshal(r)
	if err != nil {
		return 0, err
	}
	return crc32.ChecksumIEEE(b), nil
}

// verifyCRC checks a replayed record's stored checksum. Records without
// one (CRC 0) predate the checksummed format and pass unverified.
func verifyCRC(rec Record) error {
	if rec.CRC == 0 {
		return nil
	}
	want, err := rec.Checksum()
	if err != nil {
		return err
	}
	if rec.CRC != want {
		return fmt.Errorf("checksum mismatch (stored %08x, computed %08x)", rec.CRC, want)
	}
	return nil
}

// Journal appends records durably: every Append is written and synced
// before it returns, so an acknowledged shard completion survives a
// broker kill at any instant.
type Journal struct {
	mu   sync.Mutex
	f    *os.File
	path string
}

// OpenJournal replays the journal at path (creating it if absent) and
// returns the journal opened for appending plus the replayed records.
func OpenJournal(path string) (*Journal, []Record, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, err
	}
	recs, err := readRecords(f)
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("fleet: journal %s: %w", path, err)
	}
	// Append from the end of the last complete record: a truncated
	// trailing line (crash mid-append) is overwritten by the next one.
	if _, err := f.Seek(tailOffset(recs, f), io.SeekStart); err != nil {
		f.Close()
		return nil, nil, err
	}
	return &Journal{f: f, path: path}, recs, nil
}

// tailOffset returns the byte offset just past the last complete
// record, re-serializing is not reliable (whitespace), so re-scan.
func tailOffset(recs []Record, f *os.File) int64 {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return 0
	}
	var off int64
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	n := 0
	for n < len(recs) && sc.Scan() {
		off += int64(len(sc.Bytes())) + 1
		if len(sc.Bytes()) > 0 {
			n++
		}
	}
	return off
}

// readRecords parses and checksum-verifies every complete record; a
// single malformed or checksum-failing final line is treated as a torn
// append and dropped, but a corrupt record with anything after it is
// fatal, reported with its 1-based record number.
func readRecords(r io.Reader) ([]Record, error) {
	var recs []Record
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	n := 0 // 1-based count of non-empty lines
	var torn error
	for sc.Scan() {
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		n++
		if torn != nil {
			return nil, fmt.Errorf("record %d follows corrupt record: %w", n, torn)
		}
		var rec Record
		if err := json.Unmarshal(b, &rec); err != nil {
			// Possibly the torn final append; only acceptable if
			// nothing follows.
			torn = fmt.Errorf("record %d: %w", n, err)
			continue
		}
		if err := verifyCRC(rec); err != nil {
			torn = fmt.Errorf("record %d: %w", n, err)
			continue
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return recs, nil
}

// Append stamps the record's checksum, writes it and syncs it to
// stable storage.
func (j *Journal) Append(rec Record) error {
	if j == nil {
		return nil
	}
	rec.V = 1
	var err error
	if rec.CRC, err = rec.Checksum(); err != nil {
		return err
	}
	b, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(b); err != nil {
		return err
	}
	return j.f.Sync()
}

// Path returns the journal's file path.
func (j *Journal) Path() string {
	if j == nil {
		return ""
	}
	return j.path
}

// Close closes the underlying file.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}
