package fleet

import (
	"time"

	"tetriswrite/internal/system"
)

// The worker-facing protocol, carried over net/rpc with gob encoding.
// The flow is pull-based: workers register, then poll Next for leases
// and report with Complete, heartbeating in between. Pull keeps the
// broker free of per-worker connection state — a worker that vanishes
// simply stops calling, and its lease expiry does the cleanup — and it
// means a worker behind NAT or a flaky link needs no listening socket.
//
// Every type here is a flat struct of exported basic fields so gob
// round-trips it exactly; time.Durations are broker-dictated intervals,
// letting operators retune lease cadence without touching workers.

// RPCService is the name the broker's RPC receiver registers under.
const RPCService = "Fleet"

// RegisterArgs announces a worker to the broker.
type RegisterArgs struct {
	Name    string // operator-facing label (hostname by default)
	Version string // build identity; logged for parity auditing
	Slots   int    // concurrent shards this worker will run
}

// RegisterReply grants the worker its identity and cadence.
type RegisterReply struct {
	WorkerID       string
	LeaseTTL       time.Duration // miss heartbeats this long and the lease is gone
	HeartbeatEvery time.Duration // beat interval the broker expects
	Poll           time.Duration // idle wait between Next calls that found nothing
}

// HeartbeatArgs renews a worker's lease.
type HeartbeatArgs struct {
	WorkerID string
}

// HeartbeatReply acknowledges the beat. OK=false means the broker no
// longer knows this worker (lease already expired, or the broker
// restarted): the worker must abandon its running shards and
// re-register. CancelJobs lists jobs whose shards the worker should
// stop running — cancelled, failed or deadline-exceeded jobs.
type HeartbeatReply struct {
	OK         bool
	CancelJobs []string
}

// NextArgs asks for one shard lease.
type NextArgs struct {
	WorkerID string
}

// NextReply carries at most one assignment.
type NextReply struct {
	Found bool
	A     Assignment
}

// Assignment is one leased shard.
type Assignment struct {
	Job     string
	Shard   int           // index into the job's shard list
	Attempt int           // 1-based attempt number, for logs and events
	Timeout time.Duration // per-attempt wall-clock bound (0 = none)
	Spec    ShardSpec
}

// CompleteArgs reports one attempt's outcome. OK with a Result on
// success; otherwise Err holds the failure. A Complete from a worker
// the broker has expired is still accepted when the result is valid —
// deterministic work is deterministic work — and cross-checked against
// any duplicate.
type CompleteArgs struct {
	WorkerID string
	Job      string
	Shard    int
	Attempt  int
	OK       bool
	Result   ShardResult
	Err      string
}

// CompleteReply acknowledges the report.
type CompleteReply struct{}

// DeregisterArgs is a clean goodbye: the broker requeues the worker's
// leased shards immediately (without burning a retry attempt — nothing
// failed) instead of waiting out the lease.
type DeregisterArgs struct {
	WorkerID string
}

// DeregisterReply acknowledges the goodbye.
type DeregisterReply struct{}

// ShardResult is a completed shard: the wire-safe metric summary plus
// the fingerprint it answers for. Comparable with ==, which is how the
// broker cross-checks duplicated completions for byte-identity.
type ShardResult struct {
	Fp      string
	Summary system.Summary
}
