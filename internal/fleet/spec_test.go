package fleet

import (
	"context"
	"strings"
	"testing"
)

func TestSpecNormalizeDefaults(t *testing.T) {
	var s SweepSpec
	if err := s.Normalize(); err != nil {
		t.Fatal(err)
	}
	if s.Instr != 1_000_000 || s.Cores != 4 || s.LineBytes != 64 || s.Engine != "wheel" {
		t.Errorf("defaults wrong: %+v", s)
	}
	if len(s.Seeds) != 1 || s.Seeds[0] != 1 {
		t.Errorf("Seeds = %v, want [1]", s.Seeds)
	}
	if len(s.Figs) != 4 || s.Retries != 3 {
		t.Errorf("Figs = %v, Retries = %d", s.Figs, s.Retries)
	}
	if got := len(s.Shards()); got != 40 {
		t.Errorf("default grid expands to %d shards, want 40 (8 workloads x 5 schemes)", got)
	}
}

func TestSpecNormalizeRejectsBadInputs(t *testing.T) {
	cases := []SweepSpec{
		{Workloads: []string{"no-such-workload"}},
		{Schemes: []string{"no-such-scheme"}},
		{Engine: "bogo-queue"},
		{Figs: []int{3}}, // needs per-write sampling, not renderable from summaries
		{Figs: []int{15}},
		{Retries: -1},
		{ShardTimeout: "ninety seconds"},
		{Deadline: "-5s"},
		{LineBytes: -1},
	}
	for i, s := range cases {
		if err := s.Normalize(); err == nil {
			t.Errorf("case %d (%+v): Normalize accepted a bad spec", i, s)
		}
	}
}

// TestShardsDeterministicOrder: the same spec always expands to the
// identical shard list — journal resume addresses shards by index, so
// the expansion order is load-bearing.
func TestShardsDeterministicOrder(t *testing.T) {
	s := SweepSpec{Seeds: []int64{2, 1}, Workloads: []string{"vips", "ferret"}, Schemes: []string{"tetris", "baseline"}}
	if err := s.Normalize(); err != nil {
		t.Fatal(err)
	}
	a, b := s.Shards(), s.Shards()
	if len(a) != 8 {
		t.Fatalf("len = %d, want 2 seeds x 2 workloads x 2 schemes = 8", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("expansion not deterministic at %d: %v vs %v", i, a[i], b[i])
		}
	}
	// Seed-major, then workload in the given order, then scheme.
	if a[0].Seed != 2 || a[0].Workload != "vips" || a[0].Scheme != "tetris" {
		t.Errorf("first shard = %+v", a[0])
	}
	if a[4].Seed != 1 {
		t.Errorf("shard 4 = %+v, want the second seed block", a[4])
	}
}

func TestFingerprintDistinguishesEveryField(t *testing.T) {
	base := ShardSpec{Workload: "vips", Scheme: "tetris", Seed: 1, Instr: 1000, Cores: 4, LineBytes: 64, Engine: "wheel"}
	if base.Fingerprint() != base.Fingerprint() {
		t.Fatal("fingerprint unstable")
	}
	variants := []ShardSpec{base, base, base, base, base, base, base}
	variants[0].Workload = "ferret"
	variants[1].Scheme = "fnw"
	variants[2].Seed = 2
	variants[3].Instr = 2000
	variants[4].Cores = 8
	variants[5].LineBytes = 128
	variants[6].Engine = "heap"
	seen := map[string]int{base.Fingerprint(): -1}
	for i, v := range variants {
		fp := v.Fingerprint()
		if prev, dup := seen[fp]; dup {
			t.Errorf("variant %d collides with %d: %s", i, prev, fp)
		}
		seen[fp] = i
	}
	if len(base.Fingerprint()) != 16 {
		t.Errorf("fingerprint %q is not 16 hex chars", base.Fingerprint())
	}
}

// TestRunShardMatchesFingerprintContract: the same spec run twice
// yields identical summaries — the determinism the whole broker design
// (dedup, cache, retry-anywhere) is built on.
func TestRunShardMatchesFingerprintContract(t *testing.T) {
	sp := ShardSpec{Workload: "vips", Scheme: "tetris", Seed: 1, Instr: 2000, Cores: 2, LineBytes: 64, Engine: "wheel"}
	s1, err := RunShard(context.Background(), sp)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := RunShard(context.Background(), sp)
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Errorf("RunShard not deterministic:\n%+v\n%+v", s1, s2)
	}
	if s1.Workload != "vips" || s1.Scheme != "tetris" || s1.IPC <= 0 {
		t.Errorf("summary implausible: %+v", s1)
	}
	if !strings.Contains(sp.String(), "vips/tetris/seed1") {
		t.Errorf("String() = %q", sp.String())
	}
}

func TestRunShardUnknownNames(t *testing.T) {
	if _, err := RunShard(context.Background(), ShardSpec{Workload: "nope", Scheme: "tetris", Instr: 100, Cores: 1, Engine: "wheel"}); err == nil {
		t.Error("unknown workload accepted")
	}
	if _, err := RunShard(context.Background(), ShardSpec{Workload: "vips", Scheme: "nope", Instr: 100, Cores: 1, Engine: "wheel"}); err == nil {
		t.Error("unknown scheme accepted")
	}
}

// TestFingerprintCanonicalizesSchemes: the v2 fingerprint hashes the
// registry-canonical scheme name, so alias spellings share one cache
// entry while distinct compositions stay distinct.
func TestFingerprintCanonicalizesSchemes(t *testing.T) {
	fp := func(scheme string) string {
		s := ShardSpec{Workload: "vips", Scheme: scheme, Seed: 1, Instr: 1000,
			Cores: 4, LineBytes: 64, Engine: "wheel"}
		return s.Fingerprint()
	}
	same := [][2]string{
		{"baseline", "dcw"},
		{"2stage", "twostage"},
		{"3stage", "threestage"},
		{"flip-n-write", "fnw"},
		{"baseline+remap", "dcw+remap"},
	}
	for _, pair := range same {
		if fp(pair[0]) != fp(pair[1]) {
			t.Errorf("Fingerprint(%q) != Fingerprint(%q): aliases must share cache entries", pair[0], pair[1])
		}
	}
	distinct := []string{"dcw", "dcw+flipmin", "dcw+remap", "dcw+flipmin+remap", "dcw+mlc", "adaptive", "adaptive+remap"}
	seen := map[string]string{}
	for _, name := range distinct {
		h := fp(name)
		if prev, dup := seen[h]; dup {
			t.Errorf("Fingerprint(%q) collides with %q", name, prev)
		}
		seen[h] = name
	}
}

// TestRunShardComposedScheme: a composed registry name runs end to end
// through the fleet shard runner, deterministically.
func TestRunShardComposedScheme(t *testing.T) {
	sp := ShardSpec{Workload: "canneal", Scheme: "dcw+flipmin", Seed: 1,
		Instr: 2000, Cores: 2, LineBytes: 64, Engine: "wheel"}
	s1, err := RunShard(context.Background(), sp)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := RunShard(context.Background(), sp)
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Errorf("composed-scheme shard not deterministic:\n%+v\n%+v", s1, s2)
	}
	if s1.Scheme != "dcw+flipmin" {
		t.Errorf("summary scheme = %q", s1.Scheme)
	}
}

// TestSpecNormalizeAcceptsComposedSchemes: the sweep grid validates
// scheme names through the registry, so compositions and the adaptive
// meta-scheme are sweepable, and invalid compositions are rejected at
// spec time, not deep inside a worker.
func TestSpecNormalizeAcceptsComposedSchemes(t *testing.T) {
	s := SweepSpec{Workloads: []string{"vips"}, Schemes: []string{"dcw", "dcw+flipmin", "adaptive+remap"}}
	if err := s.Normalize(); err != nil {
		t.Fatalf("composed schemes rejected: %v", err)
	}
	bad := SweepSpec{Workloads: []string{"vips"}, Schemes: []string{"fnw+flipmin"}}
	if err := bad.Normalize(); err == nil {
		t.Error("invalid composition fnw+flipmin accepted by Normalize")
	}
}
