package fleet

import (
	"os"
	"path/filepath"
	"testing"

	"tetriswrite/internal/system"
)

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, recs, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh journal replayed %d records", len(recs))
	}
	spec := SweepSpec{Workloads: []string{"vips"}, Schemes: []string{"tetris"}, Instr: 1000}
	res := ShardResult{Fp: "deadbeefdeadbeef", Summary: system.Summary{Workload: "vips", Scheme: "tetris", IPC: 1.25}}
	want := []Record{
		{Type: "job", Job: "j0000", Spec: &spec},
		{Type: "shard", Job: "j0000", Shard: 3, Attempt: 2, Result: &res},
		{Type: "done", Job: "j0000", State: "completed"},
	}
	for _, r := range want {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	j2, recs, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(recs) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(recs), len(want))
	}
	for i, r := range recs {
		if r.Type != want[i].Type || r.Job != want[i].Job || r.V != 1 {
			t.Errorf("record %d = %+v", i, r)
		}
	}
	if got := *recs[1].Result; got != res {
		t.Errorf("shard result did not survive the round trip: %+v vs %+v", got, res)
	}
	if recs[0].Spec == nil || recs[0].Spec.Instr != 1000 {
		t.Errorf("spec did not survive: %+v", recs[0].Spec)
	}
}

// TestJournalTornTail: a crash mid-append leaves a partial final line;
// replay drops it and the next append overwrites it.
func TestJournalTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	body := `{"v":1,"type":"job","job":"j0000"}` + "\n" + `{"v":1,"type":"shar`
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	j, recs, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("torn tail rejected: %v", err)
	}
	if len(recs) != 1 || recs[0].Job != "j0000" {
		t.Fatalf("replayed %+v, want just the complete record", recs)
	}
	if err := j.Append(Record{Type: "done", Job: "j0000", State: "failed"}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	j2, recs, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(recs) != 2 || recs[1].Type != "done" {
		t.Fatalf("after overwrite: %+v, want the torn line replaced by the new record", recs)
	}
}

// TestJournalCorruptionMidFile: a malformed line with records after it
// is real corruption, not a torn append, and must be rejected loudly.
func TestJournalCorruptionMidFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	body := `{"v":1,"type":"job","job":"j0000"}` + "\n" + "garbage\n" + `{"v":1,"type":"done","job":"j0000"}` + "\n"
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenJournal(path); err == nil {
		t.Fatal("mid-file corruption accepted")
	}
}

// TestJournalNilSafe: a broker without a journal path calls through a
// nil *Journal everywhere; every method must be a no-op.
func TestJournalNilSafe(t *testing.T) {
	var j *Journal
	if err := j.Append(Record{Type: "job"}); err != nil {
		t.Errorf("nil Append = %v", err)
	}
	if p := j.Path(); p != "" {
		t.Errorf("nil Path = %q", p)
	}
	if err := j.Close(); err != nil {
		t.Errorf("nil Close = %v", err)
	}
}
