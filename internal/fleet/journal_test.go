package fleet

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tetriswrite/internal/system"
)

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, recs, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh journal replayed %d records", len(recs))
	}
	spec := SweepSpec{Workloads: []string{"vips"}, Schemes: []string{"tetris"}, Instr: 1000}
	res := ShardResult{Fp: "deadbeefdeadbeef", Summary: system.Summary{Workload: "vips", Scheme: "tetris", IPC: 1.25}}
	want := []Record{
		{Type: "job", Job: "j0000", Spec: &spec},
		{Type: "shard", Job: "j0000", Shard: 3, Attempt: 2, Result: &res},
		{Type: "done", Job: "j0000", State: "completed"},
	}
	for _, r := range want {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	j2, recs, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(recs) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(recs), len(want))
	}
	for i, r := range recs {
		if r.Type != want[i].Type || r.Job != want[i].Job || r.V != 1 {
			t.Errorf("record %d = %+v", i, r)
		}
	}
	if got := *recs[1].Result; got != res {
		t.Errorf("shard result did not survive the round trip: %+v vs %+v", got, res)
	}
	if recs[0].Spec == nil || recs[0].Spec.Instr != 1000 {
		t.Errorf("spec did not survive: %+v", recs[0].Spec)
	}
}

// TestJournalTornTail: a crash mid-append leaves a partial final line;
// replay drops it and the next append overwrites it.
func TestJournalTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	body := `{"v":1,"type":"job","job":"j0000"}` + "\n" + `{"v":1,"type":"shar`
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	j, recs, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("torn tail rejected: %v", err)
	}
	if len(recs) != 1 || recs[0].Job != "j0000" {
		t.Fatalf("replayed %+v, want just the complete record", recs)
	}
	if err := j.Append(Record{Type: "done", Job: "j0000", State: "failed"}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	j2, recs, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(recs) != 2 || recs[1].Type != "done" {
		t.Fatalf("after overwrite: %+v, want the torn line replaced by the new record", recs)
	}
}

// TestJournalCorruptionMidFile: a malformed line with records after it
// is real corruption, not a torn append, and must be rejected loudly.
func TestJournalCorruptionMidFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	body := `{"v":1,"type":"job","job":"j0000"}` + "\n" + "garbage\n" + `{"v":1,"type":"done","job":"j0000"}` + "\n"
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenJournal(path); err == nil {
		t.Fatal("mid-file corruption accepted")
	}
}

// writeThree appends three checksummed records and returns the path.
func writeThree(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []Record{
		{Type: "job", Job: "j0000"},
		{Type: "shard", Job: "j0000", Shard: 1, Attempt: 1},
		{Type: "done", Job: "j0000", State: "completed"},
	} {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	return path
}

// TestJournalChecksumStamped: Append stamps a CRC that survives the
// round trip and verifies.
func TestJournalChecksumStamped(t *testing.T) {
	path := writeThree(t)
	j, recs, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if len(recs) != 3 {
		t.Fatalf("replayed %d records, want 3", len(recs))
	}
	for i, r := range recs {
		if r.CRC == 0 {
			t.Errorf("record %d replayed without a checksum", i+1)
		}
	}
}

// TestJournalChecksumCorruptionMidFile: bit-rot inside a mid-file
// record — still valid JSON, wrong payload — must fail replay and name
// the record.
func TestJournalChecksumCorruptionMidFile(t *testing.T) {
	path := writeThree(t)
	body, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip the shard number of record 2: JSON stays well-formed, the
	// stored checksum no longer matches.
	tampered := strings.Replace(string(body), `"shard":1`, `"shard":7`, 1)
	if tampered == string(body) {
		t.Fatal("tamper target not found")
	}
	if err := os.WriteFile(path, []byte(tampered), 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = OpenJournal(path)
	if err == nil {
		t.Fatal("checksum corruption mid-file accepted")
	}
	if !strings.Contains(err.Error(), "record 2") || !strings.Contains(err.Error(), "checksum mismatch") {
		t.Fatalf("error does not name the corrupt record: %v", err)
	}
}

// TestJournalChecksumCorruptFinalLine: the same bit-rot on the final
// record is indistinguishable from a torn append and is dropped.
func TestJournalChecksumCorruptFinalLine(t *testing.T) {
	path := writeThree(t)
	body, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	tampered := strings.Replace(string(body), `"state":"completed"`, `"state":"collapsed"`, 1)
	if tampered == string(body) {
		t.Fatal("tamper target not found")
	}
	if err := os.WriteFile(path, []byte(tampered), 0o644); err != nil {
		t.Fatal(err)
	}
	j, recs, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("corrupt final line rejected: %v", err)
	}
	defer j.Close()
	if len(recs) != 2 {
		t.Fatalf("replayed %d records, want 2 (corrupt tail dropped)", len(recs))
	}
}

// TestJournalLegacyRecordsAccepted: records without a crc field (the
// pre-checksum format) replay unverified.
func TestJournalLegacyRecordsAccepted(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	body := `{"v":1,"type":"job","job":"j0000"}` + "\n" + `{"v":1,"type":"done","job":"j0000","state":"completed"}` + "\n"
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	j, recs, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("legacy journal rejected: %v", err)
	}
	defer j.Close()
	if len(recs) != 2 {
		t.Fatalf("replayed %d legacy records, want 2", len(recs))
	}
}

// TestJournalNilSafe: a broker without a journal path calls through a
// nil *Journal everywhere; every method must be a no-op.
func TestJournalNilSafe(t *testing.T) {
	var j *Journal
	if err := j.Append(Record{Type: "job"}); err != nil {
		t.Errorf("nil Append = %v", err)
	}
	if p := j.Path(); p != "" {
		t.Errorf("nil Path = %q", p)
	}
	if err := j.Close(); err != nil {
		t.Errorf("nil Close = %v", err)
	}
}
