package fleet

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestHTTPJobLifecycle(t *testing.T) {
	b, _ := testBroker(t)
	srv := httptest.NewServer(b.Handler())
	defer srv.Close()

	post := func(path, body string) *http.Response {
		t.Helper()
		resp, err := http.Post(srv.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}
	get := func(path string) *http.Response {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}
	readAll := func(resp *http.Response) string {
		t.Helper()
		var sb strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				return sb.String()
			}
		}
	}

	if resp := post("/jobs", `{"instr": "not a number"}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed spec: status %d, want 400", resp.StatusCode)
	}
	if resp := post("/jobs", `{"unknown_field": 1}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field: status %d, want 400 (DisallowUnknownFields)", resp.StatusCode)
	}
	if resp := post("/jobs", `{"workloads": ["no-such"]}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad workload: status %d, want 400", resp.StatusCode)
	}

	resp := post("/jobs", `{"workloads":["vips"],"schemes":["baseline","tetris"],"instr":1000,"figs":[13]}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d, want 202", resp.StatusCode)
	}
	body := readAll(resp)
	if !strings.Contains(body, `"job"`) || !strings.Contains(body, "j0000") {
		t.Fatalf("submit body: %s", body)
	}

	if resp := get("/jobs/j0000"); resp.StatusCode != http.StatusOK {
		t.Errorf("status: %d, want 200", resp.StatusCode)
	}
	if resp := get("/jobs/j9999"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job status: %d, want 404", resp.StatusCode)
	}
	if resp := get("/jobs/j0000/result"); resp.StatusCode != http.StatusConflict {
		t.Errorf("result of a running job: %d, want 409", resp.StatusCode)
	}
	if resp := get("/jobs"); !strings.Contains(readAll(resp), "j0000") {
		t.Error("job list missing the submitted job")
	}

	// Complete the job through the RPC surface, then fetch the result.
	wid := register(t, b, "http-test")
	drainAll(t, b, wid)
	resp = get("/jobs/j0000/wait")
	if resp.StatusCode != http.StatusOK || !strings.Contains(readAll(resp), `"completed"`) {
		t.Fatalf("wait: status %d", resp.StatusCode)
	}
	resp = get("/jobs/j0000/result")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result: status %d, want 200", resp.StatusCode)
	}
	if table := readAll(resp); !strings.Contains(table, "vips") {
		t.Errorf("result table missing workload row:\n%s", table)
	}

	// Event history as NDJSON, without following the live stream.
	resp = get("/jobs/j0000/events?follow=0")
	events := readAll(resp)
	if !strings.Contains(events, `"type":"submitted"`) || !strings.Contains(events, `"type":"completed"`) {
		t.Errorf("event stream incomplete:\n%s", events)
	}

	if resp := get("/workers"); !strings.Contains(readAll(resp), "http-test") {
		t.Error("workers listing missing the registered worker")
	}
	if resp := get("/metrics"); !strings.Contains(readAll(resp), "fleet_shards_completed") {
		t.Error("metrics missing fleet counters")
	}
	if resp := get("/healthz"); !strings.Contains(readAll(resp), `"ok": true`) {
		t.Error("healthz not ok")
	}
	if resp := get("/version"); !strings.Contains(readAll(resp), "pcmsimd version") {
		t.Error("version endpoint broken")
	}

	// Cancel a second, untouched job.
	post("/jobs", `{"workloads":["vips"],"schemes":["fnw"],"instr":1000}`)
	resp = post("/jobs/j0001/cancel", "")
	if resp.StatusCode != http.StatusOK || !strings.Contains(readAll(resp), `"cancelled"`) {
		t.Errorf("cancel: status %d", resp.StatusCode)
	}
}
