// Package fleet is the distributed sweep service: a broker that accepts
// sweep jobs (workload x scheme x seed grids) over HTTP and net/rpc and
// fans the individual full-system simulations — shards — out to a fleet
// of registered workers.
//
// The design is fault-tolerant by construction rather than by recovery
// heroics, leaning on one property of the simulator: a shard is a pure
// function of its spec. Every (seed, workload, scheme, budget) cell
// produces a byte-identical Result wherever and whenever it runs, so
// the broker is free to re-issue work aggressively — lease-expired
// shards retry on surviving workers with exponential backoff and
// jitter, duplicated completions are deduplicated by fingerprint (and
// cross-checked: a duplicate that disagrees is a determinism violation,
// reported loudly), and the journaled completion log doubles as both a
// crash-resume checkpoint and a response cache for identical future
// requests.
//
// Liveness is lease-based: workers register, heartbeat on an interval
// the broker dictates, and are deregistered when a lease expires —
// their in-flight shards return to the queue. Clients interact over
// plain HTTP (submit, status, cancel, result, JSON-lines event and
// telemetry streams); workers speak net/rpc with gob encoding.
package fleet

import (
	"context"
	"fmt"
	"hash/fnv"
	"time"

	"tetriswrite/internal/exp"
	"tetriswrite/internal/pcm"
	"tetriswrite/internal/registry"
	"tetriswrite/internal/sim"
	"tetriswrite/internal/system"
	"tetriswrite/internal/workload"
)

// SweepSpec is a client-submitted job: the sweep grid plus the
// simulation and supervision knobs. The zero value of every field means
// "default"; Normalize resolves them so the same spec always expands to
// the same shard list — the property journal resume depends on.
type SweepSpec struct {
	// Workloads and Schemes name the grid axes; empty selects the full
	// paper set (8 workloads, 5 schemes). The first scheme is the
	// normalization baseline of every rendered table.
	Workloads []string `json:"workloads,omitempty"`
	Schemes   []string `json:"schemes,omitempty"`
	// Seeds lists the workload seeds to sweep; empty means [1].
	Seeds []int64 `json:"seeds,omitempty"`

	// Instr is the per-core instruction budget (default 1M, matching
	// tetrisbench); Cores the core count (default 4); LineBytes the
	// cache line size (default 64); Engine the event-queue backend
	// ("wheel" or "heap", default wheel).
	Instr     int64  `json:"instr,omitempty"`
	Cores     int    `json:"cores,omitempty"`
	LineBytes int    `json:"line,omitempty"`
	Engine    string `json:"engine,omitempty"`

	// Figs selects the tables rendered by the result endpoint, in
	// order (11-14; default all four). Energy appends the energy-per-
	// write table.
	Figs   []int `json:"figs,omitempty"`
	Energy bool  `json:"energy,omitempty"`

	// Retries is the extra attempts each shard gets beyond the first
	// (default 3); ShardTimeout bounds one attempt's wall-clock time
	// ("90s"; empty means none); Deadline bounds the whole job ("10m";
	// empty means none). Durations use Go syntax.
	Retries      int    `json:"retries,omitempty"`
	ShardTimeout string `json:"shard_timeout,omitempty"`
	Deadline     string `json:"deadline,omitempty"`
}

// Normalize fills defaults and validates the grid names and durations.
func (s *SweepSpec) Normalize() error {
	if _, err := exp.ResolveProfiles(s.Workloads); err != nil {
		return err
	}
	if _, err := exp.ResolveSchemes(s.Schemes); err != nil {
		return err
	}
	if len(s.Seeds) == 0 {
		s.Seeds = []int64{1}
	}
	if s.Instr <= 0 {
		s.Instr = 1_000_000
	}
	if s.Cores <= 0 {
		s.Cores = 4
	}
	if s.LineBytes == 0 {
		s.LineBytes = pcm.DefaultParams().LineBytes
	}
	par := pcm.DefaultParams()
	par.LineBytes = s.LineBytes
	if err := par.Validate(); err != nil {
		return fmt.Errorf("fleet: line %d: %w", s.LineBytes, err)
	}
	if s.Engine == "" {
		s.Engine = string(sim.QueueWheel)
	}
	if !sim.QueueKind(s.Engine).Valid() {
		return fmt.Errorf("fleet: unknown engine %q (want wheel or heap)", s.Engine)
	}
	if len(s.Figs) == 0 {
		s.Figs = []int{11, 12, 13, 14}
	}
	for _, f := range s.Figs {
		if f < 11 || f > 14 {
			return fmt.Errorf("fleet: figure %d not renderable from shard summaries (want 11-14)", f)
		}
	}
	if s.Retries < 0 {
		return fmt.Errorf("fleet: retries %d: cannot be negative", s.Retries)
	}
	if s.Retries == 0 {
		s.Retries = 3
	}
	for _, d := range []string{s.ShardTimeout, s.Deadline} {
		if d == "" {
			continue
		}
		if v, err := time.ParseDuration(d); err != nil || v <= 0 {
			return fmt.Errorf("fleet: bad duration %q", d)
		}
	}
	return nil
}

// shardTimeout returns the parsed per-attempt timeout (0 = none).
func (s *SweepSpec) shardTimeout() time.Duration { return parsedDuration(s.ShardTimeout) }

// deadline returns the parsed job deadline (0 = none).
func (s *SweepSpec) deadline() time.Duration { return parsedDuration(s.Deadline) }

func parsedDuration(d string) time.Duration {
	if d == "" {
		return 0
	}
	v, err := time.ParseDuration(d)
	if err != nil {
		return 0
	}
	return v
}

// Shards expands the normalized spec into its shard list, seed-major
// then workload then scheme — a deterministic order, so a resumed
// broker re-expands the journaled spec into the identical list and the
// journal's shard indices stay meaningful across restarts.
func (s *SweepSpec) Shards() []ShardSpec {
	profiles, _ := exp.ResolveProfiles(s.Workloads)
	schemes, _ := exp.ResolveSchemes(s.Schemes)
	out := make([]ShardSpec, 0, len(s.Seeds)*len(profiles)*len(schemes))
	for _, seed := range s.Seeds {
		for _, p := range profiles {
			for _, nf := range schemes {
				out = append(out, ShardSpec{
					Workload:  p.Name,
					Scheme:    nf.Name,
					Seed:      seed,
					Instr:     s.Instr,
					Cores:     s.Cores,
					LineBytes: s.LineBytes,
					Engine:    s.Engine,
				})
			}
		}
	}
	return out
}

// ShardSpec is one unit of distributable work: everything a worker
// needs to run one full-system simulation cell. Two equal ShardSpecs
// produce byte-identical Summaries on any worker — the contract the
// broker's dedup, retry and response cache all rest on.
type ShardSpec struct {
	Workload  string
	Scheme    string
	Seed      int64
	Instr     int64
	Cores     int
	LineBytes int
	Engine    string
}

// Fingerprint is the shard's identity across jobs, workers and broker
// restarts: an FNV-64a hash of the canonical spec rendering. Equal
// fingerprints mean "same deterministic computation", which is what
// licenses serving a shard from the completed-shard cache instead of
// running it again.
//
// The scheme name is canonicalized through the registry before hashing
// (v2): "baseline" and "dcw", or "2stage" and "twostage", are the same
// computation under different display labels and must share one cache
// entry, while every distinct composed name ("dcw+flipmin+remap") stays
// a distinct identity. A name the registry cannot resolve hashes as
// spelled — Normalize has already rejected it for real jobs.
func (s ShardSpec) Fingerprint() string {
	scheme := s.Scheme
	if canon, err := registry.Default().Canonical(s.Scheme); err == nil {
		scheme = canon
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "tetris-shard|v2|w=%s|s=%s|seed=%d|instr=%d|cores=%d|line=%d|engine=%s",
		s.Workload, scheme, s.Seed, s.Instr, s.Cores, s.LineBytes, s.Engine)
	return fmt.Sprintf("%016x", h.Sum64())
}

// String identifies the shard in logs and event streams.
func (s ShardSpec) String() string {
	return fmt.Sprintf("%s/%s/seed%d", s.Workload, s.Scheme, s.Seed)
}

// RunShard executes one shard in-process: the worker's core, also
// usable directly by tests and by a broker running in local mode. The
// system.Config construction mirrors exp.RunFullSystemCtx cell for
// cell, which is what makes a fleet-assembled table byte-identical to a
// serial tetrisbench sweep.
func RunShard(ctx context.Context, sh ShardSpec) (system.Summary, error) {
	prof, err := workload.ProfileByName(sh.Workload)
	if err != nil {
		return system.Summary{}, err
	}
	schemes, err := exp.ResolveSchemes([]string{sh.Scheme})
	if err != nil {
		return system.Summary{}, err
	}
	par := pcm.DefaultParams()
	if sh.LineBytes > 0 {
		par.LineBytes = sh.LineBytes
	}
	cfg := system.Config{
		Params:      par,
		Cores:       sh.Cores,
		InstrBudget: sh.Instr,
		Seed:        sh.Seed,
		EngineQueue: sim.QueueKind(sh.Engine),
	}
	res, err := system.RunCtx(ctx, prof, schemes[0].Factory, cfg)
	if err != nil {
		return system.Summary{}, err
	}
	return system.Summarize(res, sh.Seed), nil
}
