package fleet

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"tetriswrite/internal/runner"
	"tetriswrite/internal/system"
)

// fakeClock lets tests drive lease expiry, retry eligibility and
// deadlines without sleeping: the janitor and every broker decision
// read time through Config.Now.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// testBroker builds a journal-less broker on a fake clock with fast,
// jitter-free-enough retry pacing.
func testBroker(t *testing.T) (*Broker, *fakeClock) {
	t.Helper()
	clk := newFakeClock()
	b, err := New(Config{
		LeaseTTL: time.Second,
		Retry:    runner.Backoff{Base: 10 * time.Millisecond, Max: 40 * time.Millisecond, Jitter: 0.2},
		Now:      clk.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close() })
	return b, clk
}

// smallSpec is a 2-shard grid: one workload, two schemes.
func smallSpec() SweepSpec {
	return SweepSpec{Workloads: []string{"vips"}, Schemes: []string{"baseline", "tetris"}, Instr: 1000}
}

func register(t *testing.T, b *Broker, name string) string {
	t.Helper()
	var rep RegisterReply
	if err := b.RPC().Register(&RegisterArgs{Name: name, Slots: 2}, &rep); err != nil {
		t.Fatal(err)
	}
	return rep.WorkerID
}

func lease(t *testing.T, b *Broker, wid string) (Assignment, bool) {
	t.Helper()
	var rep NextReply
	if err := b.RPC().Next(&NextArgs{WorkerID: wid}, &rep); err != nil {
		t.Fatal(err)
	}
	return rep.A, rep.Found
}

// summaryFor fabricates a deterministic result for a shard spec, so
// duplicate completions agree exactly as real deterministic runs would.
func summaryFor(sp ShardSpec) system.Summary {
	return system.Summary{
		Workload: sp.Workload, Scheme: sp.Scheme, Seed: sp.Seed,
		RunningTimePs: sp.Instr * 100, IPC: 1 + float64(len(sp.Scheme)),
	}
}

func completeOK(t *testing.T, b *Broker, wid string, a Assignment) {
	t.Helper()
	err := b.RPC().Complete(&CompleteArgs{
		WorkerID: wid, Job: a.Job, Shard: a.Shard, Attempt: a.Attempt, OK: true,
		Result: ShardResult{Fp: a.Spec.Fingerprint(), Summary: summaryFor(a.Spec)},
	}, &CompleteReply{})
	if err != nil {
		t.Fatal(err)
	}
}

// drainAll leases and completes every eligible shard, returning how
// many it ran.
func drainAll(t *testing.T, b *Broker, wid string) int {
	t.Helper()
	n := 0
	for {
		a, found := lease(t, b, wid)
		if !found {
			return n
		}
		completeOK(t, b, wid, a)
		n++
	}
}

func TestSubmitLeaseCompleteLifecycle(t *testing.T) {
	b, _ := testBroker(t)
	id, err := b.Submit(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	st, ok := b.Status(id)
	if !ok || st.State != string(JobRunning) || st.Shards.Total != 2 || st.Shards.Pending != 2 {
		t.Fatalf("after submit: %+v", st)
	}

	wid := register(t, b, "unit")
	a, found := lease(t, b, wid)
	if !found || a.Job != id || a.Shard != 0 || a.Attempt != 1 {
		t.Fatalf("first lease = %+v found=%v", a, found)
	}
	if a.Spec.Workload != "vips" || a.Spec.Scheme != "baseline" {
		t.Fatalf("lease order broke grid order: %+v", a.Spec)
	}
	completeOK(t, b, wid, a)
	if n := drainAll(t, b, wid); n != 1 {
		t.Fatalf("drained %d more shards, want 1", n)
	}

	st, _ = b.Status(id)
	if st.State != string(JobCompleted) || st.Shards.Done != 2 {
		t.Fatalf("after completion: %+v", st)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := b.Wait(ctx, id); err != nil {
		t.Fatalf("Wait on a completed job: %v", err)
	}
}

func TestNextUnknownWorker(t *testing.T) {
	b, _ := testBroker(t)
	var rep NextReply
	if err := b.RPC().Next(&NextArgs{WorkerID: "w999"}, &rep); !errors.Is(err, ErrUnknownWorker) {
		t.Fatalf("err = %v, want ErrUnknownWorker", err)
	}
	var hb HeartbeatReply
	if err := b.RPC().Heartbeat(&HeartbeatArgs{WorkerID: "w999"}, &hb); err != nil || hb.OK {
		t.Fatalf("heartbeat from unknown worker: err=%v OK=%v, want nil err and OK=false", err, hb.OK)
	}
}

// TestFingerprintCacheAnswersResubmission: once a sweep completes, an
// identical submission is satisfied entirely from the cache without a
// single worker lease — the journal-as-response-cache behavior, here in
// its in-memory form.
func TestFingerprintCacheAnswersResubmission(t *testing.T) {
	b, _ := testBroker(t)
	id1, _ := b.Submit(smallSpec())
	wid := register(t, b, "unit")
	drainAll(t, b, wid)
	if st, _ := b.Status(id1); st.State != string(JobCompleted) {
		t.Fatalf("job 1: %+v", st)
	}

	id2, err := b.Submit(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	st, _ := b.Status(id2)
	if st.State != string(JobCompleted) || st.Shards.Cached != 2 {
		t.Fatalf("resubmission not served from cache: %+v", st)
	}
	if _, found := lease(t, b, wid); found {
		t.Fatal("cached job leaked a lease to a worker")
	}
	// And a partially overlapping sweep only runs the new cells.
	spec3 := smallSpec()
	spec3.Schemes = []string{"baseline", "tetris", "fnw"}
	id3, _ := b.Submit(spec3)
	if n := drainAll(t, b, wid); n != 1 {
		t.Fatalf("overlapping sweep ran %d shards, want only the 1 uncached", n)
	}
	if st, _ := b.Status(id3); st.State != string(JobCompleted) || st.Shards.Cached != 2 {
		t.Fatalf("job 3: %+v", st)
	}
}

// TestLeaseExpiryRequeuesWithBackoff: a worker that stops heartbeating
// is expired; its leased shard requeues as a consumed attempt and only
// becomes eligible after the backoff delay.
func TestLeaseExpiryRequeuesWithBackoff(t *testing.T) {
	b, clk := testBroker(t)
	id, _ := b.Submit(smallSpec())
	w1 := register(t, b, "doomed")
	a, found := lease(t, b, w1)
	if !found {
		t.Fatal("no lease")
	}

	clk.Advance(b.cfg.LeaseTTL + time.Millisecond)
	b.mu.Lock()
	b.sweepLocked(clk.Now())
	b.mu.Unlock()

	if ws := b.Workers(); len(ws) != 0 {
		t.Fatalf("expired worker still registered: %+v", ws)
	}
	var hb HeartbeatReply
	b.RPC().Heartbeat(&HeartbeatArgs{WorkerID: w1}, &hb)
	if hb.OK {
		t.Fatal("expired worker's heartbeat still accepted")
	}

	w2 := register(t, b, "survivor")
	if got, found := lease(t, b, w2); found && got.Shard == a.Shard {
		t.Fatalf("requeued shard leased before its backoff elapsed: %+v", got)
	}
	clk.Advance(100 * time.Millisecond) // past Retry.Max with jitter
	leased := map[int]int{}
	for {
		got, found := lease(t, b, w2)
		if !found {
			break
		}
		leased[got.Shard] = got.Attempt
	}
	if leased[a.Shard] != 2 {
		t.Fatalf("requeued shard attempt = %d, want 2 (expiry consumed attempt 1); leases: %v", leased[a.Shard], leased)
	}
	if st, _ := b.Status(id); st.Shards.Retried != 1 {
		t.Fatalf("retried count = %d, want 1", st.Shards.Retried)
	}
}

// TestDeregisterHandsAttemptBack: a clean goodbye requeues the lease
// immediately and does not burn a retry attempt.
func TestDeregisterHandsAttemptBack(t *testing.T) {
	b, _ := testBroker(t)
	b.Submit(smallSpec())
	w1 := register(t, b, "leaving")
	a, found := lease(t, b, w1)
	if !found {
		t.Fatal("no lease")
	}
	if err := b.RPC().Deregister(&DeregisterArgs{WorkerID: w1}, &DeregisterReply{}); err != nil {
		t.Fatal(err)
	}
	w2 := register(t, b, "next")
	got, found := lease(t, b, w2)
	if !found || got.Shard != a.Shard || got.Attempt != 1 {
		t.Fatalf("after deregister: %+v found=%v, want same shard at attempt 1 immediately", got, found)
	}
}

// TestRetryBudgetExhaustionFailsJob: Retries=3 means 4 attempts total;
// the 4th failure fails the job.
func TestRetryBudgetExhaustionFailsJob(t *testing.T) {
	b, clk := testBroker(t)
	spec := SweepSpec{Workloads: []string{"vips"}, Schemes: []string{"tetris"}, Instr: 1000}
	id, _ := b.Submit(spec)
	wid := register(t, b, "unit")
	for attempt := 1; attempt <= 4; attempt++ {
		a, found := lease(t, b, wid)
		if !found {
			t.Fatalf("no lease for attempt %d", attempt)
		}
		if a.Attempt != attempt {
			t.Fatalf("attempt = %d, want %d", a.Attempt, attempt)
		}
		err := b.RPC().Complete(&CompleteArgs{
			WorkerID: wid, Job: a.Job, Shard: a.Shard, Attempt: a.Attempt, Err: "simulated fault",
		}, &CompleteReply{})
		if err != nil {
			t.Fatal(err)
		}
		clk.Advance(100 * time.Millisecond)
	}
	st, _ := b.Status(id)
	if st.State != string(JobFailed) || !strings.Contains(st.Error, "after 4 attempts") {
		t.Fatalf("after exhausting retries: %+v", st)
	}
	// The failed job's lease cancellation reaches the worker via heartbeat.
	var hb HeartbeatReply
	b.RPC().Heartbeat(&HeartbeatArgs{WorkerID: wid}, &hb)
	for _, j := range hb.CancelJobs {
		if j == id {
			return
		}
	}
	// No lease outstanding at failure time, so no cancel needed — fine too.
}

// TestDuplicateCompletionMismatchIsDeterminismViolation: a duplicated
// completion that disagrees with the recorded result must fail the job
// loudly — it means the "pure function of the spec" contract broke.
func TestDuplicateCompletionMismatchIsDeterminismViolation(t *testing.T) {
	b, _ := testBroker(t)
	id, _ := b.Submit(smallSpec())
	wid := register(t, b, "unit")
	a, _ := lease(t, b, wid)
	completeOK(t, b, wid, a)

	// Agreeing duplicate (a retried attempt landing late): harmless.
	completeOK(t, b, wid, a)
	if st, _ := b.Status(id); st.State != string(JobRunning) {
		t.Fatalf("agreeing duplicate broke the job: %+v", st)
	}

	bad := summaryFor(a.Spec)
	bad.IPC += 0.5
	err := b.RPC().Complete(&CompleteArgs{
		WorkerID: wid, Job: a.Job, Shard: a.Shard, Attempt: a.Attempt, OK: true,
		Result: ShardResult{Fp: a.Spec.Fingerprint(), Summary: bad},
	}, &CompleteReply{})
	if err != nil {
		t.Fatal(err)
	}
	st, _ := b.Status(id)
	if st.State != string(JobFailed) || !strings.Contains(st.Error, "determinism violation") {
		t.Fatalf("disagreeing duplicate tolerated: %+v", st)
	}
}

// TestCompletionWithWrongFingerprintDropped: a result whose fingerprint
// does not match the shard is dropped, leaving the lease to recover.
func TestCompletionWithWrongFingerprintDropped(t *testing.T) {
	b, _ := testBroker(t)
	id, _ := b.Submit(smallSpec())
	wid := register(t, b, "unit")
	a, _ := lease(t, b, wid)
	err := b.RPC().Complete(&CompleteArgs{
		WorkerID: wid, Job: a.Job, Shard: a.Shard, Attempt: a.Attempt, OK: true,
		Result: ShardResult{Fp: "0000000000000000", Summary: summaryFor(a.Spec)},
	}, &CompleteReply{})
	if err != nil {
		t.Fatal(err)
	}
	st, _ := b.Status(id)
	if st.Shards.Done != 0 {
		t.Fatalf("mismatched fingerprint accepted: %+v", st)
	}
}

func TestCancelReachesWorkerOnHeartbeat(t *testing.T) {
	b, _ := testBroker(t)
	id, _ := b.Submit(smallSpec())
	wid := register(t, b, "unit")
	if _, found := lease(t, b, wid); !found {
		t.Fatal("no lease")
	}
	if err := b.Cancel(id); err != nil {
		t.Fatal(err)
	}
	if err := b.Cancel(id); err != nil {
		t.Fatalf("cancel is not idempotent: %v", err)
	}
	var hb HeartbeatReply
	b.RPC().Heartbeat(&HeartbeatArgs{WorkerID: wid}, &hb)
	if !hb.OK || len(hb.CancelJobs) != 1 || hb.CancelJobs[0] != id {
		t.Fatalf("heartbeat = %+v, want CancelJobs [%s]", hb, id)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := b.Wait(ctx, id); err != nil {
		t.Fatalf("Wait on a cancelled job: %v", err)
	}
	if _, found := lease(t, b, wid); found {
		t.Fatal("cancelled job still leasing shards")
	}
}

func TestJobDeadlineEnforced(t *testing.T) {
	b, clk := testBroker(t)
	spec := smallSpec()
	spec.Deadline = "1s"
	id, _ := b.Submit(spec)
	clk.Advance(2 * time.Second)
	b.mu.Lock()
	b.sweepLocked(clk.Now())
	b.mu.Unlock()
	st, _ := b.Status(id)
	if st.State != string(JobFailed) || !strings.Contains(st.Error, "deadline") {
		t.Fatalf("deadline not enforced: %+v", st)
	}
}

func TestDrainRejectsNewJobs(t *testing.T) {
	b, _ := testBroker(t)
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := b.Drain(ctx); err != nil {
		t.Fatalf("drain with no jobs: %v", err)
	}
	if _, err := b.Submit(smallSpec()); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit while draining = %v, want ErrDraining", err)
	}
}

// TestWriteResultPartial: a running job renders only with partial=true.
func TestWriteResultPartial(t *testing.T) {
	b, _ := testBroker(t)
	spec := smallSpec()
	spec.Figs = []int{13}
	id, _ := b.Submit(spec)
	wid := register(t, b, "unit")
	a, _ := lease(t, b, wid)
	completeOK(t, b, wid, a)

	var buf bytes.Buffer
	if err := b.WriteResult(&buf, id, false); err == nil {
		t.Fatal("running job rendered without partial")
	}
	if err := b.WriteResult(&buf, id, true); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "vips") {
		t.Errorf("partial table missing the completed workload:\n%s", buf.String())
	}
	if err := b.WriteResult(&buf, "j9999", true); err == nil {
		t.Error("unknown job rendered")
	}
}

// TestEventStreamRecordsLifecycle: the per-job event log carries the
// submission, lease, completion and terminal events in order.
func TestEventStreamRecordsLifecycle(t *testing.T) {
	b, _ := testBroker(t)
	id, _ := b.Submit(smallSpec())
	wid := register(t, b, "unit")
	drainAll(t, b, wid)

	b.mu.Lock()
	j := b.jobs[id]
	b.mu.Unlock()
	history, live, done := j.events.subscribe()
	if live != nil {
		j.events.unsubscribe(live)
	}
	if !done {
		t.Fatal("event log of a completed job not closed")
	}
	var types []string
	for _, e := range history {
		types = append(types, e.Type)
	}
	got := strings.Join(types, ",")
	want := "submitted,lease,complete,lease,complete,completed"
	if got != want {
		t.Fatalf("event sequence = %s, want %s", got, want)
	}
	for i, e := range history {
		if e.Seq != i {
			t.Errorf("event %d has Seq %d", i, e.Seq)
		}
	}
}
