package pcm

import "tetriswrite/internal/telemetry"

// RegisterMetrics exposes the device's array activity under the pcm.*
// namespace: line operations, the driven pulse mix and the
// content-awareness signal (skipped cells). Values are polled from the
// device's counters at epoch boundaries; the access paths are untouched.
func (d *Device) RegisterMetrics(reg *telemetry.Registry) {
	snap := func(f func(DeviceStats) int64) func() float64 {
		return func() float64 { return float64(f(d.Stats())) }
	}
	reg.CounterFunc("pcm.line_reads", "array line reads",
		snap(func(s DeviceStats) int64 { return s.LineReads }))
	reg.CounterFunc("pcm.line_writes", "array line writes",
		snap(func(s DeviceStats) int64 { return s.LineWrites }))
	reg.CounterFunc("pcm.bit_sets", "SET pulses landed on the array",
		snap(func(s DeviceStats) int64 { return s.BitSets }))
	reg.CounterFunc("pcm.bit_resets", "RESET pulses landed on the array",
		snap(func(s DeviceStats) int64 { return s.BitResets }))
	reg.CounterFunc("pcm.bits_skipped", "cells covered by a write but unchanged (DCW skip)",
		snap(func(s DeviceStats) int64 { return s.BitsSkipped }))
	reg.GaugeFunc("pcm.touched_lines", "distinct lines ever written (sparse footprint)", func() float64 {
		return float64(d.TouchedLines())
	})
}

// RegisterStoreMetrics exposes the line store's footprint under
// pcm.linestore.*: occupancy (stored lines), slot capacity, and load
// factor. These are the health signals of the sharded open-addressing
// table that replaced the line map — a load factor pinned near the grow
// threshold or a capacity far above occupancy both mean the store, not
// the array, is what a profile would show.
func (d *Device) RegisterStoreMetrics(reg *telemetry.Registry) {
	reg.GaugeFunc("pcm.linestore.lines", "lines held by the inline store", func() float64 {
		lines, _, _ := d.StoreOccupancy()
		return float64(lines)
	})
	reg.GaugeFunc("pcm.linestore.capacity", "slot capacity of the inline store", func() float64 {
		_, capacity, _ := d.StoreOccupancy()
		return float64(capacity)
	})
	reg.GaugeFunc("pcm.linestore.load_factor", "stored lines over slot capacity", func() float64 {
		_, _, load := d.StoreOccupancy()
		return load
	})
}
