package pcm

import "tetriswrite/internal/telemetry"

// RegisterMetrics exposes the device's array activity under the pcm.*
// namespace: line operations, the driven pulse mix and the
// content-awareness signal (skipped cells). Values are polled from the
// device's counters at epoch boundaries; the access paths are untouched.
func (d *Device) RegisterMetrics(reg *telemetry.Registry) {
	snap := func(f func(DeviceStats) int64) func() float64 {
		return func() float64 { return float64(f(d.Stats())) }
	}
	reg.CounterFunc("pcm.line_reads", "array line reads",
		snap(func(s DeviceStats) int64 { return s.LineReads }))
	reg.CounterFunc("pcm.line_writes", "array line writes",
		snap(func(s DeviceStats) int64 { return s.LineWrites }))
	reg.CounterFunc("pcm.bit_sets", "SET pulses landed on the array",
		snap(func(s DeviceStats) int64 { return s.BitSets }))
	reg.CounterFunc("pcm.bit_resets", "RESET pulses landed on the array",
		snap(func(s DeviceStats) int64 { return s.BitResets }))
	reg.CounterFunc("pcm.bits_skipped", "cells covered by a write but unchanged (DCW skip)",
		snap(func(s DeviceStats) int64 { return s.BitsSkipped }))
	reg.GaugeFunc("pcm.touched_lines", "distinct lines ever written (sparse footprint)", func() float64 {
		return float64(d.TouchedLines())
	})
}
