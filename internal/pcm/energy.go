package pcm

// EnergyModel converts pulse counts into energy. Following the usual PCM
// first-order model, the energy of a pulse is proportional to its current
// times its duration, so with the default parameters one SET costs
// 1 x 430 ns = 430 units and one RESET costs 2 x 53 ns = 106 units: a SET
// is the *energy*-dominant pulse even though RESET draws more current.
type EnergyModel struct {
	SetEnergy   float64 // energy of one SET pulse, arbitrary units
	ResetEnergy float64 // energy of one RESET pulse, same units
}

// EnergyModelFor derives the first-order current-times-time energy model
// from device parameters, in units of (SET current) x nanoseconds.
func EnergyModelFor(p Params) EnergyModel {
	return EnergyModel{
		SetEnergy:   float64(p.CurrentSet) * p.TSet.Nanoseconds(),
		ResetEnergy: float64(p.CurrentReset) * p.TReset.Nanoseconds(),
	}
}

// WriteEnergy returns the energy of a write that drove the given pulses.
func (m EnergyModel) WriteEnergy(sets, resets int) float64 {
	return float64(sets)*m.SetEnergy + float64(resets)*m.ResetEnergy
}

// TotalEnergy returns the programming energy of all activity in the stats.
func (m EnergyModel) TotalEnergy(s DeviceStats) float64 {
	return float64(s.BitSets)*m.SetEnergy + float64(s.BitResets)*m.ResetEnergy
}

// WorstCaseLineEnergy returns the energy of writing a full line assuming
// every cell is pulsed and (pessimistically) every pulse costs the larger
// of the two pulse energies — the conventional scheme's power model that
// the paper's Observation 1 argues against.
func (m EnergyModel) WorstCaseLineEnergy(p Params) float64 {
	per := m.SetEnergy
	if m.ResetEnergy > per {
		per = m.ResetEnergy
	}
	return per * float64(8*p.LineBytes)
}
