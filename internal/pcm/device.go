package pcm

import (
	"fmt"
	"math/bits"
	"sync"

	"tetriswrite/internal/linestore"
)

// LineAddr identifies one cache-line-sized region of the PCM address
// space: the byte address divided by the line size.
type LineAddr int64

// FaultModel intercepts the array's cell-level behaviour: writes land
// through it (so stuck or transiently failed cells keep their old
// values) and reads observe stuck bits. internal/fault provides the
// deterministic implementation; a nil model is the ideal device.
type FaultModel interface {
	// ApplyWrite mutates want in place to the image that actually lands
	// when programming a line whose stored contents are old.
	ApplyWrite(addr LineAddr, old, want []byte)
	// ApplyRead forces stuck cells to their stuck values in data.
	ApplyRead(addr LineAddr, data []byte)
}

// Device is the stateful PCM array: the stored contents of every line plus
// energy and wear accounting. Contents are stored sparsely; untouched
// lines read as all zeros, matching a freshly RESET array.
//
// Lines live inline in a sharded open-addressing store as little-endian
// uint64 words, so the diff/popcount accounting in WriteLine runs on
// eight word XORs instead of sixty-four byte operations and the line
// state costs the garbage collector nothing per line.
//
// Device is safe for concurrent use; the full-system simulator services
// several banks from one device, and parallel experiment sweeps share
// read-only parameters but never a Device.
type Device struct {
	params Params

	mu    sync.Mutex
	lines *linestore.Store
	stats DeviceStats
	wear  *WearTracker // optional per-line wear accounting
	fault FaultModel   // optional cell-failure model (nil = ideal device)

	// scratch buffers for the byte-facing fault-model bridge; guarded by
	// mu like the store itself.
	oldBuf, newBuf []byte
}

// DeviceStats aggregates programming activity on a device. All counters
// are cumulative since construction.
type DeviceStats struct {
	LineReads   int64 // cache-line read operations
	LineWrites  int64 // cache-line write operations
	BitSets     int64 // SET pulses actually driven
	BitResets   int64 // RESET pulses actually driven
	BitsWritten int64 // BitSets + BitResets
	BitsSkipped int64 // cells covered by a write whose value was unchanged
}

// NewDevice creates an empty device with the given parameters, which must
// validate.
func NewDevice(p Params) (*Device, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Device{
		params: p,
		lines:  linestore.NewStore(linestore.Words(p.LineBytes)),
		oldBuf: make([]byte, p.LineBytes),
		newBuf: make([]byte, p.LineBytes),
	}, nil
}

// MustNewDevice is NewDevice for known-good parameters, panicking on
// error. It exists for tests and examples.
func MustNewDevice(p Params) *Device {
	d, err := NewDevice(p)
	if err != nil {
		panic(err)
	}
	return d
}

// Params returns the device configuration.
func (d *Device) Params() Params { return d.params }

func (d *Device) checkAddr(addr LineAddr) {
	if addr < 0 || int64(addr) >= d.params.Lines() {
		panic(fmt.Sprintf("pcm: line address %d out of range [0, %d)", addr, d.params.Lines()))
	}
}

// StoreOccupancy reports the line store's footprint for telemetry:
// distinct lines stored, slot capacity, and load factor.
func (d *Device) StoreOccupancy() (lines, capacity int, load float64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.lines.Len(), d.lines.Capacity(), d.lines.LoadFactor()
}

// ReserveLines pre-sizes the cell store for about n distinct lines,
// capped to the device's address space. Callers that know the
// workload's footprint (system.Run) use it to skip the store's
// cold-start rehash ladder; it never changes stored contents.
func (d *Device) ReserveLines(n int64) {
	if max := d.params.Lines(); n > max {
		n = max
	}
	if n <= 0 || n > int64(1)<<31 {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.lines.Reserve(int(n))
}

// ReadLine copies the stored contents of addr into dst, which must be
// exactly one line long. It counts as one array read.
func (d *Device) ReadLine(addr LineAddr, dst []byte) {
	d.checkAddr(addr)
	if len(dst) != d.params.LineBytes {
		panic("pcm: ReadLine buffer size mismatch")
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.stats.LineReads++
	d.peekLocked(addr, dst)
}

// PeekLine is ReadLine without the statistics side effect, for checkers
// and debug output.
func (d *Device) PeekLine(addr LineAddr, dst []byte) {
	d.checkAddr(addr)
	if len(dst) != d.params.LineBytes {
		panic("pcm: PeekLine buffer size mismatch")
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.peekLocked(addr, dst)
}

func (d *Device) peekLocked(addr LineAddr, dst []byte) {
	if stored := d.lines.Get(int64(addr)); stored != nil {
		linestore.UnpackLine(dst, stored)
	} else {
		for i := range dst {
			dst[i] = 0
		}
	}
	if d.fault != nil {
		d.fault.ApplyRead(addr, dst)
	}
}

// WriteLine stores data at addr and accounts for the pulses a
// content-aware write driver would emit: only cells whose value changes
// are counted as SET or RESET pulses, the rest are skipped (the paper's
// PROG-enable gating). It returns the number of SET and RESET pulses.
//
// With a fault model attached, the counted pulses are the ones the
// driver *attempts* (they cost time, energy and wear whether or not the
// cell switches) but the stored image is what the model lets land: stuck
// cells keep their stuck values and transiently failed pulses leave the
// old bit in place, for verify-retry to catch.
//
// WriteLine models only the array state and energy; service *time* is the
// business of the write schemes, which call this after planning.
func (d *Device) WriteLine(addr LineAddr, data []byte) (sets, resets int) {
	d.checkAddr(addr)
	if len(data) != d.params.LineBytes {
		panic("pcm: WriteLine buffer size mismatch")
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	stored := d.lines.Ensure(int64(addr))
	if d.fault == nil {
		// Common case: diff and store entirely in words. The loop is
		// eight XOR+popcount pairs for a 64-byte line.
		n := len(data) / 8
		for i := 0; i < n; i++ {
			w := uint64(data[i*8]) | uint64(data[i*8+1])<<8 |
				uint64(data[i*8+2])<<16 | uint64(data[i*8+3])<<24 |
				uint64(data[i*8+4])<<32 | uint64(data[i*8+5])<<40 |
				uint64(data[i*8+6])<<48 | uint64(data[i*8+7])<<56
			old := stored[i]
			diff := old ^ w
			sets += bits.OnesCount64(diff & w)
			resets += bits.OnesCount64(diff & old)
			stored[i] = w
		}
		for i := n * 8; i < len(data); i++ { // tail when LineBytes % 8 != 0
			wi, sh := i/8, uint(8*(i&7))
			oldB := byte(stored[wi] >> sh)
			diff := oldB ^ data[i]
			sets += bits.OnesCount8(diff & data[i])
			resets += bits.OnesCount8(diff & oldB)
			stored[wi] = stored[wi]&^(0xFF<<sh) | uint64(data[i])<<sh
		}
	} else {
		// Fault path: the model works on bytes, so bridge through the
		// device-owned scratch buffers (no per-write allocation).
		old, landed := d.oldBuf, d.newBuf
		linestore.UnpackLine(old, stored)
		copy(landed, data)
		for i := range data {
			diff := old[i] ^ data[i]
			sets += bits.OnesCount8(diff & data[i])
			resets += bits.OnesCount8(diff & old[i])
		}
		d.fault.ApplyWrite(addr, old, landed)
		linestore.PackLine(stored, landed)
	}
	d.stats.LineWrites++
	d.stats.BitSets += int64(sets)
	d.stats.BitResets += int64(resets)
	d.stats.BitsWritten += int64(sets + resets)
	d.stats.BitsSkipped += int64(8*d.params.LineBytes - sets - resets)
	if d.wear != nil {
		d.wear.Record(addr, sets+resets)
	}
	return sets, resets
}

// AttachWear routes per-line bit-write counts into a wear tracker — the
// raw material of endurance experiments. Pass nil to detach.
func (d *Device) AttachWear(w *WearTracker) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.wear = w
}

// AttachFaults installs a cell-failure model on the device's read and
// write paths. Pass nil to restore the ideal device. Attach before the
// first write: the model sees only transitions that happen after it.
func (d *Device) AttachFaults(f FaultModel) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.fault = f
}

// Preload installs a line's contents without any statistics side
// effects. Simulators use it to set up a workload's initial memory image
// before timing starts; a nil or all-zero data leaves the line untouched
// PCM (the default).
func (d *Device) Preload(addr LineAddr, data []byte) {
	d.checkAddr(addr)
	if data == nil {
		return
	}
	if len(data) != d.params.LineBytes {
		panic("pcm: Preload buffer size mismatch")
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	linestore.PackLine(d.lines.Ensure(int64(addr)), data)
}

// Stats returns a snapshot of the device counters.
func (d *Device) Stats() DeviceStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// TouchedLines reports how many distinct lines have ever been written,
// i.e. the sparse footprint of the device.
func (d *Device) TouchedLines() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.lines.Len()
}
