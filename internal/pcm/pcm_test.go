package pcm

import (
	"math/rand"
	"testing"
	"testing/quick"

	"tetriswrite/internal/bitutil"
	"tetriswrite/internal/units"
)

func TestDefaultParamsValidate(t *testing.T) {
	p := DefaultParams()
	if err := p.Validate(); err != nil {
		t.Fatalf("DefaultParams does not validate: %v", err)
	}
}

func TestDefaultParamsDerived(t *testing.T) {
	p := DefaultParams()
	if got := p.WriteUnitBytes(); got != 8 {
		t.Errorf("WriteUnitBytes = %d, want 8", got)
	}
	if got := p.DataUnits(); got != 8 {
		t.Errorf("DataUnits = %d, want 8", got)
	}
	if got := p.K(); got != 8 {
		t.Errorf("K = %d, want 8 (430/53)", got)
	}
	if got := p.L(); got != 2 {
		t.Errorf("L = %d, want 2", got)
	}
	if got := p.BankBudget(); got != 128 {
		t.Errorf("BankBudget = %d, want 128", got)
	}
	if got := p.MaxConcurrentSets(); got != 32 {
		t.Errorf("MaxConcurrentSets = %d, want 32", got)
	}
	if got := p.MaxConcurrentResets(); got != 16 {
		t.Errorf("MaxConcurrentResets = %d, want 16", got)
	}
	if got := p.Lines(); got != (4<<30)/64 {
		t.Errorf("Lines = %d, want %d", got, (4<<30)/64)
	}
}

func TestParamsValidateRejectsBadConfigs(t *testing.T) {
	mutations := []struct {
		name string
		mut  func(*Params)
	}{
		{"zero line", func(p *Params) { p.LineBytes = 0 }},
		{"zero chips", func(p *Params) { p.NumChips = 0 }},
		{"odd chip width", func(p *Params) { p.ChipWidthBits = 12 }},
		{"wide chip", func(p *Params) { p.ChipWidthBits = 32 }},
		{"zero banks", func(p *Params) { p.NumBanks = 0 }},
		{"zero capacity", func(p *Params) { p.CapacityBytes = 0 }},
		{"zero tread", func(p *Params) { p.TRead = 0 }},
		{"set faster than reset", func(p *Params) { p.TSet = p.TReset - 1 }},
		{"cset not unit", func(p *Params) { p.CurrentSet = 2 }},
		{"tiny budget", func(p *Params) { p.ChipBudget = 1 }},
		{"line not multiple of write unit", func(p *Params) { p.LineBytes = 60 }},
		{"capacity not line multiple", func(p *Params) { p.CapacityBytes = 100 }},
		{"no clock", func(p *Params) { p.MemClock = units.Clock{} }},
	}
	for _, m := range mutations {
		p := DefaultParams()
		m.mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid params", m.name)
		}
	}
}

func TestDeviceZeroFill(t *testing.T) {
	d := MustNewDevice(DefaultParams())
	buf := make([]byte, 64)
	for i := range buf {
		buf[i] = 0xFF
	}
	d.ReadLine(42, buf)
	for i, b := range buf {
		if b != 0 {
			t.Fatalf("fresh line byte %d = %#x, want 0", i, b)
		}
	}
}

func TestDeviceWriteReadRoundTrip(t *testing.T) {
	d := MustNewDevice(DefaultParams())
	rng := rand.New(rand.NewSource(7))
	want := make([]byte, 64)
	rng.Read(want)
	d.WriteLine(99, want)
	got := make([]byte, 64)
	d.ReadLine(99, got)
	if bitutil.HammingBytes(want, got) != 0 {
		t.Fatal("read back differs from written data")
	}
}

func TestDevicePulseAccounting(t *testing.T) {
	d := MustNewDevice(DefaultParams())
	line := make([]byte, 64)
	line[0] = 0x0F // 4 sets from the all-zero state
	sets, resets := d.WriteLine(0, line)
	if sets != 4 || resets != 0 {
		t.Fatalf("first write: sets=%d resets=%d, want 4, 0", sets, resets)
	}
	line[0] = 0xF1 // 0x0F -> 0xF1: sets bits 4..7 (4), resets bits 1..3 (3)
	sets, resets = d.WriteLine(0, line)
	if sets != 4 || resets != 3 {
		t.Fatalf("second write: sets=%d resets=%d, want 4, 3", sets, resets)
	}
	st := d.Stats()
	if st.LineWrites != 2 || st.BitSets != 8 || st.BitResets != 3 {
		t.Fatalf("stats = %+v, want 2 writes, 8 sets, 3 resets", st)
	}
	if st.BitsWritten != 11 {
		t.Fatalf("BitsWritten = %d, want 11", st.BitsWritten)
	}
	if st.BitsSkipped != 2*64*8-11 {
		t.Fatalf("BitsSkipped = %d, want %d", st.BitsSkipped, 2*64*8-11)
	}
}

// Property: for any sequence of writes, pulse counts per write equal the
// Hamming distance between old and new contents, and the device always
// stores the last write.
func TestDevicePulsesMatchHamming(t *testing.T) {
	d := MustNewDevice(DefaultParams())
	prev := make([]byte, 64)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		next := make([]byte, 64)
		rng.Read(next)
		wantPulses := bitutil.HammingBytes(prev, next)
		sets, resets := d.WriteLine(5, next)
		if sets+resets != wantPulses {
			return false
		}
		got := make([]byte, 64)
		d.PeekLine(5, got)
		if bitutil.HammingBytes(got, next) != 0 {
			return false
		}
		copy(prev, next)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDeviceAddressRangePanics(t *testing.T) {
	d := MustNewDevice(DefaultParams())
	buf := make([]byte, 64)
	for _, addr := range []LineAddr{-1, LineAddr(d.Params().Lines())} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("addr %d: expected panic", addr)
				}
			}()
			d.ReadLine(addr, buf)
		}()
	}
}

func TestDeviceTouchedLines(t *testing.T) {
	d := MustNewDevice(DefaultParams())
	line := make([]byte, 64)
	line[0] = 1
	d.WriteLine(1, line)
	d.WriteLine(2, line)
	d.WriteLine(1, line)
	if got := d.TouchedLines(); got != 2 {
		t.Errorf("TouchedLines = %d, want 2", got)
	}
}

func TestEnergyModelDefaults(t *testing.T) {
	p := DefaultParams()
	m := EnergyModelFor(p)
	if m.SetEnergy != 430 {
		t.Errorf("SetEnergy = %v, want 430 (1 x 430ns)", m.SetEnergy)
	}
	if m.ResetEnergy != 106 {
		t.Errorf("ResetEnergy = %v, want 106 (2 x 53ns)", m.ResetEnergy)
	}
	if got := m.WriteEnergy(2, 3); got != 2*430+3*106 {
		t.Errorf("WriteEnergy(2,3) = %v, want %v", got, 2*430+3*106)
	}
	worst := m.WorstCaseLineEnergy(p)
	if worst != 430*512 {
		t.Errorf("WorstCaseLineEnergy = %v, want %v", worst, 430*512)
	}
}

func TestEnergyTotalMatchesStats(t *testing.T) {
	p := DefaultParams()
	m := EnergyModelFor(p)
	s := DeviceStats{BitSets: 10, BitResets: 4}
	if got := m.TotalEnergy(s); got != 10*430+4*106 {
		t.Errorf("TotalEnergy = %v", got)
	}
}

func TestWearTracker(t *testing.T) {
	w := NewWearTracker()
	w.Record(1, 5)
	w.Record(1, 3)
	w.Record(2, 10)
	w.Record(3, 0) // no-op
	s := w.Summary()
	if s.TotalBitWrites != 18 {
		t.Errorf("TotalBitWrites = %d, want 18", s.TotalBitWrites)
	}
	if s.TouchedLines != 2 {
		t.Errorf("TouchedLines = %d, want 2", s.TouchedLines)
	}
	if s.MaxLineWear != 10 {
		t.Errorf("MaxLineWear = %d, want 10", s.MaxLineWear)
	}
	if s.MeanLineWear != 9 {
		t.Errorf("MeanLineWear = %v, want 9", s.MeanLineWear)
	}
	if w.LineWear(1) != 8 {
		t.Errorf("LineWear(1) = %d, want 8", w.LineWear(1))
	}
}

func TestDeviceConcurrency(t *testing.T) {
	d := MustNewDevice(DefaultParams())
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			buf := make([]byte, 64)
			for i := 0; i < 100; i++ {
				buf[0] = byte(i)
				d.WriteLine(LineAddr(g), buf)
				d.ReadLine(LineAddr(g), buf)
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	if got := d.Stats().LineWrites; got != 400 {
		t.Errorf("LineWrites = %d, want 400", got)
	}
}

func TestBurstReadTiming(t *testing.T) {
	p := DefaultParams()
	if got := p.ReadServiceTime(); got != p.TRead {
		t.Errorf("flat read service = %v, want TRead %v", got, p.TRead)
	}
	p.BurstBytes = 8 // 8 beats for a 64 B line at 2.5ns each
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	want := p.TRead + p.MemClock.Cycles(8)
	if got := p.ReadServiceTime(); got != want {
		t.Errorf("burst read service = %v, want %v", got, want)
	}
	p.BurstBytes = 7
	if err := p.Validate(); err == nil {
		t.Error("indivisible burst size accepted")
	}
	p.BurstBytes = -1
	if err := p.Validate(); err == nil {
		t.Error("negative burst size accepted")
	}
}

func TestPreloadAndAttachWear(t *testing.T) {
	d := MustNewDevice(DefaultParams())
	w := NewWearTracker()
	d.AttachWear(w)
	// Preload installs contents without stats or wear.
	img := make([]byte, 64)
	img[0] = 0x42
	d.Preload(7, img)
	buf := make([]byte, 64)
	d.PeekLine(7, buf)
	if buf[0] != 0x42 {
		t.Fatal("Preload did not install contents")
	}
	if d.Stats().LineWrites != 0 || w.Summary().TotalBitWrites != 0 {
		t.Error("Preload produced stats or wear")
	}
	// nil preload is a no-op.
	d.Preload(8, nil)
	// Size mismatch panics.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("short Preload did not panic")
			}
		}()
		d.Preload(9, []byte{1})
	}()
	// Writes now record wear.
	d.WriteLine(7, make([]byte, 64)) // clears the set bit: pulses
	if w.Summary().TotalBitWrites == 0 {
		t.Error("AttachWear recorded nothing")
	}
	before := w.LineWear(7)
	d.AttachWear(nil)
	d.WriteLine(7, img)
	if w.LineWear(7) != before {
		t.Error("detached tracker still recording")
	}
}

func TestNewDeviceRejectsBadParams(t *testing.T) {
	p := DefaultParams()
	p.LineBytes = 0
	if _, err := NewDevice(p); err == nil {
		t.Error("invalid params accepted")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("MustNewDevice did not panic")
			}
		}()
		MustNewDevice(p)
	}()
}

func TestPeekLineSizeMismatchPanics(t *testing.T) {
	d := MustNewDevice(DefaultParams())
	defer func() {
		if recover() == nil {
			t.Error("short PeekLine buffer did not panic")
		}
	}()
	d.PeekLine(0, make([]byte, 8))
}

func TestKFloorsAtOne(t *testing.T) {
	p := DefaultParams()
	p.TReset = p.TSet // degenerate: no time asymmetry
	if got := p.K(); got != 1 {
		t.Errorf("K = %d, want 1", got)
	}
}

func TestWorstCaseEnergyResetDominant(t *testing.T) {
	// If RESET were the pricier pulse, the worst case uses it.
	m := EnergyModel{SetEnergy: 10, ResetEnergy: 20}
	p := DefaultParams()
	if got := m.WorstCaseLineEnergy(p); got != 20*512 {
		t.Errorf("WorstCaseLineEnergy = %v, want %v", got, 20*512)
	}
}
