// Package pcm models the Phase Change Memory device that every write
// scheme in this repository programs: its geometry (chips, banks, write
// units), its timing and power asymmetries, its stored contents, and its
// energy/wear accounting.
//
// The model follows the Samsung prototype the paper builds on: a memory
// bank made of four x16 SLC PCM chips, an 8-byte write unit per bank
// (2 bytes per chip), and the three PCM asymmetries:
//
//   - time: a SET pulse (crystallize, write '1') takes ~8x longer than a
//     RESET pulse (amorphize, write '0');
//   - power: a RESET pulse draws ~2x the current of a SET pulse;
//   - count: real workloads change few bits per 64-bit data unit and most
//     changed bits are SETs.
package pcm

import (
	"errors"
	"fmt"

	"tetriswrite/internal/units"
)

// Params describes one PCM main-memory configuration. The zero value is
// not usable; start from DefaultParams and override fields as needed, then
// call Validate.
type Params struct {
	// Geometry.
	LineBytes     int // cache-line (write request) size in bytes, typ. 64
	NumChips      int // chips per bank, typ. 4
	ChipWidthBits int // data width of one chip, typ. 16 (x16 parts)
	NumBanks      int // banks per rank
	CapacityBytes int64

	// Timing.
	TRead  units.Duration // array read latency
	TReset units.Duration // RESET (write '0') pulse length
	TSet   units.Duration // SET (write '1') pulse length
	// BurstBytes, when positive, models the prototype's synchronous
	// burst-read interface: after the TRead array access, the line
	// streams out over the bus in BurstBytes beats, one memory-clock
	// cycle each. Zero disables burst modelling (the paper's evaluation
	// charges a flat TRead).
	BurstBytes int

	// Power, expressed in units of one SET pulse's current draw.
	CurrentSet       int  // current of one SET pulse, by definition 1
	CurrentReset     int  // current of one RESET pulse, the paper's L (typ. 2)
	ChipBudget       int  // per-chip instantaneous budget in CurrentSet units
	GlobalChargePump bool // GCP: chips may borrow unused budget bank-wide

	// MemClock is the memory bus clock; scheme control FSMs are driven by
	// it, and the Tetris analysis overhead is quoted in its cycles.
	MemClock units.Clock
}

// DefaultParams returns the configuration of the paper's Table II: 64 B
// lines, four x16 chips per bank, 8 banks, 4 GB, 50/53/430 ns
// read/RESET/SET, RESET current twice SET current, and a per-chip budget
// of 32 SET-currents (so 32 concurrent SETs or 16 concurrent RESETs per
// chip; 128 and 64 per bank).
func DefaultParams() Params {
	return Params{
		LineBytes:        64,
		NumChips:         4,
		ChipWidthBits:    16,
		NumBanks:         8,
		CapacityBytes:    4 << 30,
		TRead:            50 * units.Nanosecond,
		TReset:           53 * units.Nanosecond,
		TSet:             430 * units.Nanosecond,
		CurrentSet:       1,
		CurrentReset:     2,
		ChipBudget:       32,
		GlobalChargePump: true,
		MemClock:         units.NewClock(400e6),
	}
}

// Validate checks internal consistency of the parameters.
func (p Params) Validate() error {
	switch {
	case p.LineBytes <= 0:
		return errors.New("pcm: LineBytes must be positive")
	case p.NumChips <= 0:
		return errors.New("pcm: NumChips must be positive")
	case p.ChipWidthBits <= 0 || p.ChipWidthBits%8 != 0:
		return errors.New("pcm: ChipWidthBits must be a positive multiple of 8")
	case p.ChipWidthBits > 16:
		return errors.New("pcm: ChipWidthBits above 16 not supported by the bit-slicing model")
	case p.NumBanks <= 0:
		return errors.New("pcm: NumBanks must be positive")
	case p.CapacityBytes <= 0:
		return errors.New("pcm: CapacityBytes must be positive")
	case p.TRead <= 0 || p.TReset <= 0 || p.TSet <= 0:
		return errors.New("pcm: all timing parameters must be positive")
	case p.TSet < p.TReset:
		return errors.New("pcm: TSet must be >= TReset (PCM time asymmetry)")
	case p.CurrentSet != 1:
		return errors.New("pcm: CurrentSet must be 1 (budget is quoted in SET currents)")
	case p.CurrentReset < 1:
		return errors.New("pcm: CurrentReset must be >= 1")
	case p.ChipBudget < p.CurrentReset:
		return errors.New("pcm: ChipBudget too small to RESET even one cell")
	}
	if p.LineBytes%(p.NumChips*p.ChipWidthBits/8) != 0 {
		return fmt.Errorf("pcm: LineBytes (%d) must be a multiple of the bank write-unit size (%d)",
			p.LineBytes, p.WriteUnitBytes())
	}
	if p.CapacityBytes%int64(p.LineBytes) != 0 {
		return errors.New("pcm: CapacityBytes must be a multiple of LineBytes")
	}
	if (p.MemClock == units.Clock{}) {
		return errors.New("pcm: MemClock must be set")
	}
	if p.BurstBytes < 0 {
		return errors.New("pcm: BurstBytes must be non-negative")
	}
	if p.BurstBytes > 0 && p.LineBytes%p.BurstBytes != 0 {
		return errors.New("pcm: LineBytes must be a multiple of BurstBytes")
	}
	return nil
}

// ReadServiceTime returns the full service time of a line read: the
// array access plus, when burst modelling is enabled, the bus transfer
// beats.
func (p Params) ReadServiceTime() units.Duration {
	t := p.TRead
	if p.BurstBytes > 0 {
		beats := int64(p.LineBytes / p.BurstBytes)
		t += p.MemClock.Cycles(beats)
	}
	return t
}

// WriteUnitBytes returns the number of bytes one bank programs in parallel
// under the conventional scheme: NumChips * ChipWidthBits / 8 (8 B in the
// default configuration).
func (p Params) WriteUnitBytes() int { return p.NumChips * p.ChipWidthBits / 8 }

// DataUnits returns the number of data units (write units) a cache-line
// write is divided into: LineBytes / WriteUnitBytes (8 by default). The
// paper calls this N/M.
func (p Params) DataUnits() int { return p.LineBytes / p.WriteUnitBytes() }

// K returns the paper's time-asymmetry ratio Tset/Treset, rounded down to
// a whole number of sub-write-units (8 with the default 430/53 ns).
func (p Params) K() int {
	k := int(p.TSet / p.TReset)
	if k < 1 {
		k = 1
	}
	return k
}

// L returns the paper's power-asymmetry ratio Creset/Cset.
func (p Params) L() int { return p.CurrentReset / p.CurrentSet }

// BankBudget returns the instantaneous power budget of a whole bank, in
// SET-current units.
func (p Params) BankBudget() int { return p.ChipBudget * p.NumChips }

// Lines returns the number of cache lines the device stores.
func (p Params) Lines() int64 { return p.CapacityBytes / int64(p.LineBytes) }

// MaxConcurrentSets returns how many SET pulses one chip may drive at
// once.
func (p Params) MaxConcurrentSets() int { return p.ChipBudget / p.CurrentSet }

// MaxConcurrentResets returns how many RESET pulses one chip may drive at
// once.
func (p Params) MaxConcurrentResets() int { return p.ChipBudget / p.CurrentReset }
