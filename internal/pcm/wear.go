package pcm

import "sync"

// WearTracker records per-line bit-write counts, the quantity PCM
// endurance is measured in. The paper's Table I claims Tetris Write, like
// Flip-N-Write and Three-Stage-Write, reduces energy *and* wear because it
// inherits read-before-write + inversion coding; the tracker lets the
// test suite and the ablation benches quantify that.
//
// Tracking is sparse and optional: attach one to the write path only when
// an experiment asks for endurance numbers.
type WearTracker struct {
	mu    sync.Mutex
	wear  map[LineAddr]int64
	total int64
}

// NewWearTracker returns an empty tracker.
func NewWearTracker() *WearTracker {
	return &WearTracker{wear: make(map[LineAddr]int64)}
}

// Record adds bit-writes to a line's wear count.
func (w *WearTracker) Record(addr LineAddr, bitWrites int) {
	if bitWrites == 0 {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.wear[addr] += int64(bitWrites)
	w.total += int64(bitWrites)
}

// WearSummary describes the wear distribution across touched lines.
type WearSummary struct {
	TotalBitWrites int64
	TouchedLines   int
	MaxLineWear    int64
	MeanLineWear   float64
}

// Summary computes the current wear distribution.
func (w *WearTracker) Summary() WearSummary {
	w.mu.Lock()
	defer w.mu.Unlock()
	s := WearSummary{TotalBitWrites: w.total, TouchedLines: len(w.wear)}
	for _, v := range w.wear {
		if v > s.MaxLineWear {
			s.MaxLineWear = v
		}
	}
	if len(w.wear) > 0 {
		s.MeanLineWear = float64(w.total) / float64(len(w.wear))
	}
	return s
}

// LineWear returns the wear of one line.
func (w *WearTracker) LineWear(addr LineAddr) int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.wear[addr]
}
