package tetris

import "testing"

// FuzzPack hammers the packer over arbitrary (budget, K, costs, needs)
// — including the non-cost-multiple needs that once drove the split
// regime into an unbounded loop — asserting Pack terminates and
// Validate accepts its output.
func FuzzPack(f *testing.F) {
	f.Add(32, 8, 1, 2, 0, false, []byte{8, 7, 7, 6, 6, 6, 5, 3}, []byte{0, 2, 2, 4, 6, 4, 4, 10})
	f.Add(12, 2, 5, 1, 0, false, []byte{37}, []byte{0})            // sub-cost remainder, write-1
	f.Add(12, 2, 1, 5, 0, false, []byte{0}, []byte{37})            // sub-cost remainder, write-0
	f.Add(9, 3, 4, 7, 1, true, []byte{22, 3, 11}, []byte{15, 8, 23})
	f.Add(1, 1, 1, 1, 0, false, []byte{255}, []byte{255})
	f.Fuzz(func(t *testing.T, budget, k, cost1, cost0, minResult int, arrival bool, raw1, raw0 []byte) {
		// Clamp to the packer's documented domain: positive budget/K and
		// a budget of at least one cell of either kind (smaller budgets
		// panic by contract). Bound sizes so the fuzzer explores shapes,
		// not memory limits.
		budget = 1 + abs(budget)%256
		k = 1 + abs(k)%16
		cost1 = 1 + abs(cost1)%16
		cost0 = 1 + abs(cost0)%16
		if budget < cost1 {
			budget = cost1
		}
		if budget < cost0 {
			budget = cost0
		}
		minResult = abs(minResult) % 4
		if len(raw1) > 24 {
			raw1 = raw1[:24]
		}
		n := len(raw1)
		if len(raw0) > n {
			raw0 = raw0[:n]
		}
		in1 := make([]int, n)
		in0 := make([]int, n)
		for i := 0; i < n; i++ {
			in1[i] = int(raw1[i])
			if i < len(raw0) {
				in0[i] = int(raw0[i])
			}
		}
		pk := Packer{Budget: budget, K: k, Cost1: cost1, Cost0: cost0,
			MinResult: minResult, ArrivalOrder: arrival}
		s := pk.Pack(in1, in0)
		if err := s.Validate(pk, in1, in0); err != nil {
			t.Fatalf("pk=%+v in1=%v in0=%v: %v", pk, in1, in0, err)
		}
		if s.Result < minResult {
			t.Fatalf("Result %d below MinResult %d", s.Result, minResult)
		}
	})
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
