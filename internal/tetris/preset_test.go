package tetris

import (
	"math/rand"
	"testing"

	"tetriswrite/internal/pcm"
	"tetriswrite/internal/schemes"
)

func TestTetrisImplementsPresetter(t *testing.T) {
	var s schemes.Scheme = New(pcm.DefaultParams())
	if _, ok := s.(schemes.Presetter); !ok {
		t.Fatal("tetris does not implement schemes.Presetter")
	}
}

// TestPlanPresetCorrectness: the preset plan must validate, respect the
// budget, and leave the array storing logical all-ones; the following
// write must then be pure RESETs.
func TestPlanPresetCorrectness(t *testing.T) {
	par := pcm.DefaultParams()
	s := New(par).(*scheme)
	arr := schemes.NewArray(par)
	rng := rand.New(rand.NewSource(15))
	old := make([]byte, 64)
	want := make([]byte, 64)
	ones := make([]byte, 64)
	for i := range ones {
		ones[i] = 0xFF
	}
	const addr = pcm.LineAddr(3)
	for trial := 0; trial < 50; trial++ {
		// A few normal writes first, to scatter flip state.
		copy(want, old)
		rng.Read(want[:16])
		plan := s.PlanWrite(addr, old, want)
		if err := arr.CheckWrite(addr, plan, want); err != nil {
			t.Fatalf("trial %d write: %v", trial, err)
		}
		copy(old, want)

		// Preset.
		pp := s.PlanPreset(addr, old)
		if err := arr.CheckWrite(addr, pp, ones); err != nil {
			t.Fatalf("trial %d preset: %v", trial, err)
		}
		sets, _ := pp.Counts()
		if sets == 0 && trial > 0 {
			// Only an already-all-SET line presets for free; with random
			// contents that should essentially never happen.
			t.Fatalf("trial %d: preset pulsed no cells", trial)
		}
		copy(old, ones)

		// The next write is RESET-only and needs no full write units.
		copy(want, old)
		for i := 0; i < 10; i++ {
			b := rng.Intn(512)
			want[b/8] &^= 1 << (b % 8) // clear bits: pure RESET work
		}
		plan = s.PlanWrite(addr, old, want)
		if err := arr.CheckWrite(addr, plan, want); err != nil {
			t.Fatalf("trial %d post-preset write: %v", trial, err)
		}
		psets, presets := plan.Counts()
		if psets != 0 {
			t.Fatalf("trial %d: post-preset write needed %d SETs", trial, psets)
		}
		if presets == 0 {
			t.Fatalf("trial %d: post-preset write pulsed nothing", trial)
		}
		if plan.WriteUnits() >= 1 {
			t.Errorf("trial %d: RESET-only write took %.3f write units, want sub-write-units only",
				trial, plan.WriteUnits())
		}
		copy(old, want)
	}
}

// TestPlanPresetIdempotent: presetting an all-ones line costs nothing.
func TestPlanPresetIdempotent(t *testing.T) {
	par := pcm.DefaultParams()
	s := New(par).(*scheme)
	ones := make([]byte, 64)
	for i := range ones {
		ones[i] = 0xFF
	}
	// First preset from zero state costs SETs.
	p1 := s.PlanPreset(7, make([]byte, 64))
	if sets, _ := p1.Counts(); sets != 512 {
		t.Errorf("preset from zeros pulsed %d cells, want 512", sets)
	}
	// Second preset from all-ones costs nothing.
	p2 := s.PlanPreset(7, ones)
	if sets, resets := p2.Counts(); sets+resets != 0 {
		t.Errorf("preset of preset pulsed %d cells, want 0", sets+resets)
	}
	if p2.Write != 0 {
		t.Errorf("idempotent preset has write phase %v", p2.Write)
	}
}
