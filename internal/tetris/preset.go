package tetris

import (
	"tetriswrite/internal/bitutil"
	"tetriswrite/internal/pcm"
	"tetriswrite/internal/schemes"
	"tetriswrite/internal/units"
)

// PlanPreset implements schemes.Presetter: it SETs every currently-RESET
// cell of the line (and clears any inversion tags), leaving the stored
// logical value all-ones. A later write to the line then needs only
// RESET pulses, which Tetris Write packs into a handful of
// sub-write-units — the PreSET effect.
//
// The preset reads first (so only amorphous cells are pulsed), pays no
// analysis overhead (there is nothing to schedule around: only SETs
// exist, and the packer's write-1 pass is the whole analysis), and packs
// the SETs under the same power budget as a normal write.
func (s *scheme) PlanPreset(addr pcm.LineAddr, old []byte) schemes.Plan {
	p := schemes.Plan{
		TSet:         s.par.TSet,
		TReset:       s.par.TReset,
		CurrentSet:   s.par.CurrentSet,
		CurrentReset: s.par.CurrentReset,
		Read:         s.par.TRead,
	}
	// Presets run on the idle path, so they allocate freely — but they
	// still draw the pulse buffer from the arena so plan recycling stays
	// uniform across both plan kinds.
	p.Pulses = s.TakePulses()
	nu := s.par.DataUnits()
	nc := s.par.NumChips
	k := s.par.K()

	// Work out, per chip slice, which cells are amorphous right now and
	// whether the flip cell must clear.
	work := make([][]presetWork, nc)
	flipSlot := s.flips.Ensure(int64(addr))
	flipWord := flipSlot[0]
	mask := bitutil.WidthMask(s.par.ChipWidthBits)
	wb := s.par.ChipWidthBits / 8
	for c := 0; c < nc; c++ {
		work[c] = make([]presetWork, nu)
		for u := 0; u < nu; u++ {
			logicalOld := bitutil.ChipSlice(old, nc, wb, c, u)
			encoded := logicalOld
			flip := flipWord&s.flipBit(c, u) != 0
			if flip {
				encoded = ^logicalOld & mask
			}
			work[c][u] = presetWork{setMask: ^encoded & mask, flipReset: flip}
			flipWord &^= s.flipBit(c, u)
		}
	}
	flipSlot[0] = flipWord

	// Pack the SETs exactly like a normal write's write-1 pass.
	type domain struct {
		chips  []int
		budget int
	}
	var domains []domain
	if s.par.GlobalChargePump {
		all := make([]int, nc)
		for c := range all {
			all[c] = c
		}
		domains = []domain{{chips: all, budget: s.par.BankBudget()}}
	} else {
		for c := 0; c < nc; c++ {
			domains = append(domains, domain{chips: []int{c}, budget: s.par.ChipBudget})
		}
	}
	maxResult := 0
	type emission struct {
		sched Schedule
		dom   domain
	}
	var emissions []emission
	for _, dom := range domains {
		in1 := make([]int, nu)
		for u := 0; u < nu; u++ {
			for _, c := range dom.chips {
				in1[u] += bitutil.PopCount16(work[c][u].setMask) * s.par.CurrentSet
			}
		}
		pk := Packer{Budget: dom.budget, K: k, Cost1: s.par.CurrentSet, Cost0: s.par.CurrentReset}
		sched := pk.Pack(in1, make([]int, nu))
		// Flip-cell RESETs ride in a sub-slot; ensure one exists.
		needFlipSlot := false
		for _, c := range dom.chips {
			for u := 0; u < nu; u++ {
				if work[c][u].flipReset {
					needFlipSlot = true
				}
			}
		}
		if needFlipSlot && sched.Result == 0 && sched.SubResult == 0 {
			sched.SubResult = 1
		}
		if sched.Result > maxResult {
			maxResult = sched.Result
		}
		emissions = append(emissions, emission{sched: sched, dom: dom})
	}
	maxSub := 0
	for _, em := range emissions {
		if em.sched.SubResult > maxSub {
			maxSub = em.sched.SubResult
		}
	}
	pitch := s.par.TSet / units.Duration(k)
	p.Write = units.Duration(maxResult)*s.par.TSet + units.Duration(maxSub)*pitch

	for _, em := range emissions {
		s.emitPreset(&p, em.sched, em.dom.chips, work, pitch)
	}
	p.SortPulses()
	return p
}

// presetWork is one chip slice's preset requirement.
type presetWork struct {
	setMask   uint16
	flipReset bool
}

// cellRef names one cell for the preset emitter (the write path walks
// transition masks directly and no longer materializes cell lists).
type cellRef struct {
	chip int
	bit  int
}

func (s *scheme) emitPreset(p *schemes.Plan, sched Schedule, chips []int, work [][]presetWork, pitch units.Duration) {
	nu := s.par.DataUnits()
	tset := s.par.TSet
	for u := 0; u < nu; u++ {
		// Distribute the domain's SET cells across the allocations, as
		// in a normal write.
		var cells []cellRef
		for _, c := range chips {
			for b := 0; b < 16; b++ {
				if work[c][u].setMask&(1<<b) != 0 {
					cells = append(cells, cellRef{chip: c, bit: b})
				}
			}
		}
		ci := 0
		for _, a := range sched.Write1[u] {
			n := a.Amount / s.par.CurrentSet
			masks := map[int]uint16{}
			for j := 0; j < n; j++ {
				masks[cells[ci].chip] |= 1 << cells[ci].bit
				ci++
			}
			for _, c := range chips {
				if m := masks[c]; m != 0 {
					p.Pulses = append(p.Pulses, schemes.Pulse{
						Chip: c, Unit: u, Kind: schemes.Set,
						Start: units.Duration(a.Slot) * tset, Mask: m,
					})
				}
			}
		}
		// Clear flip cells with a RESET rider in the first available slot.
		for _, c := range chips {
			if !work[c][u].flipReset {
				continue
			}
			var start units.Duration
			if len(sched.Write1[u]) > 0 {
				start = units.Duration(sched.Write1[u][0].Slot) * tset
			} else if sched.Result == 0 && sched.SubResult > 0 {
				start = 0 // first overflow sub-slot
			}
			p.Pulses = append(p.Pulses, schemes.Pulse{
				Chip: c, Unit: u, Kind: schemes.Reset,
				Start: start, FlipCell: true,
			})
		}
	}
	_ = pitch
}
