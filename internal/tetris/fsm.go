package tetris

import (
	"fmt"
	"sort"

	"tetriswrite/internal/units"
)

// This file models the "individually write" stage of Tetris Write: the two
// finite state machines of the paper's Figure 8. FSM1 walks the write-1
// queue, issuing the data-unit select and SET signals once per write unit
// and waiting Tset between steps; FSM0 walks the write-0 queue once per
// sub-write-unit, waiting Treset. The two machines are independent and run
// simultaneously, both driven by the memory clock through internal
// counters.
//
// The executor is deliberately a *different* code path from the plan
// emission in tetris.go: it derives pulse launch times purely by stepping
// slot counters through the queues, so the test suite can check that the
// analysis stage's slot arithmetic and the FSMs' replay agree with each
// other and with Equation 5.

// QueueEntry is one allocation in an FSM queue: data unit Unit launches
// pulses in slot Slot (a write-unit index for FSM1, a global sub-slot
// index for FSM0).
type QueueEntry struct {
	Unit int
	Slot int
}

// Launch records an FSM issuing one queue entry's pulses.
type Launch struct {
	QueueEntry
	At units.Duration // offset from the start of the write phase
}

// fsmState is the machine's position in the Figure 8 loop.
type fsmState int

const (
	fsmInit fsmState = iota
	fsmGetUnits
	fsmWait
	fsmDone
)

// fsm is one of the two write state machines.
type fsm struct {
	queue    []QueueEntry // pending entries, sorted by slot
	slotOf   func(i int) units.Duration
	nSlots   int
	state    fsmState
	slot     int
	now      units.Duration
	launches []Launch
}

// step advances the machine until it next yields (waits for its counter)
// or finishes. It returns the time of its next wake-up.
func (m *fsm) step() {
	switch m.state {
	case fsmInit:
		m.slot = 0
		if m.nSlots == 0 {
			m.state = fsmDone
			return
		}
		m.state = fsmGetUnits
	case fsmGetUnits:
		// Issue MUX select + write signals for every queue entry tagged
		// with the current slot.
		for _, e := range m.queue {
			if e.Slot == m.slot {
				m.launches = append(m.launches, Launch{QueueEntry: e, At: m.now})
			}
		}
		m.state = fsmWait
	case fsmWait:
		// The internal counter expired (counter != T elapsed): move on.
		m.slot++
		if m.slot >= m.nSlots {
			m.state = fsmDone
			return
		}
		m.now = m.slotOf(m.slot)
		m.state = fsmGetUnits
	}
}

// next returns the simulated time of the machine's next action.
func (m *fsm) next() units.Duration {
	if m.state == fsmDone {
		return -1
	}
	return m.now
}

// Execution is the result of replaying a schedule through the FSMs.
type Execution struct {
	Write1 []Launch // FSM1 launches, in issue order
	Write0 []Launch // FSM0 launches, in issue order
	Finish units.Duration
}

// ExecuteFSMs replays a schedule's queues through FSM1 and FSM0 and
// returns every launch with its time. tset is the write-unit pitch and
// pitch the sub-write-unit pitch (Tset/K).
func ExecuteFSMs(s Schedule, tset, pitch units.Duration) Execution {
	var q1, q0 []QueueEntry
	for u, allocs := range s.Write1 {
		for _, a := range allocs {
			q1 = append(q1, QueueEntry{Unit: u, Slot: a.Slot})
		}
	}
	for u, allocs := range s.Write0 {
		for _, a := range allocs {
			q0 = append(q0, QueueEntry{Unit: u, Slot: a.Slot})
		}
	}
	sort.SliceStable(q1, func(i, j int) bool { return q1[i].Slot < q1[j].Slot })
	sort.SliceStable(q0, func(i, j int) bool { return q0[i].Slot < q0[j].Slot })

	totalSub := s.Result*s.K + s.SubResult
	fsm1 := &fsm{
		queue:  q1,
		nSlots: s.Result,
		slotOf: func(i int) units.Duration { return units.Duration(i) * tset },
	}
	fsm0 := &fsm{
		queue:  q0,
		nSlots: totalSub,
		slotOf: func(i int) units.Duration {
			return subSlotStart(i, s.Result, s.K, tset, pitch)
		},
	}

	// Run both machines to completion, interleaved by wake-up time: the
	// machines are independent, so any fair interleaving is equivalent,
	// but time order keeps the trace readable.
	for fsm1.state != fsmDone || fsm0.state != fsmDone {
		t1, t0 := fsm1.next(), fsm0.next()
		switch {
		case fsm1.state == fsmDone:
			fsm0.step()
		case fsm0.state == fsmDone:
			fsm1.step()
		case t0 < t1:
			fsm0.step()
		default:
			fsm1.step()
		}
	}

	finish := units.Duration(s.Result)*tset + units.Duration(s.SubResult)*pitch
	return Execution{Write1: fsm1.launches, Write0: fsm0.launches, Finish: finish}
}

// CheckAgainst verifies that every launch time matches the slot start the
// analysis stage planned, i.e. the FSM replay and the plan emission agree.
func (e Execution) CheckAgainst(s Schedule, tset, pitch units.Duration) error {
	for _, l := range e.Write1 {
		want := units.Duration(l.Slot) * tset
		if l.At != want {
			return fmt.Errorf("FSM1 launched unit %d slot %d at %v, plan says %v", l.Unit, l.Slot, l.At, want)
		}
	}
	for _, l := range e.Write0 {
		want := subSlotStart(l.Slot, s.Result, s.K, tset, pitch)
		if l.At != want {
			return fmt.Errorf("FSM0 launched unit %d sub-slot %d at %v, plan says %v", l.Unit, l.Slot, l.At, want)
		}
	}
	// Count launches: one per allocation.
	n1, n0 := 0, 0
	for _, a := range s.Write1 {
		n1 += len(a)
	}
	for _, a := range s.Write0 {
		n0 += len(a)
	}
	if len(e.Write1) != n1 || len(e.Write0) != n0 {
		return fmt.Errorf("FSMs launched %d/%d groups, schedule has %d/%d", len(e.Write1), len(e.Write0), n1, n0)
	}
	return nil
}
