package tetris

import (
	"testing"

	"tetriswrite/internal/pcm"
	"tetriswrite/internal/power"
	"tetriswrite/internal/schemes"
	"tetriswrite/internal/units"
)

// profileFromSchedule converts a packer schedule into a power.Profile
// exactly as the emission stage would realize it: write-1 allocations
// hold their write unit's full Tset window (loading all K sub-slots),
// write-0 allocations hold one Treset-long sub-slot. Flip cells do not
// appear — in1/in0 count data cells only, mirroring Pulse.DataBits.
func profileFromSchedule(s Schedule, tset, treset units.Duration) *power.Profile {
	pitch := tset / units.Duration(s.K)
	subStart := func(i int) units.Time {
		if i < s.Result*s.K {
			return units.Time(units.Duration(i/s.K)*tset + units.Duration(i%s.K)*pitch)
		}
		return units.Time(units.Duration(s.Result)*tset + units.Duration(i-s.Result*s.K)*pitch)
	}
	var prof power.Profile
	for _, allocs := range s.Write1 {
		for _, a := range allocs {
			start := units.Time(units.Duration(a.Slot) * tset)
			prof.Add(0, start, start.Add(tset), a.Amount)
		}
	}
	for _, allocs := range s.Write0 {
		for _, a := range allocs {
			start := subStart(a.Slot)
			prof.Add(0, start, start.Add(treset), a.Amount)
		}
	}
	return &prof
}

// Schedule.Validate and the scheme-level power oracle (Profile + Budget,
// fed by Pulse.DataBits) must agree: a schedule Validate accepts realizes
// a pulse train the budget checker accepts, on the paper's own Figure 4
// example and under perturbation in both directions.
func TestValidateMatchesBudgetOracle(t *testing.T) {
	in1 := []int{8, 7, 7, 6, 6, 6, 5, 3}
	in0raw := []int{0, 1, 1, 2, 3, 2, 2, 5}
	in0 := make([]int, len(in0raw))
	for i, v := range in0raw {
		in0[i] = v * 2 // RESET current is twice SET current
	}
	pk := Packer{Budget: 32, K: 8, Cost1: 1, Cost0: 2}
	s := pk.Pack(in1, in0)
	if err := s.Validate(pk, in1, in0); err != nil {
		t.Fatalf("Validate rejects the Figure 4 schedule: %v", err)
	}

	tset := units.Duration(1000)
	treset := tset / units.Duration(pk.K)
	budget := power.Budget{PerChip: pk.Budget, Chips: 1}
	if err := budget.Check(profileFromSchedule(s, tset, treset)); err != nil {
		t.Fatalf("power oracle rejects a Validate-approved schedule: %v", err)
	}
	// The paper's headline number: write unit 1 carries units {1,2,3,4,8}
	// for 8+7+7+6+3 = 31 of the 32 budget.
	if peak := profileFromSchedule(s, tset, treset).PeakTotal(); peak > pk.Budget {
		t.Fatalf("peak draw %d exceeds budget %d", peak, pk.Budget)
	}

	// Misalignment probe: overload one sub-slot past the budget. Both
	// definitions must reject it the same way.
	bad := s
	bad.Write0 = append([][]Alloc(nil), s.Write0...)
	u := 7 // unit 8 carries write-0 current
	bad.Write0[u] = append([]Alloc(nil), s.Write0[u]...)
	bad.Write0[u][0].Amount += pk.Budget // blows the slot, and the sum check
	badIn0 := append([]int(nil), in0...)
	badIn0[u] += pk.Budget // keep the sum check satisfied; leave the overload
	if err := bad.Validate(pk, in1, badIn0); err == nil {
		t.Fatal("Validate accepted an overloaded sub-slot")
	}
	if err := budget.Check(profileFromSchedule(bad, tset, treset)); err == nil {
		t.Fatal("power oracle accepted an overloaded sub-slot")
	}
}

// The flip-cell exemption must be consistent end to end: the packer's
// inputs never include flip cells (Validate cannot see them), and the
// emitted plans charge flip-cell pulses zero budget current via
// Pulse.DataBits — so even writes that flip every unit stay within the
// oracle's budget. The paper's Figure 4 arithmetic (31 data bits < 32,
// with the flip bit on its own driver column) is what both encode.
func TestFlipCellExemptionConsistent(t *testing.T) {
	par := pcm.DefaultParams()
	s := New(par)
	budget := schemes.PowerBudget(par)
	old := make([]byte, par.LineBytes)
	patterns := []byte{0xFF, 0x00, 0xF0, 0xAA, 0x0F}
	flipPulses := 0
	for step, pat := range patterns {
		data := make([]byte, par.LineBytes)
		for i := range data {
			data[i] = pat
		}
		plan := s.PlanWrite(pcm.LineAddr(step), old, data)
		for _, pl := range plan.Pulses {
			if pl.FlipCell {
				flipPulses++
				if pl.DataBits() != pl.Bits()-1 {
					t.Fatalf("flip pulse budget accounting off: DataBits %d, Bits %d", pl.DataBits(), pl.Bits())
				}
			} else if pl.DataBits() != pl.Bits() {
				t.Fatalf("data pulse budget accounting off: DataBits %d, Bits %d", pl.DataBits(), pl.Bits())
			}
		}
		if err := budget.Check(plan.Profile(0)); err != nil {
			t.Fatalf("pattern %#x: plan exceeds budget with flip cells exempt: %v", pat, err)
		}
	}
	if flipPulses == 0 {
		t.Fatal("test patterns produced no flip-cell pulses; exemption untested")
	}
}
