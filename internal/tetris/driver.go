package tetris

import "tetriswrite/internal/schemes"

// This file models the redesigned write driver of the paper's Figure 9.
// The driver receives the 17-bit data-unit word (16 data cells + the flip
// cell) from the DMUX, the stored word from the read buffer, and the
// write signal (SET or RESET) from the FSMs. An XOR gate derives the
// PROG-enable signals — only cells whose stored value differs from the
// incoming value are enabled — and an AND gate combines them with the
// SET/RESET-enable so a cell is pulsed only when both are active.

// DriverInput is everything the write driver sees for one data unit in
// one slot.
type DriverInput struct {
	Stored       uint16            // read-buffer data cells
	Incoming     uint16            // DX data cells (already encoded)
	StoredFlip   bool              // read-buffer flip cell
	IncomingFlip bool              // DX flip cell
	Signal       schemes.PulseKind // write signal from the issuing FSM
}

// DriverOutput is the driver's enable decision: the cells that will
// actually be pulsed this slot.
type DriverOutput struct {
	ProgEnable uint16 // XOR of stored and incoming data cells
	FlipProg   bool   // XOR of the flip cells
	Pulsed     uint16 // data cells pulsed: PROG enable AND kind-enable
	FlipPulsed bool   // flip cell pulsed
}

// Drive computes the driver outputs for one slot. With a SET signal the
// kind-enable selects incoming one-bits; with RESET, incoming zero-bits.
func Drive(in DriverInput) DriverOutput {
	out := DriverOutput{
		ProgEnable: in.Stored ^ in.Incoming,
		FlipProg:   in.StoredFlip != in.IncomingFlip,
	}
	var kindEnable uint16
	var flipKind bool
	if in.Signal == schemes.Set {
		kindEnable = in.Incoming
		flipKind = in.IncomingFlip
	} else {
		kindEnable = ^in.Incoming
		flipKind = !in.IncomingFlip
	}
	out.Pulsed = out.ProgEnable & kindEnable
	out.FlipPulsed = out.FlipProg && flipKind
	return out
}
