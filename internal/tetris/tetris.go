package tetris

import (
	"math/bits"

	"tetriswrite/internal/bitutil"
	"tetriswrite/internal/linestore"
	"tetriswrite/internal/pcm"
	"tetriswrite/internal/schemes"
	"tetriswrite/internal/units"
)

// DefaultAnalysisCycles is the analysis-stage overhead measured by the
// paper's Vivado HLS synthesis of the algorithm: 41 worst-case cycles at
// the 400 MHz memory bus clock.
const DefaultAnalysisCycles = 41

// Options tune the Tetris Write implementation. The zero value is the
// paper's configuration.
type Options struct {
	// AnalysisCycles is the scheduling overhead charged per write, in
	// memory-clock cycles. Zero means DefaultAnalysisCycles; negative
	// means no overhead (an idealized ASIC).
	AnalysisCycles int
	// DisableFlip skips the read stage's inversion coding (ablation).
	// The read itself still happens — Tetris cannot count transitions
	// without it.
	DisableFlip bool
	// ArrivalOrder packs units first-fit in arrival order instead of
	// first-fit-decreasing (ablation).
	ArrivalOrder bool
	// TimeAwareFlip replaces the Hamming-minimizing inversion rule with
	// a schedule-time-minimizing one (SETs weighted by K). Required for
	// PreSET to pay off; see ReadStageTimeAware.
	TimeAwareFlip bool
}

// scheme implements schemes.Scheme.
type scheme struct {
	par   pcm.Params
	opt   Options
	flips *linestore.Store // one word per line: flip tags, bit u*NumChips+c

	// Per-write scratch buffers: PlanWrite sits on every simulated write
	// and schemes are single-owner by contract, so reuse is safe.
	workBuf  []UnitCounts // nc*nu entries, unit-major (index u*nc+c)
	domains  []packDomain
	in1, in0 []int
	maskBuf  []uint16 // per chip
	pack     Scratch
	emitBuf  []emission
	cache    schedCache

	schemes.PulseArena
}

// emission is one packed domain awaiting pulse emission.
type emission struct {
	sched Schedule
	dom   packDomain
}

// packDomain is one power domain handed to the packer.
type packDomain struct {
	chips  []int
	budget int
}

// New returns the Tetris Write scheme with the paper's options.
func New(par pcm.Params) schemes.Scheme { return NewWithOptions(par, Options{}) }

// NewWithOptions returns the Tetris Write scheme with explicit options.
func NewWithOptions(par pcm.Params, opt Options) schemes.Scheme {
	if opt.AnalysisCycles == 0 {
		opt.AnalysisCycles = DefaultAnalysisCycles
	}
	if opt.AnalysisCycles < 0 {
		opt.AnalysisCycles = 0
	}
	return &scheme{par: par, opt: opt, flips: linestore.NewStore(1)}
}

func (s *scheme) Name() string { return "tetris" }

// FlipTags implements schemes.FlipTagReader: the line's inversion tags,
// bit u*NumChips+c, zero when the line was never written.
func (s *scheme) FlipTags(addr pcm.LineAddr) uint64 {
	if w := s.flips.Get(int64(addr)); w != nil {
		return w[0]
	}
	return 0
}
func (s *scheme) NeedsReadBeforeWrite() bool { return true }

// ServiceFloor implements schemes.ServiceFloorer. Tetris compresses the
// write phase by content, so only the fixed read and analysis stages —
// plus one minimum-length pulse when the line changes — can be promised
// ahead of planning.
func (s *scheme) ServiceFloor(changed bool) units.Duration {
	f := s.par.TRead + s.par.MemClock.Cycles(int64(s.opt.AnalysisCycles))
	if changed {
		f += s.par.TReset
	}
	return f
}

func (s *scheme) flipBit(c, u int) uint64 { return 1 << uint(u*s.par.NumChips+c) }

func (s *scheme) PlanWrite(addr pcm.LineAddr, old, new []byte) schemes.Plan {
	p := schemes.Plan{
		TSet:         s.par.TSet,
		TReset:       s.par.TReset,
		CurrentSet:   s.par.CurrentSet,
		CurrentReset: s.par.CurrentReset,
		Read:         s.par.TRead,
		Analysis:     s.par.MemClock.Cycles(int64(s.opt.AnalysisCycles)),
	}
	p.Pulses = s.TakePulses()

	nu := s.par.DataUnits()
	nc := s.par.NumChips
	k := s.par.K()

	// Read stage: per (chip, unit) inversion decisions and counts,
	// unit-major in the reused scratch buffer (index u*nc+c — cell order,
	// so the word-parallel pass below writes it sequentially).
	if len(s.workBuf) != nc*nu {
		s.workBuf = make([]UnitCounts, nc*nu)
	}
	work := s.workBuf
	flipSlot := s.flips.Ensure(int64(addr))
	flipWord := flipSlot[0]
	wbits := s.par.ChipWidthBits
	wb := wbits / 8
	if wb == 2 && nc*nu%4 == 0 && len(old) >= nc*nu*2 {
		// Word-parallel pass for x16 parts: the line's 16-bit chip slices
		// are consecutive little-endian words, so one uint64 load covers
		// cells 4w..4w+3 and one compare skips all four when nothing
		// changed. An unchanged cell always yields zero pulses and an
		// unchanged tag under inversion coding (re-deriving its encoding
		// lands exactly where it already is), so only changed lanes run
		// the per-cell read stage. The flip-tag word shares the cell
		// index, so the lane's tag is one nibble shift away.
		for w := 0; w < nc*nu/4; w++ {
			ow := bitutil.LoadLE64(old, w*8)
			nw := bitutil.LoadLE64(new, w*8)
			base := w * 4
			if ow == nw && (!s.opt.DisableFlip || flipWord>>(uint(base))&0xF == 0) {
				work[base] = UnitCounts{}
				work[base+1] = UnitCounts{}
				work[base+2] = UnitCounts{}
				work[base+3] = UnitCounts{}
				continue
			}
			diff := ow ^ nw
			for lane := 0; lane < 4; lane++ {
				i := base + lane
				bit := uint64(1) << uint(i)
				if diff>>(16*uint(lane))&0xFFFF == 0 && (!s.opt.DisableFlip || flipWord&bit == 0) {
					work[i] = UnitCounts{}
					continue
				}
				logicalOld := uint16(ow >> (16 * uint(lane)))
				logicalNew := uint16(nw >> (16 * uint(lane)))
				stored := bitutil.FlipWord{Bits: logicalOld, Flip: false}
				if flipWord&bit != 0 {
					stored = bitutil.FlipWord{Bits: ^logicalOld, Flip: true}
				}
				var uc UnitCounts
				if s.opt.TimeAwareFlip && !s.opt.DisableFlip {
					uc = ReadStageTimeAware(stored, logicalNew, wbits, k)
				} else {
					uc = ReadStage(stored, logicalNew, wbits, s.opt.DisableFlip)
				}
				work[i] = uc
				if uc.Enc.Flip {
					flipWord |= bit
				} else {
					flipWord &^= bit
				}
			}
		}
	} else {
		for c := 0; c < nc; c++ {
			for u := 0; u < nu; u++ {
				logicalOld := bitutil.ChipSlice(old, nc, wb, c, u)
				logicalNew := bitutil.ChipSlice(new, nc, wb, c, u)
				stored := bitutil.FlipWord{Bits: logicalOld, Flip: false}
				if flipWord&s.flipBit(c, u) != 0 {
					stored = bitutil.FlipWord{Bits: ^logicalOld & bitutil.WidthMask(wbits), Flip: true}
				}
				var uc UnitCounts
				if s.opt.TimeAwareFlip && !s.opt.DisableFlip {
					uc = ReadStageTimeAware(stored, logicalNew, wbits, k)
				} else {
					uc = ReadStage(stored, logicalNew, wbits, s.opt.DisableFlip)
				}
				work[u*nc+c] = uc
				if uc.Enc.Flip {
					flipWord |= s.flipBit(c, u)
				} else {
					flipWord &^= s.flipBit(c, u)
				}
			}
		}
	}
	flipSlot[0] = flipWord

	// Analysis stage: pack each power domain. Under a GCP the whole bank
	// is one domain; otherwise each chip packs against its own pump.
	if s.domains == nil {
		if s.par.GlobalChargePump {
			all := make([]int, nc)
			for c := range all {
				all[c] = c
			}
			s.domains = []packDomain{{chips: all, budget: s.par.BankBudget()}}
		} else {
			for c := 0; c < nc; c++ {
				s.domains = append(s.domains, packDomain{chips: []int{c}, budget: s.par.ChipBudget})
			}
		}
	}
	domains := s.domains

	maxResult, maxSub := 0, 0
	emissions := s.emitBuf[:0]
	s.pack.Reset() // reclaims the schedules of the previous write
	if len(s.in1) != nu {
		s.in1 = make([]int, nu)
		s.in0 = make([]int, nu)
	}
	for _, dom := range domains {
		in1, in0 := s.in1, s.in0
		for u := 0; u < nu; u++ {
			in1[u], in0[u] = 0, 0
			for _, c := range dom.chips {
				in1[u] += work[u*nc+c].N1() * s.par.CurrentSet
				in0[u] += work[u*nc+c].N0() * s.par.CurrentReset
			}
		}
		// Flip-cell SET riders need a Tset-long span even when no data
		// cell SETs: reserve the write unit before packing so the
		// write-0 pass can use its sub-slots.
		minResult := 0
		for u := 0; u < nu && minResult == 0; u++ {
			for _, c := range dom.chips {
				if work[u*nc+c].FlipSet {
					minResult = 1
					break
				}
			}
		}
		pk := Packer{
			Budget:       dom.budget,
			K:            k,
			ArrivalOrder: s.opt.ArrivalOrder,
			Cost1:        s.par.CurrentSet,
			Cost0:        s.par.CurrentReset,
			MinResult:    minResult,
		}
		// Memo cache: many lines (SET-dominant zero fills, repeated
		// stores) reduce to the same packing problem, so the count
		// vector memoizes the whole analysis stage. Pack is a pure
		// function of (pk, in1, in0) and the key covers every varying
		// field, so a hit is bit-identical to repacking. Misses fall
		// through to the scratch arena.
		sched, hit := s.cache.lookup(pk, in1, in0)
		if !hit {
			sched = pk.PackInto(&s.pack, in1, in0)
			s.cache.store(pk, in1, in0, sched)
		}

		// Flip-cell RESET riders only need a Treset-long span.
		for u := 0; u < nu; u++ {
			for _, c := range dom.chips {
				if work[u*nc+c].FlipReset && len(sched.Write0[u]) == 0 &&
					sched.Result == 0 && sched.SubResult == 0 {
					sched.SubResult = 1
				}
			}
		}

		if sched.Result > maxResult {
			maxResult = sched.Result
		}
		if sched.SubResult > maxSub {
			maxSub = sched.SubResult
		}
		emissions = append(emissions, emission{sched: sched, dom: dom})
	}
	s.emitBuf = emissions // keep the grown backing array for the next write

	// Sub-slot pitch: Tset/K, so Equation 5 holds exactly and a RESET
	// pulse (Treset <= Tset/K) always fits its sub-slot.
	pitch := s.par.TSet / units.Duration(k)
	p.Write = units.Duration(maxResult)*s.par.TSet + units.Duration(maxSub)*pitch

	for _, em := range emissions {
		s.emitDomain(&p, em.sched, em.dom.chips, work, pitch)
	}
	p.SortPulses()
	return p
}

// subSlotStart converts a global sub-slot index into a write-phase offset
// for a domain scheduled with the given result.
func subSlotStart(i, result, k int, tset, pitch units.Duration) units.Duration {
	if i < result*k {
		return units.Duration(i/k)*tset + units.Duration(i%k)*pitch
	}
	return units.Duration(result)*tset + units.Duration(i-result*k)*pitch
}

// emitDomain turns one domain's schedule into pulse records.
func (s *scheme) emitDomain(p *schemes.Plan, sched Schedule, chips []int, work []UnitCounts, pitch units.Duration) {
	nu := s.par.DataUnits()
	nc := s.par.NumChips
	k := sched.K
	tset := s.par.TSet
	if len(s.maskBuf) != nc {
		s.maskBuf = make([]uint16, nc)
	}
	masks := s.maskBuf

	for u := 0; u < nu; u++ {
		// Write-1s: distribute the domain's SET cells (chip-major, bit
		// order) across the unit's write-unit allocations. The cursor
		// (ci, rem) walks the per-chip transition masks directly —
		// popcount and lowest-bit clearing replace the old per-bit scan
		// through a materialized cell list, but consume cells in the
		// identical chip-major ascending-bit order.
		ci, rem := -1, uint16(0)
		for _, a := range sched.Write1[u] {
			n := a.Amount / s.par.CurrentSet
			for n > 0 {
				for rem == 0 {
					ci++
					rem = work[u*nc+chips[ci]].Tr.Sets
				}
				avail := bits.OnesCount16(rem)
				if avail <= n {
					masks[chips[ci]] |= rem
					n -= avail
					rem = 0
					continue
				}
				rest := rem
				for j := 0; j < n; j++ {
					rest &= rest - 1 // clear lowest set bit
				}
				masks[chips[ci]] |= rem &^ rest
				rem = rest
				n = 0
			}
			for _, c := range chips {
				if m := masks[c]; m != 0 {
					p.Pulses = append(p.Pulses, schemes.Pulse{
						Chip: c, Unit: u, Kind: schemes.Set,
						Start: units.Duration(a.Slot) * tset, Mask: m,
					})
					masks[c] = 0
				}
			}
		}

		// Write-0s: same, across sub-slot allocations.
		ci, rem = -1, 0
		for _, a := range sched.Write0[u] {
			n := a.Amount / s.par.CurrentReset
			for n > 0 {
				for rem == 0 {
					ci++
					rem = work[u*nc+chips[ci]].Tr.Resets
				}
				avail := bits.OnesCount16(rem)
				if avail <= n {
					masks[chips[ci]] |= rem
					n -= avail
					rem = 0
					continue
				}
				rest := rem
				for j := 0; j < n; j++ {
					rest &= rest - 1
				}
				masks[chips[ci]] |= rem &^ rest
				rem = rest
				n = 0
			}
			start := subSlotStart(a.Slot, sched.Result, k, tset, pitch)
			for _, c := range chips {
				if m := masks[c]; m != 0 {
					p.Pulses = append(p.Pulses, schemes.Pulse{
						Chip: c, Unit: u, Kind: schemes.Reset,
						Start: start, Mask: m,
					})
					masks[c] = 0
				}
			}
		}

		// Flip cells: zero-budget riders placed in the unit's first slot
		// of the matching kind, or the domain's first slot if the unit
		// has no data pulses of that kind.
		for _, c := range chips {
			uc := work[u*nc+c]
			if uc.FlipSet {
				slot := 0
				if len(sched.Write1[u]) > 0 {
					slot = sched.Write1[u][0].Slot
				}
				p.Pulses = append(p.Pulses, schemes.Pulse{
					Chip: c, Unit: u, Kind: schemes.Set,
					Start: units.Duration(slot) * tset, FlipCell: true,
				})
			}
			if uc.FlipReset {
				var start units.Duration
				if len(sched.Write0[u]) > 0 {
					start = subSlotStart(sched.Write0[u][0].Slot, sched.Result, k, tset, pitch)
				}
				p.Pulses = append(p.Pulses, schemes.Pulse{
					Chip: c, Unit: u, Kind: schemes.Reset,
					Start: start, FlipCell: true,
				})
			}
		}
	}
}
