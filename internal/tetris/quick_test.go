package tetris

// Property-based tests (testing/quick) on the analysis-stage packer and
// the read stage: the randomized generators in tetris_test.go cover the
// common shapes; these let quick derive adversarial inputs from the type
// structure itself.

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"tetriswrite/internal/bitutil"
	"tetriswrite/internal/units"
)

// packInput is a quick-generatable packing problem.
type packInput struct {
	Needs  []uint16 // per data unit: low byte sets, high byte resets
	Budget uint8
	K      uint8
}

// Generate implements quick.Generator with domain-appropriate ranges.
func (packInput) Generate(r *rand.Rand, size int) reflect.Value {
	n := 1 + r.Intn(16)
	needs := make([]uint16, n)
	for i := range needs {
		sets := r.Intn(65)   // up to 64 set cells per bank-level unit
		resets := r.Intn(65) // up to 64 reset cells
		needs[i] = uint16(sets) | uint16(resets)<<8
	}
	return reflect.ValueOf(packInput{
		Needs:  needs,
		Budget: uint8(2 + r.Intn(200)),
		K:      uint8(1 + r.Intn(16)),
	})
}

// TestQuickPackerInvariants: for arbitrary inputs the schedule validates
// (full allocation, no slot over budget, bounds respected) and the write
// units metric is consistent with the schedule dimensions.
func TestQuickPackerInvariants(t *testing.T) {
	f := func(in packInput) bool {
		pk := Packer{Budget: int(in.Budget), K: int(in.K), Cost1: 1, Cost0: 2}
		in1 := make([]int, len(in.Needs))
		in0 := make([]int, len(in.Needs))
		for i, n := range in.Needs {
			in1[i] = int(n & 0xFF)
			in0[i] = int(n>>8) * 2
		}
		s := pk.Pack(in1, in0)
		if err := s.Validate(pk, in1, in0); err != nil {
			t.Logf("invalid schedule: %v (budget=%d k=%d)", err, in.Budget, in.K)
			return false
		}
		wantWU := float64(s.Result) + float64(s.SubResult)/float64(s.K)
		return s.WriteUnits() == wantWU
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickPackerMostlyMonotoneBudget: a larger budget should rarely need
// more write units for the same work. Strict per-instance monotonicity
// does NOT hold — the paper's analysis stage places each unit's write-0s
// *atomically*, and first-fit bin packing has classic anomalies where a
// larger bin spills a unit to an overflow slot that a smaller bin happened
// to split for free. The quick fuzzer found such an instance (one unit,
// in0 slightly above the doubled residual capacity), so this property
// asserts the bounded form: any regression stays within one write unit,
// and on aggregate the larger budget wins.
func TestQuickPackerMostlyMonotoneBudget(t *testing.T) {
	var sumSmall, sumBig float64
	f := func(in packInput) bool {
		in1 := make([]int, len(in.Needs))
		in0 := make([]int, len(in.Needs))
		for i, n := range in.Needs {
			in1[i] = int(n & 0xFF)
			in0[i] = int(n>>8) * 2
		}
		small := Packer{Budget: int(in.Budget), K: 8, Cost1: 1, Cost0: 2}
		big := Packer{Budget: int(in.Budget) * 2, K: 8, Cost1: 1, Cost0: 2}
		ws := small.Pack(in1, in0).WriteUnits()
		wb := big.Pack(in1, in0).WriteUnits()
		sumSmall += ws
		sumBig += wb
		return wb <= ws+1.0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
	if sumBig > sumSmall {
		t.Errorf("doubled budget is worse on aggregate: %.2f vs %.2f", sumBig, sumSmall)
	}
}

// TestQuickReadStageRoundTrip: for any stored word and target, both read
// stages produce an encoding that decodes to the target and a transition
// that reaches the encoding from the stored bits.
func TestQuickReadStageRoundTrip(t *testing.T) {
	f := func(storedBits, next uint16, storedFlip, disable bool, kRaw uint8) bool {
		stored := bitutil.FlipWord{Bits: storedBits, Flip: storedFlip}
		if storedFlip {
			stored.Bits = ^storedBits
		}
		k := 1 + int(kRaw%16)

		check := func(uc UnitCounts) bool {
			if uc.Enc.Logical() != next {
				return false
			}
			return uc.Tr.Apply(stored.Bits) == uc.Enc.Bits
		}
		if !check(ReadStage(stored, next, 16, disable)) {
			return false
		}
		return check(ReadStageTimeAware(stored, next, 16, k))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickTimeAwareNeverSlower: on the per-slice cost model, the
// time-aware rule never chooses an encoding with higher time cost than
// the Hamming rule's choice.
func TestQuickTimeAwareNeverSlower(t *testing.T) {
	const k = 8
	cost := func(u UnitCounts) int {
		c := k*u.N1() + u.N0()
		if u.FlipSet {
			c += k
		}
		if u.FlipReset {
			c++
		}
		return c
	}
	f := func(storedBits, next uint16, storedFlip bool) bool {
		stored := bitutil.FlipWord{Bits: storedBits, Flip: storedFlip}
		ta := ReadStageTimeAware(stored, next, 16, k)
		ham := ReadStage(stored, next, 16, false)
		return cost(ta) <= cost(ham)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickScheduleSpanMatchesFSM: the FSM replay of any packed schedule
// finishes exactly at the Equation 5 span.
func TestQuickScheduleSpanMatchesFSM(t *testing.T) {
	tset := 430 * units.Nanosecond
	f := func(in packInput) bool {
		k := int(in.K)
		pk := Packer{Budget: int(in.Budget), K: k, Cost1: 1, Cost0: 2}
		in1 := make([]int, len(in.Needs))
		in0 := make([]int, len(in.Needs))
		for i, n := range in.Needs {
			in1[i] = int(n & 0xFF)
			in0[i] = int(n>>8) * 2
		}
		s := pk.Pack(in1, in0)
		pitch := tset / units.Duration(k)
		ex := ExecuteFSMs(s, tset, pitch)
		if ex.CheckAgainst(s, tset, pitch) != nil {
			return false
		}
		want := units.Duration(s.Result)*tset + units.Duration(s.SubResult)*pitch
		return ex.Finish == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
