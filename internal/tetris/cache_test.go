package tetris

import (
	"reflect"
	"testing"

	"tetriswrite/internal/pcm"
	"tetriswrite/internal/schemes"
)

// A memo-cache hit must be bit-identical to repacking. Two lines holding
// identical data reduce to the same count vector — the first write misses
// and packs, the second hits — so their plans must agree pulse for pulse.
func TestSchedCacheHitMatchesMiss(t *testing.T) {
	par := pcm.DefaultParams()
	s := New(par).(*scheme)
	old := make([]byte, par.LineBytes)
	data := make([]byte, par.LineBytes)
	for i := range data {
		data[i] = byte(i*29 + 7)
	}
	p1 := s.PlanWrite(pcm.LineAddr(10), old, data)
	pulses1 := append([]schemes.Pulse(nil), p1.Pulses...)
	hits0, _, _ := s.SchedCacheStats()
	p2 := s.PlanWrite(pcm.LineAddr(20), old, data)
	hits1, misses, entries := s.SchedCacheStats()
	if hits1 <= hits0 {
		t.Fatalf("second identical write did not hit the cache (hits %d -> %d, misses %d)", hits0, hits1, misses)
	}
	if entries <= 0 {
		t.Fatalf("cache reports %d entries after a miss", entries)
	}
	if !reflect.DeepEqual(pulses1, p2.Pulses) {
		t.Fatalf("cache-hit plan differs from miss plan\nmiss: %+v\nhit:  %+v", pulses1, p2.Pulses)
	}
	if p1.Write != p2.Write || p1.ServiceTime() != p2.ServiceTime() {
		t.Fatalf("timings differ: %v vs %v", p1.Write, p2.Write)
	}
}

// The cache must never change what a write sequence produces: a caching
// scheme and a sequence of plans from cache-cold schemes must agree.
func TestSchedCacheTransparentAcrossSequence(t *testing.T) {
	par := pcm.DefaultParams()
	warm := New(par).(*scheme)
	cold := New(par).(*scheme)
	old := make([]byte, par.LineBytes)
	cur := map[pcm.LineAddr][]byte{}
	patterns := []byte{0x00, 0xFF, 0xA5, 0x3C, 0x00, 0xA5, 0x81, 0xFF, 0x00, 0x3C}
	for step, pat := range patterns {
		addr := pcm.LineAddr(step % 3)
		prev, ok := cur[addr]
		if !ok {
			prev = append([]byte(nil), old...)
		}
		data := make([]byte, par.LineBytes)
		for i := range data {
			data[i] = pat ^ byte(i)
		}
		pw := warm.PlanWrite(addr, prev, data)
		// Reset the cold scheme's cache each step so it always repacks,
		// while its flip state follows the same sequence.
		cold.cache = schedCache{}
		pc := cold.PlanWrite(addr, prev, data)
		if !reflect.DeepEqual(pw.Pulses, pc.Pulses) {
			t.Fatalf("step %d: cached plan differs from cold repack", step)
		}
		cur[addr] = data
	}
	hits, misses, _ := warm.SchedCacheStats()
	if hits == 0 {
		t.Fatalf("sequence with repeated patterns produced no cache hits (misses %d)", misses)
	}
}

// Steady-state Tetris planning must be allocation-free: scratch arenas
// carry the packing state, the memo cache absorbs repeated problems, and
// recycled plans supply the pulse buffer.
func TestTetrisPlanWriteZeroAllocsSteadyState(t *testing.T) {
	par := pcm.DefaultParams()
	s := New(par)
	rec := s.(schemes.PlanRecycler)
	old := make([]byte, par.LineBytes)
	data := make([]byte, par.LineBytes)
	for i := range data {
		data[i] = byte(i * 37)
	}
	addr := pcm.LineAddr(5)
	for i := 0; i < 4; i++ {
		rec.RecyclePlan(s.PlanWrite(addr, old, data))
	}
	allocs := testing.AllocsPerRun(100, func() {
		rec.RecyclePlan(s.PlanWrite(addr, old, data))
	})
	if allocs != 0 {
		t.Fatalf("tetris PlanWrite allocates %v objects/op in steady state, want 0", allocs)
	}
}

// Once the cache is at capacity new problems must still pack correctly
// (through the scratch arena) without inserting.
func TestSchedCacheCapacityBound(t *testing.T) {
	var c schedCache
	pk := Packer{Budget: 32, K: 8, Cost1: 1, Cost0: 2}
	in0 := make([]int, 4)
	for i := 0; i < schedCacheMaxEntries+50; i++ {
		in1 := []int{i % 17, (i / 17) % 23, i % 5, i % 29}
		if _, hit := c.lookup(pk, in1, in0); !hit {
			c.store(pk, in1, in0, pk.Pack(in1, in0))
		}
	}
	_, _, entries := c.Stats()
	if entries > schedCacheMaxEntries {
		t.Fatalf("cache grew to %d entries, cap is %d", entries, schedCacheMaxEntries)
	}
}
