// Package tetris implements the paper's contribution: the Tetris Write
// scheme. Instead of shaping every write by the worst case, Tetris Write
// reads the stored data, counts how many cells of each data unit actually
// need a SET (write-1) and a RESET (write-0), and then *bin-packs* the
// work under the instantaneous power budget:
//
//  1. the long, low-current write-1s are packed first-fit-decreasing into
//     as few full write units (Tset-long slots) as the budget allows;
//  2. the short, high-current write-0s are then dropped into the
//     sub-write-units (Treset-long slices of each write unit) using
//     whatever current the co-scheduled write-1s left over — like fitting
//     Tetris pieces into the gaps — with extra sub-write-units appended
//     only when no gap fits.
//
// Service time follows Equation 5: (result + subresult/K) x Tset, where
// result is the number of write units and subresult the number of extra
// sub-write-units.
package tetris

import (
	"fmt"
	"sort"
)

// Alloc gives part of one data unit's current need a home in one slot.
// Amount is in SET-current units; Slot is a write-unit index for write-1
// allocations and a global sub-slot index for write-0 allocations
// (sub-slot s = writeUnit*K + k for k in [0, K), overflow slots numbered
// from result*K upward).
type Alloc struct {
	Slot   int
	Amount int
}

// Schedule is the output of the analysis stage for one power domain (one
// chip, or the whole bank under a Global Charge Pump).
type Schedule struct {
	Result    int // write units consumed by write-1s (the paper's result)
	SubResult int // extra sub-write-units appended for write-0s
	K         int // sub-write-units per write unit (time asymmetry)

	// Write1[u] and Write0[u] list where data unit u's SET and RESET
	// current was placed. Units with nothing to do have empty lists.
	Write1 [][]Alloc
	Write0 [][]Alloc
}

// Packer holds the analysis-stage configuration.
type Packer struct {
	Budget int // instantaneous budget of the domain, SET-current units
	K      int // sub-write-units per write unit
	// Cost1 and Cost0 are the per-cell currents of SET and RESET pulses.
	// Zero means 1. Split allocations are kept to whole cells by rounding
	// to multiples of the cost.
	Cost1, Cost0 int
	// MinResult opens at least this many write units before packing, so
	// zero-budget riders that need a Tset-long span (flip-cell SETs) get
	// one and the write-0 pass can use its sub-slots.
	MinResult int
	// ArrivalOrder disables the decreasing sort (ablation): units are
	// packed first-fit in arrival order instead of first-fit-decreasing.
	ArrivalOrder bool
}

func (pk Packer) cost1() int {
	if pk.Cost1 <= 0 {
		return 1
	}
	return pk.Cost1
}

func (pk Packer) cost0() int {
	if pk.Cost0 <= 0 {
		return 1
	}
	return pk.Cost0
}

// Pack computes the Tetris schedule for one domain. in1[u] and in0[u] are
// data unit u's write-1 and write-0 current needs (already scaled by the
// per-cell currents). Both slices must have the same length.
//
// Units whose need exceeds the whole budget are split across slots — the
// generalization required by tiny mobile budgets; under the paper's
// configuration every unit fits and placements stay atomic.
func (pk Packer) Pack(in1, in0 []int) Schedule {
	if len(in1) != len(in0) {
		panic("tetris: Pack with mismatched current slices")
	}
	if pk.Budget <= 0 || pk.K <= 0 {
		panic("tetris: Pack with non-positive budget or K")
	}
	if pk.Budget < pk.cost1() || pk.Budget < pk.cost0() {
		// A budget below a single cell's current can never make
		// progress; pcm.Params.Validate rules this out for real
		// configurations, so hitting it means a caller bug.
		panic(fmt.Sprintf("tetris: budget %d below per-cell current (%d/%d)",
			pk.Budget, pk.cost1(), pk.cost0()))
	}
	n := len(in1)
	s := Schedule{
		K:      pk.K,
		Write1: make([][]Alloc, n),
		Write0: make([][]Alloc, n),
	}

	// wu1[j]: current committed to write unit j by write-1s. A write-1
	// pulse spans the whole write unit, so it loads every one of the
	// unit's K sub-slots for its full duration.
	wu1 := make([]int, pk.MinResult)

	for _, u := range pk.order(in1) {
		need := in1[u]
		if need == 0 {
			continue
		}
		// Atomic first-fit into an existing write unit.
		placed := false
		if need <= pk.Budget {
			for j := range wu1 {
				if wu1[j]+need <= pk.Budget {
					wu1[j] += need
					s.Write1[u] = append(s.Write1[u], Alloc{Slot: j, Amount: need})
					placed = true
					break
				}
			}
			if !placed {
				wu1 = append(wu1, need)
				s.Write1[u] = append(s.Write1[u], Alloc{Slot: len(wu1) - 1, Amount: need})
				placed = true
			}
		}
		if !placed {
			// Split regime: spread across write units, filling gaps
			// first and appending as needed, in whole cells.
			cost := pk.cost1()
			for j := 0; need > 0; j++ {
				if j == len(wu1) {
					wu1 = append(wu1, 0)
				}
				take := min(pk.Budget-wu1[j], need) / cost * cost
				if take <= 0 {
					continue
				}
				wu1[j] += take
				s.Write1[u] = append(s.Write1[u], Alloc{Slot: j, Amount: take})
				need -= take
			}
		}
	}
	s.Result = len(wu1)

	// sub[i]: current committed to global sub-slot i. Sub-slots within
	// write unit j inherit the write-1 load wu1[j]; overflow sub-slots
	// past result*K start empty. Overflow slots are materialized lazily.
	sub := make([]int, s.Result*pk.K)
	for j, used := range wu1 {
		for k := 0; k < pk.K; k++ {
			sub[j*pk.K+k] = used
		}
	}

	for _, u := range pk.order(in0) {
		need := in0[u]
		if need == 0 {
			continue
		}
		placed := false
		if need <= pk.Budget {
			for i := range sub {
				if sub[i]+need <= pk.Budget {
					sub[i] += need
					s.Write0[u] = append(s.Write0[u], Alloc{Slot: i, Amount: need})
					placed = true
					break
				}
			}
			if !placed {
				sub = append(sub, need)
				s.Write0[u] = append(s.Write0[u], Alloc{Slot: len(sub) - 1, Amount: need})
				placed = true
			}
		}
		if !placed {
			cost := pk.cost0()
			for i := 0; need > 0; i++ {
				if i == len(sub) {
					sub = append(sub, 0)
				}
				take := min(pk.Budget-sub[i], need) / cost * cost
				if take <= 0 {
					continue
				}
				sub[i] += take
				s.Write0[u] = append(s.Write0[u], Alloc{Slot: i, Amount: take})
				need -= take
			}
		}
	}
	s.SubResult = len(sub) - s.Result*pk.K

	return s
}

// order returns unit indices in packing order: decreasing need
// (first-fit-decreasing) with index as tie-break, or plain arrival order
// for the ablation.
func (pk Packer) order(need []int) []int {
	idx := make([]int, len(need))
	for i := range idx {
		idx[i] = i
	}
	if pk.ArrivalOrder {
		return idx
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return need[idx[a]] > need[idx[b]]
	})
	return idx
}

// Validate checks a schedule's internal consistency against the inputs it
// was built from: every unit's need fully allocated, no slot over budget,
// write-0 slots within bounds.
func (s Schedule) Validate(pk Packer, in1, in0 []int) error {
	load := map[int]int{} // global sub-slot -> current
	for u, allocs := range s.Write1 {
		total := 0
		for _, a := range allocs {
			if a.Slot < 0 || a.Slot >= s.Result {
				return fmt.Errorf("unit %d: write-1 slot %d outside [0, %d)", u, a.Slot, s.Result)
			}
			for k := 0; k < s.K; k++ {
				load[a.Slot*s.K+k] += a.Amount
			}
			total += a.Amount
		}
		if total != in1[u] {
			return fmt.Errorf("unit %d: write-1 allocated %d, need %d", u, total, in1[u])
		}
	}
	maxSub := s.Result*s.K + s.SubResult
	for u, allocs := range s.Write0 {
		total := 0
		for _, a := range allocs {
			if a.Slot < 0 || a.Slot >= maxSub {
				return fmt.Errorf("unit %d: write-0 sub-slot %d outside [0, %d)", u, a.Slot, maxSub)
			}
			load[a.Slot] += a.Amount
			total += a.Amount
		}
		if total != in0[u] {
			return fmt.Errorf("unit %d: write-0 allocated %d, need %d", u, total, in0[u])
		}
	}
	for slot, cur := range load {
		if cur > pk.Budget {
			return fmt.Errorf("sub-slot %d: load %d exceeds budget %d", slot, cur, pk.Budget)
		}
	}
	return nil
}

// WriteUnits returns the paper's Figure 10 metric for this schedule:
// result + subresult/K.
func (s Schedule) WriteUnits() float64 {
	return float64(s.Result) + float64(s.SubResult)/float64(s.K)
}
