// Package tetris implements the paper's contribution: the Tetris Write
// scheme. Instead of shaping every write by the worst case, Tetris Write
// reads the stored data, counts how many cells of each data unit actually
// need a SET (write-1) and a RESET (write-0), and then *bin-packs* the
// work under the instantaneous power budget:
//
//  1. the long, low-current write-1s are packed first-fit-decreasing into
//     as few full write units (Tset-long slots) as the budget allows;
//  2. the short, high-current write-0s are then dropped into the
//     sub-write-units (Treset-long slices of each write unit) using
//     whatever current the co-scheduled write-1s left over — like fitting
//     Tetris pieces into the gaps — with extra sub-write-units appended
//     only when no gap fits.
//
// Service time follows Equation 5: (result + subresult/K) x Tset, where
// result is the number of write units and subresult the number of extra
// sub-write-units.
package tetris

import "fmt"

// Alloc gives part of one data unit's current need a home in one slot.
// Amount is in SET-current units; Slot is a write-unit index for write-1
// allocations and a global sub-slot index for write-0 allocations
// (sub-slot s = writeUnit*K + k for k in [0, K), overflow slots numbered
// from result*K upward).
type Alloc struct {
	Slot   int
	Amount int
}

// Schedule is the output of the analysis stage for one power domain (one
// chip, or the whole bank under a Global Charge Pump).
type Schedule struct {
	Result    int // write units consumed by write-1s (the paper's result)
	SubResult int // extra sub-write-units appended for write-0s
	K         int // sub-write-units per write unit (time asymmetry)

	// Write1[u] and Write0[u] list where data unit u's SET and RESET
	// current was placed. Units with nothing to do have empty lists.
	Write1 [][]Alloc
	Write0 [][]Alloc
}

// Packer holds the analysis-stage configuration.
type Packer struct {
	Budget int // instantaneous budget of the domain, SET-current units
	K      int // sub-write-units per write unit (time asymmetry)
	// Cost1 and Cost0 are the per-cell currents of SET and RESET pulses.
	// Zero means 1. Split allocations are kept to whole cells by rounding
	// to multiples of the cost.
	Cost1, Cost0 int
	// MinResult opens at least this many write units before packing, so
	// zero-budget riders that need a Tset-long span (flip-cell SETs) get
	// one and the write-0 pass can use its sub-slots.
	MinResult int
	// ArrivalOrder disables the decreasing sort (ablation): units are
	// packed first-fit in arrival order instead of first-fit-decreasing.
	ArrivalOrder bool
}

func (pk Packer) cost1() int {
	if pk.Cost1 <= 0 {
		return 1
	}
	return pk.Cost1
}

func (pk Packer) cost0() int {
	if pk.Cost0 <= 0 {
		return 1
	}
	return pk.Cost0
}

// Scratch is a reusable packing arena. Repeated PackInto calls against
// the same Scratch reuse its buffers instead of allocating, which makes
// the analysis stage allocation-free in steady state — the property the
// full-system sweeps depend on.
//
// Ownership rules: every Schedule returned by PackInto points into the
// Scratch's arenas and stays valid until the next Reset. Multiple
// PackInto calls may share one Scratch between Resets (the per-domain
// packs of one cache-line write do exactly that); Reset reclaims all of
// them at once. A Scratch is single-owner: it must not be shared between
// goroutines or between schemes.
type Scratch struct {
	order []int // packing order of the current pass
	wu1   []int // per-write-unit committed write-1 current
	sub   []int // per-global-sub-slot committed current

	// allocs is the arena the per-unit Alloc lists are carved from, and
	// lists the arena for the Write1/Write0 slice headers. Both only ever
	// grow; Reset rewinds their cursors, so steady-state packing reuses
	// the high-water-mark capacity without touching the allocator.
	allocs []Alloc
	lists  [][]Alloc
}

// Reset rewinds the arenas. Every Schedule previously returned from this
// Scratch becomes invalid.
func (sc *Scratch) Reset() {
	sc.allocs = sc.allocs[:0]
	sc.lists = sc.lists[:0]
}

// Pack computes the Tetris schedule for one domain using fresh
// allocations: the returned Schedule owns its memory. in1[u] and in0[u]
// are data unit u's write-1 and write-0 current needs (already scaled by
// the per-cell currents). Both slices must have the same length.
//
// Units whose need exceeds the whole budget are split across slots — the
// generalization required by tiny mobile budgets; under the paper's
// configuration every unit fits and placements stay atomic.
func (pk Packer) Pack(in1, in0 []int) Schedule {
	return pk.PackInto(new(Scratch), in1, in0)
}

// PackInto is Pack against a caller-owned Scratch: identical schedules,
// no steady-state allocation. The result aliases the Scratch's arenas and
// is valid until its next Reset.
func (pk Packer) PackInto(sc *Scratch, in1, in0 []int) Schedule {
	if len(in1) != len(in0) {
		panic("tetris: Pack with mismatched current slices")
	}
	if pk.Budget <= 0 || pk.K <= 0 {
		panic("tetris: Pack with non-positive budget or K")
	}
	if pk.Budget < pk.cost1() || pk.Budget < pk.cost0() {
		// A budget below a single cell's current can never make
		// progress; pcm.Params.Validate rules this out for real
		// configurations, so hitting it means a caller bug.
		panic(fmt.Sprintf("tetris: budget %d below per-cell current (%d/%d)",
			pk.Budget, pk.cost1(), pk.cost0()))
	}
	n := len(in1)
	s := Schedule{K: pk.K}
	s.Write1, s.Write0 = sc.carveLists(n)

	// wu1[j]: current committed to write unit j by write-1s. A write-1
	// pulse spans the whole write unit, so it loads every one of the
	// unit's K sub-slots for its full duration.
	wu1 := resizeZeroed(sc.wu1, pk.MinResult)

	for _, u := range pk.order(sc, in1) {
		need := in1[u]
		if need == 0 {
			continue
		}
		mark := len(sc.allocs)
		// Atomic first-fit into an existing write unit.
		placed := false
		if need <= pk.Budget {
			for j := range wu1 {
				if wu1[j]+need <= pk.Budget {
					wu1[j] += need
					sc.allocs = append(sc.allocs, Alloc{Slot: j, Amount: need})
					placed = true
					break
				}
			}
			if !placed {
				wu1 = append(wu1, need)
				sc.allocs = append(sc.allocs, Alloc{Slot: len(wu1) - 1, Amount: need})
				placed = true
			}
		}
		if !placed {
			// Split regime: spread across write units, filling gaps
			// first and appending as needed, in whole cells.
			cost := pk.cost1()
			for j := 0; need > 0; j++ {
				if j == len(wu1) {
					wu1 = append(wu1, 0)
				}
				gap := pk.Budget - wu1[j]
				take := min(gap, need) / cost * cost
				if take <= 0 {
					// The final sub-cost remainder (only reachable when a
					// need is not a whole number of cells) would round to
					// zero forever; place it like one whole cell instead,
					// in the first slot with room for a cell.
					if need < cost && gap >= cost {
						take = need
					} else {
						continue
					}
				}
				wu1[j] += take
				sc.allocs = append(sc.allocs, Alloc{Slot: j, Amount: take})
				need -= take
			}
		}
		s.Write1[u] = sc.take(mark)
	}
	s.Result = len(wu1)
	sc.wu1 = wu1

	// sub[i]: current committed to global sub-slot i. Sub-slots within
	// write unit j inherit the write-1 load wu1[j]; overflow sub-slots
	// past result*K start empty. Overflow slots are materialized lazily.
	sub := resizeZeroed(sc.sub, s.Result*pk.K)
	for j, used := range wu1 {
		for k := 0; k < pk.K; k++ {
			sub[j*pk.K+k] = used
		}
	}

	for _, u := range pk.order(sc, in0) {
		need := in0[u]
		if need == 0 {
			continue
		}
		mark := len(sc.allocs)
		placed := false
		if need <= pk.Budget {
			for i := range sub {
				if sub[i]+need <= pk.Budget {
					sub[i] += need
					sc.allocs = append(sc.allocs, Alloc{Slot: i, Amount: need})
					placed = true
					break
				}
			}
			if !placed {
				sub = append(sub, need)
				sc.allocs = append(sc.allocs, Alloc{Slot: len(sub) - 1, Amount: need})
				placed = true
			}
		}
		if !placed {
			cost := pk.cost0()
			for i := 0; need > 0; i++ {
				if i == len(sub) {
					sub = append(sub, 0)
				}
				gap := pk.Budget - sub[i]
				take := min(gap, need) / cost * cost
				if take <= 0 {
					// Mirror of the write-1 split regime: a sub-cost
					// remainder is placed as one whole cell.
					if need < cost && gap >= cost {
						take = need
					} else {
						continue
					}
				}
				sub[i] += take
				sc.allocs = append(sc.allocs, Alloc{Slot: i, Amount: take})
				need -= take
			}
		}
		s.Write0[u] = sc.take(mark)
	}
	s.SubResult = len(sub) - s.Result*pk.K
	sc.sub = sub

	return s
}

// carveLists extends the list arena by 2n nil entries and returns them as
// the Write1 and Write0 header arrays. Taking the subslices after the
// append keeps them valid even when the arena regrows mid-carve.
func (sc *Scratch) carveLists(n int) (w1, w0 [][]Alloc) {
	base := len(sc.lists)
	for i := 0; i < 2*n; i++ {
		sc.lists = append(sc.lists, nil)
	}
	return sc.lists[base : base+n : base+n], sc.lists[base+n : base+2*n : base+2*n]
}

// take returns the allocs appended since mark as an owned-capacity slice,
// or nil when none were (so arena-built schedules are indistinguishable
// from fresh ones, where untouched units keep nil lists).
func (sc *Scratch) take(mark int) []Alloc {
	if len(sc.allocs) == mark {
		return nil
	}
	return sc.allocs[mark:len(sc.allocs):len(sc.allocs)]
}

// resizeZeroed returns buf resized to n with every element zeroed,
// reusing its capacity.
func resizeZeroed(buf []int, n int) []int {
	if cap(buf) < n {
		return make([]int, n, max(n, 2*cap(buf)))
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = 0
	}
	return buf
}

// order returns unit indices in packing order: decreasing need
// (first-fit-decreasing) with index as tie-break, or plain arrival order
// for the ablation. The returned slice is the Scratch's order buffer,
// valid until the next order call.
func (pk Packer) order(sc *Scratch, need []int) []int {
	idx := resizeZeroed(sc.order, len(need))
	for i := range idx {
		idx[i] = i
	}
	sc.order = idx
	if pk.ArrivalOrder {
		return idx
	}
	// Insertion sort: stable, allocation-free, and fast at the data-unit
	// counts of real lines (4-16). Matches sort.SliceStable's ordering
	// (decreasing need, arrival order as tie-break) exactly.
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0 && need[idx[j-1]] < need[idx[j]]; j-- {
			idx[j-1], idx[j] = idx[j], idx[j-1]
		}
	}
	return idx
}

// Validate checks a schedule's internal consistency against the inputs it
// was built from: every unit's need fully allocated, no slot over budget,
// write-0 slots within bounds.
//
// Its power accounting matches the scheme-level oracle
// (schemes.Pulse.DataBits feeding power.Budget.Check): a write-1
// allocation loads all K sub-slots of its write unit for the pulse's full
// Tset duration, while flip cells never appear here at all — in1/in0
// count data cells only, because the paper's budget arithmetic (the
// Figure 4 example charges 8+7+7+6+3 data bits against a budget of 32)
// gives the flip-bit drivers their own column outside the data budget.
// TestValidateMatchesBudgetOracle pins the two definitions together.
func (s Schedule) Validate(pk Packer, in1, in0 []int) error {
	maxSub := s.Result*s.K + s.SubResult
	load := make([]int, maxSub) // global sub-slot -> current
	for u, allocs := range s.Write1 {
		total := 0
		for _, a := range allocs {
			if a.Slot < 0 || a.Slot >= s.Result {
				return fmt.Errorf("unit %d: write-1 slot %d outside [0, %d)", u, a.Slot, s.Result)
			}
			for k := 0; k < s.K; k++ {
				load[a.Slot*s.K+k] += a.Amount
			}
			total += a.Amount
		}
		if total != in1[u] {
			return fmt.Errorf("unit %d: write-1 allocated %d, need %d", u, total, in1[u])
		}
	}
	for u, allocs := range s.Write0 {
		total := 0
		for _, a := range allocs {
			if a.Slot < 0 || a.Slot >= maxSub {
				return fmt.Errorf("unit %d: write-0 sub-slot %d outside [0, %d)", u, a.Slot, maxSub)
			}
			load[a.Slot] += a.Amount
			total += a.Amount
		}
		if total != in0[u] {
			return fmt.Errorf("unit %d: write-0 allocated %d, need %d", u, total, in0[u])
		}
	}
	for slot, cur := range load {
		if cur > pk.Budget {
			return fmt.Errorf("sub-slot %d: load %d exceeds budget %d", slot, cur, pk.Budget)
		}
	}
	return nil
}

// WriteUnits returns the paper's Figure 10 metric for this schedule:
// result + subresult/K.
func (s Schedule) WriteUnits() float64 {
	return float64(s.Result) + float64(s.SubResult)/float64(s.K)
}
