package tetris

import (
	"fmt"

	"tetriswrite/internal/bitutil"
)

// UnitCounts is the read stage's output for one (chip, data unit) pair:
// the inversion decision and the actual number of write-1 and write-0
// cells — the paper's Algorithm 1, whose N1/N0 results the datapath
// latches into the Reg0/Reg1 register file.
type UnitCounts struct {
	Enc       bitutil.FlipWord   // encoding chosen for the new data
	Tr        bitutil.Transition // data-cell pulses required
	FlipSet   bool               // flip cell must be SET
	FlipReset bool               // flip cell must be RESET
}

// N1 returns the number of write-1 (SET) data cells.
func (u UnitCounts) N1() int { return u.Tr.NumSets() }

// N0 returns the number of write-0 (RESET) data cells.
func (u UnitCounts) N0() int { return u.Tr.NumResets() }

// ReadStage models the Tetris Write read process for one chip slice of
// widthBits cells: it reads the stored word and flip tag, applies the
// Flip-N-Write inversion rule, and counts the ones and zeros that remain
// to be written (Algorithm 1). With flip coding disabled (the ablation)
// it degrades to plain data comparison.
func ReadStage(stored bitutil.FlipWord, next uint16, widthBits int, disableFlip bool) UnitCounts {
	mask := bitutil.WidthMask(widthBits)
	if disableFlip {
		if stored.Flip {
			// The line was previously stored inverted; without coding we
			// must write it back direct, clearing the flip cell.
			return UnitCounts{
				Enc:       bitutil.FlipWord{Bits: next & mask},
				Tr:        bitutil.Transition16(stored.Bits&mask, next&mask),
				FlipReset: true,
			}
		}
		return UnitCounts{
			Enc: bitutil.FlipWord{Bits: next & mask},
			Tr:  bitutil.Transition16(stored.Bits&mask, next&mask),
		}
	}
	enc, tr, fs, fr := bitutil.FlipTransition(stored, next, widthBits)
	return UnitCounts{Enc: enc, Tr: tr, FlipSet: fs, FlipReset: fr}
}

// ReadStageTimeAware is the time-aware variant of the read stage: instead
// of minimizing changed cells (the Flip-N-Write rule), it chooses the
// encoding that minimizes the *schedule* contribution, weighting SETs by
// the time asymmetry k. The distinction matters after a PreSET: writing
// data over an all-ones line directly needs only fast RESETs, while the
// Hamming-minimizing rule would invert the data and reintroduce slow
// SETs — inversion coding and PreSET interact destructively unless the
// flip decision knows about time.
func ReadStageTimeAware(stored bitutil.FlipWord, next uint16, widthBits, k int) UnitCounts {
	mask := bitutil.WidthMask(widthBits)
	direct := UnitCounts{
		Enc:       bitutil.FlipWord{Bits: next & mask},
		Tr:        bitutil.Transition16(stored.Bits&mask, next&mask),
		FlipReset: stored.Flip,
	}
	flipped := UnitCounts{
		Enc:     bitutil.FlipWord{Bits: ^next & mask, Flip: true},
		Tr:      bitutil.Transition16(stored.Bits&mask, ^next&mask),
		FlipSet: !stored.Flip,
	}
	// The flip cell's own pulse counts like any other: a flip-cell SET
	// drags a Tset-long pulse into the schedule even when every data
	// cell only RESETs, so it must be charged at SET weight.
	cost := func(u UnitCounts) int {
		c := k*u.N1() + u.N0()
		if u.FlipSet {
			c += k
		}
		if u.FlipReset {
			c++
		}
		return c
	}
	dc, fc := cost(direct), cost(flipped)
	switch {
	case dc < fc:
		return direct
	case fc < dc:
		return flipped
	case flipped.Tr.NumChanged() < direct.Tr.NumChanged():
		return flipped // tie on time: fewer pulsed cells wins (energy)
	default:
		return direct
	}
}

// RegFile models the Reg0/Reg1 register pair of the Tetris Write datapath
// (Figure 6): two 48-bit registers that hold, for each of the 8 data
// units, a 3-bit label and a 3-bit count — 6 bits per unit, 48 bits per
// register. Reg1 holds the write-1 counts, Reg0 the write-0 counts.
//
// The model exists to keep the implementation honest about hardware
// width: counts must fit the field, which the inversion bound guarantees
// (at most half of 16 cells change, so counts are 0..8 — the value 8 is
// encoded as the saturating all-ones pattern together with a carry into
// the label's spare encoding in the real datapath; here we simply verify
// the bound and store the value).
type RegFile struct {
	units    int
	maxCount int
	counts   [2][]int // [kind][unit], kind 0 = write-0, 1 = write-1
}

// NewRegFile returns a register file for the given number of data units.
// maxCount is the largest representable per-unit count: width/2 when
// inversion coding is active (its guarantee), the full width otherwise.
func NewRegFile(units, maxCount int) *RegFile {
	return &RegFile{
		units:    units,
		maxCount: maxCount,
		counts:   [2][]int{make([]int, units), make([]int, units)},
	}
}

// Latch stores a unit's counts, enforcing the field width.
func (r *RegFile) Latch(unit, n1, n0 int) error {
	if unit < 0 || unit >= r.units {
		return fmt.Errorf("tetris: RegFile unit %d out of range", unit)
	}
	if n1 < 0 || n1 > r.maxCount || n0 < 0 || n0 > r.maxCount {
		return fmt.Errorf("tetris: counts (%d, %d) exceed the 0..%d register field", n1, n0, r.maxCount)
	}
	r.counts[1][unit] = n1
	r.counts[0][unit] = n0
	return nil
}

// N1 returns the latched write-1 count of a unit.
func (r *RegFile) N1(unit int) int { return r.counts[1][unit] }

// N0 returns the latched write-0 count of a unit.
func (r *RegFile) N0(unit int) int { return r.counts[0][unit] }
