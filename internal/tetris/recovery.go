package tetris

import (
	"tetriswrite/internal/pcm"
	"tetriswrite/internal/schemes"
)

// ClassifyTorn implements schemes.TornStateClassifier: Tetris codes
// every data unit under one inversion tag, so a torn line rolls forward
// while the in-memory tags still match the physical flip cells and is
// reissued once they diverged (the scheme commits its tag decisions at
// PlanWrite time, before any pulse lands).
func (s *scheme) ClassifyTorn(st schemes.TornState) schemes.TornVerdict {
	if s.FlipTags(st.Addr) == st.Tags {
		return schemes.TornRollforward
	}
	return schemes.TornReissue
}

// RestoreFlipTags implements schemes.TagRestorer: the tag word is
// overwritten wholesale from the physical flip cells, re-anchoring the
// coding state to whatever the crash left in the array.
func (s *scheme) RestoreFlipTags(addr pcm.LineAddr, tags uint64) {
	s.flips.Ensure(int64(addr))[0] = tags
}
