package tetris

import (
	"math/rand"
	"reflect"
	"testing"
	"time"
)

// The split-regime loop used to spin forever when a unit's residual need
// was positive but below the per-cell cost: take = min(gap, need)/cost*cost
// rounds to 0 and the loop appends empty slots unboundedly. The fix places
// the final sub-cost remainder like one whole cell.
func TestPackSplitRegimeSubCostRemainder(t *testing.T) {
	cases := []struct {
		name   string
		pk     Packer
		in1    []int
		in0    []int
	}{
		{
			name: "write1 remainder",
			// need 37 > budget 12, cost1 5: chunks of 10 leave remainder 7,
			// then 2 — the 2 is below cost and used to hang.
			pk:  Packer{Budget: 12, K: 2, Cost1: 5, Cost0: 1},
			in1: []int{37},
			in0: []int{0},
		},
		{
			name: "write0 remainder",
			pk:  Packer{Budget: 12, K: 2, Cost1: 1, Cost0: 5},
			in1: []int{0},
			in0: []int{37},
		},
		{
			name: "both passes, several units",
			pk:  Packer{Budget: 9, K: 3, Cost1: 4, Cost0: 7},
			in1: []int{22, 3, 11},
			in0: []int{15, 8, 23},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			done := make(chan Schedule, 1)
			go func() { done <- tc.pk.Pack(tc.in1, tc.in0) }()
			var s Schedule
			select {
			case s = <-done:
			case <-time.After(5 * time.Second):
				t.Fatal("Pack did not terminate")
			}
			if err := s.Validate(tc.pk, tc.in1, tc.in0); err != nil {
				t.Fatalf("Validate: %v", err)
			}
		})
	}
}

// PackInto against a reused Scratch must produce schedules bit-identical
// to the fresh-allocation Pack path, across many random problems sharing
// one arena.
func TestPackIntoMatchesFreshPack(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	sc := new(Scratch)
	for iter := 0; iter < 2000; iter++ {
		pk := Packer{
			Budget:       4 + rng.Intn(60),
			K:            1 + rng.Intn(8),
			Cost1:        1 + rng.Intn(4),
			Cost0:        1 + rng.Intn(4),
			MinResult:    rng.Intn(3),
			ArrivalOrder: rng.Intn(4) == 0,
		}
		if pk.Budget < pk.Cost1 {
			pk.Budget = pk.Cost1
		}
		if pk.Budget < pk.Cost0 {
			pk.Budget = pk.Cost0
		}
		n := 1 + rng.Intn(10)
		in1 := make([]int, n)
		in0 := make([]int, n)
		for i := range in1 {
			in1[i] = rng.Intn(3 * pk.Budget)
			in0[i] = rng.Intn(3 * pk.Budget)
		}
		fresh := pk.Pack(in1, in0)
		sc.Reset()
		reused := pk.PackInto(sc, in1, in0)
		if !reflect.DeepEqual(fresh, reused) {
			t.Fatalf("iter %d: scratch schedule differs from fresh\npk=%+v\nin1=%v in0=%v\nfresh:  %+v\nreused: %+v",
				iter, pk, in1, in0, fresh, reused)
		}
		if err := reused.Validate(pk, in1, in0); err != nil {
			t.Fatalf("iter %d: Validate: %v", iter, err)
		}
	}
}

// Several PackInto calls between Resets (the per-domain pattern of one
// cache-line write) must all stay valid and mutually consistent.
func TestPackIntoMultipleDomainsShareScratch(t *testing.T) {
	pk := Packer{Budget: 32, K: 8, Cost1: 1, Cost0: 2}
	sc := new(Scratch)
	type domain struct{ in1, in0 []int }
	domains := []domain{
		{[]int{8, 7, 7, 6, 6, 6, 5, 3}, []int{0, 2, 2, 4, 6, 4, 4, 10}},
		{[]int{30, 1, 0, 12}, []int{2, 8, 40, 0}},
		{[]int{0, 0, 0}, []int{0, 0, 0}},
	}
	// Warm the arena, then verify post-Reset schedules match fresh ones
	// while all taken together (no interleaved Reset).
	for warm := 0; warm < 3; warm++ {
		sc.Reset()
		for _, d := range domains {
			pk.PackInto(sc, d.in1, d.in0)
		}
	}
	sc.Reset()
	got := make([]Schedule, len(domains))
	for i, d := range domains {
		got[i] = pk.PackInto(sc, d.in1, d.in0)
	}
	for i, d := range domains {
		want := pk.Pack(d.in1, d.in0)
		if !reflect.DeepEqual(want, got[i]) {
			t.Fatalf("domain %d: schedule corrupted by sharing scratch\nwant %+v\ngot  %+v", i, want, got[i])
		}
	}
}

// The analysis stage must be allocation-free in steady state.
func TestPackIntoZeroAllocs(t *testing.T) {
	pk := Packer{Budget: 32, K: 8, Cost1: 1, Cost0: 2}
	in1 := []int{8, 7, 7, 6, 6, 6, 5, 3}
	in0 := []int{0, 2, 2, 4, 6, 4, 4, 10}
	sc := new(Scratch)
	// Warm-up: grow arenas to the problem's high-water mark.
	for i := 0; i < 4; i++ {
		sc.Reset()
		pk.PackInto(sc, in1, in0)
	}
	allocs := testing.AllocsPerRun(100, func() {
		sc.Reset()
		pk.PackInto(sc, in1, in0)
	})
	if allocs != 0 {
		t.Fatalf("PackInto allocates %v objects/op in steady state, want 0", allocs)
	}
}

func BenchmarkPackInto(b *testing.B) {
	pk := Packer{Budget: 32, K: 8, Cost1: 1, Cost0: 2}
	in1 := []int{8, 7, 7, 6, 6, 6, 5, 3}
	in0 := []int{0, 2, 2, 4, 6, 4, 4, 10}
	sc := new(Scratch)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sc.Reset()
		pk.PackInto(sc, in1, in0)
	}
}
