package tetris

// schedCache memoizes the analysis stage. Workloads repeat packing
// problems constantly — zero fills, SET-dominant lines, and hot lines
// rewritten with similar data all reduce to the same (N1, N0) count
// vectors — so one bounded map turns most Pack calls into a lookup.
//
// Determinism: Pack is a pure function of the Packer configuration and
// the count vectors, and the cache key covers every one of those inputs
// (budget, K, costs, MinResult, ArrivalOrder, in1, in0). A hit therefore
// returns a schedule bit-identical to what repacking would produce; the
// per-write flip-RESET rider adjustment happens on the caller's value
// copy, outside the cache. Cached schedules own deep copies of their
// allocation lists and must be treated as read-only by callers — the
// emission stage only reads them.
type schedCache struct {
	buckets map[uint64][]schedEntry
	entries int64
	hits    int64
	misses  int64

	// Entries are immortal (no eviction below the cap), so their keys,
	// alloc lists and list headers are carved from chunked arenas —
	// one malloc per chunk instead of three per store.
	intArena   []int
	allocArena []Alloc
	listArena  [][]Alloc
}

// schedCacheMaxEntries bounds the cache's footprint. At a few hundred
// bytes per entry the bound keeps the worst case around a megabyte per
// bank; once full, new problems simply pack through the scratch arena.
const schedCacheMaxEntries = 4096

type schedEntry struct {
	pk       Packer
	in1, in0 []int // owned copies
	sched    Schedule
}

func (c *schedCache) lookup(pk Packer, in1, in0 []int) (Schedule, bool) {
	if c.buckets == nil {
		c.misses++
		return Schedule{}, false
	}
	for _, e := range c.buckets[hashKey(pk, in1, in0)] {
		if e.pk == pk && intsEqual(e.in1, in1) && intsEqual(e.in0, in0) {
			c.hits++
			return e.sched, true
		}
	}
	c.misses++
	return Schedule{}, false
}

// store records the schedule for this packing problem, deep-copying both
// the key and the schedule so neither aliases caller scratch. Full caches
// drop the insert (the miss counter already recorded the event).
func (c *schedCache) store(pk Packer, in1, in0 []int, sched Schedule) {
	if c.entries >= schedCacheMaxEntries {
		return
	}
	if c.buckets == nil {
		c.buckets = make(map[uint64][]schedEntry)
	}
	h := hashKey(pk, in1, in0)
	key := c.carveInts(2 * len(in1))
	copy(key, in1)
	copy(key[len(in1):], in0)
	c.buckets[h] = append(c.buckets[h], schedEntry{
		pk:    pk,
		in1:   key[:len(in1):len(in1)],
		in0:   key[len(in1):],
		sched: c.copySchedule(sched),
	})
	c.entries++
}

// arenaChunkMax caps the cache's arena chunk size (in elements). Chunks
// start at the first request's size and double up to this cap, so a
// short-lived cache (a fresh system per benchmark iteration, a brief
// sweep job) allocates only what it stores while a hot long-lived one
// converges to rare large-chunk mallocs.
const arenaChunkMax = 1024

func arenaGrow(have, n int) int {
	return max(n, min(arenaChunkMax, 2*have))
}

func (c *schedCache) carveInts(n int) []int {
	if len(c.intArena)+n > cap(c.intArena) {
		c.intArena = make([]int, 0, arenaGrow(cap(c.intArena), n))
	}
	m := len(c.intArena)
	c.intArena = c.intArena[:m+n]
	return c.intArena[m : m+n : m+n]
}

func (c *schedCache) carveAllocs(n int) []Alloc {
	if len(c.allocArena)+n > cap(c.allocArena) {
		c.allocArena = make([]Alloc, 0, arenaGrow(cap(c.allocArena), n))
	}
	m := len(c.allocArena)
	c.allocArena = c.allocArena[:m+n]
	return c.allocArena[m : m+n : m+n]
}

func (c *schedCache) carveLists(n int) [][]Alloc {
	if len(c.listArena)+n > cap(c.listArena) {
		c.listArena = make([][]Alloc, 0, arenaGrow(cap(c.listArena), n))
	}
	m := len(c.listArena)
	c.listArena = c.listArena[:m+n]
	return c.listArena[m : m+n : m+n]
}

// Stats returns the cache's hit/miss/occupancy counters.
func (c *schedCache) Stats() (hits, misses, entries int64) {
	return c.hits, c.misses, c.entries
}

// hashKey mixes every field Pack depends on, one multiply-xorshift round
// per word (the byte-at-a-time FNV it replaces showed up in full-system
// profiles). Only bucket grouping depends on the hash — lookups compare
// the full key — so the function only needs to spread, not be FNV.
func hashKey(pk Packer, in1, in0 []int) uint64 {
	h := uint64(14695981039346656037)
	mix := func(v int) {
		h = (h ^ uint64(v)) * 0x9E3779B97F4A7C15
		h ^= h >> 29
	}
	mix(pk.Budget)
	mix(pk.K)
	mix(pk.Cost1)
	mix(pk.Cost0)
	mix(pk.MinResult)
	if pk.ArrivalOrder {
		mix(1)
	} else {
		mix(0)
	}
	mix(len(in1))
	for _, v := range in1 {
		mix(v)
	}
	for _, v := range in0 {
		mix(v)
	}
	return h
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// copySchedule deep-copies a schedule into compact cache-owned arena
// storage.
func (c *schedCache) copySchedule(s Schedule) Schedule {
	total := 0
	for _, l := range s.Write1 {
		total += len(l)
	}
	for _, l := range s.Write0 {
		total += len(l)
	}
	arena := c.carveAllocs(total)[:0]
	lists := c.carveLists(2 * len(s.Write1))
	out := s
	out.Write1 = lists[:len(s.Write1):len(s.Write1)]
	out.Write0 = lists[len(s.Write1):]
	for u, l := range s.Write1 {
		if len(l) == 0 {
			continue
		}
		mark := len(arena)
		arena = append(arena, l...)
		out.Write1[u] = arena[mark:len(arena):len(arena)]
	}
	for u, l := range s.Write0 {
		if len(l) == 0 {
			continue
		}
		mark := len(arena)
		arena = append(arena, l...)
		out.Write0[u] = arena[mark:len(arena):len(arena)]
	}
	return out
}

// SchedCacheStats exposes the scheme's memo-cache counters (hits, misses,
// live entries) for telemetry. The memory controller aggregates these
// across banks via an interface assertion, keeping this package free of a
// telemetry dependency.
func (s *scheme) SchedCacheStats() (hits, misses, entries int64) {
	return s.cache.Stats()
}
