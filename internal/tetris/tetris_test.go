package tetris

import (
	"math/rand"
	"testing"

	"tetriswrite/internal/bitutil"
	"tetriswrite/internal/pcm"
	"tetriswrite/internal/schemes"
	"tetriswrite/internal/units"
)

// paperPacker returns the packer of the paper's chip-level example:
// budget 32, K = 8, SET current 1, RESET current 2.
func paperPacker() Packer {
	return Packer{Budget: 32, K: 8, Cost1: 1, Cost0: 2}
}

// TestPackerFigure4Example reproduces the worked example of the paper's
// Figure 4 / Section III.B: eight data units whose write-1 counts are
// 8,7,7,6,6,6,5,3 and write-0 counts 0,1,1,2,3,2,2,5 (in unit order
// 1..8). The paper schedules write-1s of units {1,2,3,4,8} in write unit
// 1 (8+7+7+6+3 = 31 < 32) and units {5,6,7} in write unit 2, and fits
// every write-0 into write unit 2's leftover current — two write units
// total, no extra sub-write-units.
func TestPackerFigure4Example(t *testing.T) {
	in1 := []int{8, 7, 7, 6, 6, 6, 5, 3}
	in0raw := []int{0, 1, 1, 2, 3, 2, 2, 5}
	in0 := make([]int, len(in0raw))
	for i, v := range in0raw {
		in0[i] = v * 2 // RESET current is twice SET current
	}
	pk := paperPacker()
	s := pk.Pack(in1, in0)
	if err := s.Validate(pk, in1, in0); err != nil {
		t.Fatalf("schedule invalid: %v", err)
	}
	if s.Result != 2 {
		t.Fatalf("result = %d, want 2", s.Result)
	}
	if s.SubResult != 0 {
		t.Fatalf("subresult = %d, want 0", s.SubResult)
	}
	if got := s.WriteUnits(); got != 2.0 {
		t.Fatalf("WriteUnits = %v, want 2.0", got)
	}
	// Units 1-4 and 8 (0-indexed 0-3, 7) in write unit 0; units 5-7
	// (0-indexed 4-6) in write unit 1.
	wantWU := []int{0, 0, 0, 0, 1, 1, 1, 0}
	for u, want := range wantWU {
		if len(s.Write1[u]) != 1 || s.Write1[u][0].Slot != want {
			t.Errorf("unit %d: write-1 allocs %v, want single alloc in WU %d", u+1, s.Write1[u], want)
		}
	}
	// All write-0s must have found gaps inside the two write units (no
	// overflow slots), and unit 1 (no resets) has no write-0 allocs.
	if len(s.Write0[0]) != 0 {
		t.Errorf("unit 1 has write-0 allocs %v, want none", s.Write0[0])
	}
	for u := 1; u < 8; u++ {
		for _, a := range s.Write0[u] {
			if a.Slot >= s.Result*s.K {
				t.Errorf("unit %d write-0 landed in overflow slot %d", u+1, a.Slot)
			}
		}
	}
}

// TestPackerProperties drives random inputs through the packer and checks
// the schedule invariants plus two optimality bounds: result is at least
// the current lower bound ceil(sum(in1)/budget), and at most one write
// unit is less than half full (a classic first-fit property).
func TestPackerProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 500; trial++ {
		n := 1 + rng.Intn(16)
		in1 := make([]int, n)
		in0 := make([]int, n)
		sum1 := 0
		for i := range in1 {
			in1[i] = rng.Intn(33) // 0..32 data sets per unit (bank level /4)
			in0[i] = rng.Intn(17) * 2
			sum1 += in1[i]
		}
		pk := paperPacker()
		s := pk.Pack(in1, in0)
		if err := s.Validate(pk, in1, in0); err != nil {
			t.Fatalf("trial %d: %v (in1=%v in0=%v)", trial, err, in1, in0)
		}
		lower := (sum1 + pk.Budget - 1) / pk.Budget
		if s.Result < lower {
			t.Fatalf("trial %d: result %d below lower bound %d", trial, s.Result, lower)
		}
		halfEmpty := 0
		load := make([]int, s.Result)
		for _, allocs := range s.Write1 {
			for _, a := range allocs {
				load[a.Slot] += a.Amount
			}
		}
		for _, l := range load {
			if l <= pk.Budget/2 {
				halfEmpty++
			}
		}
		if halfEmpty > 1 {
			t.Fatalf("trial %d: %d write units at most half full; first-fit should leave at most one", trial, halfEmpty)
		}
	}
}

// TestPackerZeroWork: a write with nothing to do produces an empty
// schedule.
func TestPackerZeroWork(t *testing.T) {
	pk := paperPacker()
	s := pk.Pack(make([]int, 8), make([]int, 8))
	if s.Result != 0 || s.SubResult != 0 {
		t.Errorf("empty pack: result=%d subresult=%d, want 0, 0", s.Result, s.SubResult)
	}
	if s.WriteUnits() != 0 {
		t.Errorf("WriteUnits = %v, want 0", s.WriteUnits())
	}
}

// TestPackerResetOnly: pure write-0 work uses only sub-write-units.
func TestPackerResetOnly(t *testing.T) {
	pk := paperPacker()
	in1 := make([]int, 4)
	in0 := []int{16, 16, 16, 16} // 8 resets each at cost 2
	s := pk.Pack(in1, in0)
	if err := s.Validate(pk, in1, in0); err != nil {
		t.Fatal(err)
	}
	if s.Result != 0 {
		t.Errorf("result = %d, want 0", s.Result)
	}
	// 16+16 = 32 fits one sub-slot; 4 units -> 2 overflow sub-slots.
	if s.SubResult != 2 {
		t.Errorf("subresult = %d, want 2", s.SubResult)
	}
}

// TestPackerSplitRegime: a unit whose need exceeds the whole budget is
// split across slots but still fully allocated in whole cells.
func TestPackerSplitRegime(t *testing.T) {
	pk := Packer{Budget: 8, K: 8, Cost1: 1, Cost0: 2}
	in1 := []int{9, 3} // unit 0 cannot fit any single write unit
	in0 := []int{18, 0}
	s := pk.Pack(in1, in0)
	if err := s.Validate(pk, in1, in0); err != nil {
		t.Fatal(err)
	}
	if len(s.Write1[0]) < 2 {
		t.Errorf("oversized unit not split: %v", s.Write1[0])
	}
	for _, a := range s.Write0[0] {
		if a.Amount%2 != 0 {
			t.Errorf("write-0 alloc %v not a whole number of cells", a)
		}
	}
}

// TestFFDNoWorseOnAverage compares first-fit-decreasing with arrival-order
// first-fit over many random instances: FFD must not use more write units
// on average (individual instances may go either way; the aggregate must
// favour the sort, which is why the paper sorts).
func TestFFDNoWorseOnAverage(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	var ffd, ff float64
	for trial := 0; trial < 300; trial++ {
		in1 := make([]int, 8)
		in0 := make([]int, 8)
		for i := range in1 {
			in1[i] = rng.Intn(20)
			in0[i] = rng.Intn(10) * 2
		}
		a := Packer{Budget: 32, K: 8, Cost1: 1, Cost0: 2}
		b := a
		b.ArrivalOrder = true
		ffd += a.Pack(in1, in0).WriteUnits()
		ff += b.Pack(in1, in0).WriteUnits()
	}
	if ffd > ff+1e-9 {
		t.Errorf("FFD mean %.3f worse than arrival-order mean %.3f", ffd/300, ff/300)
	}
}

// schemeParams returns the paper's configuration (GCP on).
func schemeParams() pcm.Params { return pcm.DefaultParams() }

// TestTetrisWriteCorrectness: long random write sequences must produce
// valid plans that respect the bank budget and store correct data — with
// GCP on and off, with flip coding on and off, and under a tiny budget.
func TestTetrisWriteCorrectness(t *testing.T) {
	cases := []struct {
		name string
		par  func() pcm.Params
		opt  Options
	}{
		{"paper", schemeParams, Options{}},
		{"no-gcp", func() pcm.Params {
			p := schemeParams()
			p.GlobalChargePump = false
			return p
		}, Options{}},
		{"no-flip", schemeParams, Options{DisableFlip: true}},
		{"arrival-order", schemeParams, Options{ArrivalOrder: true}},
		{"tiny-budget", func() pcm.Params {
			p := schemeParams()
			p.ChipBudget = 8
			p.GlobalChargePump = false
			return p
		}, Options{}},
		{"tiny-budget-gcp", func() pcm.Params {
			p := schemeParams()
			p.ChipBudget = 4
			return p
		}, Options{}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			par := tc.par()
			s := NewWithOptions(par, tc.opt)
			arr := schemes.NewArray(par)
			rng := rand.New(rand.NewSource(1234))
			old := make([]byte, par.LineBytes)
			want := make([]byte, par.LineBytes)
			const addr = pcm.LineAddr(5)
			for step := 0; step < 200; step++ {
				copy(want, old)
				switch step % 4 {
				case 0:
					for i := 0; i < 1+rng.Intn(10); i++ {
						b := rng.Intn(512)
						want[b/8] ^= 1 << (b % 8)
					}
				case 1:
					rng.Read(want)
				case 2:
					for i := range want {
						want[i] = ^old[i] // complement: stresses flip coding
					}
				case 3:
					// silent write
				}
				plan := s.PlanWrite(addr, old, want)
				if err := arr.CheckWrite(addr, plan, want); err != nil {
					t.Fatalf("step %d: %v", step, err)
				}
				copy(old, want)
			}
		})
	}
}

// TestTetrisEquationFive: the write phase must equal
// (result + subresult/K) x Tset for the schedule the packer produced.
// White-box: recompute the packing from the same inputs.
func TestTetrisEquationFive(t *testing.T) {
	par := schemeParams()
	s := NewWithOptions(par, Options{}).(*scheme)
	rng := rand.New(rand.NewSource(7))
	old := make([]byte, 64)
	new := make([]byte, 64)
	rng.Read(old)
	for trial := 0; trial < 100; trial++ {
		copy(new, old)
		for i := 0; i < rng.Intn(80); i++ {
			b := rng.Intn(512)
			new[b/8] ^= 1 << (b % 8)
		}
		plan := s.PlanWrite(9, old, new)
		// Write must decompose exactly into a*Tset + b*(Tset/K).
		k := units.Duration(par.K())
		pitch := par.TSet / k
		a := plan.Write / par.TSet
		rem := plan.Write % par.TSet
		if rem%pitch != 0 {
			t.Fatalf("trial %d: write phase %v is not a*Tset + b*pitch", trial, plan.Write)
		}
		b := rem / pitch
		if eq5 := units.Duration(a)*par.TSet + units.Duration(b)*pitch; eq5 != plan.Write {
			t.Fatalf("trial %d: Eq5 decomposition mismatch", trial)
		}
		copy(old, new)
	}
}

// TestTetrisBeatsStaticSchemes: on sparse writes (the paper's
// Observation 1: ~9.6 changed bits per 64-bit unit at most), Tetris must
// need at most 2 write units, beating Three-Stage-Write's 2.5, and must
// never exceed Flip-N-Write's 4 on any input.
func TestTetrisBeatsStaticSchemes(t *testing.T) {
	par := schemeParams()
	s := New(par)
	rng := rand.New(rand.NewSource(21))
	old := make([]byte, 64)
	new := make([]byte, 64)
	rng.Read(old)
	worst := 0.0
	for trial := 0; trial < 200; trial++ {
		copy(new, old)
		nbits := 1 + rng.Intn(15) // sparse: ~paper's average
		for i := 0; i < nbits; i++ {
			b := rng.Intn(512)
			new[b/8] ^= 1 << (b % 8)
		}
		plan := s.PlanWrite(2, old, new)
		wu := plan.WriteUnits()
		if wu > worst {
			worst = wu
		}
		if wu > 2.0 {
			t.Fatalf("trial %d: sparse write took %.3f write units, want <= 2", trial, wu)
		}
		copy(old, new)
	}
	// Dense random rewrites must still never exceed Flip-N-Write's 4.
	for trial := 0; trial < 100; trial++ {
		rng.Read(new)
		plan := s.PlanWrite(2, old, new)
		if wu := plan.WriteUnits(); wu > 4.0 {
			t.Fatalf("dense trial %d: %.3f write units, want <= 4", trial, wu)
		}
		copy(old, new)
	}
}

// TestTetrisAnalysisOverhead: the default analysis overhead is 41 memory
// cycles = 102.5 ns at 400 MHz, and the options can change or remove it.
func TestTetrisAnalysisOverhead(t *testing.T) {
	par := schemeParams()
	old := make([]byte, 64)
	new := make([]byte, 64)
	new[0] = 1
	def := New(par).PlanWrite(0, old, new)
	if want := units.Nanoseconds(102.5); def.Analysis != want {
		t.Errorf("default analysis = %v, want %v", def.Analysis, want)
	}
	none := NewWithOptions(par, Options{AnalysisCycles: -1}).PlanWrite(0, old, new)
	if none.Analysis != 0 {
		t.Errorf("AnalysisCycles -1: analysis = %v, want 0", none.Analysis)
	}
	ten := NewWithOptions(par, Options{AnalysisCycles: 10}).PlanWrite(0, old, new)
	if want := par.MemClock.Cycles(10); ten.Analysis != want {
		t.Errorf("AnalysisCycles 10: analysis = %v, want %v", ten.Analysis, want)
	}
	if def.Read != par.TRead {
		t.Errorf("read stage = %v, want %v", def.Read, par.TRead)
	}
}

// TestTetrisSilentWrite: writing identical data costs no write units.
func TestTetrisSilentWrite(t *testing.T) {
	par := schemeParams()
	s := New(par)
	line := make([]byte, 64)
	for i := range line {
		line[i] = 0x3C
	}
	first := s.PlanWrite(1, make([]byte, 64), line)
	if first.Write == 0 {
		t.Fatal("first write should program cells")
	}
	silent := s.PlanWrite(1, line, line)
	if silent.Write != 0 {
		t.Errorf("silent write phase = %v, want 0", silent.Write)
	}
	if len(silent.Pulses) != 0 {
		t.Errorf("silent write has %d pulses, want 0", len(silent.Pulses))
	}
	// But it still pays the read and analysis overheads.
	if silent.ServiceTime() != par.TRead+silent.Analysis {
		t.Errorf("silent service = %v, want read+analysis", silent.ServiceTime())
	}
}

// TestExecuteFSMs replays random schedules through the FSM model and
// checks launch times against the analysis stage's slot arithmetic.
func TestExecuteFSMs(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	tset := 430 * units.Nanosecond
	pitch := tset / 8
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(10)
		in1 := make([]int, n)
		in0 := make([]int, n)
		for i := range in1 {
			in1[i] = rng.Intn(33)
			in0[i] = rng.Intn(17) * 2
		}
		pk := paperPacker()
		s := pk.Pack(in1, in0)
		ex := ExecuteFSMs(s, tset, pitch)
		if err := ex.CheckAgainst(s, tset, pitch); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want := units.Duration(s.Result)*tset + units.Duration(s.SubResult)*pitch
		if ex.Finish != want {
			t.Fatalf("trial %d: finish %v, want %v", trial, ex.Finish, want)
		}
		// FSM1 launches must be time-ordered (the queue is walked once).
		for i := 1; i < len(ex.Write1); i++ {
			if ex.Write1[i].At < ex.Write1[i-1].At {
				t.Fatalf("trial %d: FSM1 launches out of order", trial)
			}
		}
		for i := 1; i < len(ex.Write0); i++ {
			if ex.Write0[i].At < ex.Write0[i-1].At {
				t.Fatalf("trial %d: FSM0 launches out of order", trial)
			}
		}
	}
}

// TestExecuteFSMsEmpty: an empty schedule finishes immediately.
func TestExecuteFSMsEmpty(t *testing.T) {
	pk := paperPacker()
	s := pk.Pack(make([]int, 4), make([]int, 4))
	ex := ExecuteFSMs(s, 430*units.Nanosecond, 430*units.Nanosecond/8)
	if ex.Finish != 0 || len(ex.Write1) != 0 || len(ex.Write0) != 0 {
		t.Errorf("empty schedule executed work: %+v", ex)
	}
}

// TestDriveGating: the write driver pulses exactly the cells whose stored
// value differs AND whose target matches the write signal.
func TestDriveGating(t *testing.T) {
	in := DriverInput{
		Stored:   0b1100_1010,
		Incoming: 0b1010_1100,
		Signal:   schemes.Set,
	}
	out := Drive(in)
	wantProg := in.Stored ^ in.Incoming
	if out.ProgEnable != wantProg {
		t.Errorf("ProgEnable = %#b, want %#b", out.ProgEnable, wantProg)
	}
	tr := bitutil.Transition16(in.Stored, in.Incoming)
	if out.Pulsed != tr.Sets {
		t.Errorf("SET pulse mask = %#b, want %#b", out.Pulsed, tr.Sets)
	}
	in.Signal = schemes.Reset
	out = Drive(in)
	if out.Pulsed != tr.Resets {
		t.Errorf("RESET pulse mask = %#b, want %#b", out.Pulsed, tr.Resets)
	}
}

// TestDriveProperty: for any stored/incoming pair, applying the SET mask
// then the RESET mask yields the incoming word, and no unchanged cell is
// ever pulsed.
func TestDriveProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 1000; trial++ {
		stored := uint16(rng.Uint32())
		incoming := uint16(rng.Uint32())
		set := Drive(DriverInput{Stored: stored, Incoming: incoming, Signal: schemes.Set})
		reset := Drive(DriverInput{Stored: stored, Incoming: incoming, Signal: schemes.Reset})
		if set.Pulsed&^(stored^incoming) != 0 || reset.Pulsed&^(stored^incoming) != 0 {
			t.Fatal("driver pulsed an unchanged cell")
		}
		got := (stored | set.Pulsed) &^ reset.Pulsed
		if got != incoming {
			t.Fatalf("driver result %#x, want %#x", got, incoming)
		}
	}
}

// TestDriveFlipCell: the flip cell obeys the same gating.
func TestDriveFlipCell(t *testing.T) {
	out := Drive(DriverInput{StoredFlip: false, IncomingFlip: true, Signal: schemes.Set})
	if !out.FlipPulsed {
		t.Error("flip cell 0->1 not pulsed on SET")
	}
	out = Drive(DriverInput{StoredFlip: false, IncomingFlip: true, Signal: schemes.Reset})
	if out.FlipPulsed {
		t.Error("flip cell 0->1 pulsed on RESET")
	}
	out = Drive(DriverInput{StoredFlip: true, IncomingFlip: true, Signal: schemes.Set})
	if out.FlipPulsed {
		t.Error("unchanged flip cell pulsed")
	}
}

// TestReadStage covers Algorithm 1 corner cases.
func TestReadStage(t *testing.T) {
	// Dense change: must flip.
	uc := ReadStage(bitutil.FlipWord{Bits: 0}, 0xFFFF, 16, false)
	if !uc.Enc.Flip || !uc.FlipSet || uc.Tr.NumChanged() != 0 {
		t.Errorf("complement write should cost only the flip cell: %+v", uc)
	}
	// Sparse change: no flip.
	uc = ReadStage(bitutil.FlipWord{Bits: 0}, 0x0001, 16, false)
	if uc.Enc.Flip || uc.N1() != 1 || uc.N0() != 0 {
		t.Errorf("sparse write wrong: %+v", uc)
	}
	// Flip disabled while the stored word was flipped: must rewrite
	// direct and clear the flip cell.
	uc = ReadStage(bitutil.FlipWord{Bits: 0xFFFE, Flip: true}, 0x0001, 16, true)
	if uc.Enc.Flip {
		t.Error("DisableFlip produced a flipped encoding")
	}
	if !uc.FlipReset {
		t.Error("DisableFlip did not clear a set flip cell")
	}
	if got := uc.Enc.Logical(); got != 0x0001 {
		t.Errorf("encoding stores %#x, want 0x0001", got)
	}
}

// TestRegFile checks the register-field bounds.
func TestRegFile(t *testing.T) {
	r := NewRegFile(8, 8)
	if err := r.Latch(0, 8, 3); err != nil {
		t.Errorf("valid latch rejected: %v", err)
	}
	if r.N1(0) != 8 || r.N0(0) != 3 {
		t.Error("latched counts wrong")
	}
	if err := r.Latch(0, 9, 0); err == nil {
		t.Error("over-wide count accepted")
	}
	if err := r.Latch(8, 0, 0); err == nil {
		t.Error("out-of-range unit accepted")
	}
	wide := NewRegFile(8, 16)
	if err := wide.Latch(1, 16, 16); err != nil {
		t.Errorf("wide register rejected valid count: %v", err)
	}
}

// TestTetrisDeterminism: identical writes plan identically.
func TestTetrisDeterminism(t *testing.T) {
	par := schemeParams()
	rng := rand.New(rand.NewSource(44))
	old := make([]byte, 64)
	new := make([]byte, 64)
	rng.Read(old)
	rng.Read(new)
	p1 := New(par).PlanWrite(0, old, new)
	p2 := New(par).PlanWrite(0, old, new)
	if len(p1.Pulses) != len(p2.Pulses) || p1.ServiceTime() != p2.ServiceTime() {
		t.Fatal("nondeterministic plan")
	}
	for i := range p1.Pulses {
		if p1.Pulses[i] != p2.Pulses[i] {
			t.Fatalf("pulse %d differs", i)
		}
	}
}

func BenchmarkTetrisPlanWrite(b *testing.B) {
	par := schemeParams()
	s := New(par)
	rng := rand.New(rand.NewSource(3))
	old := make([]byte, 64)
	new := make([]byte, 64)
	rng.Read(old)
	copy(new, old)
	for i := 0; i < 10; i++ {
		bit := rng.Intn(512)
		new[bit/8] ^= 1 << (bit % 8)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		plan := s.PlanWrite(pcm.LineAddr(i%512), old, new)
		_ = plan.ServiceTime()
	}
}

func BenchmarkPack(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	in1 := make([]int, 8)
	in0 := make([]int, 8)
	for i := range in1 {
		in1[i] = rng.Intn(33)
		in0[i] = rng.Intn(17) * 2
	}
	pk := paperPacker()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := pk.Pack(in1, in0)
		_ = s.WriteUnits()
	}
}

// TestGCPNeverHurts: bank-wide budget sharing can only help packing, for
// any content, because any per-chip-feasible schedule is bank-feasible.
// (The converse direction is the GCP ablation's gain.)
func TestGCPNeverHurts(t *testing.T) {
	gcpPar := schemeParams()
	chipPar := schemeParams()
	chipPar.GlobalChargePump = false
	gcp := New(gcpPar)
	perChip := New(chipPar)
	rng := rand.New(rand.NewSource(17))
	old := make([]byte, 64)
	new := make([]byte, 64)
	rng.Read(old)
	for trial := 0; trial < 200; trial++ {
		copy(new, old)
		for i := 0; i < rng.Intn(60); i++ {
			b := rng.Intn(512)
			new[b/8] ^= 1 << (b % 8)
		}
		g := gcp.PlanWrite(1, old, new).WriteUnits()
		c := perChip.PlanWrite(1, old, new).WriteUnits()
		if g > c+1e-9 {
			t.Fatalf("trial %d: GCP packing %.3f worse than per-chip %.3f", trial, g, c)
		}
		copy(old, new)
	}
}

func TestPackerGuardsImpossibleBudget(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("budget below per-cell current did not panic")
		}
	}()
	pk := Packer{Budget: 1, K: 8, Cost1: 1, Cost0: 2}
	pk.Pack([]int{0}, []int{2})
}
