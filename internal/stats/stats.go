// Package stats provides the measurement primitives of the simulators:
// streaming latency accumulators, log-scale histograms with percentile
// estimates, and plain-text table rendering for the experiment harness.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"unsafe"

	"tetriswrite/internal/units"
)

// latencyLocks stripes goroutine-safety across Latency values. Latency
// cannot embed a mutex — it must stay copyable, because controller stats
// structs containing it are snapshotted by value (and `go vet` rightly
// rejects copying locks) — so each value locks the stripe its address
// hashes to. Distinct values on the same stripe merely contend; they
// never corrupt each other.
var latencyLocks [64]sync.Mutex

func (l *Latency) lock() *sync.Mutex {
	return &latencyLocks[(uintptr(unsafe.Pointer(l))>>4)%uintptr(len(latencyLocks))]
}

// Latency accumulates a stream of durations. All methods are
// goroutine-safe, so parallel experiment runs can share one accumulator;
// copying a Latency while another goroutine is adding to it is still a
// race (copy from the owning goroutine, as the simulators do).
type Latency struct {
	count    int64
	sum      float64 // in picoseconds
	min, max units.Duration
	hist     Histogram
}

// Add records one sample.
func (l *Latency) Add(d units.Duration) {
	mu := l.lock()
	mu.Lock()
	defer mu.Unlock()
	if l.count == 0 || d < l.min {
		l.min = d
	}
	if d > l.max {
		l.max = d
	}
	l.count++
	l.sum += float64(d)
	l.hist.Add(float64(d))
}

// Count returns the number of samples.
func (l *Latency) Count() int64 {
	mu := l.lock()
	mu.Lock()
	defer mu.Unlock()
	return l.count
}

// Mean returns the average sample, or 0 with no samples.
func (l *Latency) Mean() units.Duration {
	mu := l.lock()
	mu.Lock()
	defer mu.Unlock()
	if l.count == 0 {
		return 0
	}
	return units.Duration(l.sum / float64(l.count))
}

// Min returns the smallest sample, or 0 with no samples.
func (l *Latency) Min() units.Duration {
	mu := l.lock()
	mu.Lock()
	defer mu.Unlock()
	return l.min
}

// Max returns the largest sample.
func (l *Latency) Max() units.Duration {
	mu := l.lock()
	mu.Lock()
	defer mu.Unlock()
	return l.max
}

// Percentile estimates the p-th percentile (0 < p <= 100) from the
// log-scale histogram; the estimate is exact to within the bucket
// resolution (~7% with the default 10-buckets-per-decade layout).
func (l *Latency) Percentile(p float64) units.Duration {
	mu := l.lock()
	mu.Lock()
	defer mu.Unlock()
	return units.Duration(l.hist.Percentile(p))
}

// Histogram is a log-scale histogram for non-negative values: buckets
// are powers of 10^(1/bucketsPerDecade), covering the full positive
// float range; a dedicated bucket holds zeros.
type Histogram struct {
	zero    int64
	buckets map[int]int64
	total   int64
}

const bucketsPerDecade = 10

func bucketOf(v float64) int {
	return int(math.Floor(math.Log10(v) * bucketsPerDecade))
}

func bucketUpper(b int) float64 {
	return math.Pow(10, float64(b+1)/bucketsPerDecade)
}

// Add records a sample. Negative samples panic: every metric in this
// repository is a non-negative quantity, so a negative one is a bug.
func (h *Histogram) Add(v float64) {
	if v < 0 {
		panic("stats: negative histogram sample")
	}
	if h.buckets == nil {
		h.buckets = make(map[int]int64)
	}
	h.total++
	if v == 0 {
		h.zero++
		return
	}
	h.buckets[bucketOf(v)]++
}

// Count returns the number of samples.
func (h *Histogram) Count() int64 { return h.total }

// Percentile estimates the p-th percentile (0 < p <= 100).
//
// Edge cases, all deliberate:
//   - an empty histogram returns 0 (there is no data to estimate from);
//   - a histogram whose samples are all zero returns 0 for every p (the
//     zero bucket covers any target rank);
//   - p <= 0 is treated as "just above 0" and p > 100 as 100, so callers
//     never get an out-of-range rank.
func (h *Histogram) Percentile(p float64) float64 {
	if h.total == 0 {
		return 0
	}
	if p <= 0 {
		p = math.SmallestNonzeroFloat64
	}
	if p > 100 {
		p = 100
	}
	target := int64(math.Ceil(p / 100 * float64(h.total)))
	if target <= h.zero {
		return 0
	}
	run := h.zero
	keys := make([]int, 0, len(h.buckets))
	for k := range h.buckets {
		keys = append(keys, k)
	}
	if len(keys) == 0 {
		// Unreachable when the counters are consistent (total > zero
		// implies a non-empty bucket), but a merged-in inconsistent
		// histogram should degrade to 0, not panic.
		return 0
	}
	sort.Ints(keys)
	for _, k := range keys {
		run += h.buckets[k]
		if run >= target {
			return bucketUpper(k)
		}
	}
	return bucketUpper(keys[len(keys)-1])
}

// Merge folds other's samples into h, exactly: both histograms share the
// fixed bucket layout, so the merged percentiles equal those of a
// histogram fed both streams. Merging nil, an empty histogram, or h into
// itself is a no-op. This is the aggregation path of sharded runs: each
// worker fills a private histogram, the harness merges them.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil || other == h || other.total == 0 {
		return
	}
	if h.buckets == nil {
		h.buckets = make(map[int]int64)
	}
	h.zero += other.zero
	h.total += other.total
	for k, v := range other.buckets {
		h.buckets[k] += v
	}
}

// Clone returns an independent copy of the histogram. (A plain struct
// copy shares the bucket map; Clone is what snapshot paths need.)
func (h *Histogram) Clone() Histogram {
	c := Histogram{zero: h.zero, total: h.total}
	if h.buckets != nil {
		c.buckets = make(map[int]int64, len(h.buckets))
		for k, v := range h.buckets {
			c.buckets[k] = v
		}
	}
	return c
}

// Counter is a named monotonic counter group. It is goroutine-safe, so
// parallel experiment runs can share one group.
type Counter struct {
	mu     sync.Mutex
	names  []string
	counts map[string]int64
}

// Inc adds n to the named counter.
func (c *Counter) Inc(name string, n int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.counts == nil {
		c.counts = make(map[string]int64)
	}
	if _, ok := c.counts[name]; !ok {
		c.names = append(c.names, name)
	}
	c.counts[name] += n
}

// Get returns the named counter's value.
func (c *Counter) Get(name string) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.counts[name]
}

// Names returns the counters in first-increment order.
func (c *Counter) Names() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.names...)
}

// Table renders rows of labelled numeric series as aligned plain text —
// the output format of every figure the harness regenerates.
type Table struct {
	Title   string
	Columns []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; cells are formatted with %v, and float64 cells
// with three decimals.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case units.Duration:
			row[i] = fmt.Sprintf("%.1fns", v.Nanoseconds())
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	width := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		width[i] = len(c)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(width) && len(cell) > width[i] {
				width[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	rule := make([]string, len(t.Columns))
	for i := range rule {
		rule[i] = strings.Repeat("-", width[i])
	}
	writeRow(rule)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeoMean returns the geometric mean of positive xs, or 0 if any sample
// is non-positive or the slice is empty. Normalized-performance figures
// conventionally average geometrically.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// CSV renders the table as comma-separated values (header + rows), for
// spreadsheet import and external plotting.
func (t *Table) CSV() string {
	var b strings.Builder
	writeCSVRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			b.WriteString(c)
		}
		b.WriteByte('\n')
	}
	writeCSVRow(t.Columns)
	for _, row := range t.rows {
		writeCSVRow(row)
	}
	return b.String()
}
