package stats

import (
	"fmt"
	"strings"
)

// BarChart renders grouped horizontal bars in plain text — the visual
// companion to the figure tables, used by `tetrisbench -plot`. Each group
// is a label (a workload) with one bar per series (a scheme).
type BarChart struct {
	Title  string
	Series []string
	groups []barGroup
	// Width is the maximum bar length in characters (default 40).
	Width int
}

type barGroup struct {
	label  string
	values []float64
}

// NewBarChart creates a chart with the given series names.
func NewBarChart(title string, series ...string) *BarChart {
	return &BarChart{Title: title, Series: series}
}

// AddGroup appends one labelled group; values must match the series
// count.
func (b *BarChart) AddGroup(label string, values ...float64) {
	if len(values) != len(b.Series) {
		panic(fmt.Sprintf("stats: group %q has %d values for %d series", label, len(values), len(b.Series)))
	}
	b.groups = append(b.groups, barGroup{label: label, values: values})
}

// FromTable builds a chart from a rendered-table layout: the table's
// first column becomes group labels and the remaining columns the
// series. Non-numeric rows are skipped.
func FromTable(t *Table) *BarChart {
	b := NewBarChart(t.Title, t.Columns[1:]...)
	for _, row := range t.rows {
		vals := make([]float64, 0, len(row)-1)
		ok := true
		for _, cell := range row[1:] {
			var v float64
			if _, err := fmt.Sscanf(cell, "%f", &v); err != nil {
				ok = false
				break
			}
			vals = append(vals, v)
		}
		if ok && len(vals) == len(b.Series) {
			b.AddGroup(row[0], vals...)
		}
	}
	return b
}

// String renders the chart.
func (b *BarChart) String() string {
	width := b.Width
	if width <= 0 {
		width = 40
	}
	max := 0.0
	for _, g := range b.groups {
		for _, v := range g.values {
			if v > max {
				max = v
			}
		}
	}
	labelW := 0
	for _, g := range b.groups {
		if len(g.label) > labelW {
			labelW = len(g.label)
		}
	}
	seriesW := 0
	for _, s := range b.Series {
		if len(s) > seriesW {
			seriesW = len(s)
		}
	}
	var sb strings.Builder
	if b.Title != "" {
		fmt.Fprintf(&sb, "== %s ==\n", b.Title)
	}
	for _, g := range b.groups {
		fmt.Fprintf(&sb, "%s\n", g.label)
		for i, v := range g.values {
			n := 0
			if max > 0 {
				n = int(v / max * float64(width))
			}
			if v > 0 && n == 0 {
				n = 1
			}
			fmt.Fprintf(&sb, "  %-*s %8.3f %s\n", seriesW, b.Series[i], v, strings.Repeat("#", n))
		}
	}
	return sb.String()
}
