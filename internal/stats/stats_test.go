package stats

import (
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"tetriswrite/internal/units"
)

func TestLatencyBasic(t *testing.T) {
	var l Latency
	if l.Mean() != 0 || l.Count() != 0 {
		t.Error("zero-value latency not empty")
	}
	l.Add(10 * units.Nanosecond)
	l.Add(20 * units.Nanosecond)
	l.Add(30 * units.Nanosecond)
	if l.Count() != 3 {
		t.Errorf("Count = %d", l.Count())
	}
	if l.Mean() != 20*units.Nanosecond {
		t.Errorf("Mean = %v, want 20ns", l.Mean())
	}
	if l.Min() != 10*units.Nanosecond || l.Max() != 30*units.Nanosecond {
		t.Errorf("Min/Max = %v/%v", l.Min(), l.Max())
	}
}

func TestHistogramPercentiles(t *testing.T) {
	var h Histogram
	rng := rand.New(rand.NewSource(1))
	var samples []float64
	for i := 0; i < 10000; i++ {
		v := math.Exp(rng.NormFloat64()) * 100
		samples = append(samples, v)
		h.Add(v)
	}
	// Compare against exact percentiles with a tolerance of one bucket
	// (10^(1/10) ~ 26%).
	exact := func(p float64) float64 {
		s := append([]float64(nil), samples...)
		for i := range s {
			for j := i + 1; j < len(s); j++ {
				if s[j] < s[i] {
					s[i], s[j] = s[j], s[i]
				}
			}
			if float64(i+1)/float64(len(s))*100 >= p {
				return s[i]
			}
		}
		return s[len(s)-1]
	}
	for _, p := range []float64{50, 90, 99} {
		got := h.Percentile(p)
		want := exact(p)
		if got < want/1.3 || got > want*1.3 {
			t.Errorf("P%v = %v, exact %v (off by more than a bucket)", p, got, want)
		}
	}
}

func TestHistogramZeros(t *testing.T) {
	var h Histogram
	for i := 0; i < 90; i++ {
		h.Add(0)
	}
	for i := 0; i < 10; i++ {
		h.Add(1000)
	}
	if got := h.Percentile(50); got != 0 {
		t.Errorf("P50 = %v, want 0 (90%% zeros)", got)
	}
	if got := h.Percentile(99); got < 1000 {
		t.Errorf("P99 = %v, want >= 1000", got)
	}
}

func TestHistogramNegativePanics(t *testing.T) {
	var h Histogram
	defer func() {
		if recover() == nil {
			t.Error("negative sample did not panic")
		}
	}()
	h.Add(-1)
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Percentile(50) != 0 {
		t.Error("empty histogram percentile not 0")
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc("reads", 5)
	c.Inc("writes", 2)
	c.Inc("reads", 1)
	if c.Get("reads") != 6 || c.Get("writes") != 2 {
		t.Error("counter values wrong")
	}
	names := c.Names()
	if len(names) != 2 || names[0] != "reads" || names[1] != "writes" {
		t.Errorf("Names = %v", names)
	}
	if c.Get("missing") != 0 {
		t.Error("missing counter not 0")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Figure X", "workload", "value")
	tb.AddRow("blackscholes", 1.23456)
	tb.AddRow("vips", 42)
	tb.AddRow("x", 50*units.Nanosecond)
	out := tb.String()
	for _, want := range []string{"== Figure X ==", "workload", "blackscholes", "1.235", "42", "50.0ns"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 6 { // title, header, rule, 3 rows
		t.Errorf("table has %d lines, want 6:\n%s", len(lines), out)
	}
}

func TestMeans(t *testing.T) {
	if Mean(nil) != 0 || GeoMean(nil) != 0 {
		t.Error("empty means not 0")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v", got)
	}
	if got := GeoMean([]float64{1, 100}); math.Abs(got-10) > 1e-9 {
		t.Errorf("GeoMean = %v, want 10", got)
	}
	if GeoMean([]float64{1, 0}) != 0 {
		t.Error("GeoMean with zero sample should be 0 sentinel")
	}
}

func TestBarChart(t *testing.T) {
	b := NewBarChart("demo", "a", "bb")
	b.AddGroup("g1", 1.0, 2.0)
	b.AddGroup("g2", 0.0, 4.0)
	out := b.String()
	for _, want := range []string{"== demo ==", "g1", "g2", "a ", "bb"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
	// Bars scale to the max (4.0 -> 40 chars; 2.0 -> 20; 1.0 -> 10).
	if !strings.Contains(out, strings.Repeat("#", 40)) {
		t.Error("max bar not full width")
	}
	if strings.Contains(out, strings.Repeat("#", 41)) {
		t.Error("bar exceeds width")
	}
	lines := strings.Split(out, "\n")
	for _, l := range lines {
		if strings.Contains(l, " 0.000 ") && strings.Contains(l, "#") {
			t.Error("zero value drew a bar")
		}
	}
}

func TestBarChartPanicsOnArityMismatch(t *testing.T) {
	b := NewBarChart("x", "a")
	defer func() {
		if recover() == nil {
			t.Error("arity mismatch did not panic")
		}
	}()
	b.AddGroup("g", 1, 2)
}

func TestFromTable(t *testing.T) {
	tb := NewTable("fig", "workload", "s1", "s2")
	tb.AddRow("w1", 1.5, 2.5)
	tb.AddRow("w2", 3.0, 4.0)
	tb.AddRow("note", "text", "cells") // skipped: non-numeric
	b := FromTable(tb)
	out := b.String()
	if !strings.Contains(out, "w1") || !strings.Contains(out, "w2") {
		t.Errorf("groups missing:\n%s", out)
	}
	if strings.Contains(out, "note") {
		t.Error("non-numeric row charted")
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("x", "a", "b")
	tb.AddRow("plain", 1.5)
	tb.AddRow("with,comma", "quo\"te")
	out := tb.CSV()
	want := "a,b\nplain,1.500\n\"with,comma\",\"quo\"\"te\"\n"
	if out != want {
		t.Errorf("CSV = %q, want %q", out, want)
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	for i := 0; i < 50; i++ {
		a.Add(float64(i))
	}
	for i := 0; i < 30; i++ {
		b.Add(0)
	}
	b.Add(5e6)

	var whole Histogram
	for i := 0; i < 50; i++ {
		whole.Add(float64(i))
	}
	for i := 0; i < 30; i++ {
		whole.Add(0)
	}
	whole.Add(5e6)

	a.Merge(&b)
	if a.Count() != whole.Count() {
		t.Fatalf("merged count %d, want %d", a.Count(), whole.Count())
	}
	for _, p := range []float64{1, 25, 50, 75, 99, 100} {
		if got, want := a.Percentile(p), whole.Percentile(p); got != want {
			t.Errorf("P%v = %v after merge, want %v", p, got, want)
		}
	}
}

func TestHistogramMergeEdgeCases(t *testing.T) {
	var a Histogram
	a.Add(3)
	before := a.Count()

	a.Merge(nil) // nil is a no-op
	a.Merge(&a)  // self-merge is a no-op, not a doubling
	var empty Histogram
	a.Merge(&empty) // empty is a no-op
	if a.Count() != before {
		t.Errorf("count %d after no-op merges, want %d", a.Count(), before)
	}

	// Merging into an empty histogram copies, and the copy is
	// independent of the source afterwards.
	var dst Histogram
	dst.Merge(&a)
	if dst.Count() != a.Count() || dst.Percentile(50) != a.Percentile(50) {
		t.Error("merge into empty did not copy")
	}
	dst.Add(1e12)
	if a.Count() == dst.Count() {
		t.Error("source histogram aliased by merge")
	}

	// All-zero histograms merge into all-zero percentiles.
	var z1, z2 Histogram
	z1.Add(0)
	z2.Add(0)
	z1.Merge(&z2)
	if z1.Count() != 2 || z1.Percentile(100) != 0 {
		t.Errorf("all-zero merge: count=%d P100=%v", z1.Count(), z1.Percentile(100))
	}
}

func TestHistogramPercentileClamping(t *testing.T) {
	var h Histogram
	h.Add(1000)
	if h.Percentile(-5) != h.Percentile(0) {
		t.Error("p < 0 not clamped to 0")
	}
	if h.Percentile(200) != h.Percentile(100) {
		t.Error("p > 100 not clamped to 100")
	}
}

func TestHistogramClone(t *testing.T) {
	var h Histogram
	h.Add(1000)
	c := h.Clone()
	c.Add(1e12)
	if h.Count() != 1 || c.Count() != 2 {
		t.Errorf("clone not independent: src=%d clone=%d", h.Count(), c.Count())
	}
	var empty Histogram
	if e := empty.Clone(); e.Count() != 0 {
		t.Error("cloning an empty histogram is not empty")
	}
}

// The striped-lock protection on Latency and the mutex on Counter must
// hold under concurrent writers (checked by -race) and lose no samples.
func TestLatencyConcurrent(t *testing.T) {
	var l Latency
	var wg sync.WaitGroup
	const workers, perWorker = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				l.Add(units.Microsecond)
			}
		}()
	}
	wg.Wait()
	if l.Count() != workers*perWorker {
		t.Errorf("count = %d, want %d", l.Count(), workers*perWorker)
	}
	if l.Mean() != units.Microsecond {
		t.Errorf("mean = %v, want 1us", l.Mean())
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	const workers, perWorker = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc("ops", 1)
			}
		}()
	}
	wg.Wait()
	if got := c.Get("ops"); got != workers*perWorker {
		t.Errorf("ops = %d, want %d", got, workers*perWorker)
	}
}

// The satellite requirement: locking Latency must stay cheap enough to
// sit on the memory controller's request path. Compare against the cost
// of the arithmetic it protects.
func BenchmarkLatencyAdd(b *testing.B) {
	var l Latency
	for i := 0; i < b.N; i++ {
		l.Add(units.Duration(i))
	}
}

func BenchmarkLatencyAddParallel(b *testing.B) {
	var l Latency
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			l.Add(units.Microsecond)
		}
	})
}

func BenchmarkCounterInc(b *testing.B) {
	var c Counter
	for i := 0; i < b.N; i++ {
		c.Inc("ops", 1)
	}
}

func BenchmarkHistogramAdd(b *testing.B) {
	var h Histogram
	for i := 0; i < b.N; i++ {
		h.Add(float64(i % 100000))
	}
}
