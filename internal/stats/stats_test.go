package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"tetriswrite/internal/units"
)

func TestLatencyBasic(t *testing.T) {
	var l Latency
	if l.Mean() != 0 || l.Count() != 0 {
		t.Error("zero-value latency not empty")
	}
	l.Add(10 * units.Nanosecond)
	l.Add(20 * units.Nanosecond)
	l.Add(30 * units.Nanosecond)
	if l.Count() != 3 {
		t.Errorf("Count = %d", l.Count())
	}
	if l.Mean() != 20*units.Nanosecond {
		t.Errorf("Mean = %v, want 20ns", l.Mean())
	}
	if l.Min() != 10*units.Nanosecond || l.Max() != 30*units.Nanosecond {
		t.Errorf("Min/Max = %v/%v", l.Min(), l.Max())
	}
}

func TestHistogramPercentiles(t *testing.T) {
	var h Histogram
	rng := rand.New(rand.NewSource(1))
	var samples []float64
	for i := 0; i < 10000; i++ {
		v := math.Exp(rng.NormFloat64()) * 100
		samples = append(samples, v)
		h.Add(v)
	}
	// Compare against exact percentiles with a tolerance of one bucket
	// (10^(1/10) ~ 26%).
	exact := func(p float64) float64 {
		s := append([]float64(nil), samples...)
		for i := range s {
			for j := i + 1; j < len(s); j++ {
				if s[j] < s[i] {
					s[i], s[j] = s[j], s[i]
				}
			}
			if float64(i+1)/float64(len(s))*100 >= p {
				return s[i]
			}
		}
		return s[len(s)-1]
	}
	for _, p := range []float64{50, 90, 99} {
		got := h.Percentile(p)
		want := exact(p)
		if got < want/1.3 || got > want*1.3 {
			t.Errorf("P%v = %v, exact %v (off by more than a bucket)", p, got, want)
		}
	}
}

func TestHistogramZeros(t *testing.T) {
	var h Histogram
	for i := 0; i < 90; i++ {
		h.Add(0)
	}
	for i := 0; i < 10; i++ {
		h.Add(1000)
	}
	if got := h.Percentile(50); got != 0 {
		t.Errorf("P50 = %v, want 0 (90%% zeros)", got)
	}
	if got := h.Percentile(99); got < 1000 {
		t.Errorf("P99 = %v, want >= 1000", got)
	}
}

func TestHistogramNegativePanics(t *testing.T) {
	var h Histogram
	defer func() {
		if recover() == nil {
			t.Error("negative sample did not panic")
		}
	}()
	h.Add(-1)
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Percentile(50) != 0 {
		t.Error("empty histogram percentile not 0")
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc("reads", 5)
	c.Inc("writes", 2)
	c.Inc("reads", 1)
	if c.Get("reads") != 6 || c.Get("writes") != 2 {
		t.Error("counter values wrong")
	}
	names := c.Names()
	if len(names) != 2 || names[0] != "reads" || names[1] != "writes" {
		t.Errorf("Names = %v", names)
	}
	if c.Get("missing") != 0 {
		t.Error("missing counter not 0")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Figure X", "workload", "value")
	tb.AddRow("blackscholes", 1.23456)
	tb.AddRow("vips", 42)
	tb.AddRow("x", 50*units.Nanosecond)
	out := tb.String()
	for _, want := range []string{"== Figure X ==", "workload", "blackscholes", "1.235", "42", "50.0ns"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 6 { // title, header, rule, 3 rows
		t.Errorf("table has %d lines, want 6:\n%s", len(lines), out)
	}
}

func TestMeans(t *testing.T) {
	if Mean(nil) != 0 || GeoMean(nil) != 0 {
		t.Error("empty means not 0")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v", got)
	}
	if got := GeoMean([]float64{1, 100}); math.Abs(got-10) > 1e-9 {
		t.Errorf("GeoMean = %v, want 10", got)
	}
	if GeoMean([]float64{1, 0}) != 0 {
		t.Error("GeoMean with zero sample should be 0 sentinel")
	}
}

func TestBarChart(t *testing.T) {
	b := NewBarChart("demo", "a", "bb")
	b.AddGroup("g1", 1.0, 2.0)
	b.AddGroup("g2", 0.0, 4.0)
	out := b.String()
	for _, want := range []string{"== demo ==", "g1", "g2", "a ", "bb"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
	// Bars scale to the max (4.0 -> 40 chars; 2.0 -> 20; 1.0 -> 10).
	if !strings.Contains(out, strings.Repeat("#", 40)) {
		t.Error("max bar not full width")
	}
	if strings.Contains(out, strings.Repeat("#", 41)) {
		t.Error("bar exceeds width")
	}
	lines := strings.Split(out, "\n")
	for _, l := range lines {
		if strings.Contains(l, " 0.000 ") && strings.Contains(l, "#") {
			t.Error("zero value drew a bar")
		}
	}
}

func TestBarChartPanicsOnArityMismatch(t *testing.T) {
	b := NewBarChart("x", "a")
	defer func() {
		if recover() == nil {
			t.Error("arity mismatch did not panic")
		}
	}()
	b.AddGroup("g", 1, 2)
}

func TestFromTable(t *testing.T) {
	tb := NewTable("fig", "workload", "s1", "s2")
	tb.AddRow("w1", 1.5, 2.5)
	tb.AddRow("w2", 3.0, 4.0)
	tb.AddRow("note", "text", "cells") // skipped: non-numeric
	b := FromTable(tb)
	out := b.String()
	if !strings.Contains(out, "w1") || !strings.Contains(out, "w2") {
		t.Errorf("groups missing:\n%s", out)
	}
	if strings.Contains(out, "note") {
		t.Error("non-numeric row charted")
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("x", "a", "b")
	tb.AddRow("plain", 1.5)
	tb.AddRow("with,comma", "quo\"te")
	out := tb.CSV()
	want := "a,b\nplain,1.500\n\"with,comma\",\"quo\"\"te\"\n"
	if out != want {
		t.Errorf("CSV = %q, want %q", out, want)
	}
}
