package registry_test

import (
	"bytes"
	"strings"
	"testing"

	"tetriswrite/internal/pcm"
	"tetriswrite/internal/registry"
	"tetriswrite/internal/schemes"
)

// TestBasesResolve checks every catalogued base builds a scheme whose
// Name() matches the entry's canonical name — the property the fleet
// fingerprint and the telemetry labels both lean on.
func TestBasesResolve(t *testing.T) {
	r := registry.Default()
	par := pcm.DefaultParams()
	for _, name := range r.Bases() {
		e, err := r.Resolve(name)
		if err != nil {
			t.Fatalf("Resolve(%q): %v", name, err)
		}
		if e.Name != name {
			t.Errorf("Resolve(%q).Name = %q", name, e.Name)
		}
		if got := e.Factory(par).Name(); got != name {
			t.Errorf("built scheme for %q reports Name() = %q", name, got)
		}
	}
}

func TestAliases(t *testing.T) {
	r := registry.Default()
	for alias, want := range map[string]string{
		"baseline":     "dcw",
		"flip-n-write": "fnw",
		"2stage":       "twostage",
		"3stage":       "threestage",
	} {
		got, err := r.Canonical(alias)
		if err != nil {
			t.Fatalf("Canonical(%q): %v", alias, err)
		}
		if got != want {
			t.Errorf("Canonical(%q) = %q, want %q", alias, got, want)
		}
	}
	// Aliases compose too, and canonicalize through the base.
	if got, err := r.Canonical("baseline+remap"); err != nil || got != "dcw+remap" {
		t.Errorf("Canonical(baseline+remap) = %q, %v; want dcw+remap", got, err)
	}
}

// TestComposition checks decorators apply left to right and the composed
// entry's Name matches both the spelling and the built scheme.
func TestComposition(t *testing.T) {
	r := registry.Default()
	par := pcm.DefaultParams()
	for _, name := range []string{
		"dcw+flipmin", "conventional+flipmin", "dcw+remap", "tetris+remap",
		"fnw+remap", "dcw+flipmin+remap", "dcw+mlc", "tetris+remap+mlc",
		"adaptive+remap",
	} {
		e, err := r.Resolve(name)
		if err != nil {
			t.Fatalf("Resolve(%q): %v", name, err)
		}
		if e.Name != name {
			t.Errorf("Resolve(%q).Name = %q", name, e.Name)
		}
		if got := e.Factory(par).Name(); got != name {
			t.Errorf("built scheme for %q reports Name() = %q", name, got)
		}
	}
	// Whitespace around segments is tolerated; the canonical name is tight.
	if got, err := r.Canonical("dcw + flipmin"); err != nil || got != "dcw+flipmin" {
		t.Errorf("Canonical(\"dcw + flipmin\") = %q, %v", got, err)
	}
}

// TestFlipMinTraitRejection: one inversion tag per data unit admits one
// writer, so flipmin must refuse to wrap any scheme that already drives
// the flip cells.
func TestFlipMinTraitRejection(t *testing.T) {
	r := registry.Default()
	for _, name := range []string{
		"fnw+flipmin", "2stage+flipmin", "twostage+flipmin",
		"threestage+flipmin", "tetris+flipmin", "adaptive+flipmin",
		"dcw+flipmin+flipmin", // flipmin itself drives flip cells
	} {
		_, err := r.Resolve(name)
		if err == nil {
			t.Fatalf("Resolve(%q) succeeded; want flip-cell clash", name)
		}
		if !strings.Contains(err.Error(), "flip cells") {
			t.Errorf("Resolve(%q) error %q does not name the clash", name, err)
		}
	}
}

// TestUnknownNameError: unknown segments fail with the sorted catalogue,
// so a typo at any front end tells the user what is available.
func TestUnknownNameError(t *testing.T) {
	r := registry.Default()
	_, err := r.Resolve("dwc")
	if err == nil {
		t.Fatal("Resolve(dwc) succeeded")
	}
	for _, want := range append(r.Names(), r.Decorators()...) {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("unknown-scheme error omits %q: %v", want, err)
		}
	}
	if idx := strings.Index(err.Error(), "2stage"); idx < 0 ||
		idx > strings.Index(err.Error(), "tetris") {
		t.Errorf("catalogue not sorted in error: %v", err)
	}
	_, err = r.Resolve("dcw+remp")
	if err == nil || !strings.Contains(err.Error(), "unknown decorator") {
		t.Errorf("Resolve(dcw+remp) = %v; want unknown decorator", err)
	}
}

func TestRegistrationErrors(t *testing.T) {
	r := registry.New()
	ok := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	bad := func(err error, frag string) {
		t.Helper()
		if err == nil || !strings.Contains(err.Error(), frag) {
			t.Errorf("got %v, want error containing %q", err, frag)
		}
	}
	ok(r.Register(registry.Entry{Name: "a", Factory: schemes.NewDCW}))
	ok(r.RegisterAlias("b", "a"))
	ok(r.RegisterDecorator(registry.Decorator{
		Name: "d", Wrap: func(e registry.Entry) (registry.Entry, error) { return e, nil },
	}))

	bad(r.Register(registry.Entry{Name: "a", Factory: schemes.NewDCW}), "already registered")
	bad(r.Register(registry.Entry{Name: "b", Factory: schemes.NewDCW}), "alias")
	bad(r.Register(registry.Entry{Name: "d", Factory: schemes.NewDCW}), "decorator")
	bad(r.Register(registry.Entry{Name: "", Factory: schemes.NewDCW}), "invalid name")
	bad(r.Register(registry.Entry{Name: "x+y", Factory: schemes.NewDCW}), "invalid name")
	bad(r.Register(registry.Entry{Name: "c"}), "no factory")
	bad(r.RegisterAlias("e", "zzz"), "unknown base")
	bad(r.RegisterDecorator(registry.Decorator{Name: "e"}), "no wrapper")
}

// splitmix64 is the deterministic byte stream behind the oracle test.
type splitmix64 uint64

func (s *splitmix64) next() uint64 {
	*s += 0x9e3779b97f4a7c15
	z := uint64(*s)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// TestComposedSchemesDecode drives every composed scheme the PR ships
// through hundreds of deterministic writes against the encoded-cell
// oracle: each plan must validate structurally, respect the power
// budget, and leave the array decoding to exactly the written line —
// the single-XOR decode invariant every decorator promises to preserve.
func TestComposedSchemesDecode(t *testing.T) {
	names := []string{
		"dcw+flipmin", "conventional+flipmin", "dcw+remap", "tetris+remap",
		"twostage+remap", "dcw+flipmin+remap", "dcw+mlc", "dcw+flipmin+mlc",
		"tetris+remap+mlc", "adaptive", "adaptive+remap",
	}
	par := pcm.DefaultParams()
	r := registry.Default()
	for _, name := range names {
		t.Run(name, func(t *testing.T) {
			e, err := r.Resolve(name)
			if err != nil {
				t.Fatal(err)
			}
			s := e.Factory(par)
			rec, _ := s.(schemes.PlanRecycler)
			arr := schemes.NewArray(par)
			rng := splitmix64(0xC0FFEE)
			const lines = 24
			logical := make([][]byte, lines)
			for i := range logical {
				logical[i] = make([]byte, par.LineBytes)
			}
			writes := 400
			if testing.Short() {
				writes = 120
			}
			for i := 0; i < writes; i++ {
				li := int(rng.next() % lines)
				addr := pcm.LineAddr(li)
				next := make([]byte, par.LineBytes)
				copy(next, logical[li])
				// Mostly sparse updates with occasional dense rewrites,
				// so both the flip-heavy and flip-light paths run.
				flips := 1 + int(rng.next()%12)
				if rng.next()%8 == 0 {
					flips = par.LineBytes * 4
				}
				for f := 0; f < flips; f++ {
					b := rng.next()
					next[b%uint64(par.LineBytes)] ^= 1 << (b >> 32 % 8)
				}
				p := s.PlanWrite(addr, logical[li], next)
				if err := arr.CheckWrite(addr, p, next); err != nil {
					t.Fatalf("write %d to line %d under %s: %v", i, li, name, err)
				}
				if rec != nil {
					rec.RecyclePlan(p)
				}
				copy(logical[li], next)
			}
		})
	}
}

// TestComposedSchemesCrashRecovery extends the decode oracle across a
// power cut: every composition is torn at three seeded pulse boundaries
// (only a schedule-order prefix of the plan lands) and then driven
// through the scheme-side recovery contract — classify the torn line,
// restore the coding state from the physical flip cells, replan from
// the decoded contents — after which the array must decode to exactly
// the intended line again.
func TestComposedSchemesCrashRecovery(t *testing.T) {
	names := []string{
		"dcw+flipmin", "conventional+flipmin", "dcw+remap", "tetris+remap",
		"twostage+remap", "dcw+flipmin+remap", "dcw+mlc", "dcw+flipmin+mlc",
		"tetris+remap+mlc", "adaptive", "adaptive+remap",
	}
	par := pcm.DefaultParams()
	r := registry.Default()
	for _, name := range names {
		t.Run(name, func(t *testing.T) {
			e, err := r.Resolve(name)
			if err != nil {
				t.Fatal(err)
			}
			s := e.Factory(par)
			rec, _ := s.(schemes.PlanRecycler)
			arr := schemes.NewArray(par)
			rng := splitmix64(0xDECAFBAD)
			const lines = 24
			logical := make([][]byte, lines)
			for i := range logical {
				logical[i] = make([]byte, par.LineBytes)
			}
			writes := 120
			if testing.Short() {
				writes = 48
			}
			crashAt := map[int]bool{writes / 4: true, writes / 2: true, 3 * writes / 4: true}
			torn := 0
			for i := 0; i < writes; i++ {
				li := int(rng.next() % lines)
				addr := pcm.LineAddr(li)
				next := make([]byte, par.LineBytes)
				copy(next, logical[li])
				flips := 1 + int(rng.next()%12)
				if rng.next()%8 == 0 {
					flips = par.LineBytes * 4
				}
				for f := 0; f < flips; f++ {
					b := rng.next()
					next[b%uint64(par.LineBytes)] ^= 1 << (b >> 32 % 8)
				}
				p := s.PlanWrite(addr, logical[li], next)
				if !crashAt[i] {
					if err := arr.CheckWrite(addr, p, next); err != nil {
						t.Fatalf("write %d to line %d under %s: %v", i, li, name, err)
					}
					if rec != nil {
						rec.RecyclePlan(p)
					}
					copy(logical[li], next)
					continue
				}

				// Power cut: only the first k pulses (schedule order) land;
				// k < len guarantees at least one pulse is lost.
				cut := p
				cut.Pulses = append([]schemes.Pulse(nil), p.Pulses...)
				cut.SortPulses()
				if n := len(cut.Pulses); n > 0 {
					cut.Pulses = cut.Pulses[:int(rng.next()%uint64(n))]
				}
				arr.Apply(addr, cut)
				if rec != nil {
					rec.RecyclePlan(p)
				}

				dec := append([]byte(nil), arr.Logical(addr)...)
				phys := arr.FlipTags(addr)
				if cl, ok := s.(schemes.TornStateClassifier); ok {
					// The verdict prices recovery; any verdict must leave the
					// replan below valid.
					st := schemes.TornState{Addr: addr, Old: logical[li], Want: next, Decoded: dec, Tags: phys}
					_ = cl.ClassifyTorn(st)
				}
				if tr, ok := s.(schemes.TagRestorer); ok {
					tr.RestoreFlipTags(addr, phys)
				}
				if !bytes.Equal(dec, next) {
					torn++
					p2 := s.PlanWrite(addr, dec, next)
					if err := arr.CheckWrite(addr, p2, next); err != nil {
						t.Fatalf("recovery replan of write %d to line %d under %s: %v", i, li, name, err)
					}
					if rec != nil {
						rec.RecyclePlan(p2)
					}
				}
				copy(logical[li], next)
			}
			if torn == 0 {
				t.Error("no crash left a torn line; the recovery path never ran")
			}
		})
	}
}

// TestAdaptiveStats checks the meta-scheme's telemetry contract: the
// stat series set is complete and stable immediately after construction
// (the memctrl sampler discovers series names at registration time,
// before any write), and the activity counters move once writes flow.
func TestAdaptiveStats(t *testing.T) {
	par := pcm.DefaultParams()
	e, err := registry.Default().Resolve("adaptive")
	if err != nil {
		t.Fatal(err)
	}
	s := e.Factory(par)
	sp, ok := s.(schemes.StatProvider)
	if !ok {
		t.Fatal("adaptive does not implement StatProvider")
	}
	series := func() map[string]float64 {
		out := map[string]float64{}
		sp.SchemeStats(func(n string, v float64) { out[n] = v })
		return out
	}
	before := series()
	for _, want := range []string{
		"scheme.adaptive.switches", "scheme.adaptive.epochs",
		"scheme.adaptive.handovers", "scheme.adaptive.sticky_writes",
		"scheme.adaptive.active",
	} {
		if _, ok := before[want]; !ok {
			t.Errorf("series %q absent before first write", want)
		}
	}
	rng := splitmix64(7)
	old := make([]byte, par.LineBytes)
	next := make([]byte, par.LineBytes)
	for i := 0; i < 1024; i++ {
		for b := range next {
			next[b] = old[b]
		}
		next[rng.next()%uint64(par.LineBytes)] ^= 0xFF
		p := s.PlanWrite(pcm.LineAddr(i%16), old, next)
		_ = p
		copy(old, next)
	}
	after := series()
	if len(after) != len(before) {
		t.Errorf("series set changed across writes: %d -> %d", len(before), len(after))
	}
	if after["scheme.adaptive.epochs"] == 0 {
		t.Error("no epochs recorded after 1024 writes")
	}
}
