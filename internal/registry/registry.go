// Package registry is the name-keyed catalogue of write schemes and the
// grammar that composes them. A scheme name is a base followed by zero
// or more decorators joined with '+' — "dcw+flipmin", "tetris+remap",
// "conventional+flipmin+remap+mlc" — applied left to right, so the last
// decorator is outermost:
//
//	resolve("dcw+flipmin+remap") = remap(flipmin(dcw))
//
// Bases and decorators register with declared traits, and composition is
// trait-checked at resolve time: a flip-minimizing encoder cannot wrap a
// scheme that already drives the flip cells (one inversion tag per data
// unit admits one writer), so "fnw+flipmin" is rejected with an error
// rather than producing a scheme that corrupts its own coding state.
//
// The registry is how every front end — exp sweeps, cmd/pcmsim,
// cmd/tetrisbench, the fleet wire format — agrees on what a scheme name
// means. Canonical spelling matters to the fleet: shard fingerprints
// hash the canonical name (aliases like "baseline" resolve to "dcw"), so
// cached shard results stay correct across spellings while distinct
// compositions stay distinct.
package registry

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"tetriswrite/internal/mlc"
	"tetriswrite/internal/pcm"
	"tetriswrite/internal/schemes"
	"tetriswrite/internal/tetris"
)

// Traits declare the composition-relevant properties of a scheme entry.
type Traits struct {
	// FlipCells reports that the scheme drives per-unit flip cells
	// itself. At most one layer of a composition may do so.
	FlipCells bool
}

// Entry is one resolvable scheme: a base registration or the result of
// applying decorators to one.
type Entry struct {
	// Name is the canonical name: the same string the built scheme's
	// Name() method returns.
	Name string
	// Help is a one-line description for listings.
	Help string
	// Traits are the entry's composition properties.
	Traits Traits
	// Factory builds one scheme instance per bank.
	Factory schemes.Factory
}

// Decorator wraps an Entry into a new Entry, or rejects the composition.
type Decorator struct {
	Name string
	Help string
	Wrap func(Entry) (Entry, error)
}

// Registry maps names to scheme entries and decorators. The zero value
// is empty and usable; Default() returns the shared registry with the
// repository's full catalogue. A Registry is immutable after its
// registration phase and safe for concurrent resolution.
type Registry struct {
	bases   map[string]Entry
	aliases map[string]string
	decos   map[string]Decorator
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{
		bases:   map[string]Entry{},
		aliases: map[string]string{},
		decos:   map[string]Decorator{},
	}
}

// Register adds a base scheme. The name must be new and must not
// contain the composition separator.
func (r *Registry) Register(e Entry) error {
	if err := r.checkName(e.Name); err != nil {
		return err
	}
	if e.Factory == nil {
		return fmt.Errorf("registry: %q has no factory", e.Name)
	}
	r.bases[e.Name] = e
	return nil
}

// RegisterAlias makes alias resolve to the already-registered base
// canonical.
func (r *Registry) RegisterAlias(alias, canonical string) error {
	if err := r.checkName(alias); err != nil {
		return err
	}
	if _, ok := r.bases[canonical]; !ok {
		return fmt.Errorf("registry: alias %q targets unknown base %q", alias, canonical)
	}
	r.aliases[alias] = canonical
	return nil
}

// RegisterDecorator adds a decorator.
func (r *Registry) RegisterDecorator(d Decorator) error {
	if err := r.checkName(d.Name); err != nil {
		return err
	}
	if d.Wrap == nil {
		return fmt.Errorf("registry: decorator %q has no wrapper", d.Name)
	}
	r.decos[d.Name] = d
	return nil
}

func (r *Registry) checkName(name string) error {
	if name == "" || strings.Contains(name, "+") {
		return fmt.Errorf("registry: invalid name %q", name)
	}
	if _, ok := r.bases[name]; ok {
		return fmt.Errorf("registry: %q already registered", name)
	}
	if _, ok := r.aliases[name]; ok {
		return fmt.Errorf("registry: %q already registered as alias", name)
	}
	if _, ok := r.decos[name]; ok {
		return fmt.Errorf("registry: %q already registered as decorator", name)
	}
	return nil
}

// Bases returns the sorted canonical base names.
func (r *Registry) Bases() []string {
	out := make([]string, 0, len(r.bases))
	for n := range r.bases {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Names returns every resolvable single-segment name — canonical bases
// and aliases — sorted.
func (r *Registry) Names() []string {
	out := make([]string, 0, len(r.bases)+len(r.aliases))
	for n := range r.bases {
		out = append(out, n)
	}
	for n := range r.aliases {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Decorators returns the sorted decorator names.
func (r *Registry) Decorators() []string {
	out := make([]string, 0, len(r.decos))
	for n := range r.decos {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Resolve parses a possibly-composed name and returns its Entry. The
// error of an unknown segment lists the sorted registered names, and a
// trait-invalid composition says which pair clashed.
func (r *Registry) Resolve(name string) (Entry, error) {
	segs := strings.Split(name, "+")
	base := strings.TrimSpace(segs[0])
	canon := base
	if c, ok := r.aliases[base]; ok {
		canon = c
	}
	e, ok := r.bases[canon]
	if !ok {
		return Entry{}, r.unknownErr("scheme", base)
	}
	for _, seg := range segs[1:] {
		dn := strings.TrimSpace(seg)
		d, ok := r.decos[dn]
		if !ok {
			return Entry{}, r.unknownErr("decorator", dn)
		}
		var err error
		e, err = d.Wrap(e)
		if err != nil {
			return Entry{}, fmt.Errorf("registry: %q: %w", name, err)
		}
	}
	return e, nil
}

// Canonical returns the canonical spelling of a possibly-composed,
// possibly-aliased name: the Name() the built scheme reports. This is
// the identity the fleet fingerprints hash.
func (r *Registry) Canonical(name string) (string, error) {
	e, err := r.Resolve(name)
	if err != nil {
		return "", err
	}
	return e.Name, nil
}

func (r *Registry) unknownErr(kind, name string) error {
	return fmt.Errorf("registry: unknown %s %q (schemes: %s; decorators, composed with '+': %s)",
		kind, name, strings.Join(r.Names(), ", "), strings.Join(r.Decorators(), ", "))
}

var (
	defaultOnce sync.Once
	defaultReg  *Registry
)

// Default returns the shared registry holding the repository's full
// scheme catalogue: the six paper schemes (with their table-label
// aliases), the adaptive meta-scheme and the flipmin/remap/mlc
// decorators.
func Default() *Registry {
	defaultOnce.Do(func() {
		defaultReg = New()
		must := func(err error) {
			if err != nil {
				panic(err)
			}
		}
		must(defaultReg.Register(Entry{
			Name: "conventional", Help: "serial worst-case writes, no read",
			Factory: schemes.NewConventional,
		}))
		must(defaultReg.Register(Entry{
			Name: "dcw", Help: "data-comparison write (paper baseline)",
			Factory: schemes.NewDCW,
		}))
		must(defaultReg.Register(Entry{
			Name: "fnw", Help: "Flip-N-Write inversion coding",
			Traits: Traits{FlipCells: true}, Factory: schemes.NewFlipNWrite,
		}))
		must(defaultReg.Register(Entry{
			Name: "twostage", Help: "2-Stage-Write: RESET stage then packed SET stage",
			Traits: Traits{FlipCells: true}, Factory: schemes.NewTwoStage,
		}))
		must(defaultReg.Register(Entry{
			Name: "threestage", Help: "Three-Stage-Write: FNW read+flip over 2-Stage",
			Traits: Traits{FlipCells: true}, Factory: schemes.NewThreeStage,
		}))
		must(defaultReg.Register(Entry{
			Name: "tetris", Help: "Tetris Write pulse packing (the paper's scheme)",
			Traits: Traits{FlipCells: true}, Factory: tetris.New,
		}))
		must(defaultReg.Register(Entry{
			Name: "adaptive", Help: "per-epoch telemetry-driven selection among dcw/fnw/twostage/tetris",
			Traits: Traits{FlipCells: true}, // candidates include flip-cell schemes
			Factory: schemes.NewAdaptive([]schemes.Candidate{
				{Name: "dcw", Factory: schemes.NewDCW},
				{Name: "fnw", Factory: schemes.NewFlipNWrite},
				{Name: "twostage", Factory: schemes.NewTwoStage},
				{Name: "tetris", Factory: tetris.New},
			}, schemes.AdaptiveConfig{}),
		}))
		must(defaultReg.RegisterAlias("baseline", "dcw"))
		must(defaultReg.RegisterAlias("flip-n-write", "fnw"))
		must(defaultReg.RegisterAlias("2stage", "twostage"))
		must(defaultReg.RegisterAlias("3stage", "threestage"))

		must(defaultReg.RegisterDecorator(Decorator{
			Name: "flipmin", Help: "WIRE-style flip-minimizing encoder",
			Wrap: func(e Entry) (Entry, error) {
				if e.Traits.FlipCells {
					return Entry{}, fmt.Errorf("flipmin cannot wrap %q: it already drives flip cells", e.Name)
				}
				inner := e.Factory
				return Entry{
					Name:   e.Name + "+flipmin",
					Help:   e.Help + " + flip-minimizing encoder",
					Traits: Traits{FlipCells: true},
					Factory: func(par pcm.Params) schemes.Scheme {
						return schemes.NewFlipMin(inner(par), par)
					},
				}, nil
			},
		}))
		must(defaultReg.RegisterDecorator(Decorator{
			Name: "remap", Help: "DATACON-style content-aware wear remapping",
			Wrap: func(e Entry) (Entry, error) {
				inner := e.Factory
				out := e
				out.Name = e.Name + "+remap"
				out.Help = e.Help + " + content-aware remapping"
				out.Factory = func(par pcm.Params) schemes.Scheme {
					return schemes.NewRemap(inner(par), par)
				}
				return out, nil
			},
		}))
		must(defaultReg.RegisterDecorator(Decorator{
			Name: "mlc", Help: "MLC program-and-verify latency model (stub)",
			Wrap: func(e Entry) (Entry, error) {
				inner := e.Factory
				out := e
				out.Name = e.Name + "+mlc"
				out.Help = e.Help + " + MLC P&V latency"
				out.Factory = func(par pcm.Params) schemes.Scheme {
					s, err := mlc.NewCellMode(inner(par), par, mlc.DefaultParams())
					if err != nil {
						panic(err) // DefaultParams always validates
					}
					return s
				}
				return out, nil
			},
		}))
	})
	return defaultReg
}
