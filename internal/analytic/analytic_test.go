package analytic

import (
	"math/rand"
	"testing"

	"tetriswrite/internal/pcm"
	"tetriswrite/internal/schemes"
	"tetriswrite/internal/units"
)

func TestDefaultConfigValues(t *testing.T) {
	p := pcm.DefaultParams()
	ns := func(x float64) units.Duration { return units.Nanoseconds(x) }
	cases := []struct {
		name string
		got  units.Duration
		want units.Duration
	}{
		{"conventional", Conventional(p), ns(8 * 430)},
		{"dcw", DCW(p), ns(50 + 8*430)},
		{"fnw", FlipNWrite(p), ns(50 + 4*430)},
		{"twostage", TwoStage(p), ns(8*53 + 2*430)},
		{"threestage", ThreeStage(p), ns(50 + 4*53 + 2*430)},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("%s = %v, want %v", c.name, c.got, c.want)
		}
	}
}

// TestEquationsMatchImplementations cross-validates the closed forms
// against the actual pulse schedulers over several configurations.
func TestEquationsMatchImplementations(t *testing.T) {
	configs := []func() pcm.Params{
		pcm.DefaultParams,
		func() pcm.Params { // mobile: quarter budget
			p := pcm.DefaultParams()
			p.ChipBudget = 8
			return p
		},
		func() pcm.Params { // 128 B lines
			p := pcm.DefaultParams()
			p.LineBytes = 128
			return p
		},
		func() pcm.Params { // slower SET
			p := pcm.DefaultParams()
			p.TSet = 800 * units.Nanosecond
			return p
		},
	}
	rng := rand.New(rand.NewSource(4))
	for ci, mk := range configs {
		par := mk()
		if err := par.Validate(); err != nil {
			t.Fatalf("config %d invalid: %v", ci, err)
		}
		old := make([]byte, par.LineBytes)
		new := make([]byte, par.LineBytes)
		rng.Read(old)
		rng.Read(new)
		cases := []struct {
			f    schemes.Factory
			want units.Duration
		}{
			{schemes.NewConventional, Conventional(par)},
			{schemes.NewDCW, DCW(par)},
			{schemes.NewFlipNWrite, FlipNWrite(par)},
			{schemes.NewTwoStage, TwoStage(par)},
			{schemes.NewThreeStage, ThreeStage(par)},
		}
		for _, c := range cases {
			s := c.f(par)
			if got := s.PlanWrite(0, old, new).ServiceTime(); got != c.want {
				t.Errorf("config %d, %s: implementation %v, equation %v", ci, s.Name(), got, c.want)
			}
		}
	}
}

func TestTetrisEquation(t *testing.T) {
	p := pcm.DefaultParams()
	// result=2, subresult=0, 41 cycles: 50ns + 102.5ns + 2x430ns.
	got := Tetris(p, 2, 0, 41)
	want := units.Nanoseconds(50 + 102.5 + 860)
	if got != want {
		t.Errorf("Tetris(2,0) = %v, want %v", got, want)
	}
	// subresult adds Tset/K quanta.
	got = Tetris(p, 1, 3, 0)
	want = p.TRead + p.TSet + 3*(p.TSet/8)
	if got != want {
		t.Errorf("Tetris(1,3) = %v, want %v", got, want)
	}
}

func TestSpeedupVsBaseline(t *testing.T) {
	p := pcm.DefaultParams()
	if s := SpeedupVsBaseline(p, DCW(p)); s != 1.0 {
		t.Errorf("speedup of baseline vs itself = %v, want 1", s)
	}
	if s := SpeedupVsBaseline(p, ThreeStage(p)); s <= 1.0 {
		t.Errorf("three-stage speedup = %v, want > 1", s)
	}
	if s := SpeedupVsBaseline(p, 0); s != 0 {
		t.Errorf("zero-time speedup = %v, want 0 sentinel", s)
	}
}

// TestOrderingHolds: the paper's ranking must hold across a sweep of
// budgets and line sizes: conventional >= dcw-read... specifically
// baseline > fnw > twostage > threestage in service time for the default
// regime and all remain ordered for larger lines.
func TestOrderingHolds(t *testing.T) {
	for _, line := range []int{64, 128, 256} {
		p := pcm.DefaultParams()
		p.LineBytes = line
		d, f, t2, t3 := DCW(p), FlipNWrite(p), TwoStage(p), ThreeStage(p)
		if !(d > f && f > t2 && t2 > t3) {
			t.Errorf("line %dB: ordering violated: dcw=%v fnw=%v 2sw=%v 3sw=%v", line, d, f, t2, t3)
		}
	}
}
