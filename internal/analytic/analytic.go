// Package analytic provides the closed-form service-time models of the
// paper's Equations 1-5. The formulas are written independently of the
// scheme implementations (slot arithmetic duplicated on purpose) so the
// test suite can cross-validate the two: for any configuration, the pulse
// schedules built by package schemes must take exactly the time these
// equations predict.
package analytic

import (
	"tetriswrite/internal/pcm"
	"tetriswrite/internal/units"
)

// slots is the worst-case serial-slot count for nUnits data units of
// worstCells cells each at per-cell current cur under budget.
func slots(nUnits, worstCells, cur, budget int) int {
	perUnit := worstCells * cur
	if perUnit <= budget {
		unitsPerSlot := budget / perUnit
		return (nUnits + unitsPerSlot - 1) / unitsPerSlot
	}
	capBits := budget / cur
	return nUnits * ((worstCells + capBits - 1) / capBits)
}

// Conventional is Equation 1: the conventional scheme writes N/M serial
// write units, each charged Tset. With the paper's parameters this is
// exactly (N/M) x Tset; the general form accounts for budgets that fit
// several (or fractions of) worst-case units per slot.
func Conventional(p pcm.Params) units.Duration {
	n := slots(p.DataUnits(), p.ChipWidthBits, p.CurrentReset, p.ChipBudget)
	return units.Duration(n) * p.TSet
}

// DCW is the paper's baseline: conventional timing plus the
// data-comparison read.
func DCW(p pcm.Params) units.Duration {
	return p.TRead + Conventional(p)
}

// FlipNWrite is Equation 2: Tread + 1/2 x (N/M) x Tset. Inversion coding
// halves the worst-case changed cells, so two units share a write unit.
func FlipNWrite(p pcm.Params) units.Duration {
	n := slots(p.DataUnits(), p.ChipWidthBits/2, p.CurrentReset, p.ChipBudget)
	return p.TRead + units.Duration(n)*p.TSet
}

// TwoStage is Equation 3: (1/K + 1/2L) x (N/M) x Tset — a RESET stage of
// N/M short slots followed by a SET stage packed 2L units per slot.
func TwoStage(p pcm.Params) units.Duration {
	n0 := slots(p.DataUnits(), p.ChipWidthBits, p.CurrentReset, p.ChipBudget)
	n1 := slots(p.DataUnits(), p.ChipWidthBits/2, p.CurrentSet, p.ChipBudget)
	return units.Duration(n0)*p.TReset + units.Duration(n1)*p.TSet
}

// ThreeStage is Equation 4: Tread + (1/2K + 1/2L) x (N/M) x Tset — both
// stages halved by the read-and-flip front end.
func ThreeStage(p pcm.Params) units.Duration {
	n0 := slots(p.DataUnits(), p.ChipWidthBits/2, p.CurrentReset, p.ChipBudget)
	n1 := slots(p.DataUnits(), p.ChipWidthBits/2, p.CurrentSet, p.ChipBudget)
	return p.TRead + units.Duration(n0)*p.TReset + units.Duration(n1)*p.TSet
}

// Tetris is Equation 5: (result + subresult/K) x Tset, plus the read and
// analysis overheads. result and subresult come from the analysis stage.
func Tetris(p pcm.Params, result, subresult, analysisCycles int) units.Duration {
	k := units.Duration(p.K())
	pitch := p.TSet / k
	write := units.Duration(result)*p.TSet + units.Duration(subresult)*pitch
	return p.TRead + p.MemClock.Cycles(int64(analysisCycles)) + write
}

// SpeedupVsBaseline returns DCW service time divided by the given
// service time: the write-latency improvement factor a scheme earns in
// isolation (no queueing).
func SpeedupVsBaseline(p pcm.Params, t units.Duration) float64 {
	if t == 0 {
		return 0
	}
	return float64(DCW(p)) / float64(t)
}
