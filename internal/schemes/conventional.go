package schemes

import (
	"tetriswrite/internal/bitutil"
	"tetriswrite/internal/pcm"
	"tetriswrite/internal/units"
)

// conventional is the naive write scheme: every data unit is programmed
// serially, every cell is pulsed to its target value regardless of what
// is stored, and each write unit is charged the worst-case SET time.
// Service time is Equation 1 of the paper: (N/M) x Tset with the default
// budget, where a worst-case all-RESET unit exactly fills one chip's
// budget.
type conventional struct {
	par pcm.Params
	PulseArena
}

// NewConventional returns the conventional scheme.
func NewConventional(par pcm.Params) Scheme { return &conventional{par: par} }

func (s *conventional) Name() string               { return "conventional" }
func (s *conventional) NeedsReadBeforeWrite() bool { return false }

func (s *conventional) PlanWrite(addr pcm.LineAddr, old, new []byte) Plan {
	p := basePlan(s.par)
	p.Pulses = s.TakePulses()
	nu := s.par.DataUnits()
	lay := newStaticLayout(s.par.ChipWidthBits, s.par.CurrentReset, s.par.ChipBudget)
	p.Write = units.Duration(lay.slots(nu)) * s.par.TSet
	clock := slotClock{pitch: s.par.TSet}

	width := bitutil.WidthMask(s.par.ChipWidthBits)
	wb := s.par.ChipWidthBits / 8
	for u := 0; u < nu; u++ {
		for c := 0; c < s.par.NumChips; c++ {
			w := bitutil.ChipSlice(new, s.par.NumChips, wb, c, u)
			emitStreams(&p, lay, clock, c, u,
				stream{Reset, ^w & width},
				stream{Set, w},
			)
		}
	}
	return p
}
