package schemes_test

import (
	"testing"

	"tetriswrite/internal/pcm"
	"tetriswrite/internal/schemes"
)

// Steady-state plan emission must not allocate: with the caller recycling
// plans, repeated writes reuse the arena's pulse buffers and the schemes'
// internal scratch. This pins the property the benchmarks measure.
func TestPlanWriteZeroAllocsSteadyState(t *testing.T) {
	par := pcm.DefaultParams()
	factories := map[string]schemes.Factory{
		"conventional": schemes.NewConventional,
		"dcw":          schemes.NewDCW,
		"fnw":          schemes.NewFlipNWrite,
		"twostage":     schemes.NewTwoStage,
		"threestage":   schemes.NewThreeStage,
	}
	old := make([]byte, par.LineBytes)
	new_ := make([]byte, par.LineBytes)
	for i := range new_ {
		new_[i] = byte(i * 37)
	}
	addr := pcm.LineAddr(3)
	for name, factory := range factories {
		t.Run(name, func(t *testing.T) {
			s := factory(par)
			rec, ok := s.(schemes.PlanRecycler)
			if !ok {
				t.Fatalf("%s does not implement PlanRecycler", name)
			}
			// Warm up: touch the line so flip state exists, grow the arena.
			for i := 0; i < 4; i++ {
				rec.RecyclePlan(s.PlanWrite(addr, old, new_))
			}
			allocs := testing.AllocsPerRun(100, func() {
				rec.RecyclePlan(s.PlanWrite(addr, old, new_))
			})
			if allocs != 0 {
				t.Errorf("%s: PlanWrite allocates %v objects/op in steady state, want 0", name, allocs)
			}
		})
	}
}

// Recycled buffers must not corrupt plans that are still alive: two
// back-to-back plans without recycling in between must not share storage.
func TestRecyclePlanDoesNotAliasLivePlans(t *testing.T) {
	par := pcm.DefaultParams()
	s := schemes.NewDCW(par)
	rec := s.(schemes.PlanRecycler)
	old := make([]byte, par.LineBytes)
	data1 := make([]byte, par.LineBytes)
	data2 := make([]byte, par.LineBytes)
	for i := range data1 {
		data1[i] = 0xAA
		data2[i] = 0x55
	}
	p1 := s.PlanWrite(pcm.LineAddr(1), old, data1)
	snapshot := append([]schemes.Pulse(nil), p1.Pulses...)
	p2 := s.PlanWrite(pcm.LineAddr(2), old, data2) // no recycle: must not steal p1's buffer
	for i := range p1.Pulses {
		if p1.Pulses[i] != snapshot[i] {
			t.Fatalf("live plan mutated by later PlanWrite at pulse %d", i)
		}
	}
	rec.RecyclePlan(p1)
	rec.RecyclePlan(p2)
}
