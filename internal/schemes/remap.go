package schemes

import (
	"math"

	"tetriswrite/internal/bitutil"
	"tetriswrite/internal/linestore"
	"tetriswrite/internal/pcm"
	"tetriswrite/internal/units"
)

// remapper is a DATACON-style content-aware remapping decorator (cf.
// arXiv 2005.04753): it tracks the flip density of every written line —
// an EWMA of the fraction of bits each write changes — and, when a line
// runs persistently hotter than the global average, swaps its physical
// frame with the least-worn frame of the active working set. The swap is
// charged as migration latency (two line reads plus two full rewrites)
// on the triggering write's analysis phase, and the per-frame wear
// ledger follows the pulses thereafter.
//
// The remapping is wear-accounting only: the inner scheme keeps planning
// under the logical address, so its per-line coding state, the device's
// stored image and the invariant guard's shadow array all stay keyed the
// same way. What moves is the identity of the physical frame that ages —
// exactly the quantity the wear ledger and the migration cost model
// need. This keeps the composition correct under any inner scheme while
// still simulating DATACON's steering decisions and their latency bill.
type remapper struct {
	inner  Scheme
	rec    PlanRecycler
	reader FlipTagReader
	par    pcm.Params
	name   string

	// fwd maps logical line -> [phys frame+1, density EWMA bits, writes
	// since last migration]; rev maps phys frame -> logical line+1; wear
	// maps phys frame -> pulsed cells. Unmapped lines are identity-mapped.
	fwd  *linestore.Store
	rev  *linestore.Store
	wear *linestore.Store

	globalEWMA float64
	coldPhys   int64 // least-worn touched frame seen so far; -1 = none
	coldWear   uint64
	migCost    units.Duration

	stats struct {
		migrations int64
		migTime    units.Duration
		hotWrites  int64 // writes that found their line above the hot threshold
	}
}

// Remap tuning: a line is hot when its density EWMA exceeds hotFactor
// times the global EWMA, it has accumulated minWrites writes since its
// last migration, and its frame is strictly more worn than the coldest
// known frame. Alpha is the EWMA smoothing factor.
const (
	remapHotFactor = 2.0
	remapMinWrites = 8
	remapAlpha     = 0.125
)

// NewRemap wraps inner with the content-aware remapper.
func NewRemap(inner Scheme, par pcm.Params) Scheme {
	lay := newStaticLayout(par.ChipWidthBits, par.CurrentReset, par.ChipBudget)
	s := &remapper{
		inner:    inner,
		par:      par,
		name:     inner.Name() + "+remap",
		fwd:      linestore.NewStore(3),
		rev:      linestore.NewStore(1),
		wear:     linestore.NewStore(1),
		coldPhys: -1,
		// Migrating swaps two frames: read both lines, rewrite both at
		// the conventional worst-case span.
		migCost: 2 * (par.TRead + units.Duration(lay.slots(par.DataUnits()))*par.TSet),
	}
	s.rec, _ = inner.(PlanRecycler)
	s.reader, _ = inner.(FlipTagReader)
	return s
}

func (s *remapper) Name() string               { return s.name }
func (s *remapper) NeedsReadBeforeWrite() bool { return s.inner.NeedsReadBeforeWrite() }

// FlipTags forwards the inner scheme's coding state, so a remapped
// scheme remains eligible for adaptive line handover.
func (s *remapper) FlipTags(addr pcm.LineAddr) uint64 {
	if s.reader == nil {
		return 0
	}
	return s.reader.FlipTags(addr)
}

// RecyclePlan implements PlanRecycler by routing to the inner arena.
func (s *remapper) RecyclePlan(p Plan) {
	if s.rec != nil {
		s.rec.RecyclePlan(p)
	}
}

// ObserveQueues forwards controller load to the inner scheme.
func (s *remapper) ObserveQueues(reads, writes int) {
	if o, ok := s.inner.(QueueObserver); ok {
		o.ObserveQueues(reads, writes)
	}
}

// SchemeStats implements StatProvider.
func (s *remapper) SchemeStats(emit func(name string, value float64)) {
	emit("scheme.remap.migrations", float64(s.stats.migrations))
	emit("scheme.remap.migration_time", float64(s.stats.migTime))
	emit("scheme.remap.hot_writes", float64(s.stats.hotWrites))
	emit("scheme.remap.tracked_lines", float64(s.fwd.Len()))
	if sp, ok := s.inner.(StatProvider); ok {
		sp.SchemeStats(emit)
	}
}

// phys returns the line's current frame, establishing the identity
// mapping on first touch.
func (s *remapper) entry(addr pcm.LineAddr) []uint64 {
	w := s.fwd.Ensure(int64(addr))
	if w[0] == 0 {
		w[0] = uint64(addr) + 1
		s.rev.Ensure(int64(addr))[0] = uint64(addr) + 1
	}
	return w
}

func (s *remapper) PlanWrite(addr pcm.LineAddr, old, new []byte) Plan {
	p := s.inner.PlanWrite(addr, old, new)

	w := s.entry(addr)
	phys := int64(w[0] - 1)

	// Flip density of this write and the line/global EWMAs.
	d := float64(bitutil.HammingBytes(old, new)) / float64(s.par.LineBytes*8)
	lineEWMA := math.Float64frombits(w[1])
	if w[2] == 0 && w[1] == 0 {
		lineEWMA = d
	} else {
		lineEWMA = (1-remapAlpha)*lineEWMA + remapAlpha*d
	}
	w[1] = math.Float64bits(lineEWMA)
	w[2]++
	if s.globalEWMA == 0 {
		s.globalEWMA = d
	} else {
		s.globalEWMA = (1-remapAlpha)*s.globalEWMA + remapAlpha*d
	}

	// Wear follows the pulses onto the line's current frame.
	sets, resets := p.Counts()
	ww := s.wear.Ensure(phys)
	ww[0] += uint64(sets + resets)
	curWear := ww[0]

	hot := lineEWMA > remapHotFactor*s.globalEWMA && s.globalEWMA > 0
	if hot {
		s.stats.hotWrites++
	}
	if hot && w[2] >= remapMinWrites &&
		s.coldPhys >= 0 && s.coldPhys != phys && curWear > s.coldWear {
		s.migrate(addr, w, phys)
		p.Analysis += s.migCost
	} else if s.coldPhys < 0 || curWear < s.coldWear {
		s.coldPhys, s.coldWear = phys, curWear
	} else if phys == s.coldPhys {
		s.coldWear = curWear
	}
	return p
}

// migrate swaps the hot line's frame with the coldest known frame,
// updating both directions of the mapping and resetting the hot line's
// write streak. The coldest-frame election restarts afterwards — the
// frame just inherited the hot line.
func (s *remapper) migrate(addr pcm.LineAddr, w []uint64, phys int64) {
	cold := s.coldPhys
	partnerW := s.rev.Ensure(cold)
	partner := cold // identity when the frame was never mapped
	if partnerW[0] != 0 {
		partner = int64(partnerW[0] - 1)
	}
	// rev.Ensure may rehash; re-fetch the hot line's rev entry after.
	w[0] = uint64(cold) + 1
	w[2] = 0
	s.rev.Ensure(cold)[0] = uint64(addr) + 1
	if partner != int64(addr) {
		pw := s.fwd.Ensure(partner)
		pw[0] = uint64(phys) + 1
		s.rev.Ensure(phys)[0] = uint64(partner) + 1
	}
	s.coldPhys, s.coldWear = -1, 0
	s.stats.migrations++
	s.stats.migTime += s.migCost
}
