// Package schemes defines the common interface of PCM cache-line write
// schemes and implements the state of the art the paper compares against:
//
//   - Conventional: serial write units, every cell pulsed, worst-case time;
//   - DCW (the paper's baseline): read-before-write, only changed cells
//     pulsed, but worst-case serial timing;
//   - Flip-N-Write: inversion coding halves the worst-case changed cells,
//     so two data units share one write unit;
//   - 2-Stage-Write: all RESETs first (fast), then SETs packed under the
//     lower SET current, with SET-minimizing inversion;
//   - Three-Stage-Write: Flip-N-Write's read+flip stage glued onto
//     2-Stage-Write, halving both stages.
//
// The Tetris Write scheme itself lives in package tetris; it implements
// the same Scheme interface.
//
// A scheme turns one cache-line write into a Plan: a pulse schedule with
// read/analysis/write phases. Plans are self-describing enough for three
// independent consumers: the memory-controller simulator (service time),
// the energy accounting (pulse counts), and the test oracles (the pulse
// train must respect the power budget at every instant and must transform
// the stored bits into the new data).
package schemes

import (
	"cmp"
	"fmt"
	"slices"

	"tetriswrite/internal/pcm"
	"tetriswrite/internal/power"
	"tetriswrite/internal/units"
)

// PulseKind distinguishes the two PCM programming pulses.
type PulseKind uint8

const (
	// Set crystallizes cells: writes '1', slow, low current.
	Set PulseKind = iota
	// Reset amorphizes cells: writes '0', fast, high current.
	Reset
)

// String returns "SET" or "RESET".
func (k PulseKind) String() string {
	if k == Set {
		return "SET"
	}
	return "RESET"
}

// Pulse is one group of simultaneous same-kind pulses on one chip within
// one data unit: the granularity the write driver actually operates at.
type Pulse struct {
	Chip     int            // chip index within the bank
	Unit     int            // data unit index within the line
	Kind     PulseKind      // SET or RESET
	Start    units.Duration // offset from the start of the write phase
	Mask     uint16         // data cells pulsed within the chip slice
	FlipCell bool           // the unit's flip cell is pulsed too
}

// Bits returns the number of cells pulsed by this record, including the
// flip cell. This is the energy-accounting count.
func (p Pulse) Bits() int {
	n := popcount16(p.Mask)
	if p.FlipCell {
		n++
	}
	return n
}

// DataBits returns the number of data cells pulsed by this record,
// excluding the flip cell. This is the power-budget count: following the
// paper's own arithmetic (its Figure 4 example counts 8+7+7+6+3 data bits
// against the budget of 32), the flip-bit drivers sit outside the data
// budget — in the prototype the 8 flip bits per 128 data bits have their
// own driver column.
func (p Pulse) DataBits() int { return popcount16(p.Mask) }

func popcount16(x uint16) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

// Plan is the full schedule of one cache-line write.
type Plan struct {
	// Read is the read-before-write latency (zero for schemes without
	// data comparison), Analysis the scheduling overhead (Tetris only)
	// and Write the span of the programming phase.
	Read     units.Duration
	Analysis units.Duration
	Write    units.Duration

	// Pulses hold the programming schedule, offsets relative to the start
	// of the write phase.
	Pulses []Pulse

	// Pulse duration and current per kind, copied from the device
	// parameters so a Plan can be checked without them.
	TSet, TReset             units.Duration
	CurrentSet, CurrentReset int
}

// ServiceTime returns the total array occupancy of the write.
func (p Plan) ServiceTime() units.Duration { return p.Read + p.Analysis + p.Write }

// WriteUnits returns the write phase expressed in units of Tset — the
// paper's Figure 10 metric ("number of write units"): 8 for the baseline,
// 4 for Flip-N-Write, 3 for 2-Stage-Write, 2.5 for Three-Stage-Write, and
// result + subresult/K for Tetris Write.
func (p Plan) WriteUnits() float64 {
	if p.TSet == 0 {
		return 0
	}
	return float64(p.Write) / float64(p.TSet)
}

// Counts returns the number of SET and RESET cell pulses in the plan,
// including flip cells.
func (p Plan) Counts() (sets, resets int) {
	for _, pl := range p.Pulses {
		if pl.Kind == Set {
			sets += pl.Bits()
		} else {
			resets += pl.Bits()
		}
	}
	return sets, resets
}

// dur returns the pulse length of kind k.
func (p Plan) dur(k PulseKind) units.Duration {
	if k == Set {
		return p.TSet
	}
	return p.TReset
}

// current returns the per-cell current of kind k.
func (p Plan) current(k PulseKind) int {
	if k == Set {
		return p.CurrentSet
	}
	return p.CurrentReset
}

// Profile converts the plan's pulse train into a power profile with the
// write phase starting at time origin. Only data cells draw from the
// budget (see Pulse.DataBits).
func (p Plan) Profile(origin units.Time) *power.Profile {
	var prof power.Profile
	for _, pl := range p.Pulses {
		start := origin.Add(pl.Start)
		prof.Add(pl.Chip, start, start.Add(p.dur(pl.Kind)), pl.DataBits()*p.current(pl.Kind))
	}
	return &prof
}

// Validate performs structural checks every plan must satisfy: pulses lie
// within the write phase, masks are nonempty, and no cell is pulsed twice.
func (p Plan) Validate(par pcm.Params) error {
	type cell struct {
		chip, unit int
		flip       bool
		bit        int
	}
	seen := map[cell]bool{}
	for i, pl := range p.Pulses {
		if pl.Chip < 0 || pl.Chip >= par.NumChips {
			return fmt.Errorf("pulse %d: chip %d out of range", i, pl.Chip)
		}
		if pl.Unit < 0 || pl.Unit >= par.DataUnits() {
			return fmt.Errorf("pulse %d: unit %d out of range", i, pl.Unit)
		}
		if pl.Mask == 0 && !pl.FlipCell {
			return fmt.Errorf("pulse %d: empty pulse record", i)
		}
		if pl.Start < 0 || pl.Start+p.dur(pl.Kind) > p.Write {
			return fmt.Errorf("pulse %d: [%v, +%v) outside write phase %v",
				i, pl.Start, p.dur(pl.Kind), p.Write)
		}
		for b := 0; b < 16; b++ {
			if pl.Mask&(1<<b) == 0 {
				continue
			}
			c := cell{pl.Chip, pl.Unit, false, b}
			if seen[c] {
				return fmt.Errorf("pulse %d: cell %+v pulsed twice", i, c)
			}
			seen[c] = true
		}
		if pl.FlipCell {
			c := cell{pl.Chip, pl.Unit, true, 0}
			if seen[c] {
				return fmt.Errorf("pulse %d: flip cell %+v pulsed twice", i, c)
			}
			seen[c] = true
		}
	}
	return nil
}

// SortPulses orders the plan's pulses by start time (then chip, unit,
// kind, flip-cell flag, mask) for deterministic output. The comparator is
// a total order — Plan.Validate forbids two pulses identical in every
// field — so the sorted order is unique regardless of input order or sort
// algorithm, which is what lets the scratch-arena path and the
// fresh-allocation path produce bit-identical plans.
//
// The common case packs the whole comparator key into one uint64 per
// pulse — Start(36) Chip(4) Unit(6) Kind(1) FlipCell(1) Mask(16), in
// comparator significance order — sorts the keys natively, and decodes
// the pulses back out of them. Plans whose fields overflow the packing
// (enormous starts, exotic geometries) take the comparator sort; both
// produce the identical unique order.
func (p *Plan) SortPulses() {
	if len(p.Pulses) < 2 {
		return
	}
	var keyBuf [256]uint64
	keys := keyBuf[:0]
	if len(p.Pulses) > len(keyBuf) {
		keys = make([]uint64, 0, len(p.Pulses))
	}
	for _, pl := range p.Pulses {
		if uint64(pl.Start) >= 1<<36 || uint(pl.Chip) >= 16 || uint(pl.Unit) >= 64 || pl.Kind > Reset {
			p.sortPulsesSlow()
			return
		}
		k := uint64(pl.Start)<<28 | uint64(pl.Chip)<<24 | uint64(pl.Unit)<<18 | uint64(pl.Kind)<<17 | uint64(pl.Mask)
		if pl.FlipCell {
			k |= 1 << 16
		}
		keys = append(keys, k)
	}
	slices.Sort(keys)
	for i, k := range keys {
		p.Pulses[i] = Pulse{
			Chip:     int(k >> 24 & 0xF),
			Unit:     int(k >> 18 & 0x3F),
			Kind:     PulseKind(k >> 17 & 1),
			Start:    units.Duration(k >> 28),
			Mask:     uint16(k),
			FlipCell: k&(1<<16) != 0,
		}
	}
}

func (p *Plan) sortPulsesSlow() {
	slices.SortFunc(p.Pulses, func(a, b Pulse) int {
		if a.Start != b.Start {
			return cmp.Compare(a.Start, b.Start)
		}
		if a.Chip != b.Chip {
			return cmp.Compare(a.Chip, b.Chip)
		}
		if a.Unit != b.Unit {
			return cmp.Compare(a.Unit, b.Unit)
		}
		if a.Kind != b.Kind {
			return cmp.Compare(a.Kind, b.Kind)
		}
		if a.FlipCell != b.FlipCell {
			if a.FlipCell {
				return 1
			}
			return -1
		}
		return cmp.Compare(a.Mask, b.Mask)
	})
}

// Scheme plans cache-line writes. Implementations carry per-line coding
// state (flip tags) and are NOT safe for concurrent use; give each bank
// its own instance via a Factory.
type Scheme interface {
	// Name returns the scheme's short identifier, e.g. "fnw".
	Name() string

	// PlanWrite computes the pulse schedule that turns the currently
	// stored logical contents old into new, updating the scheme's coding
	// state for the line. Both slices are LineBytes long; PlanWrite does
	// not retain them.
	PlanWrite(addr pcm.LineAddr, old, new []byte) Plan

	// NeedsReadBeforeWrite reports whether the scheme performs an array
	// read before writing (data-comparison schemes do).
	NeedsReadBeforeWrite() bool
}

// Factory builds a fresh scheme instance for one bank.
type Factory func(pcm.Params) Scheme

// Presetter is implemented by schemes that support PreSET (Qureshi et
// al., ISCA'12): during idle time the controller proactively drives every
// cell of a line to the SET state, so the eventual write needs only fast
// RESET pulses. PlanPreset returns the pulse schedule that takes the
// stored line (current logical contents old) to logical all-ones with no
// inversion, updating the scheme's coding state accordingly. The caller
// must then store all-ones as the line's logical contents.
type Presetter interface {
	Scheme
	PlanPreset(addr pcm.LineAddr, old []byte) Plan
}

// FlipTagReader is implemented by schemes whose per-line coding state is
// exactly one inversion tag per (chip, data unit), packed into a uint64
// with bit index u*NumChips+c — the layout shared by flipState and the
// Tetris scheme. FlipTags returns the line's tag word (zero for a line
// never written). The adaptive meta-scheme uses it to hand a line over
// between candidate schemes only when the tags are all clear, so the
// receiving scheme's (implicitly zero) state still decodes the line.
type FlipTagReader interface {
	FlipTags(addr pcm.LineAddr) uint64
}

// QueueObserver is implemented by schemes that adapt to controller load.
// The memory controller calls ObserveQueues with the bank's current read
// and write queue depths immediately before each PlanWrite. The depths
// are a deterministic function of the simulated request stream, so
// schemes may fold them into planning decisions without breaking the
// replay-identical contract.
type QueueObserver interface {
	ObserveQueues(reads, writes int)
}

// StatProvider is implemented by schemes that export internal counters
// to the telemetry layer. SchemeStats calls emit once per counter with a
// fully-qualified series name (e.g. "scheme.adaptive.switches") and its
// current value. Decorators forward their inner scheme's stats and add
// their own; the controller sums the emissions across banks.
type StatProvider interface {
	SchemeStats(emit func(name string, value float64))
}

// PowerBudget derives the bank's power constraint from the device
// parameters.
func PowerBudget(par pcm.Params) power.Budget {
	return power.Budget{PerChip: par.ChipBudget, Chips: par.NumChips, GCP: par.GlobalChargePump}
}

// basePlan fills the Plan fields every scheme copies from the parameters.
func basePlan(par pcm.Params) Plan {
	return Plan{
		TSet:         par.TSet,
		TReset:       par.TReset,
		CurrentSet:   par.CurrentSet,
		CurrentReset: par.CurrentReset,
	}
}

// ceilDiv returns ceil(a/b) for positive b.
func ceilDiv(a, b int) int { return (a + b - 1) / b }

// staticLayout is the slot arithmetic shared by every scheme except
// Tetris: schedules are shaped by the worst case (worstCells cells per
// data unit, each drawing worstCur) and never by the actual data. When one
// worst-case unit fits the per-chip budget, several units share a slot;
// when it does not (tiny mobile budgets), each unit is split across
// several slots of capBits cells each.
type staticLayout struct {
	unitsPerSlot int // data units that share one slot (1 in split regime)
	slotsPerUnit int // slots one data unit spans (1 in shared regime)
	capBits      int // cells one chip may pulse per slot
}

func newStaticLayout(worstCells, worstCur, budget int) staticLayout {
	perUnit := worstCells * worstCur
	if perUnit <= budget {
		return staticLayout{
			unitsPerSlot: budget / perUnit,
			slotsPerUnit: 1,
			capBits:      worstCells,
		}
	}
	capBits := budget / worstCur // >= 1: Params.Validate requires budget >= CurrentReset
	return staticLayout{
		unitsPerSlot: 1,
		slotsPerUnit: ceilDiv(worstCells, capBits),
		capBits:      capBits,
	}
}

// slots returns the total serial slot count for nUnits data units.
func (l staticLayout) slots(nUnits int) int {
	if nUnits == 0 {
		return 0
	}
	return ceilDiv(nUnits, l.unitsPerSlot) * l.slotsPerUnit
}

// firstSlot returns the first slot index of data unit u.
func (l staticLayout) firstSlot(u int) int {
	return (u / l.unitsPerSlot) * l.slotsPerUnit
}
