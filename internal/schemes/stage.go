package schemes

import (
	"tetriswrite/internal/bitutil"
	"tetriswrite/internal/pcm"
	"tetriswrite/internal/units"
)

// twoStage is 2-Stage-Write (Yue & Zhu, HPCA'13): the write is split into
// a RESET stage and a SET stage to exploit both PCM asymmetries. All
// write-0s execute first in short Treset slots; then the low SET current
// lets several units' write-1s share each Tset slot. The data is inverted
// when more than half its bits are ones, halving the worst-case SET count
// (but no cells are skipped — there is no read, so 2-Stage-Write does not
// save energy). Service time is Equation 3: (1/K + 1/2L) x (N/M) x Tset.
type twoStage struct {
	par   pcm.Params
	flips *flipState
	PulseArena
}

// NewTwoStage returns the 2-Stage-Write scheme.
func NewTwoStage(par pcm.Params) Scheme {
	return &twoStage{par: par, flips: newFlipState(par.NumChips)}
}

func (s *twoStage) Name() string               { return "twostage" }
func (s *twoStage) NeedsReadBeforeWrite() bool { return false }

// FlipTags implements FlipTagReader.
func (s *twoStage) FlipTags(addr pcm.LineAddr) uint64 { return s.flips.word(addr) }

func (s *twoStage) PlanWrite(addr pcm.LineAddr, old, new []byte) Plan {
	p := basePlan(s.par)
	p.Pulses = s.TakePulses()
	nu := s.par.DataUnits()
	w := s.par.ChipWidthBits

	lay0 := newStaticLayout(w, s.par.CurrentReset, s.par.ChipBudget) // RESET stage: all cells may be zeros
	lay1 := newStaticLayout(w/2, s.par.CurrentSet, s.par.ChipBudget) // SET stage: inversion bounds ones by w/2
	n0 := lay0.slots(nu)
	n1 := lay1.slots(nu)
	stage0Span := units.Duration(n0) * s.par.TReset
	p.Write = stage0Span + units.Duration(n1)*s.par.TSet
	clock0 := slotClock{pitch: s.par.TReset}
	clock1 := slotClock{base: stage0Span, pitch: s.par.TSet}

	width := bitutil.WidthMask(w)
	wbytes := w / 8
	for u := 0; u < nu; u++ {
		for c := 0; c < s.par.NumChips; c++ {
			logical := bitutil.ChipSlice(new, s.par.NumChips, wbytes, c, u)
			enc := logical & width
			flip := false
			if bitutil.PopCount16(logical&width) > w/2 {
				enc, flip = ^logical&width, true
			}
			s.flips.set(addr, c, u, flip)
			// Every cell is programmed: zeros in stage 0, ones in stage 1.
			emitStreams(&p, lay0, clock0, c, u, stream{Reset, ^enc & width})
			emitStreams(&p, lay1, clock1, c, u, stream{Set, enc})
			if flip {
				emitFlip(&p, lay1, clock1, c, u, Set)
			} else {
				emitFlip(&p, lay0, clock0, c, u, Reset)
			}
		}
	}
	return p
}

// threeStage is Three-Stage-Write (Li et al., ASP-DAC'15): Flip-N-Write's
// read-and-flip stage bolted onto 2-Stage-Write. The Hamming-distance
// inversion bounds *changed* cells by half the width, so the RESET stage
// packs two units per slot and the SET stage four, and only changed cells
// are pulsed (energy is saved like Flip-N-Write). Service time is
// Equation 4: Tread + (1/2K + 1/2L) x (N/M) x Tset.
type threeStage struct {
	par   pcm.Params
	flips *flipState
	PulseArena
}

// NewThreeStage returns the Three-Stage-Write scheme.
func NewThreeStage(par pcm.Params) Scheme {
	return &threeStage{par: par, flips: newFlipState(par.NumChips)}
}

func (s *threeStage) Name() string               { return "threestage" }
func (s *threeStage) NeedsReadBeforeWrite() bool { return true }

// FlipTags implements FlipTagReader.
func (s *threeStage) FlipTags(addr pcm.LineAddr) uint64 { return s.flips.word(addr) }

func (s *threeStage) PlanWrite(addr pcm.LineAddr, old, new []byte) Plan {
	p := basePlan(s.par)
	p.Pulses = s.TakePulses()
	p.Read = s.par.TRead
	nu := s.par.DataUnits()
	w := s.par.ChipWidthBits

	lay0 := newStaticLayout(w/2, s.par.CurrentReset, s.par.ChipBudget) // changed cells <= w/2 after flip
	lay1 := newStaticLayout(w/2, s.par.CurrentSet, s.par.ChipBudget)
	n0 := lay0.slots(nu)
	n1 := lay1.slots(nu)
	stage0Span := units.Duration(n0) * s.par.TReset
	p.Write = stage0Span + units.Duration(n1)*s.par.TSet
	clock0 := slotClock{pitch: s.par.TReset}
	clock1 := slotClock{base: stage0Span, pitch: s.par.TSet}

	wbytes := w / 8
	for u := 0; u < nu; u++ {
		for c := 0; c < s.par.NumChips; c++ {
			logicalOld := bitutil.ChipSlice(old, s.par.NumChips, wbytes, c, u)
			logicalNew := bitutil.ChipSlice(new, s.par.NumChips, wbytes, c, u)
			stored := bitutil.FlipWord{
				Bits: s.flips.encoded(addr, c, u, w, logicalOld),
				Flip: s.flips.get(addr, c, u),
			}
			enc, tr, flipSet, flipReset := bitutil.FlipTransition(stored, logicalNew, w)
			s.flips.set(addr, c, u, enc.Flip)
			emitStreams(&p, lay0, clock0, c, u, stream{Reset, tr.Resets})
			emitStreams(&p, lay1, clock1, c, u, stream{Set, tr.Sets})
			if flipSet {
				emitFlip(&p, lay1, clock1, c, u, Set)
			} else if flipReset {
				emitFlip(&p, lay0, clock0, c, u, Reset)
			}
		}
	}
	return p
}
