package schemes

import (
	"math/bits"

	"tetriswrite/internal/units"
)

// stream is one kind of cell pulses to emit for a (chip, unit) pair.
type stream struct {
	kind PulseKind
	mask uint16
}

// slotClock maps slot indices to write-phase offsets under the static
// layouts, where slots are evenly pitched: start(i) = base + i*pitch. A
// value type instead of a closure keeps plan emission off the heap.
type slotClock struct {
	base, pitch units.Duration
}

func (sc slotClock) start(i int) units.Duration {
	return sc.base + units.Duration(i)*sc.pitch
}

// emitStreams places the cells of the given streams into data unit u's
// slots under the static layout: cells are consumed in stream order (and
// bit order within a stream) and assigned capBits cells per slot starting
// at the unit's first slot. slotStart maps slot indices to write-phase
// offsets. One pulse record is emitted per (slot, kind) with the combined
// mask.
//
// In the shared regime (slotsPerUnit == 1) all cells land in the unit's
// single slot; in the split regime the unit's cells spill across its
// reserved consecutive slots, never exceeding capBits cells per slot —
// which is what keeps the chip under its budget even when a single
// worst-case data unit would not fit it.
func emitStreams(p *Plan, lay staticLayout, clock slotClock, chip, unit int, streams ...stream) {
	first := lay.firstSlot(unit)
	// Accumulate per-slot masks for both kinds; units never span more
	// than slotsPerUnit slots by construction, and slotsPerUnit is at
	// most the 16-cell chip width (capBits >= 1), so the accumulator
	// lives on the stack — this sits on the per-write hot path.
	type slotMasks struct{ set, reset uint16 }
	var accBuf [16]slotMasks
	acc := accBuf[:min(lay.slotsPerUnit, len(accBuf))]
	if lay.slotsPerUnit > len(accBuf) {
		acc = make([]slotMasks, lay.slotsPerUnit)
	}
	k := 0
	for _, s := range streams {
		// Walk the mask a slot's worth of set bits at a time instead of
		// bit-by-bit: in the common shared regime the whole stream fits
		// the current slot and costs one popcount; otherwise the lowest
		// `room` bits are peeled off with mask &= mask-1. Cells are still
		// consumed in ascending bit order, so the per-slot masks (and the
		// emitted pulse sequence) are identical to the scalar walk.
		m := s.mask
		for m != 0 {
			slot := k / lay.capBits
			if slot >= len(acc) {
				// More cells than the worst case the layout was sized
				// for: a scheme bug, make it loud.
				panic("schemes: emitStreams overflowed the unit's slot reservation")
			}
			room := lay.capBits - k%lay.capBits
			take := m
			if n := bits.OnesCount16(m); n <= room {
				m = 0
				k += n
			} else {
				rest := m
				for j := 0; j < room; j++ {
					rest &= rest - 1
				}
				take = m ^ rest
				m = rest
				k += room
			}
			if s.kind == Set {
				acc[slot].set |= take
			} else {
				acc[slot].reset |= take
			}
		}
	}
	used := min((k+lay.capBits-1)/lay.capBits, len(acc))
	for i, m := range acc[:used] {
		start := clock.start(first + i)
		if m.set != 0 {
			p.Pulses = append(p.Pulses, Pulse{Chip: chip, Unit: unit, Kind: Set, Start: start, Mask: m.set})
		}
		if m.reset != 0 {
			p.Pulses = append(p.Pulses, Pulse{Chip: chip, Unit: unit, Kind: Reset, Start: start, Mask: m.reset})
		}
	}
}

// emitFlip emits a flip-cell-only pulse in the unit's first slot. Flip
// cells are counted for energy but not against the data budget.
func emitFlip(p *Plan, lay staticLayout, clock slotClock, chip, unit int, kind PulseKind) {
	p.Pulses = append(p.Pulses, Pulse{
		Chip: chip, Unit: unit, Kind: kind,
		Start: clock.start(lay.firstSlot(unit)), FlipCell: true,
	})
}
