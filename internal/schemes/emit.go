package schemes

import "tetriswrite/internal/units"

// stream is one kind of cell pulses to emit for a (chip, unit) pair.
type stream struct {
	kind PulseKind
	mask uint16
}

// emitStreams places the cells of the given streams into data unit u's
// slots under the static layout: cells are consumed in stream order (and
// bit order within a stream) and assigned capBits cells per slot starting
// at the unit's first slot. slotStart maps slot indices to write-phase
// offsets. One pulse record is emitted per (slot, kind) with the combined
// mask.
//
// In the shared regime (slotsPerUnit == 1) all cells land in the unit's
// single slot; in the split regime the unit's cells spill across its
// reserved consecutive slots, never exceeding capBits cells per slot —
// which is what keeps the chip under its budget even when a single
// worst-case data unit would not fit it.
func emitStreams(p *Plan, lay staticLayout, slotStart func(int) units.Duration, chip, unit int, streams ...stream) {
	first := lay.firstSlot(unit)
	// Accumulate per-slot masks for both kinds; units never span more
	// than slotsPerUnit slots by construction.
	type slotMasks struct{ set, reset uint16 }
	acc := make([]slotMasks, lay.slotsPerUnit)
	k := 0
	for _, s := range streams {
		for b := 0; b < 16; b++ {
			if s.mask&(1<<b) == 0 {
				continue
			}
			slot := k / lay.capBits
			if slot >= len(acc) {
				// More cells than the worst case the layout was sized
				// for: a scheme bug, make it loud.
				panic("schemes: emitStreams overflowed the unit's slot reservation")
			}
			if s.kind == Set {
				acc[slot].set |= 1 << b
			} else {
				acc[slot].reset |= 1 << b
			}
			k++
		}
	}
	for i, m := range acc {
		start := slotStart(first + i)
		if m.set != 0 {
			p.Pulses = append(p.Pulses, Pulse{Chip: chip, Unit: unit, Kind: Set, Start: start, Mask: m.set})
		}
		if m.reset != 0 {
			p.Pulses = append(p.Pulses, Pulse{Chip: chip, Unit: unit, Kind: Reset, Start: start, Mask: m.reset})
		}
	}
}

// emitFlip emits a flip-cell-only pulse in the unit's first slot. Flip
// cells are counted for energy but not against the data budget.
func emitFlip(p *Plan, lay staticLayout, slotStart func(int) units.Duration, chip, unit int, kind PulseKind) {
	p.Pulses = append(p.Pulses, Pulse{
		Chip: chip, Unit: unit, Kind: kind,
		Start: slotStart(lay.firstSlot(unit)), FlipCell: true,
	})
}
