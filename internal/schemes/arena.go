package schemes

// PlanRecycler is implemented by schemes that can reuse a Plan's pulse
// buffer once the caller is done with it. The memory controller calls
// RecyclePlan after a plan has been executed and will never touch it
// again; the next PlanWrite on the same scheme may then reuse the buffer.
// Recycling is strictly optional — a caller that keeps the plan alive
// simply never recycles it, and the scheme allocates a fresh buffer.
type PlanRecycler interface {
	RecyclePlan(Plan)
}

// PulseArena is a freelist of pulse buffers shared by a scheme's plans.
// Schemes embed one and take their Pulses backing array from it; callers
// that are done with a plan hand the buffer back via RecyclePlan. Like
// the schemes that embed it, an arena is single-owner: one bank, one
// goroutine.
type PulseArena struct {
	free [][]Pulse
}

// TakePulses returns an empty pulse slice, reusing a recycled buffer's
// capacity when one is available.
func (a *PulseArena) TakePulses() []Pulse {
	if n := len(a.free); n > 0 {
		buf := a.free[n-1]
		a.free[n-1] = nil
		a.free = a.free[:n-1]
		return buf
	}
	return nil
}

// RecyclePlan implements PlanRecycler: the plan's pulse buffer re-enters
// the freelist. The caller must not use the plan afterwards.
func (a *PulseArena) RecyclePlan(p Plan) {
	if cap(p.Pulses) > 0 {
		a.free = append(a.free, p.Pulses[:0])
	}
}
