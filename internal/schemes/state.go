package schemes

import (
	"tetriswrite/internal/bitutil"
	"tetriswrite/internal/linestore"
	"tetriswrite/internal/pcm"
)

// flipState stores the per-line inversion tags of a coding scheme: one
// bit per (chip, data unit). With the default geometry that is 32 bits
// per line, kept sparsely in a uint64 word per touched line.
type flipState struct {
	m      *linestore.Store
	nchips int
}

func newFlipState(nchips int) *flipState {
	return &flipState{m: linestore.NewStore(1), nchips: nchips}
}

func (f *flipState) bit(c, u int) uint {
	return uint(u*f.nchips + c)
}

// get returns the flip tag of chip c, unit u of the line.
func (f *flipState) get(addr pcm.LineAddr, c, u int) bool {
	w := f.m.Get(int64(addr))
	return w != nil && w[0]&(1<<f.bit(c, u)) != 0
}

// set updates the flip tag of chip c, unit u of the line.
func (f *flipState) set(addr pcm.LineAddr, c, u int, v bool) {
	w := f.m.Ensure(int64(addr))
	if v {
		w[0] |= 1 << f.bit(c, u)
	} else {
		w[0] &^= 1 << f.bit(c, u)
	}
}

// word returns the line's whole tag word (zero when never written) —
// the FlipTagReader view of the state.
func (f *flipState) word(addr pcm.LineAddr) uint64 {
	if w := f.m.Get(int64(addr)); w != nil {
		return w[0]
	}
	return 0
}

// encoded returns the stored (array) bits for a chip slice given its
// logical value: the complement (within the chip width) when the flip
// tag is set.
func (f *flipState) encoded(addr pcm.LineAddr, c, u, widthBits int, logical uint16) uint16 {
	if f.get(addr, c, u) {
		return ^logical & bitutil.WidthMask(widthBits)
	}
	return logical
}

// splitMaskByBits partitions mask into chunks of at most maxBits set bits
// each, preserving bit order. maxBits must be positive.
func splitMaskByBits(mask uint16, maxBits int) []uint16 {
	if maxBits <= 0 {
		panic("schemes: splitMaskByBits with non-positive capacity")
	}
	var out []uint16
	for mask != 0 {
		var chunk uint16
		n := 0
		for b := 0; b < 16 && n < maxBits; b++ {
			if mask&(1<<b) != 0 {
				chunk |= 1 << b
				mask &^= 1 << b
				n++
			}
		}
		out = append(out, chunk)
	}
	return out
}
