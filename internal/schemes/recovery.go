package schemes

import "tetriswrite/internal/pcm"

// This file is the scheme-side half of the crash-recovery contract (the
// controller/injector half lives in internal/crash). Power can be cut
// between any two pulses of a plan, so the surviving array holds a torn
// line: some pulses landed, the rest never will. Two distinct states
// must be reconciled:
//
//   - the physical state — data cells and flip cells as the pulses left
//     them (the crash package reconstructs it in an Array shadow);
//   - the scheme's in-memory coding state — flip tags mutated eagerly at
//     PlanWrite time, i.e. already advanced to the *planned* encoding
//     even though the tag pulses may not have landed.
//
// Recovery always restores the scheme's tags from the physical flip
// cells (TagRestorer) — the array is the ground truth after a crash —
// and then replans decoded -> want. The classifier's verdict does not
// change what recovery does; it prices it: a line whose in-memory tags
// still match the physical tags crashed before the coding state
// diverged, so finishing the write is a rollforward billed at a write
// phase; a line whose tags diverged must be re-anchored and rewritten
// from scratch — a reissue billed at full service time.

// TornVerdict classifies one in-flight line found after a power cut.
type TornVerdict uint8

const (
	// TornClean: every pulse landed; the line already decodes to the
	// intended data. Nothing to replay.
	TornClean TornVerdict = iota
	// TornRollforward: the line is torn but the scheme's coding state
	// still matches the physical flip cells; recovery finishes the write
	// forward from the surviving image.
	TornRollforward
	// TornReissue: the scheme's coding state diverged from the physical
	// flip cells (tag pulses lost, data pulses landed, or vice versa);
	// recovery re-anchors the tags and reissues the write whole.
	TornReissue
)

// String returns "clean", "rollforward" or "reissue".
func (v TornVerdict) String() string {
	switch v {
	case TornClean:
		return "clean"
	case TornRollforward:
		return "rollforward"
	default:
		return "reissue"
	}
}

// TornState describes one in-flight line as recovery found it: the
// intent-log endpoints (Old, Want), the logical contents the surviving
// cells decode to under the physical flip tags, and those tags
// themselves (bit u*NumChips+c, the FlipTagReader layout). All slices
// are read-only to the classifier and not retained.
type TornState struct {
	Addr    pcm.LineAddr
	Old     []byte // logical contents before the in-flight write
	Want    []byte // logical contents the write intended
	Decoded []byte // what the surviving cells decode to
	Tags    uint64 // flip-cell word physically present in the array
}

// TornStateClassifier is implemented by schemes that can judge a torn
// line. ClassifyTorn is called during recovery before the scheme's tags
// are restored from the physical image, so implementations may compare
// their in-memory coding state against st.Tags. Schemes without the
// interface get TornReissue, the always-safe verdict.
type TornStateClassifier interface {
	ClassifyTorn(st TornState) TornVerdict
}

// TagRestorer is implemented by schemes whose per-line coding state can
// be overwritten wholesale from the physical flip cells. Recovery calls
// RestoreFlipTags for every in-flight line before replanning, so the
// scheme's next PlanWrite encodes against the cells as they actually
// survived. The word layout matches FlipTagReader: bit u*NumChips+c.
type TagRestorer interface {
	RestoreFlipTags(addr pcm.LineAddr, tags uint64)
}

// setWord overwrites the line's whole tag word — the TagRestorer view.
func (f *flipState) setWord(addr pcm.LineAddr, w uint64) {
	f.m.Ensure(int64(addr))[0] = w
}

// classifyByTags is the shared verdict rule of every tag-coded scheme:
// rollforward while the in-memory tags still match the cells, reissue
// once they diverged.
func classifyByTags(mem, phys uint64) TornVerdict {
	if mem == phys {
		return TornRollforward
	}
	return TornReissue
}

// Comparison-only schemes keep no per-line coding state: any torn line
// replans correctly from its decoded contents, so finishing forward is
// always safe and always the cheap verdict.

func (s *dcw) ClassifyTorn(TornState) TornVerdict          { return TornRollforward }
func (s *conventional) ClassifyTorn(TornState) TornVerdict { return TornRollforward }

// Flip-N-Write and the staged schemes code every data unit under one
// inversion tag; their verdict is the shared tag-match rule and their
// tag state restores wholesale from the physical flip cells.

func (s *fnw) ClassifyTorn(st TornState) TornVerdict {
	return classifyByTags(s.flips.word(st.Addr), st.Tags)
}
func (s *fnw) RestoreFlipTags(addr pcm.LineAddr, tags uint64) { s.flips.setWord(addr, tags) }

func (s *twoStage) ClassifyTorn(st TornState) TornVerdict {
	return classifyByTags(s.flips.word(st.Addr), st.Tags)
}
func (s *twoStage) RestoreFlipTags(addr pcm.LineAddr, tags uint64) { s.flips.setWord(addr, tags) }

func (s *threeStage) ClassifyTorn(st TornState) TornVerdict {
	return classifyByTags(s.flips.word(st.Addr), st.Tags)
}
func (s *threeStage) RestoreFlipTags(addr pcm.LineAddr, tags uint64) { s.flips.setWord(addr, tags) }

// flipMin owns the tag domain itself (its inner scheme is tagless by
// registry contract), so classification and restoration stop here.

func (s *flipMin) ClassifyTorn(st TornState) TornVerdict {
	return classifyByTags(s.flips.word(st.Addr), st.Tags)
}
func (s *flipMin) RestoreFlipTags(addr pcm.LineAddr, tags uint64) { s.flips.setWord(addr, tags) }

// The remapper is wear-accounting only — the inner scheme plans under
// the logical address — so both halves of the contract forward.

func (s *remapper) ClassifyTorn(st TornState) TornVerdict {
	if cl, ok := s.inner.(TornStateClassifier); ok {
		return cl.ClassifyTorn(st)
	}
	return TornReissue
}
func (s *remapper) RestoreFlipTags(addr pcm.LineAddr, tags uint64) {
	if r, ok := s.inner.(TagRestorer); ok {
		r.RestoreFlipTags(addr, tags)
	}
}

// The adaptive meta-scheme routes to the candidate that owns the line —
// the one whose coding state matches the cells; the in-flight write was
// planned by it (PlanWrite assigns ownership before emitting pulses, so
// a line with an armed intent always has an owner).

func (s *adaptive) tornOwner(addr pcm.LineAddr) Scheme {
	if w := s.owner.Get(int64(addr)); w != nil && w[0] != 0 {
		return s.cands[int(w[0])-1]
	}
	return s.cands[s.active]
}

func (s *adaptive) ClassifyTorn(st TornState) TornVerdict {
	if cl, ok := s.tornOwner(st.Addr).(TornStateClassifier); ok {
		return cl.ClassifyTorn(st)
	}
	return TornReissue
}
func (s *adaptive) RestoreFlipTags(addr pcm.LineAddr, tags uint64) {
	if r, ok := s.tornOwner(addr).(TagRestorer); ok {
		r.RestoreFlipTags(addr, tags)
	}
}
