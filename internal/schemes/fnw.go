package schemes

import (
	"tetriswrite/internal/bitutil"
	"tetriswrite/internal/pcm"
	"tetriswrite/internal/units"
)

// fnw is Flip-N-Write: read-before-write plus inversion coding. If more
// than half of a data unit's cells (counting its flip cell) would change,
// the complement is stored instead, bounding the changed cells by half
// the width. The halved worst case lets two data units share one write
// unit under the default budget, halving the serial write units to
// (N/M)/2 — Equation 2: Tread + 1/2 x (N/M) x Tset.
type fnw struct {
	par   pcm.Params
	flips *flipState
	PulseArena
}

// NewFlipNWrite returns the Flip-N-Write scheme.
func NewFlipNWrite(par pcm.Params) Scheme {
	return &fnw{par: par, flips: newFlipState(par.NumChips)}
}

func (s *fnw) Name() string               { return "fnw" }
func (s *fnw) NeedsReadBeforeWrite() bool { return true }

// FlipTags implements FlipTagReader.
func (s *fnw) FlipTags(addr pcm.LineAddr) uint64 { return s.flips.word(addr) }

func (s *fnw) PlanWrite(addr pcm.LineAddr, old, new []byte) Plan {
	p := basePlan(s.par)
	p.Pulses = s.TakePulses()
	p.Read = s.par.TRead
	nu := s.par.DataUnits()
	lay := newStaticLayout(s.par.ChipWidthBits/2, s.par.CurrentReset, s.par.ChipBudget)
	p.Write = units.Duration(lay.slots(nu)) * s.par.TSet
	clock := slotClock{pitch: s.par.TSet}

	wb := s.par.ChipWidthBits / 8
	nc := s.par.NumChips
	wbits := s.par.ChipWidthBits
	// One fetch of the line's whole tag word replaces a store probe per
	// cell; the updated word goes back once at the end.
	tagSlot := s.flips.m.Ensure(int64(addr))
	tags := tagSlot[0]
	if wb == 2 && nc*nu%4 == 0 && len(old) >= nc*nu*2 {
		// Word-parallel pass for x16 parts (see the Tetris read stage):
		// an unchanged cell re-encodes to exactly its stored state under
		// the Flip-N-Write rule — no pulses, no tag change — so a zero
		// uint64 diff skips four cells at once. Changed lanes run the
		// scalar coding in the same ascending cell order.
		for w := 0; w < nc*nu/4; w++ {
			ow := bitutil.LoadLE64(old, w*8)
			nw := bitutil.LoadLE64(new, w*8)
			diff := ow ^ nw
			if diff == 0 {
				continue
			}
			for lane := 0; lane < 4; lane++ {
				if uint16(diff>>(16*uint(lane))) == 0 {
					continue
				}
				i := w*4 + lane
				bit := uint64(1) << uint(i)
				logicalOld := uint16(ow >> (16 * uint(lane)))
				logicalNew := uint16(nw >> (16 * uint(lane)))
				stored := bitutil.FlipWord{Bits: logicalOld, Flip: false}
				if tags&bit != 0 {
					stored = bitutil.FlipWord{Bits: ^logicalOld, Flip: true}
				}
				enc, tr, flipSet, flipReset := bitutil.FlipTransition(stored, logicalNew, wbits)
				if enc.Flip {
					tags |= bit
				} else {
					tags &^= bit
				}
				c, u := i%nc, i/nc
				emitStreams(&p, lay, clock, c, u,
					stream{Reset, tr.Resets},
					stream{Set, tr.Sets},
				)
				if flipSet {
					emitFlip(&p, lay, clock, c, u, Set)
				} else if flipReset {
					emitFlip(&p, lay, clock, c, u, Reset)
				}
			}
		}
		tagSlot[0] = tags
		return p
	}
	for u := 0; u < nu; u++ {
		for c := 0; c < nc; c++ {
			bit := uint64(1) << uint(u*nc+c)
			logicalOld := bitutil.ChipSlice(old, nc, wb, c, u)
			logicalNew := bitutil.ChipSlice(new, nc, wb, c, u)
			stored := bitutil.FlipWord{Bits: logicalOld, Flip: false}
			if tags&bit != 0 {
				stored = bitutil.FlipWord{Bits: ^logicalOld & bitutil.WidthMask(wbits), Flip: true}
			}
			enc, tr, flipSet, flipReset := bitutil.FlipTransition(stored, logicalNew, wbits)
			if enc.Flip {
				tags |= bit
			} else {
				tags &^= bit
			}
			emitStreams(&p, lay, clock, c, u,
				stream{Reset, tr.Resets},
				stream{Set, tr.Sets},
			)
			if flipSet {
				emitFlip(&p, lay, clock, c, u, Set)
			} else if flipReset {
				emitFlip(&p, lay, clock, c, u, Reset)
			}
		}
	}
	tagSlot[0] = tags
	return p
}
