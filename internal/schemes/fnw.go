package schemes

import (
	"tetriswrite/internal/bitutil"
	"tetriswrite/internal/pcm"
	"tetriswrite/internal/units"
)

// fnw is Flip-N-Write: read-before-write plus inversion coding. If more
// than half of a data unit's cells (counting its flip cell) would change,
// the complement is stored instead, bounding the changed cells by half
// the width. The halved worst case lets two data units share one write
// unit under the default budget, halving the serial write units to
// (N/M)/2 — Equation 2: Tread + 1/2 x (N/M) x Tset.
type fnw struct {
	par   pcm.Params
	flips *flipState
	PulseArena
}

// NewFlipNWrite returns the Flip-N-Write scheme.
func NewFlipNWrite(par pcm.Params) Scheme {
	return &fnw{par: par, flips: newFlipState(par.NumChips)}
}

func (s *fnw) Name() string               { return "fnw" }
func (s *fnw) NeedsReadBeforeWrite() bool { return true }

// FlipTags implements FlipTagReader.
func (s *fnw) FlipTags(addr pcm.LineAddr) uint64 { return s.flips.word(addr) }

func (s *fnw) PlanWrite(addr pcm.LineAddr, old, new []byte) Plan {
	p := basePlan(s.par)
	p.Pulses = s.TakePulses()
	p.Read = s.par.TRead
	nu := s.par.DataUnits()
	lay := newStaticLayout(s.par.ChipWidthBits/2, s.par.CurrentReset, s.par.ChipBudget)
	p.Write = units.Duration(lay.slots(nu)) * s.par.TSet
	clock := slotClock{pitch: s.par.TSet}

	wb := s.par.ChipWidthBits / 8
	for u := 0; u < nu; u++ {
		for c := 0; c < s.par.NumChips; c++ {
			logicalOld := bitutil.ChipSlice(old, s.par.NumChips, wb, c, u)
			logicalNew := bitutil.ChipSlice(new, s.par.NumChips, wb, c, u)
			oldFlip := s.flips.get(addr, c, u)
			stored := bitutil.FlipWord{
				Bits: s.flips.encoded(addr, c, u, s.par.ChipWidthBits, logicalOld),
				Flip: oldFlip,
			}
			enc, tr, flipSet, flipReset := bitutil.FlipTransition(stored, logicalNew, s.par.ChipWidthBits)
			s.flips.set(addr, c, u, enc.Flip)
			emitStreams(&p, lay, clock, c, u,
				stream{Reset, tr.Resets},
				stream{Set, tr.Sets},
			)
			if flipSet {
				emitFlip(&p, lay, clock, c, u, Set)
			} else if flipReset {
				emitFlip(&p, lay, clock, c, u, Reset)
			}
		}
	}
	return p
}
