package schemes

import (
	"tetriswrite/internal/bitutil"
	"tetriswrite/internal/pcm"
	"tetriswrite/internal/units"
)

// dcw is Data-Comparison Write, the paper's baseline: read the stored
// data first and pulse only the cells that actually change. DCW saves
// energy and endurance but keeps the conventional worst-case *timing* —
// the write still occupies (N/M) serial worst-case write units, plus the
// read, because the slot reservation cannot depend on data the controller
// has not analysed.
type dcw struct {
	par pcm.Params
	PulseArena
}

// NewDCW returns the Data-Comparison Write scheme.
func NewDCW(par pcm.Params) Scheme { return &dcw{par: par} }

func (s *dcw) Name() string               { return "dcw" }
func (s *dcw) NeedsReadBeforeWrite() bool { return true }

func (s *dcw) PlanWrite(addr pcm.LineAddr, old, new []byte) Plan {
	p := basePlan(s.par)
	p.Pulses = s.TakePulses()
	p.Read = s.par.TRead
	nu := s.par.DataUnits()
	lay := newStaticLayout(s.par.ChipWidthBits, s.par.CurrentReset, s.par.ChipBudget)
	p.Write = units.Duration(lay.slots(nu)) * s.par.TSet
	clock := slotClock{pitch: s.par.TSet}

	wb := s.par.ChipWidthBits / 8
	nc := s.par.NumChips
	if wb == 2 && nc*nu%4 == 0 && len(old) >= nc*nu*2 {
		// Word-parallel diffing for x16 parts: one uint64 load covers
		// four consecutive (chip, unit) cells, and an unchanged cell
		// emits nothing, so a zero word-diff skips all four. Changed
		// lanes emit in the same ascending cell order as the scalar
		// loop (u-major), so the pulse sequence is identical.
		for w := 0; w < nc*nu/4; w++ {
			ow := bitutil.LoadLE64(old, w*8)
			nw := bitutil.LoadLE64(new, w*8)
			diff := ow ^ nw
			if diff == 0 {
				continue
			}
			for lane := 0; lane < 4; lane++ {
				d := uint16(diff >> (16 * uint(lane)))
				if d == 0 {
					continue
				}
				i := w*4 + lane
				o := uint16(ow >> (16 * uint(lane)))
				n := uint16(nw >> (16 * uint(lane)))
				emitStreams(&p, lay, clock, i%nc, i/nc,
					stream{Reset, d & o},
					stream{Set, d & n},
				)
			}
		}
		return p
	}
	for u := 0; u < nu; u++ {
		for c := 0; c < nc; c++ {
			ow := bitutil.ChipSlice(old, nc, wb, c, u)
			nw := bitutil.ChipSlice(new, nc, wb, c, u)
			tr := bitutil.Transition16(ow, nw)
			emitStreams(&p, lay, clock, c, u,
				stream{Reset, tr.Resets},
				stream{Set, tr.Sets},
			)
		}
	}
	return p
}
