package schemes

import (
	"tetriswrite/internal/bitutil"
	"tetriswrite/internal/pcm"
	"tetriswrite/internal/units"
)

// dcw is Data-Comparison Write, the paper's baseline: read the stored
// data first and pulse only the cells that actually change. DCW saves
// energy and endurance but keeps the conventional worst-case *timing* —
// the write still occupies (N/M) serial worst-case write units, plus the
// read, because the slot reservation cannot depend on data the controller
// has not analysed.
type dcw struct {
	par pcm.Params
	PulseArena
}

// NewDCW returns the Data-Comparison Write scheme.
func NewDCW(par pcm.Params) Scheme { return &dcw{par: par} }

func (s *dcw) Name() string               { return "dcw" }
func (s *dcw) NeedsReadBeforeWrite() bool { return true }

func (s *dcw) PlanWrite(addr pcm.LineAddr, old, new []byte) Plan {
	p := basePlan(s.par)
	p.Pulses = s.TakePulses()
	p.Read = s.par.TRead
	nu := s.par.DataUnits()
	lay := newStaticLayout(s.par.ChipWidthBits, s.par.CurrentReset, s.par.ChipBudget)
	p.Write = units.Duration(lay.slots(nu)) * s.par.TSet
	clock := slotClock{pitch: s.par.TSet}

	wb := s.par.ChipWidthBits / 8
	for u := 0; u < nu; u++ {
		for c := 0; c < s.par.NumChips; c++ {
			ow := bitutil.ChipSlice(old, s.par.NumChips, wb, c, u)
			nw := bitutil.ChipSlice(new, s.par.NumChips, wb, c, u)
			tr := bitutil.Transition16(ow, nw)
			emitStreams(&p, lay, clock, c, u,
				stream{Reset, tr.Resets},
				stream{Set, tr.Sets},
			)
		}
	}
	return p
}
