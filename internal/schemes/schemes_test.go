package schemes

import (
	"math/rand"
	"testing"

	"tetriswrite/internal/bitutil"
	"tetriswrite/internal/pcm"
	"tetriswrite/internal/units"
)

// strictParams returns the default configuration with GCP disabled so the
// power oracle enforces the per-chip budget, which every static scheme
// must satisfy by construction.
func strictParams() pcm.Params {
	p := pcm.DefaultParams()
	p.GlobalChargePump = false
	return p
}

var factories = []struct {
	name string
	f    Factory
}{
	{"conventional", NewConventional},
	{"dcw", NewDCW},
	{"fnw", NewFlipNWrite},
	{"twostage", NewTwoStage},
	{"threestage", NewThreeStage},
}

// mutate flips nbits random bits of line in place.
func mutate(rng *rand.Rand, line []byte, nbits int) {
	for i := 0; i < nbits; i++ {
		b := rng.Intn(len(line) * 8)
		line[b/8] ^= 1 << (b % 8)
	}
}

// TestSchemesWriteCorrectness drives every scheme through a long random
// write sequence and checks, after every write, that the plan is
// structurally valid, respects the per-chip power budget, and leaves the
// array storing exactly the logical data written.
func TestSchemesWriteCorrectness(t *testing.T) {
	for _, tc := range factories {
		t.Run(tc.name, func(t *testing.T) {
			par := strictParams()
			s := tc.f(par)
			arr := NewArray(par)
			rng := rand.New(rand.NewSource(42))
			old := make([]byte, par.LineBytes)
			want := make([]byte, par.LineBytes)
			const addr = pcm.LineAddr(17)
			for step := 0; step < 300; step++ {
				copy(want, old)
				switch step % 3 {
				case 0: // sparse mutation, the common case per Observation 1
					mutate(rng, want, 1+rng.Intn(12))
				case 1: // dense rewrite
					rng.Read(want)
				case 2: // silent or near-silent write
					if rng.Intn(2) == 0 {
						mutate(rng, want, 1)
					}
				}
				plan := s.PlanWrite(addr, old, want)
				if err := arr.CheckWrite(addr, plan, want); err != nil {
					t.Fatalf("step %d: %v", step, err)
				}
				copy(old, want)
			}
		})
	}
}

// TestSchemesMatchPaperEquations checks the default-configuration service
// times against Equations 1-4 of the paper.
func TestSchemesMatchPaperEquations(t *testing.T) {
	par := strictParams()
	tset, treset, tread := par.TSet, par.TReset, par.TRead
	cases := []struct {
		name string
		f    Factory
		want units.Duration
	}{
		{"conventional", NewConventional, 8 * tset},              // Eq. 1
		{"dcw", NewDCW, tread + 8*tset},                          // baseline: Eq. 1 + read
		{"fnw", NewFlipNWrite, tread + 4*tset},                   // Eq. 2
		{"twostage", NewTwoStage, 8*treset + 2*tset},             // Eq. 3
		{"threestage", NewThreeStage, tread + 4*treset + 2*tset}, // Eq. 4
	}
	rng := rand.New(rand.NewSource(1))
	old := make([]byte, par.LineBytes)
	new := make([]byte, par.LineBytes)
	rng.Read(old)
	rng.Read(new)
	for _, c := range cases {
		s := c.f(par)
		plan := s.PlanWrite(3, old, new)
		if got := plan.ServiceTime(); got != c.want {
			t.Errorf("%s: ServiceTime = %v, want %v", c.name, got, c.want)
		}
		// Static schemes must be content-independent in time: a silent
		// write takes exactly as long.
		plan2 := s.PlanWrite(4, old, old)
		if plan2.ServiceTime() != c.want {
			t.Errorf("%s: silent-write ServiceTime = %v, want %v", c.name, plan2.ServiceTime(), c.want)
		}
	}
}

// TestWriteUnitsMetric checks the Figure 10 theoretical values: 8 for the
// baseline, 4 for Flip-N-Write, ~3 for 2-Stage-Write, ~2.5 for
// Three-Stage-Write.
func TestWriteUnitsMetric(t *testing.T) {
	par := strictParams()
	rng := rand.New(rand.NewSource(2))
	old := make([]byte, par.LineBytes)
	new := make([]byte, par.LineBytes)
	rng.Read(old)
	rng.Read(new)
	cases := []struct {
		name   string
		f      Factory
		lo, hi float64
	}{
		{"conventional", NewConventional, 8, 8},
		{"dcw", NewDCW, 8, 8},
		{"fnw", NewFlipNWrite, 4, 4},
		{"twostage", NewTwoStage, 2.9, 3.0},
		{"threestage", NewThreeStage, 2.4, 2.5},
	}
	for _, c := range cases {
		plan := c.f(par).PlanWrite(5, old, new)
		got := plan.WriteUnits()
		if got < c.lo || got > c.hi {
			t.Errorf("%s: WriteUnits = %v, want in [%v, %v]", c.name, got, c.lo, c.hi)
		}
	}
}

// TestEnergyBehaviour checks Table I's energy claims: schemes without
// read-before-write pulse every cell; data-comparison schemes pulse only
// what changed (modulo coding overhead).
func TestEnergyBehaviour(t *testing.T) {
	par := strictParams()
	old := make([]byte, par.LineBytes)
	new := make([]byte, par.LineBytes)
	for i := range old {
		old[i] = 0xA5
	}
	copy(new, old)
	new[0] ^= 0x01 // exactly one changed bit
	allCells := par.LineBytes * 8

	// Conventional and 2-Stage-Write pulse every data cell.
	for _, f := range []Factory{NewConventional, NewTwoStage} {
		s := f(par)
		// Prime internal coding state so the measured write starts clean.
		s.PlanWrite(0, make([]byte, par.LineBytes), old)
		sets, resets := s.PlanWrite(0, old, new).Counts()
		if sets+resets < allCells {
			t.Errorf("%s: pulsed %d cells, want >= %d (no comparison)", s.Name(), sets+resets, allCells)
		}
	}

	// DCW pulses exactly the changed bit.
	{
		s := NewDCW(par)
		s.PlanWrite(0, make([]byte, par.LineBytes), old)
		sets, resets := s.PlanWrite(0, old, new).Counts()
		if sets+resets != 1 {
			t.Errorf("dcw: pulsed %d cells, want 1", sets+resets)
		}
	}

	// FNW and Three-Stage pulse at most the direct Hamming distance plus
	// coding overhead, and far fewer than all cells.
	for _, f := range []Factory{NewFlipNWrite, NewThreeStage} {
		s := f(par)
		s.PlanWrite(0, make([]byte, par.LineBytes), old)
		sets, resets := s.PlanWrite(0, old, new).Counts()
		if sets+resets > 2 {
			t.Errorf("%s: pulsed %d cells for a 1-bit change, want <= 2", s.Name(), sets+resets)
		}
	}
}

// TestFNWFlipsDenseWrites checks that inversion coding actually kicks in:
// writing the complement of the stored line must cost at most half the
// cells plus flip bits, not a full rewrite.
func TestFNWFlipsDenseWrites(t *testing.T) {
	par := strictParams()
	for _, f := range []Factory{NewFlipNWrite, NewThreeStage} {
		s := f(par)
		old := make([]byte, par.LineBytes)
		new := make([]byte, par.LineBytes)
		for i := range new {
			new[i] = 0xFF
		}
		plan := s.PlanWrite(9, old, new) // all 512 bits change
		sets, resets := plan.Counts()
		// Inversion: store all-zeros with flip bits set -> only the 32
		// flip cells are pulsed.
		maxCost := par.DataUnits() * par.NumChips
		if sets+resets > maxCost {
			t.Errorf("%s: complement write pulsed %d cells, want <= %d flip cells",
				s.Name(), sets+resets, maxCost)
		}
	}
}

// TestSchemesTinyBudget exercises the split regime of the mobile
// scenario: with a per-chip budget of 8 even a single worst-case data
// unit exceeds the budget for RESET-heavy stages, so units are split
// across slots; plans must still validate, respect the budget, and store
// correct data.
func TestSchemesTinyBudget(t *testing.T) {
	par := strictParams()
	par.ChipBudget = 8
	for _, tc := range factories {
		t.Run(tc.name, func(t *testing.T) {
			s := tc.f(par)
			arr := NewArray(par)
			rng := rand.New(rand.NewSource(77))
			old := make([]byte, par.LineBytes)
			want := make([]byte, par.LineBytes)
			for step := 0; step < 50; step++ {
				copy(want, old)
				rng.Read(want[:rng.Intn(len(want))+1])
				plan := s.PlanWrite(1, old, want)
				if err := arr.CheckWrite(1, plan, want); err != nil {
					t.Fatalf("step %d: %v", step, err)
				}
				copy(old, want)
			}
		})
	}
	// Tiny budgets must cost more time than the default budget.
	rng := rand.New(rand.NewSource(5))
	old := make([]byte, 64)
	new := make([]byte, 64)
	rng.Read(old)
	rng.Read(new)
	big := NewConventional(strictParams()).PlanWrite(0, old, new).ServiceTime()
	small := NewConventional(par).PlanWrite(0, old, new).ServiceTime()
	if small <= big {
		t.Errorf("budget 8 service %v not slower than budget 32 service %v", small, big)
	}
}

// TestPlanDeterminism: the same write planned twice (fresh scheme state)
// yields identical pulse trains.
func TestPlanDeterminism(t *testing.T) {
	par := strictParams()
	rng := rand.New(rand.NewSource(3))
	old := make([]byte, par.LineBytes)
	new := make([]byte, par.LineBytes)
	rng.Read(old)
	rng.Read(new)
	for _, tc := range factories {
		p1 := tc.f(par).PlanWrite(0, old, new)
		p2 := tc.f(par).PlanWrite(0, old, new)
		if len(p1.Pulses) != len(p2.Pulses) || p1.ServiceTime() != p2.ServiceTime() {
			t.Errorf("%s: nondeterministic plan", tc.name)
			continue
		}
		for i := range p1.Pulses {
			if p1.Pulses[i] != p2.Pulses[i] {
				t.Errorf("%s: pulse %d differs", tc.name, i)
				break
			}
		}
	}
}

// TestPlanValidateCatchesBadPlans feeds corrupted plans to Validate.
func TestPlanValidateCatchesBadPlans(t *testing.T) {
	par := strictParams()
	good := NewDCW(par).PlanWrite(0, make([]byte, 64), []byte{1: 1, 63: 0x80, 0: 1}[:64])
	if err := good.Validate(par); err != nil {
		t.Fatalf("good plan rejected: %v", err)
	}
	corrupt := []struct {
		name string
		mut  func(*Plan)
	}{
		{"chip out of range", func(p *Plan) { p.Pulses[0].Chip = 99 }},
		{"unit out of range", func(p *Plan) { p.Pulses[0].Unit = 99 }},
		{"empty record", func(p *Plan) { p.Pulses[0].Mask = 0; p.Pulses[0].FlipCell = false }},
		{"pulse past end", func(p *Plan) { p.Pulses[0].Start = p.Write }},
		{"negative start", func(p *Plan) { p.Pulses[0].Start = -1 }},
		{"double pulse", func(p *Plan) { p.Pulses = append(p.Pulses, p.Pulses[0]) }},
	}
	for _, c := range corrupt {
		p := good
		p.Pulses = append([]Pulse(nil), good.Pulses...)
		c.mut(&p)
		if err := p.Validate(par); err == nil {
			t.Errorf("%s: corrupted plan accepted", c.name)
		}
	}
}

func TestPulseKindString(t *testing.T) {
	if Set.String() != "SET" || Reset.String() != "RESET" {
		t.Error("PulseKind.String wrong")
	}
}

func TestSplitMaskByBits(t *testing.T) {
	chunks := splitMaskByBits(0xFFFF, 5)
	if len(chunks) != 4 {
		t.Fatalf("got %d chunks, want 4", len(chunks))
	}
	var union uint16
	total := 0
	for _, c := range chunks {
		if union&c != 0 {
			t.Fatal("chunks overlap")
		}
		union |= c
		total += popcount16(c)
	}
	if union != 0xFFFF || total != 16 {
		t.Fatalf("chunks do not partition the mask: union=%#x total=%d", union, total)
	}
	if splitMaskByBits(0, 3) != nil {
		t.Error("empty mask should produce no chunks")
	}
}

func TestStaticLayoutArithmetic(t *testing.T) {
	// Default regime: 16 cells x current 2 = 32 = budget -> 1 unit/slot.
	lay := newStaticLayout(16, 2, 32)
	if lay.unitsPerSlot != 1 || lay.slotsPerUnit != 1 || lay.slots(8) != 8 {
		t.Errorf("conventional layout = %+v, slots(8)=%d", lay, lay.slots(8))
	}
	// FNW regime: 8 cells x 2 = 16 -> 2 units/slot -> 4 slots.
	lay = newStaticLayout(8, 2, 32)
	if lay.unitsPerSlot != 2 || lay.slots(8) != 4 {
		t.Errorf("fnw layout = %+v, slots(8)=%d", lay, lay.slots(8))
	}
	// Stage-1 regime: 8 cells x 1 = 8 -> 4 units/slot -> 2 slots.
	lay = newStaticLayout(8, 1, 32)
	if lay.unitsPerSlot != 4 || lay.slots(8) != 2 {
		t.Errorf("stage1 layout = %+v, slots(8)=%d", lay, lay.slots(8))
	}
	// Split regime: 16 cells x 2 = 32 > budget 8 -> 4 cells/slot, 4
	// slots/unit, 32 slots total.
	lay = newStaticLayout(16, 2, 8)
	if lay.slotsPerUnit != 4 || lay.capBits != 4 || lay.slots(8) != 32 {
		t.Errorf("split layout = %+v, slots(8)=%d", lay, lay.slots(8))
	}
	if lay.firstSlot(2) != 8 {
		t.Errorf("firstSlot(2) = %d, want 8", lay.firstSlot(2))
	}
}

func BenchmarkPlanWrite(b *testing.B) {
	par := strictParams()
	rng := rand.New(rand.NewSource(9))
	old := make([]byte, par.LineBytes)
	new := make([]byte, par.LineBytes)
	rng.Read(old)
	copy(new, old)
	mutate(rng, new, 10)
	for _, tc := range factories {
		b.Run(tc.name, func(b *testing.B) {
			s := tc.f(par)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				plan := s.PlanWrite(pcm.LineAddr(i%1024), old, new)
				_ = plan.ServiceTime()
			}
		})
	}
}

var _ = bitutil.PopCount64 // silence unused-import drift during refactors
