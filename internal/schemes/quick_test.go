package schemes

// Property-based tests (testing/quick) over arbitrary line pairs: every
// scheme must produce a valid, budget-respecting plan that stores exactly
// the requested data, regardless of content.

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"tetriswrite/internal/pcm"
)

// linePair is a quick-generatable (stored, incoming) line pair with a
// content mix that spans silent writes, sparse updates and full rewrites.
type linePair struct {
	Old, New []byte
}

// Generate implements quick.Generator.
func (linePair) Generate(r *rand.Rand, size int) reflect.Value {
	old := make([]byte, 64)
	r.Read(old)
	new := append([]byte(nil), old...)
	switch r.Intn(4) {
	case 0: // silent
	case 1: // sparse
		for i := 0; i < 1+r.Intn(20); i++ {
			b := r.Intn(512)
			new[b/8] ^= 1 << (b % 8)
		}
	case 2: // dense
		r.Read(new)
	case 3: // complement
		for i := range new {
			new[i] = ^old[i]
		}
	}
	return reflect.ValueOf(linePair{Old: old, New: new})
}

func TestQuickSchemesCorrectness(t *testing.T) {
	par := strictParams()
	for _, tc := range factories {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			s := tc.f(par)
			arr := NewArray(par)
			var addr pcm.LineAddr
			f := func(p linePair) bool {
				addr = (addr + 1) % 64
				// Bring the array and scheme state to p.Old first.
				setup := s.PlanWrite(addr, arr.Logical(addr), p.Old)
				if err := arr.CheckWrite(addr, setup, p.Old); err != nil {
					t.Logf("setup write: %v", err)
					return false
				}
				plan := s.PlanWrite(addr, p.Old, p.New)
				if err := arr.CheckWrite(addr, plan, p.New); err != nil {
					t.Logf("write: %v", err)
					return false
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestQuickPlanTimeNonNegative: service components are never negative and
// pulses never outlive the write phase (already in Validate; checked here
// across arbitrary content via the quick generator).
func TestQuickPlanPhases(t *testing.T) {
	par := strictParams()
	s := NewThreeStage(par)
	f := func(p linePair) bool {
		plan := s.PlanWrite(0, p.Old, p.New)
		if plan.Read < 0 || plan.Analysis < 0 || plan.Write < 0 {
			return false
		}
		return plan.ServiceTime() >= plan.Write
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
