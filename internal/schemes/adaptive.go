package schemes

import (
	"tetriswrite/internal/bitutil"
	"tetriswrite/internal/linestore"
	"tetriswrite/internal/pcm"
)

// Candidate names one base scheme the adaptive meta-scheme may select.
// The factory indirection keeps this package free of imports on the
// packages that implement candidates (e.g. tetris).
type Candidate struct {
	Name    string
	Factory Factory
}

// AdaptiveConfig tunes the adaptive meta-scheme's selection policy. The
// zero value selects defaults via Normalize.
type AdaptiveConfig struct {
	// EpochWrites is the decision granularity: the policy re-selects the
	// active candidate every EpochWrites planned writes (default 64).
	EpochWrites int
	// ProbeEvery forces every ProbeEvery-th epoch to run the next
	// candidate round-robin, keeping every cost estimate live even for
	// candidates the greedy policy would starve (default 8; 0 disables).
	ProbeEvery int
	// QueueHigh is the write-queue-depth EWMA above which the policy
	// optimizes service time (write units) instead of pulse energy
	// (default 4).
	QueueHigh float64
	// DensityHigh is the flip-density EWMA (changed bits per line bit)
	// above which the stream is dense enough that the power budget binds
	// and the policy optimizes write units as well (default 0.35).
	DensityHigh float64
	// Alpha is the smoothing factor of every EWMA (default 0.125).
	Alpha float64
}

// Normalize fills defaults.
func (c *AdaptiveConfig) Normalize() {
	if c.EpochWrites <= 0 {
		c.EpochWrites = 64
	}
	if c.ProbeEvery < 0 {
		c.ProbeEvery = 0
	}
	if c.EpochWrites > 0 && c.ProbeEvery == 0 {
		c.ProbeEvery = 8
	}
	if c.QueueHigh <= 0 {
		c.QueueHigh = 4
	}
	if c.DensityHigh <= 0 {
		c.DensityHigh = 0.35
	}
	if c.Alpha <= 0 || c.Alpha > 1 {
		c.Alpha = 0.125
	}
}

// adaptive is a meta-scheme that selects among candidate base schemes
// per epoch from live, replay-deterministic telemetry: the write-queue
// depth the controller reports through ObserveQueues, the flip density
// of the incoming write stream, and the device's static power headroom.
// The policy is two-layered: a static threshold picks the objective
// (under queue pressure or a tight power budget, minimize the write-unit
// EWMA — service time; otherwise minimize the pulse-count EWMA —
// energy), and a bandit-style cost tracker keeps per-candidate EWMAs of
// both objectives, with optimistic initialization (unknown candidates
// are tried first) and periodic round-robin probe epochs so estimates
// never go stale.
//
// Correctness across switches rests on per-line ownership: the candidate
// that last wrote a line owns it and keeps planning its writes — its
// coding state (inversion tags) matches the cells on the device. A line
// is handed to the active candidate only when both owners' flip tags for
// it are clear (FlipTagReader; schemes without per-line state are always
// clear), which is exactly the condition under which the receiving
// scheme's implicit zero state still decodes the stored image.
type adaptive struct {
	par pcm.Params
	cfg AdaptiveConfig

	cands     []Scheme
	names     []string
	readers   []FlipTagReader // nil entries: scheme has no per-line tags
	recyclers []PlanRecycler
	needsRead bool

	owner       *linestore.Store // one word per line: owner index + 1
	active      int
	lastPlanned int
	writes      int64
	epoch       int64
	probeIdx    int

	queueEWMA   float64
	densityEWMA float64
	tightPower  bool // one worst-case data unit exceeds the chip budget

	// Per-candidate cost EWMAs; negative means never sampled.
	costWU     []float64
	costPulses []float64
	candWrites []int64

	switches  int64
	handovers int64
	sticky    int64

	// Precomputed per-candidate stat names (hot path stays alloc-free;
	// stats are only formatted here, at construction).
	statWU, statPulses, statWrites []string
}

// NewAdaptive returns a Factory for the adaptive meta-scheme over the
// given candidates (at least one). Each bank instance owns one private
// instance of every candidate.
func NewAdaptive(cands []Candidate, cfg AdaptiveConfig) Factory {
	if len(cands) == 0 {
		panic("schemes: adaptive needs at least one candidate")
	}
	cfg.Normalize()
	return func(par pcm.Params) Scheme {
		s := &adaptive{
			par:        par,
			cfg:        cfg,
			owner:      linestore.NewStore(1),
			tightPower: par.ChipWidthBits*par.CurrentReset > par.ChipBudget,
		}
		for _, c := range cands {
			inst := c.Factory(par)
			s.cands = append(s.cands, inst)
			s.names = append(s.names, c.Name)
			r, _ := inst.(FlipTagReader)
			s.readers = append(s.readers, r)
			rec, _ := inst.(PlanRecycler)
			s.recyclers = append(s.recyclers, rec)
			s.needsRead = s.needsRead || inst.NeedsReadBeforeWrite()
			s.costWU = append(s.costWU, -1)
			s.costPulses = append(s.costPulses, -1)
			s.candWrites = append(s.candWrites, 0)
			s.statWU = append(s.statWU, "scheme.adaptive.cost_wu."+c.Name)
			s.statPulses = append(s.statPulses, "scheme.adaptive.cost_pulses."+c.Name)
			s.statWrites = append(s.statWrites, "scheme.adaptive.writes."+c.Name)
		}
		return s
	}
}

func (s *adaptive) Name() string               { return "adaptive" }
func (s *adaptive) NeedsReadBeforeWrite() bool { return s.needsRead }

// ObserveQueues implements QueueObserver: the bank's queue depths ahead
// of each write, folded into the pressure EWMA the policy thresholds.
func (s *adaptive) ObserveQueues(reads, writes int) {
	depth := float64(reads + writes)
	s.queueEWMA = (1-s.cfg.Alpha)*s.queueEWMA + s.cfg.Alpha*depth
}

// RecyclePlan implements PlanRecycler, routing the buffer back to the
// candidate that planned the last write. The controller recycles each
// plan before requesting the next, so one-deep routing is exact.
func (s *adaptive) RecyclePlan(p Plan) {
	if rec := s.recyclers[s.lastPlanned]; rec != nil {
		rec.RecyclePlan(p)
	}
}

// SchemeStats implements StatProvider.
func (s *adaptive) SchemeStats(emit func(name string, value float64)) {
	emit("scheme.adaptive.switches", float64(s.switches))
	emit("scheme.adaptive.epochs", float64(s.epoch))
	emit("scheme.adaptive.handovers", float64(s.handovers))
	emit("scheme.adaptive.sticky_writes", float64(s.sticky))
	emit("scheme.adaptive.active", float64(s.active))
	for i := range s.cands {
		emit(s.statWrites[i], float64(s.candWrites[i]))
		// Unsampled costs report 0 so the series set is stable from
		// registration time on.
		emit(s.statWU[i], max(s.costWU[i], 0))
		emit(s.statPulses[i], max(s.costPulses[i], 0))
	}
	for _, c := range s.cands {
		if sp, ok := c.(StatProvider); ok {
			sp.SchemeStats(emit)
		}
	}
}

// tagsClear reports whether candidate i's flip tags for the line are all
// zero (schemes without per-line coding state always are).
func (s *adaptive) tagsClear(i int, addr pcm.LineAddr) bool {
	return s.readers[i] == nil || s.readers[i].FlipTags(addr) == 0
}

// decide runs at each epoch boundary: probe epochs rotate through the
// candidates; greedy epochs pick the best cost under the current
// objective, trying never-sampled candidates first.
func (s *adaptive) decide() {
	s.epoch++
	prev := s.active
	if s.cfg.ProbeEvery > 0 && s.epoch%int64(s.cfg.ProbeEvery) == 0 {
		s.probeIdx = (s.probeIdx + 1) % len(s.cands)
		s.active = s.probeIdx
	} else {
		// Service time is the objective whenever it plausibly binds:
		// queue pressure, a power budget too tight to pack a worst-case
		// unit, or a write stream dense enough to fill the budget.
		cost := s.costPulses
		if s.queueEWMA >= s.cfg.QueueHigh || s.tightPower || s.densityEWMA >= s.cfg.DensityHigh {
			cost = s.costWU
		}
		best := -1
		for i := range s.cands {
			if cost[i] < 0 { // optimistic: unexplored wins outright
				best = i
				break
			}
			if best < 0 || cost[i] < cost[best] {
				best = i
			}
		}
		s.active = best
	}
	if s.active != prev {
		s.switches++
	}
}

func (s *adaptive) PlanWrite(addr pcm.LineAddr, old, new []byte) Plan {
	if s.writes%int64(s.cfg.EpochWrites) == 0 {
		s.decide()
	}
	s.writes++

	d := float64(bitutil.HammingBytes(old, new)) / float64(s.par.LineBytes*8)
	s.densityEWMA = (1-s.cfg.Alpha)*s.densityEWMA + s.cfg.Alpha*d

	ow := s.owner.Ensure(int64(addr))
	idx := int(ow[0]) - 1
	switch {
	case idx < 0:
		idx = s.active
		ow[0] = uint64(idx + 1)
	case idx != s.active:
		if s.tagsClear(idx, addr) && s.tagsClear(s.active, addr) {
			idx = s.active
			ow[0] = uint64(idx + 1)
			s.handovers++
		} else {
			s.sticky++
		}
	}

	p := s.cands[idx].PlanWrite(addr, old, new)
	s.lastPlanned = idx
	s.candWrites[idx]++

	wu := p.WriteUnits()
	sets, resets := p.Counts()
	pulses := float64(sets + resets)
	s.updateCost(&s.costWU[idx], wu)
	s.updateCost(&s.costPulses[idx], pulses)
	return p
}

func (s *adaptive) updateCost(c *float64, v float64) {
	if *c < 0 {
		*c = v
		return
	}
	*c = (1-s.cfg.Alpha)**c + s.cfg.Alpha*v
}
