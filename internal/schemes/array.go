package schemes

import (
	"fmt"

	"tetriswrite/internal/bitutil"
	"tetriswrite/internal/pcm"
	"tetriswrite/internal/units"
)

// Array is a bit-accurate model of the encoded PCM cells of one line set:
// the data cells plus the flip cell of every (chip, data unit) pair. It
// replays the pulse trains of Plans and decodes the logical contents, so
// tests and examples can verify that whatever a scheme schedules actually
// leaves the right bits in the array. A fresh Array is all zeros with all
// flip cells cleared, matching a fresh Device and fresh scheme state.
type Array struct {
	par   pcm.Params
	lines map[pcm.LineAddr]*arrayLine
}

type arrayLine struct {
	bits  []uint16 // [unit*nchips + chip]
	flips []bool
}

// NewArray returns an empty encoded-cell model.
func NewArray(par pcm.Params) *Array {
	return &Array{par: par, lines: make(map[pcm.LineAddr]*arrayLine)}
}

func (a *Array) line(addr pcm.LineAddr) *arrayLine {
	l, ok := a.lines[addr]
	if !ok {
		n := a.par.DataUnits() * a.par.NumChips
		l = &arrayLine{bits: make([]uint16, n), flips: make([]bool, n)}
		a.lines[addr] = l
	}
	return l
}

func (a *Array) idx(c, u int) int { return u*a.par.NumChips + c }

// Apply replays a plan's pulses onto the line's encoded cells, in pulse
// start-time order. Overlapping same-cell pulses were already excluded by
// Plan.Validate; order therefore does not matter for correctness, but
// replaying in time order keeps the model honest.
func (a *Array) Apply(addr pcm.LineAddr, p Plan) {
	l := a.line(addr)
	sorted := p
	sorted.Pulses = append([]Pulse(nil), p.Pulses...)
	sorted.SortPulses()
	for _, pl := range sorted.Pulses {
		i := a.idx(pl.Chip, pl.Unit)
		if pl.Kind == Set {
			l.bits[i] |= pl.Mask
			if pl.FlipCell {
				l.flips[i] = true
			}
		} else {
			l.bits[i] &^= pl.Mask
			if pl.FlipCell {
				l.flips[i] = false
			}
		}
	}
}

// Logical decodes the stored cells of one line into its logical bytes.
func (a *Array) Logical(addr pcm.LineAddr) []byte {
	l := a.line(addr)
	out := make([]byte, a.par.LineBytes)
	mask := bitutil.WidthMask(a.par.ChipWidthBits)
	wb := a.par.ChipWidthBits / 8
	for u := 0; u < a.par.DataUnits(); u++ {
		for c := 0; c < a.par.NumChips; c++ {
			i := a.idx(c, u)
			w := l.bits[i]
			if l.flips[i] {
				w = ^w & mask
			}
			bitutil.SetChipSlice(out, a.par.NumChips, wb, c, u, w)
		}
	}
	return out
}

// SyncLogical re-derives one line's stored data bits from its logical
// contents under the line's current flip tags, leaving the tags
// untouched. The runtime invariant guard uses it to re-anchor its shadow
// array to the device's actual stored contents — which can drift from
// the pulse-train model under fault injection — before replaying the
// next plan: the scheme plans from the device's real old image, so the
// oracle must start there too.
func (a *Array) SyncLogical(addr pcm.LineAddr, logical []byte) {
	l := a.line(addr)
	mask := bitutil.WidthMask(a.par.ChipWidthBits)
	wb := a.par.ChipWidthBits / 8
	for u := 0; u < a.par.DataUnits(); u++ {
		for c := 0; c < a.par.NumChips; c++ {
			i := a.idx(c, u)
			w := bitutil.ChipSlice(logical, a.par.NumChips, wb, c, u)
			if l.flips[i] {
				w = ^w & mask
			}
			l.bits[i] = w
		}
	}
}

// Encoded returns the raw stored bits and flip cell of one (chip, unit).
func (a *Array) Encoded(addr pcm.LineAddr, c, u int) (bits uint16, flip bool) {
	l := a.line(addr)
	i := a.idx(c, u)
	return l.bits[i], l.flips[i]
}

// CheckWrite is the all-in-one oracle used by the scheme test suites: it
// validates the plan structurally, replays it, verifies the decoded
// contents equal want, and checks the pulse train against the power
// budget implied by the parameters. Any violation is returned as an
// error naming the failing property.
func (a *Array) CheckWrite(addr pcm.LineAddr, p Plan, want []byte) error {
	if err := p.Validate(a.par); err != nil {
		return fmt.Errorf("plan invalid: %w", err)
	}
	budget := PowerBudget(a.par)
	if err := budget.Check(p.Profile(units.Time(0))); err != nil {
		return fmt.Errorf("power violated: %w", err)
	}
	a.Apply(addr, p)
	got := a.Logical(addr)
	if bitutil.HammingBytes(got, want) != 0 {
		return fmt.Errorf("contents wrong: %d bits differ from target", bitutil.HammingBytes(got, want))
	}
	return nil
}
