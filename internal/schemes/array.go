package schemes

import (
	"fmt"

	"tetriswrite/internal/bitutil"
	"tetriswrite/internal/linestore"
	"tetriswrite/internal/pcm"
	"tetriswrite/internal/units"
)

// Array is a bit-accurate model of the encoded PCM cells of one line set:
// the data cells plus the flip cell of every (chip, data unit) pair. It
// replays the pulse trains of Plans and decodes the logical contents, so
// tests and examples can verify that whatever a scheme schedules actually
// leaves the right bits in the array. A fresh Array is all zeros with all
// flip cells cleared, matching a fresh Device and fresh scheme state.
//
// Lines are stored inline in a linestore.Store: four 16-bit cell words
// per uint64, followed by a flip-cell bitmap. The invariant guard keeps
// one Array per scheme under test and touches it on every deep-checked
// write, so the layout matters the same way the device's does.
type Array struct {
	par       pcm.Params
	lines     *linestore.Store
	bitsWords int // words holding the packed uint16 cells

	// pulseBuf is the reusable sort scratch of Apply. Arrays are
	// single-owner like the schemes they shadow, so reuse is safe.
	pulseBuf []Pulse
}

// NewArray returns an empty encoded-cell model.
func NewArray(par pcm.Params) *Array {
	n := par.DataUnits() * par.NumChips
	bitsWords := (n + 3) / 4
	flipWords := (n + 63) / 64
	return &Array{
		par:       par,
		lines:     linestore.NewStore(bitsWords + flipWords),
		bitsWords: bitsWords,
	}
}

func (a *Array) line(addr pcm.LineAddr) []uint64 {
	return a.lines.Ensure(int64(addr))
}

func (a *Array) idx(c, u int) int { return u*a.par.NumChips + c }

func cellBits(l []uint64, i int) uint16 {
	return uint16(l[i>>2] >> (16 * uint(i&3)))
}

func setCellBits(l []uint64, i int, v uint16) {
	sh := 16 * uint(i&3)
	l[i>>2] = l[i>>2]&^(0xFFFF<<sh) | uint64(v)<<sh
}

func (a *Array) cellFlip(l []uint64, i int) bool {
	return l[a.bitsWords+i>>6]&(1<<uint(i&63)) != 0
}

func (a *Array) setCellFlip(l []uint64, i int, v bool) {
	if v {
		l[a.bitsWords+i>>6] |= 1 << uint(i&63)
	} else {
		l[a.bitsWords+i>>6] &^= 1 << uint(i&63)
	}
}

// Apply replays a plan's pulses onto the line's encoded cells, in pulse
// start-time order. Overlapping same-cell pulses were already excluded by
// Plan.Validate; order therefore does not matter for correctness, but
// replaying in time order keeps the model honest.
func (a *Array) Apply(addr pcm.LineAddr, p Plan) {
	l := a.line(addr)
	sorted := p
	sorted.Pulses = append(a.pulseBuf[:0], p.Pulses...)
	sorted.SortPulses()
	a.pulseBuf = sorted.Pulses[:0]
	for _, pl := range sorted.Pulses {
		i := a.idx(pl.Chip, pl.Unit)
		if pl.Kind == Set {
			setCellBits(l, i, cellBits(l, i)|pl.Mask)
			if pl.FlipCell {
				a.setCellFlip(l, i, true)
			}
		} else {
			setCellBits(l, i, cellBits(l, i)&^pl.Mask)
			if pl.FlipCell {
				a.setCellFlip(l, i, false)
			}
		}
	}
}

// Logical decodes the stored cells of one line into its logical bytes.
func (a *Array) Logical(addr pcm.LineAddr) []byte {
	out := make([]byte, a.par.LineBytes)
	a.LogicalInto(out, addr)
	return out
}

// LogicalInto decodes the stored cells of one line into dst, which must
// be one line long. For x16 chips the packed cell words ARE the logical
// little-endian byte layout up to inversion coding, so decoding is one
// XOR per four cells: the flip bitmap nibble expands to 16-bit lanes of
// ones and flips exactly the inverted cells' data words.
func (a *Array) LogicalInto(dst []byte, addr pcm.LineAddr) {
	if len(dst) != a.par.LineBytes {
		panic("schemes: LogicalInto buffer size mismatch")
	}
	l := a.line(addr)
	n := a.par.DataUnits() * a.par.NumChips
	if a.par.ChipWidthBits == 16 && n%4 == 0 {
		for w := 0; w < n/4; w++ {
			nib := l[a.bitsWords+w>>4] >> (4 * uint(w&15))
			bitutil.StoreLE64(dst, w*8, l[w]^bitutil.LaneMask16(nib))
		}
		return
	}
	mask := bitutil.WidthMask(a.par.ChipWidthBits)
	wb := a.par.ChipWidthBits / 8
	for u := 0; u < a.par.DataUnits(); u++ {
		for c := 0; c < a.par.NumChips; c++ {
			i := a.idx(c, u)
			w := cellBits(l, i)
			if a.cellFlip(l, i) {
				w = ^w & mask
			}
			bitutil.SetChipSlice(dst, a.par.NumChips, wb, c, u, w)
		}
	}
}

// SyncLogical re-derives one line's stored data bits from its logical
// contents under the line's current flip tags, leaving the tags
// untouched. The runtime invariant guard uses it to re-anchor its shadow
// array to the device's actual stored contents — which can drift from
// the pulse-train model under fault injection — before replaying the
// next plan: the scheme plans from the device's real old image, so the
// oracle must start there too.
func (a *Array) SyncLogical(addr pcm.LineAddr, logical []byte) {
	l := a.line(addr)
	n := a.par.DataUnits() * a.par.NumChips
	if a.par.ChipWidthBits == 16 && n%4 == 0 && len(logical) >= n*2 {
		// Encoding is the same involution as decoding: XOR the lanes
		// whose flip tags are set (see LogicalInto).
		for w := 0; w < n/4; w++ {
			nib := l[a.bitsWords+w>>4] >> (4 * uint(w&15))
			l[w] = bitutil.LoadLE64(logical, w*8) ^ bitutil.LaneMask16(nib)
		}
		return
	}
	mask := bitutil.WidthMask(a.par.ChipWidthBits)
	wb := a.par.ChipWidthBits / 8
	for u := 0; u < a.par.DataUnits(); u++ {
		for c := 0; c < a.par.NumChips; c++ {
			i := a.idx(c, u)
			w := bitutil.ChipSlice(logical, a.par.NumChips, wb, c, u)
			if a.cellFlip(l, i) {
				w = ^w & mask
			}
			setCellBits(l, i, w)
		}
	}
}

// FlipTags returns the line's physical flip-cell word in the
// FlipTagReader layout (bit u*NumChips+c) — the tag image crash
// recovery restores scheme state from. With more than 64 (chip, unit)
// pairs only the first 64 are representable; the default geometry has
// 32.
func (a *Array) FlipTags(addr pcm.LineAddr) uint64 {
	l := a.line(addr)
	n := a.par.DataUnits() * a.par.NumChips
	if n >= 64 {
		return l[a.bitsWords] // bitmap word 0 IS the tag layout
	}
	return l[a.bitsWords] & (1<<uint(n) - 1)
}

// Encoded returns the raw stored bits and flip cell of one (chip, unit).
func (a *Array) Encoded(addr pcm.LineAddr, c, u int) (bits uint16, flip bool) {
	l := a.line(addr)
	i := a.idx(c, u)
	return cellBits(l, i), a.cellFlip(l, i)
}

// CheckWrite is the all-in-one oracle used by the scheme test suites: it
// validates the plan structurally, replays it, verifies the decoded
// contents equal want, and checks the pulse train against the power
// budget implied by the parameters. Any violation is returned as an
// error naming the failing property.
func (a *Array) CheckWrite(addr pcm.LineAddr, p Plan, want []byte) error {
	if err := p.Validate(a.par); err != nil {
		return fmt.Errorf("plan invalid: %w", err)
	}
	budget := PowerBudget(a.par)
	if err := budget.Check(p.Profile(units.Time(0))); err != nil {
		return fmt.Errorf("power violated: %w", err)
	}
	a.Apply(addr, p)
	got := a.Logical(addr)
	if bitutil.HammingBytes(got, want) != 0 {
		return fmt.Errorf("contents wrong: %d bits differ from target", bitutil.HammingBytes(got, want))
	}
	return nil
}
