package schemes

import (
	"tetriswrite/internal/pcm"
	"tetriswrite/internal/units"
)

// ServiceFloorer is an optional Scheme capability: a sound lower bound
// on PlanWrite(...).ServiceTime() knowing only whether the write changes
// the stored line (changed = !bytes.Equal(old, new)). The parallel
// controller uses the floor as its conservative lookahead — it schedules
// a write's completion at issue+floor before the plan exists, and the
// sim kernel panics if the real plan ever undercuts the bound, so an
// unsound floor is caught immediately instead of silently reordering
// events.
//
// Floors must be monotone — ServiceFloor(false) <= ServiceFloor(true) —
// because decorators whose encoding can hide a logical change (flip
// minimization) fall back to the inner scheme's unchanged-line floor.
type ServiceFloorer interface {
	ServiceFloor(changed bool) units.Duration
}

// FloorOf returns s's service-time floor: the scheme's own bound when it
// implements ServiceFloorer, otherwise the universal one — a changed
// line needs at least one pulse, and every pulse kind lasts at least
// TReset (Params.Validate enforces TSet >= TReset), while an unchanged
// line may complete instantly under a comparison-based scheme.
func FloorOf(s Scheme, par pcm.Params, changed bool) units.Duration {
	if f, ok := s.(ServiceFloorer); ok {
		return f.ServiceFloor(changed)
	}
	if changed {
		return par.TReset
	}
	return 0
}

// The fixed-slot schemes reserve their write phase independently of the
// data (the slot layout is the worst case the power budget admits), so
// their floors are the exact phase spans from the PlanWrite bodies and
// the parallel controller's lookahead covers the whole service time.

func (s *conventional) ServiceFloor(bool) units.Duration {
	lay := newStaticLayout(s.par.ChipWidthBits, s.par.CurrentReset, s.par.ChipBudget)
	return units.Duration(lay.slots(s.par.DataUnits())) * s.par.TSet
}

func (s *dcw) ServiceFloor(bool) units.Duration {
	lay := newStaticLayout(s.par.ChipWidthBits, s.par.CurrentReset, s.par.ChipBudget)
	return s.par.TRead + units.Duration(lay.slots(s.par.DataUnits()))*s.par.TSet
}

func (s *fnw) ServiceFloor(bool) units.Duration {
	lay := newStaticLayout(s.par.ChipWidthBits/2, s.par.CurrentReset, s.par.ChipBudget)
	return s.par.TRead + units.Duration(lay.slots(s.par.DataUnits()))*s.par.TSet
}

func (s *twoStage) ServiceFloor(bool) units.Duration {
	nu := s.par.DataUnits()
	w := s.par.ChipWidthBits
	n0 := newStaticLayout(w, s.par.CurrentReset, s.par.ChipBudget).slots(nu)
	n1 := newStaticLayout(w/2, s.par.CurrentSet, s.par.ChipBudget).slots(nu)
	return units.Duration(n0)*s.par.TReset + units.Duration(n1)*s.par.TSet
}

func (s *threeStage) ServiceFloor(bool) units.Duration {
	nu := s.par.DataUnits()
	w := s.par.ChipWidthBits
	n0 := newStaticLayout(w/2, s.par.CurrentReset, s.par.ChipBudget).slots(nu)
	n1 := newStaticLayout(w/2, s.par.CurrentSet, s.par.ChipBudget).slots(nu)
	return s.par.TRead + units.Duration(n0)*s.par.TReset + units.Duration(n1)*s.par.TSet
}

// ServiceFloor implements ServiceFloorer. The minimizer's encoding can
// hide a logical change from the inner scheme (the tag flips instead),
// so the inner bound is taken at changed=false; the decorator itself
// always forces the read phase, and a hidden change still costs a tag
// pulse of at least TReset.
func (s *flipMin) ServiceFloor(changed bool) units.Duration {
	own := s.par.TRead
	if changed {
		own += s.par.TReset
	}
	if inner := FloorOf(s.inner, s.par, false); inner > own {
		return inner
	}
	return own
}

// ServiceFloor implements ServiceFloorer: remapping only ever adds
// migration latency on top of the inner plan, so the inner bound holds.
func (s *remapper) ServiceFloor(changed bool) units.Duration {
	return FloorOf(s.inner, s.par, changed)
}

// ServiceFloor implements ServiceFloorer: any candidate may plan the
// write, so only the weakest candidate bound is sound.
func (s *adaptive) ServiceFloor(changed bool) units.Duration {
	floor := FloorOf(s.cands[0], s.par, changed)
	for _, c := range s.cands[1:] {
		if f := FloorOf(c, s.par, changed); f < floor {
			floor = f
		}
	}
	return floor
}
