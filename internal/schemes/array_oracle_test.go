package schemes

import (
	"math/rand"
	"testing"

	"tetriswrite/internal/bitutil"
	"tetriswrite/internal/pcm"
	"tetriswrite/internal/units"
)

// packedArray is the pre-SoA Array implementation, kept verbatim as a
// test-only oracle: every operation walks the packed cells one at a
// time, with no word-parallel fast paths. The property tests below
// drive it in lock-step with the real Array through randomized pulse
// replays, re-anchors and decodes, and require bit-for-bit agreement —
// the SoA rewrite must be invisible to every consumer, including the
// crash-recovery classifiers that read decoded lines and tag words.
type packedArray struct {
	par   pcm.Params
	lines map[pcm.LineAddr][]uint64
	bw    int
}

func newPackedArray(par pcm.Params) *packedArray {
	n := par.DataUnits() * par.NumChips
	return &packedArray{par: par, lines: map[pcm.LineAddr][]uint64{}, bw: (n + 3) / 4}
}

func (a *packedArray) line(addr pcm.LineAddr) []uint64 {
	l, ok := a.lines[addr]
	if !ok {
		n := a.par.DataUnits() * a.par.NumChips
		l = make([]uint64, a.bw+(n+63)/64)
		a.lines[addr] = l
	}
	return l
}

func (a *packedArray) idx(c, u int) int { return u*a.par.NumChips + c }

func (a *packedArray) bits(l []uint64, i int) uint16 { return uint16(l[i>>2] >> (16 * uint(i&3))) }

func (a *packedArray) setBits(l []uint64, i int, v uint16) {
	sh := 16 * uint(i&3)
	l[i>>2] = l[i>>2]&^(0xFFFF<<sh) | uint64(v)<<sh
}

func (a *packedArray) flip(l []uint64, i int) bool { return l[a.bw+i>>6]&(1<<uint(i&63)) != 0 }

func (a *packedArray) setFlip(l []uint64, i int, v bool) {
	if v {
		l[a.bw+i>>6] |= 1 << uint(i&63)
	} else {
		l[a.bw+i>>6] &^= 1 << uint(i&63)
	}
}

func (a *packedArray) Apply(addr pcm.LineAddr, p Plan) {
	l := a.line(addr)
	sorted := p
	sorted.Pulses = append([]Pulse(nil), p.Pulses...)
	sorted.SortPulses()
	for _, pl := range sorted.Pulses {
		i := a.idx(pl.Chip, pl.Unit)
		if pl.Kind == Set {
			a.setBits(l, i, a.bits(l, i)|pl.Mask)
			if pl.FlipCell {
				a.setFlip(l, i, true)
			}
		} else {
			a.setBits(l, i, a.bits(l, i)&^pl.Mask)
			if pl.FlipCell {
				a.setFlip(l, i, false)
			}
		}
	}
}

func (a *packedArray) Logical(addr pcm.LineAddr) []byte {
	l := a.line(addr)
	out := make([]byte, a.par.LineBytes)
	mask := bitutil.WidthMask(a.par.ChipWidthBits)
	wb := a.par.ChipWidthBits / 8
	for u := 0; u < a.par.DataUnits(); u++ {
		for c := 0; c < a.par.NumChips; c++ {
			i := a.idx(c, u)
			w := a.bits(l, i)
			if a.flip(l, i) {
				w = ^w & mask
			}
			bitutil.SetChipSlice(out, a.par.NumChips, wb, c, u, w)
		}
	}
	return out
}

func (a *packedArray) SyncLogical(addr pcm.LineAddr, logical []byte) {
	l := a.line(addr)
	mask := bitutil.WidthMask(a.par.ChipWidthBits)
	wb := a.par.ChipWidthBits / 8
	for u := 0; u < a.par.DataUnits(); u++ {
		for c := 0; c < a.par.NumChips; c++ {
			i := a.idx(c, u)
			w := bitutil.ChipSlice(logical, a.par.NumChips, wb, c, u)
			if a.flip(l, i) {
				w = ^w & mask
			}
			a.setBits(l, i, w)
		}
	}
}

func (a *packedArray) FlipTags(addr pcm.LineAddr) uint64 {
	l := a.line(addr)
	n := a.par.DataUnits() * a.par.NumChips
	if n > 64 {
		n = 64
	}
	var w uint64
	for i := 0; i < n; i++ {
		if a.flip(l, i) {
			w |= 1 << uint(i)
		}
	}
	return w
}

func (a *packedArray) Encoded(addr pcm.LineAddr, c, u int) (uint16, bool) {
	l := a.line(addr)
	return a.bits(l, a.idx(c, u)), a.flip(l, a.idx(c, u))
}

// randomPlan emits a structurally plausible pulse train: random cells,
// kinds, masks, start offsets and flip-cell riders. It does not need to
// satisfy power budgets — Apply ignores them — only the
// no-overlapping-identical-pulse rule SortPulses' total order relies on.
func randomPlan(rng *rand.Rand, par pcm.Params) Plan {
	p := basePlan(par)
	mask := bitutil.WidthMask(par.ChipWidthBits)
	seen := map[[4]int]bool{}
	for n := rng.Intn(12); n > 0; n-- {
		pl := Pulse{
			Chip:  rng.Intn(par.NumChips),
			Unit:  rng.Intn(par.DataUnits()),
			Kind:  PulseKind(rng.Intn(2)),
			Start: units.Duration(rng.Intn(8)) * par.TSet,
			Mask:  uint16(rng.Uint32()) & mask,
		}
		if rng.Intn(4) == 0 {
			pl.FlipCell = true
			pl.Mask = 0
		} else if pl.Mask == 0 {
			continue
		}
		key := [4]int{pl.Chip, pl.Unit, int(pl.Kind), int(pl.Start)}
		if seen[key] { // identical (cell, kind, start) would tie the sort order
			continue
		}
		seen[key] = true
		p.Pulses = append(p.Pulses, pl)
	}
	return p
}

// TestArrayMatchesPackedOracle drives the SoA Array and the packed
// per-cell oracle through identical randomized sequences of pulse
// replays, logical re-anchors, decodes and tag reads, across the x16
// fast-path geometry, an x8 scalar geometry, and a non-multiple-of-four
// cell count.
func TestArrayMatchesPackedOracle(t *testing.T) {
	geometries := []struct {
		name string
		par  pcm.Params
	}{
		{"x16-default", pcm.DefaultParams()},
		{"x8-scalar", func() pcm.Params {
			p := pcm.DefaultParams()
			p.ChipWidthBits = 8
			return p
		}()},
		{"x16-odd-cells", func() pcm.Params {
			p := pcm.DefaultParams()
			p.NumChips = 2
			p.LineBytes = 52 // 13 units * 2 chips = 26 cells, not %4
			p.CapacityBytes = int64(p.LineBytes) * 1024
			return p
		}()},
	}
	for _, g := range geometries {
		t.Run(g.name, func(t *testing.T) {
			if err := g.par.Validate(); err != nil {
				t.Fatalf("geometry invalid: %v", err)
			}
			rng := rand.New(rand.NewSource(42))
			arr := NewArray(g.par)
			oracle := newPackedArray(g.par)
			addrs := []pcm.LineAddr{0, 1, 7, 31}
			for step := 0; step < 400; step++ {
				addr := addrs[rng.Intn(len(addrs))]
				switch rng.Intn(3) {
				case 0: // pulse replay
					p := randomPlan(rng, g.par)
					arr.Apply(addr, p)
					oracle.Apply(addr, p)
				case 1: // re-anchor to arbitrary logical contents
					logical := make([]byte, g.par.LineBytes)
					rng.Read(logical)
					arr.SyncLogical(addr, logical)
					oracle.SyncLogical(addr, logical)
				case 2: // decode + tag + raw-cell reads (the classifier path)
					got, want := arr.Logical(addr), oracle.Logical(addr)
					if bitutil.HammingBytes(got, want) != 0 {
						t.Fatalf("step %d: Logical(%d) diverged\n got %x\nwant %x", step, addr, got, want)
					}
					into := make([]byte, g.par.LineBytes)
					arr.LogicalInto(into, addr)
					if bitutil.HammingBytes(into, want) != 0 {
						t.Fatalf("step %d: LogicalInto(%d) diverged", step, addr)
					}
					if gt, wt := arr.FlipTags(addr), oracle.FlipTags(addr); gt != wt {
						t.Fatalf("step %d: FlipTags(%d) = %#x, oracle %#x", step, addr, gt, wt)
					}
					c := rng.Intn(g.par.NumChips)
					u := rng.Intn(g.par.DataUnits())
					gb, gf := arr.Encoded(addr, c, u)
					wb, wf := oracle.Encoded(addr, c, u)
					if gb != wb || gf != wf {
						t.Fatalf("step %d: Encoded(%d,%d,%d) = (%#x,%v), oracle (%#x,%v)",
							step, addr, c, u, gb, gf, wb, wf)
					}
				}
			}
			// Final sweep: every line must agree on every surface.
			for _, addr := range addrs {
				if bitutil.HammingBytes(arr.Logical(addr), oracle.Logical(addr)) != 0 {
					t.Errorf("final: Logical(%d) diverged", addr)
				}
				if arr.FlipTags(addr) != oracle.FlipTags(addr) {
					t.Errorf("final: FlipTags(%d) diverged", addr)
				}
			}
		})
	}
}

// TestArrayOracleTornReadPath replays torn (truncated) tetris-style
// plans on both arrays and checks the crash-recovery read surface —
// decoded contents and physical tag word, the two inputs the
// TornStateClassifier sees — stays identical under every truncation
// point of every plan.
func TestArrayOracleTornReadPath(t *testing.T) {
	par := pcm.DefaultParams()
	rng := rand.New(rand.NewSource(7))
	arr := NewArray(par)
	oracle := newPackedArray(par)
	addr := pcm.LineAddr(3)
	for round := 0; round < 60; round++ {
		p := randomPlan(rng, par)
		// Tear the plan: keep a random prefix of its (sorted) pulses,
		// like a power failure mid-train.
		sorted := p
		sorted.Pulses = append([]Pulse(nil), p.Pulses...)
		sorted.SortPulses()
		cut := 0
		if len(sorted.Pulses) > 0 {
			cut = rng.Intn(len(sorted.Pulses) + 1)
		}
		torn := sorted
		torn.Pulses = sorted.Pulses[:cut]
		arr.Apply(addr, torn)
		oracle.Apply(addr, torn)
		if bitutil.HammingBytes(arr.Logical(addr), oracle.Logical(addr)) != 0 {
			t.Fatalf("round %d cut %d: torn decode diverged", round, cut)
		}
		if arr.FlipTags(addr) != oracle.FlipTags(addr) {
			t.Fatalf("round %d cut %d: torn tags diverged", round, cut)
		}
	}
}
