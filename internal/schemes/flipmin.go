package schemes

import (
	"tetriswrite/internal/bitutil"
	"tetriswrite/internal/pcm"
)

// flipMin is a WIRE-style flip-minimizing encoder decorator: before the
// inner scheme plans its pulses, every (chip, data unit) slice is
// re-encoded under a per-unit inversion tag chosen to minimize the number
// of cells that change — the stored word is complemented whenever that
// transitions fewer cells than writing it straight (counting the tag cell
// itself). The inner scheme then plans in the *encoded* domain: it sees
// the currently stored bits as old and the chosen encoding as new, so a
// comparison-based inner scheme (DCW) pulses only the minimized cell set.
// Tag-cell pulses are appended by the decorator in the first write slot;
// like Flip-N-Write's flip cells they cost energy but sit outside the
// data power budget (Pulse.DataBits).
//
// Unlike Flip-N-Write, the inversion decision here is a pure greedy
// Hamming minimization with no worst-case guarantee, so it composes with
// any inner scheme whose slot layout covers the full chip width. The
// inner scheme must not drive flip cells itself (the registry rejects
// such compositions): one tag per (chip, unit) admits exactly one writer,
// and the decode rule — logical = stored XOR tag — must stay single-XOR
// for the shadow-array oracle to hold.
type flipMin struct {
	inner Scheme
	rec   PlanRecycler // inner's recycler, when it has one
	par   pcm.Params
	name  string
	flips *flipState

	// Preallocated per-write scratch: the encoded old/new images handed
	// to the inner scheme and the tag transitions of the current write.
	encOld, encNew []byte
	changes        []tagChange

	stats struct {
		inversions int64 // tag toggles chosen by the minimizer
		tagSets    int64 // tag-cell SET pulses emitted
		tagResets  int64 // tag-cell RESET pulses emitted
	}
}

type tagChange struct {
	c, u int
	set  bool
}

// NewFlipMin wraps inner with the flip-minimizing encoder. The inner
// scheme must not pulse flip cells itself; compose via the registry to
// have that checked.
func NewFlipMin(inner Scheme, par pcm.Params) Scheme {
	s := &flipMin{
		inner:  inner,
		par:    par,
		name:   inner.Name() + "+flipmin",
		flips:  newFlipState(par.NumChips),
		encOld: make([]byte, par.LineBytes),
		encNew: make([]byte, par.LineBytes),
	}
	s.changes = make([]tagChange, 0, par.DataUnits()*par.NumChips)
	s.rec, _ = inner.(PlanRecycler)
	return s
}

func (s *flipMin) Name() string               { return s.name }
func (s *flipMin) NeedsReadBeforeWrite() bool { return true }

// FlipTags implements FlipTagReader with the decorator's own tag state.
func (s *flipMin) FlipTags(addr pcm.LineAddr) uint64 { return s.flips.word(addr) }

// RecyclePlan implements PlanRecycler by routing the buffer back to the
// inner scheme's arena, where it was taken from.
func (s *flipMin) RecyclePlan(p Plan) {
	if s.rec != nil {
		s.rec.RecyclePlan(p)
	}
}

// ObserveQueues forwards controller load to the inner scheme.
func (s *flipMin) ObserveQueues(reads, writes int) {
	if o, ok := s.inner.(QueueObserver); ok {
		o.ObserveQueues(reads, writes)
	}
}

// SchemeStats implements StatProvider.
func (s *flipMin) SchemeStats(emit func(name string, value float64)) {
	emit("scheme.flipmin.inversions", float64(s.stats.inversions))
	emit("scheme.flipmin.tag_sets", float64(s.stats.tagSets))
	emit("scheme.flipmin.tag_resets", float64(s.stats.tagResets))
	if sp, ok := s.inner.(StatProvider); ok {
		sp.SchemeStats(emit)
	}
}

func (s *flipMin) PlanWrite(addr pcm.LineAddr, old, new []byte) Plan {
	nu := s.par.DataUnits()
	wbits := s.par.ChipWidthBits
	wb := wbits / 8
	mask := bitutil.WidthMask(wbits)
	s.changes = s.changes[:0]
	for u := 0; u < nu; u++ {
		for c := 0; c < s.par.NumChips; c++ {
			lo := bitutil.ChipSlice(old, s.par.NumChips, wb, c, u)
			ln := bitutil.ChipSlice(new, s.par.NumChips, wb, c, u)
			oldTag := s.flips.get(addr, c, u)
			storedOld := lo & mask
			encKeep := ln & mask
			if oldTag {
				storedOld = ^lo & mask
				encKeep = ^ln & mask
			}
			encTog := ^encKeep & mask
			keepCost := bitutil.Hamming16(storedOld, encKeep)
			togCost := bitutil.Hamming16(storedOld, encTog) + 1 // the tag cell flips too
			enc := encKeep
			if togCost < keepCost {
				enc = encTog
				newTag := !oldTag
				s.flips.set(addr, c, u, newTag)
				s.changes = append(s.changes, tagChange{c: c, u: u, set: newTag})
				s.stats.inversions++
			}
			bitutil.SetChipSlice(s.encOld, s.par.NumChips, wb, c, u, storedOld)
			bitutil.SetChipSlice(s.encNew, s.par.NumChips, wb, c, u, enc)
		}
	}
	p := s.inner.PlanWrite(addr, s.encOld, s.encNew)
	// The minimizer compares against the stored image, so the composed
	// scheme always reads before writing even over a no-read inner.
	if p.Read < s.par.TRead {
		p.Read = s.par.TRead
	}
	for _, ch := range s.changes {
		kind := Reset
		if ch.set {
			kind = Set
			s.stats.tagSets++
		} else {
			s.stats.tagResets++
		}
		if d := p.dur(kind); p.Write < d {
			p.Write = d
		}
		p.Pulses = append(p.Pulses, Pulse{Chip: ch.c, Unit: ch.u, Kind: kind, Start: 0, FlipCell: true})
	}
	return p
}
