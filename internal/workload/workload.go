// Package workload provides synthetic multi-threaded memory workloads
// calibrated to the paper's evaluation: one generator per PARSEC 2.0
// program used in the paper, matching Table III (memory reads and writes
// per kilo-instruction, data-sharing level) and Figure 3 (the measured
// number of SET and RESET operations per 64-bit data unit after
// inversion).
//
// The paper's traces are not available (GEM5 + PARSEC), so these
// generators are the documented substitution: the evaluation depends on
// the workloads only through (a) their memory intensity and read/write
// mix, and (b) the bit-change statistics of the written data — both of
// which the paper publishes and these generators reproduce. Addresses
// follow a Zipf distribution over a per-core private region plus a shared
// region sized by the program's sharing level, and every write carries a
// real 64-byte payload mutated from the generator's shadow of memory so
// the bit-level write schemes see realistic transition vectors.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"tetriswrite/internal/linestore"
	"tetriswrite/internal/pcm"
)

// Profile describes one synthetic workload.
type Profile struct {
	Name   string
	Domain string // application domain, from Table III

	// Memory intensity (Table III): memory reads and writes per
	// kilo-instruction.
	RPKI, WPKI float64

	// Bit-change statistics (Figure 3): mean SET and RESET operations
	// per 64-bit data unit of a written line, after inversion coding.
	MeanSets, MeanResets float64

	// Sharing is the fraction of accesses that target the shared region
	// (derived from Table III's data-sharing level: low ~ 0.05,
	// medium ~ 0.15, high ~ 0.35).
	Sharing float64

	// PrivateLines and SharedLines size the address regions per core and
	// for the whole program. Zero means the package defaults.
	PrivateLines int
	SharedLines  int

	// ZipfS is the Zipf skew of intra-region accesses (default 1.2).
	ZipfS float64

	// UntouchedUnits is the probability that a written cache line leaves
	// one of its 64-bit data units completely unchanged — the knob that
	// makes per-unit counts over-dispersed like real data.
	UntouchedUnits float64

	// Burstiness adds two-phase (Markov-modulated) arrival behaviour:
	// the generator alternates between a burst phase with think gaps
	// scaled by (1-Burstiness) and an idle phase scaled by
	// (1+Burstiness), switching phases with probability 5% per access.
	// The mean gap — and therefore RPKI/WPKI — is preserved; only the
	// variance grows. 0 (the default) keeps plain geometric gaps.
	Burstiness float64
}

// Profiles returns the eight PARSEC 2.0 workloads of the paper's
// Table III, calibrated so the suite-wide means match the paper's
// Observation 1: ~9.6 bit-writes per 64-bit unit, ~2:1 SET-dominant
// (6.7 SET + 2.9 RESET), with vips and ferret closer to fifty-fifty.
func Profiles() []Profile {
	return []Profile{
		{Name: "blackscholes", Domain: "Financial Analysis", RPKI: 0.04, WPKI: 0.02,
			MeanSets: 1.4, MeanResets: 0.6, Sharing: 0.05},
		{Name: "bodytrack", Domain: "Computer Vision", RPKI: 0.72, WPKI: 0.24,
			MeanSets: 6.0, MeanResets: 2.0, Sharing: 0.25},
		{Name: "canneal", Domain: "Engineering", RPKI: 2.76, WPKI: 0.19,
			MeanSets: 5.5, MeanResets: 1.0, Sharing: 0.35},
		{Name: "dedup", Domain: "Enterprise Storage", RPKI: 0.82, WPKI: 0.49,
			MeanSets: 11.0, MeanResets: 4.0, Sharing: 0.35},
		{Name: "ferret", Domain: "Similarity Search", RPKI: 1.67, WPKI: 0.95,
			MeanSets: 6.0, MeanResets: 6.0, Sharing: 0.35},
		{Name: "freqmine", Domain: "Data Mining", RPKI: 0.62, WPKI: 0.25,
			MeanSets: 5.5, MeanResets: 1.5, Sharing: 0.25},
		{Name: "swaptions", Domain: "Financial Analysis", RPKI: 0.04, WPKI: 0.02,
			MeanSets: 3.2, MeanResets: 0.8, Sharing: 0.05},
		{Name: "vips", Domain: "Media Processing", RPKI: 2.56, WPKI: 1.56,
			MeanSets: 11.0, MeanResets: 8.0, Sharing: 0.15},
	}
}

// ProfileByName returns the named profile.
func ProfileByName(name string) (Profile, error) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("workload: unknown profile %q", name)
}

// Op is one memory operation of a core's instruction stream.
type Op struct {
	// Think is the number of instructions the core retires before
	// issuing this access.
	Think int64
	// Write indicates a memory write; Data then holds the full line
	// payload (reads carry nil Data).
	Write bool
	Addr  pcm.LineAddr
	Data  []byte
}

const (
	defaultPrivateLines = 8192
	defaultSharedLines  = 8192
	defaultZipfS        = 1.2
	defaultUntouched    = 0.35
)

// Generator produces one core's deterministic operation stream. Cores of
// the same program share the shared-region shadow through the Program
// that created them.
type Generator struct {
	prof     Profile
	core     int
	rng      *rand.Rand
	zipfPriv *rand.Zipf
	zipfShrd *rand.Zipf
	prog     *Program
	privBase pcm.LineAddr
	frontier pcm.LineAddr // next fresh line for this core
	frontEnd pcm.LineAddr
	lineLen  int
	meanGap  float64
	inBurst  bool
	// freshFrac is the fraction of writes that allocate a fresh line:
	// (MeanSets-MeanResets)/(MeanSets+MeanResets). Fresh lines start all
	// zeros (like untouched PCM), so their first write is pure SETs;
	// resident lines are toggled and therefore balanced. The mixture
	// reproduces both Figure 3 means — a closed bit-flip process alone
	// cannot sustain SET-dominance, allocation churn is what does.
	freshFrac float64
	// expUnitMean caches exp(-(MeanSets+MeanResets)*scale) for the
	// per-unit Poisson draw — the mean is a generator constant, and
	// math.Exp per draw was a measurable slice of full-system profiles.
	expUnitMean float64
	// perm is distinctBits' partial Fisher-Yates scratch; reusing it
	// consumes the RNG identically to a fresh slice.
	perm []int
}

// Program is one multi-threaded workload instance: a profile plus the
// shared memory shadow its cores mutate.
type Program struct {
	prof      Profile
	par       pcm.Params
	seed      int64
	shadow    *linestore.Store // lines as inline little-endian words
	shrdBase  pcm.LineAddr
	frontBase pcm.LineAddr
	cores     int
}

// frontierCap bounds each core's fresh-allocation region.
const frontierCap = 1 << 22

// NewProgram instantiates a workload for the given core count.
func NewProgram(prof Profile, cores int, seed int64, par pcm.Params) *Program {
	if prof.PrivateLines <= 0 {
		prof.PrivateLines = defaultPrivateLines
	}
	if prof.SharedLines <= 0 {
		prof.SharedLines = defaultSharedLines
	}
	if prof.ZipfS <= 0 {
		prof.ZipfS = defaultZipfS
	}
	if prof.UntouchedUnits <= 0 {
		prof.UntouchedUnits = defaultUntouched
	}
	if prof.Burstiness < 0 || prof.Burstiness >= 1 {
		prof.Burstiness = 0
	}
	shrdBase := pcm.LineAddr(int64(cores) * int64(prof.PrivateLines))
	return &Program{
		prof:   prof,
		par:    par,
		seed:   seed,
		shadow: linestore.NewStore(linestore.Words(par.LineBytes)),
		// The shared region sits above all private regions, and the
		// fresh-allocation frontier above that.
		shrdBase:  shrdBase,
		frontBase: shrdBase + pcm.LineAddr(prof.SharedLines),
		cores:     cores,
	}
}

// AddressFootprint returns the number of lines in the program's static
// regions (every core's private region plus the shared region) — the
// bulk of the distinct lines a run touches; fresh allocations extend a
// little past it. Device sizing uses it as a capacity hint.
func (p *Program) AddressFootprint() int64 { return int64(p.frontBase) }

// Profile returns the program's (normalized) profile.
func (p *Program) Profile() Profile { return p.prof }

// Generator returns core c's operation stream.
func (p *Program) Generator(core int) *Generator {
	if core < 0 || core >= p.cores {
		panic(fmt.Sprintf("workload: core %d of %d", core, p.cores))
	}
	rng := rand.New(rand.NewSource(p.seed*1000003 + int64(core)*7919 + 1))
	apki := p.prof.RPKI + p.prof.WPKI
	total := p.prof.MeanSets + p.prof.MeanResets
	g := &Generator{
		prof:      p.prof,
		core:      core,
		rng:       rng,
		prog:      p,
		privBase:  pcm.LineAddr(int64(core) * int64(p.prof.PrivateLines)),
		frontier:  p.frontBase + pcm.LineAddr(int64(core)*frontierCap),
		lineLen:   p.par.LineBytes,
		meanGap:   1000 / apki,
		freshFrac: (p.prof.MeanSets - p.prof.MeanResets) / total,
	}
	g.frontEnd = g.frontier + frontierCap
	g.zipfPriv = rand.NewZipf(rng, p.prof.ZipfS, 1, uint64(p.prof.PrivateLines-1))
	g.zipfShrd = rand.NewZipf(rng, p.prof.ZipfS, 1, uint64(p.prof.SharedLines-1))
	scale := 1 / (1 - p.prof.UntouchedUnits)
	g.expUnitMean = math.Exp(-total * scale)
	return g
}

// initialLine returns the deterministic initial contents of a line:
// zeros in the frontier region (like untouched PCM), a 50/50 bit mix in
// the resident regions (so toggling stays balanced). Derived from the
// address and program seed only, so simulators can reconstruct it to
// pre-load the device.
//
// The fill is a splitmix64 stream rather than math/rand: rand.NewSource
// seeds a 607-word lagged-Fibonacci state, and paying that once per
// first-touched line dominated full-system CPU profiles (every read and
// write of a fresh address runs through here via the preload port).
// splitmix64 passes the same uniformity bar with two multiplies per
// 8 bytes and no seeding step.
func (p *Program) initialLine(addr pcm.LineAddr) []byte {
	l := make([]byte, p.par.LineBytes)
	p.initialInto(addr, l)
	return l
}

// initialInto fills dst (LineBytes long, assumed zeroed or fully
// overwritten below) with the line's initial contents.
func (p *Program) initialInto(addr pcm.LineAddr, dst []byte) {
	if addr >= p.frontBase {
		for i := range dst {
			dst[i] = 0
		}
		return
	}
	x := uint64(p.seed) ^ uint64(addr)*0x9E3779B97F4A7C15
	for i := 0; i < len(dst); i += 8 {
		x += 0x9E3779B97F4A7C15
		z := x
		z = (z ^ z>>30) * 0xBF58476D1CE4E5B9
		z = (z ^ z>>27) * 0x94D049BB133111EB
		z ^= z >> 31
		for j := 0; j < 8 && i+j < len(dst); j++ {
			dst[i+j] = byte(z >> (8 * j))
		}
	}
}

// initWords is initialLine directly in the shadow store's word layout:
// the splitmix64 output z IS the little-endian word, so the fill skips
// the byte round-trip entirely. Bits beyond LineBytes in the tail word
// are masked off to keep the words bit-identical to PackLine(initialLine).
func (p *Program) initWords(addr pcm.LineAddr, w []uint64) {
	if addr >= p.frontBase {
		return // Ensure zero-fills; frontier lines start as untouched PCM
	}
	x := uint64(p.seed) ^ uint64(addr)*0x9E3779B97F4A7C15
	for i := range w {
		x += 0x9E3779B97F4A7C15
		z := x
		z = (z ^ z>>30) * 0xBF58476D1CE4E5B9
		z = (z ^ z>>27) * 0x94D049BB133111EB
		z ^= z >> 31
		w[i] = z
	}
	if tail := p.par.LineBytes & 7; tail != 0 {
		w[len(w)-1] &= 1<<(8*uint(tail)) - 1
	}
}

// shadowWords returns the program's live shadow of a line as store
// words, creating it from the deterministic initial contents on first
// touch. The slice aliases the store and is invalidated by the next
// first-touch (rehash), so callers must not retain it across touches.
func (p *Program) shadowWords(addr pcm.LineAddr) []uint64 {
	if w := p.shadow.Get(int64(addr)); w != nil {
		return w
	}
	w := p.shadow.Ensure(int64(addr))
	p.initWords(addr, w)
	return w
}

// InitialContents returns the contents a simulator should pre-load the
// PCM device with before the program's first access to addr. For
// frontier (fresh-allocation) lines this is all zeros, matching untouched
// PCM; for resident lines it is the line's deterministic initial mix.
func (p *Program) InitialContents(addr pcm.LineAddr) []byte {
	return p.initialLine(addr)
}

// InitialContentsInto is InitialContents into a caller-owned buffer of
// LineBytes bytes, for preload paths that run once per touched line and
// want the steady state allocation-free.
func (p *Program) InitialContentsInto(addr pcm.LineAddr, dst []byte) {
	if len(dst) != p.par.LineBytes {
		panic(fmt.Sprintf("workload: InitialContentsInto buffer of %d bytes, line is %d", len(dst), p.par.LineBytes))
	}
	p.initialInto(addr, dst)
}

// Next produces the core's next operation.
func (g *Generator) Next() Op {
	op := Op{Think: g.thinkGap()}
	// Read/write mix per Table III.
	op.Write = g.rng.Float64() < g.prof.WPKI/(g.prof.RPKI+g.prof.WPKI)
	if op.Write && g.rng.Float64() < g.freshFrac {
		op.Addr = g.allocFresh()
		op.Data = g.freshPayload(op.Addr)
		return op
	}
	op.Addr = g.pickAddr()
	if op.Write {
		op.Data = g.mutateResident(op.Addr)
	}
	return op
}

// allocFresh advances the core's allocation frontier, wrapping (and thus
// recycling very old allocations) if the region is exhausted.
func (g *Generator) allocFresh() pcm.LineAddr {
	a := g.frontier
	g.frontier++
	if g.frontier >= g.frontEnd {
		g.frontier = g.frontEnd - frontierCap
	}
	return a
}

// thinkGap samples the instruction gap before an access: geometric with
// mean 1000/(RPKI+WPKI), so access counts per kilo-instruction match the
// profile in expectation. With Burstiness set, the mean is modulated by
// the current phase (burst or idle) while the long-run mean is
// preserved.
func (g *Generator) thinkGap() int64 {
	u := g.rng.Float64()
	for u == 0 {
		u = g.rng.Float64()
	}
	mean := g.meanGap
	if b := g.prof.Burstiness; b > 0 {
		if g.rng.Float64() < 0.05 {
			g.inBurst = !g.inBurst
		}
		if g.inBurst {
			mean *= 1 - b
		} else {
			mean *= 1 + b
		}
	}
	gap := int64(-mean * math.Log(u))
	if gap < 1 {
		gap = 1
	}
	return gap
}

// pickAddr draws the target line: shared region with probability Sharing,
// else the core's private region; Zipf-ranked within the region.
func (g *Generator) pickAddr() pcm.LineAddr {
	if g.rng.Float64() < g.prof.Sharing {
		return g.prog.shrdBase + pcm.LineAddr(g.zipfShrd.Uint64())
	}
	return g.privBase + pcm.LineAddr(g.zipfPriv.Uint64())
}

// freshPayload builds the first write to a fresh (all-zero) line: per
// data unit, MeanSets+MeanResets bits are set — pure SET work over
// untouched PCM, the source of the suite's SET-dominance.
func (g *Generator) freshPayload(addr pcm.LineAddr) []byte {
	words := g.prog.shadowWords(addr)
	for u := 0; u < g.lineLen/8; u++ {
		if g.rng.Float64() < g.prof.UntouchedUnits {
			continue
		}
		n := g.poissonL(g.expUnitMean)
		// Bit b of the 64-bit unit is bit b of the little-endian word.
		for _, b := range g.distinctBits(n, 64) {
			words[u] |= 1 << b
		}
	}
	out := make([]byte, g.lineLen)
	linestore.UnpackLine(out, words)
	return out
}

// distinctBits samples n distinct bit positions in [0, width) by partial
// Fisher-Yates, so a unit's mutation changes exactly n cells (sampling
// with replacement would silently undershoot through collisions).
func (g *Generator) distinctBits(n, width int) []int {
	if n > width {
		n = width
	}
	if n == 0 {
		return nil
	}
	if cap(g.perm) < width {
		g.perm = make([]int, width)
	}
	perm := g.perm[:width]
	for i := range perm {
		perm[i] = i
	}
	for i := 0; i < n; i++ {
		j := i + g.rng.Intn(width-i)
		perm[i], perm[j] = perm[j], perm[i]
	}
	return perm[:n]
}

// mutateResident toggles bits of a resident line's shadow: per data unit,
// MeanSets+MeanResets uniformly chosen bits flip. Over the 50/50 resident
// mix, flips split evenly between SETs and RESETs, so resident writes
// contribute (MeanSets+MeanResets)/2 of each — which combined with the
// fresh-write stream reproduces both Figure 3 means.
func (g *Generator) mutateResident(addr pcm.LineAddr) []byte {
	words := g.prog.shadowWords(addr)
	for u := 0; u < g.lineLen/8; u++ {
		if g.rng.Float64() < g.prof.UntouchedUnits {
			continue
		}
		n := g.poissonL(g.expUnitMean)
		for _, b := range g.distinctBits(n, 64) {
			words[u] ^= 1 << b
		}
	}
	out := make([]byte, g.lineLen)
	linestore.UnpackLine(out, words)
	return out
}

// poissonL samples a Poisson variate by Knuth's method from the
// precomputed threshold l = exp(-mean) (means here are < 30, so the
// naive product loop is fine). l >= 1 encodes mean <= 0 and returns 0
// without touching the RNG, exactly like the un-cached version did.
func (g *Generator) poissonL(l float64) int {
	if l >= 1 {
		return 0
	}
	k := 0
	p := 1.0
	for {
		p *= g.rng.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 512 { // numerical safety net; unreachable for sane means
			return k
		}
	}
}
