package workload

import (
	"math"
	"testing"

	"tetriswrite/internal/bitutil"
	"tetriswrite/internal/linestore"
	"tetriswrite/internal/pcm"
)

func TestProfilesMatchPaperAggregates(t *testing.T) {
	profs := Profiles()
	if len(profs) != 8 {
		t.Fatalf("got %d profiles, want the paper's 8", len(profs))
	}
	seen := map[string]bool{}
	var sets, resets float64
	for _, p := range profs {
		if seen[p.Name] {
			t.Errorf("duplicate profile %s", p.Name)
		}
		seen[p.Name] = true
		if p.RPKI <= 0 || p.WPKI <= 0 {
			t.Errorf("%s: non-positive intensity", p.Name)
		}
		sets += p.MeanSets
		resets += p.MeanResets
	}
	meanSets, meanResets := sets/8, resets/8
	total := meanSets + meanResets
	// Observation 1: ~9.6 bit-writes per 64-bit unit, ~6.7 SET + ~2.9
	// RESET. Allow 15% calibration slack.
	if total < 8.2 || total > 11 {
		t.Errorf("suite mean bit-writes %.2f, want ~9.6", total)
	}
	if meanSets < 5.7 || meanSets > 7.7 {
		t.Errorf("suite mean SETs %.2f, want ~6.7", meanSets)
	}
	if meanResets < 2.4 || meanResets > 3.4 {
		t.Errorf("suite mean RESETs %.2f, want ~2.9", meanResets)
	}
	// SET-dominance with ferret fifty-fifty.
	ferret, _ := ProfileByName("ferret")
	if ferret.MeanSets != ferret.MeanResets {
		t.Errorf("ferret should be fifty-fifty, got %v/%v", ferret.MeanSets, ferret.MeanResets)
	}
	// blackscholes lightest, vips heaviest (Figure 3's extremes).
	bs, _ := ProfileByName("blackscholes")
	vips, _ := ProfileByName("vips")
	if bs.MeanSets+bs.MeanResets > 3 {
		t.Errorf("blackscholes too heavy: %v", bs.MeanSets+bs.MeanResets)
	}
	if vips.MeanSets+vips.MeanResets < 15 {
		t.Errorf("vips too light: %v", vips.MeanSets+vips.MeanResets)
	}
}

func TestProfileByNameUnknown(t *testing.T) {
	if _, err := ProfileByName("nope"); err == nil {
		t.Error("unknown profile did not error")
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	par := pcm.DefaultParams()
	prof, _ := ProfileByName("ferret")
	mk := func() []Op {
		prog := NewProgram(prof, 4, 42, par)
		g := prog.Generator(2)
		ops := make([]Op, 200)
		for i := range ops {
			ops[i] = g.Next()
		}
		return ops
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i].Think != b[i].Think || a[i].Write != b[i].Write || a[i].Addr != b[i].Addr {
			t.Fatalf("op %d differs between identical runs", i)
		}
		if a[i].Write && bitutil.HammingBytes(a[i].Data, b[i].Data) != 0 {
			t.Fatalf("op %d payload differs", i)
		}
	}
}

func TestIntensityCalibration(t *testing.T) {
	par := pcm.DefaultParams()
	for _, name := range []string{"canneal", "vips", "dedup"} {
		prof, _ := ProfileByName(name)
		prog := NewProgram(prof, 4, 7, par)
		g := prog.Generator(0)
		var instr int64
		var writes, total int
		for i := 0; i < 20000; i++ {
			op := g.Next()
			instr += op.Think
			total++
			if op.Write {
				writes++
			}
		}
		apki := float64(total) / float64(instr) * 1000
		wantAPKI := prof.RPKI + prof.WPKI
		if apki < wantAPKI*0.9 || apki > wantAPKI*1.1 {
			t.Errorf("%s: APKI %.3f, want ~%.3f", name, apki, wantAPKI)
		}
		wfrac := float64(writes) / float64(total)
		wantW := prof.WPKI / wantAPKI
		if math.Abs(wfrac-wantW) > 0.03 {
			t.Errorf("%s: write fraction %.3f, want ~%.3f", name, wfrac, wantW)
		}
	}
}

// TestBitChangeCalibration: measured SET/RESET counts per 64-bit unit of
// written lines must track the profile's Figure 3 statistics.
func TestBitChangeCalibration(t *testing.T) {
	par := pcm.DefaultParams()
	for _, name := range []string{"blackscholes", "ferret", "vips"} {
		prof, _ := ProfileByName(name)
		prog := NewProgram(prof, 1, 3, par)
		g := prog.Generator(0)
		last := map[pcm.LineAddr][]byte{}
		var sets, resets, unitsSeen float64
		for i := 0; i < 200000 && unitsSeen < 60000; i++ {
			op := g.Next()
			if !op.Write {
				continue
			}
			prev, ok := last[op.Addr]
			if !ok {
				// The device is pre-loaded with InitialContents, so the
				// first write transitions from there.
				prev = prog.InitialContents(op.Addr)
			}
			for u := 0; u < len(op.Data)/8; u++ {
				for b := 0; b < 8; b++ {
					diff := prev[u*8+b] ^ op.Data[u*8+b]
					s := diff & op.Data[u*8+b]
					r := diff & prev[u*8+b]
					sets += float64(popcntByte(s))
					resets += float64(popcntByte(r))
				}
				unitsSeen++
			}
			last[op.Addr] = op.Data
		}
		if unitsSeen < 1000 {
			t.Fatalf("%s: too few repeat-write units (%v) to calibrate", name, unitsSeen)
		}
		gotSets := sets / unitsSeen
		gotResets := resets / unitsSeen
		if gotSets < prof.MeanSets*0.75 || gotSets > prof.MeanSets*1.25 {
			t.Errorf("%s: measured %.2f SETs/unit, profile says %.2f", name, gotSets, prof.MeanSets)
		}
		if gotResets < prof.MeanResets*0.75 || gotResets > prof.MeanResets*1.25 {
			t.Errorf("%s: measured %.2f RESETs/unit, profile says %.2f", name, gotResets, prof.MeanResets)
		}
	}
}

func popcntByte(b byte) int {
	n := 0
	for ; b != 0; b &= b - 1 {
		n++
	}
	return n
}

func TestAddressRegions(t *testing.T) {
	par := pcm.DefaultParams()
	prof, _ := ProfileByName("canneal") // high sharing: 0.35
	prog := NewProgram(prof, 4, 11, par)
	g := prog.Generator(1)
	norm := prog.Profile()
	privLo := pcm.LineAddr(int64(1) * int64(norm.PrivateLines))
	privHi := privLo + pcm.LineAddr(norm.PrivateLines)
	shrdLo := pcm.LineAddr(int64(4) * int64(norm.PrivateLines))
	shrdHi := shrdLo + pcm.LineAddr(norm.SharedLines)
	shared, private, fresh := 0, 0, 0
	for i := 0; i < 20000; i++ {
		op := g.Next()
		switch {
		case op.Addr >= privLo && op.Addr < privHi:
			private++
		case op.Addr >= shrdLo && op.Addr < shrdHi:
			shared++
		case op.Write && op.Addr >= shrdHi:
			fresh++ // frontier allocation
		default:
			t.Fatalf("address %d outside all regions (write=%v)", op.Addr, op.Write)
		}
	}
	frac := float64(shared) / float64(shared+private)
	if math.Abs(frac-norm.Sharing) > 0.03 {
		t.Errorf("shared fraction %.3f, want ~%.2f", frac, norm.Sharing)
	}
}

func TestZipfSkew(t *testing.T) {
	par := pcm.DefaultParams()
	prof, _ := ProfileByName("vips")
	prog := NewProgram(prof, 1, 5, par)
	g := prog.Generator(0)
	counts := map[pcm.LineAddr]int{}
	for i := 0; i < 20000; i++ {
		counts[g.Next().Addr]++
	}
	// Zipf: the hottest line should take a large share of accesses.
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if float64(max)/20000 < 0.10 {
		t.Errorf("hottest line only %.1f%% of accesses; Zipf skew not in effect", float64(max)/200)
	}
	if len(counts) < 100 {
		t.Errorf("only %d distinct lines touched; tail missing", len(counts))
	}
}

func TestSharedShadowVisibleAcrossCores(t *testing.T) {
	par := pcm.DefaultParams()
	prof, _ := ProfileByName("ferret")
	prog := NewProgram(prof, 2, 9, par)
	g0 := prog.Generator(0)
	// Make core 0 write some shared lines, then check InitialContents
	// reflects them.
	var sharedAddr pcm.LineAddr = -1
	for i := 0; i < 5000 && sharedAddr < 0; i++ {
		op := g0.Next()
		if op.Write && op.Addr >= prog.shrdBase && op.Addr < prog.frontBase {
			sharedAddr = op.Addr
		}
	}
	if sharedAddr < 0 {
		t.Skip("no shared write sampled")
	}
	// Resident lines have a deterministic nonzero initial mix; frontier
	// lines start zeroed like untouched PCM.
	init := prog.InitialContents(sharedAddr)
	nonzero := false
	for _, b := range init {
		if b != 0 {
			nonzero = true
		}
	}
	if !nonzero {
		t.Error("resident line initial contents all zero; want 50/50 mix")
	}
	frontierInit := prog.InitialContents(prog.frontBase + 5)
	for _, b := range frontierInit {
		if b != 0 {
			t.Fatal("frontier line initial contents not zero")
		}
	}
}

func TestGeneratorPanicsOnBadCore(t *testing.T) {
	par := pcm.DefaultParams()
	prof, _ := ProfileByName("vips")
	prog := NewProgram(prof, 2, 1, par)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range core did not panic")
		}
	}()
	prog.Generator(2)
}

func BenchmarkGeneratorNext(b *testing.B) {
	par := pcm.DefaultParams()
	prof, _ := ProfileByName("vips")
	prog := NewProgram(prof, 4, 1, par)
	g := prog.Generator(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = g.Next()
	}
}

// TestBurstiness: the two-phase modulation must preserve the mean access
// rate while inflating gap variance.
func TestBurstiness(t *testing.T) {
	par := pcm.DefaultParams()
	measure := func(b float64) (apki, variance float64) {
		prof, _ := ProfileByName("vips")
		prof.Burstiness = b
		prog := NewProgram(prof, 1, 11, par)
		g := prog.Generator(0)
		var gaps []float64
		var instr int64
		const n = 30000
		for i := 0; i < n; i++ {
			op := g.Next()
			instr += op.Think
			gaps = append(gaps, float64(op.Think))
		}
		mean := float64(instr) / float64(n)
		for _, x := range gaps {
			variance += (x - mean) * (x - mean)
		}
		variance /= float64(n)
		return float64(n) / float64(instr) * 1000, variance
	}
	apki0, var0 := measure(0)
	apkiB, varB := measure(0.8)
	prof, _ := ProfileByName("vips")
	want := prof.RPKI + prof.WPKI
	for _, got := range []float64{apki0, apkiB} {
		if got < want*0.9 || got > want*1.1 {
			t.Errorf("APKI %.3f drifted from %.3f", got, want)
		}
	}
	if varB < 1.3*var0 {
		t.Errorf("burstiness did not inflate variance: %.1f vs %.1f", varB, var0)
	}
}

// TestPayloadIsACopy: mutating a returned write payload must not corrupt
// the generator's shadow (i.e. future payloads).
func TestPayloadIsACopy(t *testing.T) {
	par := pcm.DefaultParams()
	prof, _ := ProfileByName("vips")
	prog := NewProgram(prof, 1, 2, par)
	g := prog.Generator(0)
	var first []byte
	var addr pcm.LineAddr
	for first == nil {
		op := g.Next()
		if op.Write {
			first, addr = op.Data, op.Addr
		}
	}
	for i := range first {
		first[i] = 0xFF // vandalize the returned slice
	}
	// The shadow must be unaffected: its current contents are whatever
	// the generator last wrote, not all-ones.
	shadow := prog.InitialContents(addr)
	if w := prog.shadow.Get(int64(addr)); w != nil {
		linestore.UnpackLine(shadow, w)
	}
	allOnes := true
	for _, b := range shadow {
		if b != 0xFF {
			allOnes = false
		}
	}
	if allOnes {
		t.Error("mutating a returned payload corrupted the shadow")
	}
}
