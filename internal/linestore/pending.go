package linestore

// Pending is a small insertion-ordered association from line address to
// a caller-owned byte buffer, for components that track a handful of
// in-flight lines (wear-leveling gap moves, spare-remap staging). It
// replaces map[pcm.LineAddr][]byte there for one reason: iteration
// order. Draining a Go map ranges in randomized order, which silently
// broke replay determinism whenever two pending lines interacted;
// Pending always drains in first-insertion order.
//
// Values are stored by reference — the caller keeps ownership of the
// buffer, exactly like storing a slice in a map.
//
// Concurrency: Pending is deliberately not goroutine-safe — it is a
// single-writer structure owned by the simulation engine's goroutine.
// The parallel engine mode preserves that contract: bank workers only
// compute write plans from issue-time snapshots and never touch
// controller-side associations, so every Put/Delete/Range still happens
// on the coordinator (the engine-mode cross-check sweep runs under the
// race detector in CI to keep it that way).
type Pending struct {
	idx  map[Addr]int
	keys []Addr
	vals [][]byte
	dead int // tombstoned entries in keys/vals
	iter int // active Range depth; defers compaction
}

// NewPending creates an empty association.
func NewPending() *Pending {
	return &Pending{idx: make(map[Addr]int)}
}

// Len returns the number of live entries.
func (p *Pending) Len() int { return len(p.idx) }

// Get returns the buffer stored for addr.
func (p *Pending) Get(addr Addr) ([]byte, bool) {
	i, ok := p.idx[addr]
	if !ok {
		return nil, false
	}
	return p.vals[i], true
}

// Put stores buf for addr. Re-putting an existing address replaces the
// buffer in place, keeping its original drain position.
func (p *Pending) Put(addr Addr, buf []byte) {
	if i, ok := p.idx[addr]; ok {
		p.vals[i] = buf
		return
	}
	p.idx[addr] = len(p.keys)
	p.keys = append(p.keys, addr)
	p.vals = append(p.vals, buf)
}

// Delete removes addr, reporting whether it was present.
func (p *Pending) Delete(addr Addr) bool {
	i, ok := p.idx[addr]
	if !ok {
		return false
	}
	delete(p.idx, addr)
	p.vals[i] = nil // tombstone; compacted when they dominate
	p.dead++
	if p.iter == 0 && p.dead > len(p.keys)/2 && p.dead > 16 {
		p.compact()
	}
	return true
}

func (p *Pending) compact() {
	w := 0
	for r, k := range p.keys {
		i, ok := p.idx[k]
		if !ok || i != r {
			continue // deleted, or superseded by a later re-insert
		}
		p.keys[w] = k
		p.vals[w] = p.vals[r]
		p.idx[k] = w
		w++
	}
	for i := w; i < len(p.vals); i++ {
		p.vals[i] = nil
	}
	p.keys = p.keys[:w]
	p.vals = p.vals[:w]
	p.dead = 0
}

// Range calls fn for every live entry in insertion order until fn
// returns false. fn may Delete the current entry; inserting during
// iteration is not supported.
func (p *Pending) Range(fn func(addr Addr, buf []byte) bool) {
	p.iter++
	defer func() {
		p.iter--
		if p.iter == 0 && p.dead > len(p.keys)/2 && p.dead > 16 {
			p.compact()
		}
	}()
	for r := 0; r < len(p.keys); r++ {
		k := p.keys[r]
		i, ok := p.idx[k]
		if !ok || i != r {
			continue
		}
		if !fn(k, p.vals[r]) {
			return
		}
	}
}

// Clear removes all entries.
func (p *Pending) Clear() {
	for k := range p.idx {
		delete(p.idx, k)
	}
	p.keys = p.keys[:0]
	for i := range p.vals {
		p.vals[i] = nil
	}
	p.vals = p.vals[:0]
	p.dead = 0
}
