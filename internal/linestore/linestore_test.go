package linestore

import (
	"math/rand"
	"sort"
	"testing"
)

// TestStoreOracle round-trips a random operation sequence against a
// map[Addr][]byte oracle: every Get/Ensure/Len observation must match
// what the plain map would report.
func TestStoreOracle(t *testing.T) {
	const (
		wpl   = 8
		ops   = 200_000
		space = 1 << 14 // addresses collide often enough to hit every probe path
	)
	rng := rand.New(rand.NewSource(42))
	s := NewStore(wpl)
	oracle := make(map[Addr][]uint64)
	for op := 0; op < ops; op++ {
		addr := Addr(rng.Int63n(space))
		switch rng.Intn(4) {
		case 0: // read
			got := s.Get(addr)
			want := oracle[addr]
			if (got == nil) != (want == nil) {
				t.Fatalf("op %d: Get(%d) presence mismatch: store %v, oracle %v", op, addr, got != nil, want != nil)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("op %d: Get(%d) word %d: store %#x, oracle %#x", op, addr, i, got[i], want[i])
				}
			}
		case 1: // ensure + verify zero-fill or existing contents
			got := s.Ensure(addr)
			if want, ok := oracle[addr]; ok {
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("op %d: Ensure(%d) word %d: store %#x, oracle %#x", op, addr, i, got[i], want[i])
					}
				}
			} else {
				for i, w := range got {
					if w != 0 {
						t.Fatalf("op %d: Ensure(%d) new line word %d not zero: %#x", op, addr, i, w)
					}
				}
				oracle[addr] = make([]uint64, wpl)
			}
		default: // write through Ensure
			words := s.Ensure(addr)
			if _, ok := oracle[addr]; !ok {
				oracle[addr] = make([]uint64, wpl)
			}
			w := oracle[addr]
			i := rng.Intn(wpl)
			v := rng.Uint64()
			words[i] = v
			w[i] = v
		}
	}
	if s.Len() != len(oracle) {
		t.Fatalf("Len: store %d, oracle %d", s.Len(), len(oracle))
	}
	// Full sweep: every oracle line present with identical contents, and
	// Range visits each stored line exactly once.
	seen := make(map[Addr]int)
	s.Range(func(addr Addr, words []uint64) bool {
		seen[addr]++
		want, ok := oracle[addr]
		if !ok {
			t.Fatalf("Range visited %d which oracle lacks", addr)
		}
		for i := range want {
			if words[i] != want[i] {
				t.Fatalf("Range(%d) word %d: store %#x, oracle %#x", addr, i, words[i], want[i])
			}
		}
		return true
	})
	for addr, n := range seen {
		if n != 1 {
			t.Fatalf("Range visited %d %d times", addr, n)
		}
	}
	if len(seen) != len(oracle) {
		t.Fatalf("Range visited %d lines, oracle has %d", len(seen), len(oracle))
	}
}

// TestStoreByteOracle drives the store through the byte-level pack and
// unpack helpers against a map[Addr][]byte oracle — the exact usage
// pattern of pcm.Device and the workload shadow.
func TestStoreByteOracle(t *testing.T) {
	for _, lineBytes := range []int{64, 32, 13} { // incl. a non-multiple-of-8 tail
		wpl := Words(lineBytes)
		s := NewStore(wpl)
		oracle := make(map[Addr][]byte)
		rng := rand.New(rand.NewSource(7))
		buf := make([]byte, lineBytes)
		for op := 0; op < 50_000; op++ {
			addr := Addr(rng.Int63n(1 << 12))
			if rng.Intn(2) == 0 { // write a random image
				for i := range buf {
					buf[i] = byte(rng.Intn(256))
				}
				PackLine(s.Ensure(addr), buf)
				oracle[addr] = append([]byte(nil), buf...)
			} else { // read back
				words := s.Get(addr)
				want, ok := oracle[addr]
				if (words == nil) != !ok {
					t.Fatalf("lineBytes %d op %d: presence mismatch at %d", lineBytes, op, addr)
				}
				if words == nil {
					continue
				}
				UnpackLine(buf, words)
				for i := range want {
					if buf[i] != want[i] {
						t.Fatalf("lineBytes %d op %d: addr %d byte %d: store %#x, oracle %#x",
							lineBytes, op, addr, i, buf[i], want[i])
					}
				}
			}
		}
	}
}

// TestSetOracle exercises Add/Has/Delete (with its backward-shift
// compaction) against a map oracle under heavy churn.
func TestSetOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	s := NewSet()
	oracle := make(map[Addr]bool)
	for op := 0; op < 300_000; op++ {
		addr := Addr(rng.Int63n(1 << 12))
		switch rng.Intn(3) {
		case 0:
			added := s.Add(addr)
			if added == oracle[addr] {
				t.Fatalf("op %d: Add(%d) returned %v with oracle %v", op, addr, added, oracle[addr])
			}
			oracle[addr] = true
		case 1:
			if got := s.Has(addr); got != oracle[addr] {
				t.Fatalf("op %d: Has(%d) = %v, oracle %v", op, addr, got, oracle[addr])
			}
		default:
			removed := s.Delete(addr)
			if removed != oracle[addr] {
				t.Fatalf("op %d: Delete(%d) = %v, oracle %v", op, addr, removed, oracle[addr])
			}
			delete(oracle, addr)
		}
	}
	if s.Len() != len(oracle) {
		t.Fatalf("Len: set %d, oracle %d", s.Len(), len(oracle))
	}
	for addr := range oracle {
		if !s.Has(addr) {
			t.Fatalf("final sweep: %d missing from set", addr)
		}
	}
}

// TestPendingOrder pins the contract that justifies Pending's existence:
// drain order is insertion order, stable across deletes, re-inserts and
// compaction.
func TestPendingOrder(t *testing.T) {
	p := NewPending()
	rng := rand.New(rand.NewSource(5))
	var insertOrder []Addr
	live := make(map[Addr][]byte)
	pos := make(map[Addr]int) // first-live-insertion sequence
	seq := 0
	for op := 0; op < 100_000; op++ {
		addr := Addr(rng.Int63n(256))
		switch rng.Intn(4) {
		case 0, 1:
			buf := []byte{byte(op), byte(op >> 8)}
			if _, ok := live[addr]; !ok {
				insertOrder = append(insertOrder, addr)
				pos[addr] = seq
				seq++
			}
			live[addr] = buf
			p.Put(addr, buf)
		case 2:
			want := false
			if _, ok := live[addr]; ok {
				want = true
			}
			if got := p.Delete(addr); got != want {
				t.Fatalf("op %d: Delete(%d) = %v, want %v", op, addr, got, want)
			}
			if want {
				delete(live, addr)
				delete(pos, addr)
			}
		default:
			buf, ok := p.Get(addr)
			wantBuf, wantOk := live[addr]
			if ok != wantOk {
				t.Fatalf("op %d: Get(%d) presence %v, want %v", op, addr, ok, wantOk)
			}
			if ok && &buf[0] != &wantBuf[0] {
				t.Fatalf("op %d: Get(%d) did not return the stored buffer by reference", op, addr)
			}
		}
	}
	if p.Len() != len(live) {
		t.Fatalf("Len: pending %d, oracle %d", p.Len(), len(live))
	}
	// Drain order must be ascending first-insertion sequence.
	var drained []Addr
	p.Range(func(addr Addr, buf []byte) bool {
		drained = append(drained, addr)
		if want := live[addr]; &buf[0] != &want[0] {
			t.Fatalf("Range(%d) returned a copy, not the stored reference", addr)
		}
		return true
	})
	if len(drained) != len(live) {
		t.Fatalf("Range visited %d entries, want %d", len(drained), len(live))
	}
	if !sort.SliceIsSorted(drained, func(i, j int) bool { return pos[drained[i]] < pos[drained[j]] }) {
		t.Fatalf("Range order is not insertion order: %v", drained)
	}
	// Delete-during-Range: drain everything.
	p.Range(func(addr Addr, buf []byte) bool {
		p.Delete(addr)
		return true
	})
	if p.Len() != 0 {
		t.Fatalf("drain left %d entries", p.Len())
	}
}
