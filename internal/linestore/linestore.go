// Package linestore provides the simulator's sparse line-state
// containers: a sharded open-addressing hash table that stores each
// memory line inline as a fixed run of uint64 words (Store), an address
// set with the same layout (Set), and a small insertion-ordered
// association for in-flight line buffers (Pending).
//
// The Store replaces the map[pcm.LineAddr][]byte pattern that scattered
// every 64-byte line behind its own slice header: lines live
// back-to-back in one flat arena per shard, so the bit-diff/popcount
// write path works on word-aligned memory with no pointer chase and the
// garbage collector sees a handful of large slices instead of millions
// of tiny ones. All iteration orders are deterministic functions of the
// insertion sequence — never of Go map randomization — which the
// simulator's replay-identical contract depends on.
package linestore

import "encoding/binary"

// Addr is a line address. It mirrors pcm.LineAddr (an int64 line index);
// the package takes the raw integer to stay import-cycle-free below the
// pcm layer. Addresses must be non-negative: the table uses -1 as its
// empty-slot sentinel.
type Addr = int64

const (
	numShards  = 16
	shardShift = 48 // shard = bits 48..51 of the hash; slot = low bits
	emptyKey   = Addr(-1)

	// minSlots is the initial per-shard capacity on first insert. Power
	// of two, like every later capacity.
	minSlots = 64

	// maxLoadNum/maxLoadDen is the grow threshold (3/4). Linear probing
	// degrades sharply past this point.
	maxLoadNum = 3
	maxLoadDen = 4
)

// hashAddr is splitmix64's finalizer: cheap, and strong enough that
// sequential line addresses spread across shards and slots.
func hashAddr(a Addr) uint64 {
	z := uint64(a) + 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// shard is one open-addressing region: keys[i] owns
// words[i*wpl : (i+1)*wpl] in the flat arena.
type shard struct {
	keys  []Addr
	words []uint64
	n     int
}

// Store maps line addresses to fixed-width lines of inline uint64 words.
// The zero value is unusable; construct with NewStore. Store is not
// safe for concurrent use — callers that share one (pcm.Device) hold
// their own lock, matching the map it replaces.
type Store struct {
	wpl    int // words per line
	shards [numShards]shard
}

// Words returns the number of uint64 words needed to hold lineBytes
// bytes (the tail word is zero-padded when lineBytes is not a multiple
// of 8).
func Words(lineBytes int) int { return (lineBytes + 7) / 8 }

// NewStore creates an empty store holding wordsPerLine words per line.
func NewStore(wordsPerLine int) *Store {
	if wordsPerLine <= 0 {
		panic("linestore: words per line must be positive")
	}
	return &Store{wpl: wordsPerLine}
}

// WordsPerLine returns the fixed line width in words.
func (s *Store) WordsPerLine() int { return s.wpl }

// Len returns the number of stored lines.
func (s *Store) Len() int {
	n := 0
	for i := range s.shards {
		n += s.shards[i].n
	}
	return n
}

// Capacity returns the total slot capacity across shards (for load
// telemetry; zero before the first insert).
func (s *Store) Capacity() int {
	c := 0
	for i := range s.shards {
		c += len(s.shards[i].keys)
	}
	return c
}

// LoadFactor returns stored lines over slot capacity, 0 when empty.
func (s *Store) LoadFactor() float64 {
	c := s.Capacity()
	if c == 0 {
		return 0
	}
	return float64(s.Len()) / float64(c)
}

func (sh *shard) find(key Addr, h uint64) int {
	mask := uint64(len(sh.keys) - 1)
	for i := h & mask; ; i = (i + 1) & mask {
		k := sh.keys[i]
		if k == key {
			return int(i)
		}
		if k == emptyKey {
			return -1
		}
	}
}

// Reserve pre-sizes every shard for about `lines` total inserts, so a
// store whose final footprint is known up front (a device sized to its
// workload's address span) skips the doubling-and-rehash ladder that
// otherwise dominates cold-start insertion. Shards that already hold
// data or have enough capacity are left alone; lookups and contents are
// unaffected — only the slot layout (and capacity telemetry) differ
// from a grown store.
func (s *Store) Reserve(lines int) {
	if lines <= 0 {
		return
	}
	perShard := (lines + numShards - 1) / numShards
	// Capacity such that the grow threshold (3/4 load) is not reached
	// while inserting perShard keys.
	want := minSlots
	for maxLoadDen*(perShard+1) > maxLoadNum*want {
		want *= 2
	}
	for si := range s.shards {
		sh := &s.shards[si]
		if sh.n > 0 || len(sh.keys) >= want {
			continue
		}
		sh.keys = make([]Addr, want)
		for i := range sh.keys {
			sh.keys[i] = emptyKey
		}
		sh.words = make([]uint64, want*s.wpl)
	}
}

func (sh *shard) grow(wpl int) {
	newCap := minSlots
	if len(sh.keys) > 0 {
		newCap = len(sh.keys) * 2
	}
	oldKeys, oldWords := sh.keys, sh.words
	sh.keys = make([]Addr, newCap)
	for i := range sh.keys {
		sh.keys[i] = emptyKey
	}
	sh.words = make([]uint64, newCap*wpl)
	mask := uint64(newCap - 1)
	for i, k := range oldKeys {
		if k == emptyKey {
			continue
		}
		j := hashAddr(k) & mask
		for sh.keys[j] != emptyKey {
			j = (j + 1) & mask
		}
		sh.keys[j] = k
		copy(sh.words[int(j)*wpl:(int(j)+1)*wpl], oldWords[i*wpl:(i+1)*wpl])
	}
}

// Get returns the line's words, or nil when the line was never stored.
// The returned slice aliases the store; it stays valid until the next
// Ensure on the same store (which may rehash).
func (s *Store) Get(addr Addr) []uint64 {
	h := hashAddr(addr)
	sh := &s.shards[(h>>shardShift)&(numShards-1)]
	if sh.n == 0 {
		return nil
	}
	i := sh.find(addr, h)
	if i < 0 {
		return nil
	}
	return sh.words[i*s.wpl : (i+1)*s.wpl : (i+1)*s.wpl]
}

// Ensure returns the line's words, inserting an all-zero line first if
// absent. The returned slice aliases the store and is invalidated by
// the next Ensure.
func (s *Store) Ensure(addr Addr) []uint64 {
	if addr < 0 {
		panic("linestore: negative line address")
	}
	h := hashAddr(addr)
	sh := &s.shards[(h>>shardShift)&(numShards-1)]
	if maxLoadDen*(sh.n+1) > maxLoadNum*len(sh.keys) {
		sh.grow(s.wpl)
	}
	mask := uint64(len(sh.keys) - 1)
	i := h & mask
	for {
		k := sh.keys[i]
		if k == addr {
			break
		}
		if k == emptyKey {
			sh.keys[i] = addr
			sh.n++
			break
		}
		i = (i + 1) & mask
	}
	return sh.words[int(i)*s.wpl : (int(i)+1)*s.wpl : (int(i)+1)*s.wpl]
}

// Range calls fn for every stored line until fn returns false. The
// order is a deterministic function of the insertion sequence (shard by
// shard, slot by slot), not sorted; callers needing sorted output
// collect and sort the addresses.
func (s *Store) Range(fn func(addr Addr, words []uint64) bool) {
	for si := range s.shards {
		sh := &s.shards[si]
		for i, k := range sh.keys {
			if k == emptyKey {
				continue
			}
			if !fn(k, sh.words[i*s.wpl:(i+1)*s.wpl:(i+1)*s.wpl]) {
				return
			}
		}
	}
}

// PackLine copies src bytes into dst words little-endian, zero-padding
// the tail word. len(dst) must be Words(len(src)).
func PackLine(dst []uint64, src []byte) {
	n := len(src) / 8
	for i := 0; i < n; i++ {
		dst[i] = binary.LittleEndian.Uint64(src[i*8:])
	}
	if tail := len(src) & 7; tail != 0 {
		var w uint64
		for i, b := range src[n*8:] {
			w |= uint64(b) << (8 * i)
		}
		dst[n] = w
	}
}

// UnpackLine copies src words into dst bytes little-endian.
// len(src) must be Words(len(dst)).
func UnpackLine(dst []byte, src []uint64) {
	n := len(dst) / 8
	for i := 0; i < n; i++ {
		binary.LittleEndian.PutUint64(dst[i*8:], src[i])
	}
	if tail := len(dst) & 7; tail != 0 {
		w := src[n]
		for i := range dst[n*8:] {
			dst[n*8+i] = byte(w >> (8 * i))
		}
	}
}
