package linestore

// Set is an open-addressing address set with the Store's sharding and
// hash, replacing map[pcm.LineAddr]struct{} / map[pcm.LineAddr]bool in
// the hot paths that only track membership. Deletion uses backward-shift
// compaction (no tombstones), so long-lived churn — the memory
// controller's preset hints come and go millions of times — never
// degrades probe lengths.
type Set struct {
	shards [numShards]setShard
}

type setShard struct {
	keys []Addr
	n    int
}

// NewSet creates an empty set.
func NewSet() *Set { return &Set{} }

// Len returns the number of addresses in the set.
func (s *Set) Len() int {
	n := 0
	for i := range s.shards {
		n += s.shards[i].n
	}
	return n
}

func (sh *setShard) grow() {
	newCap := minSlots
	if len(sh.keys) > 0 {
		newCap = len(sh.keys) * 2
	}
	old := sh.keys
	sh.keys = make([]Addr, newCap)
	for i := range sh.keys {
		sh.keys[i] = emptyKey
	}
	mask := uint64(newCap - 1)
	for _, k := range old {
		if k == emptyKey {
			continue
		}
		j := hashAddr(k) & mask
		for sh.keys[j] != emptyKey {
			j = (j + 1) & mask
		}
		sh.keys[j] = k
	}
}

// Add inserts addr, reporting whether it was newly added.
func (s *Set) Add(addr Addr) bool {
	if addr < 0 {
		panic("linestore: negative line address")
	}
	h := hashAddr(addr)
	sh := &s.shards[(h>>shardShift)&(numShards-1)]
	if maxLoadDen*(sh.n+1) > maxLoadNum*len(sh.keys) {
		sh.grow()
	}
	mask := uint64(len(sh.keys) - 1)
	for i := h & mask; ; i = (i + 1) & mask {
		switch sh.keys[i] {
		case addr:
			return false
		case emptyKey:
			sh.keys[i] = addr
			sh.n++
			return true
		}
	}
}

// Has reports membership.
func (s *Set) Has(addr Addr) bool {
	h := hashAddr(addr)
	sh := &s.shards[(h>>shardShift)&(numShards-1)]
	if sh.n == 0 {
		return false
	}
	mask := uint64(len(sh.keys) - 1)
	for i := h & mask; ; i = (i + 1) & mask {
		switch sh.keys[i] {
		case addr:
			return true
		case emptyKey:
			return false
		}
	}
}

// Delete removes addr, reporting whether it was present. The vacated
// slot is refilled by shifting the following probe-chain entries back,
// preserving lookup invariants without tombstones.
func (s *Set) Delete(addr Addr) bool {
	h := hashAddr(addr)
	sh := &s.shards[(h>>shardShift)&(numShards-1)]
	if sh.n == 0 {
		return false
	}
	mask := uint64(len(sh.keys) - 1)
	i := h & mask
	for {
		switch sh.keys[i] {
		case addr:
			goto found
		case emptyKey:
			return false
		}
		i = (i + 1) & mask
	}
found:
	// Backward-shift: walk the chain after i; any entry whose home slot
	// is outside the (hole, entry] circular interval can fill the hole.
	j := i
	for {
		j = (j + 1) & mask
		k := sh.keys[j]
		if k == emptyKey {
			break
		}
		home := hashAddr(k) & mask
		// Move k back when the hole does not sit circularly between its
		// home and its current slot.
		if (j-home)&mask >= (j-i)&mask {
			sh.keys[i] = k
			i = j
		}
	}
	sh.keys[i] = emptyKey
	sh.n--
	return true
}
