// Package mlc models 2-bit multi-level-cell (MLC) PCM programming, the
// substrate behind two statements in the paper: its background section
// ("a PCM cell can store one or more than one bit... In this study, we
// focus on SLC PCM for its better write performance") and its adoption of
// the Global Charge Pump from FPB (Jiang et al., MICRO'12), an MLC
// power-budgeting design.
//
// MLC cells store one of four resistance levels. The extreme levels
// program like SLC (one full RESET or SET pulse); the two intermediate
// levels need iterative program-and-verify (P&V): partial SET pulses
// with a verify read after each, repeated until the resistance lands in
// the target band. The iteration count varies per cell (process
// variation), modelled here as a deterministic hash of the cell address
// and target level so simulations replay identically.
//
// The package quantifies the SLC-vs-MLC write-time gap (the
// `tetrisbench -mlc` table): storing the same data in half the cells
// costs several times the latency and energy, which is why the paper's
// scheduling problem is posed for SLC.
package mlc

import (
	"fmt"

	"tetriswrite/internal/pcm"
	"tetriswrite/internal/units"
)

// Level is one of the four resistance levels of a 2-bit cell: 0 is fully
// amorphous (RESET, stores 00), 3 fully crystalline (SET, stores 11), 1
// and 2 are the partial levels requiring program-and-verify.
type Level uint8

// Params configures the MLC programming model.
type Params struct {
	// TReset and TSet are the full-swing pulse times (SLC values).
	TReset units.Duration
	TSet   units.Duration
	// TPartial is the length of one partial SET pulse in a P&V
	// staircase; TVerify the read between pulses.
	TPartial units.Duration
	TVerify  units.Duration
	// MinIter and MaxIter bound the per-cell P&V iteration count for the
	// intermediate levels.
	MinIter, MaxIter int
	// Seed perturbs the per-cell variation hash.
	Seed uint64
}

// DefaultParams follows the usual MLC PCM literature: partial pulses a
// quarter of a full SET, a read-time verify, and 4-8 P&V iterations for
// intermediate levels.
func DefaultParams() Params {
	base := pcm.DefaultParams()
	return Params{
		TReset:   base.TReset,
		TSet:     base.TSet,
		TPartial: base.TSet / 4,
		TVerify:  base.TRead,
		MinIter:  4,
		MaxIter:  8,
		Seed:     1,
	}
}

// Validate checks the configuration.
func (p Params) Validate() error {
	switch {
	case p.TReset <= 0 || p.TSet <= 0 || p.TPartial <= 0 || p.TVerify <= 0:
		return fmt.Errorf("mlc: non-positive timing")
	case p.MinIter < 1 || p.MaxIter < p.MinIter:
		return fmt.Errorf("mlc: bad iteration bounds [%d, %d]", p.MinIter, p.MaxIter)
	}
	return nil
}

// Array is a set of 2-bit MLC cells.
type Array struct {
	par   Params
	cells []Level
	stats Stats
}

// Stats counts programming activity.
type Stats struct {
	CellWrites    int64
	FullPulses    int64 // full RESET/SET pulses
	PartialPulses int64
	Verifies      int64
	Time          units.Duration // cumulative programming time (serialized)
}

// NewArray creates an array of n cells, all at level 0.
func NewArray(par Params, n int) (*Array, error) {
	if err := par.Validate(); err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, fmt.Errorf("mlc: array of %d cells", n)
	}
	return &Array{par: par, cells: make([]Level, n)}, nil
}

// Read returns a cell's level.
func (a *Array) Read(i int) Level { return a.cells[i] }

// Stats returns the counters.
func (a *Array) Stats() Stats { return a.stats }

// Iterations returns the deterministic P&V iteration count for driving
// cell i to an intermediate level: a hash of the cell address, target
// level and seed standing in for process variation, so simulations
// replay identically.
func (p Params) Iterations(i int64, target Level) int {
	h := uint64(i)*0x9E3779B97F4A7C15 ^ uint64(target)*0xBF58476D1CE4E5B9 ^ p.Seed
	h ^= h >> 31
	h *= 0x94D049BB133111EB
	h ^= h >> 29
	span := uint64(p.MaxIter - p.MinIter + 1)
	return p.MinIter + int(h%span)
}

// iterations is the Array-internal view of Iterations.
func (a *Array) iterations(i int, target Level) int {
	return a.par.Iterations(int64(i), target)
}

// Write programs cell i to the target level and returns the time the
// operation took. Levels 0 and 3 take one full pulse; levels 1 and 2
// take a RESET to a known state followed by a P&V staircase of partial
// SET pulses with verify reads.
func (a *Array) Write(i int, target Level) (units.Duration, error) {
	if target > 3 {
		return 0, fmt.Errorf("mlc: level %d out of range", target)
	}
	if i < 0 || i >= len(a.cells) {
		return 0, fmt.Errorf("mlc: cell %d out of range", i)
	}
	a.stats.CellWrites++
	var t units.Duration
	switch target {
	case 0:
		t = a.par.TReset
		a.stats.FullPulses++
	case 3:
		t = a.par.TSet
		a.stats.FullPulses++
	default:
		// RESET to the amorphous anchor, then staircase upward.
		t = a.par.TReset
		a.stats.FullPulses++
		n := a.iterations(i, target)
		for j := 0; j < n; j++ {
			t += a.par.TPartial + a.par.TVerify
			a.stats.PartialPulses++
			a.stats.Verifies++
		}
	}
	a.cells[i] = target
	a.stats.Time += t
	return t, nil
}

// WritePair stores two logical bits (00..11) in one cell.
func (a *Array) WritePair(i int, hi, lo bool) (units.Duration, error) {
	var lvl Level
	if hi {
		lvl |= 2
	}
	if lo {
		lvl |= 1
	}
	return a.Write(i, lvl)
}

// Comparison is the outcome of an SLC-vs-MLC storage experiment.
type Comparison struct {
	Bits        int
	SLCTime     units.Duration // worst-case serialized SLC cell writes
	MLCTime     units.Duration
	SLCCells    int
	MLCCells    int
	MLCPartial  int64
	MLCVerifies int64
}

// CompareSLC writes the given bit pattern once as SLC (one bit per cell,
// each cell one full pulse, serialized) and once as MLC (two bits per
// cell with P&V), returning the serialized programming times. It is the
// quantitative form of the paper's "SLC for its better write
// performance".
func CompareSLC(par Params, bits []bool) (Comparison, error) {
	cmp := Comparison{Bits: len(bits), SLCCells: len(bits), MLCCells: (len(bits) + 1) / 2}
	// SLC: one full pulse per cell, RESET for 0, SET for 1.
	for _, b := range bits {
		if b {
			cmp.SLCTime += par.TSet
		} else {
			cmp.SLCTime += par.TReset
		}
	}
	arr, err := NewArray(par, cmp.MLCCells)
	if err != nil {
		return Comparison{}, err
	}
	for i := 0; i < len(bits); i += 2 {
		hi := bits[i]
		lo := i+1 < len(bits) && bits[i+1]
		t, err := arr.WritePair(i/2, hi, lo)
		if err != nil {
			return Comparison{}, err
		}
		cmp.MLCTime += t
	}
	st := arr.Stats()
	cmp.MLCPartial = st.PartialPulses
	cmp.MLCVerifies = st.Verifies
	return cmp, nil
}
