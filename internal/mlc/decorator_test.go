package mlc_test

import (
	"bytes"
	"testing"

	"tetriswrite/internal/mlc"
	"tetriswrite/internal/pcm"
	"tetriswrite/internal/schemes"
)

// TestCellModeRoundTrip checks the decorator's central promise: the
// pulse train — and therefore the stored image — is exactly the inner
// scheme's, while the write phase stretches by the slowest cell's P&V
// staircase. Decode is verified against the encoded-cell oracle on
// every write.
func TestCellModeRoundTrip(t *testing.T) {
	dev := pcm.DefaultParams()
	inner := schemes.NewDCW(dev)
	plain := schemes.NewDCW(dev) // reference instance, identical state
	s, err := mlc.NewCellMode(inner, dev, mlc.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "dcw+mlc" {
		t.Errorf("Name() = %q", s.Name())
	}
	arr := schemes.NewArray(dev)
	logical := make([][]byte, 8)
	for i := range logical {
		logical[i] = make([]byte, dev.LineBytes)
	}
	for i := 0; i < 200; i++ {
		li := i % 8
		addr := pcm.LineAddr(li)
		old := logical[li]
		next := make([]byte, dev.LineBytes)
		copy(next, old)
		next[(i*7)%dev.LineBytes] ^= byte(1 + i%255)
		p := s.PlanWrite(addr, old, next)
		ref := plain.PlanWrite(addr, old, next)
		if len(p.Pulses) != len(ref.Pulses) {
			t.Fatalf("write %d: decorated plan has %d pulses, inner %d",
				i, len(p.Pulses), len(ref.Pulses))
		}
		if p.Write < ref.Write {
			t.Fatalf("write %d: decorated write phase %v shorter than inner %v",
				i, p.Write, ref.Write)
		}
		hasSet := false
		for _, pl := range p.Pulses {
			if pl.Kind == schemes.Set {
				hasSet = true
			}
		}
		if hasSet && p.Write == ref.Write {
			t.Fatalf("write %d: SET pulses present but no P&V extension billed", i)
		}
		if err := arr.CheckWrite(addr, p, next); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		logical[li] = next
	}
}

// TestCellModeDeterministic: two instances over the same write stream
// must bill identical staircases (the per-cell variation is a hash, not
// randomness), or fleet shards would diverge from local runs.
func TestCellModeDeterministic(t *testing.T) {
	dev := pcm.DefaultParams()
	build := func() schemes.Scheme {
		s, err := mlc.NewCellMode(schemes.NewDCW(dev), dev, mlc.DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a, b := build(), build()
	old := make([]byte, dev.LineBytes)
	next := make([]byte, dev.LineBytes)
	for i := 0; i < 100; i++ {
		next[i%dev.LineBytes] ^= byte(i*13 + 1)
		pa := a.PlanWrite(pcm.LineAddr(i%4), old, next)
		pb := b.PlanWrite(pcm.LineAddr(i%4), old, next)
		if pa.Write != pb.Write || pa.ServiceTime() != pb.ServiceTime() {
			t.Fatalf("write %d: divergent bills %v vs %v", i, pa.Write, pb.Write)
		}
		copy(old, next)
	}
}

// TestCellModeStats checks the StatProvider series and that all-RESET
// writes (no SET pulses) bill nothing.
func TestCellModeStats(t *testing.T) {
	dev := pcm.DefaultParams()
	s, err := mlc.NewCellMode(schemes.NewDCW(dev), dev, mlc.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	stats := func() map[string]float64 {
		out := map[string]float64{}
		s.(schemes.StatProvider).SchemeStats(func(n string, v float64) { out[n] = v })
		return out
	}
	for _, want := range []string{"scheme.mlc.pv_pulses", "scheme.mlc.pv_time", "scheme.mlc.pv_writes"} {
		if _, ok := stats()[want]; !ok {
			t.Fatalf("series %q missing", want)
		}
	}
	// 0xFF -> 0x00 is pure RESET: no SETs, so no P&V bill.
	old := bytes.Repeat([]byte{0xFF}, dev.LineBytes)
	zero := make([]byte, dev.LineBytes)
	s.PlanWrite(0, old, zero)
	if got := stats()["scheme.mlc.pv_writes"]; got != 0 {
		t.Errorf("all-RESET write billed pv_writes = %v", got)
	}
	// 0x00 -> 0xFF is pure SET: a bill must appear.
	s.PlanWrite(0, zero, old)
	st := stats()
	if st["scheme.mlc.pv_writes"] != 1 || st["scheme.mlc.pv_pulses"] == 0 || st["scheme.mlc.pv_time"] == 0 {
		t.Errorf("all-SET write not billed: %v", st)
	}
}

// TestIterationsBounds checks the exported per-cell variation hash stays
// inside [MinIter, MaxIter] and actually varies across cells.
func TestIterationsBounds(t *testing.T) {
	par := mlc.DefaultParams()
	seen := map[int]bool{}
	for i := int64(0); i < 4096; i++ {
		for _, lvl := range []mlc.Level{1, 2} {
			n := par.Iterations(i, lvl)
			if n < par.MinIter || n > par.MaxIter {
				t.Fatalf("Iterations(%d, %d) = %d outside [%d, %d]",
					i, lvl, n, par.MinIter, par.MaxIter)
			}
			seen[n] = true
		}
	}
	if len(seen) < 2 {
		t.Error("iteration hash shows no per-cell variation")
	}
}

// TestCellModeRejectsBadParams: the constructor validates.
func TestCellModeRejectsBadParams(t *testing.T) {
	dev := pcm.DefaultParams()
	bad := mlc.DefaultParams()
	bad.MinIter = 0
	if _, err := mlc.NewCellMode(schemes.NewDCW(dev), dev, bad); err == nil {
		t.Error("NewCellMode accepted MinIter = 0")
	}
}
