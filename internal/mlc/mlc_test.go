package mlc

import (
	"math/rand"
	"testing"

	"tetriswrite/internal/units"
)

func TestParamsValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultParams()
	bad.MinIter = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero MinIter accepted")
	}
	bad = DefaultParams()
	bad.MaxIter = bad.MinIter - 1
	if err := bad.Validate(); err == nil {
		t.Error("inverted iteration bounds accepted")
	}
	bad = DefaultParams()
	bad.TPartial = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero partial pulse accepted")
	}
}

func TestWriteReadBack(t *testing.T) {
	arr, err := NewArray(DefaultParams(), 16)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		lvl := Level(i % 4)
		if _, err := arr.Write(i, lvl); err != nil {
			t.Fatal(err)
		}
		if got := arr.Read(i); got != lvl {
			t.Errorf("cell %d = %d, want %d", i, got, lvl)
		}
	}
	if _, err := arr.Write(0, 4); err == nil {
		t.Error("level 4 accepted")
	}
	if _, err := arr.Write(99, 0); err == nil {
		t.Error("out-of-range cell accepted")
	}
}

func TestExtremeLevelsAreSinglePulse(t *testing.T) {
	par := DefaultParams()
	arr, _ := NewArray(par, 4)
	t0, _ := arr.Write(0, 0)
	if t0 != par.TReset {
		t.Errorf("level 0 took %v, want TReset", t0)
	}
	t3, _ := arr.Write(1, 3)
	if t3 != par.TSet {
		t.Errorf("level 3 took %v, want TSet", t3)
	}
	if arr.Stats().PartialPulses != 0 {
		t.Error("extreme levels used partial pulses")
	}
}

func TestIntermediateLevelsUsePV(t *testing.T) {
	par := DefaultParams()
	arr, _ := NewArray(par, 64)
	var min, max units.Duration
	for i := 0; i < 64; i++ {
		d, _ := arr.Write(i, Level(1+i%2))
		if min == 0 || d < min {
			min = d
		}
		if d > max {
			max = d
		}
	}
	// Bounds: RESET + MinIter..MaxIter x (partial + verify).
	lo := par.TReset + units.Duration(par.MinIter)*(par.TPartial+par.TVerify)
	hi := par.TReset + units.Duration(par.MaxIter)*(par.TPartial+par.TVerify)
	if min < lo || max > hi {
		t.Errorf("P&V times [%v, %v] outside model bounds [%v, %v]", min, max, lo, hi)
	}
	if min == max {
		t.Error("no per-cell variation in P&V iteration counts")
	}
	st := arr.Stats()
	if st.PartialPulses == 0 || st.Verifies != st.PartialPulses {
		t.Errorf("stats: %+v", st)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() units.Duration {
		arr, _ := NewArray(DefaultParams(), 32)
		var total units.Duration
		for i := 0; i < 32; i++ {
			d, _ := arr.Write(i, Level(i%4))
			total += d
		}
		return total
	}
	if run() != run() {
		t.Error("MLC programming nondeterministic")
	}
	// Different seed -> different variation draw.
	par := DefaultParams()
	par.Seed = 7
	arr, _ := NewArray(par, 32)
	var other units.Duration
	for i := 0; i < 32; i++ {
		d, _ := arr.Write(i, Level(i%4))
		other += d
	}
	if other == run() {
		t.Error("seed has no effect on variation")
	}
}

// TestCompareSLCShowsTheGap: the quantitative form of the paper's
// "we focus on SLC for its better write performance" — MLC stores the
// same bits in half the cells but takes substantially longer.
func TestCompareSLCShowsTheGap(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	bits := make([]bool, 512)
	for i := range bits {
		bits[i] = rng.Intn(2) == 0
	}
	cmp, err := CompareSLC(DefaultParams(), bits)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.MLCCells != 256 || cmp.SLCCells != 512 {
		t.Errorf("cell counts: %+v", cmp)
	}
	if cmp.MLCTime <= cmp.SLCTime {
		t.Errorf("MLC (%v) not slower than SLC (%v); the SLC-focus rationale must hold",
			cmp.MLCTime, cmp.SLCTime)
	}
	ratio := float64(cmp.MLCTime) / float64(cmp.SLCTime)
	if ratio < 1.2 || ratio > 10 {
		t.Errorf("MLC/SLC ratio %.2f outside the plausible band", ratio)
	}
	if cmp.MLCPartial == 0 {
		t.Error("no P&V activity in the MLC path")
	}
}

func TestWritePairEncoding(t *testing.T) {
	arr, _ := NewArray(DefaultParams(), 4)
	cases := []struct {
		hi, lo bool
		want   Level
	}{
		{false, false, 0},
		{false, true, 1},
		{true, false, 2},
		{true, true, 3},
	}
	for i, c := range cases {
		if _, err := arr.WritePair(i, c.hi, c.lo); err != nil {
			t.Fatal(err)
		}
		if got := arr.Read(i); got != c.want {
			t.Errorf("pair (%v,%v) stored level %d, want %d", c.hi, c.lo, got, c.want)
		}
	}
}
