package mlc

import (
	"tetriswrite/internal/pcm"
	"tetriswrite/internal/schemes"
	"tetriswrite/internal/units"
)

// cellMode is a registry-resolvable decorator stub that bills an inner
// SLC write scheme for MLC-grade programming: every SET pulse in the
// inner plan is treated as targeting an intermediate resistance level
// and extends the write phase by that cell's deterministic
// program-and-verify staircase (partial pulses plus verify reads). The
// pulse train itself — and therefore the stored image, power profile and
// shadow-array decode — is unchanged; only the latency bill and the P&V
// counters move. This is the scaffolding for ROADMAP item 4 (a full MLC
// write path): the per-cell iteration model and the scheme-pipeline
// plumbing land here, the multi-level datapath comes later.
type cellMode struct {
	inner schemes.Scheme
	rec   schemes.PlanRecycler
	tags  schemes.FlipTagReader
	par   Params
	dev   pcm.Params
	name  string

	stats struct {
		pvPulses  int64          // partial SET pulses billed
		pvTime    units.Duration // cumulative staircase time billed
		pvWrites  int64          // writes that had at least one SET
		allWrites int64
	}
}

// NewCellMode wraps inner with the MLC cell-mode latency model. par
// must validate; the zero value is not usable — pass DefaultParams()
// for the standard staircase.
func NewCellMode(inner schemes.Scheme, dev pcm.Params, par Params) (schemes.Scheme, error) {
	if err := par.Validate(); err != nil {
		return nil, err
	}
	s := &cellMode{inner: inner, par: par, dev: dev, name: inner.Name() + "+mlc"}
	s.rec, _ = inner.(schemes.PlanRecycler)
	s.tags, _ = inner.(schemes.FlipTagReader)
	return s, nil
}

func (s *cellMode) Name() string               { return s.name }
func (s *cellMode) NeedsReadBeforeWrite() bool { return s.inner.NeedsReadBeforeWrite() }

// FlipTags forwards the inner scheme's coding state.
func (s *cellMode) FlipTags(addr pcm.LineAddr) uint64 {
	if s.tags == nil {
		return 0
	}
	return s.tags.FlipTags(addr)
}

// ClassifyTorn forwards to the inner scheme: the decorator never alters
// the pulse train, so the torn-state question belongs to whoever coded
// the cells.
func (s *cellMode) ClassifyTorn(st schemes.TornState) schemes.TornVerdict {
	if cl, ok := s.inner.(schemes.TornStateClassifier); ok {
		return cl.ClassifyTorn(st)
	}
	return schemes.TornReissue
}

// RestoreFlipTags forwards crash-recovery tag restoration to the inner
// scheme's coding state.
func (s *cellMode) RestoreFlipTags(addr pcm.LineAddr, tags uint64) {
	if r, ok := s.inner.(schemes.TagRestorer); ok {
		r.RestoreFlipTags(addr, tags)
	}
}

// RecyclePlan implements schemes.PlanRecycler via the inner arena.
func (s *cellMode) RecyclePlan(p schemes.Plan) {
	if s.rec != nil {
		s.rec.RecyclePlan(p)
	}
}

// ObserveQueues forwards controller load to the inner scheme.
func (s *cellMode) ObserveQueues(reads, writes int) {
	if o, ok := s.inner.(schemes.QueueObserver); ok {
		o.ObserveQueues(reads, writes)
	}
}

// ServiceFloor implements schemes.ServiceFloorer: the staircase only
// ever extends the inner plan's write phase, so the inner bound holds.
func (s *cellMode) ServiceFloor(changed bool) units.Duration {
	return schemes.FloorOf(s.inner, s.dev, changed)
}

// SchemeStats implements schemes.StatProvider.
func (s *cellMode) SchemeStats(emit func(name string, value float64)) {
	emit("scheme.mlc.pv_pulses", float64(s.stats.pvPulses))
	emit("scheme.mlc.pv_time", float64(s.stats.pvTime))
	emit("scheme.mlc.pv_writes", float64(s.stats.pvWrites))
	if sp, ok := s.inner.(schemes.StatProvider); ok {
		sp.SchemeStats(emit)
	}
}

func (s *cellMode) PlanWrite(addr pcm.LineAddr, old, new []byte) schemes.Plan {
	p := s.inner.PlanWrite(addr, old, new)
	s.stats.allWrites++

	// The staircases of simultaneously pulsed cells overlap, so the
	// write phase stretches by the slowest cell's staircase; every
	// partial pulse is billed for energy accounting.
	maxIter := 0
	for _, pl := range p.Pulses {
		if pl.Kind != schemes.Set {
			continue
		}
		cell := int64(addr)*int64(s.dev.DataUnits()*s.dev.NumChips) +
			int64(pl.Unit*s.dev.NumChips+pl.Chip)
		n := s.par.Iterations(cell, 1)
		s.stats.pvPulses += int64(n) * int64(pl.Bits())
		if n > maxIter {
			maxIter = n
		}
	}
	if maxIter > 0 {
		extra := units.Duration(maxIter) * (s.par.TPartial + s.par.TVerify)
		p.Write += extra
		s.stats.pvTime += extra
		s.stats.pvWrites++
	}
	return p
}
