package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"strings"
	"testing"

	"tetriswrite/internal/pcm"
	"tetriswrite/internal/workload"
)

// validTrace encodes n records of a real workload into a byte stream.
func validTrace(t testing.TB, cores, n int) []byte {
	t.Helper()
	par := pcm.DefaultParams()
	prof, _ := workload.ProfileByName("vips")
	recs := Generate(prof, cores, 1, par, n)
	var buf bytes.Buffer
	w, err := NewWriter(&buf, cores, par.LineBytes)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// header builds raw header bytes with arbitrary field values.
func header(version, cores uint16, lineBytes uint32) []byte {
	var buf bytes.Buffer
	buf.Write(magic[:])
	binary.Write(&buf, binary.LittleEndian, Header{Version: version, Cores: cores, LineBytes: lineBytes})
	return buf.Bytes()
}

func TestHeaderValidation(t *testing.T) {
	cases := []struct {
		name string
		data []byte
		want string
	}{
		{"zero-cores", header(Version, 0, 64), "zero cores"},
		{"zero-line", header(Version, 2, 0), "line size"},
		{"huge-line", header(Version, 2, MaxLineBytes+1), "line size"},
		{"bad-version", header(Version+9, 2, 64), "version"},
		{"truncated-header", magic[:], "header"},
		{"truncated-magic", []byte("TWTR"), "magic"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewReader(bytes.NewReader(tc.data))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want mention of %q", err, tc.want)
			}
			if errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
				t.Errorf("truncation reported as clean EOF: %v", err)
			}
		})
	}
}

// TestTruncationNamesRecord: cutting a valid stream mid-record fails
// with an error naming that record's number, never a silent short read.
func TestTruncationNamesRecord(t *testing.T) {
	data := validTrace(t, 2, 10)
	hdrLen := len(header(Version, 2, 64))
	// Cut the stream at every byte position: a reader must either error
	// with a record number, or stop at a clean EOF having decoded only
	// whole records (the cut fell exactly on a record boundary).
	boundaries := map[int]bool{hdrLen: true}
	for cut := hdrLen + 1; cut < len(data); cut++ {
		r, err := NewReader(bytes.NewReader(data[:cut]))
		if err != nil {
			t.Fatalf("cut %d: header rejected: %v", cut, err)
		}
		recs, err := r.ReadAll()
		if err == nil {
			boundaries[cut] = true
			continue
		}
		if !strings.Contains(err.Error(), "record") {
			t.Fatalf("cut %d: error without record position: %v", cut, err)
		}
		wantRec := int64(len(recs) + 1)
		if !strings.Contains(err.Error(), "record "+itoa(wantRec)) {
			t.Fatalf("cut %d: error %q does not name record %d", cut, err, wantRec)
		}
	}
	// Sanity: most cut positions are mid-record (records are > 1 byte).
	if len(boundaries) >= len(data)-hdrLen {
		t.Fatal("every cut decoded cleanly; truncation never detected")
	}
}

func itoa(n int64) string {
	var b [20]byte
	i := len(b)
	for {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
		if n == 0 {
			break
		}
	}
	return string(b[i:])
}

func TestBadRecordDiagnostics(t *testing.T) {
	hdr := header(Version, 2, 64)
	t.Run("core-out-of-range", func(t *testing.T) {
		data := append(append([]byte{}, hdr...), 9, 0, 0, 0)
		_, _, err := Parse(bytes.NewReader(data))
		if err == nil || !strings.Contains(err.Error(), "record 1") || !strings.Contains(err.Error(), "core 9") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("unknown-kind", func(t *testing.T) {
		data := append(append([]byte{}, hdr...), 0, 7, 0, 0)
		_, _, err := Parse(bytes.NewReader(data))
		if err == nil || !strings.Contains(err.Error(), "kind 7") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("varint-overflow", func(t *testing.T) {
		// 10-byte uvarint encoding a value > MaxInt64.
		over := []byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01}
		data := append(append([]byte{}, hdr...), 0, 0)
		data = append(data, over...)
		data = append(data, 0)
		_, _, err := Parse(bytes.NewReader(data))
		if err == nil || !strings.Contains(err.Error(), "overflows") {
			t.Fatalf("err = %v", err)
		}
	})
}

// TestParsePrefixSurvives: a valid prefix of records is returned even
// when a later record is corrupt.
func TestParsePrefixSurvives(t *testing.T) {
	data := validTrace(t, 2, 10)
	corrupt := append(append([]byte{}, data...), 99) // core 99: out of range
	hdr, recs, err := Parse(bytes.NewReader(corrupt))
	if err == nil {
		t.Fatal("corrupt tail not detected")
	}
	if hdr.Cores != 2 || len(recs) != 10 {
		t.Fatalf("prefix lost: hdr=%+v recs=%d", hdr, len(recs))
	}
	if !strings.Contains(err.Error(), "record 11") {
		t.Errorf("err = %v, want record 11", err)
	}
}

func TestParseRoundTrip(t *testing.T) {
	data := validTrace(t, 3, 50)
	hdr, recs, err := Parse(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Cores != 3 || len(recs) != 50 {
		t.Fatalf("hdr=%+v recs=%d", hdr, len(recs))
	}
	r, _ := NewReader(bytes.NewReader(data))
	if _, err := r.ReadAll(); err != nil {
		t.Fatal(err)
	}
	if r.Records() != 50 {
		t.Errorf("Records() = %d, want 50", r.Records())
	}
}

// FuzzParseTrace: the one-call ingestion path must never panic, never
// allocate unboundedly, and always either decode whole valid records or
// fail with a record-numbered error.
func FuzzParseTrace(f *testing.F) {
	f.Add(validTrace(f, 2, 5))
	f.Add(header(Version, 2, 64))
	f.Add(header(Version, 0, 64))
	f.Add(header(Version, 2, 1<<31))
	f.Add([]byte("TWTRACE1 garbage"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		hdr, recs, err := Parse(bytes.NewReader(data))
		if err != nil {
			if len(recs) > 0 && !strings.Contains(err.Error(), "record ") {
				t.Fatalf("record-level error without position: %v", err)
			}
			return
		}
		for i, rec := range recs {
			if rec.Core < 0 || rec.Core >= int(hdr.Cores) {
				t.Fatalf("record %d: core %d of %d", i, rec.Core, hdr.Cores)
			}
			if rec.Op.Think < 0 || rec.Op.Addr < 0 {
				t.Fatalf("record %d: negative field after decode: %+v", i, rec.Op)
			}
			if rec.Op.Write && len(rec.Op.Data) != int(hdr.LineBytes) {
				t.Fatalf("record %d: payload %d bytes, line is %d", i, len(rec.Op.Data), hdr.LineBytes)
			}
		}
	})
}
