package trace

import (
	"bytes"
	"io"
	"testing"

	"tetriswrite/internal/pcm"
	"tetriswrite/internal/workload"
)

// FuzzReader: arbitrary bytes must never panic the decoder; valid
// prefixes decode cleanly and corruption is reported as an error, not as
// silently wrong records.
func FuzzReader(f *testing.F) {
	// Seed with a real trace.
	par := pcm.DefaultParams()
	prof, _ := workload.ProfileByName("vips")
	recs := Generate(prof, 2, 1, par, 20)
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, 2, par.LineBytes)
	for _, r := range recs {
		w.Write(r)
	}
	w.Flush()
	f.Add(buf.Bytes())
	f.Add([]byte("TWTRACE1 garbage"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		for i := 0; i < 10000; i++ {
			rec, err := r.Next()
			if err == io.EOF {
				return
			}
			if err != nil {
				return
			}
			if rec.Core < 0 || rec.Core >= int(r.Header().Cores) {
				t.Fatalf("decoded record with core %d of %d", rec.Core, r.Header().Cores)
			}
			if rec.Op.Write && len(rec.Op.Data) != int(r.Header().LineBytes) {
				t.Fatal("decoded write with wrong payload length")
			}
		}
	})
}
