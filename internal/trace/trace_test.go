package trace

import (
	"bytes"
	"io"
	"testing"

	"tetriswrite/internal/bitutil"
	"tetriswrite/internal/pcm"
	"tetriswrite/internal/workload"
)

func TestRoundTrip(t *testing.T) {
	par := pcm.DefaultParams()
	prof, _ := workload.ProfileByName("ferret")
	recs := Generate(prof, 4, 42, par, 500)
	if len(recs) != 500 {
		t.Fatalf("generated %d records, want 500", len(recs))
	}

	var buf bytes.Buffer
	w, err := NewWriter(&buf, 4, par.LineBytes)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != 500 {
		t.Errorf("Count = %d", w.Count())
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h := r.Header(); h.Cores != 4 || h.LineBytes != 64 || h.Version != Version {
		t.Errorf("header = %+v", h)
	}
	got, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("read %d records, want %d", len(got), len(recs))
	}
	for i := range got {
		a, b := recs[i], got[i]
		if a.Core != b.Core || a.Op.Write != b.Op.Write || a.Op.Addr != b.Op.Addr || a.Op.Think != b.Op.Think {
			t.Fatalf("record %d differs: %+v vs %+v", i, a, b)
		}
		if a.Op.Write && bitutil.HammingBytes(a.Op.Data, b.Op.Data) != 0 {
			t.Fatalf("record %d payload differs", i)
		}
	}
}

func TestWriterValidation(t *testing.T) {
	var buf bytes.Buffer
	if _, err := NewWriter(&buf, 0, 64); err == nil {
		t.Error("zero cores accepted")
	}
	if _, err := NewWriter(&buf, 4, 0); err == nil {
		t.Error("zero line size accepted")
	}
	w, _ := NewWriter(&buf, 2, 64)
	if err := w.Write(Record{Core: 5}); err == nil {
		t.Error("out-of-range core accepted")
	}
	if err := w.Write(Record{Core: 0, Op: workload.Op{Think: -1}}); err == nil {
		t.Error("negative think accepted")
	}
	if err := w.Write(Record{Core: 0, Op: workload.Op{Write: true, Data: []byte{1}}}); err == nil {
		t.Error("short payload accepted")
	}
	w.Flush()
	if err := w.Write(Record{Core: 0}); err == nil {
		t.Error("write after Flush accepted")
	}
}

func TestReaderRejectsGarbage(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("not a trace file at all"))); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := NewReader(bytes.NewReader(nil)); err == nil {
		t.Error("empty stream accepted")
	}
}

func TestReaderTruncation(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, 1, 64)
	data := make([]byte, 64)
	w.Write(Record{Op: workload.Op{Write: true, Think: 5, Addr: 9, Data: data}})
	w.Flush()
	full := buf.Bytes()
	// Chop mid-payload.
	r, err := NewReader(bytes.NewReader(full[:len(full)-10]))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err == nil || err == io.EOF {
		t.Errorf("truncated payload gave err=%v, want a real error", err)
	}
}

func TestCoreSource(t *testing.T) {
	recs := []Record{
		{Core: 0, Op: workload.Op{Addr: 1, Think: 10}},
		{Core: 1, Op: workload.Op{Addr: 2, Think: 20}},
		{Core: 0, Op: workload.Op{Addr: 3, Think: 30}},
	}
	s := NewCoreSource(recs, 0)
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	if op := s.Next(); op.Addr != 1 {
		t.Errorf("first op addr %d", op.Addr)
	}
	if op := s.Next(); op.Addr != 3 {
		t.Errorf("second op addr %d", op.Addr)
	}
	// Exhausted: idles with a huge think.
	if op := s.Next(); op.Think < 1<<30 {
		t.Errorf("exhausted source should idle, got think %d", op.Think)
	}
}

func TestGenerateDeterminism(t *testing.T) {
	par := pcm.DefaultParams()
	prof, _ := workload.ProfileByName("vips")
	a := Generate(prof, 2, 9, par, 100)
	b := Generate(prof, 2, 9, par, 100)
	for i := range a {
		if a[i].Op.Addr != b[i].Op.Addr || a[i].Op.Think != b[i].Op.Think {
			t.Fatalf("record %d nondeterministic", i)
		}
	}
}
