// Package trace defines the binary memory-trace format of the tool
// chain: cmd/tracegen emits traces from the synthetic workloads, and the
// simulators can replay them instead of generating operations on the fly
// — which pins a workload exactly (for cross-machine reproducibility or
// external trace import) rather than relying on seed stability.
//
// Format: a 16-byte header ("TWTRACE1", version uint16, cores uint16,
// line bytes uint32), then length-prefixed records:
//
//	record := core uint8, kind uint8, think varint, addr varint, [payload]
//
// kind 0 is a read; kind 1 is a write followed by LineBytes of payload.
// Multi-core traces interleave records in generation order; Reader can
// filter one core's stream.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"tetriswrite/internal/pcm"
	"tetriswrite/internal/workload"
)

// magic identifies a trace stream.
var magic = [8]byte{'T', 'W', 'T', 'R', 'A', 'C', 'E', '1'}

// Version is the current format version.
const Version = 1

// Header describes a trace stream.
type Header struct {
	Version   uint16
	Cores     uint16
	LineBytes uint32
}

// Record is one traced memory operation.
type Record struct {
	Core int
	Op   workload.Op
}

const (
	kindRead  = 0
	kindWrite = 1
)

// Writer encodes records to a stream.
type Writer struct {
	w      *bufio.Writer
	hdr    Header
	closed bool
	n      int64
}

// NewWriter writes a header and returns an encoder.
func NewWriter(w io.Writer, cores, lineBytes int) (*Writer, error) {
	if cores <= 0 || cores > 1<<16-1 {
		return nil, fmt.Errorf("trace: bad core count %d", cores)
	}
	if lineBytes <= 0 {
		return nil, fmt.Errorf("trace: bad line size %d", lineBytes)
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return nil, err
	}
	hdr := Header{Version: Version, Cores: uint16(cores), LineBytes: uint32(lineBytes)}
	if err := binary.Write(bw, binary.LittleEndian, hdr); err != nil {
		return nil, err
	}
	return &Writer{w: bw, hdr: hdr}, nil
}

// Write appends one record.
func (w *Writer) Write(rec Record) error {
	if w.closed {
		return errors.New("trace: write after Flush")
	}
	if rec.Core < 0 || rec.Core >= int(w.hdr.Cores) {
		return fmt.Errorf("trace: core %d out of range", rec.Core)
	}
	if rec.Op.Think < 0 || rec.Op.Addr < 0 {
		return fmt.Errorf("trace: negative think or address")
	}
	var buf [2 + 2*binary.MaxVarintLen64]byte
	buf[0] = byte(rec.Core)
	if rec.Op.Write {
		buf[1] = kindWrite
	} else {
		buf[1] = kindRead
	}
	n := 2
	n += binary.PutUvarint(buf[n:], uint64(rec.Op.Think))
	n += binary.PutUvarint(buf[n:], uint64(rec.Op.Addr))
	if _, err := w.w.Write(buf[:n]); err != nil {
		return err
	}
	if rec.Op.Write {
		if len(rec.Op.Data) != int(w.hdr.LineBytes) {
			return fmt.Errorf("trace: payload %d bytes, line is %d", len(rec.Op.Data), w.hdr.LineBytes)
		}
		if _, err := w.w.Write(rec.Op.Data); err != nil {
			return err
		}
	}
	w.n++
	return nil
}

// Count returns the number of records written.
func (w *Writer) Count() int64 { return w.n }

// Flush completes the stream.
func (w *Writer) Flush() error {
	w.closed = true
	return w.w.Flush()
}

// Reader decodes a trace stream.
type Reader struct {
	r   *bufio.Reader
	hdr Header
}

// NewReader validates the header and returns a decoder.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	var m [8]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if m != magic {
		return nil, errors.New("trace: bad magic; not a trace stream")
	}
	var hdr Header
	if err := binary.Read(br, binary.LittleEndian, &hdr); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if hdr.Version != Version {
		return nil, fmt.Errorf("trace: unsupported version %d", hdr.Version)
	}
	return &Reader{r: br, hdr: hdr}, nil
}

// Header returns the stream header.
func (r *Reader) Header() Header { return r.hdr }

// Next decodes one record. It returns io.EOF at a clean end of stream.
func (r *Reader) Next() (Record, error) {
	core, err := r.r.ReadByte()
	if err != nil {
		if err == io.EOF {
			return Record{}, io.EOF
		}
		return Record{}, err
	}
	if int(core) >= int(r.hdr.Cores) {
		return Record{}, fmt.Errorf("trace: record core %d out of range", core)
	}
	kind, err := r.r.ReadByte()
	if err != nil {
		return Record{}, fmt.Errorf("trace: truncated record: %w", err)
	}
	if kind != kindRead && kind != kindWrite {
		return Record{}, fmt.Errorf("trace: unknown record kind %d", kind)
	}
	think, err := binary.ReadUvarint(r.r)
	if err != nil {
		return Record{}, fmt.Errorf("trace: truncated think: %w", err)
	}
	addr, err := binary.ReadUvarint(r.r)
	if err != nil {
		return Record{}, fmt.Errorf("trace: truncated addr: %w", err)
	}
	rec := Record{
		Core: int(core),
		Op: workload.Op{
			Think: int64(think),
			Addr:  pcm.LineAddr(addr),
			Write: kind == kindWrite,
		},
	}
	if rec.Op.Write {
		rec.Op.Data = make([]byte, r.hdr.LineBytes)
		if _, err := io.ReadFull(r.r, rec.Op.Data); err != nil {
			return Record{}, fmt.Errorf("trace: truncated payload: %w", err)
		}
	}
	return rec, nil
}

// ReadAll decodes the whole stream.
func (r *Reader) ReadAll() ([]Record, error) {
	var out []Record
	for {
		rec, err := r.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, rec)
	}
}

// CoreSource adapts one core's records from a fully decoded trace into a
// cpu.OpSource. When the trace runs dry the source repeats its last
// operation with a huge think gap, letting the core idle out its
// instruction budget deterministically.
type CoreSource struct {
	ops []workload.Op
	i   int
}

// NewCoreSource filters records for one core.
func NewCoreSource(recs []Record, core int) *CoreSource {
	s := &CoreSource{}
	for _, r := range recs {
		if r.Core == core {
			s.ops = append(s.ops, r.Op)
		}
	}
	return s
}

// Len returns the number of operations for the core.
func (s *CoreSource) Len() int { return len(s.ops) }

// Next returns the next operation.
func (s *CoreSource) Next() workload.Op {
	if s.i < len(s.ops) {
		op := s.ops[s.i]
		s.i++
		return op
	}
	return workload.Op{Think: 1 << 40, Addr: 0}
}

// Generate captures n operations of every core of a workload program
// into a record stream, in round-robin interleaving.
func Generate(prof workload.Profile, cores int, seed int64, par pcm.Params, n int) []Record {
	prog := workload.NewProgram(prof, cores, seed, par)
	gens := make([]*workload.Generator, cores)
	for i := range gens {
		gens[i] = prog.Generator(i)
	}
	out := make([]Record, 0, n)
	for len(out) < n {
		for c, g := range gens {
			if len(out) >= n {
				break
			}
			out = append(out, Record{Core: c, Op: g.Next()})
		}
	}
	return out
}
