// Package trace defines the binary memory-trace format of the tool
// chain: cmd/tracegen emits traces from the synthetic workloads, and the
// simulators can replay them instead of generating operations on the fly
// — which pins a workload exactly (for cross-machine reproducibility or
// external trace import) rather than relying on seed stability.
//
// Format: a 16-byte header ("TWTRACE1", version uint16, cores uint16,
// line bytes uint32), then length-prefixed records:
//
//	record := core uint8, kind uint8, think varint, addr varint, [payload]
//
// kind 0 is a read; kind 1 is a write followed by LineBytes of payload.
// Multi-core traces interleave records in generation order; Reader can
// filter one core's stream.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"tetriswrite/internal/pcm"
	"tetriswrite/internal/workload"
)

// magic identifies a trace stream.
var magic = [8]byte{'T', 'W', 'T', 'R', 'A', 'C', 'E', '1'}

// Version is the current format version.
const Version = 1

// MaxLineBytes bounds the header's line size on ingestion. The header
// field is a uint32, so without a bound a corrupt or hostile stream
// could demand a multi-gigabyte allocation per write record; no real
// memory line is anywhere near a megabyte.
const MaxLineBytes = 1 << 20

// Header describes a trace stream.
type Header struct {
	Version   uint16
	Cores     uint16
	LineBytes uint32
}

// Record is one traced memory operation.
type Record struct {
	Core int
	Op   workload.Op
}

const (
	kindRead  = 0
	kindWrite = 1
)

// Writer encodes records to a stream.
type Writer struct {
	w      *bufio.Writer
	hdr    Header
	closed bool
	n      int64
}

// NewWriter writes a header and returns an encoder.
func NewWriter(w io.Writer, cores, lineBytes int) (*Writer, error) {
	if cores <= 0 || cores > 1<<16-1 {
		return nil, fmt.Errorf("trace: bad core count %d", cores)
	}
	if lineBytes <= 0 {
		return nil, fmt.Errorf("trace: bad line size %d", lineBytes)
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return nil, err
	}
	hdr := Header{Version: Version, Cores: uint16(cores), LineBytes: uint32(lineBytes)}
	if err := binary.Write(bw, binary.LittleEndian, hdr); err != nil {
		return nil, err
	}
	return &Writer{w: bw, hdr: hdr}, nil
}

// Write appends one record.
func (w *Writer) Write(rec Record) error {
	if w.closed {
		return errors.New("trace: write after Flush")
	}
	if rec.Core < 0 || rec.Core >= int(w.hdr.Cores) {
		return fmt.Errorf("trace: core %d out of range", rec.Core)
	}
	if rec.Op.Think < 0 || rec.Op.Addr < 0 {
		return fmt.Errorf("trace: negative think or address")
	}
	var buf [2 + 2*binary.MaxVarintLen64]byte
	buf[0] = byte(rec.Core)
	if rec.Op.Write {
		buf[1] = kindWrite
	} else {
		buf[1] = kindRead
	}
	n := 2
	n += binary.PutUvarint(buf[n:], uint64(rec.Op.Think))
	n += binary.PutUvarint(buf[n:], uint64(rec.Op.Addr))
	if _, err := w.w.Write(buf[:n]); err != nil {
		return err
	}
	if rec.Op.Write {
		if len(rec.Op.Data) != int(w.hdr.LineBytes) {
			return fmt.Errorf("trace: payload %d bytes, line is %d", len(rec.Op.Data), w.hdr.LineBytes)
		}
		if _, err := w.w.Write(rec.Op.Data); err != nil {
			return err
		}
	}
	w.n++
	return nil
}

// Count returns the number of records written.
func (w *Writer) Count() int64 { return w.n }

// Flush completes the stream.
func (w *Writer) Flush() error {
	w.closed = true
	return w.w.Flush()
}

// Reader decodes a trace stream.
type Reader struct {
	r   *bufio.Reader
	hdr Header
	n   int64 // records decoded so far, for error positions
}

// NewReader validates the header and returns a decoder. Header fields
// are bounds-checked here so every later allocation is sized by a
// trusted value: a malformed or hostile stream fails fast with a
// descriptive error instead of driving the decoder into huge
// allocations or nonsense records.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	var m [8]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", noEOF(err))
	}
	if m != magic {
		return nil, errors.New("trace: bad magic; not a trace stream")
	}
	var hdr Header
	if err := binary.Read(br, binary.LittleEndian, &hdr); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", noEOF(err))
	}
	if hdr.Version != Version {
		return nil, fmt.Errorf("trace: unsupported version %d", hdr.Version)
	}
	if hdr.Cores == 0 {
		return nil, errors.New("trace: header declares zero cores")
	}
	if hdr.LineBytes == 0 || hdr.LineBytes > MaxLineBytes {
		return nil, fmt.Errorf("trace: header line size %d outside [1, %d]", hdr.LineBytes, MaxLineBytes)
	}
	return &Reader{r: br, hdr: hdr}, nil
}

// noEOF rewrites a bare io.EOF as io.ErrUnexpectedEOF: inside a header
// or record, running out of bytes is truncation, not a clean end.
func noEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// Header returns the stream header.
func (r *Reader) Header() Header { return r.hdr }

// Records returns how many records have been decoded so far.
func (r *Reader) Records() int64 { return r.n }

// Next decodes one record. It returns io.EOF at a clean end of stream;
// any other failure — truncation mid-record, an out-of-range core, an
// unknown kind — is an error naming the 1-based record number, so a
// corrupt multi-gigabyte trace pinpoints its bad record instead of
// reporting a bare "unexpected EOF".
func (r *Reader) Next() (Record, error) {
	rec, err := r.next()
	if err != nil {
		if err == io.EOF {
			return Record{}, io.EOF
		}
		return Record{}, fmt.Errorf("trace: record %d: %w", r.n+1, err)
	}
	r.n++
	return rec, nil
}

func (r *Reader) next() (Record, error) {
	core, err := r.r.ReadByte()
	if err != nil {
		return Record{}, err // io.EOF here is the clean end of stream
	}
	if int(core) >= int(r.hdr.Cores) {
		return Record{}, fmt.Errorf("core %d out of range (trace has %d)", core, r.hdr.Cores)
	}
	kind, err := r.r.ReadByte()
	if err != nil {
		return Record{}, fmt.Errorf("truncated record: %w", noEOF(err))
	}
	if kind != kindRead && kind != kindWrite {
		return Record{}, fmt.Errorf("unknown record kind %d", kind)
	}
	think, err := binary.ReadUvarint(r.r)
	if err != nil {
		return Record{}, fmt.Errorf("truncated think: %w", noEOF(err))
	}
	if think > math.MaxInt64 {
		return Record{}, fmt.Errorf("think %d overflows int64", think)
	}
	addr, err := binary.ReadUvarint(r.r)
	if err != nil {
		return Record{}, fmt.Errorf("truncated addr: %w", noEOF(err))
	}
	if addr > math.MaxInt64 {
		return Record{}, fmt.Errorf("addr %d overflows int64", addr)
	}
	rec := Record{
		Core: int(core),
		Op: workload.Op{
			Think: int64(think),
			Addr:  pcm.LineAddr(addr),
			Write: kind == kindWrite,
		},
	}
	if rec.Op.Write {
		rec.Op.Data = make([]byte, r.hdr.LineBytes)
		if _, err := io.ReadFull(r.r, rec.Op.Data); err != nil {
			return Record{}, fmt.Errorf("truncated payload: %w", noEOF(err))
		}
	}
	return rec, nil
}

// ReadAll decodes the whole stream. On error it returns the records
// decoded before the failure alongside the error.
func (r *Reader) ReadAll() ([]Record, error) {
	var out []Record
	for {
		rec, err := r.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, rec)
	}
}

// Parse decodes an entire trace stream: header validation, then every
// record. It is the one-call ingestion path the tools use; errors carry
// the failing record number and the successfully decoded prefix is
// returned even on failure.
func Parse(r io.Reader) (Header, []Record, error) {
	tr, err := NewReader(r)
	if err != nil {
		return Header{}, nil, err
	}
	recs, err := tr.ReadAll()
	return tr.Header(), recs, err
}

// CoreSource adapts one core's records from a fully decoded trace into a
// cpu.OpSource. When the trace runs dry the source repeats its last
// operation with a huge think gap, letting the core idle out its
// instruction budget deterministically.
type CoreSource struct {
	ops []workload.Op
	i   int
}

// NewCoreSource filters records for one core.
func NewCoreSource(recs []Record, core int) *CoreSource {
	s := &CoreSource{}
	for _, r := range recs {
		if r.Core == core {
			s.ops = append(s.ops, r.Op)
		}
	}
	return s
}

// Len returns the number of operations for the core.
func (s *CoreSource) Len() int { return len(s.ops) }

// Next returns the next operation.
func (s *CoreSource) Next() workload.Op {
	if s.i < len(s.ops) {
		op := s.ops[s.i]
		s.i++
		return op
	}
	return workload.Op{Think: 1 << 40, Addr: 0}
}

// Generate captures n operations of every core of a workload program
// into a record stream, in round-robin interleaving.
func Generate(prof workload.Profile, cores int, seed int64, par pcm.Params, n int) []Record {
	prog := workload.NewProgram(prof, cores, seed, par)
	gens := make([]*workload.Generator, cores)
	for i := range gens {
		gens[i] = prog.Generator(i)
	}
	out := make([]Record, 0, n)
	for len(out) < n {
		for c, g := range gens {
			if len(out) >= n {
				break
			}
			out = append(out, Record{Core: c, Op: g.Next()})
		}
	}
	return out
}
