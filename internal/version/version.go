// Package version carries the build identity every binary reports via
// its -version flag. Fleet deployments care because a broker and its
// workers must run the same simulator build: per-shard Results are only
// byte-identical across retries when every worker computes them with
// identical code, so operators diff `pcmsimd -version` against
// `pcmsimw -version` before trusting a sweep.
//
// Commit and Date are injected at link time (see the Makefile's
// LDFLAGS); a `go build` without them falls back to the VCS stamp Go
// embeds in the binary, and failing that reports "devel".
package version

import (
	"fmt"
	"runtime"
	"runtime/debug"
)

// Commit and Date are overridden via
//
//	-ldflags "-X tetriswrite/internal/version.Commit=<sha> -X tetriswrite/internal/version.Date=<date>"
var (
	Commit = ""
	Date   = ""
)

// Resolve returns the effective (commit, date) pair: the ldflags values
// when injected, otherwise the VCS build settings stamped by the Go
// toolchain, otherwise "devel"/"unknown".
func Resolve() (commit, date string) {
	commit, date = Commit, Date
	if commit != "" && date != "" {
		return commit, date
	}
	if info, ok := debug.ReadBuildInfo(); ok {
		for _, s := range info.Settings {
			switch s.Key {
			case "vcs.revision":
				if commit == "" {
					commit = s.Value
					if len(commit) > 12 {
						commit = commit[:12]
					}
				}
			case "vcs.time":
				if date == "" {
					date = s.Value
				}
			case "vcs.modified":
				if s.Value == "true" && Commit == "" {
					defer func() { commit += "+dirty" }()
				}
			}
		}
	}
	if commit == "" {
		commit = "devel"
	}
	if date == "" {
		date = "unknown"
	}
	return commit, date
}

// String renders the one-line version report of the named binary:
//
//	pcmsimd version <commit> built <date> (go1.24.0 linux/amd64)
func String(binary string) string {
	commit, date := Resolve()
	return fmt.Sprintf("%s version %s built %s (%s %s/%s)",
		binary, commit, date, runtime.Version(), runtime.GOOS, runtime.GOARCH)
}
