// Package prof wires the standard pprof profilers to the -cpuprofile
// and -memprofile flags shared by the command binaries, so hot-path
// regressions can be diagnosed on the real tools rather than only on
// the Go benchmarks (see EXPERIMENTS.md for the recipe).
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start enables the profilers selected by the two paths; either may be
// empty to skip that profiler. The returned stop function ends CPU
// profiling and writes the heap profile — call it exactly once on clean
// shutdown, after the measured work.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("-cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("-cpuprofile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("-cpuprofile: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("-memprofile: %w", err)
			}
			defer f.Close()
			// Settle transient garbage so the heap profile reflects the
			// live working set, the number the allocation work cares about.
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("-memprofile: %w", err)
			}
		}
		return nil
	}, nil
}
