package system

import (
	"reflect"
	"strings"
	"testing"

	"tetriswrite/internal/fault"
	"tetriswrite/internal/pcm"
	"tetriswrite/internal/schemes"
	"tetriswrite/internal/tetris"
	"tetriswrite/internal/trace"
	"tetriswrite/internal/units"
	"tetriswrite/internal/workload"
)

// countPrefixes tallies how many registered series fall under each
// dotted namespace.
func countPrefixes(names []string) map[string]int {
	out := make(map[string]int)
	for _, n := range names {
		prefix, _, _ := strings.Cut(n, ".")
		out[prefix]++
	}
	return out
}

func TestRunTelemetrySpansLayers(t *testing.T) {
	prof, _ := workload.ProfileByName("vips")
	cfg := smallConfig()
	cfg.Epoch = 10 * units.Microsecond
	cfg.UseCaches = true
	cfg.WearLevelPsi = 64
	cfg.Fault = fault.Config{TransientRate: 0.001, Seed: 3}
	res, err := Run(prof, schemes.NewDCW, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Telemetry == nil {
		t.Fatal("Epoch set but Result.Telemetry is nil")
	}
	s := res.Telemetry
	if s.Epochs() < 2 {
		t.Fatalf("only %d epochs recorded for a %v run", s.Epochs(), res.RunningTime)
	}
	names := s.SeriesNames()
	got := countPrefixes(names)
	for _, want := range []string{"cpu", "cache", "memctrl", "power", "pcm", "wearlevel", "fault", "spare"} {
		if got[want] == 0 {
			t.Errorf("no %s.* series registered; have prefixes %v", want, got)
		}
	}
	if len(names) < 8 {
		t.Errorf("only %d series, want >= 8", len(names))
	}

	// Counters must be monotonic across epochs and end at the final value.
	retired := s.Series("cpu.retired")
	for i := 1; i < len(retired); i++ {
		if retired[i] < retired[i-1] {
			t.Fatalf("cpu.retired not monotonic at epoch %d: %v < %v", i, retired[i], retired[i-1])
		}
	}
	var totalRetired float64
	for _, cs := range res.Cores {
		totalRetired += float64(cs.Retired)
	}
	if last := retired[len(retired)-1]; last != totalRetired {
		t.Errorf("final cpu.retired sample = %v, want %v", last, totalRetired)
	}
	if wq := s.Series("memctrl.write_queue_depth"); len(wq) != s.Epochs() {
		t.Errorf("series length %d != epochs %d", len(wq), s.Epochs())
	}

	// Timestamps advance by exactly one epoch.
	times := s.Times()
	for i := 1; i < len(times); i++ {
		if times[i].Sub(times[i-1]) != cfg.Epoch {
			t.Fatalf("epoch spacing %v at %d, want %v", times[i].Sub(times[i-1]), i, cfg.Epoch)
		}
	}
}

// Telemetry must be a pure observer: attaching the sampler cannot change
// a single simulation outcome.
func TestRunTelemetryIsPassive(t *testing.T) {
	prof, _ := workload.ProfileByName("canneal")
	cfg := smallConfig()
	base, err := Run(prof, tetris.New, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Epoch = 5 * units.Microsecond
	sampled, err := Run(prof, tetris.New, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sampled.Telemetry == nil || sampled.Telemetry.Epochs() == 0 {
		t.Fatal("sampled run recorded no epochs")
	}
	sampled.Telemetry = nil
	if !reflect.DeepEqual(base, sampled) {
		t.Errorf("telemetry perturbed the simulation:\nbase    %+v\nsampled %+v", base, sampled)
	}
}

func TestRunTraceTelemetryAndCaches(t *testing.T) {
	prof, _ := workload.ProfileByName("vips")
	recs := trace.Generate(prof, 2, 3, pcm.DefaultParams(), 2000)
	cfg := Config{InstrBudget: 100_000, Seed: 5, UseCaches: true,
		Epoch: 10 * units.Microsecond}
	res, err := RunTrace("vips", recs, 2, schemes.NewDCW, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Telemetry == nil {
		t.Fatal("no telemetry on trace run")
	}
	if len(res.Caches) == 0 {
		t.Fatal("UseCaches set but no cache stats on trace run")
	}
	got := countPrefixes(res.Telemetry.SeriesNames())
	for _, want := range []string{"cpu", "cache", "memctrl", "power", "pcm"} {
		if got[want] == 0 {
			t.Errorf("trace run missing %s.* series; have %v", want, got)
		}
	}
}
