package system

import (
	"testing"

	"tetriswrite/internal/fault"
	"tetriswrite/internal/schemes"
	"tetriswrite/internal/workload"
)

// faultProfile concentrates writes on a tiny working set so cells wear
// out within a small instruction budget.
func faultProfile(t *testing.T) workload.Profile {
	t.Helper()
	prof, err := workload.ProfileByName("vips")
	if err != nil {
		t.Fatal(err)
	}
	prof.PrivateLines = 8
	prof.SharedLines = 8
	return prof
}

func faultConfig() Config {
	return Config{
		InstrBudget: 80_000,
		Cores:       2,
		Seed:        1,
		Fault: fault.Config{
			// Absurdly low endurance (real PCM: ~10^8) so wear-out
			// happens within a test-sized write budget.
			Seed:          7,
			Endurance:     3,
			EnduranceCV:   0.25,
			TransientRate: 0.002,
		},
		SpareLines: 32,
	}
}

// A fault-enabled run exercises the whole recovery ladder: verifies,
// retries, wear-out stuck cells, hard errors and spare remaps — and
// finishes with correct results despite them.
func TestRunWithFaultsRecovers(t *testing.T) {
	res, err := Run(faultProfile(t), schemes.NewDCW, faultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Fault == nil || res.Spare == nil {
		t.Fatal("fault/spare stats missing from a fault-enabled run")
	}
	st := res.Ctrl
	if st.Verifies == 0 {
		t.Error("no verifies despite VerifyWrites being forced on")
	}
	if st.Retries == 0 {
		t.Error("no retries; the fault config is meant to provoke failures")
	}
	if res.Fault.StuckCells == 0 {
		t.Error("no cells wore out at endurance 3 on a 16-line working set")
	}
	if st.HardErrors == 0 {
		t.Error("no hard errors escalated")
	}
	if res.Spare.RemappedLines == 0 {
		t.Error("no lines remapped to spares")
	}
	// Every hard error either burned a spare, re-issued to an existing
	// remap (a write queued to the dead line before its redirect), or
	// found the spares exhausted.
	if res.Spare.RemappedLines+res.Spare.Exhausted > st.HardErrors {
		t.Errorf("remaps %d + exhausted %d exceed hard errors %d",
			res.Spare.RemappedLines, res.Spare.Exhausted, st.HardErrors)
	}
	if res.Spare.RepairWrites < res.Spare.RemappedLines {
		t.Errorf("repair writes %d < remapped lines %d", res.Spare.RepairWrites, res.Spare.RemappedLines)
	}
	if st.VerifyOverhead <= 0 {
		t.Error("verify overhead not charged")
	}
}

// Same fault seed, same everything: bit-identical failure history. This
// is the determinism guarantee the docs promise.
func TestRunWithFaultsDeterministic(t *testing.T) {
	prof := faultProfile(t)
	a, err := Run(prof, schemes.NewDCW, faultConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(prof, schemes.NewDCW, faultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.Ctrl.Retries != b.Ctrl.Retries ||
		a.Ctrl.HardErrors != b.Ctrl.HardErrors ||
		a.Ctrl.Verifies != b.Ctrl.Verifies {
		t.Errorf("controller counters differ: %+v vs %+v", a.Ctrl, b.Ctrl)
	}
	if *a.Fault != *b.Fault {
		t.Errorf("injector stats differ: %+v vs %+v", *a.Fault, *b.Fault)
	}
	if *a.Spare != *b.Spare {
		t.Errorf("spare stats differ: %+v vs %+v", *a.Spare, *b.Spare)
	}
	if a.RunningTime != b.RunningTime {
		t.Errorf("running time differs: %v vs %v", a.RunningTime, b.RunningTime)
	}
	// A different fault seed fails differently.
	cfg := faultConfig()
	cfg.Fault.Seed = 8
	c, err := Run(prof, schemes.NewDCW, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if *a.Fault == *c.Fault && a.Ctrl.Retries == c.Ctrl.Retries {
		t.Error("different fault seeds produced identical failure histories")
	}
}

// With the fault model disabled (the default), results are bit-identical
// to a config that never mentions faults: the fault path is opt-in.
func TestFaultsDisabledIsIdentical(t *testing.T) {
	prof, err := workload.ProfileByName("canneal")
	if err != nil {
		t.Fatal(err)
	}
	base := Config{InstrBudget: 40_000, Cores: 2, Seed: 3}
	a, err := Run(prof, schemes.NewDCW, base)
	if err != nil {
		t.Fatal(err)
	}
	withZero := base
	withZero.Fault = fault.Config{Seed: 99} // a seed alone enables nothing
	withZero.SpareLines = 128
	b, err := Run(prof, schemes.NewDCW, withZero)
	if err != nil {
		t.Fatal(err)
	}
	if a.RunningTime != b.RunningTime || a.IPC != b.IPC || a.Energy != b.Energy {
		t.Errorf("zero-value fault config changed results: %v/%v vs %v/%v",
			a.RunningTime, a.IPC, b.RunningTime, b.IPC)
	}
	if a.Ctrl.BitSets != b.Ctrl.BitSets || a.Ctrl.BitResets != b.Ctrl.BitResets ||
		a.Ctrl.Writes != b.Ctrl.Writes || a.Ctrl.Drains != b.Ctrl.Drains {
		t.Errorf("controller stats changed: %+v vs %+v", a.Ctrl, b.Ctrl)
	}
	if b.Fault != nil || b.Spare != nil {
		t.Error("fault stats reported for a disabled model")
	}
	if a.Ctrl.Verifies != 0 {
		t.Error("verify ran on an ideal device")
	}
}

// Faults compose with Start-Gap wear leveling: the stack is
// cpu -> startgap -> sparing -> controller, and a run with both finishes
// with consistent counters.
func TestFaultsComposeWithWearLeveling(t *testing.T) {
	cfg := faultConfig()
	cfg.WearLevelPsi = 50
	res, err := Run(faultProfile(t), schemes.NewDCW, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Remap == nil || res.Remap.GapMoves == 0 {
		t.Error("wear leveling inactive under faults")
	}
	if res.Fault == nil || res.Ctrl.Verifies == 0 {
		t.Error("fault model inactive under wear leveling")
	}
}
