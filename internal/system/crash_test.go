package system

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"tetriswrite/internal/crash"
	"tetriswrite/internal/schemes"
	"tetriswrite/internal/tetris"
	"tetriswrite/internal/units"
	"tetriswrite/internal/workload"
)

// A full-system run cut at a pulse boundary surfaces the surviving
// image through the error chain, Recover repairs every in-flight line,
// and the crash.* counters ride the telemetry sampler like any other
// layer's.
func TestRunCutAtPulseRecovers(t *testing.T) {
	prof, _ := workload.ProfileByName("vips")
	cfg := smallConfig()
	cfg.Crash = crash.Config{AtPulse: 5_000}
	cfg.Epoch = 100 * units.Microsecond

	res, err := Run(prof, tetris.New, cfg)
	if err == nil {
		t.Fatal("crash-armed run finished without an error")
	}
	var re *RunError
	if !errors.As(err, &re) {
		t.Fatalf("cut not wrapped in a RunError: %v", err)
	}
	if re.Fp.Workload != "vips" || re.Fp.Scheme != "tetris" {
		t.Errorf("fingerprint %+v lost the run labels", re.Fp)
	}
	var ce *crash.CutError
	if !errors.As(err, &ce) {
		t.Fatalf("cut not reachable via errors.As: %v", err)
	}
	img := ce.Image
	if img == nil || img.Dev == nil || img.Shadow == nil {
		t.Fatal("cut image incomplete")
	}
	if img.PulsesIssued < 5_000 {
		t.Errorf("cut after %d pulses, trigger was 5000", img.PulsesIssued)
	}
	if len(img.Intents) == 0 {
		t.Fatal("no intents in flight at a mid-run pulse cut")
	}

	// Partial statistics survive the abort, and the sampler carries the
	// injector's counters.
	if res.Ctrl.Writes == 0 {
		t.Error("no partial statistics on the aborted result")
	}
	if res.Telemetry == nil {
		t.Fatal("no telemetry on the aborted result")
	}
	found := false
	for _, n := range res.Telemetry.SeriesNames() {
		if strings.HasPrefix(n, "crash.") {
			found = true
			break
		}
	}
	if !found {
		t.Errorf("no crash.* series among %v", res.Telemetry.SeriesNames())
	}

	rep, err := Recover(img)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Intents != len(img.Intents) {
		t.Errorf("recovery covered %d of %d intents", rep.Intents, len(img.Intents))
	}
	buf := make([]byte, img.Params.LineBytes)
	for _, in := range img.Intents {
		img.Dev.PeekLine(in.Addr, buf)
		if !bytes.Equal(buf, in.Want) {
			t.Errorf("intent line %d not recovered to its intended data", in.Addr)
		}
	}
}

// The two failure substrates are mutually exclusive: injected cell
// faults would make the device drift from the crash shadow's pure
// pulse-train model, so arming both must be rejected up front.
func TestRunCrashRejectsFaultModel(t *testing.T) {
	cfg := faultConfig()
	cfg.Crash = crash.Config{AtPulse: 100}
	_, err := Run(faultProfile(t), schemes.NewDCW, cfg)
	if err == nil {
		t.Fatal("crash injection accepted alongside the fault model")
	}
	if !strings.Contains(err.Error(), "incompatible") {
		t.Errorf("error does not explain the incompatibility: %v", err)
	}
}

// Recover on a nil image is a caller bug and must not panic.
func TestRecoverNilImage(t *testing.T) {
	if _, err := Recover(nil); err == nil {
		t.Error("Recover(nil) returned no error")
	}
}
