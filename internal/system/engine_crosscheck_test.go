package system

import (
	"reflect"
	"testing"

	"tetriswrite/internal/schemes"
	"tetriswrite/internal/sim"
	"tetriswrite/internal/tetris"
	"tetriswrite/internal/workload"
)

// TestEngineQueueCrossCheck is the seed-vs-new acceptance gate for the
// timing-wheel engine: over the full 8-workload sweep and every write
// scheme, the wheel must produce a Result bit-identical to the binary
// heap the simulator shipped with. Any divergence — a reordered event, a
// dropped tiebreak, a wheel cascade landing one tick off — shows up here
// as a DeepEqual failure on the complete statistics struct (latencies,
// energy, per-core stats, controller histograms).
func TestEngineQueueCrossCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("full workload x scheme sweep")
	}
	factories := map[string]schemes.Factory{
		"conventional": schemes.NewConventional,
		"dcw":          schemes.NewDCW,
		"fnw":          schemes.NewFlipNWrite,
		"twostage":     schemes.NewTwoStage,
		"threestage":   schemes.NewThreeStage,
		"tetris":       tetris.New,
	}
	names := []string{"conventional", "dcw", "fnw", "twostage", "threestage", "tetris"}
	for _, prof := range workload.Profiles() {
		for _, name := range names {
			prof, name := prof, name
			t.Run(prof.Name+"/"+name, func(t *testing.T) {
				t.Parallel()
				cfg := Config{InstrBudget: 60_000, Seed: 7}
				cfg.EngineQueue = sim.QueueHeap
				heap, err := Run(prof, factories[name], cfg)
				if err != nil {
					t.Fatal(err)
				}
				cfg.EngineQueue = sim.QueueWheel
				wheel, err := Run(prof, factories[name], cfg)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(heap, wheel) {
					t.Errorf("heap and wheel engines diverged:\nheap:  %+v\nwheel: %+v", heap, wheel)
				}
			})
		}
	}
}

// TestEngineQueueCrossCheckFaults repeats the cross-check on the one
// configuration whose event pattern differs most from the plain sweep:
// verify-retry loops, hard-error sparing and Start-Gap wear leveling all
// enabled at once. These layers schedule same-cycle follow-up events and
// far-future maintenance work — exactly the orderings the wheel's
// sequence tiebreak and overflow heap must preserve.
func TestEngineQueueCrossCheckFaults(t *testing.T) {
	prof := faultProfile(t)
	base := faultConfig()
	base.WearLevelPsi = 50
	base.EngineQueue = sim.QueueHeap
	heap, err := Run(prof, tetris.New, base)
	if err != nil {
		t.Fatal(err)
	}
	base.EngineQueue = sim.QueueWheel
	wheel, err := Run(prof, tetris.New, base)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(heap, wheel) {
		t.Errorf("heap and wheel engines diverged under faults:\nheap:  %+v\nwheel: %+v", heap, wheel)
	}
}
