package system

import (
	"fmt"

	"tetriswrite/internal/crash"
	"tetriswrite/internal/memctrl"
	"tetriswrite/internal/pcm"
	"tetriswrite/internal/sim"
	"tetriswrite/internal/telemetry"
)

// attachCrash builds, binds and attaches the power-failure injector
// when Config.Crash is armed. It returns nil with no side effects for
// the zero config, keeping the zero-crash run bit-identical to the
// seed. faultsOn reports whether the fault model is active — the two
// substrates are mutually exclusive, because injected cell failures
// make the device drift from the crash shadow's pulse-train model.
func attachCrash(eng *sim.Engine, dev *pcm.Device, ctrl *memctrl.Controller, cfg Config, faultsOn bool) (*crash.Injector, error) {
	if !cfg.Crash.Enabled() {
		return nil, nil
	}
	if faultsOn {
		return nil, fmt.Errorf("system: crash injection is incompatible with the fault model")
	}
	cinj, err := crash.New(cfg.Crash, cfg.Params)
	if err != nil {
		return nil, err
	}
	cinj.Bind(eng, dev, ctrl.Schemes())
	if err := ctrl.SetCrash(cinj); err != nil {
		return nil, err
	}
	return cinj, nil
}

// Recover replays the surviving intent log against the crashed image:
// per-scheme torn-state classification, flip-tag re-anchoring, and a
// repair write per non-clean line, after which every intent line holds
// its intended data. The caller reaches the Image by unwrapping the
// aborted run's error to *crash.CutError. To resume the run, build a
// fresh engine and hand the image's device and scheme instances to
// memctrl.NewWithSchemes, then replay the unacknowledged writes.
func Recover(img *crash.Image) (*crash.Report, error) {
	if img == nil {
		return nil, fmt.Errorf("system: Recover with no crash image")
	}
	return crash.Recover(img)
}

// registerCrashMetrics registers the injector's live crash.* counters.
func registerCrashMetrics(reg *telemetry.Registry, cinj *crash.Injector) {
	type series struct {
		name, help string
	}
	var names []series
	cinj.Stats(func(name string, _ float64) {
		names = append(names, series{name, "crash substrate: " + name})
	})
	for _, s := range names {
		name := s.name
		reg.CounterFunc(name, s.help, func() float64 {
			var v float64
			cinj.Stats(func(n string, val float64) {
				if n == name {
					v = val
				}
			})
			return v
		})
	}
}
