// Package system assembles the full evaluation platform of the paper's
// Table II: four 2 GHz cores running one multi-threaded workload, a
// read-priority memory controller with 32-entry queues, and 8 banks of
// SLC PCM programmed by a pluggable write scheme. One Run produces the
// metrics every figure of the evaluation is built from: average read and
// write latency, per-write write units, IPC, and application running
// time.
package system

import (
	"fmt"

	"tetriswrite/internal/cache"
	"tetriswrite/internal/cpu"
	"tetriswrite/internal/fault"
	"tetriswrite/internal/memctrl"
	"tetriswrite/internal/pcm"
	"tetriswrite/internal/schemes"
	"tetriswrite/internal/sim"
	"tetriswrite/internal/telemetry"
	"tetriswrite/internal/trace"
	"tetriswrite/internal/units"
	"tetriswrite/internal/wearlevel"
	"tetriswrite/internal/workload"
)

// Config describes one full-system simulation.
type Config struct {
	Params      pcm.Params     // device configuration (Table II)
	Cores       int            // default 4
	CPUClock    units.Clock    // default 2 GHz
	InstrBudget int64          // instructions per core (default 1M)
	Ctrl        memctrl.Config // controller configuration
	Seed        int64          // workload seed

	// UseCaches interposes the Table II L1/L2/L3 hierarchy (or
	// CacheLevels, if set) between the cores and the controller. The
	// workload stream is then interpreted as CPU-level accesses; the
	// headline experiments leave this off because Table III's RPKI/WPKI
	// are memory-level counters.
	UseCaches   bool
	CacheLevels []cache.LevelConfig

	// WearLevelPsi, when positive, wraps the workload's resident working
	// set (the private and shared regions) in a Start-Gap wear-leveling
	// region with a gap move every psi writes, and tracks per-line wear.
	WearLevelPsi int
	// TrackWear attaches per-line wear accounting even without wear
	// leveling, so endurance experiments can compare the two.
	TrackWear bool

	// Fault configures the deterministic cell-failure model (wear-out
	// stuck-at cells, transient pulse failures). The zero value leaves
	// the device ideal and every path below bit-identical to a run
	// without this field. Enabling any failure mode also turns on the
	// controller's write-verify loop, and a spare region for hard-error
	// line remapping is carved from the top of the device.
	Fault fault.Config
	// SpareLines sizes the hard-error spare region (default 64 when the
	// fault model is enabled, ignored otherwise).
	SpareLines int

	// Epoch, when positive, attaches the telemetry sampler: every layer
	// registers its counters and a snapshot of all of them is taken each
	// Epoch of simulated time into Result.Telemetry. Zero (the default)
	// attaches nothing and the run is bit-identical to one without
	// telemetry — all instruments are polled, never pushed.
	Epoch units.Duration
	// MetricsRing caps the number of retained epochs (oldest evicted
	// first); 0 means telemetry.DefaultRingSize.
	MetricsRing int
}

// Normalize fills defaults in place.
func (c *Config) Normalize() {
	if c.Params.LineBytes == 0 {
		c.Params = pcm.DefaultParams()
	}
	if c.Cores <= 0 {
		c.Cores = 4
	}
	if (c.CPUClock == units.Clock{}) {
		c.CPUClock = units.NewClock(2e9)
	}
	if c.InstrBudget <= 0 {
		c.InstrBudget = 1_000_000
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// Result is the outcome of one simulation.
type Result struct {
	Workload string
	Scheme   string

	RunningTime    units.Duration // when the last core retired its budget
	IPC            float64        // summed per-core IPC (the paper's metric)
	ReadLatency    units.Duration // mean memory read latency
	WriteLatency   units.Duration // mean memory write latency
	WriteUnits     float64        // mean write units per line write (Fig 10)
	Energy         float64        // programming energy, SET-current x ns units
	EnergyPerWrite float64

	Ctrl   memctrl.Stats
	Cores  []cpu.Stats
	Caches []cache.Stats // per level, only with UseCaches

	// Wear reports the per-line wear distribution (with TrackWear or
	// WearLevelPsi), and Remap the wear-leveling activity (with
	// WearLevelPsi).
	Wear  *pcm.WearSummary
	Remap *wearlevel.RemapStats

	// Fault reports injector activity and Spare the hard-error sparing
	// activity; both nil unless Config.Fault enables a failure mode.
	Fault *fault.Stats
	Spare *fault.SpareStats

	// Telemetry holds the epoch time series recorded during the run; nil
	// unless Config.Epoch was set.
	Telemetry *telemetry.Sampler
}

// preloadPort interposes on the core->memory path to install each line's
// initial contents in the device before its first access, so the write
// schemes see the workload's real data transitions rather than
// transitions from an artificially blank array. With wear leveling the
// install happens at the line's *current physical* slot, via translate.
type preloadPort struct {
	down      cpu.MemPort
	dev       *pcm.Device
	prog      *workload.Program
	seen      map[pcm.LineAddr]struct{}
	translate func(pcm.LineAddr) pcm.LineAddr
}

func (p *preloadPort) ensure(addr pcm.LineAddr) {
	if _, ok := p.seen[addr]; ok {
		return
	}
	p.seen[addr] = struct{}{}
	phys := addr
	if p.translate != nil {
		phys = p.translate(addr)
	}
	p.dev.Preload(phys, p.prog.InitialContents(addr))
}

func (p *preloadPort) SubmitRead(addr pcm.LineAddr, onDone func(at units.Time, data []byte)) bool {
	p.ensure(addr)
	return p.down.SubmitRead(addr, onDone)
}

func (p *preloadPort) SubmitWrite(addr pcm.LineAddr, data []byte, onDone func(at units.Time)) bool {
	p.ensure(addr)
	return p.down.SubmitWrite(addr, data, onDone)
}

func (p *preloadPort) WhenWriteSpace(fn func()) { p.down.WhenWriteSpace(fn) }

// Run simulates one workload under one write scheme.
func Run(prof workload.Profile, factory schemes.Factory, cfg Config) (Result, error) {
	cfg.Normalize()
	if err := cfg.Params.Validate(); err != nil {
		return Result{}, fmt.Errorf("system: %w", err)
	}
	eng := &sim.Engine{}
	dev, err := pcm.NewDevice(cfg.Params)
	if err != nil {
		return Result{}, err
	}

	// Optional deterministic fault model: the injector fails pulses at
	// the device, the controller verifies and retries, and hard errors
	// drain into a spare region at the top of the device.
	var inj *fault.Injector
	if cfg.Fault.Enabled() {
		if inj, err = fault.New(cfg.Fault); err != nil {
			return Result{}, err
		}
		dev.AttachFaults(inj)
		cfg.Ctrl.VerifyWrites = true
	}

	ctrl := memctrl.New(eng, dev, factory, cfg.Ctrl)
	prog := workload.NewProgram(prof, cfg.Cores, cfg.Seed, cfg.Params)

	var spare *fault.SpareRemapper
	var memBase wearlevel.Mem = ctrl
	snoop := ctrl.Snoop
	if inj != nil {
		spares := cfg.SpareLines
		if spares <= 0 {
			spares = 64
		}
		base := pcm.LineAddr(cfg.Params.Lines() - int64(spares))
		spare, err = fault.NewSpareRemapper(ctrl, base, spares, ctrl.Snoop)
		if err != nil {
			return Result{}, err
		}
		ctrl.SetHardErrorHandler(spare.OnHardError)
		memBase = spare
		snoop = spare.Snoop
	}

	var wear *pcm.WearTracker
	if cfg.TrackWear || cfg.WearLevelPsi > 0 {
		// Wear is recorded at the controller, keyed by physical line and
		// counting the scheme's actual pulses (redundant pulses wear
		// cells too, which is how non-comparing schemes hurt endurance).
		wear = pcm.NewWearTracker()
		ctrl.SetWearTracker(wear)
	}

	// Optional Start-Gap wear leveling over the resident working set.
	// Ordering: Start-Gap translates logical lines to rotating physical
	// slots, and the sparing layer below redirects physical slots that
	// died — the gap rotation never sees hard errors.
	var down cpu.MemPort = memBase
	var remap *wearlevel.Remapper
	var translate func(pcm.LineAddr) pcm.LineAddr
	if cfg.WearLevelPsi > 0 {
		np := prog.Profile()
		resident := int64(cfg.Cores)*int64(np.PrivateLines) + int64(np.SharedLines)
		region, rerr := wearlevel.NewRegion(0, resident, cfg.WearLevelPsi)
		if rerr != nil {
			return Result{}, rerr
		}
		remap = wearlevel.NewRemapper(memBase, region, cfg.Params.LineBytes, snoop)
		down = remap
		translate = region.Translate
	}

	preload := &preloadPort{down: down, dev: dev, prog: prog,
		seen: make(map[pcm.LineAddr]struct{}), translate: translate}

	var port cpu.MemPort = preload
	var hier *cache.Hierarchy
	if cfg.UseCaches {
		levels := cfg.CacheLevels
		if levels == nil {
			levels = cache.DefaultLevels(cfg.CPUClock)
		}
		hier, err = cache.New(eng, preload, levels)
		if err != nil {
			return Result{}, err
		}
		port = hier
		if cfg.Ctrl.IdlePreset {
			// PreSET: dirty-transition hints flow from the LLC to the
			// controller, which checks dirtiness again before acting.
			ctrl.SetDirtyChecker(hier.IsDirty)
			hier.OnDirty = func(addr pcm.LineAddr) {
				preload.ensure(addr)
				ctrl.PresetHint(addr)
			}
		}
	} else if cfg.Ctrl.IdlePreset {
		return Result{}, fmt.Errorf("system: IdlePreset requires UseCaches (hints come from LLC dirtiness)")
	}

	cores := make([]*cpu.Core, cfg.Cores)
	remaining := cfg.Cores
	var lastFinish units.Time
	for i := range cores {
		cores[i] = cpu.New(eng, cfg.CPUClock, prog.Generator(i), port, cfg.InstrBudget, func() {
			remaining--
			if t := eng.Now(); t > lastFinish {
				lastFinish = t
			}
			if remaining == 0 {
				// Flush outstanding writes so their latency is counted.
				ctrl.WhenIdle(func() {})
			}
		})
		cores[i].Start()
	}
	var sampler *telemetry.Sampler
	if cfg.Epoch > 0 {
		sampler = attachTelemetry(eng, cfg, telemetryParts{
			ctrl: ctrl, dev: dev, hier: hier, remap: remap,
			inj: inj, spare: spare, cores: cores, clock: cfg.CPUClock,
		})
	}
	eng.Run()
	if remaining != 0 {
		return Result{}, fmt.Errorf("system: %d cores never finished (deadlock?)", remaining)
	}

	st := ctrl.Stats()
	res := Result{
		Workload:     prof.Name,
		Scheme:       factory(cfg.Params).Name(),
		RunningTime:  units.Duration(lastFinish),
		ReadLatency:  st.ReadLatency.Mean(),
		WriteLatency: st.WriteLatency.Mean(),
		Ctrl:         st,
	}
	if n := st.WriteLatency.Count(); n > 0 {
		res.WriteUnits = st.WriteUnits / float64(n)
	}
	model := pcm.EnergyModelFor(cfg.Params)
	res.Energy = model.WriteEnergy(int(st.BitSets), int(st.BitResets))
	if n := st.WriteLatency.Count(); n > 0 {
		res.EnergyPerWrite = res.Energy / float64(n)
	}
	for _, c := range cores {
		cs := c.Stats()
		res.Cores = append(res.Cores, cs)
		res.IPC += cs.IPC(cfg.CPUClock, eng.Now())
	}
	if hier != nil {
		res.Caches = hier.LevelStats()
	}
	if wear != nil {
		sum := wear.Summary()
		res.Wear = &sum
	}
	if remap != nil {
		rs := remap.Stats()
		res.Remap = &rs
	}
	if inj != nil {
		fs := inj.Stats()
		res.Fault = &fs
		ss := spare.Stats()
		res.Spare = &ss
	}
	res.Telemetry = sampler
	return res, nil
}

// RunTrace replays a pre-recorded memory trace through the platform
// instead of generating operations on the fly: same controller, banks and
// cores, but each core's stream comes from the trace's records. The
// workload name is only a label; data contents come from the trace
// payloads (the device starts zeroed, as traces carry absolute line
// images).
func RunTrace(label string, recs []trace.Record, cores int, factory schemes.Factory, cfg Config) (Result, error) {
	cfg.Cores = cores
	cfg.Normalize()
	if err := cfg.Params.Validate(); err != nil {
		return Result{}, fmt.Errorf("system: %w", err)
	}
	eng := &sim.Engine{}
	dev, err := pcm.NewDevice(cfg.Params)
	if err != nil {
		return Result{}, err
	}

	var inj *fault.Injector
	if cfg.Fault.Enabled() {
		if inj, err = fault.New(cfg.Fault); err != nil {
			return Result{}, err
		}
		dev.AttachFaults(inj)
		cfg.Ctrl.VerifyWrites = true
	}

	ctrl := memctrl.New(eng, dev, factory, cfg.Ctrl)

	var spare *fault.SpareRemapper
	var port cpu.MemPort = ctrl
	if inj != nil {
		spares := cfg.SpareLines
		if spares <= 0 {
			spares = 64
		}
		base := pcm.LineAddr(cfg.Params.Lines() - int64(spares))
		spare, err = fault.NewSpareRemapper(ctrl, base, spares, ctrl.Snoop)
		if err != nil {
			return Result{}, err
		}
		ctrl.SetHardErrorHandler(spare.OnHardError)
		port = spare
	}

	// Optional cache hierarchy, same placement as in Run. Traces carry
	// absolute line images over a zeroed device, so no preload layer is
	// needed; PreSET hints flow straight from the LLC to the controller.
	var hier *cache.Hierarchy
	if cfg.UseCaches {
		levels := cfg.CacheLevels
		if levels == nil {
			levels = cache.DefaultLevels(cfg.CPUClock)
		}
		hier, err = cache.New(eng, port, levels)
		if err != nil {
			return Result{}, err
		}
		if cfg.Ctrl.IdlePreset {
			ctrl.SetDirtyChecker(hier.IsDirty)
			hier.OnDirty = ctrl.PresetHint
		}
		port = hier
	} else if cfg.Ctrl.IdlePreset {
		return Result{}, fmt.Errorf("system: IdlePreset requires UseCaches (hints come from LLC dirtiness)")
	}

	cpuCores := make([]*cpu.Core, cfg.Cores)
	remaining := cfg.Cores
	var lastFinish units.Time
	for i := range cpuCores {
		src := trace.NewCoreSource(recs, i)
		cpuCores[i] = cpu.New(eng, cfg.CPUClock, src, port, cfg.InstrBudget, func() {
			remaining--
			if t := eng.Now(); t > lastFinish {
				lastFinish = t
			}
			if remaining == 0 {
				ctrl.WhenIdle(func() {})
			}
		})
		cpuCores[i].Start()
	}
	var sampler *telemetry.Sampler
	if cfg.Epoch > 0 {
		sampler = attachTelemetry(eng, cfg, telemetryParts{
			ctrl: ctrl, dev: dev, hier: hier,
			inj: inj, spare: spare, cores: cpuCores, clock: cfg.CPUClock,
		})
	}
	eng.Run()
	if remaining != 0 {
		return Result{}, fmt.Errorf("system: %d cores never finished (deadlock?)", remaining)
	}

	st := ctrl.Stats()
	res := Result{
		Workload:     label + " (trace)",
		Scheme:       factory(cfg.Params).Name(),
		RunningTime:  units.Duration(lastFinish),
		ReadLatency:  st.ReadLatency.Mean(),
		WriteLatency: st.WriteLatency.Mean(),
		Ctrl:         st,
	}
	if n := st.WriteLatency.Count(); n > 0 {
		res.WriteUnits = st.WriteUnits / float64(n)
	}
	model := pcm.EnergyModelFor(cfg.Params)
	res.Energy = model.WriteEnergy(int(st.BitSets), int(st.BitResets))
	if n := st.WriteLatency.Count(); n > 0 {
		res.EnergyPerWrite = res.Energy / float64(n)
	}
	for _, c := range cpuCores {
		cs := c.Stats()
		res.Cores = append(res.Cores, cs)
		res.IPC += cs.IPC(cfg.CPUClock, eng.Now())
	}
	if hier != nil {
		res.Caches = hier.LevelStats()
	}
	if inj != nil {
		fs := inj.Stats()
		res.Fault = &fs
		ss := spare.Stats()
		res.Spare = &ss
	}
	res.Telemetry = sampler
	return res, nil
}
