// Package system assembles the full evaluation platform of the paper's
// Table II: four 2 GHz cores running one multi-threaded workload, a
// read-priority memory controller with 32-entry queues, and 8 banks of
// SLC PCM programmed by a pluggable write scheme. One Run produces the
// metrics every figure of the evaluation is built from: average read and
// write latency, per-write write units, IPC, and application running
// time.
//
// Runs are hardened: RunCtx and RunTraceCtx accept a context and a
// watchdog budget (MaxEvents, MaxSimTime) so a livelocked scheduler
// terminates diagnosably instead of hanging the caller; panics escaping
// the simulation are converted to *PanicError carrying the run
// fingerprint; and Config.Guard threads a runtime invariant checker
// through the controller. An aborted run still returns the partial
// Result gathered so far alongside its error, with the telemetry
// sampler finalized so in-progress epochs are exported rather than
// lost.
package system

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"

	"tetriswrite/internal/cache"
	"tetriswrite/internal/cpu"
	"tetriswrite/internal/crash"
	"tetriswrite/internal/fault"
	"tetriswrite/internal/guard"
	"tetriswrite/internal/linestore"
	"tetriswrite/internal/memctrl"
	"tetriswrite/internal/pcm"
	"tetriswrite/internal/schemes"
	"tetriswrite/internal/sim"
	"tetriswrite/internal/telemetry"
	"tetriswrite/internal/trace"
	"tetriswrite/internal/units"
	"tetriswrite/internal/wearlevel"
	"tetriswrite/internal/workload"
)

// Config describes one full-system simulation.
type Config struct {
	Params      pcm.Params     // device configuration (Table II)
	Cores       int            // default 4
	CPUClock    units.Clock    // default 2 GHz
	InstrBudget int64          // instructions per core (default 1M)
	Ctrl        memctrl.Config // controller configuration
	Seed        int64          // workload seed

	// UseCaches interposes the Table II L1/L2/L3 hierarchy (or
	// CacheLevels, if set) between the cores and the controller. The
	// workload stream is then interpreted as CPU-level accesses; the
	// headline experiments leave this off because Table III's RPKI/WPKI
	// are memory-level counters.
	UseCaches   bool
	CacheLevels []cache.LevelConfig

	// WearLevelPsi, when positive, wraps the workload's resident working
	// set (the private and shared regions) in a Start-Gap wear-leveling
	// region with a gap move every psi writes, and tracks per-line wear.
	WearLevelPsi int
	// TrackWear attaches per-line wear accounting even without wear
	// leveling, so endurance experiments can compare the two.
	TrackWear bool

	// Fault configures the deterministic cell-failure model (wear-out
	// stuck-at cells, transient pulse failures). The zero value leaves
	// the device ideal and every path below bit-identical to a run
	// without this field. Enabling any failure mode also turns on the
	// controller's write-verify loop, and a spare region for hard-error
	// line remapping is carved from the top of the device.
	Fault fault.Config
	// SpareLines sizes the hard-error spare region (default 64 when the
	// fault model is enabled, ignored otherwise).
	SpareLines int

	// Crash configures the deterministic power-failure injector: the run
	// is cut at the configured pulse/write/cycle boundary, the device
	// freezes at exactly the pulses completed so far, and the run
	// returns a *RunError wrapping *crash.CutError whose Image feeds
	// Recover. The zero value attaches nothing and the run is
	// bit-identical to one without this field. Incompatible with the
	// fault model (the device would drift from the crash shadow) and
	// with write pausing/cancellation and idle PreSET (they move or
	// bypass the frozen pulse schedule).
	Crash crash.Config

	// Epoch, when positive, attaches the telemetry sampler: every layer
	// registers its counters and a snapshot of all of them is taken each
	// Epoch of simulated time into Result.Telemetry. Zero (the default)
	// attaches nothing and the run is bit-identical to one without
	// telemetry — all instruments are polled, never pushed.
	Epoch units.Duration
	// MetricsRing caps the number of retained epochs (oldest evicted
	// first); 0 means telemetry.DefaultRingSize.
	MetricsRing int

	// Guard configures the runtime invariant checker threaded through
	// the memory controller: per issued write unit it validates power
	// budget, pulse coverage, queue bounds and clock monotonicity. The
	// first violation stops the engine and the run returns the
	// *guard.ViolationError. Checks only read state, so a guarded run is
	// bit-identical to an unguarded one.
	Guard guard.Config

	// EngineQueue selects the event-queue implementation behind the
	// simulation engine: sim.QueueWheel (the default, also chosen by the
	// empty string) or sim.QueueHeap. Both pop events in the identical
	// (time, sequence) order, so every Result is bit-identical whichever
	// backs the run — the cross-check tests sweep both to prove it. The
	// heap stays selectable for exactly that A/B purpose.
	EngineQueue sim.QueueKind

	// EngineMode selects serial (the default, also chosen by the empty
	// string) or parallel execution: with sim.EngineParallel the
	// controller plans each bank's writes on per-bank worker goroutines
	// under conservative-lookahead completion events. Results are
	// bit-identical either way — the cross-check sweep proves it over
	// every workload x scheme composition — so the mode is purely a
	// wall-clock optimization. Controller features that reshape plans
	// after issue (write pausing/cancellation, idle PreSET, verify,
	// crash hooks, deep guard checks) silently run serial regardless.
	EngineMode sim.EngineMode

	// MaxEvents and MaxSimTime bound the engine run (see sim.Watchdog):
	// 0 means unlimited. When a budget trips, the run returns a
	// *RunError wrapping the *sim.BudgetError together with the partial
	// Result gathered so far.
	MaxEvents  uint64
	MaxSimTime units.Duration
	// Heartbeat, when non-nil, receives watchdog progress reports —
	// the liveness signal of a long run.
	Heartbeat func(sim.Progress)
}

// Normalize fills defaults in place.
func (c *Config) Normalize() {
	if c.Params.LineBytes == 0 {
		c.Params = pcm.DefaultParams()
	}
	if c.Cores <= 0 {
		c.Cores = 4
	}
	if (c.CPUClock == units.Clock{}) {
		c.CPUClock = units.NewClock(2e9)
	}
	if c.InstrBudget <= 0 {
		c.InstrBudget = 1_000_000
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// watchdog builds the engine watchdog from the config budgets.
func (c *Config) watchdog() sim.Watchdog {
	return sim.Watchdog{MaxEvents: c.MaxEvents, MaxSimTime: c.MaxSimTime, Heartbeat: c.Heartbeat}
}

// Result is the outcome of one simulation.
type Result struct {
	Workload string
	Scheme   string

	RunningTime    units.Duration // when the last core retired its budget
	IPC            float64        // summed per-core IPC (the paper's metric)
	ReadLatency    units.Duration // mean memory read latency
	WriteLatency   units.Duration // mean memory write latency
	WriteUnits     float64        // mean write units per line write (Fig 10)
	Energy         float64        // programming energy, SET-current x ns units
	EnergyPerWrite float64

	Ctrl   memctrl.Stats
	Cores  []cpu.Stats
	Caches []cache.Stats // per level, only with UseCaches

	// Wear reports the per-line wear distribution (with TrackWear or
	// WearLevelPsi), and Remap the wear-leveling activity (with
	// WearLevelPsi).
	Wear  *pcm.WearSummary
	Remap *wearlevel.RemapStats

	// Fault reports injector activity and Spare the hard-error sparing
	// activity; both nil unless Config.Fault enables a failure mode.
	Fault *fault.Stats
	Spare *fault.SpareStats

	// Telemetry holds the epoch time series recorded during the run; nil
	// unless Config.Epoch was set.
	Telemetry *telemetry.Sampler

	// Guard counts the invariant checks performed; nil unless
	// Config.Guard was enabled.
	Guard *guard.Stats
}

// RunError wraps the error that aborted a run — cancellation, a tripped
// watchdog budget, or an engine Stop — with the fingerprint that
// reproduces it. The Result returned alongside holds the statistics
// gathered up to the abort.
type RunError struct {
	Fp  guard.Fingerprint
	Err error
}

func (e *RunError) Error() string {
	return fmt.Sprintf("system: run aborted [%s]: %v", e.Fp, e.Err)
}

func (e *RunError) Unwrap() error { return e.Err }

// PanicError is a panic that escaped the simulation, converted to an
// error so one corrupted cell of a parallel sweep becomes an error row
// instead of a crashed process. Stack holds the panicking goroutine's
// stack at recovery time.
type PanicError struct {
	Fp    guard.Fingerprint
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("system: panic during run [%s]: %v", e.Fp, e.Value)
}

// recoverRun converts a panic escaping the simulation into a
// *PanicError carrying the run fingerprint.
func recoverRun(err *error, eng *sim.Engine, fp guard.Fingerprint) {
	if p := recover(); p != nil {
		fp.Cycle = eng.Now()
		*err = &PanicError{Fp: fp, Value: p, Stack: debug.Stack()}
	}
}

// runEngine drives the engine under the configured watchdog and
// converts failures into fingerprinted errors. On any abort the sampler
// is finalized so the partial epoch in progress is exported.
func runEngine(ctx context.Context, eng *sim.Engine, cfg Config, fp guard.Fingerprint, sampler *telemetry.Sampler) error {
	err := eng.RunContext(ctx, cfg.watchdog())
	if err == nil {
		return nil
	}
	if sampler != nil {
		sampler.Finalize(eng.Now())
	}
	var v *guard.ViolationError
	if errors.As(err, &v) {
		return v // already carries the fingerprint and violation cycle
	}
	fp.Cycle = eng.Now()
	return &RunError{Fp: fp, Err: err}
}

// newGuard builds and wires the invariant checker, or returns nil when
// disabled. The first violation stops the engine immediately.
func newGuard(eng *sim.Engine, ctrl *memctrl.Controller, cfg Config, fp guard.Fingerprint) *guard.Guard {
	if !cfg.Guard.Enabled {
		return nil
	}
	g := guard.New(cfg.Params, cfg.Guard)
	g.SetFingerprint(fp.Seed, fp.Workload, fp.Scheme)
	g.OnViolation(func(v *guard.ViolationError) { eng.Stop(v) })
	ctrl.SetGuard(g)
	return g
}

// parts collects the layers a finished (or aborted) run reports from.
type parts struct {
	eng     *sim.Engine
	ctrl    *memctrl.Controller
	cores   []*cpu.Core
	hier    *cache.Hierarchy
	wear    *pcm.WearTracker
	remap   *wearlevel.Remapper
	inj     *fault.Injector
	spare   *fault.SpareRemapper
	sampler *telemetry.Sampler
	guard   *guard.Guard
}

// collectResult builds the Result from whatever state the platform holds
// — valid both after a clean drain and after an abort, where it yields
// the partial statistics.
func collectResult(workload, scheme string, cfg Config, lastFinish units.Time, p parts) Result {
	st := p.ctrl.Stats()
	res := Result{
		Workload:     workload,
		Scheme:       scheme,
		RunningTime:  units.Duration(lastFinish),
		ReadLatency:  st.ReadLatency.Mean(),
		WriteLatency: st.WriteLatency.Mean(),
		Ctrl:         st,
	}
	if n := st.WriteLatency.Count(); n > 0 {
		res.WriteUnits = st.WriteUnits / float64(n)
	}
	model := pcm.EnergyModelFor(cfg.Params)
	res.Energy = model.WriteEnergy(int(st.BitSets), int(st.BitResets))
	if n := st.WriteLatency.Count(); n > 0 {
		res.EnergyPerWrite = res.Energy / float64(n)
	}
	for _, c := range p.cores {
		cs := c.Stats()
		res.Cores = append(res.Cores, cs)
		res.IPC += cs.IPC(cfg.CPUClock, p.eng.Now())
	}
	if p.hier != nil {
		res.Caches = p.hier.LevelStats()
	}
	if p.wear != nil {
		sum := p.wear.Summary()
		res.Wear = &sum
	}
	if p.remap != nil {
		rs := p.remap.Stats()
		res.Remap = &rs
	}
	if p.inj != nil {
		fs := p.inj.Stats()
		res.Fault = &fs
		ss := p.spare.Stats()
		res.Spare = &ss
	}
	res.Telemetry = p.sampler
	if p.guard != nil {
		gs := p.guard.Stats()
		res.Guard = &gs
	}
	return res
}

// preloadPort interposes on the core->memory path to install each line's
// initial contents in the device before its first access, so the write
// schemes see the workload's real data transitions rather than
// transitions from an artificially blank array. With wear leveling the
// install happens at the line's *current physical* slot, via translate.
type preloadPort struct {
	down      cpu.MemPort
	dev       *pcm.Device
	prog      *workload.Program
	seen      *linestore.Set
	translate func(pcm.LineAddr) pcm.LineAddr
	initBuf   []byte // scratch for the initial image; Preload copies it
}

func (p *preloadPort) ensure(addr pcm.LineAddr) {
	if !p.seen.Add(int64(addr)) {
		return
	}
	phys := addr
	if p.translate != nil {
		phys = p.translate(addr)
	}
	if p.initBuf == nil {
		p.initBuf = make([]byte, p.dev.Params().LineBytes)
	}
	p.prog.InitialContentsInto(addr, p.initBuf)
	p.dev.Preload(phys, p.initBuf)
}

func (p *preloadPort) SubmitRead(addr pcm.LineAddr, onDone func(at units.Time, data []byte)) bool {
	p.ensure(addr)
	return p.down.SubmitRead(addr, onDone)
}

func (p *preloadPort) SubmitWrite(addr pcm.LineAddr, data []byte, onDone func(at units.Time)) bool {
	p.ensure(addr)
	return p.down.SubmitWrite(addr, data, onDone)
}

func (p *preloadPort) WhenWriteSpace(fn func()) { p.down.WhenWriteSpace(fn) }

// Run simulates one workload under one write scheme to completion.
func Run(prof workload.Profile, factory schemes.Factory, cfg Config) (Result, error) {
	return RunCtx(context.Background(), prof, factory, cfg)
}

// RunCtx is Run under a context: the run terminates early when ctx is
// cancelled, a watchdog budget trips, or the invariant guard detects a
// violation. On early termination the returned error identifies the
// cause (with the run fingerprint) and the Result still carries the
// partial statistics and finalized telemetry gathered up to that point.
func RunCtx(ctx context.Context, prof workload.Profile, factory schemes.Factory, cfg Config) (res Result, err error) {
	cfg.Normalize()
	if verr := cfg.Params.Validate(); verr != nil {
		return Result{}, fmt.Errorf("system: %w", verr)
	}
	if !cfg.EngineQueue.Valid() {
		return Result{}, fmt.Errorf("system: unknown engine queue %q", cfg.EngineQueue)
	}
	if !cfg.EngineMode.Valid() {
		return Result{}, fmt.Errorf("system: unknown engine mode %q", cfg.EngineMode)
	}
	cfg.Ctrl.ParallelBanks = cfg.EngineMode.Parallel()
	eng := sim.NewEngine(cfg.EngineQueue)
	fp := guard.Fingerprint{Seed: cfg.Seed, Workload: prof.Name, Scheme: factory(cfg.Params).Name()}
	defer recoverRun(&err, eng, fp)

	dev, err := pcm.NewDevice(cfg.Params)
	if err != nil {
		return Result{}, err
	}

	// Optional deterministic fault model: the injector fails pulses at
	// the device, the controller verifies and retries, and hard errors
	// drain into a spare region at the top of the device.
	var inj *fault.Injector
	if cfg.Fault.Enabled() {
		if inj, err = fault.New(cfg.Fault); err != nil {
			return Result{}, err
		}
		dev.AttachFaults(inj)
		cfg.Ctrl.VerifyWrites = true
	}

	ctrl := memctrl.New(eng, dev, factory, cfg.Ctrl)
	// Join the parallel controller's bank workers even when the run
	// panics out: recoverRun (registered earlier, so running later)
	// then reports a run with no goroutines left behind.
	defer ctrl.Close()
	ctrl.SetFingerprint(fp)
	cinj, err := attachCrash(eng, dev, ctrl, cfg, inj != nil)
	if err != nil {
		return Result{}, err
	}
	g := newGuard(eng, ctrl, cfg, fp)
	prog := workload.NewProgram(prof, cfg.Cores, cfg.Seed, cfg.Params)
	// Pre-size the cell store to the lines the run can plausibly touch —
	// the workload's address footprint, capped by its expected memory
	// access count — so the first-touch preload path skips the store's
	// doubling-and-rehash ladder without zeroing capacity a short run
	// never fills.
	accesses := int64(float64(cfg.InstrBudget) * float64(cfg.Cores) * (prof.RPKI + prof.WPKI) / 1000)
	if hint := prog.AddressFootprint(); hint > 0 {
		if accesses < hint {
			hint = accesses
		}
		dev.ReserveLines(hint)
	}

	var spare *fault.SpareRemapper
	var memBase wearlevel.Mem = ctrl
	snoop := ctrl.Snoop
	if inj != nil {
		spares := cfg.SpareLines
		if spares <= 0 {
			spares = 64
		}
		base := pcm.LineAddr(cfg.Params.Lines() - int64(spares))
		spare, err = fault.NewSpareRemapper(ctrl, base, spares, ctrl.Snoop)
		if err != nil {
			return Result{}, err
		}
		ctrl.SetHardErrorHandler(spare.OnHardError)
		memBase = spare
		snoop = spare.Snoop
	}

	var wear *pcm.WearTracker
	if cfg.TrackWear || cfg.WearLevelPsi > 0 {
		// Wear is recorded at the controller, keyed by physical line and
		// counting the scheme's actual pulses (redundant pulses wear
		// cells too, which is how non-comparing schemes hurt endurance).
		wear = pcm.NewWearTracker()
		ctrl.SetWearTracker(wear)
	}

	// Optional Start-Gap wear leveling over the resident working set.
	// Ordering: Start-Gap translates logical lines to rotating physical
	// slots, and the sparing layer below redirects physical slots that
	// died — the gap rotation never sees hard errors.
	var down cpu.MemPort = memBase
	var remap *wearlevel.Remapper
	var translate func(pcm.LineAddr) pcm.LineAddr
	if cfg.WearLevelPsi > 0 {
		np := prog.Profile()
		resident := int64(cfg.Cores)*int64(np.PrivateLines) + int64(np.SharedLines)
		region, rerr := wearlevel.NewRegion(0, resident, cfg.WearLevelPsi)
		if rerr != nil {
			return Result{}, rerr
		}
		remap = wearlevel.NewRemapper(memBase, region, cfg.Params.LineBytes, snoop)
		down = remap
		translate = region.Translate
	}

	preload := &preloadPort{down: down, dev: dev, prog: prog,
		seen: linestore.NewSet(), translate: translate}

	var port cpu.MemPort = preload
	var hier *cache.Hierarchy
	if cfg.UseCaches {
		levels := cfg.CacheLevels
		if levels == nil {
			levels = cache.DefaultLevels(cfg.CPUClock)
		}
		hier, err = cache.New(eng, preload, levels)
		if err != nil {
			return Result{}, err
		}
		port = hier
		if cfg.Ctrl.IdlePreset {
			// PreSET: dirty-transition hints flow from the LLC to the
			// controller, which checks dirtiness again before acting.
			ctrl.SetDirtyChecker(hier.IsDirty)
			hier.OnDirty = func(addr pcm.LineAddr) {
				preload.ensure(addr)
				ctrl.PresetHint(addr)
			}
		}
	} else if cfg.Ctrl.IdlePreset {
		return Result{}, fmt.Errorf("system: IdlePreset requires UseCaches (hints come from LLC dirtiness)")
	}

	cores := make([]*cpu.Core, cfg.Cores)
	remaining := cfg.Cores
	var lastFinish units.Time
	for i := range cores {
		cores[i] = cpu.New(eng, cfg.CPUClock, prog.Generator(i), port, cfg.InstrBudget, func() {
			remaining--
			if t := eng.Now(); t > lastFinish {
				lastFinish = t
			}
			if remaining == 0 {
				// Flush outstanding writes so their latency is counted.
				ctrl.WhenIdle(func() {})
			}
		})
		cores[i].Start()
	}
	var sampler *telemetry.Sampler
	if cfg.Epoch > 0 {
		sampler = attachTelemetry(eng, cfg, telemetryParts{
			ctrl: ctrl, dev: dev, hier: hier, remap: remap,
			inj: inj, spare: spare, cores: cores, clock: cfg.CPUClock,
			crash: cinj,
		})
	}
	runErr := runEngine(ctx, eng, cfg, fp, sampler)
	// An aborted parallel run may hold write plans still in flight on
	// bank workers; Close commits them in issue order so the partial
	// statistics match what the serial engine would have accumulated.
	ctrl.Close()
	res = collectResult(prof.Name, fp.Scheme, cfg, lastFinish, parts{
		eng: eng, ctrl: ctrl, cores: cores, hier: hier, wear: wear,
		remap: remap, inj: inj, spare: spare, sampler: sampler, guard: g,
	})
	if runErr != nil {
		return res, runErr
	}
	if remaining != 0 {
		return res, fmt.Errorf("system: %d cores never finished (deadlock?)", remaining)
	}
	return res, nil
}

// RunTrace replays a pre-recorded memory trace through the platform
// instead of generating operations on the fly: same controller, banks and
// cores, but each core's stream comes from the trace's records. The
// workload name is only a label; data contents come from the trace
// payloads (the device starts zeroed, as traces carry absolute line
// images).
func RunTrace(label string, recs []trace.Record, cores int, factory schemes.Factory, cfg Config) (Result, error) {
	return RunTraceCtx(context.Background(), label, recs, cores, factory, cfg)
}

// RunTraceCtx is RunTrace under a context, with the same early-
// termination and partial-result semantics as RunCtx.
func RunTraceCtx(ctx context.Context, label string, recs []trace.Record, cores int, factory schemes.Factory, cfg Config) (res Result, err error) {
	cfg.Cores = cores
	cfg.Normalize()
	if verr := cfg.Params.Validate(); verr != nil {
		return Result{}, fmt.Errorf("system: %w", verr)
	}
	if !cfg.EngineQueue.Valid() {
		return Result{}, fmt.Errorf("system: unknown engine queue %q", cfg.EngineQueue)
	}
	if !cfg.EngineMode.Valid() {
		return Result{}, fmt.Errorf("system: unknown engine mode %q", cfg.EngineMode)
	}
	cfg.Ctrl.ParallelBanks = cfg.EngineMode.Parallel()
	eng := sim.NewEngine(cfg.EngineQueue)
	fp := guard.Fingerprint{Seed: cfg.Seed, Workload: label, Scheme: factory(cfg.Params).Name()}
	defer recoverRun(&err, eng, fp)

	dev, err := pcm.NewDevice(cfg.Params)
	if err != nil {
		return Result{}, err
	}

	var inj *fault.Injector
	if cfg.Fault.Enabled() {
		if inj, err = fault.New(cfg.Fault); err != nil {
			return Result{}, err
		}
		dev.AttachFaults(inj)
		cfg.Ctrl.VerifyWrites = true
	}

	ctrl := memctrl.New(eng, dev, factory, cfg.Ctrl)
	// Same bank-worker lifecycle as RunCtx: join on panic unwind too.
	defer ctrl.Close()
	ctrl.SetFingerprint(fp)
	cinj, err := attachCrash(eng, dev, ctrl, cfg, inj != nil)
	if err != nil {
		return Result{}, err
	}
	g := newGuard(eng, ctrl, cfg, fp)

	var spare *fault.SpareRemapper
	var port cpu.MemPort = ctrl
	if inj != nil {
		spares := cfg.SpareLines
		if spares <= 0 {
			spares = 64
		}
		base := pcm.LineAddr(cfg.Params.Lines() - int64(spares))
		spare, err = fault.NewSpareRemapper(ctrl, base, spares, ctrl.Snoop)
		if err != nil {
			return Result{}, err
		}
		ctrl.SetHardErrorHandler(spare.OnHardError)
		port = spare
	}

	// Optional cache hierarchy, same placement as in Run. Traces carry
	// absolute line images over a zeroed device, so no preload layer is
	// needed; PreSET hints flow straight from the LLC to the controller.
	var hier *cache.Hierarchy
	if cfg.UseCaches {
		levels := cfg.CacheLevels
		if levels == nil {
			levels = cache.DefaultLevels(cfg.CPUClock)
		}
		hier, err = cache.New(eng, port, levels)
		if err != nil {
			return Result{}, err
		}
		if cfg.Ctrl.IdlePreset {
			ctrl.SetDirtyChecker(hier.IsDirty)
			hier.OnDirty = ctrl.PresetHint
		}
		port = hier
	} else if cfg.Ctrl.IdlePreset {
		return Result{}, fmt.Errorf("system: IdlePreset requires UseCaches (hints come from LLC dirtiness)")
	}

	cpuCores := make([]*cpu.Core, cfg.Cores)
	remaining := cfg.Cores
	var lastFinish units.Time
	for i := range cpuCores {
		src := trace.NewCoreSource(recs, i)
		cpuCores[i] = cpu.New(eng, cfg.CPUClock, src, port, cfg.InstrBudget, func() {
			remaining--
			if t := eng.Now(); t > lastFinish {
				lastFinish = t
			}
			if remaining == 0 {
				ctrl.WhenIdle(func() {})
			}
		})
		cpuCores[i].Start()
	}
	var sampler *telemetry.Sampler
	if cfg.Epoch > 0 {
		sampler = attachTelemetry(eng, cfg, telemetryParts{
			ctrl: ctrl, dev: dev, hier: hier,
			inj: inj, spare: spare, cores: cpuCores, clock: cfg.CPUClock,
			crash: cinj,
		})
	}
	runErr := runEngine(ctx, eng, cfg, fp, sampler)
	ctrl.Close()
	res = collectResult(label+" (trace)", fp.Scheme, cfg, lastFinish, parts{
		eng: eng, ctrl: ctrl, cores: cpuCores, hier: hier,
		inj: inj, spare: spare, sampler: sampler, guard: g,
	})
	if runErr != nil {
		return res, runErr
	}
	if remaining != 0 {
		return res, fmt.Errorf("system: %d cores never finished (deadlock?)", remaining)
	}
	return res, nil
}
