package system

import (
	"reflect"
	"testing"

	"tetriswrite/internal/guard"
	"tetriswrite/internal/registry"
	"tetriswrite/internal/schemes"
	"tetriswrite/internal/sim"
	"tetriswrite/internal/telemetry"
	"tetriswrite/internal/tetris"
	"tetriswrite/internal/units"
	"tetriswrite/internal/workload"
)

// parallelCheckNames is the composition set the parallel-engine gate
// sweeps: every base scheme plus one instance of each decorator and the
// adaptive meta-scheme. Together they exercise every ServiceFloor
// implementation — exact fixed-slot floors, the content-dependent Tetris
// floor, FlipMin's changed=false inner bound, decorator forwarding, and
// the adaptive min-over-candidates bound.
var parallelCheckNames = []string{
	"conventional", "dcw", "fnw", "twostage", "threestage", "tetris",
	"dcw+flipmin", "dcw+remap", "tetris+remap", "dcw+mlc", "adaptive",
}

func parallelFactory(t *testing.T, name string) schemes.Factory {
	t.Helper()
	switch name {
	case "conventional":
		return schemes.NewConventional
	case "dcw":
		return schemes.NewDCW
	case "fnw":
		return schemes.NewFlipNWrite
	case "twostage":
		return schemes.NewTwoStage
	case "threestage":
		return schemes.NewThreeStage
	case "tetris":
		return tetris.New
	}
	e, err := registry.Default().Resolve(name)
	if err != nil {
		t.Fatal(err)
	}
	return e.Factory
}

// TestEngineModeCrossCheck is the acceptance gate for the deterministic
// parallel engine: over the full 8-workload sweep and every scheme
// composition, EngineParallel must produce a Result bit-identical to the
// serial engine. The parallel path defers scheme planning to per-bank
// worker goroutines under conservative-lookahead completion events, so
// any soundness gap — a floor above the real service time, an
// out-of-order stat commit, a worker touching shared state — shows up
// here as a DeepEqual failure (and, under -race, as a report). CI runs
// this sweep with the race detector enabled.
func TestEngineModeCrossCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("full workload x scheme x engine-mode sweep")
	}
	for _, prof := range workload.Profiles() {
		for _, name := range parallelCheckNames {
			prof, name := prof, name
			t.Run(prof.Name+"/"+name, func(t *testing.T) {
				t.Parallel()
				factory := parallelFactory(t, name)
				cfg := Config{InstrBudget: 60_000, Seed: 7}
				cfg.EngineMode = sim.EngineSerial
				serial, err := Run(prof, factory, cfg)
				if err != nil {
					t.Fatal(err)
				}
				cfg.EngineMode = sim.EngineParallel
				par, err := Run(prof, factory, cfg)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(serial, par) {
					t.Errorf("serial and parallel engines diverged:\nserial:   %+v\nparallel: %+v", serial, par)
				}
			})
		}
	}
}

// TestEngineModeCrossCheckGuarded repeats the cross-check with the
// invariant guard enabled (cheap checks): plan validation runs on the
// bank workers via ValidateWritePlan and is committed in issue order, so
// guarded statistics — and the absence of violations — must match the
// serial in-line checks exactly.
func TestEngineModeCrossCheckGuarded(t *testing.T) {
	for _, wl := range []string{"canneal", "vips"} {
		prof, err := workload.ProfileByName(wl)
		if err != nil {
			t.Fatal(err)
		}
		for _, name := range []string{"dcw", "tetris", "adaptive"} {
			t.Run(wl+"/"+name, func(t *testing.T) {
				factory := parallelFactory(t, name)
				cfg := Config{InstrBudget: 30_000, Seed: 7}
				cfg.Guard = guard.Config{Enabled: true}
				cfg.EngineMode = sim.EngineSerial
				serial, err := Run(prof, factory, cfg)
				if err != nil {
					t.Fatal(err)
				}
				cfg.EngineMode = sim.EngineParallel
				par, err := Run(prof, factory, cfg)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(serial, par) {
					t.Errorf("guarded serial and parallel runs diverged:\nserial:   %+v\nparallel: %+v", serial, par)
				}
			})
		}
	}
}

// TestEngineModeCrossCheckTelemetry verifies the sampler's consistent-cut
// contract: with an epoch sampler attached, every retained epoch row must
// be bit-identical between serial and parallel runs. The parallel
// controller registers its Sync barrier as the sampler's preSample hook;
// without it, an epoch boundary could observe a bank whose write was
// issued but not yet committed. Results are compared with the Telemetry
// handle nulled (it embeds the engine, whose internal queue cursors may
// legitimately differ after lazy-event re-pushes) — the exported series
// are the observable surface.
func TestEngineModeCrossCheckTelemetry(t *testing.T) {
	prof, err := workload.ProfileByName("canneal")
	if err != nil {
		t.Fatal(err)
	}
	run := func(mode sim.EngineMode) (Result, *telemetry.Sampler) {
		cfg := Config{InstrBudget: 30_000, Seed: 7}
		cfg.Epoch = 2 * units.Microsecond
		cfg.EngineMode = mode
		res, err := Run(prof, tetris.New, cfg)
		if err != nil {
			t.Fatal(err)
		}
		s := res.Telemetry
		if s == nil {
			t.Fatal("no sampler attached")
		}
		res.Telemetry = nil
		return res, s
	}
	serial, ss := run(sim.EngineSerial)
	par, ps := run(sim.EngineParallel)
	if !reflect.DeepEqual(serial, par) {
		t.Errorf("results diverged:\nserial:   %+v\nparallel: %+v", serial, par)
	}
	if !reflect.DeepEqual(ss.SeriesNames(), ps.SeriesNames()) {
		t.Fatalf("series names diverged: %v vs %v", ss.SeriesNames(), ps.SeriesNames())
	}
	if !reflect.DeepEqual(ss.Times(), ps.Times()) {
		t.Fatalf("epoch timestamps diverged: %v vs %v", ss.Times(), ps.Times())
	}
	if ss.Epochs() < 2 {
		t.Fatalf("want >= 2 epochs to make the cut meaningful, got %d", ss.Epochs())
	}
	for _, name := range ss.SeriesNames() {
		if !reflect.DeepEqual(ss.Series(name), ps.Series(name)) {
			t.Errorf("series %q diverged:\nserial:   %v\nparallel: %v", name, ss.Series(name), ps.Series(name))
		}
	}
}

// TestEngineModeFaultFallback checks the serial-fallback latch: fault
// injection forces VerifyWrites, which reshapes plans after issue, so a
// parallel-mode run must silently latch back to serial planning and stay
// bit-identical — including the injector and sparing statistics.
func TestEngineModeFaultFallback(t *testing.T) {
	prof := faultProfile(t)
	base := faultConfig()
	base.EngineMode = sim.EngineSerial
	serial, err := Run(prof, tetris.New, base)
	if err != nil {
		t.Fatal(err)
	}
	base.EngineMode = sim.EngineParallel
	par, err := Run(prof, tetris.New, base)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, par) {
		t.Errorf("fault-config fallback diverged:\nserial:   %+v\nparallel: %+v", serial, par)
	}
}

// TestEngineModeRejectsUnknown covers the config validation path.
func TestEngineModeRejectsUnknown(t *testing.T) {
	prof, err := workload.ProfileByName("canneal")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{InstrBudget: 1000}
	cfg.EngineMode = sim.EngineMode("turbo")
	if _, err := Run(prof, schemes.NewDCW, cfg); err == nil {
		t.Fatal("want error for unknown engine mode")
	}
}
