package system

import (
	"tetriswrite/internal/cache"
	"tetriswrite/internal/cpu"
	"tetriswrite/internal/crash"
	"tetriswrite/internal/fault"
	"tetriswrite/internal/memctrl"
	"tetriswrite/internal/pcm"
	"tetriswrite/internal/sim"
	"tetriswrite/internal/telemetry"
	"tetriswrite/internal/units"
	"tetriswrite/internal/wearlevel"
)

// telemetryParts collects the pipeline components a simulation actually
// assembled; nil members are simply not instrumented.
type telemetryParts struct {
	ctrl  *memctrl.Controller
	dev   *pcm.Device
	hier  *cache.Hierarchy
	remap *wearlevel.Remapper
	inj   *fault.Injector
	spare *fault.SpareRemapper
	crash *crash.Injector
	cores []*cpu.Core
	clock units.Clock
}

// attachTelemetry builds the run's registry, registers every layer
// (registration order is the exporters' emission order: cpu, cache,
// memctrl+power, pcm, wearlevel, fault) and starts the epoch sampler.
// Called only when cfg.Epoch > 0: a run without telemetry allocates
// nothing and replays bit-identically.
func attachTelemetry(eng *sim.Engine, cfg Config, parts telemetryParts) *telemetry.Sampler {
	reg := telemetry.NewRegistry()
	registerCoreMetrics(reg, eng, parts.clock, parts.cores)
	if parts.hier != nil {
		parts.hier.RegisterMetrics(reg)
	}
	parts.ctrl.RegisterMetrics(reg)
	parts.dev.RegisterMetrics(reg)
	parts.dev.RegisterStoreMetrics(reg)
	if parts.remap != nil {
		parts.remap.RegisterMetrics(reg)
	}
	if parts.inj != nil {
		registerFaultMetrics(reg, parts.inj, parts.spare)
	}
	if parts.crash != nil {
		registerCrashMetrics(reg, parts.crash)
	}
	// Engine queue depth: the one signal that distinguishes a simulation
	// falling behind (depth growing epoch over epoch) from one that is
	// simply long. Registered last so existing exporter column order is
	// unchanged.
	reg.GaugeFunc("sim.pending_events", "events waiting in the engine queue", func() float64 {
		return float64(eng.Pending())
	})
	s := telemetry.NewSampler(eng, reg, cfg.Epoch, cfg.MetricsRing)
	// Quiesce the parallel controller's in-flight bank workers before
	// each snapshot so every metric closure sees a consistent cut. A
	// cheap no-op in serial mode.
	s.OnSample(parts.ctrl.Sync)
	s.Start()
	return s
}

// registerCoreMetrics registers cpu.* aggregates over all cores: retired
// instructions, memory traffic, stall time and the summed IPC the
// paper's Figure 13 reports.
func registerCoreMetrics(reg *telemetry.Registry, eng *sim.Engine, clock units.Clock, cores []*cpu.Core) {
	sum := func(f func(cpu.Stats) float64) func() float64 {
		return func() float64 {
			var total float64
			for _, c := range cores {
				total += f(c.Stats())
			}
			return total
		}
	}
	reg.CounterFunc("cpu.retired", "instructions retired across cores",
		sum(func(s cpu.Stats) float64 { return float64(s.Retired) }))
	reg.CounterFunc("cpu.reads", "memory reads issued across cores",
		sum(func(s cpu.Stats) float64 { return float64(s.Reads) }))
	reg.CounterFunc("cpu.writes", "memory writes issued across cores",
		sum(func(s cpu.Stats) float64 { return float64(s.Writes) }))
	reg.CounterFunc("cpu.read_stall_ns", "time blocked on memory reads, all cores",
		sum(func(s cpu.Stats) float64 { return s.ReadStall.Nanoseconds() }))
	reg.CounterFunc("cpu.write_stall_ns", "time blocked on a full write queue, all cores",
		sum(func(s cpu.Stats) float64 { return s.WriteStall.Nanoseconds() }))
	reg.GaugeFunc("cpu.ipc", "summed per-core IPC so far", func() float64 {
		var total float64
		for _, c := range cores {
			total += c.Stats().IPC(clock, eng.Now())
		}
		return total
	})
	reg.GaugeFunc("cpu.finished_cores", "cores that retired their budget", func() float64 {
		var n float64
		for _, c := range cores {
			if c.Stats().Finished {
				n++
			}
		}
		return n
	})
}

// registerFaultMetrics registers the fault injector and (when present)
// the spare remapper under fault.* / spare.*.
func registerFaultMetrics(reg *telemetry.Registry, inj *fault.Injector, spare *fault.SpareRemapper) {
	reg.CounterFunc("fault.transient_failures", "pulses that failed transiently", func() float64 {
		return float64(inj.Stats().TransientFailures)
	})
	reg.CounterFunc("fault.stuck_cells", "cells permanently stuck (wear-out)", func() float64 {
		return float64(inj.Stats().StuckCells)
	})
	if spare == nil {
		return
	}
	reg.CounterFunc("spare.remapped_lines", "hard-error lines redirected to spares", func() float64 {
		return float64(spare.Stats().RemappedLines)
	})
	reg.GaugeFunc("spare.spares_left", "spare slots still available", func() float64 {
		return float64(spare.Stats().SparesLeft)
	})
	reg.CounterFunc("spare.exhausted", "hard errors dropped with no spare left", func() float64 {
		return float64(spare.Stats().Exhausted)
	})
}
