package system

import (
	"context"
	"errors"
	"testing"

	"tetriswrite/internal/pcm"
	"tetriswrite/internal/schemes"
	"tetriswrite/internal/sim"
	"tetriswrite/internal/trace"
	"tetriswrite/internal/units"
	"tetriswrite/internal/workload"
)

func TestRunCtxCancelledBeforeStart(t *testing.T) {
	prof, _ := workload.ProfileByName("vips")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := RunCtx(ctx, prof, schemes.NewDCW, smallConfig())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled in chain", err)
	}
	var re *RunError
	if !errors.As(err, &re) {
		t.Fatalf("err = %T, want *RunError", err)
	}
	if re.Fp.Workload != "vips" || re.Fp.Scheme != "dcw" {
		t.Errorf("fingerprint wrong: %+v", re.Fp)
	}
	// Nothing ran, but the partial result is still labelled.
	if res.Workload != "vips" || res.Scheme != "dcw" {
		t.Errorf("partial result labels: %s/%s", res.Workload, res.Scheme)
	}
}

// TestRunCtxEventBudget: a run that cannot finish within the event
// budget terminates with a *sim.BudgetError and partial statistics.
func TestRunCtxEventBudget(t *testing.T) {
	prof, _ := workload.ProfileByName("vips")
	cfg := smallConfig()
	cfg.MaxEvents = 5_000
	res, err := RunCtx(context.Background(), prof, schemes.NewDCW, cfg)
	var be *sim.BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("err = %T %v, want *sim.BudgetError in chain", err, err)
	}
	if be.Events != 5_000 {
		t.Errorf("budget tripped after %d events, want 5000", be.Events)
	}
	var re *RunError
	if !errors.As(err, &re) || re.Fp.Cycle <= 0 {
		t.Errorf("run error does not carry an abort cycle: %v", err)
	}
	if res.Ctrl.Reads == 0 && res.Ctrl.Writes == 0 {
		t.Error("no partial statistics gathered before the budget tripped")
	}
	for _, cs := range res.Cores {
		if cs.Finished {
			t.Error("a core claims to have finished inside a 5000-event budget")
		}
	}
}

// TestRunCtxSimTimeBudgetFinalizesSampler is the sampler-lifecycle
// regression test: when the watchdog aborts a run mid-epoch, the
// telemetry sampler must stop cleanly and export the partial epoch —
// one final sample stamped at the abort time.
func TestRunCtxSimTimeBudgetFinalizesSampler(t *testing.T) {
	prof, _ := workload.ProfileByName("vips")
	cfg := smallConfig()
	cfg.Epoch = 3 * units.Microsecond
	cfg.MaxSimTime = 10 * units.Microsecond // aborts mid fourth epoch
	res, err := RunCtx(context.Background(), prof, schemes.NewDCW, cfg)
	var be *sim.BudgetError
	if !errors.As(err, &be) || !be.SimTime {
		t.Fatalf("err = %v, want sim-time *sim.BudgetError", err)
	}
	s := res.Telemetry
	if s == nil {
		t.Fatal("no sampler on the partial result")
	}
	if !s.Stopped() {
		t.Error("sampler still armed after abort")
	}
	times := s.Times()
	if len(times) == 0 {
		t.Fatal("no epochs exported from the aborted run")
	}
	var re *RunError
	if !errors.As(err, &re) {
		t.Fatalf("err = %T, want *RunError", err)
	}
	last := times[len(times)-1]
	if last != re.Fp.Cycle {
		t.Errorf("final partial epoch stamped at %v, want abort cycle %v", last, re.Fp.Cycle)
	}
	// Full epochs recorded before the abort are at exact boundaries.
	if times[0] != units.Time(cfg.Epoch) {
		t.Errorf("first epoch at %v, want %v", times[0], units.Time(cfg.Epoch))
	}
}

// TestRunCtxHeartbeat: a plain run emits progress reports with advancing
// event counts and monotone simulated time.
func TestRunCtxHeartbeat(t *testing.T) {
	prof, _ := workload.ProfileByName("vips")
	cfg := smallConfig()
	var beats []sim.Progress
	cfg.Heartbeat = func(p sim.Progress) { beats = append(beats, p) }
	if _, err := RunCtx(context.Background(), prof, schemes.NewDCW, cfg); err != nil {
		t.Fatal(err)
	}
	if len(beats) == 0 {
		t.Fatal("no heartbeats from a 200k-instruction run")
	}
	for i := 1; i < len(beats); i++ {
		if beats[i].Events <= beats[i-1].Events || beats[i].Now < beats[i-1].Now {
			t.Fatalf("heartbeat %d does not advance: %+v -> %+v", i, beats[i-1], beats[i])
		}
	}
}

// TestRunTraceCtxBudget: the trace path shares the watchdog plumbing.
func TestRunTraceCtxBudget(t *testing.T) {
	prof, _ := workload.ProfileByName("ferret")
	recs := trace.Generate(prof, 1, 3, pcm.DefaultParams(), 2000)
	cfg := smallConfig()
	cfg.MaxEvents = 50
	_, err := RunTraceCtx(context.Background(), "synthetic", recs, 1, schemes.NewDCW, cfg)
	var be *sim.BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("err = %T %v, want *sim.BudgetError in chain", err, err)
	}
	var re *RunError
	if !errors.As(err, &re) || re.Fp.Workload != "synthetic" {
		t.Errorf("fingerprint wrong: %v", err)
	}
}
