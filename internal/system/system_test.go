package system

import (
	"testing"

	"tetriswrite/internal/cache"
	"tetriswrite/internal/pcm"
	"tetriswrite/internal/schemes"
	"tetriswrite/internal/tetris"
	"tetriswrite/internal/trace"
	"tetriswrite/internal/units"
	"tetriswrite/internal/workload"
)

func smallConfig() Config {
	return Config{
		Params:      pcm.DefaultParams(),
		InstrBudget: 200_000,
		Seed:        7,
	}
}

func TestRunProducesSaneResult(t *testing.T) {
	prof, _ := workload.ProfileByName("vips")
	res, err := Run(prof, schemes.NewDCW, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Workload != "vips" || res.Scheme != "dcw" {
		t.Errorf("labels wrong: %s/%s", res.Workload, res.Scheme)
	}
	if res.RunningTime <= 0 {
		t.Error("non-positive running time")
	}
	if res.IPC <= 0 || res.IPC > 4 {
		t.Errorf("IPC = %v, want in (0, 4] for 4 cores", res.IPC)
	}
	if res.Ctrl.Reads == 0 || res.Ctrl.Writes == 0 {
		t.Error("no memory traffic simulated")
	}
	if res.ReadLatency <= 0 || res.WriteLatency <= 0 {
		t.Error("latencies not measured")
	}
	// The baseline takes 8 worst-case write units per write.
	if res.WriteUnits < 7.9 || res.WriteUnits > 8.1 {
		t.Errorf("dcw WriteUnits = %v, want 8", res.WriteUnits)
	}
	if res.Energy <= 0 {
		t.Error("no energy accounted")
	}
	if len(res.Cores) != 4 {
		t.Errorf("%d core stats, want 4", len(res.Cores))
	}
	for i, cs := range res.Cores {
		if !cs.Finished || cs.Retired != 200_000 {
			t.Errorf("core %d did not retire its budget: %+v", i, cs)
		}
	}
}

func TestRunDeterminism(t *testing.T) {
	prof, _ := workload.ProfileByName("ferret")
	a, err := Run(prof, schemes.NewThreeStage, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(prof, schemes.NewThreeStage, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.RunningTime != b.RunningTime || a.IPC != b.IPC ||
		a.ReadLatency != b.ReadLatency || a.WriteLatency != b.WriteLatency ||
		a.Energy != b.Energy {
		t.Errorf("nondeterministic simulation:\n%+v\n%+v", a, b)
	}
}

// TestSchemeOrderingOnMemoryBoundWorkload: on the most memory-intensive
// workload, the paper's ranking of running time and read latency must
// hold: tetris < threestage < twostage < fnw < dcw (all faster than the
// baseline).
func TestSchemeOrderingOnMemoryBoundWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("full-system sweep")
	}
	prof, _ := workload.ProfileByName("vips")
	cfg := smallConfig()
	factories := []schemes.Factory{
		schemes.NewDCW,
		schemes.NewFlipNWrite,
		schemes.NewTwoStage,
		schemes.NewThreeStage,
		tetris.New,
	}
	var results []Result
	for _, f := range factories {
		r, err := Run(prof, f, cfg)
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, r)
		t.Logf("%-12s run=%v readLat=%v writeLat=%v wu=%.2f ipc=%.3f",
			r.Scheme, r.RunningTime, r.ReadLatency, r.WriteLatency, r.WriteUnits, r.IPC)
	}
	for i := 1; i < len(results); i++ {
		if results[i].RunningTime >= results[i-1].RunningTime {
			t.Errorf("running time ordering violated: %s (%v) !< %s (%v)",
				results[i].Scheme, results[i].RunningTime,
				results[i-1].Scheme, results[i-1].RunningTime)
		}
		if results[i].IPC <= results[i-1].IPC {
			t.Errorf("IPC ordering violated: %s (%.3f) !> %s (%.3f)",
				results[i].Scheme, results[i].IPC,
				results[i-1].Scheme, results[i-1].IPC)
		}
	}
	// Tetris write units ~1-2 on this workload, far below fnw's 4.
	last := results[len(results)-1]
	if last.WriteUnits >= 4 {
		t.Errorf("tetris WriteUnits = %v, want well below 4", last.WriteUnits)
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	prof, _ := workload.ProfileByName("vips")
	cfg := smallConfig()
	cfg.Params.NumChips = 0 // invalid (LineBytes=0 would mean "use defaults")
	if _, err := Run(prof, schemes.NewDCW, cfg); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestRunDefaultsParams(t *testing.T) {
	prof, _ := workload.ProfileByName("blackscholes")
	res, err := Run(prof, schemes.NewDCW, Config{InstrBudget: 20_000})
	if err != nil {
		t.Fatalf("zero-value params should default to Table II: %v", err)
	}
	if res.RunningTime <= 0 {
		t.Error("defaulted run produced nothing")
	}
}

func TestRunWithCaches(t *testing.T) {
	prof, _ := workload.ProfileByName("ferret")
	// CPU-level intensity over a working set larger than the scaled-down
	// hierarchy, so some traffic still reaches PCM.
	prof.RPKI *= 20
	prof.WPKI *= 20
	prof.PrivateLines = 1 << 15
	cfg := smallConfig()
	cfg.UseCaches = true
	cfg.CacheLevels = []cache.LevelConfig{
		{Name: "L1", SizeBytes: 32 << 10, LineBytes: 64, Ways: 8, Latency: units.NewClock(2e9).Cycles(2)},
		{Name: "L2", SizeBytes: 128 << 10, LineBytes: 64, Ways: 8, Latency: units.NewClock(2e9).Cycles(20)},
	}
	res, err := Run(prof, schemes.NewThreeStage, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Caches) != 2 {
		t.Fatalf("cache stats for %d levels, want 2", len(res.Caches))
	}
	if res.Caches[0].Hits == 0 {
		t.Error("L1 never hit")
	}
	if res.Ctrl.Reads == 0 {
		t.Error("no traffic reached PCM through the hierarchy")
	}
	// Filtering: PCM sees far fewer reads than the cores issued.
	var coreReads int64
	for _, cs := range res.Cores {
		coreReads += cs.Reads
	}
	if res.Ctrl.Reads >= coreReads {
		t.Errorf("PCM reads (%d) not filtered below core reads (%d)", res.Ctrl.Reads, coreReads)
	}
	if !res.Cores[0].Finished {
		t.Error("cores did not finish under the hierarchy")
	}
}

func TestIdlePresetRequiresCaches(t *testing.T) {
	prof, _ := workload.ProfileByName("vips")
	cfg := smallConfig()
	cfg.Ctrl.IdlePreset = true
	if _, err := Run(prof, tetris.New, cfg); err == nil {
		t.Error("IdlePreset without caches accepted")
	}
}

// TestIdlePresetEndToEnd: with PreSET on, idle banks preset dirty lines
// and the write-backs that follow need fewer write units; data stays
// correct (checked by the controller/device consistency built into the
// run plus explicit spot reads via the hierarchy being exercised for
// 200k instructions without divergence).
func TestIdlePresetEndToEnd(t *testing.T) {
	prof, _ := workload.ProfileByName("ferret")
	prof.RPKI *= 20
	prof.WPKI *= 20
	prof.PrivateLines = 1 << 14
	mk := func(preset bool) Result {
		cfg := smallConfig()
		cfg.UseCaches = true
		cfg.CacheLevels = []cache.LevelConfig{
			{Name: "L1", SizeBytes: 16 << 10, LineBytes: 64, Ways: 4, Latency: units.NewClock(2e9).Cycles(2)},
			{Name: "L2", SizeBytes: 64 << 10, LineBytes: 64, Ways: 8, Latency: units.NewClock(2e9).Cycles(20)},
		}
		cfg.Ctrl.IdlePreset = preset
		// PreSET needs the time-aware flip rule: the Hamming-minimizing
		// rule would invert post-preset writes and reintroduce SETs.
		factory := func(p pcm.Params) schemes.Scheme {
			return tetris.NewWithOptions(p, tetris.Options{TimeAwareFlip: true})
		}
		res, err := Run(prof, factory, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	off := mk(false)
	on := mk(true)
	if on.Ctrl.Presets == 0 {
		t.Fatal("PreSET never ran")
	}
	if off.Ctrl.Presets != 0 {
		t.Fatal("presets ran with the feature off")
	}
	// Documented tradeoff, not a win: on this allocation-churn workload
	// most presets land on write-once lines whose write-back then carries
	// mostly-zero data — a RESET avalanche over the preset all-ones. This
	// is exactly why the PreSET literature gates the mechanism by write
	// locality. We assert the mechanism works (presets ran, simulation
	// stays consistent, cost bounded) rather than pretend it always pays.
	if on.WriteUnits > 2*off.WriteUnits {
		t.Errorf("write units with PreSET %.3f vs %.3f: cost out of the expected band",
			on.WriteUnits, off.WriteUnits)
	}
	// The favourable case (hot resident lines rewritten with balanced
	// data) is demonstrated at controller level in the memctrl tests.
	t.Logf("presets=%d writeUnits %0.3f -> %0.3f, writeLat %v -> %v",
		on.Ctrl.Presets, off.WriteUnits, on.WriteUnits, off.WriteLatency, on.WriteLatency)
}

func TestRunTrace(t *testing.T) {
	prof, _ := workload.ProfileByName("ferret")
	recs := trace.Generate(prof, 2, 3, pcm.DefaultParams(), 2000)
	res, err := RunTrace("ferret", recs, 2, schemes.NewThreeStage, Config{InstrBudget: 100_000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Workload != "ferret (trace)" {
		t.Errorf("label = %q", res.Workload)
	}
	if res.Ctrl.Reads == 0 || res.Ctrl.Writes == 0 {
		t.Error("trace replay produced no traffic")
	}
	if res.IPC <= 0 {
		t.Error("no IPC from trace replay")
	}
	// Replay is deterministic.
	res2, err := RunTrace("ferret", trace.Generate(prof, 2, 3, pcm.DefaultParams(), 2000), 2,
		schemes.NewThreeStage, Config{InstrBudget: 100_000})
	if err != nil {
		t.Fatal(err)
	}
	if res.RunningTime != res2.RunningTime || res.ReadLatency != res2.ReadLatency {
		t.Error("trace replay nondeterministic")
	}
}
