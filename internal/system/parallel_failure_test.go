package system

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"tetriswrite/internal/guard"
	"tetriswrite/internal/pcm"
	"tetriswrite/internal/schemes"
	"tetriswrite/internal/sim"
	"tetriswrite/internal/workload"
)

// These tests pin the parallel engine's failure paths to the serial
// engine's: an aborted or violating run must surface the same typed
// error and the same partial Result whether planning ran in-line or on
// bank workers. The abort machinery (watchdog, context polls, guard
// stop) only observes executed events — lazy-event re-pushes are
// invisible to it — so the two modes trip at identical points.

func runBothModes(t *testing.T, ctx context.Context, prof workload.Profile, factory schemes.Factory, cfg Config) (serial, par Result, serialErr, parErr error) {
	t.Helper()
	cfg.EngineMode = sim.EngineSerial
	serial, serialErr = RunCtx(ctx, prof, factory, cfg)
	cfg.EngineMode = sim.EngineParallel
	par, parErr = RunCtx(ctx, prof, factory, cfg)
	return
}

// TestParallelMaxEventsTrip: the event-budget watchdog aborts both modes
// after the same number of executed events, with the same
// *sim.BudgetError and bit-identical partial statistics — the harness
// drains in-flight bank workers (ctrl.Close) before collecting.
func TestParallelMaxEventsTrip(t *testing.T) {
	prof, _ := workload.ProfileByName("vips")
	cfg := smallConfig()
	cfg.MaxEvents = 5_000
	serial, par, serialErr, parErr := runBothModes(t, context.Background(), prof, schemes.NewDCW, cfg)
	var sbe, pbe *sim.BudgetError
	if !errors.As(serialErr, &sbe) || !errors.As(parErr, &pbe) {
		t.Fatalf("errors = %v / %v, want *sim.BudgetError from both modes", serialErr, parErr)
	}
	if !reflect.DeepEqual(sbe, pbe) {
		t.Errorf("budget errors diverged:\nserial:   %+v\nparallel: %+v", sbe, pbe)
	}
	if !reflect.DeepEqual(serial, par) {
		t.Errorf("partial results diverged:\nserial:   %+v\nparallel: %+v", serial, par)
	}
	if par.Ctrl.Writes == 0 {
		t.Error("no writes before the trip; the test exercised nothing")
	}
}

// TestParallelContextCancel: a mid-run cancellation — triggered from a
// heartbeat so it lands at the same executed-event count in both modes —
// yields the same *RunError chain and bit-identical partial results.
func TestParallelContextCancel(t *testing.T) {
	prof, _ := workload.ProfileByName("vips")
	run := func(mode sim.EngineMode) (Result, error) {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		cfg := smallConfig()
		cfg.EngineMode = mode
		cfg.Heartbeat = func(p sim.Progress) {
			if p.Events >= 4_000 {
				cancel()
			}
		}
		return RunCtx(ctx, prof, schemes.NewDCW, cfg)
	}
	serial, serialErr := run(sim.EngineSerial)
	par, parErr := run(sim.EngineParallel)
	for _, err := range []error{serialErr, parErr} {
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled in chain", err)
		}
		var re *RunError
		if !errors.As(err, &re) || re.Fp.Workload != "vips" {
			t.Fatalf("fingerprint wrong: %v", err)
		}
	}
	var sre, pre *RunError
	errors.As(serialErr, &sre)
	errors.As(parErr, &pre)
	if sre.Fp != pre.Fp {
		t.Errorf("abort fingerprints diverged: %+v vs %+v", sre.Fp, pre.Fp)
	}
	if !reflect.DeepEqual(serial, par) {
		t.Errorf("partial results diverged:\nserial:   %+v\nparallel: %+v", serial, par)
	}
}

// bankCorruptingScheme plans correctly until a write lands on a chosen
// bank, then collapses that plan's pulses to a single instant — an
// over-budget burst only the guard can catch, placed off bank zero so
// the violating plan is validated on a non-primary worker.
type bankCorruptingScheme struct {
	schemes.Scheme
	banks int
	bank  int
}

func (s bankCorruptingScheme) PlanWrite(addr pcm.LineAddr, old, new []byte) schemes.Plan {
	p := s.Scheme.PlanWrite(addr, old, new)
	if int(addr)%s.banks != s.bank || len(p.Pulses) == 0 {
		return p
	}
	for i := range p.Pulses {
		p.Pulses[i].Start = 0
	}
	w := p.TSet
	if p.TReset > w {
		w = p.TReset
	}
	p.Write = w
	return p
}

// TestParallelGuardViolationNonZeroBank: a plan that violates the power
// budget on bank 3 stops both modes with the same *guard.ViolationError
// — same kind, detail, and fingerprint cycle. The parallel path
// validates the plan on bank 3's worker and commits the verdict in issue
// order, stamping the violation at the plan's issue time exactly like
// the serial in-line check.
func TestParallelGuardViolationNonZeroBank(t *testing.T) {
	prof, _ := workload.ProfileByName("vips")
	cfg := smallConfig()
	cfg.InstrBudget = 50_000
	cfg.Guard = guard.Config{Enabled: true}
	banks := cfg.Params.NumBanks
	if banks < 4 {
		t.Fatalf("default params have %d banks, test wants >= 4", banks)
	}
	factory := func(par pcm.Params) schemes.Scheme {
		return bankCorruptingScheme{Scheme: schemes.NewDCW(par), banks: banks, bank: 3}
	}
	serial, par, serialErr, parErr := runBothModes(t, context.Background(), prof, factory, cfg)
	var sv, pv *guard.ViolationError
	if !errors.As(serialErr, &sv) || !errors.As(parErr, &pv) {
		t.Fatalf("errors = %v / %v, want *guard.ViolationError from both modes", serialErr, parErr)
	}
	if !reflect.DeepEqual(sv, pv) {
		t.Errorf("violations diverged:\nserial:   %+v\nparallel: %+v", sv, pv)
	}
	if sv.Kind != guard.KindPower || sv.Fp.Cycle <= 0 {
		t.Errorf("unexpected violation: %+v", sv)
	}
	// Both partial results carry the guard counters up to the stop.
	if serial.Guard == nil || par.Guard == nil {
		t.Fatalf("partial results missing guard stats: %+v / %+v", serial.Guard, par.Guard)
	}
	if serial.Workload != par.Workload || serial.Scheme != par.Scheme {
		t.Errorf("partial result labels diverged: %s/%s vs %s/%s",
			serial.Workload, serial.Scheme, par.Workload, par.Scheme)
	}
}

// TestParallelPanicBecomesError: a scheme panic on a bank worker is
// re-raised on the coordinator during the issue-order commit and
// surfaces as the same *PanicError a serial run produces, with the bank
// workers joined (the deferred ctrl.Close) rather than leaked.
func TestParallelPanicBecomesError(t *testing.T) {
	prof, _ := workload.ProfileByName("vips")
	cfg := smallConfig()
	cfg.InstrBudget = 50_000
	cfg.EngineMode = sim.EngineParallel
	factory := func(par pcm.Params) schemes.Scheme {
		return &panicScheme{Scheme: schemes.NewDCW(par), n: 3}
	}
	_, err := RunCtx(context.Background(), prof, factory, cfg)
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %T %v, want *PanicError", err, err)
	}
	if pe.Value != "synthetic scheme bug" {
		t.Errorf("panic value = %v", pe.Value)
	}
	if pe.Fp.Workload != "vips" || pe.Fp.Scheme != "dcw" {
		t.Errorf("fingerprint wrong: %+v", pe.Fp)
	}
}
