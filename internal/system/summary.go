package system

import "tetriswrite/internal/units"

// Summary is the compact, wire-safe projection of a Result: the scalar
// metrics the paper's full-system figures (11-14 and the energy table)
// are rendered from, with durations flattened to picosecond integers.
// Every field is an exported basic type, so a Summary crosses encoding
// boundaries (gob for the fleet RPC, JSON for the shard journal)
// without loss: float64 values survive encoding/json's shortest
// round-trip formatting bit-exactly, which is what lets a broker
// assembled from remote summaries render tables byte-identical to a
// serial in-process sweep.
//
// The histogram-backed extras (tail latency, epoch telemetry) are
// deliberately absent — they stay with the worker that ran the shard.
type Summary struct {
	Workload string
	Scheme   string
	Seed     int64

	RunningTimePs  int64
	IPC            float64
	ReadLatencyPs  int64
	WriteLatencyPs int64
	WriteUnits     float64
	Energy         float64
	EnergyPerWrite float64
}

// Summarize projects a Result onto its Summary.
func Summarize(r Result, seed int64) Summary {
	return Summary{
		Workload:       r.Workload,
		Scheme:         r.Scheme,
		Seed:           seed,
		RunningTimePs:  int64(r.RunningTime),
		IPC:            r.IPC,
		ReadLatencyPs:  int64(r.ReadLatency),
		WriteLatencyPs: int64(r.WriteLatency),
		WriteUnits:     r.WriteUnits,
		Energy:         r.Energy,
		EnergyPerWrite: r.EnergyPerWrite,
	}
}

// Result inflates the Summary back into a sparse Result carrying
// exactly the summarized scalars; the composite fields (Ctrl, Cores,
// Telemetry, ...) are zero. Sufficient for every figure table built on
// those scalars.
func (s Summary) Result() Result {
	return Result{
		Workload:       s.Workload,
		Scheme:         s.Scheme,
		RunningTime:    units.Duration(s.RunningTimePs),
		IPC:            s.IPC,
		ReadLatency:    units.Duration(s.ReadLatencyPs),
		WriteLatency:   units.Duration(s.WriteLatencyPs),
		WriteUnits:     s.WriteUnits,
		Energy:         s.Energy,
		EnergyPerWrite: s.EnergyPerWrite,
	}
}
