package system

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"

	"tetriswrite/internal/guard"
	"tetriswrite/internal/pcm"
	"tetriswrite/internal/schemes"
	"tetriswrite/internal/tetris"
	"tetriswrite/internal/workload"
)

var allFactories = []struct {
	name    string
	factory schemes.Factory
}{
	{"dcw", schemes.NewDCW},
	{"fnw", schemes.NewFlipNWrite},
	{"2stage", schemes.NewTwoStage},
	{"3stage", schemes.NewThreeStage},
	{"tetris", tetris.New},
}

// TestGuardViolationFreeAndBitIdentical is the headline acceptance test
// of the invariant guard: every seed workload under every scheme runs to
// completion with deep checks enabled and no violation, and the guarded
// run's results are bit-identical to the unguarded run's — the guard
// observes, never perturbs.
func TestGuardViolationFreeAndBitIdentical(t *testing.T) {
	for _, prof := range workload.Profiles() {
		for _, mk := range allFactories {
			t.Run(prof.Name+"/"+mk.name, func(t *testing.T) {
				cfg := smallConfig()
				cfg.InstrBudget = 20_000
				plain, err := Run(prof, mk.factory, cfg)
				if err != nil {
					t.Fatalf("unguarded run: %v", err)
				}
				cfg.Guard = guard.Config{Enabled: true, DeepChecks: true}
				guarded, err := Run(prof, mk.factory, cfg)
				if err != nil {
					t.Fatalf("guarded run: %v", err)
				}
				if guarded.Guard == nil || guarded.Guard.DeepReplays != guarded.Guard.WritePlans {
					t.Fatalf("guard stats inconsistent: %+v", guarded.Guard)
				}
				// Low-WPKI workloads may issue no writes in 20k
				// instructions; when writes flowed, plans were checked.
				if guarded.Ctrl.Writes > 0 && guarded.Guard.WritePlans == 0 {
					t.Fatalf("writes flowed but no plans checked: %+v", guarded.Guard)
				}
				guarded.Guard = nil // only difference allowed
				if !reflect.DeepEqual(plain, guarded) {
					t.Errorf("guarded run differs from unguarded run:\nplain:   %+v\nguarded: %+v", plain, guarded)
				}
			})
		}
	}
}

// overBudgetScheme wraps a real scheme but collapses every pulse to
// start at offset zero, concentrating the whole write current into one
// instant — a deliberately broken scheduler the power check must catch.
type overBudgetScheme struct {
	schemes.Scheme
}

func (o overBudgetScheme) PlanWrite(addr pcm.LineAddr, old, new []byte) schemes.Plan {
	p := o.Scheme.PlanWrite(addr, old, new)
	for i := range p.Pulses {
		p.Pulses[i].Start = 0
	}
	w := p.TSet
	if p.TReset > w {
		w = p.TReset
	}
	p.Write = w
	return p
}

// TestGuardCatchesOverBudgetScheme: the broken scheme trips the power
// check on its first planned write; the run stops with a
// *guard.ViolationError naming the budget and carrying the fingerprint.
func TestGuardCatchesOverBudgetScheme(t *testing.T) {
	prof, _ := workload.ProfileByName("vips")
	cfg := smallConfig()
	cfg.InstrBudget = 50_000
	cfg.Guard = guard.Config{Enabled: true}
	factory := func(par pcm.Params) schemes.Scheme {
		return overBudgetScheme{schemes.NewDCW(par)}
	}
	res, err := Run(prof, factory, cfg)
	if err == nil {
		t.Fatal("over-budget scheme ran without a violation")
	}
	var v *guard.ViolationError
	if !errors.As(err, &v) {
		t.Fatalf("err = %T %v, want *guard.ViolationError", err, err)
	}
	if v.Kind != guard.KindPower {
		t.Fatalf("violation kind %s, want %s: %v", v.Kind, guard.KindPower, v)
	}
	if !strings.Contains(v.Detail, "budget") {
		t.Errorf("detail does not name the budget: %q", v.Detail)
	}
	if v.Fp.Workload != "vips" || v.Fp.Scheme != "dcw" || v.Fp.Seed != 7 {
		t.Errorf("fingerprint wrong: %+v", v.Fp)
	}
	if v.Fp.Cycle <= 0 {
		t.Errorf("violation cycle not stamped: %+v", v.Fp)
	}
	// The partial result is still populated up to the stop.
	if res.Workload != "vips" || res.Guard == nil {
		t.Errorf("partial result missing: %+v", res)
	}
}

// panicScheme panics while planning its nth write — a stand-in for any
// bug deep inside the simulation.
type panicScheme struct {
	schemes.Scheme
	n     int
	count int
}

func (p *panicScheme) PlanWrite(addr pcm.LineAddr, old, new []byte) schemes.Plan {
	p.count++
	if p.count >= p.n {
		panic("synthetic scheme bug")
	}
	return p.Scheme.PlanWrite(addr, old, new)
}

// TestPanicBecomesError: a panic inside the engine surfaces as a
// *PanicError with the run fingerprint instead of crashing the caller.
func TestPanicBecomesError(t *testing.T) {
	prof, _ := workload.ProfileByName("vips")
	cfg := smallConfig()
	cfg.InstrBudget = 50_000
	factory := func(par pcm.Params) schemes.Scheme {
		return &panicScheme{Scheme: schemes.NewDCW(par), n: 3}
	}
	_, err := RunCtx(context.Background(), prof, factory, cfg)
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %T %v, want *PanicError", err, err)
	}
	if pe.Value != "synthetic scheme bug" {
		t.Errorf("panic value = %v", pe.Value)
	}
	if pe.Fp.Workload != "vips" || pe.Fp.Scheme != "dcw" {
		t.Errorf("fingerprint wrong: %+v", pe.Fp)
	}
	if len(pe.Stack) == 0 {
		t.Error("no stack captured")
	}
	if !strings.Contains(pe.Error(), "panic during run") {
		t.Errorf("message: %q", pe.Error())
	}
}
