package system

import (
	"reflect"
	"testing"

	"tetriswrite/internal/guard"
	"tetriswrite/internal/registry"
	"tetriswrite/internal/schemes"
	"tetriswrite/internal/sim"
	"tetriswrite/internal/workload"
)

// composedNames are the registry compositions the full-system
// determinism gates sweep: every decorator, a two-deep stack, and the
// adaptive meta-scheme bare and decorated.
var composedNames = []string{
	"dcw+flipmin", "tetris+remap", "dcw+flipmin+remap",
	"dcw+mlc", "adaptive", "adaptive+remap",
}

func composedFactory(t *testing.T, name string) schemes.Factory {
	t.Helper()
	e, err := registry.Default().Resolve(name)
	if err != nil {
		t.Fatal(err)
	}
	return e.Factory
}

// TestComposedSchemeCrossCheck extends the engine cross-check gate to
// registry-composed schemes: over the full 8-workload sweep, each
// composition must produce a Result bit-identical between the heap and
// wheel engines AND bit-identical across two runs of the same engine
// (replay determinism). The second property is what the adaptive
// meta-scheme could most easily break — its epoch decisions read live
// queue depths, so they must be a pure function of the simulated event
// order, never of host scheduling.
func TestComposedSchemeCrossCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("full workload x composed-scheme sweep")
	}
	for _, prof := range workload.Profiles() {
		for _, name := range composedNames {
			prof, name := prof, name
			t.Run(prof.Name+"/"+name, func(t *testing.T) {
				t.Parallel()
				factory := composedFactory(t, name)
				cfg := Config{InstrBudget: 60_000, Seed: 7}
				cfg.EngineQueue = sim.QueueHeap
				heap, err := Run(prof, factory, cfg)
				if err != nil {
					t.Fatal(err)
				}
				cfg.EngineQueue = sim.QueueWheel
				wheel, err := Run(prof, factory, cfg)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(heap, wheel) {
					t.Errorf("heap and wheel engines diverged:\nheap:  %+v\nwheel: %+v", heap, wheel)
				}
				again, err := Run(prof, factory, cfg)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(wheel, again) {
					t.Errorf("same-engine replay diverged:\nfirst:  %+v\nsecond: %+v", wheel, again)
				}
			})
		}
	}
}

// TestComposedSchemeGuarded runs every composition under the invariant
// guard with deep checks on two contrasting workloads (write-heavy
// canneal, read-heavy vips): no violation, and the guarded result is
// bit-identical to the unguarded one. Deep checks replay every plan on
// the shadow array, so this is the system-level form of the decode
// oracle: decorators and the adaptive handover preserve the single-XOR
// decode invariant under the controller's real write stream.
func TestComposedSchemeGuarded(t *testing.T) {
	for _, wl := range []string{"canneal", "vips"} {
		prof, err := workload.ProfileByName(wl)
		if err != nil {
			t.Fatal(err)
		}
		for _, name := range composedNames {
			t.Run(wl+"/"+name, func(t *testing.T) {
				factory := composedFactory(t, name)
				cfg := smallConfig()
				cfg.InstrBudget = 20_000
				plain, err := Run(prof, factory, cfg)
				if err != nil {
					t.Fatalf("unguarded run: %v", err)
				}
				cfg.Guard = guard.Config{Enabled: true, DeepChecks: true}
				guarded, err := Run(prof, factory, cfg)
				if err != nil {
					t.Fatalf("guarded run: %v", err)
				}
				if guarded.Guard == nil || guarded.Guard.DeepReplays != guarded.Guard.WritePlans {
					t.Fatalf("guard stats inconsistent: %+v", guarded.Guard)
				}
				guarded.Guard = nil
				if !reflect.DeepEqual(plain, guarded) {
					t.Errorf("guarded run differs:\nplain:   %+v\nguarded: %+v", plain, guarded)
				}
			})
		}
	}
}
