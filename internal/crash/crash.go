// Package crash is the power-failure substrate: a deterministic
// injector that cuts a simulation at an exact pulse, write or cycle
// boundary — freezing the PCM device at exactly the pulses completed so
// far — plus the write-ahead intent log and the recovery pass that
// replays it against the surviving image.
//
// The model splits one write into its physical halves. At issue time
// the controller arms an intent {seq, addr, old, want} — the durable
// record a real controller would force to its NVM intent log before
// driving the array; the pulse schedule itself is NOT part of the
// record (a controller does not persist pulse trains), which is what
// makes post-crash classification a real decision instead of a replay.
// The injector additionally keeps a private copy of the schedule as
// physics: when the cut fires, every pulse whose interval has fully
// elapsed has landed, every other pulse never happened (an interrupted
// programming pulse leaves the cell in its prior state), and the device
// image is rebuilt accordingly. An intent is retired — and the write
// acknowledged — only once the line's cells and flip tags decode to the
// intended data (the acknowledged-durability contract).
package crash

import (
	"bytes"
	"fmt"

	"tetriswrite/internal/pcm"
	"tetriswrite/internal/schemes"
	"tetriswrite/internal/sim"
	"tetriswrite/internal/units"
)

// Config selects the cut point. Exactly one trigger is typically set;
// when several are, whichever fires first wins. The zero value disables
// injection entirely — a controller with a disabled injector attached
// only counts boundaries and never perturbs the run.
type Config struct {
	// AtPulse cuts power when the Nth pulse record completes (1-based),
	// counting each write's pulses in schedule order, writes in issue
	// order — the "every Kth pulse boundary" axis of the crash sweep.
	AtPulse int64
	// AtWrite cuts power at the completion boundary of the Nth line
	// write (1-based): all its pulses are durable, but the cut lands
	// before the acknowledgement, so its intent stays armed.
	AtWrite int64
	// AtCycle cuts power at an absolute simulated time.
	AtCycle units.Duration
}

// Enabled reports whether any trigger is armed.
func (c Config) Enabled() bool { return c.AtPulse > 0 || c.AtWrite > 0 || c.AtCycle > 0 }

// Validate rejects malformed trigger values.
func (c Config) Validate() error {
	if c.AtPulse < 0 || c.AtWrite < 0 || c.AtCycle < 0 {
		return fmt.Errorf("crash: negative trigger (AtPulse=%d AtWrite=%d AtCycle=%v)",
			c.AtPulse, c.AtWrite, c.AtCycle)
	}
	return nil
}

// Intent is one armed entry of the write-ahead intent log: the durable
// fields a controller persists before driving the array. Old and Want
// are private copies.
type Intent struct {
	Seq         int64 // arm order, globally unique within the run
	Addr        pcm.LineAddr
	Old         []byte // logical contents before the write
	Want        []byte // logical contents the write intends
	PulsesDone  int    // pulses that landed before the cut
	PulsesTotal int    // pulses the schedule held
}

// Image is everything that survives the power cut: the device frozen at
// the completed pulses, the encoded-cell shadow that froze with it, the
// per-bank scheme instances (coding state is modeled as durable
// controller metadata — required for per-line ownership schemes), and
// the unretired intent log in arm order. Acked maps every line with at
// least one acknowledged write to the last acknowledged data.
type Image struct {
	Params  pcm.Params
	Dev     *pcm.Device
	Schemes []schemes.Scheme // index = bank = addr mod NumBanks
	Shadow  *schemes.Array
	Intents []Intent
	Acked   map[pcm.LineAddr][]byte

	CutAt           units.Time
	PulsesIssued    int64 // pulse records issued before the cut
	WritesCompleted int64 // line writes whose pulses all landed
}

// CutError is the error the engine stops with when the injector fires;
// callers unwrap it (errors.As) to reach the surviving image.
type CutError struct{ Image *Image }

func (e *CutError) Error() string {
	return fmt.Sprintf("crash: power cut at %v with %d intents in flight (%d pulses issued, %d writes completed)",
		e.Image.CutAt, len(e.Image.Intents), e.Image.PulsesIssued, e.Image.WritesCompleted)
}

// ContractError reports a violation of the acknowledged-durability
// contract: a write reached its completion boundary while its line did
// not decode to the intended data, or its scheme's tags diverged from
// the physical flip cells. It is a scheme or controller bug, never a
// legal simulation outcome.
type ContractError struct {
	Addr   pcm.LineAddr
	Scheme string
	Detail string
}

func (e *ContractError) Error() string {
	return fmt.Sprintf("crash: ack contract violated on line %d under %s: %s", e.Addr, e.Scheme, e.Detail)
}

// flight is the injector's private physics of one in-flight write: the
// absolute pulse schedule needed to decide what landed at the cut.
type flight struct {
	seq  int64
	addr pcm.LineAddr
	old  []byte
	want []byte
	base units.Time // absolute start of the write phase
	plan schemes.Plan
}

// Injector observes every write the controller issues, arms and retires
// intents, maintains the encoded-cell shadow, and fires the configured
// cut. It implements memctrl.CrashHook. All methods run on the engine
// goroutine.
type Injector struct {
	cfg Config
	par pcm.Params

	eng     *sim.Engine
	dev     *pcm.Device
	schemes []schemes.Scheme

	shadow   *schemes.Array
	inflight []*flight // arm order; bounded by NumBanks
	byAddr   map[pcm.LineAddr]*flight
	acked    map[pcm.LineAddr][]byte

	seq             int64
	pulsesIssued    int64
	writesCompleted int64
	pulseCutArmed   bool
	cutDone         bool
	image           *Image
}

// New builds an injector for the given trigger config and device
// geometry. Bind must be called before the run starts.
func New(cfg Config, par pcm.Params) (*Injector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Injector{
		cfg:    cfg,
		par:    par,
		shadow: schemes.NewArray(par),
		byAddr: make(map[pcm.LineAddr]*flight),
		acked:  make(map[pcm.LineAddr][]byte),
	}, nil
}

// Bind attaches the injector to the engine, the device it freezes, and
// the per-bank scheme instances (index = bank). An AtCycle trigger is
// scheduled here.
func (i *Injector) Bind(eng *sim.Engine, dev *pcm.Device, insts []schemes.Scheme) {
	i.eng = eng
	i.dev = dev
	i.schemes = insts
	if i.cfg.AtCycle > 0 {
		eng.At(units.Time(0).Add(i.cfg.AtCycle), i.cutNow)
	}
}

// Image returns the surviving image once the cut has fired, nil before.
func (i *Injector) Image() *Image { return i.image }

// PulsesIssued returns the pulse records issued so far — with a
// disabled config the injector is a pure boundary counter, which is how
// the sweep harness learns a cell's total pulse count from its oracle
// run.
func (i *Injector) PulsesIssued() int64 { return i.pulsesIssued }

// Stats implements the telemetry contract: live crash.* counters
// sampled alongside the controller's.
func (i *Injector) Stats(emit func(name string, value float64)) {
	emit("crash.pulses_issued", float64(i.pulsesIssued))
	emit("crash.intents_armed", float64(i.seq))
	emit("crash.intents_inflight", float64(len(i.inflight)))
	emit("crash.writes_completed", float64(i.writesCompleted))
}

func (i *Injector) schemeOf(addr pcm.LineAddr) schemes.Scheme {
	return i.schemes[int(addr)%len(i.schemes)]
}

// durOf returns the pulse length of kind k under plan p.
func durOf(p schemes.Plan, k schemes.PulseKind) units.Duration {
	if k == schemes.Set {
		return p.TSet
	}
	return p.TReset
}

// WriteStarted arms the intent for a write the controller just issued
// and records its absolute pulse schedule. old, want and the plan's
// pulse buffer are owned by the controller and copied here — the
// controller recycles the plan immediately after this call returns.
func (i *Injector) WriteStarted(addr pcm.LineAddr, old, want []byte, plan schemes.Plan, now units.Time) {
	if i.cutDone {
		return
	}
	// The shadow mirrors the device's real old image before replaying
	// the schedule: under sparing or preloaded contents the stored bits
	// can differ from the pulse-train history.
	i.shadow.SyncLogical(addr, old)
	if i.byAddr[addr] != nil {
		panic(fmt.Sprintf("crash: two in-flight writes to line %d", addr))
	}
	f := &flight{
		seq:  i.seq,
		addr: addr,
		old:  append([]byte(nil), old...),
		want: append([]byte(nil), want...),
		base: now.Add(plan.Read + plan.Analysis),
		plan: plan,
	}
	f.plan.Pulses = append([]schemes.Pulse(nil), plan.Pulses...)
	f.plan.SortPulses()
	i.seq++
	i.inflight = append(i.inflight, f)
	i.byAddr[addr] = f
	if len(i.inflight) > i.par.NumBanks {
		// One in-flight write per bank is the structural bound of the
		// intent log; exceeding it is a controller bug.
		panic(fmt.Sprintf("crash: intent log overflow: %d armed intents, %d banks",
			len(i.inflight), i.par.NumBanks))
	}

	n := int64(len(f.plan.Pulses))
	if i.cfg.AtPulse > 0 && !i.pulseCutArmed && i.pulsesIssued+n >= i.cfg.AtPulse {
		// This write carries the threshold-crossing pulse: the cut lands
		// the instant that pulse completes.
		p := f.plan.Pulses[i.cfg.AtPulse-i.pulsesIssued-1]
		i.pulseCutArmed = true
		i.eng.At(f.base.Add(p.Start+durOf(f.plan, p.Kind)), i.cutNow)
	}
	i.pulsesIssued += n
}

// WriteCompleted is called at a write's completion boundary, before the
// controller acknowledges it. It replays the full schedule into the
// shadow, enforces the acknowledged-durability contract, retires the
// intent, and returns whether the acknowledgement may fire — false
// means power was lost at this exact boundary (the write is durable,
// its intent stays armed, and the acknowledgement never happens).
func (i *Injector) WriteCompleted(addr pcm.LineAddr) bool {
	if i.cutDone {
		return false
	}
	f := i.byAddr[addr]
	if f == nil {
		return true // not a tracked write (no intent armed for it)
	}
	i.shadow.Apply(addr, f.plan)
	i.writesCompleted++

	// Acknowledged-durability contract: the line must decode to the
	// intended data and the scheme's coding state must match the
	// physical flip cells before the ack may fire.
	sch := i.schemeOf(addr)
	if dec := i.shadow.Logical(addr); !bytes.Equal(dec, f.want) {
		i.eng.Stop(&ContractError{Addr: addr, Scheme: sch.Name(),
			Detail: "completed write does not decode to the intended data"})
		return false
	}
	if r, ok := sch.(schemes.FlipTagReader); ok {
		if mem, phys := r.FlipTags(addr), i.shadow.FlipTags(addr); mem != phys {
			i.eng.Stop(&ContractError{Addr: addr, Scheme: sch.Name(),
				Detail: fmt.Sprintf("scheme tags %#x diverge from physical flip cells %#x", mem, phys)})
			return false
		}
	}

	if i.cfg.AtWrite > 0 && i.writesCompleted == i.cfg.AtWrite {
		// Durable but unacknowledged: the intent stays armed, recovery
		// will find the line clean.
		i.cutNow()
		return false
	}

	i.retire(f)
	buf := i.acked[addr]
	if buf == nil {
		buf = make([]byte, len(f.want))
		i.acked[addr] = buf
	}
	copy(buf, f.want)
	return true
}

// retire removes a flight from the intent log.
func (i *Injector) retire(f *flight) {
	delete(i.byAddr, f.addr)
	for k, g := range i.inflight {
		if g == f {
			i.inflight = append(i.inflight[:k], i.inflight[k+1:]...)
			return
		}
	}
}

// cutNow is the power cut: every in-flight write keeps exactly the
// pulses whose interval has fully elapsed, the device is frozen at the
// resulting torn images, and the engine stops with the surviving Image.
func (i *Injector) cutNow() {
	if i.cutDone {
		return
	}
	i.cutDone = true
	now := i.eng.Now()

	intents := make([]Intent, 0, len(i.inflight))
	for _, f := range i.inflight {
		sub := f.plan
		sub.Pulses = nil
		for _, p := range f.plan.Pulses {
			if f.base.Add(p.Start+durOf(f.plan, p.Kind)) <= now {
				sub.Pulses = append(sub.Pulses, p)
			}
		}
		i.shadow.Apply(f.addr, sub)
		i.dev.Preload(f.addr, i.shadow.Logical(f.addr))
		intents = append(intents, Intent{
			Seq:         f.seq,
			Addr:        f.addr,
			Old:         f.old,
			Want:        f.want,
			PulsesDone:  len(sub.Pulses),
			PulsesTotal: len(f.plan.Pulses),
		})
	}
	i.image = &Image{
		Params:          i.par,
		Dev:             i.dev,
		Schemes:         i.schemes,
		Shadow:          i.shadow,
		Intents:         intents,
		Acked:           i.acked,
		CutAt:           now,
		PulsesIssued:    i.pulsesIssued,
		WritesCompleted: i.writesCompleted,
	}
	i.eng.Stop(&CutError{Image: i.image})
}
