package crash

import (
	"bytes"
	"fmt"

	"tetriswrite/internal/pcm"
	"tetriswrite/internal/schemes"
	"tetriswrite/internal/units"
)

// LineReport is the recovery record of one armed intent.
type LineReport struct {
	Seq         int64
	Addr        pcm.LineAddr
	Verdict     schemes.TornVerdict
	PulsesDone  int
	PulsesTotal int
	TagRepaired bool // scheme tags were re-anchored to the physical flip cells
}

// Report aggregates one recovery pass. RecoveryTime is the modeled bank
// time the pass costs: a TRead scan per armed intent, plus the repair
// write — the write phase (and analysis) for a rollforward, the full
// service time for a reissue.
type Report struct {
	Intents        int
	Clean          int
	Rollforwards   int
	Reissues       int
	TagRepairs     int
	RecoverySets   int64
	RecoveryResets int64
	RecoveryTime   units.Duration
	Lines          []LineReport
}

// Stats emits the crash.* recovery telemetry series.
func (r *Report) Stats(emit func(name string, value float64)) {
	emit("crash.recovered_intents", float64(r.Intents))
	emit("crash.clean_lines", float64(r.Clean))
	emit("crash.rollforwards", float64(r.Rollforwards))
	emit("crash.reissues", float64(r.Reissues))
	emit("crash.tag_repairs", float64(r.TagRepairs))
	emit("crash.recovery_sets", float64(r.RecoverySets))
	emit("crash.recovery_resets", float64(r.RecoveryResets))
	emit("crash.recovery_time", float64(r.RecoveryTime))
}

// Recover replays the intent log against the surviving image: every
// armed intent's line is read back, its torn state classified by the
// owning scheme, its coding state re-anchored to the physical flip
// cells, and — unless already clean — replanned from its decoded
// contents to the intended data and repaired on the device. After the
// pass every intent line decodes to its Want bytes on both the shadow
// and the device, or an error names the line that does not.
//
// Classification runs before tag restoration on purpose: the verdict is
// precisely the comparison between the scheme's in-memory coding state
// (advanced at PlanWrite time) and what physically survived.
func Recover(img *Image) (*Report, error) {
	rep := &Report{Intents: len(img.Intents)}
	for _, in := range img.Intents {
		sch := img.Schemes[int(in.Addr)%len(img.Schemes)]
		dec := img.Shadow.Logical(in.Addr)
		phys := img.Shadow.FlipTags(in.Addr)

		verdict := schemes.TornClean
		if !bytes.Equal(dec, in.Want) {
			// The always-safe verdict; a classifier may upgrade it to the
			// cheap one when the coding state is still coherent.
			verdict = schemes.TornReissue
			if cl, ok := sch.(schemes.TornStateClassifier); ok {
				st := schemes.TornState{Addr: in.Addr, Old: in.Old, Want: in.Want, Decoded: dec, Tags: phys}
				if cl.ClassifyTorn(st) == schemes.TornRollforward {
					verdict = schemes.TornRollforward
				}
			}
		}

		// Re-anchor the scheme's tags to the array — even a clean line
		// can carry diverged in-memory tags (e.g. a planned inversion
		// whose pulses were all lost on a unit whose data was unchanged).
		repaired := false
		if r, ok := sch.(schemes.TagRestorer); ok {
			if fr, hasMem := sch.(schemes.FlipTagReader); !hasMem || fr.FlipTags(in.Addr) != phys {
				repaired = true
			}
			r.RestoreFlipTags(in.Addr, phys)
		}
		if repaired {
			rep.TagRepairs++
		}

		rep.RecoveryTime += img.Params.TRead // the scan read of this line
		if verdict != schemes.TornClean {
			plan := sch.PlanWrite(in.Addr, dec, in.Want)
			sets, resets := plan.Counts()
			rep.RecoverySets += int64(sets)
			rep.RecoveryResets += int64(resets)
			if verdict == schemes.TornRollforward {
				rep.RecoveryTime += plan.Analysis + plan.Write
			} else {
				rep.RecoveryTime += plan.ServiceTime()
			}
			// CheckWrite is the full oracle: structural validity, power
			// budget, and decoded contents after replay.
			if err := img.Shadow.CheckWrite(in.Addr, plan, in.Want); err != nil {
				return nil, fmt.Errorf("crash: recovery replan of line %d (seq %d, %s) under %s: %w",
					in.Addr, in.Seq, verdict, sch.Name(), err)
			}
			if rec, ok := sch.(schemes.PlanRecycler); ok {
				rec.RecyclePlan(plan)
			}
			img.Dev.Preload(in.Addr, in.Want)
		}

		switch verdict {
		case schemes.TornClean:
			rep.Clean++
		case schemes.TornRollforward:
			rep.Rollforwards++
		default:
			rep.Reissues++
		}
		rep.Lines = append(rep.Lines, LineReport{
			Seq: in.Seq, Addr: in.Addr, Verdict: verdict,
			PulsesDone: in.PulsesDone, PulsesTotal: in.PulsesTotal,
			TagRepaired: repaired,
		})
	}

	// Deep validation, guard style: every intent line must now hold its
	// intended data on the device, and the device must agree with the
	// shadow's decode.
	buf := make([]byte, img.Params.LineBytes)
	for _, in := range img.Intents {
		img.Dev.PeekLine(in.Addr, buf)
		if !bytes.Equal(buf, in.Want) {
			return nil, fmt.Errorf("crash: after recovery, device line %d (seq %d) does not hold the intended data", in.Addr, in.Seq)
		}
		if got := img.Shadow.Logical(in.Addr); !bytes.Equal(got, buf) {
			return nil, fmt.Errorf("crash: after recovery, shadow decode of line %d diverges from the device", in.Addr)
		}
	}
	return rep, nil
}
