package crash_test

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"tetriswrite/internal/crash"
	"tetriswrite/internal/memctrl"
	"tetriswrite/internal/pcm"
	"tetriswrite/internal/schemes"
	"tetriswrite/internal/sim"
	"tetriswrite/internal/tetris"
	"tetriswrite/internal/units"
)

type op struct {
	addr pcm.LineAddr
	data []byte
}

// testOps is a deterministic write stream touching several banks, with
// repeated writes to the same lines so intents retire and re-arm.
func testOps(par pcm.Params, n int) []op {
	st := uint64(0x9E3779B9)
	next := func() uint64 {
		st += 0x9e3779b97f4a7c15
		z := st
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	ops := make([]op, n)
	for i := range ops {
		data := make([]byte, par.LineBytes)
		for j := range data {
			data[j] = byte(next())
		}
		ops[i] = op{addr: pcm.LineAddr(next() % 23), data: data}
	}
	return ops
}

// runStream drives ops through a controller with the given injector
// config attached and returns the injector plus the per-op ack flags.
// The returned engine has already run to completion or to the cut.
func runStream(t *testing.T, factory schemes.Factory, cfg crash.Config, ops []op) (*sim.Engine, *pcm.Device, *crash.Injector, []bool) {
	t.Helper()
	eng := sim.NewEngine(sim.QueueWheel)
	par := pcm.DefaultParams()
	dev := pcm.MustNewDevice(par)
	ctrl := memctrl.New(eng, dev, factory, memctrl.Config{OpportunisticWrites: true, DisableCoalescing: true})
	inj, err := crash.New(cfg, par)
	if err != nil {
		t.Fatal(err)
	}
	inj.Bind(eng, dev, ctrl.Schemes())
	if err := ctrl.SetCrash(inj); err != nil {
		t.Fatal(err)
	}
	acked := make([]bool, len(ops))
	next := 0
	var fill func()
	fill = func() {
		for next < len(ops) {
			k := next
			if !ctrl.SubmitWrite(ops[k].addr, ops[k].data, func(units.Time) { acked[k] = true }) {
				ctrl.WhenWriteSpace(fill)
				return
			}
			next++
		}
		ctrl.WhenIdle(func() {})
	}
	eng.At(0, fill)
	eng.Run()
	return eng, dev, inj, acked
}

// TestDisabledInjectorIsPureObserver: a zero-config injector counts
// boundaries without perturbing the run — the device image is
// bit-identical to a run with no injector at all.
func TestDisabledInjectorIsPureObserver(t *testing.T) {
	par := pcm.DefaultParams()
	ops := testOps(par, 60)

	bare := func() *pcm.Device {
		eng := sim.NewEngine(sim.QueueWheel)
		dev := pcm.MustNewDevice(par)
		ctrl := memctrl.New(eng, dev, tetris.New, memctrl.Config{OpportunisticWrites: true, DisableCoalescing: true})
		done := 0
		next := 0
		var fill func()
		fill = func() {
			for next < len(ops) {
				k := next
				if !ctrl.SubmitWrite(ops[k].addr, ops[k].data, func(units.Time) { done++ }) {
					ctrl.WhenWriteSpace(fill)
					return
				}
				next++
			}
			ctrl.WhenIdle(func() {})
		}
		eng.At(0, fill)
		eng.Run()
		if done != len(ops) {
			t.Fatalf("bare run acknowledged %d of %d writes", done, len(ops))
		}
		return dev
	}()

	_, dev, inj, acked := runStream(t, tetris.New, crash.Config{}, ops)
	for k := range acked {
		if !acked[k] {
			t.Fatalf("observed run never acknowledged write %d", k)
		}
	}
	if inj.PulsesIssued() == 0 {
		t.Fatal("observer counted no pulses")
	}
	if inj.Image() != nil {
		t.Fatal("disabled injector produced a cut image")
	}
	a := make([]byte, par.LineBytes)
	b := make([]byte, par.LineBytes)
	for _, o := range ops {
		bare.PeekLine(o.addr, a)
		dev.PeekLine(o.addr, b)
		if !bytes.Equal(a, b) {
			t.Fatalf("line %d diverges between bare and observed runs", o.addr)
		}
	}
}

// TestAtPulseCutIsDeterministic: two runs with the same trigger freeze
// at the same instant with identical intent logs and device images.
func TestAtPulseCutIsDeterministic(t *testing.T) {
	par := pcm.DefaultParams()
	ops := testOps(par, 60)
	cfg := crash.Config{AtPulse: 300}

	eng1, dev1, inj1, _ := runStream(t, tetris.New, cfg, ops)
	eng2, dev2, inj2, _ := runStream(t, tetris.New, cfg, ops)

	var ce1, ce2 *crash.CutError
	if !errors.As(eng1.StopReason(), &ce1) || !errors.As(eng2.StopReason(), &ce2) {
		t.Fatalf("runs did not stop with cuts: %v / %v", eng1.StopReason(), eng2.StopReason())
	}
	if ce1.Image.CutAt != ce2.Image.CutAt || ce1.Image.PulsesIssued != ce2.Image.PulsesIssued {
		t.Fatalf("cut context differs: %v/%d vs %v/%d",
			ce1.Image.CutAt, ce1.Image.PulsesIssued, ce2.Image.CutAt, ce2.Image.PulsesIssued)
	}
	if !reflect.DeepEqual(inj1.Image().Intents, inj2.Image().Intents) {
		t.Fatal("intent logs differ between identical runs")
	}
	a := make([]byte, par.LineBytes)
	b := make([]byte, par.LineBytes)
	for _, o := range ops {
		dev1.PeekLine(o.addr, a)
		dev2.PeekLine(o.addr, b)
		if !bytes.Equal(a, b) {
			t.Fatalf("torn image of line %d differs between identical runs", o.addr)
		}
	}
}

// TestRecoverBringsIntentLinesToWant: after any AtPulse cut, the
// recovery pass leaves every armed intent's line decoding to its Want
// bytes on the device.
func TestRecoverBringsIntentLinesToWant(t *testing.T) {
	par := pcm.DefaultParams()
	ops := testOps(par, 60)
	for _, factory := range []schemes.Factory{schemes.NewDCW, schemes.NewFlipNWrite, tetris.New} {
		for _, at := range []int64{64, 300, 700} {
			eng, dev, _, _ := runStream(t, factory, crash.Config{AtPulse: at}, ops)
			var ce *crash.CutError
			if !errors.As(eng.StopReason(), &ce) {
				t.Fatalf("AtPulse=%d: no cut (stop: %v)", at, eng.StopReason())
			}
			rep, err := crash.Recover(ce.Image)
			if err != nil {
				t.Fatalf("AtPulse=%d: %v", at, err)
			}
			if rep.Intents != len(ce.Image.Intents) {
				t.Fatalf("report covers %d intents, image has %d", rep.Intents, len(ce.Image.Intents))
			}
			buf := make([]byte, par.LineBytes)
			for _, in := range ce.Image.Intents {
				dev.PeekLine(in.Addr, buf)
				if !bytes.Equal(buf, in.Want) {
					t.Fatalf("AtPulse=%d: intent line %d not recovered to Want", at, in.Addr)
				}
			}
		}
	}
}

// TestAtWriteCutIsDurableButUnacked: a cut at a write's completion
// boundary keeps its intent armed and unacknowledged, and recovery
// finds that line already clean.
func TestAtWriteCutIsDurableButUnacked(t *testing.T) {
	par := pcm.DefaultParams()
	ops := testOps(par, 40)
	eng, _, _, acked := runStream(t, tetris.New, crash.Config{AtWrite: 5}, ops)
	var ce *crash.CutError
	if !errors.As(eng.StopReason(), &ce) {
		t.Fatalf("no cut: %v", eng.StopReason())
	}
	img := ce.Image
	if img.WritesCompleted != 5 {
		t.Fatalf("cut after %d completed writes, want 5", img.WritesCompleted)
	}
	n := 0
	for _, ok := range acked {
		if ok {
			n++
		}
	}
	// The threshold write is durable but never acknowledged: strictly
	// fewer acks than completed writes.
	if n >= int(img.WritesCompleted) {
		t.Fatalf("%d acks for %d completed writes; the cut write must stay unacked", n, img.WritesCompleted)
	}
	rep, err := crash.Recover(img)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean == 0 {
		t.Fatal("the durable-but-unacked write was not classified clean")
	}
}

// TestConfigValidate rejects negative triggers and reports enablement.
func TestConfigValidate(t *testing.T) {
	if err := (crash.Config{AtPulse: -1}).Validate(); err == nil {
		t.Error("negative AtPulse accepted")
	}
	if (crash.Config{}).Enabled() {
		t.Error("zero config reports enabled")
	}
	if !(crash.Config{AtWrite: 1}).Enabled() {
		t.Error("AtWrite trigger reports disabled")
	}
}

// TestCutStopsAcks: no acknowledgement fires at or after the cut
// instant — every acked op's line was already durable when power died.
func TestCutStopsAcks(t *testing.T) {
	par := pcm.DefaultParams()
	ops := testOps(par, 60)
	_, _, counter, _ := runStream(t, schemes.NewDCW, crash.Config{}, ops)
	eng, dev, _, acked := runStream(t, schemes.NewDCW, crash.Config{AtPulse: counter.PulsesIssued() / 2}, ops)
	var ce *crash.CutError
	if !errors.As(eng.StopReason(), &ce) {
		t.Fatalf("no cut: %v", eng.StopReason())
	}
	inflight := map[pcm.LineAddr]bool{}
	for _, in := range ce.Image.Intents {
		inflight[in.Addr] = true
	}
	buf := make([]byte, par.LineBytes)
	for addr, want := range ce.Image.Acked {
		if inflight[addr] {
			continue
		}
		dev.PeekLine(addr, buf)
		if !bytes.Equal(buf, want) {
			t.Fatalf("acked line %d does not hold its acknowledged data at the cut", addr)
		}
	}
	// Sanity: the run was actually cut mid-stream.
	n := 0
	for _, ok := range acked {
		if ok {
			n++
		}
	}
	if n == 0 || n == len(ops) {
		t.Fatalf("cut acknowledged %d of %d ops; want a mid-stream cut", n, len(ops))
	}
}
