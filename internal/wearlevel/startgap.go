// Package wearlevel implements Start-Gap wear leveling (Qureshi et al.,
// MICRO'09), the endurance mechanism the paper cites for PCM main memory.
// PCM cells wear out after ~10^8 writes, and write schemes like Tetris
// Write reduce *how many* cells each write programs, while wear leveling
// spreads *where* the writes land; the two compose, which is why this
// substrate ships alongside the scheduler.
//
// Start-Gap maps N logical lines onto N+1 physical lines with two
// registers and zero tables: physical = p0 + (p0 >= Gap ? 1 : 0) where
// p0 = (logical + Start) mod N. Every psi writes the gap moves one slot
// down (copying one line); after it sweeps the whole region, Start
// advances and the entire mapping has rotated by one.
package wearlevel

import (
	"fmt"

	"tetriswrite/internal/pcm"
)

// StartGap is the register state of one wear-leveling region.
type StartGap struct {
	n      int64 // logical lines in the region
	start  int64 // rotation register, [0, n)
	gap    int64 // gap slot, [0, n]
	psi    int   // writes per gap move
	writes int   // writes since the last gap move
	moves  int64 // total gap moves performed
}

// Move describes one line copy a gap move performs: the contents of
// physical slot From must be copied to physical slot To (the previous gap
// position).
type Move struct {
	From, To int64
}

// NewStartGap creates a region of n logical lines with a gap move every
// psi writes. Qureshi et al. recommend psi = 100, trading <1% extra
// writes for near-perfect leveling.
func NewStartGap(n int64, psi int) (*StartGap, error) {
	if n < 1 {
		return nil, fmt.Errorf("wearlevel: region of %d lines", n)
	}
	if psi < 1 {
		return nil, fmt.Errorf("wearlevel: psi %d", psi)
	}
	return &StartGap{n: n, gap: n, psi: psi}, nil
}

// Lines returns the number of logical lines.
func (s *StartGap) Lines() int64 { return s.n }

// PhysicalSlots returns the number of physical slots (lines + 1 gap).
func (s *StartGap) PhysicalSlots() int64 { return s.n + 1 }

// Gap returns the current gap slot (the physical slot holding no line).
func (s *StartGap) Gap() int64 { return s.gap }

// Moves returns the total number of gap moves so far.
func (s *StartGap) Moves() int64 { return s.moves }

// Map translates a logical line to its physical slot.
func (s *StartGap) Map(logical int64) int64 {
	if logical < 0 || logical >= s.n {
		panic(fmt.Sprintf("wearlevel: logical line %d outside region of %d", logical, s.n))
	}
	p0 := (logical + s.start) % s.n
	if p0 >= s.gap {
		return p0 + 1
	}
	return p0
}

// OnWrite accounts one line write. Every psi-th write triggers a gap
// move; the returned Move (valid when ok) tells the caller which physical
// line to copy. The caller must perform the copy for the mapping to stay
// consistent with the stored data.
func (s *StartGap) OnWrite() (mv Move, ok bool) {
	s.writes++
	if s.writes < s.psi {
		return Move{}, false
	}
	s.writes = 0
	s.moves++
	if s.gap > 0 {
		mv = Move{From: s.gap - 1, To: s.gap}
		s.gap--
		return mv, true
	}
	// The gap reached slot 0: wrap. The line in the last slot moves into
	// the gap, the gap re-parks at the top, and the rotation register
	// advances — the whole region has now shifted by one.
	mv = Move{From: s.n, To: 0}
	s.gap = s.n
	s.start = (s.start + 1) % s.n
	return mv, true
}

// Region applies a StartGap to a window of the PCM line address space:
// logical line i of the region is device line Base+i before remapping.
type Region struct {
	Base pcm.LineAddr // first physical line of the region
	SG   *StartGap
}

// NewRegion creates a wear-leveled region of n logical lines backed by
// n+1 physical lines starting at base.
func NewRegion(base pcm.LineAddr, n int64, psi int) (*Region, error) {
	sg, err := NewStartGap(n, psi)
	if err != nil {
		return nil, err
	}
	return &Region{Base: base, SG: sg}, nil
}

// Contains reports whether the logical address falls in this region.
func (r *Region) Contains(addr pcm.LineAddr) bool {
	off := int64(addr) - int64(r.Base)
	return off >= 0 && off < r.SG.Lines()
}

// Translate maps a logical line address to its physical line address.
// Addresses outside the region pass through unchanged.
func (r *Region) Translate(addr pcm.LineAddr) pcm.LineAddr {
	if !r.Contains(addr) {
		return addr
	}
	off := int64(addr) - int64(r.Base)
	return r.Base + pcm.LineAddr(r.SG.Map(off))
}

// OnWrite accounts a write to a logical address in the region and
// returns the physical copy (in device addresses) a triggered gap move
// requires.
func (r *Region) OnWrite() (from, to pcm.LineAddr, ok bool) {
	mv, moved := r.SG.OnWrite()
	if !moved {
		return 0, 0, false
	}
	return r.Base + pcm.LineAddr(mv.From), r.Base + pcm.LineAddr(mv.To), true
}
