package wearlevel

import (
	"bytes"
	"testing"

	"tetriswrite/internal/pcm"
	"tetriswrite/internal/units"
)

// fakeMem is a scriptable downstream port: it accepts `capacity` writes
// before rejecting, records everything, and wakes WhenWriteSpace waiters
// on demand — enough to drive the Remapper's backpressure path without a
// full controller.
type fakeMem struct {
	capacity int // remaining writes accepted before rejecting
	store    map[pcm.LineAddr][]byte
	writes   []pcm.LineAddr
	reads    []pcm.LineAddr
	waiters  []func()
}

func newFakeMem(capacity int) *fakeMem {
	return &fakeMem{capacity: capacity, store: make(map[pcm.LineAddr][]byte)}
}

func (m *fakeMem) SubmitRead(addr pcm.LineAddr, onDone func(units.Time, []byte)) bool {
	m.reads = append(m.reads, addr)
	data := m.store[addr]
	if data == nil {
		data = make([]byte, 8)
	}
	onDone(0, append([]byte(nil), data...))
	return true
}

func (m *fakeMem) SubmitWrite(addr pcm.LineAddr, data []byte, onDone func(units.Time)) bool {
	if m.capacity <= 0 {
		return false
	}
	m.capacity--
	m.store[addr] = append([]byte(nil), data...)
	m.writes = append(m.writes, addr)
	if onDone != nil {
		onDone(0)
	}
	return true
}

func (m *fakeMem) WhenWriteSpace(fn func()) { m.waiters = append(m.waiters, fn) }

// wake grants more capacity and fires the queued waiters, like the
// controller does when its write queue drains.
func (m *fakeMem) wake(capacity int) {
	m.capacity += capacity
	ws := m.waiters
	m.waiters = nil
	for _, fn := range ws {
		fn()
	}
}

func (m *fakeMem) snoop(addr pcm.LineAddr, dst []byte) {
	if data, ok := m.store[addr]; ok {
		copy(dst, data)
		return
	}
	for i := range dst {
		dst[i] = 0
	}
}

func line8(b byte) []byte {
	l := make([]byte, 8)
	for i := range l {
		l[i] = b
	}
	return l
}

// A full downstream queue defers the gap-move copy: the Remapper buffers
// it, registers exactly one WhenWriteSpace waiter (the `retrying` flag),
// and drains once space opens. Reads meanwhile see the pending copy.
func TestRemapperBackpressureRetry(t *testing.T) {
	mem := newFakeMem(1) // room for the direct write, none for the copy
	region, err := NewRegion(0, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRemapper(mem, region, 8, mem.snoop)

	// Seed the line the first gap move will relocate (logical 3 sits in
	// physical slot 3; the gap starts at slot 4, so the move is 3 -> 4).
	mem.store[3] = line8(0xAB)

	done := false
	if !r.SubmitWrite(0, line8(0x11), func(units.Time) { done = true }) {
		t.Fatal("direct write rejected with capacity available")
	}
	if !done {
		t.Fatal("direct write never completed")
	}
	st := r.Stats()
	if st.GapMoves != 1 {
		t.Fatalf("GapMoves = %d, want 1 (psi=1)", st.GapMoves)
	}
	if st.CopyBytes != 0 {
		t.Errorf("CopyBytes = %d before the copy landed", st.CopyBytes)
	}
	if len(mem.waiters) != 1 {
		t.Fatalf("%d WhenWriteSpace waiters, want exactly 1 (the retrying flag)", len(mem.waiters))
	}

	// More rejected traffic while blocked must not pile up extra waiters.
	if r.SubmitWrite(1, line8(0x22), nil) {
		t.Error("write accepted by a full downstream queue")
	}
	if len(mem.waiters) != 1 {
		t.Errorf("%d waiters after a second rejection, want still 1", len(mem.waiters))
	}

	// A read of the copy's destination is served from the pending buffer.
	var got []byte
	r.SubmitRead(3, func(_ units.Time, data []byte) { got = data })
	if !bytes.Equal(got, line8(0xAB)) {
		t.Errorf("read during pending copy = %x, want the moved line AB...", got)
	}

	// Space opens: the retry drains the copy and clears the flag.
	mem.wake(4)
	st = r.Stats()
	if st.CopyBytes != 8 {
		t.Errorf("CopyBytes = %d after drain, want 8", st.CopyBytes)
	}
	if !bytes.Equal(mem.store[4], line8(0xAB)) {
		t.Errorf("slot 4 = %x after drain, want the moved line", mem.store[4])
	}
	if len(mem.waiters) != 0 {
		t.Errorf("%d waiters left after drain", len(mem.waiters))
	}

	// The machinery is reusable: the next blocked copy re-arms one waiter.
	mem.capacity = 1
	r.SubmitWrite(1, line8(0x22), nil)
	if len(mem.waiters) != 1 {
		t.Errorf("retrying flag did not re-arm: %d waiters", len(mem.waiters))
	}
	mem.wake(4)
	if r.Stats().CopyBytes != 16 {
		t.Errorf("CopyBytes = %d after second drain, want 16", r.Stats().CopyBytes)
	}
}

// A direct write to a slot holding a pending copy supersedes the copy:
// the stale gap-move data must never land on top of newer data.
func TestRemapperPendingSuperseded(t *testing.T) {
	mem := newFakeMem(1)
	region, err := NewRegion(0, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRemapper(mem, region, 8, mem.snoop)
	mem.store[3] = line8(0xAB)

	r.SubmitWrite(0, line8(0x11), nil) // gap move 3 -> 4 buffered, queue full
	if len(mem.waiters) != 1 {
		t.Fatalf("copy not blocked as intended")
	}

	// Logical 3 now maps to physical 4 (the old gap). Writing it directly
	// must drop the pending copy for slot 4.
	mem.capacity = 1
	if !r.SubmitWrite(3, line8(0xCD), nil) {
		t.Fatal("direct write rejected")
	}
	// This second write triggers its own gap move (psi=1, move 2 -> 3),
	// whose copy is also blocked — drain everything.
	mem.wake(8)
	if !bytes.Equal(mem.store[4], line8(0xCD)) {
		t.Errorf("slot 4 = %x, want the direct write CD (stale copy must not land)", mem.store[4])
	}
}
