package wearlevel

import (
	"math/rand"
	"testing"

	"tetriswrite/internal/memctrl"
	"tetriswrite/internal/pcm"
	"tetriswrite/internal/schemes"
	"tetriswrite/internal/sim"
	"tetriswrite/internal/units"
)

// refModel is an explicit-table Start-Gap: it performs the same gap
// moves by physically shuffling a slot array, serving as the oracle for
// the O(1) register formula.
type refModel struct {
	slots []int64 // physical slot -> logical line (-1 = gap)
}

func newRefModel(n int64) *refModel {
	m := &refModel{slots: make([]int64, n+1)}
	for i := range m.slots {
		m.slots[i] = int64(i)
	}
	m.slots[n] = -1
	return m
}

func (m *refModel) apply(mv Move) {
	if m.slots[mv.To] != -1 {
		panic("ref: move target is not the gap")
	}
	m.slots[mv.To] = m.slots[mv.From]
	m.slots[mv.From] = -1
}

func (m *refModel) physOf(logical int64) int64 {
	for p, l := range m.slots {
		if l == logical {
			return int64(p)
		}
	}
	panic("ref: line lost")
}

// TestStartGapMatchesReferenceModel: the register formula and the
// explicit table agree across many full rotations, for several region
// sizes.
func TestStartGapMatchesReferenceModel(t *testing.T) {
	for _, n := range []int64{1, 2, 3, 7, 16, 33} {
		sg, err := NewStartGap(n, 1) // move on every write: fastest churn
		if err != nil {
			t.Fatal(err)
		}
		ref := newRefModel(n)
		for step := 0; step < int(4*(n+1)*n+10); step++ {
			if mv, ok := sg.OnWrite(); ok {
				ref.apply(mv)
			}
			for l := int64(0); l < n; l++ {
				if got, want := sg.Map(l), ref.physOf(l); got != want {
					t.Fatalf("n=%d step=%d: Map(%d) = %d, reference %d (gap=%d)",
						n, step, l, got, want, sg.Gap())
				}
			}
		}
	}
}

// TestStartGapMappingIsBijective at every step.
func TestStartGapMappingIsBijective(t *testing.T) {
	const n = 12
	sg, _ := NewStartGap(n, 1)
	for step := 0; step < 200; step++ {
		seen := map[int64]bool{}
		for l := int64(0); l < n; l++ {
			p := sg.Map(l)
			if p < 0 || p > n {
				t.Fatalf("step %d: physical %d out of range", step, p)
			}
			if p == sg.Gap() {
				t.Fatalf("step %d: line %d mapped onto the gap", step, l)
			}
			if seen[p] {
				t.Fatalf("step %d: physical %d used twice", step, p)
			}
			seen[p] = true
		}
		sg.OnWrite()
	}
}

func TestStartGapPsi(t *testing.T) {
	sg, _ := NewStartGap(8, 5)
	moves := 0
	for i := 0; i < 50; i++ {
		if _, ok := sg.OnWrite(); ok {
			moves++
		}
	}
	if moves != 10 {
		t.Errorf("50 writes at psi=5: %d moves, want 10", moves)
	}
	if sg.Moves() != 10 {
		t.Errorf("Moves() = %d", sg.Moves())
	}
}

func TestStartGapValidation(t *testing.T) {
	if _, err := NewStartGap(0, 1); err == nil {
		t.Error("zero-line region accepted")
	}
	if _, err := NewStartGap(4, 0); err == nil {
		t.Error("zero psi accepted")
	}
	sg, _ := NewStartGap(4, 1)
	for _, bad := range []int64{-1, 4} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Map(%d) did not panic", bad)
				}
			}()
			sg.Map(bad)
		}()
	}
}

func TestRegionTranslate(t *testing.T) {
	reg, err := NewRegion(100, 8, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Outside the region: identity.
	if got := reg.Translate(50); got != 50 {
		t.Errorf("outside address translated: %d", got)
	}
	if got := reg.Translate(200); got != 200 {
		t.Errorf("outside address translated: %d", got)
	}
	// Inside: stays within the physical window [100, 109).
	for l := pcm.LineAddr(100); l < 108; l++ {
		p := reg.Translate(l)
		if p < 100 || p > 108 {
			t.Errorf("Translate(%d) = %d outside physical window", l, p)
		}
	}
}

// TestRemapperEndToEnd runs random traffic through remapper + controller
// with aggressive gap movement and verifies reads always return the
// latest written data, and that wear actually spreads.
func TestRemapperEndToEnd(t *testing.T) {
	eng := &sim.Engine{}
	dev := pcm.MustNewDevice(pcm.DefaultParams())
	ctrl := memctrl.New(eng, dev, schemes.NewDCW, memctrl.Config{OpportunisticWrites: true})
	const base, lines = 0, 16
	reg, err := NewRegion(base, lines, 3) // gap move every 3 writes
	if err != nil {
		t.Fatal(err)
	}
	wear := pcm.NewWearTracker()
	rm := NewRemapper(ctrl, reg, 64, ctrl.Snoop)

	rng := rand.New(rand.NewSource(5))
	golden := map[pcm.LineAddr]byte{}
	n := 0
	var step func()
	step = func() {
		if n >= 2000 {
			ctrl.WhenIdle(func() {})
			return
		}
		n++
		// Hammer a skewed distribution, including one very hot line.
		var addr pcm.LineAddr
		if rng.Intn(2) == 0 {
			addr = base + 3
		} else {
			addr = base + pcm.LineAddr(rng.Intn(lines))
		}
		if rng.Intn(3) != 0 {
			v := byte(rng.Intn(256))
			data := make([]byte, 64)
			data[0] = v
			if rm.SubmitWrite(addr, data, nil) {
				golden[addr] = v
				wear.Record(reg.Translate(addr), 1)
			}
		} else if want, ok := golden[addr]; ok {
			rm.SubmitRead(addr, func(_ units.Time, got []byte) {
				if got[0] != want {
					t.Errorf("op %d: read %d at logical %d, want %d", n, got[0], addr, want)
				}
			})
		}
		eng.After(units.Duration(rng.Intn(300))*units.Nanosecond, step)
	}
	eng.At(0, step)
	eng.Run()

	st := rm.Stats()
	if st.GapMoves == 0 {
		t.Fatal("no gap moves happened")
	}
	// Wear spreading: without leveling, the hot line would take ~50% of
	// all writes on one slot; with it, the hottest physical slot must
	// hold well under that.
	sum := wear.Summary()
	hotShare := float64(sum.MaxLineWear) / float64(sum.TotalBitWrites)
	if hotShare > 0.25 {
		t.Errorf("hottest slot has %.0f%% of writes; leveling ineffective", hotShare*100)
	}
	if sum.TouchedLines < lines {
		t.Errorf("only %d physical slots ever written; want at least %d", sum.TouchedLines, lines)
	}
}

// TestRemapperPendingCopyVisible: a read issued while the gap-move copy
// is still buffered must see the moved line's data.
func TestRemapperPendingCopyVisible(t *testing.T) {
	eng := &sim.Engine{}
	dev := pcm.MustNewDevice(pcm.DefaultParams())
	// No opportunistic writes and a tiny queue: copies stay buffered.
	ctrl := memctrl.New(eng, dev, schemes.NewDCW, memctrl.Config{WriteQueue: 4})
	reg, _ := NewRegion(0, 4, 1) // move on every write
	rm := NewRemapper(ctrl, reg, 64, ctrl.Snoop)

	data := make([]byte, 64)
	data[0] = 0x77
	checked := false
	eng.At(0, func() {
		if !rm.SubmitWrite(0, data, nil) {
			t.Fatal("write rejected")
		}
		// The write triggered a gap move of some line; whatever logical
		// line we just wrote must still read back 0x77.
		rm.SubmitRead(0, func(_ units.Time, got []byte) {
			checked = true
			if got[0] != 0x77 {
				t.Errorf("read %#x after remap, want 0x77", got[0])
			}
		})
		ctrl.WhenIdle(func() {})
	})
	eng.Run()
	if !checked {
		t.Fatal("read never completed")
	}
}

func TestRegionAndRemapperSmallAPIs(t *testing.T) {
	sg, _ := NewStartGap(8, 10)
	if sg.PhysicalSlots() != 9 {
		t.Errorf("PhysicalSlots = %d, want 9", sg.PhysicalSlots())
	}
	if _, err := NewRegion(0, 0, 10); err == nil {
		t.Error("zero-line region accepted")
	}

	// Remapper pass-through APIs.
	eng := &sim.Engine{}
	dev := pcm.MustNewDevice(pcm.DefaultParams())
	ctrl := memctrl.New(eng, dev, schemes.NewDCW, memctrl.Config{OpportunisticWrites: true})
	reg, _ := NewRegion(0, 4, 100)
	rm := NewRemapper(ctrl, reg, 64, ctrl.Snoop)
	woken := false
	eng.At(0, func() {
		rm.WhenWriteSpace(func() { woken = true })
		// A read of an untouched line goes straight through.
		rm.SubmitRead(2, func(_ units.Time, got []byte) {
			for _, b := range got {
				if b != 0 {
					t.Error("untouched line read nonzero")
				}
			}
		})
	})
	eng.Run()
	if !woken {
		t.Error("WhenWriteSpace never forwarded")
	}
	if rm.Stats().Reads != 1 {
		t.Errorf("Reads = %d", rm.Stats().Reads)
	}
}

// TestRemapperBufferedCopyUnderFullQueue forces drainPending's retry
// path: the controller write queue is saturated so gap-move copies stay
// buffered and drain later via WhenWriteSpace.
func TestRemapperBufferedCopyUnderFullQueue(t *testing.T) {
	eng := &sim.Engine{}
	dev := pcm.MustNewDevice(pcm.DefaultParams())
	// Drain-only controller with a tiny queue: copies will be rejected.
	ctrl := memctrl.New(eng, dev, schemes.NewDCW, memctrl.Config{WriteQueue: 2, DrainLow: -1})
	reg, _ := NewRegion(0, 8, 1) // gap move on every write
	rm := NewRemapper(ctrl, reg, 64, ctrl.Snoop)
	data := make([]byte, 64)
	writes := 0
	var step func()
	step = func() {
		if writes >= 12 {
			ctrl.WhenIdle(func() {})
			return
		}
		data[0] = byte(writes)
		if rm.SubmitWrite(pcm.LineAddr(writes%8), data, nil) {
			writes++
		}
		eng.After(100*units.Nanosecond, step)
	}
	eng.At(0, func() { step() })
	eng.Run()
	st := rm.Stats()
	if st.GapMoves == 0 {
		t.Fatal("no gap moves")
	}
	if st.CopyBytes == 0 {
		t.Fatal("no copies ever drained")
	}
}
