package wearlevel

import (
	"tetriswrite/internal/linestore"
	"tetriswrite/internal/pcm"
	"tetriswrite/internal/units"
)

// Mem is the downstream memory port a Remapper drives (the memory
// controller, in practice).
type Mem interface {
	SubmitRead(addr pcm.LineAddr, onDone func(at units.Time, data []byte)) bool
	SubmitWrite(addr pcm.LineAddr, data []byte, onDone func(at units.Time)) bool
	WhenWriteSpace(fn func())
}

// Remapper interposes Start-Gap wear leveling between the cores (or
// caches) and the memory controller: logical line addresses are
// translated to rotating physical slots, and every psi-th write triggers
// a gap move whose line copy is injected as real write traffic.
//
// Consistency: after a gap move the source slot becomes the new gap (no
// logical line maps to it), so its data cannot change while the copy is
// in flight; reads to the destination slot are served from the pending
// copy until the controller accepts it, mirroring the controller's own
// store-forwarding.
type Remapper struct {
	mem    Mem
	region *Region
	// snoop reads a physical line's freshest contents without timing
	// side effects, including data still queued in the controller —
	// wired to Controller.Snoop. A plain device peek would lose queued
	// writes when the gap passes a line with a pending update.
	snoop func(addr pcm.LineAddr, dst []byte)
	line  int

	// pending holds gap-move copies awaiting submission, drained in
	// insertion order — a Go map here would retry queued copies in
	// randomized order and break replay determinism.
	pending  *linestore.Pending
	retrying bool

	stats RemapStats
}

// RemapStats counts wear-leveling activity.
type RemapStats struct {
	Reads     int64
	Writes    int64
	GapMoves  int64
	CopyBytes int64
}

// NewRemapper wires a region in front of mem. lineBytes is the device
// line size; snoop must return the freshest physical contents (use
// Controller.Snoop).
func NewRemapper(mem Mem, region *Region, lineBytes int, snoop func(pcm.LineAddr, []byte)) *Remapper {
	return &Remapper{
		mem:     mem,
		region:  region,
		snoop:   snoop,
		line:    lineBytes,
		pending: linestore.NewPending(),
	}
}

// Stats returns the wear-leveling counters.
func (r *Remapper) Stats() RemapStats { return r.stats }

// SubmitRead translates and forwards a read.
func (r *Remapper) SubmitRead(addr pcm.LineAddr, onDone func(at units.Time, data []byte)) bool {
	r.stats.Reads++
	phys := r.region.Translate(addr)
	if data, ok := r.pending.Get(int64(phys)); ok {
		// The line is mid-copy: serve the pending data the way the
		// controller forwards from its write queue.
		return r.mem.SubmitRead(phys, func(at units.Time, _ []byte) {
			onDone(at, append([]byte(nil), data...))
		})
	}
	return r.mem.SubmitRead(phys, onDone)
}

// SubmitWrite translates and forwards a write, possibly triggering a gap
// move.
func (r *Remapper) SubmitWrite(addr pcm.LineAddr, data []byte, onDone func(at units.Time)) bool {
	phys := r.region.Translate(addr)
	if !r.mem.SubmitWrite(phys, data, onDone) {
		return false
	}
	// An accepted direct write to a slot with an unsubmitted gap-move
	// copy fully supersedes the copy; dropping the copy keeps queue
	// ordering correct (the stale copy must never land after this
	// write).
	r.pending.Delete(int64(phys))
	r.stats.Writes++
	if !r.region.Contains(addr) {
		return true
	}
	if from, to, ok := r.region.OnWrite(); ok {
		r.stats.GapMoves++
		buf := make([]byte, r.line)
		// Snapshot the moved line as the controller sees it (including
		// queued writes): the source slot is the new gap, so nothing can
		// write it afterwards and the snapshot cannot go stale.
		r.snoop(from, buf)
		r.pending.Put(int64(to), buf)
		r.drainPending()
	}
	return true
}

// drainPending pushes buffered gap-move copies into the controller in
// the order the moves happened.
func (r *Remapper) drainPending() {
	r.pending.Range(func(addr linestore.Addr, data []byte) bool {
		if !r.mem.SubmitWrite(pcm.LineAddr(addr), data, nil) {
			if !r.retrying {
				r.retrying = true
				r.mem.WhenWriteSpace(func() {
					r.retrying = false
					r.drainPending()
				})
			}
			return false
		}
		r.stats.CopyBytes += int64(len(data))
		r.pending.Delete(addr)
		return true
	})
}

// WhenWriteSpace forwards to the controller.
func (r *Remapper) WhenWriteSpace(fn func()) { r.mem.WhenWriteSpace(fn) }
