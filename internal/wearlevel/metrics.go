package wearlevel

import "tetriswrite/internal/telemetry"

// RegisterMetrics exposes Start-Gap activity under wearlevel.*: the gap
// rotation rate and the extra write traffic it injects — the endurance
// cost that end-of-run summaries hide when it bursts.
func (r *Remapper) RegisterMetrics(reg *telemetry.Registry) {
	reg.CounterFunc("wearlevel.gap_moves", "Start-Gap rotations performed", func() float64 {
		return float64(r.stats.GapMoves)
	})
	reg.CounterFunc("wearlevel.copy_bytes", "bytes copied by gap moves", func() float64 {
		return float64(r.stats.CopyBytes)
	})
	reg.CounterFunc("wearlevel.writes", "writes translated through the region", func() float64 {
		return float64(r.stats.Writes)
	})
}
