// Package units defines the time base shared by every simulated component.
//
// The simulators in this repository mix clock domains whose periods are not
// whole nanoseconds (a 2 GHz core ticks every 0.5 ns, the 400 MHz memory
// bus every 2.5 ns), so the global time base is the picosecond, carried in
// an int64. An int64 of picoseconds overflows after ~106 days of simulated
// time, far beyond any experiment here.
package units

import (
	"fmt"
	"strconv"
	"strings"
)

// Time is an absolute simulation timestamp in picoseconds since the start
// of the simulation.
type Time int64

// Duration is a span of simulated time in picoseconds.
type Duration int64

// Convenient duration constants.
const (
	Picosecond  Duration = 1
	Nanosecond  Duration = 1000 * Picosecond
	Microsecond Duration = 1000 * Nanosecond
	Millisecond Duration = 1000 * Microsecond
	Second      Duration = 1000 * Millisecond
)

// Add returns the timestamp d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration between t and earlier time u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Nanoseconds returns the duration as a float64 count of nanoseconds.
func (d Duration) Nanoseconds() float64 { return float64(d) / float64(Nanosecond) }

// Seconds returns the duration as a float64 count of seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// String renders a duration with an auto-selected unit, for logs and
// reports.
func (d Duration) String() string {
	switch {
	case d == 0:
		return "0"
	case d%Second == 0:
		return fmt.Sprintf("%ds", d/Second)
	case d >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(d)/float64(Millisecond))
	case d >= Microsecond:
		return fmt.Sprintf("%.3fus", float64(d)/float64(Microsecond))
	case d >= Nanosecond:
		return fmt.Sprintf("%.3fns", float64(d)/float64(Nanosecond))
	default:
		return fmt.Sprintf("%dps", int64(d))
	}
}

// String renders an absolute time like a duration since time zero.
func (t Time) String() string { return Duration(t).String() }

// Nanoseconds builds a Duration from a (possibly fractional) nanosecond
// count. Fractions below a picosecond are truncated.
func Nanoseconds(ns float64) Duration { return Duration(ns * float64(Nanosecond)) }

// ParseDuration parses a human-written simulated duration like "10us",
// "1.5ms", "430ns" or "250000ps". The unit suffix (ps, ns, us, ms, s) is
// required — a bare number would be ambiguous — and the value must be
// positive; fractions below a picosecond are truncated. This mirrors
// time.ParseDuration but for the simulation's picosecond time base (and
// with sub-nanosecond units the standard library lacks).
func ParseDuration(s string) (Duration, error) {
	orig := s
	s = strings.TrimSpace(s)
	var unit Duration
	switch {
	case strings.HasSuffix(s, "ps"):
		unit, s = Picosecond, strings.TrimSuffix(s, "ps")
	case strings.HasSuffix(s, "ns"):
		unit, s = Nanosecond, strings.TrimSuffix(s, "ns")
	case strings.HasSuffix(s, "us"):
		unit, s = Microsecond, strings.TrimSuffix(s, "us")
	case strings.HasSuffix(s, "µs"):
		unit, s = Microsecond, strings.TrimSuffix(s, "µs")
	case strings.HasSuffix(s, "ms"):
		unit, s = Millisecond, strings.TrimSuffix(s, "ms")
	case strings.HasSuffix(s, "s"):
		unit, s = Second, strings.TrimSuffix(s, "s")
	default:
		return 0, fmt.Errorf("units: duration %q needs a unit suffix (ps, ns, us, ms, s)", orig)
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		return 0, fmt.Errorf("units: bad duration %q: %w", orig, err)
	}
	d := Duration(v * float64(unit))
	if d <= 0 {
		return 0, fmt.Errorf("units: duration %q must be positive", orig)
	}
	return d, nil
}

// Clock converts between cycle counts and simulated time for one clock
// domain. The zero value is invalid; build clocks with NewClock.
type Clock struct {
	period Duration
}

// NewClock returns a clock with the given frequency in hertz. It panics on
// non-positive frequencies and on frequencies above 1 THz, which would
// round to a zero-length period.
func NewClock(hz float64) Clock {
	if hz <= 0 {
		panic("units: non-positive clock frequency")
	}
	p := Duration(float64(Second) / hz)
	if p <= 0 {
		panic("units: clock frequency too high for picosecond time base")
	}
	return Clock{period: p}
}

// Period returns the length of one cycle.
func (c Clock) Period() Duration { return c.period }

// Cycles converts a whole number of cycles to a duration.
func (c Clock) Cycles(n int64) Duration { return Duration(n) * c.period }

// CyclesIn reports how many full cycles fit in d.
func (c Clock) CyclesIn(d Duration) int64 { return int64(d / c.period) }

// NextEdge returns the earliest clock edge at or after t, assuming edges at
// every integer multiple of the period from time zero.
func (c Clock) NextEdge(t Time) Time {
	rem := Duration(t) % c.period
	if rem == 0 {
		return t
	}
	return t.Add(c.period - rem)
}
