package units

import (
	"testing"
	"testing/quick"
)

func TestDurationConstants(t *testing.T) {
	if Nanosecond != 1000 {
		t.Errorf("Nanosecond = %d ps, want 1000", Nanosecond)
	}
	if Second != 1e12 {
		t.Errorf("Second = %d ps, want 1e12", Second)
	}
}

func TestAddSub(t *testing.T) {
	var t0 Time = 100
	t1 := t0.Add(50 * Picosecond)
	if t1 != 150 {
		t.Errorf("Add = %d, want 150", t1)
	}
	if d := t1.Sub(t0); d != 50 {
		t.Errorf("Sub = %d, want 50", d)
	}
}

func TestNanoseconds(t *testing.T) {
	if d := Nanoseconds(2.5); d != 2500 {
		t.Errorf("Nanoseconds(2.5) = %d ps, want 2500", d)
	}
	if got := (2500 * Picosecond).Nanoseconds(); got != 2.5 {
		t.Errorf("Nanoseconds() = %v, want 2.5", got)
	}
}

func TestDurationString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{0, "0"},
		{500, "500ps"},
		{1500, "1.500ns"},
		{2 * Microsecond, "2.000us"},
		{3 * Millisecond, "3.000ms"},
		{Second, "1s"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.d), got, c.want)
		}
	}
}

func TestClockPeriods(t *testing.T) {
	cpu := NewClock(2e9) // 2 GHz
	if cpu.Period() != 500 {
		t.Errorf("2GHz period = %d ps, want 500", cpu.Period())
	}
	bus := NewClock(400e6) // 400 MHz
	if bus.Period() != 2500 {
		t.Errorf("400MHz period = %d ps, want 2500", bus.Period())
	}
	if cpu.Cycles(4) != 2000 {
		t.Errorf("Cycles(4) = %d, want 2000", cpu.Cycles(4))
	}
	if bus.CyclesIn(10000) != 4 {
		t.Errorf("CyclesIn(10000) = %d, want 4", bus.CyclesIn(10000))
	}
}

func TestClockPanics(t *testing.T) {
	for _, hz := range []float64{0, -1, 2e12} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewClock(%v) did not panic", hz)
				}
			}()
			NewClock(hz)
		}()
	}
}

func TestNextEdge(t *testing.T) {
	c := NewClock(400e6) // 2500 ps period
	if got := c.NextEdge(0); got != 0 {
		t.Errorf("NextEdge(0) = %d, want 0", got)
	}
	if got := c.NextEdge(2500); got != 2500 {
		t.Errorf("NextEdge(2500) = %d, want 2500", got)
	}
	if got := c.NextEdge(2501); got != 5000 {
		t.Errorf("NextEdge(2501) = %d, want 5000", got)
	}
}

// Property: NextEdge lands on a multiple of the period, never before t, and
// less than one period after t.
func TestNextEdgeProperty(t *testing.T) {
	c := NewClock(333e6)
	f := func(raw uint32) bool {
		tm := Time(raw)
		e := c.NextEdge(tm)
		if e < tm {
			return false
		}
		if Duration(e-tm) >= c.Period() {
			return false
		}
		return Duration(e)%c.Period() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseDuration(t *testing.T) {
	cases := []struct {
		in   string
		want Duration
	}{
		{"10us", 10 * Microsecond},
		{"1.5ms", 1500 * Microsecond},
		{"430ns", 430 * Nanosecond},
		{"53ns", 53 * Nanosecond},
		{"250000ps", 250 * Nanosecond},
		{"2s", 2 * Second},
		{"0.5us", 500 * Nanosecond},
		{" 7us ", 7 * Microsecond},
		{"3µs", 3 * Microsecond},
	}
	for _, c := range cases {
		got, err := ParseDuration(c.in)
		if err != nil {
			t.Errorf("ParseDuration(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseDuration(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	for _, bad := range []string{"", "10", "us", "-10us", "0us", "10xs", "ten us", "1e999ms"} {
		if d, err := ParseDuration(bad); err == nil {
			t.Errorf("ParseDuration(%q) = %v, want error", bad, d)
		}
	}
}

// Round-trip: anything Duration.String prints for exact-unit values parses
// back to the same duration.
func TestParseDurationRoundTrip(t *testing.T) {
	for _, d := range []Duration{430 * Nanosecond, 10 * Microsecond, 2 * Second, 53 * Nanosecond} {
		got, err := ParseDuration(d.String())
		if err != nil {
			t.Fatalf("ParseDuration(%q): %v", d.String(), err)
		}
		if got != d {
			t.Errorf("round trip %v -> %q -> %v", d, d.String(), got)
		}
	}
}
