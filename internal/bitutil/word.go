package bitutil

// Word-parallel companions to the per-cell primitives: a cache line whose
// chips are x16 parts lays its 16-bit chip slices out as consecutive
// little-endian words, so one uint64 load covers four (chip, unit) cells
// and one XOR+popcount covers 64 cells. The hot read paths (DCW diffing,
// Flip-N-Write tag checks, the Tetris read stage) use these to skip
// unchanged cells four at a time instead of re-deriving them one by one.

// LoadLE64 reads the uint64 at byte offset off of p, little-endian: the
// four consecutive 16-bit chip slices 4*(off/8) .. 4*(off/8)+3.
func LoadLE64(p []byte, off int) uint64 {
	_ = p[off+7] // one bounds check for all eight bytes
	return uint64(p[off]) | uint64(p[off+1])<<8 |
		uint64(p[off+2])<<16 | uint64(p[off+3])<<24 |
		uint64(p[off+4])<<32 | uint64(p[off+5])<<40 |
		uint64(p[off+6])<<48 | uint64(p[off+7])<<56
}

// StoreLE64 writes w at byte offset off of p, little-endian — the inverse
// of LoadLE64.
func StoreLE64(p []byte, off int, w uint64) {
	_ = p[off+7]
	p[off] = byte(w)
	p[off+1] = byte(w >> 8)
	p[off+2] = byte(w >> 16)
	p[off+3] = byte(w >> 24)
	p[off+4] = byte(w >> 32)
	p[off+5] = byte(w >> 40)
	p[off+6] = byte(w >> 48)
	p[off+7] = byte(w >> 56)
}

// laneTab[n] has lane i (bits 16i..16i+15) all-ones iff bit i of n is set.
var laneTab = [16]uint64{
	0x0000_0000_0000_0000, 0x0000_0000_0000_FFFF,
	0x0000_0000_FFFF_0000, 0x0000_0000_FFFF_FFFF,
	0x0000_FFFF_0000_0000, 0x0000_FFFF_0000_FFFF,
	0x0000_FFFF_FFFF_0000, 0x0000_FFFF_FFFF_FFFF,
	0xFFFF_0000_0000_0000, 0xFFFF_0000_0000_FFFF,
	0xFFFF_0000_FFFF_0000, 0xFFFF_0000_FFFF_FFFF,
	0xFFFF_FFFF_0000_0000, 0xFFFF_FFFF_0000_FFFF,
	0xFFFF_FFFF_FFFF_0000, 0xFFFF_FFFF_FFFF_FFFF,
}

// LaneMask16 expands the low four bits of nib into 16-bit lanes of ones:
// lane i is 0xFFFF iff bit i of nib is set. XORing a packed cell word
// with LaneMask16 of its flip-tag nibble decodes (or encodes) all four
// cells' inversion coding in one operation.
func LaneMask16(nib uint64) uint64 { return laneTab[nib&0xF] }
