package bitutil

import "testing"

// FuzzFlipCoding: for arbitrary stored state and target words, the
// inversion coding must always decode to the target and never need more
// than half the cells changed (counting the flip cell).
func FuzzFlipCoding(f *testing.F) {
	f.Add(uint16(0), uint16(0xFFFF), false)
	f.Add(uint16(0xAAAA), uint16(0x5555), true)
	f.Fuzz(func(t *testing.T, storedBits, next uint16, storedFlip bool) {
		stored := FlipWord{Bits: storedBits, Flip: storedFlip}
		enc, tr, fs, fr := FlipTransition(stored, next, 16)
		if enc.Logical() != next {
			t.Fatalf("decode mismatch: stored %04x/%v next %04x", storedBits, storedFlip, next)
		}
		if tr.Apply(stored.Bits) != enc.Bits {
			t.Fatal("transition does not reach the encoding")
		}
		changed := tr.NumChanged()
		if fs || fr {
			changed++
		}
		if changed > 8 {
			t.Fatalf("%d cells changed; coding bound is 8", changed)
		}
		if fs && fr {
			t.Fatal("flip cell both set and reset")
		}
	})
}
