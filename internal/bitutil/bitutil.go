// Package bitutil provides the bit-level primitives shared by every PCM
// write scheme in this repository: population counts, Hamming distances,
// Flip-N-Write style inversion coding and the per-chip slicing of a cache
// line into data units.
//
// Terminology follows the paper. A cache line (64 B by default) is written
// to a memory bank built from several x8 or x16 PCM chips. Each chip sees
// the line as a sequence of "data units": chip-width slices, one per
// write unit, each guarded by one flip bit. All schemes operate on the transition
// vector between the old (stored) and new (incoming) data: a bit that goes
// 0->1 needs a SET (write-1), a bit that goes 1->0 needs a RESET (write-0),
// and an unchanged bit needs no pulse at all.
package bitutil

import "math/bits"

// PopCount64 returns the number of set bits in x.
func PopCount64(x uint64) int { return bits.OnesCount64(x) }

// PopCount16 returns the number of set bits in x.
func PopCount16(x uint16) int { return bits.OnesCount16(x) }

// PopCountBytes returns the number of set bits across all bytes of p.
func PopCountBytes(p []byte) int {
	n := 0
	i := 0
	for ; i+8 <= len(p); i += 8 {
		n += bits.OnesCount64(LoadLE64(p, i))
	}
	for ; i < len(p); i++ {
		n += bits.OnesCount8(p[i])
	}
	return n
}

// Hamming64 returns the Hamming distance between a and b.
func Hamming64(a, b uint64) int { return bits.OnesCount64(a ^ b) }

// Hamming16 returns the Hamming distance between a and b.
func Hamming16(a, b uint16) int { return bits.OnesCount16(a ^ b) }

// HammingBytes returns the Hamming distance between equal-length byte
// slices a and b. It panics if the lengths differ, since comparing lines of
// different sizes is always a programming error in this code base.
func HammingBytes(a, b []byte) int {
	if len(a) != len(b) {
		panic("bitutil: HammingBytes on slices of different length")
	}
	n := 0
	i := 0
	for ; i+8 <= len(a); i += 8 {
		n += bits.OnesCount64(LoadLE64(a, i) ^ LoadLE64(b, i))
	}
	for ; i < len(a); i++ {
		n += bits.OnesCount8(a[i] ^ b[i])
	}
	return n
}

// Transition describes the pulses required to turn the stored word old into
// the incoming word new within one data unit.
type Transition struct {
	Sets   uint16 // bit set => the cell needs a SET pulse (0 -> 1)
	Resets uint16 // bit set => the cell needs a RESET pulse (1 -> 0)
}

// NumSets returns the number of SET pulses in the transition.
func (t Transition) NumSets() int { return bits.OnesCount16(t.Sets) }

// NumResets returns the number of RESET pulses in the transition.
func (t Transition) NumResets() int { return bits.OnesCount16(t.Resets) }

// NumChanged returns the total number of cells that must be pulsed.
func (t Transition) NumChanged() int { return t.NumSets() + t.NumResets() }

// Transition16 computes the SET/RESET masks needed to turn old into new.
func Transition16(old, new uint16) Transition {
	diff := old ^ new
	return Transition{Sets: diff & new, Resets: diff & old}
}

// Apply returns old with the transition's pulses applied. Applying the
// transition computed by Transition16(old, new) always yields new.
func (t Transition) Apply(old uint16) uint16 {
	return (old | t.Sets) &^ t.Resets
}

// FlipWord describes a 16-bit data unit together with its flip (inversion)
// tag, the encoding used by Flip-N-Write, Three-Stage-Write and the read
// stage of Tetris Write. When Flip is true the stored bits are the
// complement of the logical data.
type FlipWord struct {
	Bits uint16
	Flip bool
}

// Logical returns the logical (decoded) value of the word for the
// default x16 width.
func (w FlipWord) Logical() uint16 { return w.LogicalWidth(DefaultWidthBits) }

// LogicalWidth returns the logical (decoded) value for a data unit of
// widthBits cells.
func (w FlipWord) LogicalWidth(widthBits int) uint16 {
	if w.Flip {
		return ^w.Bits & WidthMask(widthBits)
	}
	return w.Bits & WidthMask(widthBits)
}

// DefaultWidthBits is the data-unit width of the paper's x16 prototype.
const DefaultWidthBits = 16

// WidthMask returns the mask selecting a data unit's cells for parts of
// the given width (8 for x8 chips, 16 for x16).
func WidthMask(widthBits int) uint16 {
	if widthBits <= 0 || widthBits > 16 {
		panic("bitutil: unsupported chip width")
	}
	return uint16(1)<<widthBits - 1
}

// FlipEncode decides how to store the logical value next over the
// currently stored word old so that at most half of the width+1 cells
// (data plus flip bit) change, for a data unit of widthBits cells. This
// is the Flip-N-Write coding rule: compare the Hamming distance between
// {next, 0} and the stored {old.Bits, old.Flip}; if it exceeds half the
// data width, store the complement and raise the flip bit.
func FlipEncode(old FlipWord, next uint16, widthBits int) FlipWord {
	mask := WidthMask(widthBits)
	dist := Hamming16(old.Bits&mask, next&mask)
	if old.Flip {
		dist++ // the flip cell itself would transition 1 -> 0
	}
	if dist > widthBits/2 {
		return FlipWord{Bits: ^next & mask, Flip: true}
	}
	return FlipWord{Bits: next & mask, Flip: false}
}

// FlipTransition computes the pulses needed to move the stored word old
// to the encoding chosen by FlipEncode for logical value next, including
// the flip cell itself. The flip cell is reported separately because it
// lives outside the data cells in the datapath (the x17 write driver of
// the paper's Figure 9).
func FlipTransition(old FlipWord, next uint16, widthBits int) (enc FlipWord, data Transition, flipSet, flipReset bool) {
	enc = FlipEncode(old, next, widthBits)
	data = Transition16(old.Bits&WidthMask(widthBits), enc.Bits)
	if enc.Flip && !old.Flip {
		flipSet = true
	}
	if !enc.Flip && old.Flip {
		flipReset = true
	}
	return enc, data, flipSet, flipReset
}

// Uint16sOf reinterprets a byte slice as little-endian 16-bit words. The
// slice length must be even.
func Uint16sOf(p []byte) []uint16 {
	if len(p)%2 != 0 {
		panic("bitutil: Uint16sOf on odd-length slice")
	}
	out := make([]uint16, len(p)/2)
	for i := range out {
		out[i] = uint16(p[2*i]) | uint16(p[2*i+1])<<8
	}
	return out
}

// PutUint16s writes words into p as little-endian bytes. p must be exactly
// twice as long as words.
func PutUint16s(p []byte, words []uint16) {
	if len(p) != 2*len(words) {
		panic("bitutil: PutUint16s length mismatch")
	}
	for i, w := range words {
		p[2*i] = byte(w)
		p[2*i+1] = byte(w >> 8)
	}
}

// ChipSlice extracts chip c's slice of data unit u from a cache line,
// for a bank of nchips chips of widthBytes data width each (2 for x16
// parts, 1 for x8). Data unit u of the line occupies bytes
// [u*widthBytes*nchips, (u+1)*widthBytes*nchips), interleaved chip by
// chip — mirroring how a memory-bus beat spreads across the chips.
func ChipSlice(line []byte, nchips, widthBytes, c, u int) uint16 {
	off := (u*nchips + c) * widthBytes
	w := uint16(line[off])
	if widthBytes == 2 {
		w |= uint16(line[off+1]) << 8
	}
	return w
}

// SetChipSlice stores a chip slice back into the cache line, the inverse
// of ChipSlice.
func SetChipSlice(line []byte, nchips, widthBytes, c, u int, w uint16) {
	off := (u*nchips + c) * widthBytes
	line[off] = byte(w)
	if widthBytes == 2 {
		line[off+1] = byte(w >> 8)
	}
}
