package bitutil

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPopCount64(t *testing.T) {
	cases := []struct {
		x    uint64
		want int
	}{
		{0, 0},
		{1, 1},
		{0xFFFFFFFFFFFFFFFF, 64},
		{0x8000000000000001, 2},
		{0x5555555555555555, 32},
	}
	for _, c := range cases {
		if got := PopCount64(c.x); got != c.want {
			t.Errorf("PopCount64(%#x) = %d, want %d", c.x, got, c.want)
		}
	}
}

func TestPopCountBytes(t *testing.T) {
	if got := PopCountBytes([]byte{0xFF, 0x00, 0x0F}); got != 12 {
		t.Errorf("PopCountBytes = %d, want 12", got)
	}
	if got := PopCountBytes(nil); got != 0 {
		t.Errorf("PopCountBytes(nil) = %d, want 0", got)
	}
}

func TestHammingBytes(t *testing.T) {
	a := []byte{0x00, 0xFF}
	b := []byte{0x01, 0xFF}
	if got := HammingBytes(a, b); got != 1 {
		t.Errorf("HammingBytes = %d, want 1", got)
	}
}

func TestHammingBytesPanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	HammingBytes([]byte{1}, []byte{1, 2})
}

func TestTransition16Basic(t *testing.T) {
	tr := Transition16(0b1010, 0b0110)
	if tr.Sets != 0b0100 {
		t.Errorf("Sets = %#b, want 0b0100", tr.Sets)
	}
	if tr.Resets != 0b1000 {
		t.Errorf("Resets = %#b, want 0b1000", tr.Resets)
	}
	if tr.NumChanged() != 2 {
		t.Errorf("NumChanged = %d, want 2", tr.NumChanged())
	}
}

// Property: applying the transition always produces the target word, and
// SET/RESET masks never overlap (a cell cannot need both pulses).
func TestTransitionApplyProperty(t *testing.T) {
	f := func(old, next uint16) bool {
		tr := Transition16(old, next)
		if tr.Sets&tr.Resets != 0 {
			return false
		}
		return tr.Apply(old) == next
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the number of changed bits equals the Hamming distance.
func TestTransitionCountsMatchHamming(t *testing.T) {
	f := func(old, next uint16) bool {
		tr := Transition16(old, next)
		return tr.NumChanged() == Hamming16(old, next)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: flip coding bounds the number of changed cells (data + flip) by
// half the width + ... precisely: changed data cells + changed flip cell
// <= 8 data-width/2 when starting from a non-flipped word; in general the
// coding guarantees <= width/2 changes counting the flip cell.
func TestFlipEncodeBoundsChanges(t *testing.T) {
	f := func(oldBits, next uint16, oldFlip bool) bool {
		old := FlipWord{Bits: oldBits, Flip: oldFlip}
		enc, data, fs, fr := FlipTransition(old, next, 16)
		changed := data.NumChanged()
		if fs || fr {
			changed++
		}
		if changed > DefaultWidthBits/2+1 {
			// At most width/2 changes are ever needed: if the direct
			// distance (incl. flip cell) exceeds width/2, the complement
			// distance (incl. flip cell) is at most width+1 - that, i.e.
			// <= width/2 + 1... the +1 case happens only when distances
			// are width/2+ on both sides, impossible for even width with
			// the flip cell tie-breaking. Enforce the hard bound 8+1 and
			// the decode invariant below.
			return false
		}
		return enc.Logical() == next
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: flip coding never does worse than storing the word directly.
func TestFlipEncodeNeverWorse(t *testing.T) {
	f := func(oldBits, next uint16, oldFlip bool) bool {
		old := FlipWord{Bits: oldBits, Flip: oldFlip}
		_, data, fs, fr := FlipTransition(old, next, 16)
		changed := data.NumChanged()
		if fs || fr {
			changed++
		}
		direct := Hamming16(oldBits, next)
		if oldFlip {
			direct++ // clearing the flip bit
		}
		return changed <= direct
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFlipEncodeExactThreshold(t *testing.T) {
	// Exactly width/2 changes: must NOT flip (strictly-greater rule).
	old := FlipWord{Bits: 0x0000, Flip: false}
	enc := FlipEncode(old, 0x00FF, 16) // 8 changes
	if enc.Flip {
		t.Error("FlipEncode flipped at exactly width/2 changes")
	}
	// width/2+1 changes: must flip.
	enc = FlipEncode(old, 0x01FF, 16) // 9 changes
	if !enc.Flip {
		t.Error("FlipEncode did not flip above width/2 changes")
	}
}

func TestUint16sRoundTrip(t *testing.T) {
	f := func(words []uint16) bool {
		p := make([]byte, 2*len(words))
		PutUint16s(p, words)
		got := Uint16sOf(p)
		if len(got) != len(words) {
			return false
		}
		for i := range got {
			if got[i] != words[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestChipSliceRoundTrip(t *testing.T) {
	const nchips = 4
	rng := rand.New(rand.NewSource(1))
	line := make([]byte, 64)
	rng.Read(line)
	// Writing every slice back unchanged must preserve the line.
	clone := append([]byte(nil), line...)
	for u := 0; u < 8; u++ {
		for c := 0; c < nchips; c++ {
			w := ChipSlice(line, nchips, 2, c, u)
			SetChipSlice(line, nchips, 2, c, u, w)
		}
	}
	if HammingBytes(line, clone) != 0 {
		t.Fatal("ChipSlice/SetChipSlice round trip corrupted the line")
	}
	// A written slice must read back.
	SetChipSlice(line, nchips, 2, 2, 5, 0xBEEF)
	if got := ChipSlice(line, nchips, 2, 2, 5); got != 0xBEEF {
		t.Fatalf("ChipSlice read back %#x, want 0xBEEF", got)
	}
}

func TestChipSliceLayout(t *testing.T) {
	// Chip c's slice of unit u occupies bytes u*2*nchips + 2c, little
	// endian, matching a 64-bit bus spread across four x16 chips.
	line := make([]byte, 64)
	line[0], line[1] = 0x34, 0x12 // unit 0, chip 0
	line[6], line[7] = 0x78, 0x56 // unit 0, chip 3
	line[8], line[9] = 0xCD, 0xAB // unit 1, chip 0
	if got := ChipSlice(line, 4, 2, 0, 0); got != 0x1234 {
		t.Errorf("unit0/chip0 = %#x, want 0x1234", got)
	}
	if got := ChipSlice(line, 4, 2, 3, 0); got != 0x5678 {
		t.Errorf("unit0/chip3 = %#x, want 0x5678", got)
	}
	if got := ChipSlice(line, 4, 2, 0, 1); got != 0xABCD {
		t.Errorf("unit1/chip0 = %#x, want 0xABCD", got)
	}
}

func BenchmarkTransition16(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tr := Transition16(uint16(i), uint16(i*2654435761))
		_ = tr.NumChanged()
	}
}

func BenchmarkFlipEncode(b *testing.B) {
	old := FlipWord{Bits: 0xA5A5}
	for i := 0; i < b.N; i++ {
		old = FlipEncode(old, uint16(i*40503), 16)
	}
}
