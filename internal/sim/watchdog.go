package sim

import (
	"context"
	"errors"
	"fmt"

	"tetriswrite/internal/units"
)

// ErrStopped is the error RunContext and Run report when Stop was called
// with a nil reason.
var ErrStopped = errors.New("sim: engine stopped")

// Watchdog bounds one RunContext call. The zero value imposes no limits
// beyond context cancellation, making RunContext(context.Background(),
// Watchdog{}) equivalent to Run.
type Watchdog struct {
	// MaxEvents is the maximum number of events this call may execute;
	// 0 means unlimited. A queue that drains in exactly MaxEvents events
	// is within budget; the budget trips only when an event beyond it is
	// still pending.
	MaxEvents uint64
	// MaxSimTime is the maximum simulated time the call may advance past
	// the time at which it started; 0 means unlimited. An event landing
	// exactly on the deadline still executes; the first event strictly
	// beyond it trips the budget.
	MaxSimTime units.Duration
	// CheckEvery is the number of events between context polls and
	// heartbeats (default 1024). Lower values detect cancellation sooner
	// at slightly higher overhead.
	CheckEvery uint64
	// Heartbeat, when non-nil, receives a progress report every
	// CheckEvery events — the liveness signal that distinguishes a slow
	// simulation from a livelocked one.
	Heartbeat func(Progress)
}

// Progress is one heartbeat report.
type Progress struct {
	Events  uint64     // events executed by this RunContext call
	Now     units.Time // current simulated time
	Pending int        // events still queued
}

// BudgetError reports a tripped watchdog budget. The engine state is
// intact: the queue still holds the unexecuted events and the clock
// stands at the last executed event.
type BudgetError struct {
	Events    uint64     // events executed by the call
	MaxEvents uint64     // configured event budget (0 if the time budget tripped)
	Now       units.Time // simulated time when the budget tripped
	Deadline  units.Time // simulated-time deadline (only when SimTime)
	SimTime   bool       // true: MaxSimTime tripped; false: MaxEvents tripped
}

func (e *BudgetError) Error() string {
	if e.SimTime {
		return fmt.Sprintf("sim: watchdog: next event past simulated-time deadline %v (clock %v, %d events executed)",
			e.Deadline, e.Now, e.Events)
	}
	return fmt.Sprintf("sim: watchdog: event budget %d exhausted at simulated time %v with events still pending",
		e.MaxEvents, e.Now)
}

// Stop halts the engine at the next event boundary: the currently
// executing callback finishes, then Run or RunContext returns err (or
// ErrStopped when err is nil). The first Stop wins; later calls are
// ignored. Queued events stay queued. Invariant guards use this to
// terminate a run the moment a violation is detected instead of letting
// a corrupted simulation continue.
func (e *Engine) Stop(err error) {
	if e.stopErr == nil {
		if err == nil {
			err = ErrStopped
		}
		e.stopErr = err
	}
}

// StopReason returns the error passed to Stop, or nil if the engine was
// never stopped.
func (e *Engine) StopReason() error { return e.stopErr }

// RunContext executes events until the queue drains, returning nil, or
// until the context is cancelled, a watchdog budget trips, or Stop is
// called — returning the corresponding error with the engine state
// intact (the queue keeps its unexecuted events). Cancellation is polled
// every wd.CheckEvery events, so a livelocked simulation — one whose
// callbacks keep rescheduling themselves forever — is terminated with a
// diagnosable error rather than hanging the caller.
func (e *Engine) RunContext(ctx context.Context, wd Watchdog) error {
	checkEvery := wd.CheckEvery
	if checkEvery == 0 {
		checkEvery = 1024
	}
	if err := ctx.Err(); err != nil {
		return err // cancelled before the first event
	}
	var deadline units.Time
	if wd.MaxSimTime > 0 {
		deadline = e.now.Add(wd.MaxSimTime)
	}
	// Count executed events as a delta of the engine's processed counter
	// rather than counting Step calls: a Step that merely resolves a lazy
	// event (AtLazy re-queue) does not advance e.events, so budgets,
	// heartbeats and cancellation polls fire at exactly the same points
	// whether or not lazy events are in play.
	start := e.events
	var lastBeat uint64
	q := e.queue()
	for {
		if e.stopErr != nil {
			return e.stopErr
		}
		at, ok := q.peek()
		if !ok {
			return nil
		}
		executed := e.events - start
		if wd.MaxEvents > 0 && executed >= wd.MaxEvents {
			return &BudgetError{Events: executed, MaxEvents: wd.MaxEvents, Now: e.now}
		}
		if wd.MaxSimTime > 0 && at > deadline {
			return &BudgetError{Events: executed, Now: e.now, Deadline: deadline, SimTime: true}
		}
		e.Step()
		executed = e.events - start
		if executed != lastBeat && executed%checkEvery == 0 {
			lastBeat = executed
			if wd.Heartbeat != nil {
				wd.Heartbeat(Progress{Events: executed, Now: e.now, Pending: q.len()})
			}
			if err := ctx.Err(); err != nil {
				return err
			}
		}
	}
}
