package sim

import (
	"context"
	"errors"
	"strings"
	"testing"

	"tetriswrite/internal/units"
)

func bothQueues(t *testing.T, f func(t *testing.T, e *Engine)) {
	for _, kind := range []QueueKind{QueueHeap, QueueWheel} {
		t.Run(string(kind), func(t *testing.T) { f(t, NewEngine(kind)) })
	}
}

// TestAtLazyResolvesLater: a lazy event whose resolver reports a later
// time is transparently re-queued there — events scheduled between the
// bound and the final time run first, the clock never shows the bound,
// and Processed counts the lazy event exactly once.
func TestAtLazyResolvesLater(t *testing.T) {
	bothQueues(t, func(t *testing.T, e *Engine) {
		var got []string
		resolves := 0
		e.AtLazy(10, func() (units.Time, func()) {
			resolves++
			return 25, func() {
				if e.Now() != 25 {
					t.Errorf("lazy body at %v, want 25", e.Now())
				}
				got = append(got, "lazy")
			}
		})
		e.At(15, func() { got = append(got, "mid") })
		e.At(30, func() { got = append(got, "end") })
		e.Run()
		if resolves != 1 {
			t.Errorf("resolver ran %d times, want 1", resolves)
		}
		want := []string{"mid", "lazy", "end"}
		for i := range want {
			if i >= len(got) || got[i] != want[i] {
				t.Fatalf("order %v, want %v", got, want)
			}
		}
		if e.Processed() != 3 {
			t.Errorf("Processed = %d, want 3 (re-queue is transparent)", e.Processed())
		}
	})
}

// TestAtLazyResolvesEqual: a resolver confirming the bound runs the body
// in the same Step, preserving the event's sequence position among
// same-time events — an equal-time re-queue would slot it after
// later-inserted events that already drained into the wheel's ready
// buffer.
func TestAtLazyResolvesEqual(t *testing.T) {
	bothQueues(t, func(t *testing.T, e *Engine) {
		var got []string
		e.At(10, func() { got = append(got, "before") })
		e.AtLazy(10, func() (units.Time, func()) {
			return 10, func() { got = append(got, "lazy") }
		})
		e.At(10, func() { got = append(got, "after") })
		e.Run()
		want := []string{"before", "lazy", "after"}
		for i := range want {
			if i >= len(got) || got[i] != want[i] {
				t.Fatalf("order %v, want %v", got, want)
			}
		}
	})
}

// TestAtLazySeqInterleavesWithAt: lazy and plain events share one
// sequence counter, so a lazy placeholder keeps exactly the tiebreak
// rank its issue order implies.
func TestAtLazySeqInterleavesWithAt(t *testing.T) {
	bothQueues(t, func(t *testing.T, e *Engine) {
		var got []int
		e.At(5, func() { got = append(got, 0) })
		e.AtLazy(5, func() (units.Time, func()) {
			return 5, func() { got = append(got, 1) }
		})
		e.At(5, func() { got = append(got, 2) })
		e.AtLazy(5, func() (units.Time, func()) {
			return 5, func() { got = append(got, 3) }
		})
		e.Run()
		for i, v := range got {
			if v != i {
				t.Fatalf("tiebreak order %v, want [0 1 2 3]", got)
			}
		}
	})
}

// TestAtLazyEarlierPanics: resolving below the bound means the bound was
// not conservative — the kernel must refuse rather than time-travel.
func TestAtLazyEarlierPanics(t *testing.T) {
	bothQueues(t, func(t *testing.T, e *Engine) {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("no panic for a resolution before the bound")
			}
			if !strings.Contains(r.(string), "before its bound") {
				t.Fatalf("panic = %v", r)
			}
		}()
		e.AtLazy(10, func() (units.Time, func()) {
			return 5, func() {}
		})
		e.Run()
	})
}

// TestAtLazyPastBoundPanics: like At, the bound itself must not be in
// the past.
func TestAtLazyPastBoundPanics(t *testing.T) {
	e := NewEngine(QueueHeap)
	e.At(10, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic scheduling a lazy event in the past")
		}
	}()
	e.AtLazy(5, func() (units.Time, func()) { return 5, func() {} })
}

// TestAtLazyChained: a lazy body scheduling further (lazy) events — the
// controller's actual usage, every write completion scheduling the next
// — drains correctly.
func TestAtLazyChained(t *testing.T) {
	bothQueues(t, func(t *testing.T, e *Engine) {
		var times []units.Time
		n := 0
		var arm func()
		arm = func() {
			e.AtLazy(e.Now().Add(3), func() (units.Time, func()) {
				return e.Now().Add(7), func() {
					times = append(times, e.Now())
					if n++; n < 4 {
						arm()
					}
				}
			})
		}
		e.At(0, arm)
		e.Run()
		for i, at := range times {
			if at != units.Time((i+1)*7) {
				t.Fatalf("chain times %v", times)
			}
		}
	})
}

// TestRunContextBudgetIgnoresResolutions: watchdog budgets, heartbeats
// and cancellation polls count executed events only — a Step that merely
// re-queues a lazy event is invisible, so serial and parallel engine
// modes trip at identical points.
func TestRunContextBudgetIgnoresResolutions(t *testing.T) {
	bothQueues(t, func(t *testing.T, e *Engine) {
		for i := 0; i < 10; i++ {
			at := units.Time(i*10 + 1)
			e.AtLazy(at, func() (units.Time, func()) {
				return at.Add(5), func() {}
			})
		}
		err := e.RunContext(context.Background(), Watchdog{MaxEvents: 5})
		var be *BudgetError
		if !errors.As(err, &be) {
			t.Fatalf("err = %v, want *BudgetError", err)
		}
		if be.Events != 5 {
			t.Errorf("budget tripped at %d events, want 5 (resolutions must not count)", be.Events)
		}
	})
}

// TestRunContextSimTimeWithLazyBound: the sim-time budget peeks at the
// placeholder's conservative bound; a bound within the deadline whose
// resolution lands beyond it still executes the resolution step and then
// trips on the re-queued event, identically in both queue kinds.
func TestRunContextSimTimeWithLazyBound(t *testing.T) {
	bothQueues(t, func(t *testing.T, e *Engine) {
		ran := false
		e.AtLazy(10, func() (units.Time, func()) {
			return 100, func() { ran = true }
		})
		err := e.RunContext(context.Background(), Watchdog{MaxSimTime: 50})
		var be *BudgetError
		if !errors.As(err, &be) || !be.SimTime {
			t.Fatalf("err = %v, want sim-time *BudgetError", err)
		}
		if ran {
			t.Error("body ran past the deadline")
		}
		// The re-queued event is intact: lifting the deadline runs it.
		if err := e.RunContext(context.Background(), Watchdog{}); err != nil {
			t.Fatal(err)
		}
		if !ran || e.Now() != 100 {
			t.Errorf("after drain: ran=%v now=%v, want true/100", ran, e.Now())
		}
	})
}

// TestAtLazyNilResolverPanics: the resolver is not optional.
func TestAtLazyNilResolverPanics(t *testing.T) {
	e := NewEngine(QueueHeap)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for nil resolver")
		}
	}()
	e.AtLazy(1, nil)
}
