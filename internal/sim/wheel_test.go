package sim

import (
	"math/rand"
	"testing"

	"tetriswrite/internal/units"
)

// popRecord captures one executed event for order comparison.
type popRecord struct {
	at units.Time
	id int
}

// runSchedule drives an engine through a randomized schedule derived
// deterministically from seed and returns the execution order. Events
// reschedule follow-ups from inside callbacks (like real components do),
// exercising push-during-pop at the current tick, near future, and far
// future (overflow span for the wheel).
func runSchedule(t *testing.T, kind QueueKind, seed int64, initial, chained int) []popRecord {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	eng := NewEngine(kind)
	var order []popRecord
	nextID := 0
	var schedule func(at units.Time, depth int)
	schedule = func(at units.Time, depth int) {
		id := nextID
		nextID++
		eng.At(at, func() {
			order = append(order, popRecord{at: eng.Now(), id: id})
			if depth >= chained {
				return
			}
			// Mix of zero-delay, same-cycle-ish, short, medium, and
			// far-future (past the wheel span) follow-ups.
			var d units.Duration
			switch rng.Intn(10) {
			case 0:
				d = 0 // zero delay: runs this same tick, after pending same-tick events
			case 1, 2, 3:
				d = units.Duration(rng.Intn(4)) * 500 // same/near cycle
			case 4, 5, 6:
				d = units.Duration(rng.Int63n(100_000)) // short
			case 7, 8:
				d = units.Duration(rng.Int63n(1 << 30)) // medium, crosses levels
			default:
				d = units.Duration(1<<41 + rng.Int63n(1<<41)) // beyond wheel span
			}
			schedule(eng.Now().Add(d), depth+1)
		})
	}
	for i := 0; i < initial; i++ {
		// Bursts of identical timestamps stress the seq tiebreak.
		base := units.Time(rng.Int63n(1 << 20))
		n := 1 + rng.Intn(3)
		for j := 0; j < n; j++ {
			schedule(base, 0)
		}
	}
	eng.Run()
	if got := eng.Pending(); got != 0 {
		t.Fatalf("%s engine finished with %d pending events", kind, got)
	}
	return order
}

// TestWheelMatchesHeapPopOrder is the determinism contract: the timing
// wheel and the binary heap must execute identical schedules in an
// identical order, including zero-delay events, same-cycle bursts, and
// far-future events that land in the wheel's overflow heap.
func TestWheelMatchesHeapPopOrder(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		heap := runSchedule(t, QueueHeap, seed, 50, 40)
		wheel := runSchedule(t, QueueWheel, seed, 50, 40)
		if len(heap) != len(wheel) {
			t.Fatalf("seed %d: heap ran %d events, wheel ran %d", seed, len(heap), len(wheel))
		}
		for i := range heap {
			if heap[i] != wheel[i] {
				t.Fatalf("seed %d: pop %d differs: heap %+v, wheel %+v", seed, i, heap[i], wheel[i])
			}
		}
	}
}

// TestWheelZeroDelayOrdering pins the subtle same-tick rule: an event
// scheduled with zero delay from inside a callback runs on the same tick
// but after every event already queued for that tick (higher seq).
func TestWheelZeroDelayOrdering(t *testing.T) {
	for _, kind := range []QueueKind{QueueHeap, QueueWheel} {
		eng := NewEngine(kind)
		var order []int
		eng.At(100, func() {
			order = append(order, 1)
			eng.After(0, func() { order = append(order, 3) })
		})
		eng.At(100, func() { order = append(order, 2) })
		eng.Run()
		want := []int{1, 2, 3}
		for i := range want {
			if i >= len(order) || order[i] != want[i] {
				t.Fatalf("%s: got order %v, want %v", kind, order, want)
			}
		}
	}
}

// TestWheelOverflowInterleave forces the pathological interleaving of
// wheel-resident and overflow-resident events: a far-future event must
// not run before nearer events pushed after it, and popping it must not
// rewind the wheel position.
func TestWheelOverflowInterleave(t *testing.T) {
	eng := NewEngine(QueueWheel)
	far := units.Time(1 << 45) // far beyond the 2^40 wheel span
	var order []string
	eng.At(far, func() {
		order = append(order, "far")
		// Scheduling after an overflow pop exercises the cur catch-up.
		eng.After(500, func() { order = append(order, "after-far") })
	})
	eng.At(1000, func() {
		order = append(order, "near")
		eng.At(far-1, func() { order = append(order, "far-1") })
	})
	eng.Run()
	want := []string{"near", "far-1", "far", "after-far"}
	if len(order) != len(want) {
		t.Fatalf("got %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("got %v, want %v", order, want)
		}
	}
}

// TestWheelRunUntilParity checks peek-driven partial runs agree between
// queue kinds (RunUntil uses peek, not pop).
func TestWheelRunUntilParity(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		counts := make(map[QueueKind][]uint64)
		for _, kind := range []QueueKind{QueueHeap, QueueWheel} {
			rng := rand.New(rand.NewSource(seed))
			eng := NewEngine(kind)
			for i := 0; i < 200; i++ {
				eng.At(units.Time(rng.Int63n(1<<22)), func() {})
			}
			for _, cut := range []units.Time{1 << 18, 1 << 20, 1 << 21, 1 << 22} {
				eng.RunUntil(cut)
				counts[kind] = append(counts[kind], eng.Processed())
			}
		}
		for i := range counts[QueueHeap] {
			if counts[QueueHeap][i] != counts[QueueWheel][i] {
				t.Fatalf("seed %d cut %d: heap processed %d, wheel %d",
					seed, i, counts[QueueHeap][i], counts[QueueWheel][i])
			}
		}
	}
}

func TestQueueKindValid(t *testing.T) {
	for _, k := range []QueueKind{"", QueueWheel, QueueHeap} {
		if !k.Valid() {
			t.Errorf("kind %q should be valid", k)
		}
	}
	if QueueKind("bogus").Valid() {
		t.Error("bogus kind should be invalid")
	}
	if got := NewEngine("").Queue(); got != QueueWheel {
		t.Errorf("empty kind resolves to %q, want wheel", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("NewEngine with unknown kind should panic")
		}
	}()
	NewEngine("bogus")
}
