package sim

import (
	"testing"

	"tetriswrite/internal/units"
)

// Event turnover must not allocate in steady state: popped event structs
// are recycled into subsequent At calls.
func TestEventFreelistZeroAllocs(t *testing.T) {
	e := &Engine{}
	var tick func()
	n := 0
	tick = func() {
		n++
		if n < 8 {
			e.After(units.Duration(units.Nanosecond), tick)
		}
	}
	e.At(0, tick)
	e.Run() // warm: one event struct now sits in the freelist

	allocs := testing.AllocsPerRun(100, func() {
		e.After(units.Duration(units.Nanosecond), tick)
		e.Step()
	})
	if allocs != 0 {
		t.Fatalf("event schedule+step allocates %v objects/op, want 0", allocs)
	}
}

// Recycling must not corrupt ordering: a stress mix of cascaded and
// cross-scheduled events replays identically on a fresh engine.
func TestEventFreelistPreservesDeterminism(t *testing.T) {
	run := func() []int {
		e := &Engine{}
		var order []int
		for i := 0; i < 50; i++ {
			i := i
			e.At(units.Time((i%7)*10), func() {
				order = append(order, i)
				if i%3 == 0 {
					e.After(units.Duration(5), func() { order = append(order, 1000+i) })
				}
			})
		}
		e.Run()
		return order
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("replay lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
}
