package sim

import "tetriswrite/internal/units"

// QueueKind selects the event-queue implementation behind an Engine.
// The timing wheel is the default: O(1) schedule and advance with
// cache-friendly slot arrays, falling back to a far-future overflow heap
// only for events beyond its span. The binary heap is kept selectable so
// tests (and cautious users) can cross-check that both implementations
// pop events in exactly the same order — the engine's determinism
// contract does not depend on which queue backs it.
type QueueKind string

const (
	// QueueWheel is the hierarchical timing wheel (the default; the
	// empty string resolves to it).
	QueueWheel QueueKind = "wheel"
	// QueueHeap is the original container/heap binary heap.
	QueueHeap QueueKind = "heap"
)

// Valid reports whether k names a known queue implementation. The empty
// kind is valid and means QueueWheel.
func (k QueueKind) Valid() bool {
	switch k {
	case "", QueueWheel, QueueHeap:
		return true
	}
	return false
}

// eventQueue is the priority-queue contract the engine drives: events
// come back in strict (at, seq) order. Implementations are
// single-threaded, like the engine itself.
type eventQueue interface {
	push(ev *event)
	// pop removes and returns the earliest event, or nil when empty.
	pop() *event
	// peek returns the earliest event's time without removing it.
	peek() (units.Time, bool)
	len() int
}

// heapQueue adapts eventHeap to the eventQueue interface.
type heapQueue struct {
	h eventHeap
}

func (q *heapQueue) push(ev *event) { heapPush(&q.h, ev) }

func (q *heapQueue) pop() *event {
	if len(q.h) == 0 {
		return nil
	}
	return heapPop(&q.h)
}

func (q *heapQueue) peek() (units.Time, bool) {
	if len(q.h) == 0 {
		return 0, false
	}
	return q.h[0].at, true
}

func (q *heapQueue) len() int { return len(q.h) }
