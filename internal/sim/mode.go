package sim

// EngineMode selects how the full-system simulation executes: serially
// on one goroutine (the seed behavior and the default), or with per-bank
// write planning offloaded to worker goroutines under conservative
// lookahead (see memctrl's parallel controller). Both modes produce
// bit-identical Results; the cross-check sweep in internal/system
// enforces it. Like QueueKind, the zero value resolves to the default.
type EngineMode string

const (
	// EngineSerial runs everything on the engine goroutine (default).
	EngineSerial EngineMode = "serial"
	// EngineParallel plans bank writes on per-bank worker goroutines,
	// joined at conservative-lookahead barriers so results stay
	// bit-identical to EngineSerial.
	EngineParallel EngineMode = "parallel"
)

// Valid reports whether the mode is known. The empty string is valid and
// resolves to EngineSerial.
func (m EngineMode) Valid() bool {
	switch m {
	case "", EngineSerial, EngineParallel:
		return true
	}
	return false
}

// Parallel reports whether the mode selects the parallel engine.
func (m EngineMode) Parallel() bool { return m == EngineParallel }
