// Package sim provides the deterministic event-driven simulation kernel
// shared by the full-system experiments: a time-ordered event queue with
// stable tie-breaking, so identical inputs always replay identically.
package sim

import (
	"container/heap"
	"fmt"

	"tetriswrite/internal/units"
)

// Event is a callback scheduled at a point in simulated time.
type event struct {
	at  units.Time
	seq uint64 // insertion order, breaks ties deterministically
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Engine runs events in time order. The zero value is ready to use.
// Engines are single-threaded: all scheduling must happen from event
// callbacks or before Run.
type Engine struct {
	pq      eventHeap
	now     units.Time
	seq     uint64
	events  uint64
	stopErr error // set by Stop; halts Run/RunContext at the next boundary

	// free recycles event structs between Step and At: a long simulation
	// turns over millions of events whose live population is tiny (the
	// pending queue), so reuse keeps the kernel off the allocator. Only
	// grows to the high-water mark of the pending queue.
	free []*event
}

// Now returns the current simulated time.
func (e *Engine) Now() units.Time { return e.now }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.events }

// Pending returns the number of events waiting to run.
func (e *Engine) Pending() int { return len(e.pq) }

// At schedules fn at absolute time t, which must not precede the current
// time (the simulator has no time machine; scheduling in the past is
// always a component bug, so it panics loudly).
func (e *Engine) At(t units.Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: event scheduled at %v, before now %v", t, e.now))
	}
	e.seq++
	var ev *event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
	} else {
		ev = new(event)
	}
	ev.at, ev.seq, ev.fn = t, e.seq, fn
	heap.Push(&e.pq, ev)
}

// After schedules fn d after the current time.
func (e *Engine) After(d units.Duration, fn func()) {
	if d < 0 {
		panic("sim: negative delay")
	}
	e.At(e.now.Add(d), fn)
}

// Step runs the single earliest event. It reports false when the queue
// is empty.
func (e *Engine) Step() bool {
	if len(e.pq) == 0 {
		return false
	}
	ev := heap.Pop(&e.pq).(*event)
	e.now = ev.at
	e.events++
	fn := ev.fn
	// Recycle before running: the struct is fully extracted, so fn's own
	// At calls may reuse it immediately. Clearing fn releases the
	// closure's captures as soon as the event is done.
	ev.fn = nil
	e.free = append(e.free, ev)
	fn()
	return true
}

// Run executes events until the queue drains, or until Stop is called
// (RunContext additionally supports cancellation and budgets).
func (e *Engine) Run() {
	for e.stopErr == nil && e.Step() {
	}
}

// RunUntil executes events up to and including time t, then stops. Later
// events stay queued; the current time advances to t even if no event
// lands exactly there.
func (e *Engine) RunUntil(t units.Time) {
	for len(e.pq) > 0 && e.pq[0].at <= t {
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
}

// RunFor executes events for d of simulated time from now.
func (e *Engine) RunFor(d units.Duration) { e.RunUntil(e.now.Add(d)) }
