// Package sim provides the deterministic event-driven simulation kernel
// shared by the full-system experiments: a time-ordered event queue with
// stable tie-breaking, so identical inputs always replay identically.
//
// Two queue implementations back the engine (see QueueKind): a
// hierarchical timing wheel with O(1) schedule/advance (the default) and
// the original binary heap. Both pop events in exactly the same
// (time, sequence) order, which the cross-check tests enforce, so every
// Result is bit-identical whichever queue is selected.
package sim

import (
	"fmt"

	"tetriswrite/internal/units"
)

// Event is a callback scheduled at a point in simulated time.
type event struct {
	at   units.Time
	seq  uint64 // insertion order, breaks ties deterministically
	fn   func()
	next *event // intrusive slot-list link (timing wheel only)

	// resolve, when non-nil, marks a lazily-timed event (AtLazy): at is a
	// conservative lower bound and resolve is consulted when the event
	// reaches the head of the queue to learn the final (time, callback).
	resolve func() (units.Time, func())
}

// eventHeap is a binary min-heap ordered by (at, seq). It backs the
// QueueHeap engine and the timing wheel's far-future overflow.
type eventHeap []*event

func eventLess(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// heapPush and heapPop are container/heap without the interface boxing:
// the queue is the engine's innermost loop, so the any round-trips and
// Less/Swap indirection are worth avoiding.
func heapPush(h *eventHeap, ev *event) {
	*h = append(*h, ev)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !eventLess(s[i], s[parent]) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

func heapPop(h *eventHeap) *event {
	s := *h
	n := len(s)
	top := s[0]
	s[0] = s[n-1]
	s[n-1] = nil
	s = s[:n-1]
	*h = s
	// Sift the moved element down.
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		least := i
		if l < len(s) && eventLess(s[l], s[least]) {
			least = l
		}
		if r < len(s) && eventLess(s[r], s[least]) {
			least = r
		}
		if least == i {
			break
		}
		s[i], s[least] = s[least], s[i]
		i = least
	}
	return top
}

// Engine runs events in time order. The zero value is ready to use and
// is backed by the timing wheel; NewEngine selects the implementation
// explicitly. Engines are single-threaded: all scheduling must happen
// from event callbacks or before Run.
type Engine struct {
	q       eventQueue
	kind    QueueKind
	now     units.Time
	seq     uint64
	events  uint64
	stopErr error // set by Stop; halts Run/RunContext at the next boundary

	// free recycles event structs between Step and At: a long simulation
	// turns over millions of events whose live population is tiny (the
	// pending queue), so reuse keeps the kernel off the allocator. Only
	// grows to the high-water mark of the pending queue.
	free []*event
}

// NewEngine returns an engine backed by the given queue kind. The empty
// kind selects the timing wheel (the default). It panics on unknown
// kinds — queue selection is configuration, and a typo there should not
// silently fall back.
func NewEngine(kind QueueKind) *Engine {
	if !kind.Valid() {
		panic(fmt.Sprintf("sim: unknown queue kind %q", kind))
	}
	return &Engine{kind: kind}
}

// Queue returns the engine's queue kind (never empty: the zero value
// resolves to QueueWheel).
func (e *Engine) Queue() QueueKind {
	if e.kind == "" {
		return QueueWheel
	}
	return e.kind
}

// queue lazily builds the configured queue, so the zero Engine value
// stays ready to use.
func (e *Engine) queue() eventQueue {
	if e.q == nil {
		if e.kind == QueueHeap {
			e.q = &heapQueue{}
		} else {
			e.q = newTimingWheel()
		}
	}
	return e.q
}

// Now returns the current simulated time.
func (e *Engine) Now() units.Time { return e.now }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.events }

// Pending returns the number of events waiting to run.
func (e *Engine) Pending() int {
	if e.q == nil {
		return 0
	}
	return e.q.len()
}

// At schedules fn at absolute time t, which must not precede the current
// time (the simulator has no time machine; scheduling in the past is
// always a component bug, so it panics loudly).
func (e *Engine) At(t units.Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: event scheduled at %v, before now %v", t, e.now))
	}
	e.seq++
	var ev *event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
	} else {
		ev = new(event)
	}
	ev.at, ev.seq, ev.fn, ev.next, ev.resolve = t, e.seq, fn, nil, nil
	e.queue().push(ev)
}

// AtLazy schedules an event whose final time is not yet known: t is a
// conservative lower bound, and resolve is called when the event reaches
// the head of the queue to produce the final (time, callback) pair. If
// the final time is later than t the event is transparently re-queued at
// it, keeping its original sequence number, without advancing the clock
// or the processed-event count; if equal, the callback runs immediately
// in the same Step. A final time earlier than t panics — the bound was
// not conservative, and silently reordering would corrupt determinism.
//
// resolve may block (the parallel controller uses it to join a worker
// goroutine) but must not touch the engine. AtLazy consumes a sequence
// number exactly like At, so a run that replaces an At with an AtLazy of
// a sound lower bound replays bit-identically.
func (e *Engine) AtLazy(t units.Time, resolve func() (units.Time, func())) {
	if t < e.now {
		panic(fmt.Sprintf("sim: event scheduled at %v, before now %v", t, e.now))
	}
	if resolve == nil {
		panic("sim: AtLazy with nil resolve")
	}
	e.seq++
	var ev *event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
	} else {
		ev = new(event)
	}
	ev.at, ev.seq, ev.fn, ev.next, ev.resolve = t, e.seq, nil, nil, resolve
	e.queue().push(ev)
}

// After schedules fn d after the current time.
func (e *Engine) After(d units.Duration, fn func()) {
	if d < 0 {
		panic("sim: negative delay")
	}
	e.At(e.now.Add(d), fn)
}

// Step runs the single earliest event. It reports false when the queue
// is empty. A lazily-timed event (AtLazy) whose final time lands beyond
// its bound is re-queued instead of run; Step still reports true but
// neither the clock nor the processed count advances — the resolution is
// invisible to watchdog budgets and Result counters.
func (e *Engine) Step() bool {
	ev := e.queue().pop()
	if ev == nil {
		return false
	}
	if ev.resolve != nil {
		at, fn := ev.resolve()
		ev.resolve = nil
		if at < ev.at {
			panic(fmt.Sprintf("sim: lazy event resolved to %v, before its bound %v", at, ev.at))
		}
		if at > ev.at {
			// Re-queue at the final time under the original seq. The
			// level-0 wheel tick is one time unit, so a strictly later
			// time can never land in the already-drained ready buffer.
			ev.at, ev.fn, ev.next = at, fn, nil
			e.queue().push(ev)
			return true
		}
		// Equal to the bound: must run in this same Step — re-queueing an
		// equal-time event behind the wheel's drained ready buffer would
		// order it after same-tick events with higher seq.
		ev.fn = fn
	}
	e.now = ev.at
	e.events++
	fn := ev.fn
	// Recycle before running: the struct is fully extracted, so fn's own
	// At calls may reuse it immediately. Clearing fn releases the
	// closure's captures as soon as the event is done.
	ev.fn = nil
	ev.next = nil
	e.free = append(e.free, ev)
	fn()
	return true
}

// Run executes events until the queue drains, or until Stop is called
// (RunContext additionally supports cancellation and budgets).
func (e *Engine) Run() {
	for e.stopErr == nil && e.Step() {
	}
}

// RunUntil executes events up to and including time t, then stops. Later
// events stay queued; the current time advances to t even if no event
// lands exactly there.
func (e *Engine) RunUntil(t units.Time) {
	q := e.queue()
	for {
		at, ok := q.peek()
		if !ok || at > t {
			break
		}
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
}

// RunFor executes events for d of simulated time from now.
func (e *Engine) RunFor(d units.Duration) { e.RunUntil(e.now.Add(d)) }
