package sim

import (
	"math/rand"
	"strings"
	"testing"

	"tetriswrite/internal/units"
)

func TestEventOrdering(t *testing.T) {
	var e Engine
	var got []int
	e.At(30, func() { got = append(got, 3) })
	e.At(10, func() { got = append(got, 1) })
	e.At(20, func() { got = append(got, 2) })
	e.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("execution order %v, want [1 2 3]", got)
	}
	if e.Now() != 30 {
		t.Errorf("Now = %v, want 30", e.Now())
	}
	if e.Processed() != 3 {
		t.Errorf("Processed = %d, want 3", e.Processed())
	}
}

func TestTieBreakIsInsertionOrder(t *testing.T) {
	var e Engine
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events ran out of insertion order: %v", got)
		}
	}
}

func TestCascadedScheduling(t *testing.T) {
	var e Engine
	var trace []units.Time
	var ping func()
	n := 0
	ping = func() {
		trace = append(trace, e.Now())
		n++
		if n < 5 {
			e.After(7, ping)
		}
	}
	e.At(0, ping)
	e.Run()
	for i, at := range trace {
		if at != units.Time(i*7) {
			t.Fatalf("cascade times %v", trace)
		}
	}
}

func TestPastSchedulingPanics(t *testing.T) {
	var e Engine
	e.At(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(50, func() {})
	})
	e.Run()
}

func TestNegativeDelayPanics(t *testing.T) {
	var e Engine
	defer func() {
		if recover() == nil {
			t.Error("negative delay did not panic")
		}
	}()
	e.After(-1, func() {})
}

func TestRunUntil(t *testing.T) {
	var e Engine
	ran := 0
	e.At(10, func() { ran++ })
	e.At(20, func() { ran++ })
	e.At(30, func() { ran++ })
	e.RunUntil(20)
	if ran != 2 {
		t.Errorf("ran %d events, want 2", ran)
	}
	if e.Now() != 20 {
		t.Errorf("Now = %v, want 20", e.Now())
	}
	if e.Pending() != 1 {
		t.Errorf("Pending = %d, want 1", e.Pending())
	}
	e.RunFor(10)
	if ran != 3 || e.Now() != 30 {
		t.Errorf("after RunFor: ran=%d now=%v", ran, e.Now())
	}
}

func TestRunUntilAdvancesIdleTime(t *testing.T) {
	var e Engine
	e.RunUntil(1000)
	if e.Now() != 1000 {
		t.Errorf("idle RunUntil left Now at %v", e.Now())
	}
}

// TestDeterminism: a random workload of self-scheduling events executes
// identically twice.
func TestDeterminism(t *testing.T) {
	run := func(seed int64) []units.Time {
		var e Engine
		rng := rand.New(rand.NewSource(seed))
		var trace []units.Time
		var spawn func(depth int)
		spawn = func(depth int) {
			trace = append(trace, e.Now())
			if depth < 4 {
				for i := 0; i < 2; i++ {
					e.After(units.Duration(rng.Intn(50)), func() { spawn(depth + 1) })
				}
			}
		}
		e.At(0, func() { spawn(0) })
		e.Run()
		return trace
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatalf("different event counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trace diverges at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func BenchmarkEngine(b *testing.B) {
	var e Engine
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			e.After(1, tick)
		}
	}
	e.At(0, tick)
	e.Run()
}

// After(0) schedules at the current instant but still behind every event
// already queued for that instant: insertion order is the tiebreak, so a
// zero-delay hop cannot jump ahead of earlier same-time work.
func TestAfterZeroDelay(t *testing.T) {
	var eng Engine
	var order []string
	eng.At(10, func() { order = append(order, "a") })
	eng.At(10, func() {
		order = append(order, "b")
		eng.After(0, func() { order = append(order, "d") })
	})
	eng.At(10, func() { order = append(order, "c") })
	eng.Run()
	if got := strings.Join(order, ""); got != "abcd" {
		t.Errorf("order = %q, want abcd", got)
	}
	if eng.Now() != 10 {
		t.Errorf("now = %v after zero-delay chain, want 10", eng.Now())
	}
}

// Same-timestamp events scheduled *during* the run still execute in
// insertion order relative to each other, matching pre-run scheduling.
func TestSameTimestampSchedulingDuringRun(t *testing.T) {
	run := func() []int {
		var eng Engine
		var order []int
		eng.At(5, func() {
			for i := 0; i < 8; i++ {
				i := i
				eng.After(7, func() { order = append(order, i) })
			}
		})
		eng.At(12, func() { order = append(order, 100) })
		eng.Run()
		return order
	}
	first := run()
	want := []int{100, 0, 1, 2, 3, 4, 5, 6, 7} // At(12) was inserted first
	if len(first) != len(want) {
		t.Fatalf("got %v, want %v", first, want)
	}
	for i := range want {
		if first[i] != want[i] {
			t.Fatalf("got %v, want %v", first, want)
		}
	}
	for trial := 0; trial < 10; trial++ {
		again := run()
		for i := range first {
			if again[i] != first[i] {
				t.Fatalf("nondeterministic same-timestamp order: %v vs %v", again, first)
			}
		}
	}
}

// A periodic self-rescheduling observer — the telemetry sampler's shape —
// must re-arm only while other work is pending, or Run would never
// return. This pins the contract the sampler relies on: Pending() inside
// a callback counts the *other* queued events.
func TestSelfReschedulingObserver(t *testing.T) {
	var eng Engine
	var ticks []units.Time
	const period = 10

	// Workload: a chain of 5 events, 25 time units apart.
	var chain func(n int)
	chain = func(n int) {
		if n == 0 {
			return
		}
		eng.After(25, func() { chain(n - 1) })
	}
	chain(5)

	var tick func()
	tick = func() {
		ticks = append(ticks, eng.Now())
		if eng.Pending() > 0 {
			eng.After(period, tick)
		}
	}
	eng.After(period, tick)
	eng.Run()

	if len(ticks) == 0 {
		t.Fatal("observer never ticked")
	}
	for i, at := range ticks {
		if want := units.Time((i + 1) * period); at != want {
			t.Fatalf("tick %d at %v, want %v", i, at, want)
		}
	}
	// The last tick must land at or after the last workload event (125)
	// and the observer must then stop rather than spin forever.
	if last := ticks[len(ticks)-1]; last < 125 || last > 125+period {
		t.Errorf("last tick at %v, want within one period after 125", last)
	}
	if eng.Pending() != 0 {
		t.Errorf("%d events still queued after Run returned", eng.Pending())
	}
}
