package sim

import (
	"math/rand"
	"testing"

	"tetriswrite/internal/units"
)

func TestEventOrdering(t *testing.T) {
	var e Engine
	var got []int
	e.At(30, func() { got = append(got, 3) })
	e.At(10, func() { got = append(got, 1) })
	e.At(20, func() { got = append(got, 2) })
	e.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("execution order %v, want [1 2 3]", got)
	}
	if e.Now() != 30 {
		t.Errorf("Now = %v, want 30", e.Now())
	}
	if e.Processed() != 3 {
		t.Errorf("Processed = %d, want 3", e.Processed())
	}
}

func TestTieBreakIsInsertionOrder(t *testing.T) {
	var e Engine
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events ran out of insertion order: %v", got)
		}
	}
}

func TestCascadedScheduling(t *testing.T) {
	var e Engine
	var trace []units.Time
	var ping func()
	n := 0
	ping = func() {
		trace = append(trace, e.Now())
		n++
		if n < 5 {
			e.After(7, ping)
		}
	}
	e.At(0, ping)
	e.Run()
	for i, at := range trace {
		if at != units.Time(i*7) {
			t.Fatalf("cascade times %v", trace)
		}
	}
}

func TestPastSchedulingPanics(t *testing.T) {
	var e Engine
	e.At(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(50, func() {})
	})
	e.Run()
}

func TestNegativeDelayPanics(t *testing.T) {
	var e Engine
	defer func() {
		if recover() == nil {
			t.Error("negative delay did not panic")
		}
	}()
	e.After(-1, func() {})
}

func TestRunUntil(t *testing.T) {
	var e Engine
	ran := 0
	e.At(10, func() { ran++ })
	e.At(20, func() { ran++ })
	e.At(30, func() { ran++ })
	e.RunUntil(20)
	if ran != 2 {
		t.Errorf("ran %d events, want 2", ran)
	}
	if e.Now() != 20 {
		t.Errorf("Now = %v, want 20", e.Now())
	}
	if e.Pending() != 1 {
		t.Errorf("Pending = %d, want 1", e.Pending())
	}
	e.RunFor(10)
	if ran != 3 || e.Now() != 30 {
		t.Errorf("after RunFor: ran=%d now=%v", ran, e.Now())
	}
}

func TestRunUntilAdvancesIdleTime(t *testing.T) {
	var e Engine
	e.RunUntil(1000)
	if e.Now() != 1000 {
		t.Errorf("idle RunUntil left Now at %v", e.Now())
	}
}

// TestDeterminism: a random workload of self-scheduling events executes
// identically twice.
func TestDeterminism(t *testing.T) {
	run := func(seed int64) []units.Time {
		var e Engine
		rng := rand.New(rand.NewSource(seed))
		var trace []units.Time
		var spawn func(depth int)
		spawn = func(depth int) {
			trace = append(trace, e.Now())
			if depth < 4 {
				for i := 0; i < 2; i++ {
					e.After(units.Duration(rng.Intn(50)), func() { spawn(depth + 1) })
				}
			}
		}
		e.At(0, func() { spawn(0) })
		e.Run()
		return trace
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatalf("different event counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trace diverges at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func BenchmarkEngine(b *testing.B) {
	var e Engine
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			e.After(1, tick)
		}
	}
	e.At(0, tick)
	e.Run()
}
