package sim

import (
	"math/bits"
	"slices"

	"tetriswrite/internal/units"
)

// Hierarchical timing wheel (calendar queue) over the picosecond time
// base. Five levels of 256 slots cover 2^40 ps (~1.1 s) of simulated
// future relative to the wheel's current position; the rare event beyond
// that span waits in a (at, seq)-ordered overflow heap and is popped by
// direct comparison, so correctness never depends on the span.
//
// Determinism: the engine's contract is that events pop in strict
// (at, seq) order. Slot lists are unordered (cascades interleave with
// direct inserts), so the slot holding the minimum tick is drained into
// a scratch buffer and sorted by seq — all events in a level-0 slot
// share one tick, making seq the only key — before being handed out one
// by one. The cross-check tests in wheel_test.go replay random
// schedules (zero delays, same-cycle bursts, far-future outliers)
// against the binary heap and require identical pop order.
const (
	wheelBits   = 8
	wheelSlots  = 1 << wheelBits // 256 slots per level
	wheelMask   = wheelSlots - 1
	wheelLevels = 5 // level l covers deltas < 2^((l+1)*8) ps
)

// wheelLevel is one ring of slots. Slots are intrusive singly-linked
// event lists (push prepends; order is restored at drain time), with an
// occupancy bitmap so finding the next non-empty slot is a handful of
// word scans instead of a walk.
type wheelLevel struct {
	slot  [wheelSlots]*event
	occ   [wheelSlots / 64]uint64
	count int

	// cacheSlot memoizes scanFrom's result — the first occupied slot
	// circularly at-or-after the wheel position's slot on this level.
	// refill consults every non-empty level once per drained tick, so
	// without the memo the bitmap scans dominate the kernel's cost. The
	// memo stays valid as the position advances (the position never
	// passes a level's minimum pending tick); push keeps it minimal by
	// circular-distance comparison and take invalidates it.
	cacheSlot uint64
	cacheOK   bool
}

func (l *wheelLevel) add(s uint64, ev *event) {
	ev.next = l.slot[s]
	l.slot[s] = ev
	l.occ[s>>6] |= 1 << (s & 63)
	l.count++
}

// take detaches and returns slot s's whole list. The caller walks the
// list exactly once anyway (cascade or drain), so it owns the count
// bookkeeping — counting here would mean a second walk.
func (l *wheelLevel) take(s uint64) *event {
	head := l.slot[s]
	l.slot[s] = nil
	l.occ[s>>6] &^= 1 << (s & 63)
	l.cacheOK = false
	return head
}

// firstFrom is scanFrom through the memo: `from` is the wheel
// position's slot on this level, which only advances, and never past
// the level's minimum pending tick — so a memoized result stays the
// first occupied slot until a take clears it or a push beats it.
func (l *wheelLevel) firstFrom(from uint64) uint64 {
	if l.cacheOK {
		return l.cacheSlot
	}
	l.cacheSlot = l.scanFrom(from)
	l.cacheOK = true
	return l.cacheSlot
}

// scanFrom returns the first occupied slot index at or circularly after
// `from`. The caller guarantees count > 0.
func (l *wheelLevel) scanFrom(from uint64) uint64 {
	w := from >> 6
	// Bits at or above `from` within its word.
	if word := l.occ[w] &^ ((1 << (from & 63)) - 1); word != 0 {
		return w<<6 + uint64(bits.TrailingZeros64(word))
	}
	for k := uint64(1); k <= uint64(len(l.occ)); k++ {
		wi := (w + k) & uint64(len(l.occ)-1)
		word := l.occ[wi]
		if k == uint64(len(l.occ)) {
			// Wrapped back to the first word: only bits below `from`.
			word &= (1 << (from & 63)) - 1
		}
		if word != 0 {
			return wi<<6 + uint64(bits.TrailingZeros64(word))
		}
	}
	panic("sim: wheel bitmap scan on empty level")
}

// timingWheel implements eventQueue.
type timingWheel struct {
	cur      uint64 // wheel position in ticks (ps); never exceeds the min pending tick
	size     int    // events stored in the levels (excludes ready and overflow)
	levels   [wheelLevels]wheelLevel
	overflow eventHeap

	// ready holds the drained minimum-tick slot, sorted by seq;
	// readyPos is the next event to hand out.
	ready    []*event
	readyPos int
}

func newTimingWheel() *timingWheel { return &timingWheel{} }

func (w *timingWheel) len() int {
	return w.size + (len(w.ready) - w.readyPos) + len(w.overflow)
}

func (w *timingWheel) push(ev *event) {
	t := uint64(ev.at)
	if t < w.cur {
		// The engine forbids scheduling in the past, so this can only be
		// the gap between an overflow pop and the wheel position; clamp
		// to keep the slot arithmetic sound.
		t = w.cur
	}
	// Place by block-index difference, not raw delta: level l fits when
	// t's level-l block is within one ring revolution of cur's. Raw-delta
	// placement admits an event exactly 256 blocks ahead into the slot
	// the scan reads as the current block, which cascades back into the
	// same slot forever.
	for l := 0; l < wheelLevels; l++ {
		k := uint(l * wheelBits)
		if (t>>k)-(w.cur>>k) < wheelSlots {
			s := (t >> k) & wheelMask
			lv := &w.levels[l]
			if lv.cacheOK {
				// Keep the first-occupied memo minimal: circular distance
				// from the wheel position's slot decides "first".
				base := (w.cur >> k) & wheelMask
				if (s-base)&wheelMask < (lv.cacheSlot-base)&wheelMask {
					lv.cacheSlot = s
				}
			}
			lv.add(s, ev)
			w.size++
			return
		}
	}
	heapPush(&w.overflow, ev)
}

func (w *timingWheel) readyHead() *event {
	if w.readyPos < len(w.ready) {
		return w.ready[w.readyPos]
	}
	return nil
}

// refill locates the minimum pending tick in the levels, cascading
// coarser slots down as needed, and drains that tick's slot into the
// ready buffer. It stops without draining when the wheel minimum cannot
// beat `bound` (the overflow minimum), so the wheel position never
// advances past an earlier overflow event. Amortized O(1): every event
// cascades at most wheelLevels-1 times over its lifetime.
func (w *timingWheel) refill(bound uint64) {
	if w.size == 0 {
		return
	}
	for {
		bestStart := ^uint64(0)
		bestLv := -1
		var bestSlot uint64
		if l := &w.levels[0]; l.count > 0 {
			s := l.firstFrom(w.cur & wheelMask)
			tick := w.cur + ((s - w.cur) & wheelMask)
			bestStart, bestLv, bestSlot = tick, 0, s
		}
		for lv := 1; lv < wheelLevels; lv++ {
			l := &w.levels[lv]
			if l.count == 0 {
				continue
			}
			base := w.cur >> uint(lv*wheelBits)
			s := l.firstFrom(base & wheelMask)
			blockStart := (base + ((s - base) & wheelMask)) << uint(lv*wheelBits)
			if blockStart < w.cur {
				// The slot whose block contains the current position.
				blockStart = w.cur
			}
			// <= so a coarser block tied with a finer candidate cascades
			// first: it may hide an earlier (or equal-tick, lower-seq)
			// event.
			if blockStart <= bestStart {
				bestStart, bestLv, bestSlot = blockStart, lv, s
			}
		}
		if bestLv < 0 {
			return // levels empty (size was stale only if caller misused)
		}
		if bestStart > bound {
			// The overflow heap holds the true minimum; leave the wheel
			// position untouched so the overflow pop cannot time-travel.
			return
		}
		if bestLv == 0 {
			w.cur = bestStart
			w.drainSlot(bestSlot)
			return
		}
		// Cascade the coarse slot toward level 0. Advancing to the block
		// start first is safe — bestStart is a lower bound on every
		// pending tick — and guarantees each event lands at least one
		// level lower (its remaining delta is now below the block span).
		if bestStart > w.cur {
			w.cur = bestStart
		}
		lvl := &w.levels[bestLv]
		for ev := lvl.take(bestSlot); ev != nil; {
			next := ev.next
			ev.next = nil
			lvl.count--
			w.size--
			w.push(ev)
			ev = next
		}
	}
}

// drainSlot moves the level-0 slot s (all events share tick w.cur) into
// the ready buffer in seq order.
func (w *timingWheel) drainSlot(s uint64) {
	l := &w.levels[0]
	w.ready = w.ready[:0]
	w.readyPos = 0
	for ev := l.take(s); ev != nil; {
		next := ev.next
		ev.next = nil
		l.count--
		w.size--
		w.ready = append(w.ready, ev)
		ev = next
	}
	if len(w.ready) > 1 {
		slices.SortFunc(w.ready, func(a, b *event) int {
			// Same tick; seq is the only key and is unique.
			if a.seq < b.seq {
				return -1
			}
			return 1
		})
	}
}

// peekEvent returns the earliest pending event without removing it,
// refilling the ready buffer from the levels when needed.
func (w *timingWheel) peekEvent() *event {
	if w.readyHead() == nil && w.size > 0 {
		bound := ^uint64(0)
		if len(w.overflow) > 0 {
			bound = uint64(w.overflow[0].at)
		}
		w.refill(bound)
	}
	r := w.readyHead()
	if len(w.overflow) == 0 {
		return r
	}
	o := w.overflow[0]
	if r == nil || eventLess(o, r) {
		return o
	}
	return r
}

func (w *timingWheel) peek() (units.Time, bool) {
	ev := w.peekEvent()
	if ev == nil {
		return 0, false
	}
	return ev.at, true
}

func (w *timingWheel) pop() *event {
	ev := w.peekEvent()
	if ev == nil {
		return nil
	}
	if ev == w.readyHead() {
		w.readyPos++
		return ev
	}
	heapPop(&w.overflow)
	if t := uint64(ev.at); t > w.cur {
		w.cur = t
	}
	return ev
}
