package sim

import (
	"context"
	"errors"
	"testing"

	"tetriswrite/internal/units"
)

func ns(n int64) units.Duration { return units.Duration(n) }

// chain schedules a linear chain of n events, each 1 ns apart, counting
// executions.
func chain(e *Engine, n int, count *int) {
	var step func()
	step = func() {
		*count++
		if *count < n {
			e.After(ns(1), step)
		}
	}
	e.After(ns(1), step)
}

func TestRunContextDrainsLikeRun(t *testing.T) {
	var e Engine
	var count int
	chain(&e, 5, &count)
	if err := e.RunContext(context.Background(), Watchdog{}); err != nil {
		t.Fatal(err)
	}
	if count != 5 {
		t.Errorf("executed %d events, want 5", count)
	}
	if e.Pending() != 0 {
		t.Errorf("%d events left queued", e.Pending())
	}
}

func TestRunContextCancelBeforeFirstEvent(t *testing.T) {
	var e Engine
	ran := false
	e.After(ns(1), func() { ran = true })
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := e.RunContext(ctx, Watchdog{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran {
		t.Error("event executed despite pre-cancelled context")
	}
	if e.Pending() != 1 {
		t.Errorf("queue disturbed: %d pending, want 1", e.Pending())
	}
}

func TestRunContextCancelMidDrain(t *testing.T) {
	var e Engine
	ctx, cancel := context.WithCancel(context.Background())
	var count int
	var step func()
	step = func() {
		count++
		if count == 3 {
			cancel() // cancel from inside an event callback
		}
		e.After(ns(1), step) // would self-reschedule forever
	}
	e.After(ns(1), step)
	err := e.RunContext(ctx, Watchdog{CheckEvery: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if count != 3 {
		t.Errorf("executed %d events before noticing cancellation, want 3", count)
	}
	if e.Pending() == 0 {
		t.Error("pending event dropped on cancellation")
	}
}

// TestRunContextEventBudgetExactBoundary: a queue that drains in exactly
// MaxEvents events succeeds; one more pending event trips the budget.
func TestRunContextEventBudgetExactBoundary(t *testing.T) {
	var e Engine
	var count int
	chain(&e, 4, &count)
	if err := e.RunContext(context.Background(), Watchdog{MaxEvents: 4}); err != nil {
		t.Fatalf("budget == work should succeed, got %v", err)
	}
	if count != 4 {
		t.Fatalf("executed %d, want 4", count)
	}

	var e2 Engine
	var count2 int
	chain(&e2, 5, &count2)
	err := e2.RunContext(context.Background(), Watchdog{MaxEvents: 4})
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("err = %v, want *BudgetError", err)
	}
	if be.SimTime || be.MaxEvents != 4 || be.Events != 4 {
		t.Errorf("budget error fields wrong: %+v", be)
	}
	if count2 != 4 {
		t.Errorf("executed %d events under budget 4", count2)
	}
	if e2.Pending() != 1 {
		t.Errorf("%d pending after budget trip, want 1", e2.Pending())
	}
}

// TestRunContextSimTimeBudgetExactBoundary: an event landing exactly on
// the deadline executes; the first event strictly past it trips.
func TestRunContextSimTimeBudgetExactBoundary(t *testing.T) {
	var e Engine
	var at10, at11 bool
	e.At(units.Time(10), func() { at10 = true })
	e.At(units.Time(11), func() { at11 = true })
	err := e.RunContext(context.Background(), Watchdog{MaxSimTime: ns(10)})
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("err = %v, want *BudgetError", err)
	}
	if !be.SimTime {
		t.Error("event budget blamed instead of the sim-time budget")
	}
	if !at10 {
		t.Error("event exactly on the deadline did not execute")
	}
	if at11 {
		t.Error("event past the deadline executed")
	}
	if e.Now() != units.Time(10) {
		t.Errorf("clock at %v after trip, want 10", e.Now())
	}
}

func TestRunContextSimTimeBudgetDrainsWithin(t *testing.T) {
	var e Engine
	e.At(units.Time(5), func() {})
	if err := e.RunContext(context.Background(), Watchdog{MaxSimTime: ns(10)}); err != nil {
		t.Fatalf("drain within deadline should succeed, got %v", err)
	}
}

// TestRunContextIdleEngine: an engine with no events returns immediately
// with no error and no heartbeat.
func TestRunContextIdleEngine(t *testing.T) {
	var e Engine
	beats := 0
	err := e.RunContext(context.Background(), Watchdog{
		CheckEvery: 1,
		Heartbeat:  func(Progress) { beats++ },
		MaxEvents:  1,
		MaxSimTime: ns(1),
	})
	if err != nil {
		t.Fatalf("idle engine: %v", err)
	}
	if beats != 0 {
		t.Errorf("heartbeat fired %d times on a zero-event engine", beats)
	}
}

func TestRunContextHeartbeat(t *testing.T) {
	var e Engine
	var count int
	chain(&e, 10, &count)
	var reports []Progress
	err := e.RunContext(context.Background(), Watchdog{
		CheckEvery: 3,
		Heartbeat:  func(p Progress) { reports = append(reports, p) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 3 { // after events 3, 6, 9
		t.Fatalf("%d heartbeats for 10 events at CheckEvery=3, want 3", len(reports))
	}
	for i, p := range reports {
		if p.Events != uint64(3*(i+1)) {
			t.Errorf("heartbeat %d at %d events, want %d", i, p.Events, 3*(i+1))
		}
	}
}

// TestRunContextLivelockTerminates: a self-rescheduling event storm (the
// retry-storm shape from the fault layer) terminates via the event
// budget instead of hanging.
func TestRunContextLivelockTerminates(t *testing.T) {
	var e Engine
	var rearm func()
	rearm = func() { e.After(0, rearm) } // zero-delay self-rescheduling forever
	e.After(0, rearm)
	err := e.RunContext(context.Background(), Watchdog{MaxEvents: 10_000})
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("livelock not caught: err = %v", err)
	}
}

func TestStopHaltsRun(t *testing.T) {
	var e Engine
	stopErr := errors.New("violation")
	var count int
	var step func()
	step = func() {
		count++
		if count == 2 {
			e.Stop(stopErr)
		}
		e.After(ns(1), step)
	}
	e.After(ns(1), step)
	e.Run()
	if count != 2 {
		t.Errorf("Run executed %d events after Stop, want 2", count)
	}
	if e.StopReason() != stopErr {
		t.Errorf("StopReason = %v", e.StopReason())
	}

	// RunContext surfaces the stop reason as its error.
	var e2 Engine
	e2.After(ns(1), func() { e2.Stop(stopErr) })
	e2.After(ns(2), func() { t.Error("event after Stop executed") })
	if err := e2.RunContext(context.Background(), Watchdog{}); !errors.Is(err, stopErr) {
		t.Errorf("RunContext err = %v, want %v", err, stopErr)
	}
}

func TestStopFirstWinsAndNilReason(t *testing.T) {
	var e Engine
	e.Stop(nil)
	if !errors.Is(e.StopReason(), ErrStopped) {
		t.Errorf("Stop(nil) reason = %v, want ErrStopped", e.StopReason())
	}
	e.Stop(errors.New("later"))
	if !errors.Is(e.StopReason(), ErrStopped) {
		t.Error("second Stop overwrote the first reason")
	}
}
