package memctrl

import (
	"testing"

	"tetriswrite/internal/pcm"
	"tetriswrite/internal/sim"
	"tetriswrite/internal/tetris"
	"tetriswrite/internal/units"
)

// DrainLow's three input regimes must normalize as documented: 0 is
// "unset" (default half the queue), DrainToEmpty / any negative means
// drain to exactly empty, positive values are clamped to the queue size —
// and normalizing twice must not reinterpret the result.
func TestDrainLowNormalization(t *testing.T) {
	par := pcm.DefaultParams()
	cases := []struct {
		name       string
		writeQueue int
		drainLow   int
		want       int
	}{
		{"unset takes half the default queue", 0, 0, 16},
		{"unset takes half a custom queue", 8, 0, 4},
		{"DrainToEmpty means zero", 8, DrainToEmpty, 0},
		{"any negative means zero", 8, -7, 0},
		{"explicit depth is kept", 8, 3, 3},
		{"depth clamps to the queue", 8, 100, 8},
		{"queue of one defaults to zero", 1, 0, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := Config{WriteQueue: tc.writeQueue, DrainLow: tc.drainLow}
			cfg.Normalize(par)
			if cfg.DrainLow != tc.want {
				t.Fatalf("DrainLow = %d, want %d", cfg.DrainLow, tc.want)
			}
			// Idempotency: a second Normalize must not turn an effective
			// 0 ("drain to empty") back into the default.
			cfg.Normalize(par)
			if cfg.DrainLow != tc.want {
				t.Fatalf("second Normalize changed DrainLow to %d, want %d", cfg.DrainLow, tc.want)
			}
		})
	}
}

// A DrainToEmpty controller must drain the whole queue once it starts.
func TestDrainToEmptyDrainsWholeQueue(t *testing.T) {
	eng, c, _ := testController(Config{WriteQueue: 4, DrainLow: DrainToEmpty})
	data := make([]byte, 64)
	eng.At(0, func() {
		for i := 0; i < 4; i++ {
			data[0] = byte(i)
			if !c.SubmitWrite(pcm.LineAddr(i*8), data, nil) {
				t.Errorf("write %d rejected", i)
			}
		}
	})
	// Probe mid-drain: after the queue has space again the controller
	// must still be draining until it is empty.
	eng.At(units.Time(1*units.Microsecond), func() {
		if _, writes := c.QueueDepths(); writes > 0 && !c.Draining() {
			t.Errorf("drain stopped with %d writes still queued", writes)
		}
	})
	eng.Run()
	if _, writes := c.QueueDepths(); writes != 0 {
		t.Fatalf("%d writes left after run", writes)
	}
	if c.Stats().DrainExits == 0 {
		t.Fatalf("drain never recorded its exit")
	}
}

// The write enqueue path must be allocation-free in steady state: request
// structs and payload copies come from the controller's freelists. The
// submissions here land on a non-draining controller, so this isolates
// SubmitWrite itself (the full write cycle additionally pays for engine
// event closures, covered by the cycle bound test below).
func TestSubmitWriteZeroAllocsSteadyState(t *testing.T) {
	eng, c, _ := testController(Config{WriteQueue: 64})
	data := make([]byte, 64)
	addr := 0
	// Warm the freelists deeper than the measurement loop submits: the
	// measured writes stay queued (no drain), so each one consumes a
	// recycled request without returning it.
	eng.At(0, func() {
		for i := 0; i < 32; i++ {
			c.SubmitWrite(pcm.LineAddr(i*8), data, nil)
		}
	})
	eng.At(1, func() { c.WhenIdle(func() {}) })
	eng.Run()

	allocs := testing.AllocsPerRun(20, func() {
		// Distinct banks/lines so coalescing does not short-circuit the
		// request construction under test.
		addr++
		c.SubmitWrite(pcm.LineAddr(addr*8), data, nil)
	})
	if allocs != 0 {
		t.Fatalf("SubmitWrite allocates %v objects/op in steady state, want 0", allocs)
	}
}

// Full write cycles (enqueue, plan, execute, complete) recycle requests,
// payloads, plans, and packer state; what remains is the engine's event
// closures. Pin a small empirical ceiling so hot-path regressions (a new
// per-write buffer, a dropped freelist) fail loudly.
func TestWriteCycleAllocBound(t *testing.T) {
	eng := &sim.Engine{}
	dev := pcm.MustNewDevice(pcm.DefaultParams())
	c := New(eng, dev, tetris.New, Config{OpportunisticWrites: true})
	data := make([]byte, 64)
	for i := range data {
		data[i] = byte(i * 11)
	}
	cycle := func() {
		c.SubmitWrite(pcm.LineAddr(8), data, nil)
		eng.Run()
	}
	for i := 0; i < 4; i++ {
		cycle() // warm freelists, scratch arenas, memo cache
	}
	allocs := testing.AllocsPerRun(50, cycle)
	// Three engine events per cycle (submit kick, write completion,
	// schedule follow-up), each an event struct plus closure context.
	const ceiling = 8
	if allocs > ceiling {
		t.Fatalf("write cycle allocates %v objects/op, want <= %d", allocs, ceiling)
	}
}
