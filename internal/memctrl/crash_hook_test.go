package memctrl

import (
	"testing"

	"tetriswrite/internal/pcm"
	"tetriswrite/internal/schemes"
	"tetriswrite/internal/sim"
	"tetriswrite/internal/units"
)

// stubHook satisfies CrashHook without doing anything; SetCrash only
// inspects the controller's own config, never the hook.
type stubHook struct{}

func (stubHook) WriteStarted(pcm.LineAddr, []byte, []byte, schemes.Plan, units.Time) {}
func (stubHook) WriteCompleted(pcm.LineAddr) bool                                    { return true }

// SetCrash must reject configurations that move pulse boundaries after
// issue (pausing, cancellation) or write lines without arming an intent
// (idle PreSET): either would break the hook's frozen schedule view.
func TestSetCrashRejectsIncompatibleConfigs(t *testing.T) {
	mk := func(cfg Config) *Controller {
		eng := &sim.Engine{}
		dev := pcm.MustNewDevice(pcm.DefaultParams())
		return New(eng, dev, schemes.NewDCW, cfg)
	}

	if err := mk(Config{OpportunisticWrites: true}).SetCrash(stubHook{}); err != nil {
		t.Errorf("plain config rejected: %v", err)
	}
	for name, cfg := range map[string]Config{
		"pausing":      {WritePausing: true},
		"cancellation": {WritePausing: true, WriteCancellation: true},
		"idle-preset":  {IdlePreset: true},
	} {
		if err := mk(cfg).SetCrash(stubHook{}); err == nil {
			t.Errorf("%s config accepted a crash hook", name)
		}
	}
}
