package memctrl

// Deferred per-bank write planning: the parallel engine of ROADMAP item
// 2. Scheme planning — the dominant per-write CPU cost — runs on one
// worker goroutine per bank while the coordinator (the engine goroutine)
// keeps issuing work to other banks. Determinism comes from three rules:
//
//  1. Conservative lookahead. At issue time the coordinator knows the
//     write's service-time floor (schemes.FloorOf: a sound lower bound
//     on the plan's service time, exact for fixed-slot schemes), so it
//     schedules the completion as a lazily-timed event (sim.AtLazy) at
//     issue+floor. The event carries the sequence number the serial
//     path would have used — startWrite's only engine call — so the
//     event streams of both modes are identical. When the placeholder
//     reaches the head of the queue its resolver joins the worker,
//     learns the real end time, and the kernel transparently re-queues
//     (or runs, if the floor was exact) the event there. The kernel
//     panics if a plan undercuts its floor.
//
//  2. Issue-order commit. Worker results (stats, wear, guard verdicts)
//     are applied strictly in issue order through a FIFO of outstanding
//     jobs, reproducing the serial path's accumulation order exactly —
//     float64 write-unit sums and first-violation-wins guard semantics
//     are order-sensitive. Workers compute into private job fields and
//     never touch controller, device or engine state; everything they
//     need (queue depths, the stored-line snapshot) is captured at
//     issue time.
//
//  3. Consistent cuts. Any observer that reads cross-bank state —
//     the telemetry sampler at epoch boundaries, collectResult after a
//     run, a watchdog abort — first drains the FIFO via Sync (the
//     channel joins double as the happens-before edges for the race
//     detector), so it sees exactly the state the serial engine would
//     have had at the same instant.
//
// Features that inspect or reshape plans after issue — write pausing
// and cancellation, idle PreSET, program-and-verify, crash hooks, deep
// guard replay — latch the mode back to serial at the first write and
// keep the seed semantics, trivially bit-identical.

import (
	"bytes"

	"tetriswrite/internal/guard"
	"tetriswrite/internal/schemes"
	"tetriswrite/internal/units"
)

// writeJob is one deferred write: issue-time inputs captured by the
// coordinator, outputs computed by the bank worker, committed by the
// coordinator in issue order.
type writeJob struct {
	bank            *bank
	req             *request
	old             []byte // job-owned snapshot of the stored line
	issued          units.Time
	qreads, qwrites int
	guarded         bool

	// Worker outputs.
	sets, resets int
	writeUnits   float64
	svc          units.Duration
	iss          *guard.PlanIssue
	panicVal     any

	applied bool
}

// latchMode decides, at the first write, whether planning runs deferred
// on per-bank workers. Every serial-fallback trigger is attached by then
// (SetCrash and SetGuard run during system assembly, before the engine).
func (c *Controller) latchMode() {
	c.modeLatched = true
	c.deferred = c.cfg.ParallelBanks &&
		!c.cfg.WritePausing && !c.cfg.WriteCancellation &&
		!c.cfg.IdlePreset && !c.cfg.VerifyWrites &&
		c.crash == nil && !c.guard.Deep()
	if c.deferred {
		c.startWorkers()
	}
}

func (c *Controller) startWorkers() {
	c.workersUp = true
	for _, b := range c.banks {
		b.jobs = make(chan *writeJob, 1)
		b.results = make(chan *writeJob, 1)
		b.floorClean = schemes.FloorOf(b.scheme, c.par, false)
		b.floorChanged = schemes.FloorOf(b.scheme, c.par, true)
		c.wg.Add(1)
		go c.bankWorker(b)
	}
}

// Close shuts the bank workers down, applying any outstanding results
// first. Idempotent, and a no-op when workers never started (serial
// mode). The owner must call it before reading final statistics; the
// system harness does so before collectResult and again from a defer so
// a panicking run still joins its goroutines.
func (c *Controller) Close() {
	if !c.workersUp || c.closed {
		return
	}
	c.closed = true
	defer func() {
		for _, b := range c.banks {
			close(b.jobs)
		}
		c.wg.Wait()
	}()
	c.Sync()
}

// Sync joins every outstanding bank worker and commits their results in
// issue order. The telemetry sampler runs it before every epoch
// snapshot so metric closures observe a consistent cross-bank cut; it
// is a cheap no-op with nothing outstanding, or in serial mode.
func (c *Controller) Sync() {
	for c.inflightHead < len(c.inflight) {
		c.applyNext()
	}
	c.inflight = c.inflight[:0]
	c.inflightHead = 0
}

// applyNext joins the oldest outstanding job and commits it.
func (c *Controller) applyNext() {
	j := c.inflight[c.inflightHead]
	c.inflightHead++
	if got := <-j.bank.results; got != j {
		panic("memctrl: bank worker returned a different job")
	}
	c.applyJob(j)
}

// applyThrough commits outstanding jobs in issue order until target is
// applied (no-op if it already was).
func (c *Controller) applyThrough(target *writeJob) {
	for !target.applied {
		c.applyNext()
	}
	if c.inflightHead == len(c.inflight) {
		c.inflight = c.inflight[:0]
		c.inflightHead = 0
	}
}

// applyJob commits one worker result, mirroring the serial startWrite's
// post-planning sequence exactly: guard verdict first (stamped at issue
// time), then pulse statistics, wear, and the bank's timing window.
func (c *Controller) applyJob(j *writeJob) {
	if j.panicVal != nil {
		// Re-panic with the worker's original value so the run harness
		// reports the same typed PanicError a serial run would.
		panic(j.panicVal)
	}
	c.guard.ReportPlanIssue(j.issued, j.iss)
	c.stats.BitSets += int64(j.sets)
	c.stats.BitResets += int64(j.resets)
	c.stats.WriteUnits += j.writeUnits
	if c.wear != nil {
		c.wear.Record(j.req.addr, j.sets+j.resets)
	}
	b := j.bank
	b.busyTime += j.svc
	b.writeStart = j.issued
	b.writeEnd = j.issued.Add(j.svc)
	j.applied = true
}

func (c *Controller) bankWorker(b *bank) {
	defer c.wg.Done()
	for j := range b.jobs {
		c.runJob(b, j)
		b.results <- j
	}
}

// runJob is the worker half of a write: observe queue pressure, plan,
// validate. It reads only the job's private inputs, the bank's scheme
// (exclusively this worker's while the job is outstanding) and the
// guard's immutable parameters — never the device, queues or engine.
func (c *Controller) runJob(b *bank, j *writeJob) {
	defer func() {
		if r := recover(); r != nil {
			j.panicVal = r
		}
	}()
	if b.observer != nil {
		b.observer.ObserveQueues(j.qreads, j.qwrites)
	}
	plan := b.scheme.PlanWrite(j.req.addr, j.old, j.req.data)
	if j.guarded {
		j.iss = c.guard.ValidateWritePlan(j.req.addr, plan)
	}
	j.sets, j.resets = plan.Counts()
	j.writeUnits = plan.WriteUnits()
	j.svc = plan.ServiceTime()
	if b.recycler != nil {
		b.recycler.RecyclePlan(plan)
	}
}

func (c *Controller) newJob() *writeJob {
	if n := len(c.jobFree); n > 0 {
		j := c.jobFree[n-1]
		c.jobFree[n-1] = nil
		c.jobFree = c.jobFree[:n-1]
		return j
	}
	return &writeJob{}
}

func (c *Controller) freeJob(j *writeJob) {
	old := j.old
	*j = writeJob{old: old}
	c.jobFree = append(c.jobFree, j)
}

// startWriteDeferred is startWrite's deferred-planning twin: capture
// the inputs, hand the job to the bank worker, and schedule the
// completion at the conservative floor. It makes exactly one engine
// scheduling call — like the serial path — so sequence numbers align
// and both modes pop events in the same order.
func (c *Controller) startWriteDeferred(b *bank, req *request) {
	b.write = req
	now := c.eng.Now()
	j := c.newJob()
	j.bank, j.req, j.issued = b, req, now
	j.qreads, j.qwrites = c.nreadQ, len(c.writeQ)
	if j.old == nil {
		j.old = make([]byte, c.par.LineBytes)
	}
	c.dev.PeekLine(req.addr, j.old)
	j.guarded = c.guard.BeginWritePlan(now)
	floor := b.floorChanged
	if bytes.Equal(j.old, req.data) {
		floor = b.floorClean
	}
	c.inflight = append(c.inflight, j)
	b.jobs <- j
	gen := b.gen
	c.eng.AtLazy(now.Add(floor), func() (units.Time, func()) {
		c.applyThrough(j)
		end := b.writeEnd
		c.freeJob(j)
		return end, func() {
			if b.gen != gen || b.write != req {
				return
			}
			c.dev.WriteLine(req.addr, req.data)
			c.completeWrite(b, req, end)
		}
	})
}
