package memctrl

import (
	"bytes"
	"strings"
	"testing"

	"tetriswrite/internal/fault"
	"tetriswrite/internal/guard"
	"tetriswrite/internal/pcm"
	"tetriswrite/internal/schemes"
	"tetriswrite/internal/sim"
	"tetriswrite/internal/units"
)

func fullLine(b byte) []byte {
	l := make([]byte, 64)
	for i := range l {
		l[i] = b
	}
	return l
}

// Without a fault model, enabling verify only adds the read-back: every
// write verifies on the first pass, no retries, no hard errors.
func TestVerifyCleanDevice(t *testing.T) {
	eng := &sim.Engine{}
	dev := pcm.MustNewDevice(pcm.DefaultParams())
	c := New(eng, dev, schemes.NewDCW, Config{VerifyWrites: true, OpportunisticWrites: true})
	done := false
	eng.At(0, func() {
		c.SubmitWrite(8, fullLine(0xFF), func(units.Time) { done = true })
	})
	eng.Run()
	if !done {
		t.Fatal("write never completed")
	}
	st := c.Stats()
	if st.Verifies != 1 || st.Retries != 0 || st.HardErrors != 0 {
		t.Errorf("verifies/retries/hard = %d/%d/%d, want 1/0/0", st.Verifies, st.Retries, st.HardErrors)
	}
	if st.VerifyOverhead != pcm.DefaultParams().TRead {
		t.Errorf("VerifyOverhead = %v, want one TRead", st.VerifyOverhead)
	}
}

// Transient pulse failures are caught by verify and fixed by re-pulsing
// only the failed cells; the retry pulses cost time, energy and wear.
func TestVerifyRetriesTransient(t *testing.T) {
	eng := &sim.Engine{}
	dev := pcm.MustNewDevice(pcm.DefaultParams())
	inj := fault.MustNew(fault.Config{Seed: 3, TransientRate: 0.2})
	dev.AttachFaults(inj)
	c := New(eng, dev, schemes.NewDCW, Config{
		VerifyWrites: true, VerifyRetries: 10, OpportunisticWrites: true,
	})
	c.SetHardErrorHandler(func(addr pcm.LineAddr, want []byte) {
		t.Errorf("hard error on %d despite transient-only faults", addr)
	})
	completions := 0
	eng.At(0, func() {
		var next func(i int)
		next = func(i int) {
			if i >= 8 {
				return
			}
			pattern := byte(0x55)
			if i%2 == 1 {
				pattern = 0xAA
			}
			c.SubmitWrite(8, fullLine(pattern), func(units.Time) {
				completions++
				next(i + 1)
			})
		}
		next(0)
	})
	eng.Run()
	if completions != 8 {
		t.Fatalf("%d completions, want 8", completions)
	}
	st := c.Stats()
	if st.Retries == 0 {
		t.Error("no retries at a 20% transient failure rate")
	}
	if st.RetrySets+st.RetryResets == 0 {
		t.Error("retries drove no pulses")
	}
	got := make([]byte, 64)
	dev.PeekLine(8, got)
	if !bytes.Equal(got, fullLine(0xAA)) {
		t.Errorf("final image %x, want all AA (verify-retry must converge)", got[:4])
	}
}

// The acceptance scenario: a worn cell sticks, verify detects the
// mismatch, the budgeted retries fail (the cell is dead), the write
// escalates to a hard error, the sparing layer remaps the line, and
// reads return correct data afterwards.
func TestStuckCellEscalatesToSpareRemap(t *testing.T) {
	eng := &sim.Engine{}
	par := pcm.DefaultParams()
	dev := pcm.MustNewDevice(par)
	inj := fault.MustNew(fault.Config{Seed: 1, Endurance: 1}) // every cell dies on its 2nd pulse
	dev.AttachFaults(inj)
	c := New(eng, dev, schemes.NewDCW, Config{
		VerifyWrites: true, VerifyRetries: 2, OpportunisticWrites: true,
	})
	spareBase := pcm.LineAddr(par.Lines() - 16)
	spare, err := fault.NewSpareRemapper(c, spareBase, 16, c.Snoop)
	if err != nil {
		t.Fatal(err)
	}
	c.SetHardErrorHandler(spare.OnHardError)

	addr := pcm.LineAddr(8)
	var readBack []byte
	eng.At(0, func() {
		// First write: fresh cells, programs fine (pulse 1).
		spare.SubmitWrite(addr, fullLine(0xFF), func(units.Time) {
			// Second write: pulse 2 exceeds every cell's limit of 1; all
			// cells stick at 1 and the write can never verify.
			spare.SubmitWrite(addr, fullLine(0x00), func(units.Time) {
				// The hard-error handler runs before this completion
				// callback, so the remap is already installed: this read
				// translates to the spare slot.
				spare.SubmitRead(addr, func(_ units.Time, data []byte) {
					readBack = data
				})
			})
		})
	})
	eng.Run()

	st := c.Stats()
	if st.Retries != 2 {
		t.Errorf("Retries = %d, want 2 (the full budget)", st.Retries)
	}
	if st.HardErrors != 1 {
		t.Errorf("HardErrors = %d, want 1", st.HardErrors)
	}
	ss := spare.Stats()
	if ss.RemappedLines != 1 || ss.RepairWrites != 1 {
		t.Errorf("spare stats = %+v, want one remap + one repair", ss)
	}
	if !spare.Remapped(addr) {
		t.Fatal("failed line not remapped")
	}
	if got := spare.Translate(addr); got != spareBase {
		t.Errorf("Translate(%d) = %d, want %d", addr, got, spareBase)
	}
	if readBack == nil {
		t.Fatal("read after remap never completed")
	}
	if !bytes.Equal(readBack, fullLine(0x00)) {
		t.Errorf("read after remap = %x, want the intended all-00 data", readBack[:4])
	}
	// The dead physical line still holds the stuck image.
	raw := make([]byte, 64)
	dev.PeekLine(addr, raw)
	if !bytes.Equal(raw, fullLine(0xFF)) {
		t.Errorf("dead line image = %x, want stuck all-FF", raw[:4])
	}
}

// A verify-exhausted write surfaces as a typed error carrying the run
// fingerprint, so a hard error deep inside a sweep names the exact
// (seed, workload, scheme, cycle, line) that reproduces it.
func TestVerifyExhaustedErrorCarriesFingerprint(t *testing.T) {
	eng := &sim.Engine{}
	par := pcm.DefaultParams()
	dev := pcm.MustNewDevice(par)
	inj := fault.MustNew(fault.Config{Seed: 1, Endurance: 1}) // every cell dies on its 2nd pulse
	dev.AttachFaults(inj)
	c := New(eng, dev, schemes.NewDCW, Config{
		VerifyWrites: true, VerifyRetries: 2, OpportunisticWrites: true,
	})
	c.SetFingerprint(guard.Fingerprint{Seed: 42, Workload: "gups", Scheme: "dcw"})
	c.SetHardErrorHandler(func(pcm.LineAddr, []byte) {})

	addr := pcm.LineAddr(8)
	eng.At(0, func() {
		c.SubmitWrite(addr, fullLine(0xFF), func(units.Time) {
			// Second write exceeds every cell's endurance of 1: the line
			// sticks at all-FF and the verify loop must give up.
			c.SubmitWrite(addr, fullLine(0x00), func(units.Time) {})
		})
	})
	eng.Run()

	errs := c.VerifyErrors()
	if len(errs) != 1 {
		t.Fatalf("VerifyErrors returned %d errors, want 1", len(errs))
	}
	e := errs[0]
	if e.Addr != addr {
		t.Errorf("Addr = %d, want %d", e.Addr, addr)
	}
	if e.Attempts != 3 { // first verify + 2 budgeted retries
		t.Errorf("Attempts = %d, want 3", e.Attempts)
	}
	if e.Mismatched == 0 {
		t.Error("Mismatched = 0, want the stuck cell count")
	}
	if e.Fp.Seed != 42 || e.Fp.Workload != "gups" || e.Fp.Scheme != "dcw" {
		t.Errorf("fingerprint %+v lost the SetFingerprint labels", e.Fp)
	}
	if e.Fp.Cycle == 0 {
		t.Error("fingerprint cycle not stamped with the failure instant")
	}
	for _, want := range []string{"verify exhausted", "after 3 attempts", "line 8", "seed=42", "workload=gups", "scheme=dcw"} {
		if !strings.Contains(e.Error(), want) {
			t.Errorf("error %q does not mention %q", e.Error(), want)
		}
	}
	// The typed error is bookkeeping on top of the counter, not instead.
	if st := c.Stats(); st.HardErrors != 1 {
		t.Errorf("HardErrors = %d, want 1", st.HardErrors)
	}
}

// Verify-retry composes with write pausing: a read arriving during the
// verify tail must not tear the write state (the pause boundary check
// and the verifying flag both protect it).
func TestVerifyWithPausingDoesNotTear(t *testing.T) {
	eng := &sim.Engine{}
	dev := pcm.MustNewDevice(pcm.DefaultParams())
	inj := fault.MustNew(fault.Config{Seed: 5, TransientRate: 0.3})
	dev.AttachFaults(inj)
	c := New(eng, dev, schemes.NewDCW, Config{
		VerifyWrites: true, VerifyRetries: 8,
		OpportunisticWrites: true, WritePausing: true,
	})
	writesDone, readsDone := 0, 0
	eng.At(0, func() {
		c.SubmitWrite(8, fullLine(0x0F), func(units.Time) { writesDone++ })
	})
	// Reads to the same bank land during pulses and verify tails.
	for i := 1; i <= 5; i++ {
		eng.At(units.Time(i)*units.Time(60*units.Nanosecond), func() {
			c.SubmitRead(16, func(units.Time, []byte) { readsDone++ })
		})
	}
	eng.Run()
	if writesDone != 1 || readsDone != 5 {
		t.Fatalf("writes=%d reads=%d, want 1/5", writesDone, readsDone)
	}
	got := make([]byte, 64)
	dev.PeekLine(8, got)
	if !bytes.Equal(got, fullLine(0x0F)) {
		t.Errorf("image %x after paused verify, want all 0F", got[:4])
	}
}
