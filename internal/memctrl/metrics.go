package memctrl

import (
	"fmt"

	"tetriswrite/internal/schemes"
	"tetriswrite/internal/telemetry"
	"tetriswrite/internal/units"
)

// RegisterMetrics exposes the controller's activity to the telemetry
// sampler: queue occupancy, drain activity, scheduling outcomes and the
// verify loop under the memctrl.* namespace, and the programming-pulse /
// power-budget view under power.*. Everything is polled from the
// controller's own counters at epoch boundaries — registration adds no
// work to the request path, and a run without a registry behaves
// bit-identically.
func (c *Controller) RegisterMetrics(reg *telemetry.Registry) {
	// Queue state: the signals behind the paper's write-drain behaviour
	// (read-dominant workloads barely drain; write-heavy ones storm).
	reg.GaugeFunc("memctrl.read_queue_depth", "read queue occupancy", func() float64 {
		return float64(c.nreadQ)
	})
	reg.GaugeFunc("memctrl.write_queue_depth", "write queue occupancy", func() float64 {
		return float64(len(c.writeQ))
	})
	reg.GaugeFunc("memctrl.draining", "1 while a write drain is in progress", func() float64 {
		if c.draining {
			return 1
		}
		return 0
	})
	reg.CounterFunc("memctrl.drains", "write drains started (write queue filled)", func() float64 {
		return float64(c.stats.Drains)
	})
	reg.CounterFunc("memctrl.drain_exits", "write drains ended at the low-water mark", func() float64 {
		return float64(c.stats.DrainExits)
	})

	// Request flow.
	reg.CounterFunc("memctrl.reads", "reads accepted", func() float64 { return float64(c.stats.Reads) })
	reg.CounterFunc("memctrl.writes", "writes accepted", func() float64 { return float64(c.stats.Writes) })
	reg.CounterFunc("memctrl.coalesced", "writes merged into a queued write", func() float64 {
		return float64(c.stats.Coalesced)
	})
	reg.CounterFunc("memctrl.forwarded_reads", "reads served from the write queue", func() float64 {
		return float64(c.stats.ForwardedReads)
	})
	reg.CounterFunc("memctrl.stall_rejects", "submissions rejected on a full queue", func() float64 {
		return float64(c.stats.StallRejects)
	})
	// This PCM model has no row buffers (every access opens the array),
	// so the closest analog of a row-buffer hit rate is the fraction of
	// reads short-circuited by the write queue.
	reg.GaugeFunc("memctrl.forward_hit_rate", "fraction of reads served from the write queue (row-buffer-hit analog)", func() float64 {
		if c.stats.Reads == 0 {
			return 0
		}
		return float64(c.stats.ForwardedReads) / float64(c.stats.Reads)
	})

	// Write-verify loop (PR 1); all flat zero on an ideal device.
	reg.CounterFunc("memctrl.verifies", "verify read-backs performed", func() float64 {
		return float64(c.stats.Verifies)
	})
	reg.CounterFunc("memctrl.retries", "re-pulse rounds after failed verifies", func() float64 {
		return float64(c.stats.Retries)
	})
	reg.CounterFunc("memctrl.hard_errors", "writes escalated past the retry budget", func() float64 {
		return float64(c.stats.HardErrors)
	})

	// Bank occupancy.
	reg.GaugeFunc("memctrl.bank_util_mean", "mean bank array occupancy fraction", func() float64 {
		utils := c.BankUtilization()
		var sum float64
		for _, u := range utils {
			sum += u
		}
		if len(utils) == 0 {
			return 0
		}
		return sum / float64(len(utils))
	})
	for i := range c.banks {
		i := i
		reg.GaugeFunc(fmt.Sprintf("memctrl.bank%d.util", i), "bank array occupancy fraction", func() float64 {
			return c.BankUtilization()[i]
		})
	}

	// Tetris schedule memo-cache, aggregated across the per-bank scheme
	// instances. Registered only when the scheme actually exposes the
	// counters (interface assertion keeps memctrl scheme-agnostic).
	if _, ok := c.banks[0].scheme.(schedCacheStatser); ok {
		reg.CounterFunc("tetris.sched_cache.hits", "schedule memo-cache hits across banks", func() float64 {
			h, _, _ := c.schedCacheTotals()
			return float64(h)
		})
		reg.CounterFunc("tetris.sched_cache.misses", "schedule memo-cache misses across banks", func() float64 {
			_, m, _ := c.schedCacheTotals()
			return float64(m)
		})
		reg.GaugeFunc("tetris.sched_cache.entries", "live schedule memo-cache entries across banks", func() float64 {
			_, _, e := c.schedCacheTotals()
			return float64(e)
		})
		reg.GaugeFunc("tetris.sched_cache.hit_rate", "schedule memo-cache hit fraction", func() float64 {
			h, m, _ := c.schedCacheTotals()
			if h+m == 0 {
				return 0
			}
			return float64(h) / float64(h+m)
		})
	}

	// Scheme-exported counters (schemes.StatProvider), summed across the
	// per-bank scheme instances: the adaptive meta-scheme's switch and
	// cost trackers, the remap/flipmin/mlc decorator counters. The series
	// set is discovered from bank 0 at registration time — every bank
	// runs the same factory, so all banks emit the same names.
	if sp0, ok := c.banks[0].scheme.(schemes.StatProvider); ok {
		var names []string
		seen := map[string]bool{}
		sp0.SchemeStats(func(name string, _ float64) {
			if !seen[name] {
				seen[name] = true
				names = append(names, name)
			}
		})
		for _, name := range names {
			name := name
			reg.GaugeFunc(name, "scheme counter, summed across banks", func() float64 {
				var sum float64
				for _, b := range c.banks {
					if sp, ok := b.scheme.(schemes.StatProvider); ok {
						sp.SchemeStats(func(n string, v float64) {
							if n == name {
								sum += v
							}
						})
					}
				}
				return sum
			})
		}
	}

	// Power layer: the pulse mix and the charge-pump budget view. The
	// behavioral model stripes every line write uniformly across a
	// bank's chips, so the per-chip utilization equals the bank/rank
	// fraction reported here; per-chip peaks live in the structural
	// model (internal/chip).
	reg.CounterFunc("power.write_units", "serialized write units issued (Figure 10 numerator)", func() float64 {
		return c.stats.WriteUnits
	})
	reg.CounterFunc("power.set_pulses", "SET pulses driven", func() float64 { return float64(c.stats.BitSets) })
	reg.CounterFunc("power.reset_pulses", "RESET pulses driven", func() float64 { return float64(c.stats.BitResets) })
	reg.GaugeFunc("power.set_fraction", "SET share of all pulses (content drift signal)", func() float64 {
		total := c.stats.BitSets + c.stats.BitResets
		if total == 0 {
			return 0
		}
		return float64(c.stats.BitSets) / float64(total)
	})
	reg.GaugeFunc("power.budget_util", "charge-pump budget utilization: pulse current-time integral over elapsed time x rank budget", func() float64 {
		return c.budgetUtilization()
	})
}

// schedCacheStatser is the memo-cache counter surface of a scheme (the
// Tetris scheme implements it); memctrl only ever discovers it through
// this assertion, so non-caching schemes cost nothing.
type schedCacheStatser interface {
	SchedCacheStats() (hits, misses, entries int64)
}

// schedCacheTotals sums the memo-cache counters over every bank's scheme.
func (c *Controller) schedCacheTotals() (hits, misses, entries int64) {
	for _, b := range c.banks {
		if s, ok := b.scheme.(schedCacheStatser); ok {
			h, m, e := s.SchedCacheStats()
			hits += h
			misses += m
			entries += e
		}
	}
	return hits, misses, entries
}

// budgetUtilization integrates the current-time product of every pulse
// driven so far (SETs at CurrentSet for TSet, RESETs at CurrentReset for
// TReset) and divides by the rank's total budget over elapsed simulated
// time — the time-averaged fraction of the charge pumps' capacity the
// run actually used.
func (c *Controller) budgetUtilization() float64 {
	now := units.Duration(c.eng.Now())
	if now <= 0 {
		return 0
	}
	integral := float64(c.stats.BitSets)*float64(c.par.CurrentSet)*float64(c.par.TSet) +
		float64(c.stats.BitResets)*float64(c.par.CurrentReset)*float64(c.par.TReset)
	capacity := float64(c.par.BankBudget()) * float64(c.par.NumBanks) * float64(now)
	if capacity <= 0 {
		return 0
	}
	return integral / capacity
}
