package memctrl

import (
	"math/rand"
	"testing"

	"tetriswrite/internal/pcm"
	"tetriswrite/internal/schemes"
	"tetriswrite/internal/sim"
	"tetriswrite/internal/tetris"
	"tetriswrite/internal/units"
)

func testController(cfg Config) (*sim.Engine, *Controller, *pcm.Device) {
	eng := &sim.Engine{}
	dev := pcm.MustNewDevice(pcm.DefaultParams())
	c := New(eng, dev, schemes.NewDCW, cfg)
	return eng, c, dev
}

func TestReadLatencyIdleBank(t *testing.T) {
	eng, c, dev := testController(Config{})
	line := make([]byte, 64)
	line[0] = 0xAB
	dev.WriteLine(8, line) // bank 0
	var gotAt units.Time
	var gotData []byte
	eng.At(0, func() {
		if !c.SubmitRead(8, func(at units.Time, data []byte) {
			gotAt, gotData = at, data
		}) {
			t.Error("read rejected on empty queue")
		}
	})
	eng.Run()
	if want := units.Time(50 * units.Nanosecond); gotAt != want {
		t.Errorf("read completed at %v, want %v (TRead)", gotAt, want)
	}
	if gotData[0] != 0xAB {
		t.Errorf("read data[0] = %#x, want 0xAB", gotData[0])
	}
	if c.Stats().Reads != 1 {
		t.Errorf("Reads = %d, want 1", c.Stats().Reads)
	}
}

func TestWritesWaitForDrain(t *testing.T) {
	eng, c, _ := testController(Config{WriteQueue: 4})
	data := make([]byte, 64)
	data[0] = 1
	completions := 0
	eng.At(0, func() {
		// Three writes: queue not full, no drain, nothing services them.
		for i := 0; i < 3; i++ {
			if !c.SubmitWrite(pcm.LineAddr(i), data, func(units.Time) { completions++ }) {
				t.Error("write rejected below capacity")
			}
		}
	})
	eng.RunUntil(units.Time(100 * units.Microsecond))
	if completions != 0 {
		t.Fatalf("%d writes serviced without a drain", completions)
	}
	if c.Draining() {
		t.Fatal("drain started below high-water mark")
	}
	// The fourth write fills the queue and triggers the drain, which runs
	// until the low-water mark (half the queue = 2).
	eng.At(eng.Now(), func() {
		c.SubmitWrite(3, data, func(units.Time) { completions++ })
	})
	eng.Run()
	if completions != 2 {
		t.Fatalf("drained %d writes, want 2 (down to the low-water mark)", completions)
	}
	if c.Stats().Drains != 1 {
		t.Errorf("Drains = %d, want 1", c.Stats().Drains)
	}
	// The end-of-run flush drains the rest.
	eng.At(eng.Now(), func() { c.WhenIdle(func() {}) })
	eng.Run()
	if completions != 4 {
		t.Fatalf("after flush: %d writes done, want 4", completions)
	}
}

func TestOpportunisticWrites(t *testing.T) {
	eng, c, _ := testController(Config{OpportunisticWrites: true})
	data := make([]byte, 64)
	data[5] = 7
	done := false
	eng.At(0, func() {
		c.SubmitWrite(1, data, func(units.Time) { done = true })
	})
	eng.Run()
	if !done {
		t.Error("opportunistic write never serviced")
	}
}

func TestReadPriorityOverWrites(t *testing.T) {
	// Fill the write queue for bank 0, then submit a read to the same
	// bank: the read must be serviced before the remaining writes.
	eng, c, _ := testController(Config{WriteQueue: 4, DrainLow: -1, DisableCoalescing: true})
	data := make([]byte, 64)
	data[0] = 0xFF
	var readDone, writesDone units.Time
	wrote := 0
	eng.At(0, func() {
		for i := 0; i < 4; i++ {
			// All to bank 0 (addresses multiples of 8 banks).
			c.SubmitWrite(pcm.LineAddr(i*8), data, func(at units.Time) {
				wrote++
				if wrote == 4 {
					writesDone = at
				}
			})
		}
	})
	// A read arrives shortly after the drain begins; one write is already
	// in flight, but the read must jump the remaining queued writes.
	eng.At(units.Time(10*units.Nanosecond), func() {
		c.SubmitRead(64, func(at units.Time, _ []byte) { readDone = at })
	})
	eng.Run()
	if readDone == 0 || writesDone == 0 {
		t.Fatal("requests did not complete")
	}
	if readDone >= writesDone {
		t.Errorf("read finished at %v, after all writes (%v); read priority broken", readDone, writesDone)
	}
}

func TestStoreForwarding(t *testing.T) {
	eng, c, _ := testController(Config{})
	data := make([]byte, 64)
	data[3] = 0x42
	var fwd []byte
	var fwdAt units.Time
	eng.At(0, func() {
		c.SubmitWrite(2, data, nil) // sits in the write queue (no drain)
		c.SubmitRead(2, func(at units.Time, d []byte) { fwd, fwdAt = d, at })
	})
	eng.RunUntil(units.Time(10 * units.Microsecond))
	if fwd == nil {
		t.Fatal("forwarded read never completed")
	}
	if fwd[3] != 0x42 {
		t.Errorf("forwarded data wrong: %#x", fwd[3])
	}
	if fwdAt > units.Time(10*units.Nanosecond) {
		t.Errorf("forwarding took %v, want ~1 bus cycle", fwdAt)
	}
	if c.Stats().ForwardedReads != 1 {
		t.Errorf("ForwardedReads = %d, want 1", c.Stats().ForwardedReads)
	}
}

func TestWriteCoalescing(t *testing.T) {
	eng, c, dev := testController(Config{})
	d1 := make([]byte, 64)
	d2 := make([]byte, 64)
	d1[0], d2[0] = 1, 2
	eng.At(0, func() {
		c.SubmitWrite(4, d1, nil)
		c.SubmitWrite(4, d2, nil)
		if _, w := c.QueueDepths(); w != 1 {
			t.Errorf("write queue depth %d after coalescing, want 1", w)
		}
		c.WhenIdle(func() {})
	})
	eng.Run()
	buf := make([]byte, 64)
	dev.PeekLine(4, buf)
	if buf[0] != 2 {
		t.Errorf("coalesced write stored %#x, want the younger value 2", buf[0])
	}
	if c.Stats().Coalesced != 1 {
		t.Errorf("Coalesced = %d, want 1", c.Stats().Coalesced)
	}
}

func TestBankParallelism(t *testing.T) {
	// Reads to two different banks must overlap: both finish at TRead.
	eng, c, _ := testController(Config{})
	var t0, t1 units.Time
	eng.At(0, func() {
		c.SubmitRead(0, func(at units.Time, _ []byte) { t0 = at })
		c.SubmitRead(1, func(at units.Time, _ []byte) { t1 = at })
	})
	eng.Run()
	tread := units.Time(50 * units.Nanosecond)
	if t0 != tread || t1 != tread {
		t.Errorf("parallel reads finished at %v, %v; want both %v", t0, t1, tread)
	}
	// Same bank: serialized.
	eng2, c2, _ := testController(Config{})
	eng2.At(0, func() {
		c2.SubmitRead(0, func(at units.Time, _ []byte) { t0 = at })
		c2.SubmitRead(8, func(at units.Time, _ []byte) { t1 = at })
	})
	eng2.Run()
	if t1 != 2*tread {
		t.Errorf("serialized read finished at %v, want %v", t1, 2*tread)
	}
}

func TestWhenIdleFlushes(t *testing.T) {
	eng, c, dev := testController(Config{})
	data := make([]byte, 64)
	data[0] = 9
	idle := false
	eng.At(0, func() {
		c.SubmitWrite(5, data, nil)
		c.WhenIdle(func() { idle = true })
	})
	eng.Run()
	if !idle {
		t.Fatal("WhenIdle never fired")
	}
	buf := make([]byte, 64)
	dev.PeekLine(5, buf)
	if buf[0] != 9 {
		t.Error("flush did not write pending data")
	}
}

func TestQueueRejection(t *testing.T) {
	// All writes target bank 0, so the drain can only retire one at a
	// time and the queue stays full at the instant of the overflowing
	// submit.
	eng, c, _ := testController(Config{WriteQueue: 2, DisableCoalescing: true})
	data := make([]byte, 64)
	eng.At(0, func() {
		if !c.SubmitWrite(0, data, nil) || !c.SubmitWrite(8, data, nil) {
			t.Error("writes rejected below capacity")
		}
		// The fill started a drain: bank 0 took one entry synchronously.
		if !c.SubmitWrite(16, data, nil) {
			t.Error("write rejected with space available")
		}
		if c.SubmitWrite(24, data, nil) {
			t.Error("write accepted beyond capacity (bank busy, queue full)")
		}
		if c.Stats().StallRejects != 1 {
			t.Errorf("StallRejects = %d, want 1", c.Stats().StallRejects)
		}
		woken := false
		c.WhenWriteSpace(func() { woken = true })
		c.WhenIdle(func() {
			if !woken {
				t.Error("WhenWriteSpace never woke")
			}
		})
	})
	eng.Run()
}

// TestRandomTrafficConsistency: random reads and writes through the
// controller must always return the data of the most recent write to the
// address (the golden-model check), regardless of queueing, forwarding,
// coalescing and drains.
func TestRandomTrafficConsistency(t *testing.T) {
	for _, cfg := range []Config{
		{},
		{DisableCoalescing: true},
		{OpportunisticWrites: true},
		{WriteQueue: 4, DrainLow: 2},
	} {
		eng, c, _ := testController(cfg)
		rng := rand.New(rand.NewSource(1))
		golden := map[pcm.LineAddr][]byte{}
		pending := 0
		var step func()
		n := 0
		step = func() {
			if n >= 400 {
				return
			}
			n++
			addr := pcm.LineAddr(rng.Intn(32))
			if rng.Intn(2) == 0 {
				data := make([]byte, 64)
				rng.Read(data)
				if c.SubmitWrite(addr, data, nil) {
					golden[addr] = data
				}
			} else {
				want, ok := golden[addr]
				if ok {
					wantCopy := append([]byte(nil), want...)
					pending++
					c.SubmitRead(addr, func(_ units.Time, got []byte) {
						pending--
						for i := range got {
							if got[i] != wantCopy[i] {
								t.Errorf("cfg %+v: stale read at addr %d", cfg, addr)
								return
							}
						}
					})
				}
			}
			eng.After(units.Duration(rng.Intn(500))*units.Nanosecond, step)
		}
		eng.At(0, step)
		eng.Run()
		// Note: reads may legitimately observe *newer* data than the
		// golden value captured at submit time if a later write lands
		// first — avoided here because the golden map is updated at
		// submit time and reads forward from the queue; any mismatch
		// above means a genuinely stale value.
		_ = pending
	}
}

// TestWriteLatencyAccounting: latency includes queueing delay.
func TestWriteLatencyAccounting(t *testing.T) {
	eng, c, _ := testController(Config{WriteQueue: 2, DisableCoalescing: true, DrainLow: -1})
	data := make([]byte, 64)
	data[0] = 1
	eng.At(0, func() {
		c.SubmitWrite(0, data, nil)
		c.SubmitWrite(8, data, nil) // fills queue -> drain both (same bank)
	})
	eng.Run()
	st := c.Stats()
	if st.WriteLatency.Count() != 2 {
		t.Fatalf("WriteLatency count = %d, want 2", st.WriteLatency.Count())
	}
	// DCW service is 50ns + 8*430 = 3490ns; the second write also waits
	// for the first, so its latency is ~2x.
	if st.WriteLatency.Max() < 2*units.Nanoseconds(3490) {
		t.Errorf("max write latency %v does not include queueing", st.WriteLatency.Max())
	}
	if st.WriteUnits != 16 { // two DCW writes at 8 units each
		t.Errorf("WriteUnits = %v, want 16", st.WriteUnits)
	}
}

// TestRandomTrafficConsistencyStale documents the read-path guarantee: a
// read submitted after a write completes sees that write's data.
func TestReadsSeeCompletedWrites(t *testing.T) {
	eng, c, _ := testController(Config{OpportunisticWrites: true})
	data := make([]byte, 64)
	data[7] = 0x77
	eng.At(0, func() {
		c.SubmitWrite(3, data, func(at units.Time) {
			c.SubmitRead(3, func(_ units.Time, got []byte) {
				if got[7] != 0x77 {
					t.Error("read after completed write returned stale data")
				}
			})
		})
	})
	eng.Run()
}

func TestWritePausingServesReadEarly(t *testing.T) {
	// Bank 0 is busy with a slow DCW write (3490ns). A read to the same
	// bank arrives mid-write. Without pausing it waits for the write;
	// with pausing it completes after ~Treset + TRead.
	run := func(pausing bool) (readAt, writeAt units.Time) {
		eng, c, _ := testController(Config{OpportunisticWrites: true, WritePausing: pausing})
		data := make([]byte, 64)
		data[0] = 0xFF
		eng.At(0, func() {
			c.SubmitWrite(0, data, func(at units.Time) { writeAt = at })
		})
		eng.At(units.Time(500*units.Nanosecond), func() {
			c.SubmitRead(8, func(at units.Time, _ []byte) { readAt = at })
		})
		eng.Run()
		return readAt, writeAt
	}
	readNo, writeNo := run(false)
	readYes, writeYes := run(true)
	// Without pausing the read waits for the full write.
	if readNo < writeNo {
		t.Fatalf("without pausing, read (%v) finished before the write (%v)", readNo, writeNo)
	}
	// With pausing the read completes at 500ns + 53ns + 50ns = 603ns.
	if want := units.Time(603 * units.Nanosecond); readYes != want {
		t.Errorf("paused read completed at %v, want %v", readYes, want)
	}
	// And the write is extended by exactly the read service time.
	if want := writeNo + units.Time(50*units.Nanosecond); writeYes != want {
		t.Errorf("resumed write completed at %v, want %v (original %v + TRead)", writeYes, want, writeNo)
	}
	if readYes >= readNo {
		t.Error("pausing did not improve read latency")
	}
}

func TestWritePausingRepeatedReads(t *testing.T) {
	// Several reads pause the same long write one after another; each
	// extends it, and all complete before it.
	eng, c, _ := testController(Config{OpportunisticWrites: true, WritePausing: true})
	data := make([]byte, 64)
	data[0] = 0xFF
	var writeAt units.Time
	reads := 0
	eng.At(0, func() {
		c.SubmitWrite(0, data, func(at units.Time) { writeAt = at })
	})
	for i := 1; i <= 3; i++ {
		eng.At(units.Time(i)*units.Time(300*units.Nanosecond), func() {
			c.SubmitRead(8, func(at units.Time, _ []byte) { reads++ })
		})
	}
	eng.Run()
	if reads != 3 {
		t.Fatalf("%d reads completed, want 3", reads)
	}
	if c.Stats().Pauses != 3 {
		t.Errorf("Pauses = %d, want 3", c.Stats().Pauses)
	}
	// Write extended by 3 reads: 3490 + 3*50 = 3640ns.
	if want := units.Time(units.Nanoseconds(3490 + 150)); writeAt != want {
		t.Errorf("write completed at %v, want %v", writeAt, want)
	}
}

func TestWritePausingSkipsNearlyDoneWrites(t *testing.T) {
	// A read arriving within Treset of the write's end must not pause it.
	eng, c, _ := testController(Config{OpportunisticWrites: true, WritePausing: true})
	data := make([]byte, 64)
	data[0] = 0xFF
	eng.At(0, func() { c.SubmitWrite(0, data, nil) })
	// DCW write ends at 3490ns; read arrives at 3460ns (30ns left < Treset).
	eng.At(units.Time(3460*units.Nanosecond), func() {
		c.SubmitRead(8, func(units.Time, []byte) {})
	})
	eng.Run()
	if c.Stats().Pauses != 0 {
		t.Errorf("Pauses = %d, want 0 (write nearly done)", c.Stats().Pauses)
	}
}

func TestWritePausingDataIntegrity(t *testing.T) {
	// Random traffic with pausing on: reads must still always observe the
	// latest completed-or-forwarded data.
	eng, c, _ := testController(Config{WritePausing: true, WriteQueue: 8, DrainLow: 2})
	rng := rand.New(rand.NewSource(3))
	golden := map[pcm.LineAddr][]byte{}
	n := 0
	var step func()
	step = func() {
		if n >= 500 {
			c.WhenIdle(func() {})
			return
		}
		n++
		addr := pcm.LineAddr(rng.Intn(24))
		if rng.Intn(2) == 0 {
			data := make([]byte, 64)
			rng.Read(data)
			if c.SubmitWrite(addr, data, nil) {
				golden[addr] = data
			}
		} else if want, ok := golden[addr]; ok {
			wantCopy := append([]byte(nil), want...)
			c.SubmitRead(addr, func(_ units.Time, got []byte) {
				for i := range got {
					if got[i] != wantCopy[i] {
						t.Errorf("stale read at %d with pausing", addr)
						return
					}
				}
			})
		}
		eng.After(units.Duration(rng.Intn(800))*units.Nanosecond, step)
	}
	eng.At(0, step)
	eng.Run()
}

// presetDirtyOracle lets the test act as the LLC for PreSET.
type presetDirtyOracle struct{ dirty map[pcm.LineAddr]bool }

func (o *presetDirtyOracle) isDirty(a pcm.LineAddr) bool { return o.dirty[a] }

// TestIdlePresetFavourableCase: a hot line is rewritten repeatedly with
// balanced data, with idle time between writes for the preset to land.
// Each preset turns the next write into pure RESETs, cutting its write
// units far below 1.
func TestIdlePresetFavourableCase(t *testing.T) {
	eng := &sim.Engine{}
	dev := pcm.MustNewDevice(pcm.DefaultParams())
	factory := func(p pcm.Params) schemes.Scheme {
		return tetris.NewWithOptions(p, tetris.Options{TimeAwareFlip: true})
	}
	c := New(eng, dev, factory, Config{OpportunisticWrites: true, IdlePreset: true})
	oracle := &presetDirtyOracle{dirty: map[pcm.LineAddr]bool{}}
	c.SetDirtyChecker(oracle.isDirty)

	const addr = pcm.LineAddr(0)
	rng := rand.New(rand.NewSource(9))
	data := make([]byte, 64)
	rng.Read(data)

	writes := 0
	var step func()
	step = func() {
		if writes >= 20 {
			c.WhenIdle(func() {})
			return
		}
		writes++
		// The line goes dirty in the "LLC"; hint the controller, then
		// write it back after an idle window long enough for the preset.
		oracle.dirty[addr] = true
		c.PresetHint(addr)
		eng.After(5*units.Microsecond, func() {
			rng.Read(data) // balanced 50/50 payload
			oracle.dirty[addr] = false
			c.SubmitWrite(addr, data, func(units.Time) {
				eng.After(2*units.Microsecond, step)
			})
		})
	}
	eng.At(0, step)
	eng.Run()

	st := c.Stats()
	if st.Presets < 15 {
		t.Fatalf("only %d presets ran, want most of the 20 windows", st.Presets)
	}
	perWrite := st.WriteUnits / float64(st.WriteLatency.Count())
	// Pure-RESET writes of ~50% zeros pack into ~4 sub-write-units
	// (0.5); writes where an extreme slice still prefers inversion pay
	// one write unit for the flip-cell SET (1.0). The mix must land well
	// below the ~1.0 a non-preset rewrite of random data costs.
	if perWrite >= 0.95 {
		t.Errorf("mean write units %.3f with PreSET on a hot line, want < 0.95", perWrite)
	}
	// And data stays correct.
	got := make([]byte, 64)
	dev.PeekLine(addr, got)
	for i := range got {
		if got[i] != data[i] {
			t.Fatal("final contents wrong after preset cycles")
		}
	}
}

// TestPresetGuards: stale hints (line cleaned, or write queued) are
// dropped, and hints are deduplicated and bounded.
func TestPresetGuards(t *testing.T) {
	eng := &sim.Engine{}
	dev := pcm.MustNewDevice(pcm.DefaultParams())
	c := New(eng, dev, tetris.New, Config{IdlePreset: true, PresetQueue: 2})
	oracle := &presetDirtyOracle{dirty: map[pcm.LineAddr]bool{}}
	c.SetDirtyChecker(oracle.isDirty)

	eng.At(0, func() {
		// Not dirty at execution time: dropped.
		c.PresetHint(1)
		// Duplicates don't occupy extra slots.
		c.PresetHint(2)
		c.PresetHint(2)
		// Queue bound: the third distinct hint is dropped.
		c.PresetHint(3)
	})
	eng.Run()
	st := c.Stats()
	if st.Presets != 0 {
		t.Errorf("%d presets ran on clean lines", st.Presets)
	}
	if st.PresetDropped == 0 {
		t.Error("no hints recorded as dropped")
	}
}

// TestPresetWithoutCheckerIsInert: hints without a dirty checker never
// destroy data.
func TestPresetWithoutCheckerIsInert(t *testing.T) {
	eng := &sim.Engine{}
	dev := pcm.MustNewDevice(pcm.DefaultParams())
	c := New(eng, dev, tetris.New, Config{IdlePreset: true, OpportunisticWrites: true})
	want := make([]byte, 64)
	want[0] = 0x5A
	eng.At(0, func() {
		c.SubmitWrite(4, want, func(units.Time) {
			c.PresetHint(4)
		})
	})
	eng.Run()
	got := make([]byte, 64)
	dev.PeekLine(4, got)
	if got[0] != 0x5A {
		t.Fatal("preset without dirty checker destroyed data")
	}
	if c.Stats().Presets != 0 {
		t.Error("preset executed without a dirty checker")
	}
}

// TestSubarrayReadOverlapsWrite: with Subarrays > 1, a read to a
// different subarray proceeds while a write holds the bank; with a
// monolithic bank it waits.
func TestSubarrayReadOverlapsWrite(t *testing.T) {
	run := func(subarrays int) (readAt units.Time, overlaps int64) {
		eng, c, _ := testController(Config{OpportunisticWrites: true, Subarrays: subarrays})
		data := make([]byte, 64)
		data[0] = 0xFF
		eng.At(0, func() {
			c.SubmitWrite(0, data, nil) // bank 0, subarray 0
		})
		// Read to bank 0 but a different subarray (addr 8 = bank 0,
		// line index 1 -> subarray 1 when subarrays > 1).
		eng.At(units.Time(100*units.Nanosecond), func() {
			c.SubmitRead(8, func(at units.Time, _ []byte) { readAt = at })
		})
		eng.Run()
		return readAt, c.Stats().SubarrayOverlaps
	}
	mono, ov1 := run(1)
	split, ov4 := run(4)
	if ov1 != 0 {
		t.Errorf("monolithic bank recorded %d overlaps", ov1)
	}
	if ov4 != 1 {
		t.Errorf("4-subarray bank recorded %d overlaps, want 1", ov4)
	}
	// Overlapped read completes at 100ns + TRead = 150ns.
	if want := units.Time(150 * units.Nanosecond); split != want {
		t.Errorf("overlapped read at %v, want %v", split, want)
	}
	if mono <= split {
		t.Errorf("monolithic read (%v) not slower than subarray read (%v)", mono, split)
	}
}

// TestSubarraySameSubarrayStillBlocks: a read to the write's own subarray
// waits even with subarrays enabled.
func TestSubarraySameSubarrayStillBlocks(t *testing.T) {
	eng, c, _ := testController(Config{OpportunisticWrites: true, Subarrays: 4})
	data := make([]byte, 64)
	data[0] = 0xFF
	var readAt, writeAt units.Time
	eng.At(0, func() {
		c.SubmitWrite(0, data, func(at units.Time) { writeAt = at })
	})
	// addr 32 = bank 0, line index 4 -> subarray 0 again.
	eng.At(units.Time(100*units.Nanosecond), func() {
		c.SubmitRead(32, func(at units.Time, _ []byte) { readAt = at })
	})
	eng.Run()
	if readAt < writeAt {
		t.Errorf("same-subarray read (%v) finished before the write (%v)", readAt, writeAt)
	}
}

// TestSubarrayConsistencyUnderRandomTraffic: the full consistency check
// with subarrays, pausing and preset-style churn off.
func TestSubarrayConsistencyUnderRandomTraffic(t *testing.T) {
	eng, c, _ := testController(Config{Subarrays: 4, WritePausing: true, WriteQueue: 8, DrainLow: 2})
	rng := rand.New(rand.NewSource(21))
	golden := map[pcm.LineAddr][]byte{}
	n := 0
	var step func()
	step = func() {
		if n >= 600 {
			c.WhenIdle(func() {})
			return
		}
		n++
		addr := pcm.LineAddr(rng.Intn(48))
		if rng.Intn(2) == 0 {
			data := make([]byte, 64)
			rng.Read(data)
			if c.SubmitWrite(addr, data, nil) {
				golden[addr] = data
			}
		} else if want, ok := golden[addr]; ok {
			wantCopy := append([]byte(nil), want...)
			c.SubmitRead(addr, func(_ units.Time, got []byte) {
				for i := range got {
					if got[i] != wantCopy[i] {
						t.Errorf("stale read at %d under subarrays", addr)
						return
					}
				}
			})
		}
		eng.After(units.Duration(rng.Intn(600))*units.Nanosecond, step)
	}
	eng.At(0, step)
	eng.Run()
}

func TestBankUtilization(t *testing.T) {
	eng, c, _ := testController(Config{OpportunisticWrites: true})
	data := make([]byte, 64)
	data[0] = 1
	eng.At(0, func() {
		c.SubmitWrite(0, data, nil) // bank 0 busy for ~3490ns
	})
	eng.RunUntil(units.Time(3490 * units.Nanosecond))
	util := c.BankUtilization()
	if util[0] < 0.99 || util[0] > 1.01 {
		t.Errorf("bank 0 utilization %.3f, want ~1.0", util[0])
	}
	for i := 1; i < len(util); i++ {
		if util[i] != 0 {
			t.Errorf("idle bank %d utilization %.3f", i, util[i])
		}
	}
}

func TestBurstReadThroughController(t *testing.T) {
	eng := &sim.Engine{}
	par := pcm.DefaultParams()
	par.BurstBytes = 8
	dev := pcm.MustNewDevice(par)
	c := New(eng, dev, schemes.NewDCW, Config{})
	var at units.Time
	eng.At(0, func() {
		c.SubmitRead(0, func(t units.Time, _ []byte) { at = t })
	})
	eng.Run()
	want := units.Time(par.ReadServiceTime())
	if at != want {
		t.Errorf("burst read completed at %v, want %v", at, want)
	}
}

// TestAllFeaturesTogether: pausing + subarrays + tiny queues + coalescing
// under random traffic, with the golden-model read check — the features
// must compose without consistency or liveness failures.
func TestAllFeaturesTogether(t *testing.T) {
	eng := &sim.Engine{}
	dev := pcm.MustNewDevice(pcm.DefaultParams())
	factory := func(p pcm.Params) schemes.Scheme {
		return tetris.NewWithOptions(p, tetris.Options{TimeAwareFlip: true})
	}
	c := New(eng, dev, factory, Config{
		WritePausing: true,
		Subarrays:    4,
		WriteQueue:   6,
		DrainLow:     2,
	})
	rng := rand.New(rand.NewSource(123))
	golden := map[pcm.LineAddr][]byte{}
	reads, readsDone := 0, 0
	n := 0
	var step func()
	step = func() {
		if n >= 1500 {
			c.WhenIdle(func() {})
			return
		}
		n++
		addr := pcm.LineAddr(rng.Intn(96))
		if rng.Intn(2) == 0 {
			data := make([]byte, 64)
			rng.Read(data)
			if c.SubmitWrite(addr, data, nil) {
				golden[addr] = data
			}
		} else if want, ok := golden[addr]; ok {
			wantCopy := append([]byte(nil), want...)
			reads++
			c.SubmitRead(addr, func(_ units.Time, got []byte) {
				readsDone++
				for i := range got {
					if got[i] != wantCopy[i] {
						t.Errorf("stale read at %d with all features on", addr)
						return
					}
				}
			})
		}
		eng.After(units.Duration(rng.Intn(400))*units.Nanosecond, step)
	}
	eng.At(0, step)
	eng.Run()
	if reads != readsDone {
		t.Fatalf("%d of %d reads never completed", reads-readsDone, reads)
	}
	st := c.Stats()
	if st.Pauses == 0 && st.SubarrayOverlaps == 0 {
		t.Error("neither overlap mechanism ever engaged under heavy traffic")
	}
}

// TestWriteCancellation: a read arriving early in a long write cancels
// it; the read completes promptly and the write re-executes afterwards
// with correct final data.
func TestWriteCancellation(t *testing.T) {
	eng, c, dev := testController(Config{
		OpportunisticWrites: true,
		WritePausing:        true,
		WriteCancellation:   true,
	})
	data := make([]byte, 64)
	data[0] = 0xEE
	var readAt, writeAt units.Time
	eng.At(0, func() {
		c.SubmitWrite(0, data, func(at units.Time) { writeAt = at })
	})
	// Read arrives 100ns into a ~3490ns write: progress ~3%, cancel.
	eng.At(units.Time(100*units.Nanosecond), func() {
		c.SubmitRead(8, func(at units.Time, _ []byte) { readAt = at })
	})
	eng.Run()
	if c.Stats().Cancellations != 1 {
		t.Fatalf("Cancellations = %d, want 1", c.Stats().Cancellations)
	}
	// Read completes right after the boundary + TRead: ~203ns.
	if want := units.Time(units.Nanoseconds(100 + 53 + 50)); readAt != want {
		t.Errorf("read completed at %v, want %v", readAt, want)
	}
	// The write re-executed after the read and committed its data.
	if writeAt <= readAt {
		t.Errorf("write (%v) did not re-execute after the read (%v)", writeAt, readAt)
	}
	buf := make([]byte, 64)
	dev.PeekLine(0, buf)
	if buf[0] != 0xEE {
		t.Error("cancelled write never committed")
	}
}

// TestWriteCancellationLateReadPausesInstead: a read arriving past the
// threshold pauses rather than cancels.
func TestWriteCancellationLateReadPausesInstead(t *testing.T) {
	eng, c, _ := testController(Config{
		OpportunisticWrites: true,
		WritePausing:        true,
		WriteCancellation:   true,
		CancelThreshold:     0.5,
	})
	data := make([]byte, 64)
	data[0] = 0xEE
	eng.At(0, func() { c.SubmitWrite(0, data, nil) })
	// DCW write: 3490ns; read at 3000ns: progress ~86% > 0.5 -> pause.
	eng.At(units.Time(3000*units.Nanosecond), func() {
		c.SubmitRead(8, func(units.Time, []byte) {})
	})
	eng.Run()
	st := c.Stats()
	if st.Cancellations != 0 {
		t.Errorf("late read cancelled (%d), want pause", st.Cancellations)
	}
	if st.Pauses != 1 {
		t.Errorf("Pauses = %d, want 1", st.Pauses)
	}
}

// TestWriteCancellationConsistency: random traffic with cancellation on.
func TestWriteCancellationConsistency(t *testing.T) {
	eng, c, _ := testController(Config{
		WritePausing:      true,
		WriteCancellation: true,
		WriteQueue:        8,
		DrainLow:          2,
	})
	rng := rand.New(rand.NewSource(55))
	golden := map[pcm.LineAddr][]byte{}
	n := 0
	var step func()
	step = func() {
		if n >= 800 {
			c.WhenIdle(func() {})
			return
		}
		n++
		addr := pcm.LineAddr(rng.Intn(40))
		if rng.Intn(2) == 0 {
			data := make([]byte, 64)
			rng.Read(data)
			if c.SubmitWrite(addr, data, nil) {
				golden[addr] = data
			}
		} else if want, ok := golden[addr]; ok {
			wantCopy := append([]byte(nil), want...)
			c.SubmitRead(addr, func(_ units.Time, got []byte) {
				for i := range got {
					if got[i] != wantCopy[i] {
						t.Errorf("stale read at %d with cancellation", addr)
						return
					}
				}
			})
		}
		eng.After(units.Duration(rng.Intn(500))*units.Nanosecond, step)
	}
	eng.At(0, step)
	eng.Run()
}

func TestReadQueueRejection(t *testing.T) {
	eng, c, _ := testController(Config{ReadQueue: 2})
	accepted, rejected := 0, 0
	eng.At(0, func() {
		// All to bank 0: one starts immediately, the rest queue.
		for i := 0; i < 5; i++ {
			if c.SubmitRead(pcm.LineAddr(i*8), func(units.Time, []byte) {}) {
				accepted++
			} else {
				rejected++
			}
		}
	})
	eng.Run()
	if rejected == 0 {
		t.Error("tiny read queue never rejected")
	}
	if accepted < 3 { // 1 in flight + 2 queued
		t.Errorf("accepted %d, want >= 3", accepted)
	}
	if c.Stats().StallRejects == 0 {
		t.Error("rejections not counted")
	}
}

func TestWhenIdleMultipleWaiters(t *testing.T) {
	eng, c, _ := testController(Config{})
	fired := 0
	eng.At(0, func() {
		c.SubmitWrite(0, make([]byte, 64), nil)
		c.WhenIdle(func() { fired++ })
		c.WhenIdle(func() { fired++ })
	})
	eng.Run()
	if fired != 2 {
		t.Errorf("idle waiters fired %d times, want 2", fired)
	}
}
