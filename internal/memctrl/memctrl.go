// Package memctrl models the PCM memory controller of the paper's
// Table II: separate 32-entry read and write queues, read-priority
// FR-FCFS scheduling (with no row buffers in the PCM model, this is FCFS
// per bank with reads first), bank-level parallelism across 8 banks, and
// a write-drain policy that services writes only when the write queue
// fills — the behaviour responsible for the paper's observation that
// read-dominant workloads (blackscholes, swaptions) see little write
// latency benefit.
package memctrl

import (
	"fmt"
	"sync"

	"tetriswrite/internal/guard"
	"tetriswrite/internal/linestore"
	"tetriswrite/internal/pcm"
	"tetriswrite/internal/schemes"
	"tetriswrite/internal/sim"
	"tetriswrite/internal/stats"
	"tetriswrite/internal/units"
)

// DrainToEmpty is the DrainLow sentinel for "drain until the write queue
// is completely empty". The zero value of DrainLow means "use the
// default" (half the queue), so draining to exactly zero entries needs
// its own named value; any negative DrainLow behaves like DrainToEmpty.
const DrainToEmpty = -1

// Config tunes the controller. Zero values take the paper's defaults via
// Normalize.
type Config struct {
	ReadQueue  int // read queue capacity (default 32)
	WriteQueue int // write queue capacity (default 32)
	// DrainLow is the write-queue depth at which a drain stops. A drain
	// starts when the write queue is full. Three input regimes:
	//
	//	DrainLow == 0 (unset)  -> default, half the write queue
	//	DrainLow == DrainToEmpty (or any negative) -> drain to empty (0)
	//	DrainLow > 0           -> that depth, clamped to WriteQueue
	//
	// After Normalize, DrainLow holds the effective non-negative depth.
	DrainLow int
	// OpportunisticWrites lets idle banks service writes even when no
	// drain is active and no read wants them (ablation; the paper's
	// controller services writes only on a full write queue).
	OpportunisticWrites bool
	// DisableCoalescing stops the controller from merging a new write
	// with a queued write to the same line (coalescing is on by default,
	// as in real write buffers).
	DisableCoalescing bool
	// ForwardLatency is the latency of serving a read from the write
	// queue (store-to-load forwarding). Default: one memory bus cycle.
	ForwardLatency units.Duration
	// WritePausing lets a read interrupt an in-flight write at the next
	// sub-write-unit boundary (one Treset away), stealing the bank for
	// TRead and then resuming the write's remainder — the write-pausing
	// technique of Qureshi et al. (HPCA'10), which the paper cites as the
	// reason writes are "not on the critical path". Off by default (the
	// paper's controller does not pause).
	WritePausing bool
	// WriteCancellation extends write pausing with the adaptive policy of
	// Qureshi et al. (HPCA'10): when a blocked read arrives early in a
	// write's execution (progress below CancelThreshold), the write is
	// cancelled outright — the bank frees after the current
	// sub-write-unit and the write requeues at the head of the write
	// queue — instead of merely pausing. Late-arriving reads still pause.
	// Requires WritePausing.
	WriteCancellation bool
	// CancelThreshold is the progress fraction below which a blocked
	// read cancels rather than pauses (default 0.5).
	CancelThreshold float64
	// IdlePreset enables PreSET (Qureshi et al., ISCA'12): idle banks
	// proactively SET the cells of lines hinted via PresetHint (lines
	// that went dirty in the LLC, whose memory copy is dead anyway), so
	// their eventual write-back needs only fast RESETs. Requires a
	// scheme implementing schemes.Presetter and a dirty-checker wired
	// with SetDirtyChecker; hints are dropped otherwise.
	IdlePreset bool
	// PresetQueue bounds the number of outstanding preset hints
	// (default 64).
	PresetQueue int
	// Subarrays models subarray-level parallelism inside a bank (the
	// paper's references [13][15]): reads to a different subarray may
	// proceed while a write occupies the bank, because only the write
	// driver and its subarray's sense path are tied up. 1 (the default)
	// is the paper's monolithic bank; writes always need the whole bank.
	Subarrays int
	// VerifyWrites enables iterative program-and-verify: after a write's
	// pulses complete, the controller reads the line back (TRead, charged
	// to the bank), compares against the intended data, and re-pulses
	// only the mismatched cells — DCW-style, so retries are cheap — up to
	// VerifyRetries times before escalating to a hard error. Off by
	// default: the ideal device never miswrites, and verify would only
	// add overhead. Enable together with a pcm.FaultModel on the device.
	VerifyWrites bool
	// VerifyRetries is the per-write retry budget of the verify loop
	// (default 3, the typical iterative-write bound of PCM controllers).
	VerifyRetries int
	// ParallelBanks offloads write planning — the dominant per-write CPU
	// cost — to one worker goroutine per bank, synchronized by
	// conservative-lookahead completion events so results stay
	// bit-identical to the serial path (see parallel.go). Features that
	// inspect or reshape a plan after issue (write pausing/cancellation,
	// idle PreSET, verify, crash hooks, deep guard checks) silently fall
	// back to serial planning.
	ParallelBanks bool

	// drainLowSet latches the one-time DrainLow sentinel resolution so
	// Normalize is idempotent.
	drainLowSet bool
}

// Normalize fills defaults in place. It is idempotent: normalizing an
// already-normalized config changes nothing.
func (c *Config) Normalize(par pcm.Params) {
	if c.ReadQueue <= 0 {
		c.ReadQueue = 32
	}
	if c.WriteQueue <= 0 {
		c.WriteQueue = 32
	}
	if !c.drainLowSet {
		// Resolve the DrainLow sentinels exactly once: 0 is "unset" only
		// on the way in. Without the latch, a DrainToEmpty config
		// normalized twice would silently revert to the default.
		switch {
		case c.DrainLow == 0:
			c.DrainLow = c.WriteQueue / 2
		case c.DrainLow < 0: // DrainToEmpty and friends
			c.DrainLow = 0
		}
		c.drainLowSet = true
	}
	if c.DrainLow > c.WriteQueue {
		c.DrainLow = c.WriteQueue
	}
	if c.ForwardLatency <= 0 {
		c.ForwardLatency = par.MemClock.Period()
	}
	if c.PresetQueue <= 0 {
		c.PresetQueue = 64
	}
	if c.CancelThreshold <= 0 || c.CancelThreshold > 1 {
		c.CancelThreshold = 0.5
	}
	if c.Subarrays <= 0 {
		c.Subarrays = 1
	}
	if c.VerifyRetries <= 0 {
		c.VerifyRetries = 3
	}
}

type request struct {
	write    bool
	addr     pcm.LineAddr
	data     []byte
	enqueued units.Time
	onDone   func(at units.Time)
	// onData is the read-completion callback, stored directly (no
	// wrapper closure). The data slice it receives is the controller's
	// shared scratch buffer, valid only for the duration of the call.
	onData func(at units.Time, data []byte)
}

// Stats aggregates controller activity. Latencies are measured from
// enqueue to completion, the quantity the paper's Figures 11 and 12
// report.
type Stats struct {
	Reads            int64
	Writes           int64
	ForwardedReads   int64
	Coalesced        int64
	ReadLatency      stats.Latency
	WriteLatency     stats.Latency
	WriteUnits       float64 // accumulated Figure 10 metric
	BitSets          int64
	BitResets        int64
	Drains           int64
	DrainExits       int64 // drains that ended by reaching the low-water mark
	StallRejects     int64 // submissions rejected because a queue was full
	Pauses           int64 // writes paused to service a read
	Cancellations    int64 // writes cancelled and requeued for a read
	Presets          int64 // idle-time PreSET operations executed
	PresetDropped    int64 // hints dropped (queue full or stale)
	SubarrayOverlaps int64 // reads serviced while a write held the bank

	// Write-verify activity (all zero unless Config.VerifyWrites).
	Verifies       int64          // verify read-backs performed
	Retries        int64          // re-pulse rounds after a failed verify
	RetrySets      int64          // SET pulses driven by retries
	RetryResets    int64          // RESET pulses driven by retries
	HardErrors     int64          // writes that never verified within budget
	VerifyOverhead units.Duration // bank time spent on verify reads and retry pulses
}

// Controller is the memory controller plus its banks. It is driven
// entirely by the simulation engine; all methods must be called from the
// engine's goroutine (event callbacks).
type Controller struct {
	eng *sim.Engine
	par pcm.Params
	cfg Config
	dev *pcm.Device

	banks []*bank
	// Reads queue per bank (the global FIFO filtered by owning bank —
	// the scheduler only ever consumed it that way, so the split is
	// order-identical and turns startReads' global scan into a scan of
	// the bank's own queue). nreadQ is the global occupancy the 32-entry
	// queue bound and the depth telemetry are defined over.
	nreadQ int
	writeQ []*request

	draining  bool
	spaceWait []func() // woken (once each) when write-queue space appears
	idleWait  []func() // woken when everything drains
	stats     Stats

	// PreSET state.
	presetQ    []pcm.LineAddr
	presetSet  *linestore.Set
	stillDirty func(pcm.LineAddr) bool
	allOnes    []byte

	// wear, when attached, receives the scheme's actual pulse count per
	// line write — the endurance-relevant quantity (redundant pulses of
	// non-comparing schemes wear cells even when the value is unchanged).
	wear *pcm.WearTracker

	// guard, when attached, validates the runtime invariants (power
	// budget, pulse coverage, queue bounds, clock monotonicity) on every
	// issued plan and submission. A nil guard costs nothing.
	guard *guard.Guard

	// onHardError, when set, receives every write the verify loop gave
	// up on: the physical line and the data that should have landed. The
	// spare remapper (fault.SpareRemapper) registers here to redirect the
	// line; without a handler hard errors are only counted.
	onHardError func(addr pcm.LineAddr, want []byte)

	// crash, when attached, observes every write's issue and completion
	// boundaries for the power-failure substrate. A nil hook costs one
	// branch per write and changes nothing.
	crash CrashHook

	// fp labels this run for attributable errors (verify exhaustion,
	// crash-recovery reissue failures); zero value when never set.
	fp guard.Fingerprint

	// verifyErrs retains the first few typed verify-exhaustion errors
	// (the counter c.stats.HardErrors keeps the full tally).
	verifyErrs []*VerifyExhaustedError

	// Per-write bookkeeping freelists and scratch. The controller runs
	// on the single engine goroutine, so plain slices beat sync.Pool:
	// deterministic, no locks, no per-P caches. reqFree recycles request
	// structs and dataFree their line-sized payload copies; recycling
	// happens in finish, after which stale bank events reject the reused
	// pointer via the generation counter. oldBuf and verifyBuf back the
	// synchronous read-modify snapshots of startWrite/tryPreset and the
	// verify loop — never retained across events.
	reqFree   []*request
	dataFree  [][]byte
	oldBuf    []byte
	verifyBuf []byte
	// readBuf backs read-completion payloads: the device image is read
	// into it synchronously and handed to the callback, which must copy
	// if it retains (every in-tree caller consumes it in place).
	readBuf []byte
	// readEvFree/writeEvFree recycle completion event structs, each
	// carrying its own prebound fire closure so arming a read or write
	// completion costs no allocation.
	readEvFree  []*readEvent
	writeEvFree []*writeEvent

	// Deferred-planning (parallel engine) state; see parallel.go. The
	// mode is latched at the first write, once every hook that could
	// force the serial fallback has been attached.
	modeLatched  bool
	deferred     bool
	closed       bool
	workersUp    bool
	wg           sync.WaitGroup
	inflight     []*writeJob // issue-ordered outstanding jobs
	inflightHead int
	jobFree      []*writeJob
}

// SetWearTracker attaches per-line pulse accounting.
func (c *Controller) SetWearTracker(w *pcm.WearTracker) { c.wear = w }

// SetGuard attaches the runtime invariant checker. Checks only read
// state, so an attached guard never changes simulated behaviour.
func (c *Controller) SetGuard(g *guard.Guard) { c.guard = g }

// guardQueues reports the current queue occupancies to the guard.
func (c *Controller) guardQueues() {
	c.guard.CheckQueues(c.eng.Now(), c.nreadQ, len(c.writeQ), c.cfg.ReadQueue, c.cfg.WriteQueue)
}

// CrashHook observes the two durability boundaries of every line write
// the controller issues. WriteStarted runs at issue time, after the
// plan is validated and before its pulse buffer is recycled — old, want
// and plan.Pulses are only valid for the duration of the call and must
// be copied if retained. WriteCompleted runs at the completion
// boundary, before the acknowledgement; returning false means power was
// lost at that exact boundary — the controller releases the bank but
// the acknowledgement never fires. crash.Injector is the one
// implementation.
type CrashHook interface {
	WriteStarted(addr pcm.LineAddr, old, want []byte, plan schemes.Plan, now units.Time)
	WriteCompleted(addr pcm.LineAddr) bool
}

// SetCrash attaches the power-failure hook. Pulse-time-shifting and
// request-path-bypassing features are rejected: write pausing and
// cancellation move pulse boundaries after issue, and idle PreSET
// writes lines without arming an intent — both would break the hook's
// frozen view of the schedule.
func (c *Controller) SetCrash(h CrashHook) error {
	if c.cfg.WritePausing || c.cfg.WriteCancellation {
		return fmt.Errorf("memctrl: crash injection is incompatible with write pausing/cancellation")
	}
	if c.cfg.IdlePreset {
		return fmt.Errorf("memctrl: crash injection is incompatible with idle PreSET")
	}
	c.crash = h
	return nil
}

// SetFingerprint labels the run for attributable typed errors.
func (c *Controller) SetFingerprint(fp guard.Fingerprint) { c.fp = fp }

// VerifyExhaustedError identifies one write the program-and-verify loop
// gave up on, carrying the guard-style run fingerprint so a hard error
// inside a sweep — or a crash-recovery reissue that never converged —
// is attributable to an exact (seed, workload, scheme, cycle, line).
type VerifyExhaustedError struct {
	Fp         guard.Fingerprint
	Addr       pcm.LineAddr
	Attempts   int // verify rounds performed, including the first
	Mismatched int // cells still wrong after the last retry
}

func (e *VerifyExhaustedError) Error() string {
	return fmt.Sprintf("memctrl: verify exhausted after %d attempts on line %d (%d cells still wrong) [%s]",
		e.Attempts, e.Addr, e.Mismatched, e.Fp)
}

// VerifyErrors returns the retained typed verify-exhaustion errors (at
// most a handful; Stats().HardErrors has the full count).
func (c *Controller) VerifyErrors() []*VerifyExhaustedError { return c.verifyErrs }

// SetHardErrorHandler registers the escalation callback of the verify
// loop. The handler runs in the engine goroutine, before the failed
// write's own completion callback, so redirects it installs are visible
// to whatever that callback submits next.
func (c *Controller) SetHardErrorHandler(fn func(addr pcm.LineAddr, want []byte)) {
	c.onHardError = fn
}

type bank struct {
	scheme schemes.Scheme
	// recycler is scheme's PlanRecycler side, if it has one: plans are
	// handed back as soon as the controller has extracted what it needs
	// (service time, counts), so steady-state planning reuses one buffer.
	recycler schemes.PlanRecycler
	// observer is scheme's QueueObserver side, if it has one: it sees
	// the controller's queue depths right before each PlanWrite, letting
	// adaptive schemes react to load without touching the request path
	// for everyone else.
	observer schemes.QueueObserver
	// write is the in-flight write (or preset), if any; reads[sub] is
	// the subarray's in-flight read (nreads counts them). With
	// Subarrays == 1 the two are mutually exclusive (monolithic bank);
	// with more, reads may overlap a write in a different subarray.
	write  *request
	reads  []*request
	nreads int
	// readQ is this bank's slice of the controller's read FIFO.
	readQ []*request
	// Write-pausing state: gen invalidates stale completion events after
	// a pause extends the write; writeEnd is the current scheduled
	// completion; pausing guards against double-pausing.
	gen        uint64
	writeStart units.Time
	writeEnd   units.Time
	pausing    bool
	// verifying marks the program-and-verify tail of a write: the bank
	// is still held by the write but its pulses are done, so pausing (a
	// pulse-boundary mechanism) no longer applies.
	verifying bool
	// busyTime accumulates array occupancy for the utilization report.
	busyTime units.Duration

	// Deferred-planning worker plumbing (parallel engine only): one
	// worker goroutine per bank, at most one job outstanding, so both
	// channels stay capacity one and sends never block. The cached
	// service-time floors are the conservative lookahead bounds.
	jobs         chan *writeJob
	results      chan *writeJob
	floorClean   units.Duration
	floorChanged units.Duration
}

// idle reports whether nothing at all is in flight on the bank.
func (b *bank) idle() bool { return b.write == nil && b.nreads == 0 }

// New builds a controller over the device using one scheme instance per
// bank.
func New(eng *sim.Engine, dev *pcm.Device, factory schemes.Factory, cfg Config) *Controller {
	par := dev.Params()
	insts := make([]schemes.Scheme, par.NumBanks)
	for i := range insts {
		insts[i] = factory(par)
	}
	return NewWithSchemes(eng, dev, insts, cfg)
}

// NewWithSchemes builds a controller over pre-built per-bank scheme
// instances (one per bank, index = bank). Crash recovery resumes a run
// this way: the recovered scheme instances carry the coding state that
// matches the surviving device image, so a fresh factory would decode
// the array wrong.
func NewWithSchemes(eng *sim.Engine, dev *pcm.Device, insts []schemes.Scheme, cfg Config) *Controller {
	par := dev.Params()
	if len(insts) != par.NumBanks {
		panic(fmt.Sprintf("memctrl: %d scheme instances for %d banks", len(insts), par.NumBanks))
	}
	cfg.Normalize(par)
	c := &Controller{eng: eng, par: par, cfg: cfg, dev: dev}
	for _, s := range insts {
		b := &bank{scheme: s, reads: make([]*request, cfg.Subarrays)}
		b.recycler, _ = b.scheme.(schemes.PlanRecycler)
		b.observer, _ = b.scheme.(schemes.QueueObserver)
		c.banks = append(c.banks, b)
	}
	return c
}

// Schemes returns the per-bank scheme instances (index = bank). The
// crash injector binds to them, and recovery hands them to a resumed
// controller via NewWithSchemes.
func (c *Controller) Schemes() []schemes.Scheme {
	out := make([]schemes.Scheme, len(c.banks))
	for i, b := range c.banks {
		out[i] = b.scheme
	}
	return out
}

// newRequest takes a request struct from the freelist (or the heap).
func (c *Controller) newRequest() *request {
	if n := len(c.reqFree); n > 0 {
		req := c.reqFree[n-1]
		c.reqFree[n-1] = nil
		c.reqFree = c.reqFree[:n-1]
		return req
	}
	return &request{}
}

// newData takes a line-sized payload buffer from the freelist.
func (c *Controller) newData() []byte {
	if n := len(c.dataFree); n > 0 {
		buf := c.dataFree[n-1]
		c.dataFree[n-1] = nil
		c.dataFree = c.dataFree[:n-1]
		return buf
	}
	return make([]byte, c.par.LineBytes)
}

// recycleRequest returns a finished request and its payload to the
// freelists. Stale completion/pause events may still hold the pointer,
// but every such event validates the bank's generation counter (which
// only ever increments) before touching it, so reuse cannot be confused
// with the request's previous life. Preset requests never come through
// here — their data aliases c.allOnes, which must not enter the payload
// freelist.
func (c *Controller) recycleRequest(req *request) {
	if req.data != nil {
		c.dataFree = append(c.dataFree, req.data)
	}
	*req = request{}
	c.reqFree = append(c.reqFree, req)
}

// Params returns the device parameters the controller was built with.
func (c *Controller) Params() pcm.Params { return c.par }

// Stats returns a snapshot of the controller statistics.
func (c *Controller) Stats() Stats { return c.stats }

func (c *Controller) bankOf(addr pcm.LineAddr) *bank {
	return c.banks[int(addr)%len(c.banks)]
}

// subarrayOf returns the subarray a line lives in within its bank.
func (c *Controller) subarrayOf(addr pcm.LineAddr) int {
	return int(int64(addr)/int64(len(c.banks))) % c.cfg.Subarrays
}

// SubmitRead enqueues a read. It returns false (and records a stall) if
// the read queue is full; the caller should retry after other activity,
// e.g. via WhenWriteSpace or a later event.
//
// The data slice handed to onDone is only valid for the duration of the
// callback — the controller reuses the buffer for later reads — so
// callers that retain it must copy.
func (c *Controller) SubmitRead(addr pcm.LineAddr, onDone func(at units.Time, data []byte)) bool {
	if c.nreadQ >= c.cfg.ReadQueue {
		c.stats.StallRejects++
		return false
	}
	c.stats.Reads++
	// Store-to-load forwarding: the freshest matching write wins.
	if d := c.forwardData(addr); d != nil {
		c.stats.ForwardedReads++
		at := c.eng.Now().Add(c.cfg.ForwardLatency)
		payload := append([]byte(nil), d...)
		lat := c.cfg.ForwardLatency
		c.eng.At(at, func() {
			c.stats.ReadLatency.Add(lat)
			onDone(at, payload)
		})
		return true
	}
	req := c.newRequest()
	req.addr = addr
	req.enqueued = c.eng.Now()
	req.onData = onDone
	b := c.bankOf(addr)
	b.readQ = append(b.readQ, req)
	c.nreadQ++
	c.guardQueues()
	c.scheduleBank(b)
	return true
}

// forwardData returns the data of the youngest pending or in-flight write
// to addr, or nil.
func (c *Controller) forwardData(addr pcm.LineAddr) []byte {
	for i := len(c.writeQ) - 1; i >= 0; i-- {
		if c.writeQ[i].addr == addr {
			return c.writeQ[i].data
		}
	}
	if b := c.bankOf(addr); b.write != nil && b.write.addr == addr {
		return b.write.data
	}
	return nil
}

// SubmitWrite enqueues a write of data (copied) to addr. It returns false
// if the write queue is full; the caller should stall and retry from a
// WhenWriteSpace callback.
func (c *Controller) SubmitWrite(addr pcm.LineAddr, data []byte, onDone func(at units.Time)) bool {
	if len(data) != c.par.LineBytes {
		panic(fmt.Sprintf("memctrl: write of %d bytes, line is %d", len(data), c.par.LineBytes))
	}
	if !c.cfg.DisableCoalescing {
		for _, r := range c.writeQ {
			if r.addr == addr {
				copy(r.data, data)
				c.stats.Coalesced++
				c.stats.Writes++
				if onDone != nil {
					prev := r.onDone
					r.onDone = func(at units.Time) {
						if prev != nil {
							prev(at)
						}
						onDone(at)
					}
				}
				return true
			}
		}
	}
	if len(c.writeQ) >= c.cfg.WriteQueue {
		c.stats.StallRejects++
		return false
	}
	c.stats.Writes++
	req := c.newRequest()
	req.write = true
	req.addr = addr
	req.data = c.newData()
	copy(req.data, data)
	req.enqueued = c.eng.Now()
	if onDone != nil {
		req.onDone = onDone
	}
	c.writeQ = append(c.writeQ, req)
	c.guardQueues()
	if len(c.writeQ) >= c.cfg.WriteQueue && !c.draining {
		// Queue just filled: enter drain mode. The drain makes every
		// bank write-eligible at once, so this is the one submission
		// that needs the full sweep.
		c.draining = true
		c.stats.Drains++
		c.schedule()
		return true
	}
	// A queued write can only ever dispatch to its owning bank.
	c.scheduleBank(c.bankOf(addr))
	return true
}

// WhenWriteSpace registers fn to run (once) the next time write-queue
// space frees up. If space exists now, fn runs on the next event.
func (c *Controller) WhenWriteSpace(fn func()) {
	if len(c.writeQ) < c.cfg.WriteQueue {
		c.eng.After(0, fn)
		return
	}
	c.spaceWait = append(c.spaceWait, fn)
}

// WhenIdle registers fn to run once both queues are empty and all banks
// are idle. Used to flush at the end of a simulation; entering this state
// force-drains remaining writes.
func (c *Controller) WhenIdle(fn func()) {
	c.idleWait = append(c.idleWait, fn)
	c.draining = true // flush whatever is left
	c.schedule()
	c.checkIdle()
}

func (c *Controller) checkIdle() {
	if c.nreadQ != 0 || len(c.writeQ) != 0 {
		return
	}
	for _, b := range c.banks {
		if !b.idle() {
			return
		}
	}
	waiters := c.idleWait
	c.idleWait = nil
	for _, fn := range waiters {
		c.eng.After(0, fn)
	}
}

// schedule hands work to every bank according to the policy: oldest
// serviceable read first (reads may overlap a write in another subarray
// when Subarrays > 1); writes only on a fully idle bank, and only while
// draining (or opportunistically, if configured).
func (c *Controller) schedule() {
	for _, b := range c.banks {
		c.scheduleBank1(b)
	}
}

// scheduleBank runs the policy for the one bank whose eligibility an
// event changed. Every other bank is a fixed point — its last schedule
// pass found nothing startable and none of its inputs moved — so
// skipping it arms exactly the events the full sweep would. Idle PreSET
// breaks that argument (tryPreset consults a dirtiness oracle whose
// answers drift between events, and a sweep on any bank's event can
// drop stale hints on every idle bank), so preset configurations keep
// the full sweep.
func (c *Controller) scheduleBank(b *bank) {
	if c.cfg.IdlePreset {
		c.schedule()
		return
	}
	c.scheduleBank1(b)
}

func (c *Controller) scheduleBank1(b *bank) {
	c.startReads(b)
	if b.write != nil {
		c.tryPause(b)
		return
	}
	if !b.idle() {
		return
	}
	if req := c.pickWrite(b); req != nil {
		c.startWrite(b, req)
		return
	}
	c.tryPreset(b)
}

// startReads launches every queued read this bank can service right now.
// It bails out as soon as the bank is saturated (every subarray busy, or
// a monolithic bank held by a write), so a busy bank costs O(1) instead
// of a full queue scan.
func (c *Controller) startReads(b *bank) {
	for i := 0; i < len(b.readQ); {
		if b.nreads == c.cfg.Subarrays || (b.write != nil && c.cfg.Subarrays <= 1) {
			return
		}
		r := b.readQ[i]
		if !c.canRead(b, r.addr) {
			i++
			continue
		}
		b.readQ = append(b.readQ[:i], b.readQ[i+1:]...)
		c.nreadQ--
		c.startRead(b, r)
	}
}

// canRead reports whether the read's subarray is free and not blocked by
// the in-flight write.
func (c *Controller) canRead(b *bank, addr pcm.LineAddr) bool {
	sub := c.subarrayOf(addr)
	if b.reads[sub] != nil {
		return false
	}
	if b.write == nil {
		return true
	}
	if c.cfg.Subarrays <= 1 {
		return false
	}
	return c.subarrayOf(b.write.addr) != sub
}

func (c *Controller) pickWrite(b *bank) *request {
	if !c.draining && !c.cfg.OpportunisticWrites {
		return nil
	}
	for i, r := range c.writeQ {
		if c.bankOf(r.addr) == b {
			c.writeQ = append(c.writeQ[:i], c.writeQ[i+1:]...)
			c.noteWriteSpace()
			return r
		}
	}
	return nil
}

// noteWriteSpace wakes space waiters and ends a drain that reached its
// low-water mark.
func (c *Controller) noteWriteSpace() {
	if c.draining && len(c.writeQ) <= c.cfg.DrainLow && len(c.idleWait) == 0 {
		c.draining = false
		c.stats.DrainExits++
	}
	waiters := c.spaceWait
	c.spaceWait = nil
	for _, fn := range waiters {
		c.eng.After(0, fn)
	}
}

// readEvent is one armed read completion. The struct (and its prebound
// fire closure) is recycled through the controller's freelist, so the
// per-read completion costs no allocation.
type readEvent struct {
	c    *Controller
	b    *bank
	req  *request
	sub  int
	done units.Time
	fire func()
}

func (c *Controller) newReadEvent() *readEvent {
	if n := len(c.readEvFree); n > 0 {
		ev := c.readEvFree[n-1]
		c.readEvFree[n-1] = nil
		c.readEvFree = c.readEvFree[:n-1]
		return ev
	}
	ev := &readEvent{c: c}
	ev.fire = ev.run
	return ev
}

func (ev *readEvent) run() {
	c, b, req, sub, done := ev.c, ev.b, ev.req, ev.sub, ev.done
	// Recycle before finish: the callback may start new reads that want
	// the struct back.
	ev.b, ev.req = nil, nil
	c.readEvFree = append(c.readEvFree, ev)
	b.reads[sub] = nil
	b.nreads--
	c.finish(req, done)
}

func (c *Controller) startRead(b *bank, req *request) {
	sub := c.subarrayOf(req.addr)
	b.reads[sub] = req
	b.nreads++
	if b.write != nil {
		c.stats.SubarrayOverlaps++
	}
	svc := c.par.ReadServiceTime()
	b.busyTime += svc
	done := c.eng.Now().Add(svc)
	ev := c.newReadEvent()
	ev.b, ev.req, ev.sub, ev.done = b, req, sub, done
	c.eng.At(done, ev.fire)
}

func (c *Controller) startWrite(b *bank, req *request) {
	if !c.modeLatched {
		c.latchMode()
	}
	if c.deferred {
		c.startWriteDeferred(b, req)
		return
	}
	b.write = req
	if c.oldBuf == nil {
		c.oldBuf = make([]byte, c.par.LineBytes)
	}
	old := c.oldBuf // synchronous use only: released before the next event
	c.dev.PeekLine(req.addr, old)
	if b.observer != nil {
		b.observer.ObserveQueues(c.nreadQ, len(c.writeQ))
	}
	plan := b.scheme.PlanWrite(req.addr, old, req.data)
	c.guard.CheckWritePlan(c.eng.Now(), req.addr, old, req.data, plan)
	sets, resets := plan.Counts()
	c.stats.BitSets += int64(sets)
	c.stats.BitResets += int64(resets)
	c.stats.WriteUnits += plan.WriteUnits()
	if c.wear != nil {
		c.wear.Record(req.addr, sets+resets)
	}
	svc := plan.ServiceTime()
	b.busyTime += svc
	b.writeStart = c.eng.Now()
	b.writeEnd = c.eng.Now().Add(svc)
	if c.crash != nil {
		// Arm the write's intent while the plan is still alive: the hook
		// copies whatever it keeps, the recycler below reuses the buffer.
		c.crash.WriteStarted(req.addr, old, req.data, plan, c.eng.Now())
	}
	// Everything the controller needs from the plan is extracted: hand
	// the pulse buffer back to the scheme for the next write.
	if b.recycler != nil {
		b.recycler.RecyclePlan(plan)
	}
	c.scheduleWriteCompletion(b, req)
}

// writeEvent is one armed write completion, recycled like readEvent so
// the steady-state write path allocates nothing per completion. The
// generation check preserves the self-invalidation of pause/cancel.
type writeEvent struct {
	c    *Controller
	b    *bank
	req  *request
	end  units.Time
	gen  uint64
	fire func()
}

func (c *Controller) newWriteEvent() *writeEvent {
	if n := len(c.writeEvFree); n > 0 {
		ev := c.writeEvFree[n-1]
		c.writeEvFree[n-1] = nil
		c.writeEvFree = c.writeEvFree[:n-1]
		return ev
	}
	ev := &writeEvent{c: c}
	ev.fire = ev.run
	return ev
}

func (ev *writeEvent) run() {
	c, b, req, end, gen := ev.c, ev.b, ev.req, ev.end, ev.gen
	// Recycle before completing: the completion path may start the next
	// write, which wants the struct back.
	ev.b, ev.req = nil, nil
	c.writeEvFree = append(c.writeEvFree, ev)
	if b.gen != gen || b.write != req {
		return
	}
	c.dev.WriteLine(req.addr, req.data)
	if c.cfg.VerifyWrites {
		// The array may not hold what was driven (stuck cells,
		// transient failures): enter the program-and-verify tail
		// before releasing the bank.
		c.startVerify(b, req, 0)
		return
	}
	c.completeWrite(b, req, end)
}

// scheduleWriteCompletion arms the completion event for the bank's
// in-flight write at its current writeEnd. The event self-invalidates if
// a pause has re-scheduled the write since.
func (c *Controller) scheduleWriteCompletion(b *bank, req *request) {
	ev := c.newWriteEvent()
	ev.b, ev.req, ev.end, ev.gen = b, req, b.writeEnd, b.gen
	c.eng.At(ev.end, ev.fire)
}

// completeWrite releases the bank and finishes the write request.
func (c *Controller) completeWrite(b *bank, req *request, at units.Time) {
	b.write = nil
	b.verifying = false
	b.gen++ // invalidate any in-flight pause boundary events
	if c.crash != nil && !c.crash.WriteCompleted(req.addr) {
		// Power was lost at this exact boundary: the write is durable
		// but its acknowledgement never happens. The stopping engine
		// unwinds the rest.
		return
	}
	c.finish(req, at)
}

// startVerify runs one iteration of the program-and-verify loop: a
// read-back (TRead) compares the array against the intended data; if
// cells mismatch, exactly those cells are re-pulsed (the device's
// differential write drives only changed bits, so a retry under DCW-style
// schemes costs one short pulse wave, not a full rewrite) and the verify
// repeats, up to the configured budget. A write that never verifies
// escalates to a hard error for the sparing layer to absorb.
func (c *Controller) startVerify(b *bank, req *request, attempt int) {
	b.verifying = true
	c.stats.Verifies++
	c.stats.VerifyOverhead += c.par.TRead
	b.busyTime += c.par.TRead
	done := c.eng.Now().Add(c.par.TRead)
	gen := b.gen
	c.eng.At(done, func() {
		if b.gen != gen || b.write != req {
			return
		}
		if c.verifyBuf == nil {
			c.verifyBuf = make([]byte, c.par.LineBytes)
		}
		got := c.verifyBuf // synchronous use only
		c.dev.PeekLine(req.addr, got)
		sets, resets := mismatchCounts(got, req.data)
		if sets == 0 && resets == 0 {
			c.completeWrite(b, req, done)
			return
		}
		if attempt >= c.cfg.VerifyRetries {
			c.stats.HardErrors++
			if len(c.verifyErrs) < 16 {
				fp := c.fp
				fp.Cycle = done
				c.verifyErrs = append(c.verifyErrs, &VerifyExhaustedError{
					Fp: fp, Addr: req.addr, Attempts: attempt + 1, Mismatched: sets + resets,
				})
			}
			// Escalate before completing: the sparing layer installs its
			// redirect first, so anything the completion callback submits
			// already sees the remapped line.
			if c.onHardError != nil {
				c.onHardError(req.addr, req.data)
			}
			c.completeWrite(b, req, done)
			return
		}
		// Re-pulse only the mismatched cells: WriteLine diffs against
		// the stored image, so exactly those bits are driven again. The
		// wave costs TSet if any cell needs setting (SETs dominate the
		// wave, the PCM time asymmetry), else TReset — and real energy
		// and wear, charged like first-attempt pulses.
		c.stats.Retries++
		c.stats.RetrySets += int64(sets)
		c.stats.RetryResets += int64(resets)
		c.stats.BitSets += int64(sets)
		c.stats.BitResets += int64(resets)
		if c.wear != nil {
			c.wear.Record(req.addr, sets+resets)
		}
		pulse := c.par.TReset
		if sets > 0 {
			pulse = c.par.TSet
		}
		c.stats.VerifyOverhead += pulse
		b.busyTime += pulse
		pulsed := done.Add(pulse)
		c.eng.At(pulsed, func() {
			if b.gen != gen || b.write != req {
				return
			}
			c.dev.WriteLine(req.addr, req.data)
			c.startVerify(b, req, attempt+1)
		})
	})
}

// mismatchCounts counts the cells where got differs from want, split by
// the direction a corrective pulse must drive (set: 0->1, reset: 1->0).
func mismatchCounts(got, want []byte) (sets, resets int) {
	for i := range got {
		diff := got[i] ^ want[i]
		setMask := diff & want[i]
		resetMask := diff & got[i]
		for m := setMask; m != 0; m &= m - 1 {
			sets++
		}
		for m := resetMask; m != 0; m &= m - 1 {
			resets++
		}
	}
	return sets, resets
}

// tryPause interrupts the bank's in-flight write for the oldest read
// targeting it, if write pausing is enabled and worthwhile.
func (c *Controller) tryPause(b *bank) {
	if !c.cfg.WritePausing || b.pausing || b.write == nil || b.verifying {
		return
	}
	if !c.hasBlockedReadFor(b) {
		return
	}
	// The current sub-write-unit must drain before the bank can switch:
	// the pause point is one Treset away. Not worth it if the write
	// finishes first.
	boundary := c.eng.Now().Add(c.par.TReset)
	if boundary >= b.writeEnd {
		return
	}
	b.pausing = true
	req := b.write
	gen := b.gen
	c.eng.At(boundary, func() {
		if b.gen != gen || b.write != req {
			b.pausing = false
			return
		}
		r := c.popBlockedReadFor(b)
		if r == nil {
			b.pausing = false
			return
		}
		// Adaptive policy: a read arriving early in the write cancels it
		// (the little progress made is cheap to redo); a late read only
		// pauses (most of the write would be wasted).
		if c.cfg.WriteCancellation {
			total := b.writeEnd.Sub(b.writeStart)
			progress := float64(boundary.Sub(b.writeStart)) / float64(total)
			if progress < c.cfg.CancelThreshold {
				c.stats.Cancellations++
				b.gen++
				b.write = nil
				b.pausing = false
				// The cancelled write re-executes from scratch later:
				// requeue at the head so it is not starved further.
				c.writeQ = append([]*request{req}, c.writeQ...)
				// Put the read back too: the normal scheduler path will
				// start it on the now-free bank in order.
				b.readQ = append([]*request{r}, b.readQ...)
				c.nreadQ++
				c.scheduleBank(b)
				return
			}
		}
		c.stats.Pauses++
		// Invalidate the write's original completion event NOW: it could
		// otherwise fire inside the pause window and complete a write
		// that is supposed to be suspended.
		b.gen++
		remaining := b.writeEnd.Sub(boundary)
		readDone := boundary.Add(c.par.TRead)
		c.eng.At(readDone, func() {
			c.stats.ReadLatency.Add(readDone.Sub(r.enqueued))
			c.deliverRead(r, readDone)
			c.recycleRequest(r)
			// Resume the write: its remainder executes after the read.
			b.writeEnd = readDone.Add(remaining)
			b.pausing = false
			c.scheduleWriteCompletion(b, req)
			c.scheduleBank(b) // another read may want to pause again
		})
	})
}

// blockedBy reports whether a queued read is blocked specifically by the
// bank's in-flight write (same subarray, or a monolithic bank).
func (c *Controller) blockedBy(b *bank, addr pcm.LineAddr) bool {
	if b.write == nil {
		return false
	}
	return c.cfg.Subarrays <= 1 || c.subarrayOf(b.write.addr) == c.subarrayOf(addr)
}

func (c *Controller) hasBlockedReadFor(b *bank) bool {
	for _, r := range b.readQ {
		if c.blockedBy(b, r.addr) {
			return true
		}
	}
	return false
}

func (c *Controller) popBlockedReadFor(b *bank) *request {
	for i, r := range b.readQ {
		if c.blockedBy(b, r.addr) {
			b.readQ = append(b.readQ[:i], b.readQ[i+1:]...)
			c.nreadQ--
			return r
		}
	}
	return nil
}

// deliverRead reads the line's device image into the shared scratch
// buffer and hands it to the read's callback. The buffer is reused for
// the next read, so callbacks must copy if they retain it.
func (c *Controller) deliverRead(req *request, at units.Time) {
	if req.onData == nil {
		return
	}
	if c.readBuf == nil {
		c.readBuf = make([]byte, c.par.LineBytes)
	}
	c.dev.ReadLine(req.addr, c.readBuf)
	req.onData(at, c.readBuf)
}

// finish completes a request: latency accounting, callback, rescheduling.
// The caller has already released the bank resource the request held.
func (c *Controller) finish(req *request, at units.Time) {
	c.guard.CheckClock(at)
	lat := at.Sub(req.enqueued)
	if req.write {
		c.stats.WriteLatency.Add(lat)
		if req.onDone != nil {
			req.onDone(at)
		}
	} else {
		c.stats.ReadLatency.Add(lat)
		c.deliverRead(req, at)
	}
	// Completion frees resources on the request's own bank only.
	c.scheduleBank(c.bankOf(req.addr))
	c.checkIdle()
	c.recycleRequest(req)
}

// SetDirtyChecker wires the LLC's dirtiness oracle for PreSET: a hinted
// line is preset only while its memory copy is dead (a dirty copy lives
// in the cache hierarchy). Without a checker, hints are dropped.
func (c *Controller) SetDirtyChecker(fn func(pcm.LineAddr) bool) { c.stillDirty = fn }

// PresetHint enqueues a line for idle-time presetting. Call it when the
// line goes dirty in the last-level cache.
func (c *Controller) PresetHint(addr pcm.LineAddr) {
	if !c.cfg.IdlePreset {
		return
	}
	if c.presetSet == nil {
		c.presetSet = linestore.NewSet()
	}
	if c.presetSet.Has(int64(addr)) {
		return
	}
	if len(c.presetQ) >= c.cfg.PresetQueue {
		c.stats.PresetDropped++
		return
	}
	c.presetSet.Add(int64(addr))
	c.presetQ = append(c.presetQ, addr)
	c.schedule()
}

// tryPreset runs one preset on an idle bank if a suitable hint exists.
// It returns true if the bank was put to work.
func (c *Controller) tryPreset(b *bank) bool {
	if !c.cfg.IdlePreset || c.draining || c.stillDirty == nil {
		return false
	}
	if !b.idle() {
		return false
	}
	ps, ok := b.scheme.(schemes.Presetter)
	if !ok {
		return false
	}
	for i, addr := range c.presetQ {
		if c.bankOf(addr) != b {
			continue
		}
		c.presetQ = append(c.presetQ[:i], c.presetQ[i+1:]...)
		c.presetSet.Delete(int64(addr))
		// Stale hints: the line was cleaned (written back) or has a
		// write queued; presetting now would destroy live data.
		if !c.stillDirty(addr) || c.hasQueuedWrite(addr) {
			c.stats.PresetDropped++
			return false
		}
		c.stats.Presets++
		if c.oldBuf == nil {
			c.oldBuf = make([]byte, c.par.LineBytes)
		}
		old := c.oldBuf // synchronous use only
		c.dev.PeekLine(addr, old)
		plan := ps.PlanPreset(addr, old)
		c.guard.CheckPresetPlan(c.eng.Now(), addr, old, plan)
		sets, resets := plan.Counts()
		c.stats.BitSets += int64(sets)
		c.stats.BitResets += int64(resets)
		if c.wear != nil {
			c.wear.Record(addr, sets+resets)
		}
		if c.allOnes == nil {
			c.allOnes = make([]byte, c.par.LineBytes)
			for i := range c.allOnes {
				c.allOnes[i] = 0xFF
			}
		}
		// Preset requests deliberately bypass the freelists: data aliases
		// the shared c.allOnes buffer, and the request never reaches
		// finish, so neither may be recycled.
		req := &request{write: true, addr: addr, data: c.allOnes, enqueued: c.eng.Now()}
		b.write = req
		b.writeEnd = c.eng.Now().Add(plan.ServiceTime())
		if b.recycler != nil {
			b.recycler.RecyclePlan(plan)
		}
		gen := b.gen
		end := b.writeEnd
		c.eng.At(end, func() {
			if b.gen != gen || b.write != req {
				return
			}
			c.dev.Preload(addr, c.allOnes) // logical all-ones, no pulse recount
			b.write = nil
			b.gen++
			c.schedule()
			c.checkIdle()
		})
		return true
	}
	return false
}

func (c *Controller) hasQueuedWrite(addr pcm.LineAddr) bool {
	for _, r := range c.writeQ {
		if r.addr == addr {
			return true
		}
	}
	return false
}

// Snoop copies the freshest value of a line into dst, exactly as the
// controller's own read-forwarding logic would see it: the youngest
// queued or in-flight write's data if any, else the stored device
// contents. Wear-leveling gap moves use it to snapshot a line without
// losing queued updates.
func (c *Controller) Snoop(addr pcm.LineAddr, dst []byte) {
	if d := c.forwardData(addr); d != nil {
		copy(dst, d)
		return
	}
	c.dev.PeekLine(addr, dst)
}

// QueueDepths reports the current read and write queue occupancy, for
// tests and debugging.
func (c *Controller) QueueDepths() (reads, writes int) {
	return c.nreadQ, len(c.writeQ)
}

// BankUtilization returns each bank's array occupancy as a fraction of
// the elapsed simulated time (can exceed 1 with subarray overlap).
func (c *Controller) BankUtilization() []float64 {
	now := units.Duration(c.eng.Now())
	out := make([]float64, len(c.banks))
	if now == 0 {
		return out
	}
	for i, b := range c.banks {
		out[i] = float64(b.busyTime) / float64(now)
	}
	return out
}

// Draining reports whether a write drain is in progress.
func (c *Controller) Draining() bool { return c.draining }
