package cache

import (
	"strings"

	"tetriswrite/internal/telemetry"
)

// RegisterMetrics exposes every level's hit/miss/write-back activity and
// miss rate under cache.<level>.*, plus the write-back buffer depth —
// the signals that explain when the hierarchy shields PCM from the
// workload and when dirty evictions storm the write queue.
func (h *Hierarchy) RegisterMetrics(reg *telemetry.Registry) {
	for _, l := range h.levels {
		l := l
		prefix := "cache." + strings.ToLower(l.cfg.Name)
		reg.CounterFunc(prefix+".hits", "lookups that hit", func() float64 { return float64(l.st.Hits) })
		reg.CounterFunc(prefix+".misses", "lookups that missed", func() float64 { return float64(l.st.Misses) })
		reg.CounterFunc(prefix+".writebacks", "dirty evictions pushed down", func() float64 {
			return float64(l.st.WriteBacks)
		})
		reg.GaugeFunc(prefix+".miss_rate", "misses / lookups", func() float64 {
			total := l.st.Hits + l.st.Misses
			if total == 0 {
				return 0
			}
			return float64(l.st.Misses) / float64(total)
		})
	}
	reg.GaugeFunc("cache.wb_buffer_depth", "write-backs waiting for the controller", func() float64 {
		return float64(len(h.wbBuf))
	})
}
