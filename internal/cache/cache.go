// Package cache implements the processor-side cache hierarchy of the
// paper's platform (Table II): 32 KB L1, 2 MB L2 and a 32 MB L3 DRAM
// cache, all set-associative, write-back and write-allocate with LRU
// replacement.
//
// The hierarchy sits between the cores and the PCM memory controller as
// a cpu.MemPort: read hits complete after the level's access latency;
// misses propagate downward and fill upward; dirty victims cascade into
// the next level and ultimately into the controller's write queue, which
// is exactly how cache-line writes reach PCM in the paper's system.
//
// The paper's headline experiments (Figures 10-14) drive the controller
// with memory-level traffic calibrated to Table III's RPKI/WPKI, because
// those counters are *memory-level* measurements; this package is the
// substrate for the full-hierarchy mode used by the hierarchy example
// and the integration tests, where the workload is interpreted as the
// CPU-level stream instead.
package cache

import (
	"fmt"

	"tetriswrite/internal/linestore"
	"tetriswrite/internal/pcm"
	"tetriswrite/internal/sim"
	"tetriswrite/internal/units"
)

// LevelConfig describes one cache level.
type LevelConfig struct {
	Name      string
	SizeBytes int
	LineBytes int
	Ways      int
	// Latency is the access latency of the level.
	Latency units.Duration
}

// Validate checks the configuration.
func (c LevelConfig) Validate() error {
	switch {
	case c.SizeBytes <= 0 || c.LineBytes <= 0 || c.Ways <= 0:
		return fmt.Errorf("cache %s: non-positive geometry", c.Name)
	case c.SizeBytes%(c.LineBytes*c.Ways) != 0:
		return fmt.Errorf("cache %s: size %d not divisible into %d-way sets of %dB lines",
			c.Name, c.SizeBytes, c.Ways, c.LineBytes)
	case c.Latency < 0:
		return fmt.Errorf("cache %s: negative latency", c.Name)
	}
	return nil
}

// Stats counts one level's activity.
type Stats struct {
	Hits       int64
	Misses     int64
	Evictions  int64
	WriteBacks int64 // dirty evictions pushed to the next level
}

// HitRate returns hits / accesses.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// level is one set-associative array in structure-of-arrays layout: one
// flat tag array, one flat data arena and one dirty bitmap, indexed by
// (set, way). Entries within a set are kept in LRU order by permuting
// the rank vectors (tags plus way indices — 9 bytes per line) while the
// line data stays put in its slot, so a hit is a single set-indexed
// probe over contiguous tags and a promotion never moves line payloads.
type level struct {
	cfg   LevelConfig
	nsets int
	st    Stats

	tags  []int64 // nsets*Ways, rank-ordered per set (rank 0 = MRU)
	way   []uint8 // nsets*Ways, rank -> data slot within the set
	used  []uint8 // per set: ranks occupied
	dirty []bool  // per (set, way) data slot
	data  []byte  // nsets*Ways*LineBytes, per (set, way) data slot

	// victimBuf carries an evicted line's payload out of insert — the
	// new line overwrites the victim's slot in place. One buffer per
	// level is enough: a write-back cascade touches each level once.
	victimBuf []byte
}

func newLevel(cfg LevelConfig) (*level, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Ways > 255 {
		return nil, fmt.Errorf("cache %s: more than 255 ways", cfg.Name)
	}
	nsets := cfg.SizeBytes / (cfg.LineBytes * cfg.Ways)
	slots := nsets * cfg.Ways
	return &level{
		cfg:       cfg,
		nsets:     nsets,
		tags:      make([]int64, slots),
		way:       make([]uint8, slots),
		used:      make([]uint8, nsets),
		dirty:     make([]bool, slots),
		data:      make([]byte, slots*cfg.LineBytes),
		victimBuf: make([]byte, cfg.LineBytes),
	}, nil
}

func (l *level) setOf(addr pcm.LineAddr) int   { return int(int64(addr) % int64(l.nsets)) }
func (l *level) tagOf(addr pcm.LineAddr) int64 { return int64(addr) / int64(l.nsets) }

// slotData returns the payload of data slot w of set si.
func (l *level) slotData(si int, w uint8) []byte {
	off := (si*l.cfg.Ways + int(w)) * l.cfg.LineBytes
	return l.data[off : off+l.cfg.LineBytes : off+l.cfg.LineBytes]
}

// lookup probes the line's set and returns its (set, slot) pair,
// promoting it to MRU, or ok=false on miss. The tag scan runs over the
// set's contiguous rank-ordered tag window — one bounds check, no
// pointer chasing.
func (l *level) lookup(addr pcm.LineAddr) (si int, w uint8, ok bool) {
	si = l.setOf(addr)
	tag := l.tagOf(addr)
	base := si * l.cfg.Ways
	n := int(l.used[si])
	tags := l.tags[base : base+n]
	for r := range tags {
		if tags[r] == tag {
			w = l.way[base+r]
			if r > 0 {
				copy(l.tags[base+1:base+r+1], l.tags[base:base+r])
				copy(l.way[base+1:base+r+1], l.way[base:base+r])
				l.tags[base] = tag
				l.way[base] = w
			}
			l.st.Hits++
			return si, w, true
		}
	}
	l.st.Misses++
	return 0, 0, false
}

// insert allocates a line (MRU), copying data into the claimed slot. An
// evicted victim is reported with its payload moved to the level's
// victim buffer (valid until the next insert on this level).
func (l *level) insert(addr pcm.LineAddr, data []byte, dirty bool) (victimAddr pcm.LineAddr, victimData []byte, victimDirty, evicted bool) {
	si := l.setOf(addr)
	base := si * l.cfg.Ways
	n := int(l.used[si])
	var w uint8
	if n < l.cfg.Ways {
		w = uint8(n) // slots are claimed in insertion order
		l.used[si] = uint8(n + 1)
	} else {
		// Reuse the LRU victim's slot, carrying its payload out first.
		vw := l.way[base+n-1]
		victimAddr = pcm.LineAddr(l.tags[base+n-1]*int64(l.nsets) + int64(si))
		copy(l.victimBuf, l.slotData(si, vw))
		victimData, victimDirty, evicted = l.victimBuf, l.dirty[base+int(vw)], true
		l.st.Evictions++
		w = vw
		n--
	}
	copy(l.tags[base+1:base+n+1], l.tags[base:base+n])
	copy(l.way[base+1:base+n+1], l.way[base:base+n])
	l.tags[base] = l.tagOf(addr)
	l.way[base] = w
	l.dirty[base+int(w)] = dirty
	copy(l.slotData(si, w), data)
	return victimAddr, victimData, victimDirty, evicted
}

// Hierarchy is the three-level cache stack in front of the memory
// controller. It implements cpu.MemPort.
type Hierarchy struct {
	eng    *sim.Engine
	levels []*level
	mem    Mem

	// wbBuf holds write-backs the controller rejected; wbMax bounds it,
	// beyond which the hierarchy back-pressures the cores.
	wbBuf    []wbEntry
	wbMax    int
	retrying bool
	waiters  []func()

	// OnDirty, if set, is invoked whenever a store makes a line dirty
	// that was not dirty before — the hook PreSET hint generation hangs
	// off.
	OnDirty func(addr pcm.LineAddr)
}

type wbEntry struct {
	addr pcm.LineAddr
	data []byte
}

// Mem is the memory side of the hierarchy: implemented by
// memctrl.Controller (possibly wrapped).
type Mem interface {
	SubmitRead(addr pcm.LineAddr, onDone func(at units.Time, data []byte)) bool
	SubmitWrite(addr pcm.LineAddr, data []byte, onDone func(at units.Time)) bool
	WhenWriteSpace(fn func())
}

// DefaultLevels returns the paper's Table II hierarchy for a 2 GHz core
// clock: L1 32 KB 8-way 2 cycles, L2 2 MB 8-way 20 cycles, L3 32 MB
// 16-way 50 cycles; 64 B lines throughout.
func DefaultLevels(cpuClock units.Clock) []LevelConfig {
	return []LevelConfig{
		{Name: "L1", SizeBytes: 32 << 10, LineBytes: 64, Ways: 8, Latency: cpuClock.Cycles(2)},
		{Name: "L2", SizeBytes: 2 << 20, LineBytes: 64, Ways: 8, Latency: cpuClock.Cycles(20)},
		{Name: "L3", SizeBytes: 32 << 20, LineBytes: 64, Ways: 16, Latency: cpuClock.Cycles(50)},
	}
}

// New builds a hierarchy over the memory side.
func New(eng *sim.Engine, mem Mem, cfgs []LevelConfig) (*Hierarchy, error) {
	if len(cfgs) == 0 {
		return nil, fmt.Errorf("cache: no levels")
	}
	h := &Hierarchy{eng: eng, mem: mem, wbMax: 64}
	for _, cfg := range cfgs {
		l, err := newLevel(cfg)
		if err != nil {
			return nil, err
		}
		h.levels = append(h.levels, l)
	}
	return h, nil
}

// LevelStats returns the per-level statistics, outermost first.
func (h *Hierarchy) LevelStats() []Stats {
	out := make([]Stats, len(h.levels))
	for i, l := range h.levels {
		out[i] = l.st
	}
	return out
}

// SubmitRead walks the hierarchy. Hits complete after the cumulative
// latency of the levels touched; misses go to memory and fill every
// level on the way back.
func (h *Hierarchy) SubmitRead(addr pcm.LineAddr, onDone func(at units.Time, data []byte)) bool {
	var lat units.Duration
	for i, l := range h.levels {
		lat += l.cfg.Latency
		if si, w, ok := l.lookup(addr); ok {
			// Fill the levels above (inclusive-ish: keeps upper levels
			// warm like the common inclusive hierarchy).
			data := append([]byte(nil), l.slotData(si, w)...)
			for j := i - 1; j >= 0; j-- {
				h.fill(j, addr, data, false)
			}
			at := h.eng.Now().Add(lat)
			h.eng.At(at, func() { onDone(at, data) })
			return true
		}
	}
	// Full miss: check the write-back buffer (it still owns the data),
	// then memory. A buffer hit re-adopts the line: it moves back into
	// the hierarchy (dirty) and leaves the buffer, so the freshest copy
	// has exactly one home.
	for i, wb := range h.wbBuf {
		if wb.addr == addr {
			data := append([]byte(nil), wb.data...)
			h.wbBuf = append(h.wbBuf[:i], h.wbBuf[i+1:]...)
			at := h.eng.Now().Add(lat)
			h.eng.At(at, func() { onDone(at, data) })
			h.fillAll(addr, data, true)
			h.drainWaiters()
			return true
		}
	}
	return h.mem.SubmitRead(addr, func(at units.Time, data []byte) {
		// The controller's buffer is only valid for this callback; the
		// copy feeds both the fills and the deferred completion.
		data = append([]byte(nil), data...)
		h.fillAll(addr, data, false)
		done := at.Add(lat)
		h.eng.At(done, func() { onDone(done, data) })
	})
}

// SubmitWrite is a full-line store: write-allocate into L1 (no fetch
// needed, the payload covers the line), dirty. It back-pressures when
// the write-back buffer is full.
func (h *Hierarchy) SubmitWrite(addr pcm.LineAddr, data []byte, onDone func(at units.Time)) bool {
	if len(h.wbBuf) >= h.wbMax {
		return false
	}
	if si, w, ok := h.levels[0].lookup(addr); ok {
		l := h.levels[0]
		di := si*l.cfg.Ways + int(w)
		wasDirty := l.dirty[di]
		copy(l.slotData(si, w), data)
		l.dirty[di] = true
		if !wasDirty && h.OnDirty != nil {
			h.OnDirty(addr)
		}
	} else {
		h.fill(0, addr, data, true)
		if h.OnDirty != nil {
			h.OnDirty(addr)
		}
	}
	if onDone != nil {
		at := h.eng.Now().Add(h.levels[0].cfg.Latency)
		h.eng.At(at, func() { onDone(at) })
	}
	return true
}

// WhenWriteSpace registers fn for when the hierarchy can accept stores
// again.
func (h *Hierarchy) WhenWriteSpace(fn func()) {
	if len(h.wbBuf) < h.wbMax {
		h.eng.After(0, fn)
		return
	}
	h.waiters = append(h.waiters, fn)
}

// fillAll inserts into every level, top down.
func (h *Hierarchy) fillAll(addr pcm.LineAddr, data []byte, dirty bool) {
	for i := range h.levels {
		h.fill(i, addr, data, dirty && i == 0) // dirtiness tracked at L1; lower copies clean
	}
}

// fill inserts a line into level i, cascading any dirty victim downward.
// The victim's payload lives in level i's victim buffer, which stays
// valid across the cascade because each level of the recursion only
// inserts into the level below it.
func (h *Hierarchy) fill(i int, addr pcm.LineAddr, data []byte, dirty bool) {
	vAddr, vData, vDirty, evicted := h.levels[i].insert(addr, data, dirty)
	if !evicted || !vDirty {
		return
	}
	h.levels[i].st.WriteBacks++
	if i+1 < len(h.levels) {
		// Install into the next level as dirty (updating in place on hit).
		if si, w, ok := h.levels[i+1].lookup(vAddr); ok {
			l := h.levels[i+1]
			copy(l.slotData(si, w), vData)
			l.dirty[si*l.cfg.Ways+int(w)] = true
			return
		}
		h.fill(i+1, vAddr, vData, true)
		return
	}
	// Last level: the victim leaves the hierarchy for PCM; it must own
	// its bytes — the victim buffer is recycled on the next eviction.
	h.pushWriteBack(wbEntry{addr: vAddr, data: append([]byte(nil), vData...)})
}

func (h *Hierarchy) pushWriteBack(wb wbEntry) {
	// Coalesce with a buffered write-back to the same line: the newer
	// data supersedes.
	for i := range h.wbBuf {
		if h.wbBuf[i].addr == wb.addr {
			h.wbBuf[i].data = wb.data
			return
		}
	}
	// Preserve FIFO: while older write-backs wait, newer ones must queue
	// behind them, or a stale buffered line could overwrite a fresher
	// direct submission at the controller.
	if len(h.wbBuf) == 0 && h.mem.SubmitWrite(wb.addr, wb.data, nil) {
		return
	}
	h.wbBuf = append(h.wbBuf, wb)
	h.scheduleRetry()
}

func (h *Hierarchy) scheduleRetry() {
	if h.retrying {
		return
	}
	h.retrying = true
	h.mem.WhenWriteSpace(func() {
		h.retrying = false
		for len(h.wbBuf) > 0 {
			if !h.mem.SubmitWrite(h.wbBuf[0].addr, h.wbBuf[0].data, nil) {
				h.scheduleRetry()
				return
			}
			h.wbBuf = h.wbBuf[1:]
		}
		h.drainWaiters()
	})
}

func (h *Hierarchy) drainWaiters() {
	if len(h.wbBuf) >= h.wbMax {
		return
	}
	ws := h.waiters
	h.waiters = nil
	for _, fn := range ws {
		h.eng.After(0, fn)
	}
}

// IsDirty reports whether any level (or the write-back buffer) holds a
// dirty copy of the line, i.e. whether the PCM copy is currently dead.
// This is the dirtiness oracle PreSET consults before destroying a
// memory copy.
func (h *Hierarchy) IsDirty(addr pcm.LineAddr) bool {
	for _, l := range h.levels {
		si := l.setOf(addr)
		tag := l.tagOf(addr)
		base := si * l.cfg.Ways
		for r := 0; r < int(l.used[si]); r++ {
			if l.tags[base+r] == tag && l.dirty[base+int(l.way[base+r])] {
				return true
			}
		}
	}
	for _, wb := range h.wbBuf {
		if wb.addr == addr {
			return true
		}
	}
	return false
}

// Flush writes every dirty line back to memory (functionally, ignoring
// timing) — used at the end of integration tests to compare memory
// contents against a reference model. It returns the number of lines
// flushed.
func (h *Hierarchy) Flush(force func(addr pcm.LineAddr, data []byte)) int {
	n := 0
	// Deepest-level copies may be stale if an upper level is dirtier;
	// flush top-down so the freshest data wins last... rather: collect
	// the freshest copy per address by walking top-down and skipping
	// addresses already flushed.
	seen := linestore.NewSet()
	for _, l := range h.levels {
		for si := 0; si < l.nsets; si++ {
			base := si * l.cfg.Ways
			for r := 0; r < int(l.used[si]); r++ {
				w := l.way[base+r]
				addr := pcm.LineAddr(l.tags[base+r]*int64(l.nsets) + int64(si))
				if seen.Add(int64(addr)) && l.dirty[base+int(w)] {
					force(addr, l.slotData(si, w))
					n++
				}
			}
		}
	}
	for _, wb := range h.wbBuf {
		if !seen.Has(int64(wb.addr)) {
			force(wb.addr, wb.data)
			n++
		}
	}
	h.wbBuf = nil
	return n
}
