package cache

import (
	"math/rand"
	"testing"

	"tetriswrite/internal/memctrl"
	"tetriswrite/internal/pcm"
	"tetriswrite/internal/schemes"
	"tetriswrite/internal/sim"
	"tetriswrite/internal/units"
)

func cpuClock() units.Clock { return units.NewClock(2e9) }

// tinyLevels is a deliberately small hierarchy so tests can force
// evictions quickly: L1 4 lines direct... 2-way, L2 16 lines 4-way.
func tinyLevels() []LevelConfig {
	return []LevelConfig{
		{Name: "L1", SizeBytes: 4 * 64, LineBytes: 64, Ways: 2, Latency: cpuClock().Cycles(2)},
		{Name: "L2", SizeBytes: 16 * 64, LineBytes: 64, Ways: 4, Latency: cpuClock().Cycles(20)},
	}
}

func testHierarchy(t *testing.T, cfgs []LevelConfig) (*sim.Engine, *Hierarchy, *memctrl.Controller, *pcm.Device) {
	t.Helper()
	eng := &sim.Engine{}
	dev := pcm.MustNewDevice(pcm.DefaultParams())
	ctrl := memctrl.New(eng, dev, schemes.NewDCW, memctrl.Config{OpportunisticWrites: true})
	h, err := New(eng, ctrl, cfgs)
	if err != nil {
		t.Fatal(err)
	}
	return eng, h, ctrl, dev
}

func TestLevelConfigValidate(t *testing.T) {
	good := LevelConfig{Name: "L1", SizeBytes: 32 << 10, LineBytes: 64, Ways: 8}
	if err := good.Validate(); err != nil {
		t.Error(err)
	}
	bad := good
	bad.SizeBytes = 100
	if err := bad.Validate(); err == nil {
		t.Error("indivisible size accepted")
	}
	bad = good
	bad.Ways = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero ways accepted")
	}
}

func TestReadYourWrite(t *testing.T) {
	eng, h, _, _ := testHierarchy(t, tinyLevels())
	data := make([]byte, 64)
	data[0] = 0x5A
	var got []byte
	eng.At(0, func() {
		h.SubmitWrite(3, data, nil)
		h.SubmitRead(3, func(_ units.Time, d []byte) { got = d })
	})
	eng.Run()
	if got == nil || got[0] != 0x5A {
		t.Fatal("read did not observe the preceding write")
	}
	st := h.LevelStats()
	if st[0].Hits != 1 {
		t.Errorf("L1 hits = %d, want 1", st[0].Hits)
	}
}

func TestHitLatencies(t *testing.T) {
	eng, h, _, dev := testHierarchy(t, tinyLevels())
	line := make([]byte, 64)
	line[1] = 7
	dev.Preload(9, line)
	var missAt, hitAt units.Time
	eng.At(0, func() {
		h.SubmitRead(9, func(at units.Time, _ []byte) {
			missAt = at
			h.SubmitRead(9, func(at2 units.Time, _ []byte) { hitAt = at2 })
		})
	})
	eng.Run()
	// Miss: L1 (1ns) + L2 (10ns) + memory 50ns = 61ns.
	if want := units.Time(61 * units.Nanosecond); missAt != want {
		t.Errorf("miss completed at %v, want %v", missAt, want)
	}
	// Hit: L1 latency only (2 cycles = 1ns) after the miss completion.
	if want := missAt.Add(cpuClock().Cycles(2)); hitAt != want {
		t.Errorf("hit completed at %v, want %v", hitAt, want)
	}
}

func TestDirtyEvictionCascades(t *testing.T) {
	eng, h, ctrl, dev := testHierarchy(t, tinyLevels())
	// Write 40 distinct lines mapping across sets: far beyond L1 (4) and
	// L2 (16) capacity, forcing dirty victims all the way to memory.
	eng.At(0, func() {
		for i := 0; i < 40; i++ {
			data := make([]byte, 64)
			data[0] = byte(i)
			h.SubmitWrite(pcm.LineAddr(i), data, nil)
		}
		ctrl.WhenIdle(func() {})
	})
	eng.Run()
	st := h.LevelStats()
	if st[0].WriteBacks == 0 || st[1].WriteBacks == 0 {
		t.Fatalf("no write-backs cascaded: %+v", st)
	}
	if ctrl.Stats().Writes == 0 {
		t.Fatal("no write-backs reached the controller")
	}
	// Flush the rest and verify every line's final value in PCM.
	h.Flush(func(addr pcm.LineAddr, data []byte) { dev.Preload(addr, data) })
	buf := make([]byte, 64)
	for i := 0; i < 40; i++ {
		dev.PeekLine(pcm.LineAddr(i), buf)
		if buf[0] != byte(i) {
			t.Fatalf("line %d final value %d in PCM", i, buf[0])
		}
	}
}

func TestLRUOrder(t *testing.T) {
	// Two-way set: touch A, B, then A again; inserting C must evict B.
	l, err := newLevel(LevelConfig{Name: "t", SizeBytes: 2 * 64, LineBytes: 64, Ways: 2})
	if err != nil {
		t.Fatal(err)
	}
	mk := func(v byte) []byte { d := make([]byte, 64); d[0] = v; return d }
	l.insert(0, mk(1), false) // A (set 0)
	l.insert(0+pcm.LineAddr(l.nsets), mk(2), false)
	if _, _, ok := l.lookup(0); !ok {
		t.Fatal("A missing")
	}
	vAddr, _, _, evicted := l.insert(0+pcm.LineAddr(2*l.nsets), mk(3), false)
	if !evicted {
		t.Fatal("no eviction from full set")
	}
	if vAddr != pcm.LineAddr(l.nsets) {
		t.Errorf("evicted %d, want B (LRU) at %d", vAddr, l.nsets)
	}
}

// TestRandomConsistency drives random traffic through the hierarchy and
// checks, via a golden model, that reads always observe the latest write
// and that the flushed PCM image matches at the end.
func TestRandomConsistency(t *testing.T) {
	eng, h, ctrl, dev := testHierarchy(t, tinyLevels())
	rng := rand.New(rand.NewSource(77))
	golden := map[pcm.LineAddr]byte{}
	pendingReads := 0
	n := 0
	var step func()
	step = func() {
		if n >= 3000 {
			ctrl.WhenIdle(func() {})
			return
		}
		n++
		addr := pcm.LineAddr(rng.Intn(64))
		if rng.Intn(2) == 0 {
			v := byte(rng.Intn(256))
			data := make([]byte, 64)
			data[0] = v
			if h.SubmitWrite(addr, data, nil) {
				golden[addr] = v
				eng.After(units.Duration(rng.Intn(100))*units.Nanosecond, step)
			} else {
				h.WhenWriteSpace(step)
			}
			return
		}
		want, ok := golden[addr]
		if !ok {
			eng.After(1*units.Nanosecond, step)
			return
		}
		pendingReads++
		issued := h.SubmitRead(addr, func(_ units.Time, d []byte) {
			pendingReads--
			if d[0] != want {
				t.Errorf("read %d: got %d, want %d at addr %d", n, d[0], want, addr)
			}
			step()
		})
		if !issued {
			pendingReads--
			eng.After(100*units.Nanosecond, step)
		}
	}
	eng.At(0, step)
	eng.Run()
	if pendingReads != 0 {
		t.Errorf("%d reads never completed", pendingReads)
	}
	// Final image: flush and compare everything.
	h.Flush(func(addr pcm.LineAddr, data []byte) { dev.Preload(addr, data) })
	buf := make([]byte, 64)
	for addr, v := range golden {
		dev.PeekLine(addr, buf)
		if buf[0] != v {
			t.Errorf("PCM image: addr %d = %d, want %d", addr, buf[0], v)
		}
	}
	// Sanity: the tiny cache must have produced real traffic patterns.
	st := h.LevelStats()
	if st[0].Hits == 0 || st[0].Misses == 0 {
		t.Errorf("degenerate cache behaviour: %+v", st)
	}
	if st[0].HitRate() <= 0 || st[0].HitRate() >= 1 {
		t.Errorf("L1 hit rate %v", st[0].HitRate())
	}
}

// TestSequentialReadsAreConsistent: a read after a read (cached) returns
// identical data.
func TestRepeatReadStable(t *testing.T) {
	eng, h, _, dev := testHierarchy(t, tinyLevels())
	line := make([]byte, 64)
	for i := range line {
		line[i] = byte(i)
	}
	dev.Preload(31, line)
	var first, second []byte
	eng.At(0, func() {
		h.SubmitRead(31, func(_ units.Time, d []byte) {
			first = d
			h.SubmitRead(31, func(_ units.Time, d2 []byte) { second = d2 })
		})
	})
	eng.Run()
	for i := range first {
		if first[i] != second[i] || first[i] != byte(i) {
			t.Fatal("repeat read returned different data")
		}
	}
}

func TestDefaultLevels(t *testing.T) {
	cfgs := DefaultLevels(cpuClock())
	if len(cfgs) != 3 {
		t.Fatalf("want 3 levels")
	}
	wantSizes := []int{32 << 10, 2 << 20, 32 << 20}
	wantLat := []units.Duration{cpuClock().Cycles(2), cpuClock().Cycles(20), cpuClock().Cycles(50)}
	for i, c := range cfgs {
		if err := c.Validate(); err != nil {
			t.Errorf("level %d invalid: %v", i, err)
		}
		if c.SizeBytes != wantSizes[i] || c.Latency != wantLat[i] {
			t.Errorf("level %d = %+v", i, c)
		}
	}
}

func TestNewRejectsBadConfigs(t *testing.T) {
	eng := &sim.Engine{}
	if _, err := New(eng, nil, nil); err == nil {
		t.Error("empty hierarchy accepted")
	}
	if _, err := New(eng, nil, []LevelConfig{{Name: "x"}}); err == nil {
		t.Error("invalid level accepted")
	}
}

func TestOnDirtyHook(t *testing.T) {
	eng, h, _, _ := testHierarchy(t, tinyLevels())
	var events []pcm.LineAddr
	h.OnDirty = func(a pcm.LineAddr) { events = append(events, a) }
	data := make([]byte, 64)
	eng.At(0, func() {
		h.SubmitWrite(5, data, nil) // miss -> dirty allocate: fires
		h.SubmitWrite(5, data, nil) // already dirty: no event
		h.SubmitRead(9, func(_ units.Time, _ []byte) {
			h.SubmitWrite(9, data, nil) // clean hit -> dirty: fires
		})
	})
	eng.Run()
	if len(events) != 2 || events[0] != 5 || events[1] != 9 {
		t.Errorf("OnDirty events = %v, want [5 9]", events)
	}
	if !h.IsDirty(5) || !h.IsDirty(9) {
		t.Error("IsDirty false for dirty lines")
	}
	if h.IsDirty(77) {
		t.Error("IsDirty true for untouched line")
	}
}

// TestCapacityNeverExceeded: no set ever holds more than Ways lines,
// regardless of traffic.
func TestCapacityNeverExceeded(t *testing.T) {
	eng, h, ctrl, _ := testHierarchy(t, tinyLevels())
	rng := rand.New(rand.NewSource(4))
	n := 0
	var step func()
	step = func() {
		if n >= 1000 {
			ctrl.WhenIdle(func() {})
			return
		}
		n++
		addr := pcm.LineAddr(rng.Intn(128))
		if rng.Intn(2) == 0 {
			h.SubmitWrite(addr, make([]byte, 64), nil)
		} else {
			h.SubmitRead(addr, func(units.Time, []byte) {})
		}
		for _, l := range h.levels {
			for si := 0; si < l.nsets; si++ {
				if int(l.used[si]) > l.cfg.Ways {
					t.Fatalf("%s set %d holds %d lines, ways=%d", l.cfg.Name, si, l.used[si], l.cfg.Ways)
				}
			}
		}
		eng.After(units.Duration(rng.Intn(200))*units.Nanosecond, step)
	}
	eng.At(0, step)
	eng.Run()
}
