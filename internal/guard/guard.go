// Package guard is the runtime invariant checker of the simulation
// platform. The paper's central safety claim — Tetris Write packs
// SET/RESET pulses into the fewest write units while never exceeding the
// per-chip power budget — is exactly the kind of property a
// parallelism-under-constraint scheduler silently violates once it is
// composed with other machinery (wear leveling, verify-retry, PreSET).
// Instead of trusting the composition, a Guard validates it per issued
// write unit while the simulation runs:
//
//   - power: the summed write current of every plan stays within the
//     per-chip budget (or the bank budget under a Global Charge Pump);
//   - coverage: no cell is pulsed twice in one plan and every pulse lies
//     inside the plan's write phase (cheap), and — with DeepChecks — the
//     pulse train replayed on a shadow cell array leaves exactly the
//     intended logical contents, i.e. every flipped bit was scheduled in
//     exactly one write unit;
//   - queues: controller queue occupancies stay within their configured
//     32-entry bounds;
//   - clock: the simulated clock observed at every check is monotone.
//
// A violation is reported once, as a structured *ViolationError carrying
// the run fingerprint (seed, workload, scheme, cycle) — the tuple that
// reproduces the failure — and the guard's owner (system.RunCtx) stops
// the engine so a corrupted simulation cannot keep accumulating
// plausible-looking statistics.
//
// Checks only read state; an enabled guard never changes simulated
// behaviour, so guarded and unguarded runs are bit-identical.
package guard

import (
	"fmt"

	"tetriswrite/internal/pcm"
	"tetriswrite/internal/power"
	"tetriswrite/internal/schemes"
	"tetriswrite/internal/units"
)

// Config selects the checking depth.
type Config struct {
	// Enabled turns the guard on. The zero value performs no checks and
	// costs nothing.
	Enabled bool
	// DeepChecks additionally replays every plan on a shadow encoded-cell
	// array and verifies the decoded logical contents — exhaustive
	// validation, roughly doubling the per-write cost. Meant for tests
	// and debugging runs, not sweeps.
	DeepChecks bool
}

// Fingerprint identifies one run for failure reproduction: re-running
// the same workload and scheme with the same seed replays the violation
// at the same cycle.
type Fingerprint struct {
	Seed     int64
	Workload string
	Scheme   string
	Cycle    units.Time // simulated time of the violation
}

func (f Fingerprint) String() string {
	return fmt.Sprintf("seed=%d workload=%s scheme=%s cycle=%v", f.Seed, f.Workload, f.Scheme, f.Cycle)
}

// Violation kinds.
const (
	KindPower    = "power-budget"
	KindCoverage = "pulse-coverage"
	KindQueue    = "queue-bound"
	KindClock    = "clock-monotonicity"
)

// ViolationError is one detected invariant violation. Only the first
// violation of a run is recorded: everything after a corrupted step is
// noise.
type ViolationError struct {
	Kind   string // one of the Kind constants
	Fp     Fingerprint
	Detail string
}

func (e *ViolationError) Error() string {
	return fmt.Sprintf("guard: %s violation [%s]: %s", e.Kind, e.Fp, e.Detail)
}

// Stats counts the checks a guard performed.
type Stats struct {
	WritePlans  int64 // write plans checked
	PresetPlans int64 // preset plans checked
	QueueChecks int64
	ClockChecks int64
	DeepReplays int64 // shadow-array replays (DeepChecks only)
}

// Guard validates invariants for one run. It is driven from the
// simulation engine's goroutine, like the controller that calls it, and
// needs no locking.
type Guard struct {
	cfg    Config
	par    pcm.Params
	budget power.Budget
	fp     Fingerprint

	last      units.Time
	violation *ViolationError
	// onViolation, when set, runs once with the first violation — the
	// owner's chance to stop the engine immediately.
	onViolation func(*ViolationError)

	shadow  *schemes.Array // DeepChecks: pulse-accurate encoded-cell oracle
	allOnes []byte
	stats   Stats
}

// New builds a guard for a device with the given parameters.
func New(par pcm.Params, cfg Config) *Guard {
	g := &Guard{cfg: cfg, par: par, budget: schemes.PowerBudget(par)}
	if cfg.DeepChecks {
		g.shadow = schemes.NewArray(par)
	}
	return g
}

// AdoptShadow replaces the deep-check oracle with an existing encoded
// cell array. A run resumed after crash recovery must validate against
// the recovered shadow: its schemes carry flip-tag history that a fresh
// all-zero shadow would contradict on the first write to a recovered
// line. No-op unless DeepChecks is on.
func (g *Guard) AdoptShadow(arr *schemes.Array) {
	if g.cfg.DeepChecks && arr != nil {
		g.shadow = arr
	}
}

// SetFingerprint records the run identity stamped into violations.
func (g *Guard) SetFingerprint(seed int64, workload, scheme string) {
	g.fp.Seed, g.fp.Workload, g.fp.Scheme = seed, workload, scheme
}

// Enabled reports whether the guard performs any checks.
func (g *Guard) Enabled() bool { return g != nil && g.cfg.Enabled }

// Err returns the first recorded violation, or nil.
func (g *Guard) Err() error {
	if g == nil || g.violation == nil {
		return nil
	}
	return g.violation
}

// Stats returns a snapshot of the check counters.
func (g *Guard) Stats() Stats { return g.stats }

// OnViolation registers fn to run once, synchronously, when the first
// violation is recorded.
func (g *Guard) OnViolation(fn func(*ViolationError)) { g.onViolation = fn }

// report records the first violation and fires the owner hook.
func (g *Guard) report(kind string, at units.Time, format string, args ...any) {
	if g.violation != nil {
		return
	}
	fp := g.fp
	fp.Cycle = at
	g.violation = &ViolationError{Kind: kind, Fp: fp, Detail: fmt.Sprintf(format, args...)}
	if g.onViolation != nil {
		g.onViolation(g.violation)
	}
}

// active reports whether checks should run at all.
func (g *Guard) active() bool {
	return g != nil && g.cfg.Enabled && g.violation == nil
}

// CheckClock verifies the observed simulated clock never runs backwards.
func (g *Guard) CheckClock(now units.Time) {
	if !g.active() {
		return
	}
	g.stats.ClockChecks++
	if now < g.last {
		g.report(KindClock, now, "clock moved backwards: %v after %v", now, g.last)
		return
	}
	g.last = now
}

// CheckQueues verifies controller queue occupancies against their
// configured capacities.
func (g *Guard) CheckQueues(now units.Time, reads, writes, readCap, writeCap int) {
	if !g.active() {
		return
	}
	g.CheckClock(now)
	g.stats.QueueChecks++
	switch {
	case reads < 0 || reads > readCap:
		g.report(KindQueue, now, "read queue occupancy %d outside [0, %d]", reads, readCap)
	case writes < 0 || writes > writeCap:
		g.report(KindQueue, now, "write queue occupancy %d outside [0, %d]", writes, writeCap)
	}
}

// CheckWritePlan validates one write plan issued at time now for a line
// whose stored contents are old and whose intended contents are new.
// Cheap checks (structure, power) always run; with DeepChecks the pulse
// train is additionally replayed on the shadow array and must decode to
// exactly new.
func (g *Guard) CheckWritePlan(now units.Time, addr pcm.LineAddr, old, new []byte, plan schemes.Plan) {
	if !g.active() {
		return
	}
	g.CheckClock(now)
	g.stats.WritePlans++
	g.checkPlan(now, addr, old, new, plan)
}

// Deep reports whether the deep shadow-array replay is enabled. Replay
// mutates the shadow in plan order, so the parallel controller falls
// back to serial in-line planning whenever it is on.
func (g *Guard) Deep() bool { return g != nil && g.cfg.Enabled && g.cfg.DeepChecks }

// PlanIssue is a violation found by ValidateWritePlan: the kind plus the
// fully formatted detail, identical to what the in-line check would have
// reported. It is recorded — first violation wins, as always — when the
// owner commits it with ReportPlanIssue.
type PlanIssue struct {
	Kind   string
	Detail string
}

// BeginWritePlan is the issue-time half of CheckWritePlan for the
// parallel controller: it runs the clock check and counts the plan,
// reporting whether the guard was active at entry and the plan therefore
// needs validating. The plan itself is validated off-thread with
// ValidateWritePlan and committed in issue order via ReportPlanIssue.
func (g *Guard) BeginWritePlan(now units.Time) bool {
	if !g.active() {
		return false
	}
	g.CheckClock(now)
	g.stats.WritePlans++
	return true
}

// ValidateWritePlan runs the cheap plan checks (structure, power) and
// returns the violation, or nil. It reads only immutable guard state —
// the device parameters and the power budget — never the violation
// latch, counters or shadow, so bank worker goroutines may call it
// concurrently with coordinator-side checks.
func (g *Guard) ValidateWritePlan(addr pcm.LineAddr, plan schemes.Plan) *PlanIssue {
	if g == nil {
		return nil
	}
	if err := plan.Validate(g.par); err != nil {
		return &PlanIssue{Kind: KindCoverage, Detail: fmt.Sprintf("line %d: %v", addr, err)}
	}
	if err := g.budget.Check(plan.Profile(units.Time(0))); err != nil {
		return &PlanIssue{Kind: KindPower, Detail: fmt.Sprintf("line %d: %v (budget %d per chip, %d chips, gcp=%v)",
			addr, err, g.budget.PerChip, g.budget.Chips, g.budget.GCP)}
	}
	return nil
}

// ReportPlanIssue records a violation produced by ValidateWritePlan,
// stamped at the plan's issue time so the fingerprint cycle matches the
// in-line check exactly.
func (g *Guard) ReportPlanIssue(at units.Time, iss *PlanIssue) {
	if g == nil || iss == nil {
		return
	}
	g.report(iss.Kind, at, "%s", iss.Detail)
}

// CheckPresetPlan validates one idle-time PreSET plan, which must take
// the stored contents old to logical all-ones.
func (g *Guard) CheckPresetPlan(now units.Time, addr pcm.LineAddr, old []byte, plan schemes.Plan) {
	if !g.active() {
		return
	}
	g.CheckClock(now)
	g.stats.PresetPlans++
	if g.allOnes == nil {
		g.allOnes = make([]byte, g.par.LineBytes)
		for i := range g.allOnes {
			g.allOnes[i] = 0xFF
		}
	}
	g.checkPlan(now, addr, old, g.allOnes, plan)
}

func (g *Guard) checkPlan(now units.Time, addr pcm.LineAddr, old, want []byte, plan schemes.Plan) {
	// Structure (pulses inside the write phase, non-empty masks, no cell
	// pulsed twice) and power (peak simultaneous draw against the
	// per-chip budget) — shared with the parallel controller's
	// off-thread validation so the detail strings have one format site.
	if iss := g.ValidateWritePlan(addr, plan); iss != nil {
		g.report(iss.Kind, now, "%s", iss.Detail)
		return
	}
	if !g.cfg.DeepChecks {
		return
	}
	// Deep: replay on the shadow encoded-cell array. Re-anchor the data
	// cells to the device's actual old image first (fault injection makes
	// the device drift from the pure pulse-train model; the scheme plans
	// from the real image, so the oracle must too), keeping the flip
	// cells, which only pulses ever change.
	g.stats.DeepReplays++
	g.shadow.SyncLogical(addr, old)
	g.shadow.Apply(addr, plan)
	got := g.shadow.Logical(addr)
	for i := range got {
		if got[i] != want[i] {
			g.report(KindCoverage, now,
				"line %d: replayed pulse train decodes wrong contents (first mismatch at byte %d: got %02x want %02x)",
				addr, i, got[i], want[i])
			return
		}
	}
}
