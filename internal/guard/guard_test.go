package guard

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"tetriswrite/internal/pcm"
	"tetriswrite/internal/schemes"
	"tetriswrite/internal/tetris"
	"tetriswrite/internal/units"
)

func newTestGuard(deep bool) (*Guard, pcm.Params) {
	par := pcm.DefaultParams()
	g := New(par, Config{Enabled: true, DeepChecks: deep})
	g.SetFingerprint(7, "vips", "test")
	return g, par
}

func violationOf(t *testing.T, g *Guard, kind string) *ViolationError {
	t.Helper()
	err := g.Err()
	if err == nil {
		t.Fatalf("no violation recorded, want kind %s", kind)
	}
	var v *ViolationError
	if !errors.As(err, &v) {
		t.Fatalf("Err() = %T, want *ViolationError", err)
	}
	if v.Kind != kind {
		t.Fatalf("violation kind %s, want %s (%v)", v.Kind, kind, v)
	}
	return v
}

func randLine(rng *rand.Rand, n int) []byte {
	b := make([]byte, n)
	rng.Read(b)
	return b
}

func TestDisabledGuardChecksNothing(t *testing.T) {
	par := pcm.DefaultParams()
	var g *Guard // nil guard: the controller's default
	g.CheckClock(units.Time(5))
	g.CheckClock(units.Time(1)) // backwards, but nobody is looking
	g.CheckQueues(units.Time(1), 99, 99, 32, 32)
	if g.Err() != nil {
		t.Fatal("nil guard recorded a violation")
	}
	g2 := New(par, Config{}) // constructed but not enabled
	g2.CheckQueues(units.Time(1), 99, 99, 32, 32)
	if g2.Err() != nil {
		t.Fatal("disabled guard recorded a violation")
	}
}

func TestClockMonotonicity(t *testing.T) {
	g, _ := newTestGuard(false)
	g.CheckClock(units.Time(100))
	g.CheckClock(units.Time(100)) // equal is fine
	if g.Err() != nil {
		t.Fatalf("monotone clock flagged: %v", g.Err())
	}
	g.CheckClock(units.Time(99))
	v := violationOf(t, g, KindClock)
	if v.Fp.Cycle != units.Time(99) {
		t.Errorf("violation cycle %v, want 99", v.Fp.Cycle)
	}
}

func TestQueueBounds(t *testing.T) {
	g, _ := newTestGuard(false)
	g.CheckQueues(units.Time(1), 32, 32, 32, 32) // full is legal
	if g.Err() != nil {
		t.Fatalf("full queues flagged: %v", g.Err())
	}
	g.CheckQueues(units.Time(2), 10, 33, 32, 32)
	v := violationOf(t, g, KindQueue)
	if !strings.Contains(v.Detail, "33") {
		t.Errorf("detail does not name the occupancy: %q", v.Detail)
	}
}

// TestPowerViolation: a synthetic plan pulsing two full data units
// simultaneously draws 2 units x 4 chips x 16 cells x RESET current 2 =
// 256, over the default bank budget of 128. The error must name the
// budget and the violation must carry the run fingerprint and cycle.
func TestPowerViolation(t *testing.T) {
	g, par := newTestGuard(false)
	plan := schemes.Plan{
		Write: par.TReset,
		TSet:  par.TSet, TReset: par.TReset,
		CurrentSet: par.CurrentSet, CurrentReset: par.CurrentReset,
	}
	for u := 0; u < 2; u++ {
		for c := 0; c < par.NumChips; c++ {
			plan.Pulses = append(plan.Pulses, schemes.Pulse{
				Chip: c, Unit: u, Kind: schemes.Reset, Mask: 0xFFFF,
			})
		}
	}
	old := make([]byte, par.LineBytes)
	neu := make([]byte, par.LineBytes)
	g.CheckWritePlan(units.Time(42), pcm.LineAddr(3), old, neu, plan)
	v := violationOf(t, g, KindPower)
	for _, want := range []string{"256", "128", "budget"} {
		if !strings.Contains(v.Detail, want) {
			t.Errorf("power violation detail misses %q: %q", want, v.Detail)
		}
	}
	if v.Fp.Cycle != units.Time(42) || v.Fp.Seed != 7 || v.Fp.Workload != "vips" {
		t.Errorf("fingerprint wrong: %+v", v.Fp)
	}
}

// TestPerChipPowerViolation: without a GCP the per-chip pump is the
// constraint; the error names the offending chip.
func TestPerChipPowerViolation(t *testing.T) {
	par := pcm.DefaultParams()
	par.GlobalChargePump = false
	g := New(par, Config{Enabled: true})
	plan := schemes.Plan{
		Write: par.TReset,
		TSet:  par.TSet, TReset: par.TReset,
		CurrentSet: par.CurrentSet, CurrentReset: par.CurrentReset,
		Pulses: []schemes.Pulse{
			// Chip 2 alone: 2 units x 16 cells x 2 = 64 > 32 per chip.
			{Chip: 2, Unit: 0, Kind: schemes.Reset, Mask: 0xFFFF},
			{Chip: 2, Unit: 1, Kind: schemes.Reset, Mask: 0xFFFF},
		},
	}
	old := make([]byte, par.LineBytes)
	neu := make([]byte, par.LineBytes)
	g.CheckWritePlan(units.Time(1), 0, old, neu, plan)
	v := violationOf(t, g, KindPower)
	if !strings.Contains(v.Detail, "chip 2") {
		t.Errorf("violation does not name the chip: %q", v.Detail)
	}
}

func TestStructuralCoverageViolation(t *testing.T) {
	g, par := newTestGuard(false)
	plan := schemes.Plan{
		Write: par.TReset,
		TSet:  par.TSet, TReset: par.TReset,
		CurrentSet: par.CurrentSet, CurrentReset: par.CurrentReset,
		Pulses: []schemes.Pulse{
			// Same cell pulsed twice.
			{Chip: 0, Unit: 0, Kind: schemes.Reset, Mask: 0x0001},
			{Chip: 0, Unit: 0, Kind: schemes.Set, Mask: 0x0001},
		},
	}
	old := make([]byte, par.LineBytes)
	neu := make([]byte, par.LineBytes)
	g.CheckWritePlan(units.Time(1), 0, old, neu, plan)
	violationOf(t, g, KindCoverage)
}

// TestRealSchemesPassDeepChecks: a write stream through each real scheme
// passes cheap and deep validation — the invariant the whole platform
// rests on.
func TestRealSchemesPassDeepChecks(t *testing.T) {
	par := pcm.DefaultParams()
	for _, mk := range []struct {
		name    string
		factory schemes.Factory
	}{
		{"dcw", schemes.NewDCW},
		{"fnw", schemes.NewFlipNWrite},
		{"2stage", schemes.NewTwoStage},
		{"3stage", schemes.NewThreeStage},
		{"tetris", tetris.New},
	} {
		t.Run(mk.name, func(t *testing.T) {
			g := New(par, Config{Enabled: true, DeepChecks: true})
			g.SetFingerprint(1, "synthetic", mk.name)
			s := mk.factory(par)
			rng := rand.New(rand.NewSource(11))
			stored := map[pcm.LineAddr][]byte{}
			for i := 0; i < 200; i++ {
				addr := pcm.LineAddr(rng.Intn(8))
				old, ok := stored[addr]
				if !ok {
					old = make([]byte, par.LineBytes)
				}
				neu := randLine(rng, par.LineBytes)
				plan := s.PlanWrite(addr, old, neu)
				g.CheckWritePlan(units.Time(int64(i)), addr, old, neu, plan)
				if err := g.Err(); err != nil {
					t.Fatalf("write %d: %v", i, err)
				}
				stored[addr] = neu
			}
			if st := g.Stats(); st.WritePlans != 200 || st.DeepReplays != 200 {
				t.Errorf("stats = %+v, want 200 write plans and deep replays", st)
			}
		})
	}
}

// TestDeepCheckCatchesMissingPulse: dropping one pulse from a correct
// plan leaves a flipped bit unscheduled. The cheap checks cannot see
// that; the deep replay must.
func TestDeepCheckCatchesMissingPulse(t *testing.T) {
	par := pcm.DefaultParams()
	s := schemes.NewDCW(par)
	rng := rand.New(rand.NewSource(3))
	old := make([]byte, par.LineBytes)
	neu := randLine(rng, par.LineBytes)
	plan := s.PlanWrite(0, old, neu)
	if len(plan.Pulses) == 0 {
		t.Fatal("no pulses to drop")
	}
	truncated := plan
	truncated.Pulses = plan.Pulses[:len(plan.Pulses)-1]

	cheap := New(par, Config{Enabled: true})
	cheap.CheckWritePlan(units.Time(1), 0, old, neu, truncated)
	if cheap.Err() != nil {
		t.Fatalf("cheap check unexpectedly caught the dropped pulse: %v", cheap.Err())
	}

	deep := New(par, Config{Enabled: true, DeepChecks: true})
	deep.CheckWritePlan(units.Time(1), 0, old, neu, truncated)
	violationOf(t, deep, KindCoverage)
}

// TestFirstViolationWins: only the first violation is recorded and the
// OnViolation hook fires exactly once.
func TestFirstViolationWins(t *testing.T) {
	g, _ := newTestGuard(false)
	fired := 0
	g.OnViolation(func(v *ViolationError) { fired++ })
	g.CheckQueues(units.Time(5), 40, 0, 32, 32)
	g.CheckClock(units.Time(1)) // second would-be violation
	if fired != 1 {
		t.Errorf("OnViolation fired %d times, want 1", fired)
	}
	violationOf(t, g, KindQueue)
}
