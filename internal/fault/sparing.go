package fault

import (
	"fmt"
	"sort"

	"tetriswrite/internal/linestore"
	"tetriswrite/internal/pcm"
	"tetriswrite/internal/units"
)

// Mem is the downstream memory port the spare remapper drives — the
// memory controller, in practice (same shape as wearlevel.Mem).
type Mem interface {
	SubmitRead(addr pcm.LineAddr, onDone func(at units.Time, data []byte)) bool
	SubmitWrite(addr pcm.LineAddr, data []byte, onDone func(at units.Time)) bool
	WhenWriteSpace(fn func())
}

// SpareRemapper gives the platform graceful degradation under hard
// errors: a reserved region of known-good spare lines plus a remap table
// (ECP-lite, at line rather than cell granularity). When the
// controller's write-verify loop exhausts its retry budget on a line,
// the remapper allocates a spare slot, records the redirect, and
// re-issues the failed write's data to the spare — transparently to
// everything above it. Subsequent reads and writes to the dead line are
// translated to its spare; a spare that itself dies chains to a fresh
// one.
//
// The remapper composes with Start-Gap wear leveling: it sits *below*
// the wearlevel.Remapper (Start-Gap translates logical to physical,
// sparing redirects dead physical lines), so the gap rotation never
// needs to know which lines died.
type SpareRemapper struct {
	mem   Mem
	snoop func(addr pcm.LineAddr, dst []byte)

	spareBase pcm.LineAddr // first spare slot
	spareN    int          // total spare slots
	nextSpare int          // slots handed out so far

	remap map[pcm.LineAddr]pcm.LineAddr // dead physical line -> spare slot

	// pending holds repair writes the controller had no queue space for,
	// drained via WhenWriteSpace exactly like wearlevel.Remapper does for
	// gap-move copies. Reads to a slot with a pending repair are served
	// from the pending data. Draining stays in ascending address order
	// (see drainPending), unchanged from the original map + sort.
	pending  *linestore.Pending
	retrying bool

	stats SpareStats
}

// SpareStats counts sparing activity.
type SpareStats struct {
	RemappedLines int64 // hard-error lines redirected to a spare
	RepairWrites  int64 // repair writes issued to spare slots
	Exhausted     int64 // hard errors dropped because no spare was left
	SparesLeft    int   // spare slots still available
}

// NewSpareRemapper reserves n spare lines starting at base in front of
// mem. snoop must return the freshest physical contents of a line (use
// Controller.Snoop); it backs reads that race a pending repair.
func NewSpareRemapper(mem Mem, base pcm.LineAddr, n int, snoop func(pcm.LineAddr, []byte)) (*SpareRemapper, error) {
	if n < 0 {
		return nil, fmt.Errorf("fault: %d spare lines", n)
	}
	if base < 0 {
		return nil, fmt.Errorf("fault: spare base %d", base)
	}
	return &SpareRemapper{
		mem:       mem,
		snoop:     snoop,
		spareBase: base,
		spareN:    n,
		remap:     make(map[pcm.LineAddr]pcm.LineAddr),
		pending:   linestore.NewPending(),
	}, nil
}

// Stats returns the sparing counters.
func (s *SpareRemapper) Stats() SpareStats {
	st := s.stats
	st.SparesLeft = s.spareN - s.nextSpare
	return st
}

// Translate follows the remap chain from a physical line to the slot
// that actually stores it (itself, if the line never failed).
func (s *SpareRemapper) Translate(addr pcm.LineAddr) pcm.LineAddr {
	for {
		next, ok := s.remap[addr]
		if !ok {
			return addr
		}
		addr = next
	}
}

// SubmitRead translates and forwards a read. A slot with a pending
// (not-yet-accepted) repair write serves the repair data, mirroring the
// controller's own store-forwarding.
func (s *SpareRemapper) SubmitRead(addr pcm.LineAddr, onDone func(at units.Time, data []byte)) bool {
	phys := s.Translate(addr)
	if data, ok := s.pending.Get(int64(phys)); ok {
		return s.mem.SubmitRead(phys, func(at units.Time, _ []byte) {
			onDone(at, append([]byte(nil), data...))
		})
	}
	return s.mem.SubmitRead(phys, onDone)
}

// SubmitWrite translates and forwards a write. An accepted write
// supersedes any pending repair to the same slot (the repair data is
// stale the moment newer data lands behind it in the queue).
func (s *SpareRemapper) SubmitWrite(addr pcm.LineAddr, data []byte, onDone func(at units.Time)) bool {
	phys := s.Translate(addr)
	if !s.mem.SubmitWrite(phys, data, onDone) {
		return false
	}
	s.pending.Delete(int64(phys))
	return true
}

// WhenWriteSpace forwards to the controller.
func (s *SpareRemapper) WhenWriteSpace(fn func()) { s.mem.WhenWriteSpace(fn) }

// Snoop returns the freshest contents of a line as seen through the
// remap table, for layers above (Start-Gap gap moves).
func (s *SpareRemapper) Snoop(addr pcm.LineAddr, dst []byte) {
	phys := s.Translate(addr)
	if data, ok := s.pending.Get(int64(phys)); ok {
		copy(dst, data)
		return
	}
	if s.snoop != nil {
		s.snoop(phys, dst)
	}
}

// OnHardError is the controller's escalation callback: addr is the
// physical line whose write could not be verified within the retry
// budget, want the data that should have landed. The line is redirected
// to a fresh spare slot and the data re-issued there. With no spares
// left the error is counted and the line left in place (degraded but
// running — reads return the stuck image).
func (s *SpareRemapper) OnHardError(addr pcm.LineAddr, want []byte) {
	if _, ok := s.remap[addr]; ok {
		// The failed write already raced a remap of the same line (e.g.
		// a queued older write drained after the redirect was installed);
		// re-issue to the current slot rather than burning another spare.
		s.repair(s.Translate(addr), want)
		return
	}
	if s.nextSpare >= s.spareN {
		s.stats.Exhausted++
		return
	}
	spare := s.spareBase + pcm.LineAddr(s.nextSpare)
	s.nextSpare++
	s.remap[addr] = spare
	s.stats.RemappedLines++
	s.repair(spare, want)
}

// repair queues the failed write's data at its new slot.
func (s *SpareRemapper) repair(slot pcm.LineAddr, want []byte) {
	s.stats.RepairWrites++
	s.pending.Put(int64(slot), append([]byte(nil), want...))
	s.drainPending()
}

// drainPending pushes buffered repair writes into the controller, in
// address order: map iteration order must not leak into the simulation's
// event order, or the same-seed determinism guarantee breaks.
func (s *SpareRemapper) drainPending() {
	addrs := make([]linestore.Addr, 0, s.pending.Len())
	s.pending.Range(func(addr linestore.Addr, _ []byte) bool {
		addrs = append(addrs, addr)
		return true
	})
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, addr := range addrs {
		data, _ := s.pending.Get(addr)
		if !s.mem.SubmitWrite(pcm.LineAddr(addr), data, nil) {
			if !s.retrying {
				s.retrying = true
				s.mem.WhenWriteSpace(func() {
					s.retrying = false
					s.drainPending()
				})
			}
			return
		}
		s.pending.Delete(addr)
	}
}

// Remapped reports whether a line has been redirected to a spare.
func (s *SpareRemapper) Remapped(addr pcm.LineAddr) bool {
	_, ok := s.remap[addr]
	return ok
}
