// Package fault is the deterministic cell-failure substrate of the
// simulator: a seeded injector that models PCM wear-out (cells die after
// a bounded number of programming pulses and become stuck at their last
// value) and transient write failures (a pulse occasionally fails to
// crystallize/amorphize the cell and must be re-driven), plus the
// spare-region line remapper that gives the platform graceful
// degradation once cells fail for good.
//
// Every decision the injector makes — each cell's endurance limit, its
// stuck-at polarity, whether a given pulse fails transiently — is a pure
// function of (seed, line, cell, pulse count), so two runs with the same
// seed and the same write stream fail identically, regardless of
// goroutine scheduling or map iteration order. That determinism is what
// makes fault-tolerance experiments reproducible and lets the test suite
// assert exact retry and remap counts.
//
// The injector keeps its own per-cell pulse ledger rather than reusing
// pcm.WearTracker: the tracker aggregates per line (the reporting
// granularity of endurance experiments), while wear-out is decided per
// cell — the paper's process-variation reality is that individual cells,
// not lines, have limits.
package fault

import (
	"fmt"
	"math"
	"sync"

	"tetriswrite/internal/pcm"
)

// Config parameterizes the injector. The zero value disables every
// failure mode (an ideal device); Enabled reports whether any is active.
type Config struct {
	// Seed drives every pseudo-random decision. Runs with equal seeds and
	// equal write streams fail identically.
	Seed int64
	// Endurance is the mean per-cell endurance limit in programming
	// pulses; a cell whose attempted-pulse count exceeds its sampled
	// limit becomes stuck at its current value (stuck-at-SET if it held a
	// 1, stuck-at-RESET if a 0). Zero or negative disables wear-out.
	// Real PCM endures ~10^8 pulses; experiments use small values so
	// failures appear within simulable write counts.
	Endurance int64
	// EnduranceCV is the coefficient of variation of the per-cell limit
	// distribution (Gaussian, mean Endurance, stddev CV*Endurance,
	// clamped to at least one pulse) — the process variation that makes
	// some cells die far earlier than the mean.
	EnduranceCV float64
	// TransientRate is the probability that any single programming pulse
	// fails to change the cell (it keeps its previous value) without
	// permanent damage. Verify-retry catches and re-drives these.
	TransientRate float64
}

// Enabled reports whether any failure mode is configured.
func (c Config) Enabled() bool { return c.Endurance > 0 || c.TransientRate > 0 }

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.EnduranceCV < 0:
		return fmt.Errorf("fault: EnduranceCV %g must be non-negative", c.EnduranceCV)
	case c.TransientRate < 0 || c.TransientRate >= 1:
		return fmt.Errorf("fault: TransientRate %g must be in [0, 1)", c.TransientRate)
	case c.EnduranceCV > 0 && c.Endurance <= 0:
		return fmt.Errorf("fault: EnduranceCV set without Endurance")
	}
	return nil
}

// Stats counts injector activity since construction.
type Stats struct {
	PulsesAttempted   int64 // programming pulses that reached the array
	TransientFailures int64 // pulses that failed without permanent damage
	StuckCells        int64 // cells permanently stuck (wear-out)
	StuckPulses       int64 // pulses wasted on already-stuck cells
}

// Injector implements pcm.FaultModel: it sits under the device's write
// and read paths, records per-cell wear, and decides which pulses land.
// It is safe for concurrent use (the device serializes calls anyway, but
// parallel sweeps construct one injector per device).
type Injector struct {
	cfg Config

	mu    sync.Mutex
	wear  map[pcm.LineAddr][]uint32     // attempted pulses per cell
	stuck map[pcm.LineAddr]map[int]byte // cell index -> stuck value (0 or 1)
	stats Stats
}

// New builds an injector; the configuration must validate.
func New(cfg Config) (*Injector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Injector{
		cfg:   cfg,
		wear:  make(map[pcm.LineAddr][]uint32),
		stuck: make(map[pcm.LineAddr]map[int]byte),
	}, nil
}

// MustNew is New for known-good configurations, panicking on error.
func MustNew(cfg Config) *Injector {
	in, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return in
}

// Config returns the injector configuration.
func (in *Injector) Config() Config { return in.cfg }

// Stats returns a snapshot of the counters.
func (in *Injector) Stats() Stats {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.stats
}

// mix64 is the splitmix64 finalizer: a cheap, well-distributed hash used
// to derive every per-cell random decision from the seed.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// hash derives a 64-bit value from (seed, line, cell, salt).
func (in *Injector) hash(addr pcm.LineAddr, cell int, salt uint64) uint64 {
	h := mix64(uint64(in.cfg.Seed) ^ 0x6A09E667F3BCC909)
	h = mix64(h ^ uint64(addr))
	h = mix64(h ^ uint64(cell))
	return mix64(h ^ salt)
}

// uniform maps a hash to (0, 1].
func uniform(h uint64) float64 {
	return (float64(h>>11) + 1) / (1 << 53)
}

const (
	saltLimitA = 0x1     // Box-Muller uniform #1 for the endurance limit
	saltLimitB = 0x2     // Box-Muller uniform #2
	saltPulse  = 0x10000 // + wear count: transient decision per pulse
)

// limit returns the cell's endurance limit in pulses: a Gaussian sample
// with mean Endurance and stddev EnduranceCV*Endurance, clamped to at
// least one pulse. Pure in (seed, addr, cell).
func (in *Injector) limit(addr pcm.LineAddr, cell int) int64 {
	mean := float64(in.cfg.Endurance)
	if in.cfg.EnduranceCV > 0 {
		u1 := uniform(in.hash(addr, cell, saltLimitA))
		u2 := uniform(in.hash(addr, cell, saltLimitB))
		z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
		mean *= 1 + in.cfg.EnduranceCV*z
	}
	if mean < 1 {
		return 1
	}
	return int64(mean)
}

// ApplyWrite intercepts one line write: old is the stored image, want the
// image the driver intends to program (mutated in place to what actually
// lands). For every differing bit it records an attempted pulse, then
// fails the pulse if the cell is (or just became) stuck, or if the
// transient draw fails.
func (in *Injector) ApplyWrite(addr pcm.LineAddr, old, want []byte) {
	in.mu.Lock()
	defer in.mu.Unlock()
	var wear []uint32
	stuckLine := in.stuck[addr]
	for i := range want {
		diff := old[i] ^ want[i]
		if diff == 0 {
			continue
		}
		if wear == nil {
			wear = in.wear[addr]
			if wear == nil {
				wear = make([]uint32, len(want)*8)
				in.wear[addr] = wear
			}
		}
		for b := 0; b < 8; b++ {
			if diff&(1<<b) == 0 {
				continue
			}
			cell := i*8 + b
			oldBit := old[i] >> b & 1
			in.stats.PulsesAttempted++
			if sv, isStuck := stuckLine[cell]; isStuck {
				// The driver pulses a dead cell: nothing changes.
				in.stats.StuckPulses++
				want[i] = want[i]&^(1<<b) | sv<<b
				continue
			}
			wear[cell]++
			if in.cfg.Endurance > 0 && int64(wear[cell]) > in.limit(addr, cell) {
				// Wear-out: the cell can no longer switch and is stuck at
				// the value it held before this pulse.
				if stuckLine == nil {
					stuckLine = make(map[int]byte)
					in.stuck[addr] = stuckLine
				}
				stuckLine[cell] = oldBit
				in.stats.StuckCells++
				want[i] = want[i]&^(1<<b) | oldBit<<b
				continue
			}
			if in.cfg.TransientRate > 0 &&
				uniform(in.hash(addr, cell, saltPulse+uint64(wear[cell]))) < in.cfg.TransientRate {
				// Transient failure: the pulse did not take; the cell
				// keeps its previous value and may be re-driven later.
				in.stats.TransientFailures++
				want[i] = want[i]&^(1<<b) | oldBit<<b
			}
		}
	}
}

// ApplyRead forces stuck cells to their stuck values in a read's data.
// Stuck values are also baked into the stored image at failure time, so
// this only matters for paths that bypass the write fault mask (e.g.
// Preload over a worn line).
func (in *Injector) ApplyRead(addr pcm.LineAddr, data []byte) {
	in.mu.Lock()
	defer in.mu.Unlock()
	stuckLine := in.stuck[addr]
	if len(stuckLine) == 0 {
		return
	}
	for cell, sv := range stuckLine {
		i, b := cell/8, cell%8
		if i < len(data) {
			data[i] = data[i]&^(1<<b) | sv<<b
		}
	}
}

// CellWear returns the attempted-pulse count of one cell, for tests.
func (in *Injector) CellWear(addr pcm.LineAddr, cell int) int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	w := in.wear[addr]
	if cell >= len(w) {
		return 0
	}
	return int64(w[cell])
}

// StuckAt reports whether a cell is stuck and at which value.
func (in *Injector) StuckAt(addr pcm.LineAddr, cell int) (value byte, stuck bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	sv, ok := in.stuck[addr][cell]
	return sv, ok
}
