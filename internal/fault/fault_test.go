package fault

import (
	"bytes"
	"testing"

	"tetriswrite/internal/pcm"
)

func line(b byte) []byte {
	l := make([]byte, 64)
	for i := range l {
		l[i] = b
	}
	return l
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{EnduranceCV: -1},
		{Endurance: 10, TransientRate: -0.1},
		{Endurance: 10, TransientRate: 1},
		{EnduranceCV: 0.1}, // CV without a mean
	}
	for _, c := range bad {
		if _, err := New(c); err == nil {
			t.Errorf("config %+v accepted", c)
		}
	}
	if !(Config{Endurance: 10}).Enabled() || !(Config{TransientRate: 0.1}).Enabled() {
		t.Error("non-zero failure modes reported disabled")
	}
	if (Config{Seed: 5}).Enabled() {
		t.Error("seed alone reported enabled")
	}
}

// A cell whose attempted-pulse count exceeds its endurance limit becomes
// stuck at the value it held before the killing pulse.
func TestWearOutSticksAtOldValue(t *testing.T) {
	in := MustNew(Config{Seed: 1, Endurance: 1})
	old := line(0x00)
	want := line(0xFF)
	in.ApplyWrite(3, old, want) // pulse 1: every cell programs fine
	if !bytes.Equal(want, line(0xFF)) {
		t.Fatal("first pulse altered by a fresh cell")
	}
	want2 := line(0x00)
	in.ApplyWrite(3, line(0xFF), want2) // pulse 2: exceeds the limit of 1
	if !bytes.Equal(want2, line(0xFF)) {
		t.Fatalf("worn cells switched anyway: %x", want2[:4])
	}
	st := in.Stats()
	if st.StuckCells != 512 {
		t.Errorf("StuckCells = %d, want 512", st.StuckCells)
	}
	if v, stuck := in.StuckAt(3, 0); !stuck || v != 1 {
		t.Errorf("cell 0 stuck=%v value=%d, want stuck at 1", stuck, v)
	}
	// Further pulses on stuck cells are wasted, not re-worn.
	want3 := line(0x00)
	in.ApplyWrite(3, line(0xFF), want3)
	if in.Stats().StuckPulses != 512 {
		t.Errorf("StuckPulses = %d, want 512", in.Stats().StuckPulses)
	}
	if w := in.CellWear(3, 0); w != 2 {
		t.Errorf("CellWear = %d, want 2 (stuck pulses don't age the cell)", w)
	}
}

func TestApplyReadForcesStuckBits(t *testing.T) {
	in := MustNew(Config{Seed: 1, Endurance: 1})
	in.ApplyWrite(0, line(0x00), line(0xFF))
	in.ApplyWrite(0, line(0xFF), line(0x00)) // all cells stick at 1
	data := line(0x00)                       // e.g. installed via Preload, bypassing the mask
	in.ApplyRead(0, data)
	if !bytes.Equal(data, line(0xFF)) {
		t.Errorf("stuck bits not observed on read: %x", data[:4])
	}
	// Lines without stuck cells are untouched.
	other := line(0x5A)
	in.ApplyRead(9, other)
	if !bytes.Equal(other, line(0x5A)) {
		t.Error("read of healthy line altered")
	}
}

// Endurance variation: with a non-zero CV, different cells get different
// limits, and the same (seed, cell) always samples the same limit.
func TestEnduranceVariation(t *testing.T) {
	in := MustNew(Config{Seed: 42, Endurance: 1000, EnduranceCV: 0.25})
	limits := map[int64]int{}
	for cell := 0; cell < 512; cell++ {
		limits[in.limit(7, cell)]++
	}
	if len(limits) < 100 {
		t.Errorf("only %d distinct limits over 512 cells; variation too coarse", len(limits))
	}
	in2 := MustNew(Config{Seed: 42, Endurance: 1000, EnduranceCV: 0.25})
	for cell := 0; cell < 512; cell++ {
		if in.limit(7, cell) != in2.limit(7, cell) {
			t.Fatalf("cell %d limit differs across injectors with equal seeds", cell)
		}
	}
	in3 := MustNew(Config{Seed: 43, Endurance: 1000, EnduranceCV: 0.25})
	same := 0
	for cell := 0; cell < 512; cell++ {
		if in.limit(7, cell) == in3.limit(7, cell) {
			same++
		}
	}
	if same > 256 {
		t.Errorf("%d/512 limits identical across different seeds", same)
	}
}

func TestTransientFailuresDeterministic(t *testing.T) {
	run := func() (Stats, []byte) {
		in := MustNew(Config{Seed: 9, TransientRate: 0.25})
		img := line(0x00)
		for i := 0; i < 10; i++ {
			want := line(byte(0x55 << (i % 2))) // alternate 0x55/0xAA
			in.ApplyWrite(1, img, want)
			img = want
		}
		return in.Stats(), img
	}
	s1, img1 := run()
	s2, img2 := run()
	if s1 != s2 {
		t.Errorf("stats differ across identical runs: %+v vs %+v", s1, s2)
	}
	if !bytes.Equal(img1, img2) {
		t.Error("landed images differ across identical runs")
	}
	if s1.TransientFailures == 0 {
		t.Error("no transient failures at 25% rate over ~2500 pulses")
	}
	if s1.TransientFailures >= s1.PulsesAttempted {
		t.Error("every pulse failed")
	}
	// Roughly the configured rate (deterministic, so bounds are exact
	// for this seed; generous margins guard against hash regressions).
	rate := float64(s1.TransientFailures) / float64(s1.PulsesAttempted)
	if rate < 0.15 || rate > 0.35 {
		t.Errorf("transient rate %.3f far from configured 0.25", rate)
	}
}

// The injector composes with a real device: writes land through the
// mask, reads observe stuck bits, and the ideal device is untouched by
// a nil model.
func TestDeviceIntegration(t *testing.T) {
	dev := pcm.MustNewDevice(pcm.DefaultParams())
	in := MustNew(Config{Seed: 1, Endurance: 1})
	dev.AttachFaults(in)
	dev.WriteLine(5, line(0xFF))
	dev.WriteLine(5, line(0x00)) // wears out: sticks at 1
	got := make([]byte, 64)
	dev.ReadLine(5, got)
	if !bytes.Equal(got, line(0xFF)) {
		t.Errorf("stuck line reads %x, want all FF", got[:4])
	}
	// The attempted pulses were still charged: two full waves.
	st := dev.Stats()
	if st.BitsWritten != 1024 {
		t.Errorf("BitsWritten = %d, want 1024 (attempted pulses cost energy)", st.BitsWritten)
	}
}
