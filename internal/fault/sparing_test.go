package fault

import (
	"bytes"
	"testing"

	"tetriswrite/internal/pcm"
	"tetriswrite/internal/units"
)

// fakeMem is a scriptable downstream port: it accepts writes while
// capacity lasts, records them, and wakes space waiters on demand.
type fakeMem struct {
	capacity int // writes accepted before rejecting; negative = unlimited
	writes   []struct {
		addr pcm.LineAddr
		data []byte
	}
	reads   []pcm.LineAddr
	waiters []func()
	store   map[pcm.LineAddr][]byte
}

func newFakeMem(capacity int) *fakeMem {
	return &fakeMem{capacity: capacity, store: make(map[pcm.LineAddr][]byte)}
}

func (m *fakeMem) SubmitRead(addr pcm.LineAddr, onDone func(at units.Time, data []byte)) bool {
	m.reads = append(m.reads, addr)
	onDone(0, append([]byte(nil), m.store[addr]...))
	return true
}

func (m *fakeMem) SubmitWrite(addr pcm.LineAddr, data []byte, onDone func(at units.Time)) bool {
	if m.capacity == 0 {
		return false
	}
	if m.capacity > 0 {
		m.capacity--
	}
	cp := append([]byte(nil), data...)
	m.writes = append(m.writes, struct {
		addr pcm.LineAddr
		data []byte
	}{addr, cp})
	m.store[addr] = cp
	if onDone != nil {
		onDone(0)
	}
	return true
}

func (m *fakeMem) WhenWriteSpace(fn func()) { m.waiters = append(m.waiters, fn) }

func (m *fakeMem) wake() {
	ws := m.waiters
	m.waiters = nil
	for _, fn := range ws {
		fn()
	}
}

func TestSpareRemapHardError(t *testing.T) {
	mem := newFakeMem(-1)
	s, err := NewSpareRemapper(mem, 100, 4, func(addr pcm.LineAddr, dst []byte) {
		copy(dst, mem.store[addr])
	})
	if err != nil {
		t.Fatal(err)
	}
	want := line(0xAB)
	s.OnHardError(7, want)
	if !s.Remapped(7) {
		t.Fatal("line 7 not remapped after hard error")
	}
	if got := s.Translate(7); got != 100 {
		t.Errorf("Translate(7) = %d, want spare slot 100", got)
	}
	if len(mem.writes) != 1 || mem.writes[0].addr != 100 || !bytes.Equal(mem.writes[0].data, want) {
		t.Errorf("repair write wrong: %+v", mem.writes)
	}
	// Reads and writes to the dead line land on the spare.
	var got []byte
	s.SubmitRead(7, func(_ units.Time, data []byte) { got = data })
	if !bytes.Equal(got, want) {
		t.Errorf("read after remap = %x, want %x", got[:4], want[:4])
	}
	s.SubmitWrite(7, line(0xCD), nil)
	if mem.writes[len(mem.writes)-1].addr != 100 {
		t.Error("write to dead line not redirected to its spare")
	}
	st := s.Stats()
	if st.RemappedLines != 1 || st.RepairWrites != 1 || st.SparesLeft != 3 {
		t.Errorf("stats = %+v", st)
	}
}

// A spare slot that itself dies chains to a fresh spare.
func TestSpareChaining(t *testing.T) {
	mem := newFakeMem(-1)
	s, _ := NewSpareRemapper(mem, 100, 2, nil)
	s.OnHardError(7, line(1))
	s.OnHardError(100, line(2)) // the spare died too
	if got := s.Translate(7); got != 101 {
		t.Errorf("Translate(7) = %d, want chained spare 101", got)
	}
}

// With no spares left, hard errors degrade gracefully: counted, not
// remapped, no crash.
func TestSpareExhaustion(t *testing.T) {
	mem := newFakeMem(-1)
	s, _ := NewSpareRemapper(mem, 100, 1, nil)
	s.OnHardError(7, line(1))
	s.OnHardError(8, line(2))
	st := s.Stats()
	if st.RemappedLines != 1 || st.Exhausted != 1 || st.SparesLeft != 0 {
		t.Errorf("stats = %+v", st)
	}
	if s.Remapped(8) {
		t.Error("line 8 remapped with no spare available")
	}
}

// A hard error on a line whose remap already exists (a raced older
// write) re-issues to the existing spare instead of burning another.
func TestSpareHardErrorRace(t *testing.T) {
	mem := newFakeMem(-1)
	s, _ := NewSpareRemapper(mem, 100, 4, nil)
	s.OnHardError(7, line(1))
	s.OnHardError(7, line(3))
	st := s.Stats()
	if st.RemappedLines != 1 || st.SparesLeft != 3 {
		t.Errorf("second hard error burned a spare: %+v", st)
	}
	if st.RepairWrites != 2 {
		t.Errorf("RepairWrites = %d, want 2", st.RepairWrites)
	}
	if mem.writes[len(mem.writes)-1].addr != 100 {
		t.Error("re-issued repair not directed at the existing spare")
	}
}

// Repair writes that hit a full write queue buffer, serve reads from the
// pending data, and drain when space frees — the wearlevel.Remapper
// backpressure contract.
func TestSpareRepairBackpressure(t *testing.T) {
	mem := newFakeMem(0) // reject everything
	s, _ := NewSpareRemapper(mem, 100, 4, nil)
	want := line(0xEE)
	s.OnHardError(7, want)
	if len(mem.writes) != 0 {
		t.Fatal("write accepted by a full queue")
	}
	if len(mem.waiters) != 1 {
		t.Fatalf("%d space waiters registered, want 1", len(mem.waiters))
	}
	// A second hard error while blocked must not double-register.
	s.OnHardError(8, line(0xDD))
	if len(mem.waiters) != 1 {
		t.Fatalf("%d space waiters after second error, want 1 (retrying flag)", len(mem.waiters))
	}
	// Reads against the pending repair serve its data.
	var got []byte
	s.SubmitRead(7, func(_ units.Time, data []byte) { got = data })
	if !bytes.Equal(got, want) {
		t.Errorf("read during pending repair = %x, want %x", got[:4], want[:4])
	}
	snap := make([]byte, 64)
	s.Snoop(7, snap)
	if !bytes.Equal(snap, want) {
		t.Error("Snoop during pending repair missed the pending data")
	}
	// Space frees: both repairs drain, in address order.
	mem.capacity = -1
	mem.wake()
	if len(mem.writes) != 2 {
		t.Fatalf("%d repairs drained, want 2", len(mem.writes))
	}
	if mem.writes[0].addr != 100 || mem.writes[1].addr != 101 {
		t.Errorf("drain order %d,%d, want 100,101", mem.writes[0].addr, mem.writes[1].addr)
	}
}
